// Command simcluster runs the simulated 26-node Spark-on-YARN testbed,
// submits a TPC-H-over-trace workload, and writes the resulting log tree
// (ResourceManager log, per-NodeManager logs, per-container stderr files)
// to a directory that cmd/sdchecker can analyze:
//
//	simcluster -queries 200 -out ./logs
//	sdchecker -dir ./logs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/docker"
	"repro/internal/experiments"
	"repro/internal/spark"
	"repro/internal/yarn"
)

func main() {
	var (
		config    = flag.String("config", "", "JSON scenario spec (overrides the individual flags; see internal/experiments.Spec)")
		queries   = flag.Int("queries", 200, "number of TPC-H queries to submit")
		datasetMB = flag.Float64("dataset-mb", 2048, "TPC-H dataset size in MB")
		executors = flag.Int("executors", 4, "executors per query")
		gapMs     = flag.Float64("gap-ms", 2600, "mean submission gap in ms")
		scheduler = flag.String("scheduler", "ce", "scheduler: ce (centralized Capacity) or de (distributed opportunistic)")
		useDocker = flag.Bool("docker", false, "launch containers through Docker")
		seed      = flag.Uint64("seed", 7, "simulation seed")
		out       = flag.String("out", "", "directory to write the log tree to (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "simcluster: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var tr experiments.TraceRun
	if *config != "" {
		sp, err := experiments.LoadSpecFile(*config)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simcluster: %v\n", err)
			os.Exit(1)
		}
		tr, err = sp.ToTraceRun()
		if err != nil {
			fmt.Fprintf(os.Stderr, "simcluster: %v\n", err)
			os.Exit(1)
		}
	} else {
		tr = experiments.DefaultTraceRun(*queries)
		tr.DatasetMB = *datasetMB
		tr.MeanGapMs = *gapMs
		tr.Seed = *seed
		opportunistic := *scheduler == "de"
		if opportunistic {
			tr.Opts.Yarn.Scheduler = yarn.SchedOpportunistic
		}
		tr.MutateSpark = func(i int, cfg *spark.Config) {
			cfg.Executors = *executors
			cfg.Opportunistic = opportunistic
			if *useDocker {
				cfg.Runtime = docker.RuntimeDocker
			}
		}
	}

	s, rep := tr.Run()
	if err := s.Sink.WriteDir(*out); err != nil {
		fmt.Fprintf(os.Stderr, "simcluster: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("simulated %d queries to virtual t=%ds; %d log lines in %d files written to %s\n",
		tr.Queries, int64(s.Eng.Now())/1000, s.Sink.TotalLines(), len(s.Sink.Files()), *out)
	fmt.Printf("quick check — total scheduling delay p50=%.1fs p95=%.1fs (run sdchecker -dir %s for the full report)\n",
		rep.Total.Median()/1000, rep.Total.P95()/1000, *out)
}
