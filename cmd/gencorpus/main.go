// Command gencorpus regenerates SDchecker's checked-in test inputs from
// real simulator output:
//
//   - testdata/golden/<case>/input/ — complete log trees for the golden
//     tests (run `go test ./internal/core -run TestGolden -update` after
//     regenerating to refresh the expected JSON);
//   - testdata/corpus/ — seed files for the FuzzParseReader /
//     FuzzStreamFeed fuzz targets, including degraded (torn, truncated,
//     skewed) variants and RM logs replayed from the model checker's
//     minimized counterexample traces (internal/mc/testdata/cx), whose
//     crash/expiry/resync interleavings no random workload reproduces.
//
// The inputs are checked in; rerun this tool only when the simulator's
// log vocabulary changes.
//
//	go run ./cmd/gencorpus -out internal/core/testdata
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/log4j"
	"repro/internal/mc"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/workload"
	"repro/internal/yarn"
)

func main() {
	out := flag.String("out", "internal/core/testdata", "output directory")
	cxDir := flag.String("cx", "internal/mc/testdata/cx", "model-checker counterexample traces to replay into corpus seeds")
	mcOnly := flag.Bool("mc-only", false, "regenerate only the model-checker corpus seeds (leave golden trees untouched)")
	flag.Parse()

	if *mcOnly {
		corpus := filepath.Join(*out, "corpus")
		must(os.MkdirAll(corpus, 0o755))
		writeMCSeeds(corpus, *cxDir)
		return
	}

	pristine := runScenario(3, yarn.FaultSchedule{}, log4j.DegradeConfig{})
	writeTree(pristine, filepath.Join(*out, "golden", "pristine", "input"))

	faulted := runScenario(3, yarn.FaultSchedule{Crashes: []yarn.NodeCrash{
		{Node: 1, AtMs: 8_000, DownForMs: 30_000},
		{Node: 2, AtMs: 8_200, DownForMs: 35_000},
		{Node: 3, AtMs: 8_400, DownForMs: 0},
		{Node: 4, AtMs: 8_600, DownForMs: 40_000},
	}}, log4j.DegradeConfig{})
	writeTree(faulted, filepath.Join(*out, "golden", "faulted", "input"))

	// Fuzz seeds: a pristine RM log, a faulted RM log, a degraded run's
	// worth of torn/truncated/skewed files, and one container stderr.
	degraded := runScenario(2, yarn.FaultSchedule{Crashes: []yarn.NodeCrash{
		{Node: 0, AtMs: 7_000, DownForMs: 20_000},
	}}, log4j.DegradeConfig{
		DropProb: 0.05, TruncateProb: 0.05, TearProb: 0.05,
		GarbageProb: 0.03, SkewMaxMs: 1500, Seed: 99,
	})
	corpus := filepath.Join(*out, "corpus")
	must(os.MkdirAll(corpus, 0o755))
	writeSeed(corpus, "rm-pristine.log", pristine, yarn.RMLogFile)
	writeSeed(corpus, "rm-faulted.log", faulted, yarn.RMLogFile)
	writeSeed(corpus, "rm-degraded.log", degraded, yarn.RMLogFile)
	nmDone, errDone := false, false
	for _, f := range degraded.Files() {
		if !nmDone && strings.Contains(f, "nodemanager") {
			writeSeed(corpus, "nm-degraded.log", degraded, f)
			nmDone = true
		}
		if !errDone && strings.HasSuffix(f, "/stderr") {
			writeSeed(corpus, "stderr.log", degraded, f)
			errDone = true
		}
	}
	writeMCSeeds(corpus, *cxDir)
}

// writeMCSeeds replays each checked-in model-checker counterexample and
// writes the resulting RM log as a fuzz seed. One extra seed replays the
// stale-epoch trace with the NM epoch guard chaos-disabled: its log shows
// containers resurrected across NM incarnations — exactly the torn
// lifecycle shapes the stream parser must survive.
func writeMCSeeds(corpus, cxDir string) {
	files, err := filepath.Glob(filepath.Join(cxDir, "*.json"))
	must(err)
	for _, file := range files {
		cx, err := mc.ReadCounterexample(file)
		must(err)
		name := strings.TrimSuffix(filepath.Base(file), ".json")
		w, _ := mc.Replay(cx.Config, cx.Trace)
		writeSeed(corpus, "mc-"+name+".log", w.RM().Sink, yarn.RMLogFile)
		if name == "stale-epoch-reservation" {
			chaos := cx.Config
			chaos.BreakEpochGuard = true
			w, _ = mc.Replay(chaos, cx.Trace)
			writeSeed(corpus, "mc-"+name+"-chaos.log", w.RM().Sink, yarn.RMLogFile)
		}
	}
}

// runScenario drives a small cluster through n TPC-H queries and returns
// the log sink.
func runScenario(n int, faults yarn.FaultSchedule, deg log4j.DegradeConfig) *log4j.Sink {
	opts := experiments.DefaultOptions()
	opts.Seed = 20260806
	opts.Cluster = cluster.DefaultConfig()
	opts.Cluster.Workers = 6
	opts.Faults = faults
	opts.LogDegrade = deg
	s := experiments.NewScenario(opts)
	tables := workload.CreateTPCHTables(s.FS, 512)
	for i := 0; i < n; i++ {
		cfg := spark.DefaultConfig(workload.TPCHQuery(i*7+1, 512, tables))
		s.Eng.At(sim.Time(int64(i)*4000+2000), func() { spark.Submit(s.RM, s.FS, cfg) })
	}
	s.Run(sim.Time(600 * sim.Second))
	return s.Sink
}

func writeTree(sink *log4j.Sink, dir string) {
	must(os.RemoveAll(dir))
	must(os.MkdirAll(dir, 0o755))
	must(sink.WriteDir(dir))
	fmt.Printf("wrote %s (%d files, %d lines)\n", dir, len(sink.Files()), sink.TotalLines())
}

func writeSeed(dir, name string, sink *log4j.Sink, file string) {
	lines := sink.Lines(file)
	must(os.WriteFile(filepath.Join(dir, name), []byte(strings.Join(lines, "\n")+"\n"), 0o644))
	fmt.Printf("wrote %s (%d lines from %s)\n", filepath.Join(dir, name), len(lines), file)
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gencorpus:", err)
		os.Exit(1)
	}
}
