// Command sdmc runs the small-scope model checker over the simulated
// YARN control plane (internal/mc): it exhaustively explores event
// interleavings for a tiny configuration, checks the invariant oracles,
// and writes minimized, replayable counterexamples for any violation.
//
// Usage:
//
//	sdmc [flags]              explore; exit 1 if any invariant is violated
//	sdmc -smoke               CI-sized bounded exploration (fails on violation)
//	sdmc -replay cx.json      re-execute a serialized counterexample
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/mc"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 2, "cluster size (1..4)")
		apps       = flag.Int("apps", 2, "applications to submit (1..3)")
		faults     = flag.Int("faults", 1, "crash budget (0 or 1)")
		workers    = flag.Int("workers", 1, "worker containers per app (1..2)")
		scheduler  = flag.String("scheduler", "capacity", "capacity or opportunistic")
		seed       = flag.Uint64("seed", 1, "world seed")
		window     = flag.Int("window", 96, "exploration horizon in engine events")
		stride     = flag.Int("stride", 12, "spacing of external-choice insertion points")
		maxClose   = flag.Int("max-close", 8000, "event budget for closing each branch to quiescence")
		smoke      = flag.Bool("smoke", false, "CI preset: 2 nodes, 2 apps, no fault, small window")
		breakGuard = flag.Bool("break-epoch-guard", false, "chaos self-test: disable the NM epoch guard")
		out        = flag.String("out", "", "directory for minimized counterexample JSON files")
		replay     = flag.String("replay", "", "replay a serialized counterexample file and exit")
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay))
	}

	cfg := mc.Config{
		Nodes:           *nodes,
		Apps:            *apps,
		Faults:          *faults,
		WorkersPerApp:   *workers,
		Scheduler:       *scheduler,
		Seed:            *seed,
		Window:          *window,
		Stride:          *stride,
		MaxCloseEvents:  *maxClose,
		BreakEpochGuard: *breakGuard,
	}
	if *smoke {
		// The preset is a baseline, not an override: flags the user set
		// explicitly still apply on top (e.g. -smoke -scheduler opportunistic).
		base := mc.SmokeConfig()
		base.BreakEpochGuard = *breakGuard
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "nodes":
				base.Nodes = *nodes
			case "apps":
				base.Apps = *apps
			case "faults":
				base.Faults = *faults
			case "workers":
				base.WorkersPerApp = *workers
			case "scheduler":
				base.Scheduler = *scheduler
			case "seed":
				base.Seed = *seed
			case "window":
				base.Window = *window
			case "stride":
				base.Stride = *stride
			case "max-close":
				base.MaxCloseEvents = *maxClose
			}
		})
		cfg = base
	}
	res, err := mc.Explore(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdmc:", err)
		os.Exit(2)
	}
	fmt.Printf("sdmc: nodes=%d apps=%d faults=%d window=%d stride=%d scheduler=%s\n",
		res.Config.Nodes, res.Config.Apps, res.Config.Faults, res.Config.Window, res.Config.Stride, res.Config.Scheduler)
	fmt.Printf("sdmc: %d states visited, %d branches closed to quiescence, %d deduped\n",
		res.StatesVisited, res.Branches, res.Deduped)
	if len(res.Violations) == 0 {
		fmt.Println("sdmc: no invariant violations")
		return
	}
	for _, cx := range res.Violations {
		min := mc.Minimize(cx)
		fmt.Printf("sdmc: VIOLATION %s (%d hits)\n", min.Violation.String(), res.Counts[cx.Violation.Invariant])
		fmt.Printf("sdmc:   trace minimized %d -> %d choices: %v\n", min.MinimizedFrom, len(min.Trace), min.Trace)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "sdmc:", err)
				os.Exit(2)
			}
			path := filepath.Join(*out, "cx-"+cx.Violation.Invariant+".json")
			if err := mc.WriteCounterexample(path, min); err != nil {
				fmt.Fprintln(os.Stderr, "sdmc:", err)
				os.Exit(2)
			}
			fmt.Printf("sdmc:   wrote %s\n", path)
		}
	}
	os.Exit(1)
}

// runReplay re-executes a counterexample and reports whether the
// recorded violation reproduces. Exit 0 when it does, 1 otherwise.
func runReplay(path string) int {
	cx, err := mc.ReadCounterexample(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdmc:", err)
		return 2
	}
	_, v := mc.Replay(cx.Config, cx.Trace)
	if v == nil {
		fmt.Printf("sdmc: %s: no violation on replay (recorded %s)\n", path, cx.Violation.Invariant)
		return 1
	}
	if v.Invariant != cx.Violation.Invariant {
		fmt.Printf("sdmc: %s: replay hit %s, recorded %s\n", path, v.Invariant, cx.Violation.Invariant)
		return 1
	}
	fmt.Printf("sdmc: %s: reproduced %s\n", path, v.String())
	return 0
}
