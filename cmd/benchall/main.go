// Command benchall regenerates every table and figure of the paper's
// evaluation section and prints them in paper-style text form.
//
//	benchall             # quick pass (reduced query counts)
//	benchall -scale paper  # full paper scale (2000-query long trace, ...)
//	benchall -only fig7,tableII
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		scale  = flag.String("scale", "quick", `"quick" (reduced counts) or "paper" (full trace sizes)`)
		only   = flag.String("only", "", "comma-separated subset: fig4,fig5,fig6,fig7,fig8,fig9,fig11,fig12,fig13,tableII,tableIII,bug,ablations,multitenant,extensions,failures,mine,pipeline,explain")
		outDir = flag.String("out", "", "also write each section's text (plus Fig 4 CSV series and an HTML report) into this directory")
	)
	flag.Parse()
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
	}

	long, short := 300, 80
	if *scale == "paper" {
		long, short = 2000, 200
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	write := func(name, content string) {
		if *outDir == "" {
			return
		}
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		}
	}
	run := func(name string, fn func() string) {
		if !sel(name) {
			return
		}
		start := time.Now()
		out := fn()
		fmt.Printf("==== %s (wall %.1fs) ====\n%s\n", name, time.Since(start).Seconds(), out)
		write(name+".txt", out)
	}

	var fig4 *experiments.Fig4Result
	run("fig4", func() string {
		fig4 = experiments.Fig4(long)
		write("fig4_apps.csv", fig4.Report.CSV())
		write("fig4_cdf.csv", fig4.Report.CDFCSV(100))
		write("fig4_launching.csv", fig4.Report.InstanceLaunchCSV())
		write("fig4_report.html", fig4.Report.HTMLReport("Fig 4 — overall scheduling delays", 6))
		return fig4.Format()
	})
	// Sweep figures also emit their mergeable-sketch aggregation tables:
	// the text form alongside the figure, the full per-point/merged
	// percentile rows as JSON when -out is set.
	writeSweep := func(base string, t *experiments.SweepTable) string {
		if *outDir != "" {
			if b, err := t.JSON(); err == nil {
				write(base+"_aggregate.json", string(b))
			} else {
				fmt.Fprintf(os.Stderr, "benchall: %s aggregate: %v\n", base, err)
			}
		}
		return t.Format("total", "alloc", "localization")
	}
	run("fig5", func() string {
		rows := experiments.Fig5(short)
		return experiments.FormatFig5(rows) + writeSweep("fig5", experiments.Fig5Aggregate(rows))
	})
	run("fig6", func() string { return experiments.FormatFig6(experiments.Fig6(short)) })
	run("fig7", func() string { return experiments.Fig7(short).Format() })
	run("tableII", func() string { return experiments.FormatTableII(experiments.TableII()) })
	run("fig8", func() string { return experiments.FormatFig8(experiments.Fig8(short)) })
	run("fig9", func() string { return experiments.Fig9(short).Format() })
	run("fig11", func() string { return experiments.Fig11(short).Format() })
	run("fig12", func() string {
		rows := experiments.Fig12(short)
		return experiments.FormatFig12(rows) + writeSweep("fig12", experiments.Fig12Aggregate(rows))
	})
	run("fig13", func() string { return experiments.FormatFig13(experiments.Fig13(short)) })
	run("tableIII", func() string {
		if fig4 == nil {
			fig4 = experiments.Fig4(long)
		}
		return experiments.FormatTableIII(experiments.TableIII(fig4))
	})
	run("bug", func() string { return experiments.BugHunt(short).Format() })
	run("ablations", func() string {
		var sb strings.Builder
		sb.WriteString(experiments.FormatAblationHeartbeat(experiments.AblationHeartbeat()))
		sb.WriteString(experiments.FormatAblationGate(experiments.AblationGate(short)))
		jvm := experiments.AblationJVMReuse(short)
		sb.WriteString("Ablation — JVM reuse (Table III rows 5-6):\n")
		sb.WriteString(jvm.Comparison.Format())
		disk := experiments.AblationDedicatedDisk(short)
		sb.WriteString("Ablation — dedicated localization storage class under dfsIO (§V-B):\n")
		sb.WriteString(disk.Comparison.Format())
		ord := experiments.AblationOrdering(short)
		sb.WriteString("Ablation — FIFO vs Fair ordering behind a large job:\n")
		sb.WriteString(ord.Comparison.Format())
		return sb.String()
	})
	run("multitenant", func() string { return experiments.MultiTenant(short).Format() })
	run("failures", func() string { return experiments.FormatFailureSweep(experiments.FailureSweep(short)) })
	run("mine", func() string {
		res := experiments.MineBench(short, nil)
		if b, err := res.JSON(); err == nil {
			write("bench_mine.json", string(b)+"\n")
		} else {
			fmt.Fprintf(os.Stderr, "benchall: bench_mine: %v\n", err)
		}
		return res.Format()
	})
	run("pipeline", func() string {
		res := experiments.PipelineBench(short)
		if b, err := res.JSON(); err == nil {
			write("bench_pipeline.json", string(b)+"\n")
		} else {
			fmt.Fprintf(os.Stderr, "benchall: bench_pipeline: %v\n", err)
		}
		return res.Format()
	})
	run("explain", func() string {
		res := experiments.ExplainBench(short)
		if b, err := res.JSON(); err == nil {
			write("bench_explain.json", string(b)+"\n")
		} else {
			fmt.Fprintf(os.Stderr, "benchall: bench_explain: %v\n", err)
		}
		return res.Format()
	})
	run("extensions", func() string {
		var sb strings.Builder
		sb.WriteString(experiments.FormatExtensionSampling(experiments.ExtensionSampling(short * 2)))
		svc := experiments.ExtensionCacheService(short)
		sb.WriteString(fmt.Sprintf("Extension — §V-B caching service: cache hit rate %.2f\n", svc.HitRate))
		sb.WriteString(svc.Comparison.Format())
		return sb.String()
	})
}
