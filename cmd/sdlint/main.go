// Command sdlint runs the repository's static-analysis suite: the
// emitter↔miner log-vocabulary contract (Table I), simulation
// determinism, lock ordering, Prometheus metric naming, completion-hook
// discipline, and the interprocedural flow proofs — buffer ownership
// (flow.bufown), yarn↔mc state-machine conformance (flow.smconform),
// and goroutine lifecycle accounting (flow.goaccount). See
// internal/analysis.
//
//	sdlint ./...                 # analyze the whole tree
//	sdlint -only logvocab ./...  # one analyzer
//	sdlint -json ./...           # machine-readable findings
//	sdlint -list                 # describe the suite
//
// Exit status is 1 when any unsuppressed finding remains, 2 on driver
// errors; //lint:allow <analyzer> <reason> suppresses a reviewed
// finding at its line (or the line above). A directive that suppresses
// nothing is reported as an unused-suppression warning (advisory: it
// never fails the build, but CI prints it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
)

// fastSpec hands the miner fast path's self-description to the logvocab
// analyzer, which proves each byte-level rule language-equal to the
// regex it shadows and the dispatch table complete over vocab.json.
func fastSpec() []analysis.FastRuleSpec {
	var out []analysis.FastRuleSpec
	for _, r := range core.FastPathSpec() {
		out = append(out, analysis.FastRuleSpec(r))
	}
	return out
}

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings and the summary as one JSON object")
		only    = flag.String("only", "", "comma-separated analyzer subset (see -list)")
		list    = flag.Bool("list", false, "list the analyzers and exit")
		dir     = flag.String("dir", ".", "module directory to analyze from")
		vocab   = flag.String("vocab", "", "override the embedded vocab.json manifest (testing)")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "sdlint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	prog, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdlint: %v\n", err)
		os.Exit(2)
	}
	unit := &analysis.Unit{Prog: prog, Analyzers: analyzers, VocabPath: *vocab, FastSpec: fastSpec()}
	findings := unit.Run()
	errors := analysis.Errors(findings)
	warnings := analysis.Warnings(findings)
	timings := unit.Timings()

	cwd, _ := os.Getwd()
	rel := func(path string) string {
		if cwd == "" {
			return path
		}
		if r, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return path
	}

	if *jsonOut {
		out := struct {
			Packages   int                `json:"packages"`
			Findings   []analysis.Finding `json:"findings"`
			Errors     int                `json:"errors"`
			Suppressed int                `json:"suppressed"`
			Warnings   int                `json:"warnings"`
			OK         bool               `json:"ok"`
		}{
			Packages:   len(prog.Packages),
			Findings:   findings,
			Errors:     len(errors),
			Suppressed: len(findings) - len(errors) - len(warnings),
			Warnings:   len(warnings),
			OK:         len(errors) == 0,
		}
		for i := range out.Findings {
			out.Findings[i].File = rel(out.Findings[i].File)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "sdlint: %v\n", err)
			os.Exit(2)
		}
		// Timings vary run to run, so they go to stderr: stdout stays a
		// byte-stable function of the tree for CI diffing.
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "sdlint: %-18s %6.0fms\n", a.Name, timings[a.Name].Seconds()*1000)
		}
		if len(errors) > 0 {
			os.Exit(1)
		}
		return
	}

	for _, f := range findings {
		f.File = rel(f.File)
		fmt.Println(f.String())
	}

	// benchall-style per-analyzer summary, with per-analyzer wall time.
	counts := make(map[string][2]int) // analyzer -> {errors, suppressed}
	for _, f := range findings {
		if f.Warning {
			continue
		}
		c := counts[f.Analyzer]
		if f.Suppressed {
			c[1]++
		} else {
			c[0]++
		}
		counts[f.Analyzer] = c
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := counts[name]
		status := "ok"
		if c[0] > 0 {
			status = "FAIL"
		}
		fmt.Printf("=== %-18s %-4s  %d finding(s), %d suppressed  %6.0fms\n",
			name, status, c[0], c[1], timings[name].Seconds()*1000)
	}
	fmt.Printf("sdlint: %d package(s), %d finding(s) (%d suppressed, %d warning(s)) in %.1fs\n",
		len(prog.Packages), len(errors), len(findings)-len(errors)-len(warnings), len(warnings), time.Since(start).Seconds())

	if len(errors) > 0 {
		os.Exit(1)
	}
}
