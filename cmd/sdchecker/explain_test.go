package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/log4j"
)

// writePlantedLogs writes a log tree holding `fast` quick applications
// plus one massive outlier (90s of scheduling delay), returning the
// outlier's application ID. Total delay is first-task minus submission,
// so the outlier's executor sits idle until 90s after submit.
func writePlantedLogs(t *testing.T, dir string, fast int) string {
	t.Helper()
	const base = int64(1499000000000)
	l := func(off int64, class, msg string) string {
		return log4j.Line{TimeMS: base + off, Level: log4j.Info, Class: class, Message: msg}.Format()
	}
	write := func(rel string, lines []string) {
		t.Helper()
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var rmLines []string
	var outlier string
	for n := 1; n <= fast+1; n++ {
		app := fmt.Sprintf("application_1499000000000_%04d", n)
		am := fmt.Sprintf("container_1499000000000_%04d_01_000001", n)
		ex := fmt.Sprintf("container_1499000000000_%04d_01_000002", n)
		sub := int64(n) * 200_000
		task := sub + 1_500 + int64(n) // fast apps: ~1.5s total
		if n == fast+1 {
			task = sub + 90_000 // the planted outlier
			outlier = app
		}
		reg, amLog, exLog := sub+400, sub+200, sub+800
		fin := task + 5_000
		rmLines = append(rmLines,
			l(sub, "x.RMAppImpl", app+" State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"),
			l(sub+1, "x.RMAppImpl", app+" State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"),
			l(reg, "x.RMAppImpl", app+" State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"),
			l(fin, "x.RMAppImpl", app+" State change from FINAL_SAVING to FINISHED on event = APP_UPDATE_SAVED"),
		)
		write("userlogs/"+app+"/"+am+"/stderr", []string{
			l(amLog, "org.apache.spark.deploy.yarn.ApplicationMaster", "Preparing Local resources"),
			l(reg, "org.apache.spark.deploy.yarn.ApplicationMaster", "Registered with ResourceManager as x"),
		})
		write("userlogs/"+app+"/"+ex+"/stderr", []string{
			l(exLog, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Started daemon"),
			l(task, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Got assigned task 0"),
		})
	}
	write("hadoop/yarn-resourcemanager.log", rmLines)
	return outlier
}

// TestExplainCLIPlantedOutlier is the offline acceptance scenario:
// `sdchecker -explain total` over a tree with one known-worst app must
// rank that app first — first heavy hitter, first exemplar — with its
// decomposition attached.
func TestExplainCLIPlantedOutlier(t *testing.T) {
	dir := t.TempDir()
	outlier := writePlantedLogs(t, dir, 5)
	rep, err := core.MineDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := explainReport(rep, "total", 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// The outlier leads the report: the first application named in any
	// heavy-hitter or exemplar line is the planted one.
	first := ""
	firstIdx := len(out)
	for n := 1; n <= 6; n++ {
		app := fmt.Sprintf("application_1499000000000_%04d", n)
		if i := strings.Index(out, app); i >= 0 && i < firstIdx {
			first, firstIdx = app, i
		}
	}
	if first != outlier {
		t.Fatalf("report leads with %q, want planted outlier %q:\n%s", first, outlier, out)
	}
	if !strings.Contains(out, "exemplar "+outlier+" 90000ms") {
		t.Errorf("report lacks the outlier exemplar at 90000ms:\n%s", out)
	}
	if !strings.Contains(out, "trace /trace/6") {
		t.Errorf("report lacks the outlier trace deep link:\n%s", out)
	}

	// Flag validation.
	if _, err := explainReport(rep, "bogus", 0.99); err == nil {
		t.Error("unknown component accepted")
	}
	if _, err := explainReport(rep, "total", 1.5); err == nil {
		t.Error("out-of-range quantile accepted")
	}
}

// TestServeExplainEndpoint drives the live drill-down path: /explain on
// a serving instance resolves the planted outlier to a live summary,
// trace link, and its flight-recorder slice.
func TestServeExplainEndpoint(t *testing.T) {
	dir := t.TempDir()
	outlier := writePlantedLogs(t, dir, 5)
	srv := newLiveServer(dir, testServeOptions(4, nil))
	defer srv.close()
	if err := srv.pollOnce(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/explain?component=total&q=0.99")
	if code != 200 {
		t.Fatalf("/explain status %d: %s", code, body)
	}
	var doc core.ExplainDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/explain is not valid JSON: %v\n%s", err, body)
	}
	if doc.Component != "total" || doc.Count != 6 {
		t.Fatalf("doc header %+v", doc)
	}
	if len(doc.Cells) == 0 || len(doc.Cells[0].Exemplars) == 0 {
		t.Fatalf("no exemplars: %s", body)
	}
	ex := doc.Cells[0].Exemplars[0]
	if ex.App != outlier {
		t.Fatalf("top exemplar %q, want planted outlier %q", ex.App, outlier)
	}
	if ex.Evicted || ex.Summary == nil || ex.Summary.Decomp.Total != 90_000 {
		t.Errorf("live enrichment wrong: %+v", ex)
	}
	if ex.TracePath == "" {
		t.Error("no trace deep link")
	} else if code, _ := get(t, ts.URL+ex.TracePath); code != 200 {
		t.Errorf("trace deep link %s returned %d", ex.TracePath, code)
	}
	if len(ex.Flight) == 0 {
		t.Error("no flight-recorder slice around the exemplar's completion")
	}

	// Default component and parameter validation.
	if code, _ := get(t, ts.URL+"/explain"); code != 200 {
		t.Errorf("/explain without params returned %d", code)
	}
	if code, _ := get(t, ts.URL+"/explain?q=bogus"); code != 400 {
		t.Errorf("bad q returned %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/explain?q=2"); code != 400 {
		t.Errorf("q=2 returned %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/explain?component=bogus"); code != 400 {
		t.Errorf("unknown component returned %d, want 400", code)
	}

	// The attribution metrics are live.
	_, metrics := get(t, ts.URL+"/metrics")
	for _, want := range []string{"attr_exemplars_total", "attr_exemplars_tracked", "attr_topk_entries", "attr_pinned_apps"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServeExplainAfterEviction is the eviction-vs-drill-down
// regression: with retain=0 every completed trace is evicted in the same
// poll that observed it, yet /explain must still resolve its exemplars
// through the pinned summaries — marked evicted, decomposition intact.
func TestServeExplainAfterEviction(t *testing.T) {
	dir := t.TempDir()
	outlier := writePlantedLogs(t, dir, 5)
	o := testServeOptions(1, nil)
	o.retain = 0
	srv := newLiveServer(dir, o)
	defer srv.close()
	if err := srv.pollOnce(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	_, body := get(t, ts.URL+"/explain?component=total")
	var doc core.ExplainDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Cells) == 0 || len(doc.Cells[0].Exemplars) == 0 {
		t.Fatalf("no exemplars after eviction: %s", body)
	}
	ex := doc.Cells[0].Exemplars[0]
	if ex.App != outlier {
		t.Fatalf("top exemplar %q, want %q", ex.App, outlier)
	}
	if !ex.Evicted {
		t.Error("exemplar of an evicted app not marked evicted")
	}
	if ex.Summary == nil || ex.Summary.Decomp.Total != 90_000 {
		t.Errorf("pinned summary missing or wrong: %+v", ex.Summary)
	}
	if ex.TracePath == "" {
		t.Error("pinned summary lost the trace seq")
	}
}

// TestHealthzWatchdogFields: /healthz carries the watchdog episode count
// (always) and the last snapshot seq (when one was taken).
func TestHealthzWatchdogFields(t *testing.T) {
	dir := t.TempDir()
	writePlantedLogs(t, dir, 1)
	srv := newLiveServer(dir, testServeOptions(1, nil))
	defer srv.close()
	if err := srv.pollOnce(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	_, body := get(t, ts.URL+"/healthz")
	var raw map[string]any
	if err := json.Unmarshal([]byte(body), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["watchdog_episodes"]; !ok {
		t.Errorf("/healthz missing watchdog_episodes: %s", body)
	}
	var h healthDoc
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.WatchdogEpisodes != 0 {
		t.Errorf("healthy server reports %d stall episodes", h.WatchdogEpisodes)
	}
}
