package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/log4j"
)

func writeLines(t *testing.T, path string, lines ...string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, l := range lines {
		if _, err := f.WriteString(l + "\n"); err != nil {
			t.Fatal(err)
		}
	}
}

func mkLine(off int64, class, msg string) string {
	return log4j.Line{TimeMS: 1499000000000 + off, Level: log4j.Info, Class: class, Message: msg}.Format()
}

func TestDrainFileIncremental(t *testing.T) {
	dir := t.TempDir()
	rm := filepath.Join(dir, "rm.log")
	app := "application_1499000000000_0001"

	sc := newDirScanner(dir, core.NewStream())

	writeLines(t, rm, mkLine(100, "x.RMAppImpl", app+" State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"))
	fed, err := sc.drainFile(rm, "rm.log")
	if err != nil || fed != 1 {
		t.Fatalf("first drain: fed=%v err=%v", fed, err)
	}
	// No growth: nothing new.
	fed, err = sc.drainFile(rm, "rm.log")
	if err != nil || fed != 0 {
		t.Fatalf("idle drain reported change: %v %v", fed, err)
	}
	// Append: only the new line is consumed.
	writeLines(t, rm, mkLine(5000, "x.RMAppImpl", app+" State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"))
	fed, err = sc.drainFile(rm, "rm.log")
	if err != nil || fed != 1 {
		t.Fatalf("append drain: fed=%v err=%v", fed, err)
	}
	if sc.st.EventCount() != 2 {
		t.Fatalf("events=%d, want 2 (no re-reads)", sc.st.EventCount())
	}
	a := sc.st.Apps()[0]
	if a.Registered-a.Submitted != 4900 {
		t.Fatalf("am delay %d, want 4900", a.Registered-a.Submitted)
	}
}

func TestDrainFileContainerLog(t *testing.T) {
	dir := t.TempDir()
	rel := "userlogs/application_1499000000000_0001/container_1499000000000_0001_01_000002/stderr"
	abs := filepath.Join(dir, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		t.Fatal(err)
	}
	sc := newDirScanner(dir, core.NewStream())
	writeLines(t, abs, mkLine(7000, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Started daemon"))
	if fed, err := sc.drainFile(abs, rel); err != nil || fed != 1 {
		t.Fatalf("container drain: %v %v", fed, err)
	}
	writeLines(t, abs, mkLine(9000, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Got assigned task 0"))
	if fed, err := sc.drainFile(abs, rel); err != nil || fed != 1 {
		t.Fatalf("container append drain: %v %v", fed, err)
	}
	c := sc.st.Apps()[0].Containers[0]
	if c.FirstLog == 0 || c.FirstTask == 0 {
		t.Fatalf("container trace incomplete: %+v", c)
	}
	if c.FirstLog != 1499000007000 {
		t.Fatalf("first log %d moved across drains", c.FirstLog)
	}
}
