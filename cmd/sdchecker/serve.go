package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/slo"
)

// healthFailThreshold is how many consecutive failed scans flip /healthz
// to 503: one failure is usually a collector rotating files mid-walk, a
// sustained run means the tree is gone or unreadable.
const healthFailThreshold = 5

// liveServer runs the -follow tailer behind an HTTP endpoint: the log
// tree is polled in the background while /metrics, /apps, /trace/<seq>,
// /aggregate, /slo and /healthz expose the stream's current picture.
// Completed applications beyond the retention limit are evicted so the
// server can tail a cluster indefinitely; the SLO engine keeps its own
// (bounded) aggregate state, so evicting an app does not lose its delay
// observations.
type liveServer struct {
	mu     sync.Mutex // guards st and sc; taken before obsMu when both are needed
	st     ingestStream
	sc     *dirScanner
	reg    *metrics.Registry
	retain int
	// maxApps hard-caps tracked applications, complete or not: degraded
	// logs can mint unbounded app IDs whose traces never complete, which
	// EvictCompleted alone would hold forever.
	maxApps int
	done    chan struct{}

	// obsMu guards eng. With -workers > 1 the completion hook runs on
	// shard worker goroutines while HTTP handlers read the engine, so
	// the engine needs its own lock — and one the hook can take without
	// touching mu (pollOnce holds mu across Quiesce, which waits for
	// those very hooks to finish).
	obsMu sync.Mutex
	eng   *slo.Engine

	// Poll health, for /healthz (guarded by mu).
	lastScanUnixMS int64
	lastErr        string
	consecFails    int

	compHist map[string]*metrics.Histogram
	scanDur  *metrics.Histogram
	firing   *metrics.Gauge
	ingested *metrics.Gauge
}

func newLiveServer(dir string, workers, retain, maxApps int, rules []slo.Rule) *liveServer {
	reg := metrics.NewRegistry()
	st := newIngestStream(workers)
	st.Instrument(reg)
	s := &liveServer{
		st:       st,
		eng:      slo.NewEngine(rules),
		sc:       newDirScanner(dir, st),
		reg:      reg,
		retain:   retain,
		maxApps:  maxApps,
		done:     make(chan struct{}),
		compHist: make(map[string]*metrics.Histogram, len(core.Components)),
		scanDur: reg.Histogram("serve_scan_duration_ms",
			metrics.ExpBuckets(1, 2, 16)),
		firing:   reg.Gauge("slo_rules_firing"),
		ingested: reg.Gauge("slo_apps_ingested"),
	}
	// Component-delay histograms: exponential buckets from 1ms to ~9min
	// cover the paper's sub-second tail and the worst degraded runs.
	for _, c := range core.Components {
		s.compHist[c] = reg.Histogram("core_component_delay_ms",
			metrics.ExpBuckets(1, 2, 20), "component", c)
	}
	// Completed decompositions flow into the SLO engine and the
	// component histograms. With a sharded stream the hook runs on
	// worker goroutines: histograms are thread-safe, the engine is
	// guarded by obsMu.
	st.OnComplete(func(a *core.AppTrace) {
		for _, o := range core.Observations(a) {
			s.compHist[o.Component].Observe(float64(o.MS))
		}
		s.obsMu.Lock()
		s.eng.ObserveApp(a)
		s.obsMu.Unlock()
	})
	return s
}

// pollOnce runs one ingestion pass: scan the tree, wait for the workers
// to absorb everything, advance the SLO engine's event clock to the
// newest log timestamp (so rules resolve when their windows drain even
// with no new completions), evict completed apps beyond the retention
// limit, then enforce the hard memory bound.
func (s *liveServer) pollOnce() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	_, err := s.sc.scan()
	s.st.Quiesce()
	s.scanDur.Observe(float64(time.Since(start).Milliseconds()))
	clock := s.st.LastEventMS()
	s.obsMu.Lock()
	s.eng.Advance(clock)
	s.firing.Set(int64(s.eng.FiringCount()))
	s.ingested.Set(int64(s.eng.AppsIngested()))
	s.obsMu.Unlock()
	if s.retain >= 0 {
		s.st.EvictCompleted(s.retain)
	}
	if s.maxApps >= 0 {
		s.st.EvictOldest(s.maxApps)
	}
	if err != nil {
		s.consecFails++
		s.lastErr = err.Error()
	} else {
		s.consecFails = 0
		s.lastErr = ""
		s.lastScanUnixMS = time.Now().UnixMilli()
	}
	return err
}

// ingest polls until the server is closed. Scan errors are transient
// (files may disappear mid-walk while a collector rotates them), so they
// are reported and the loop keeps going.
func (s *liveServer) ingest() {
	for {
		if err := s.pollOnce(); err != nil {
			fmt.Printf("sdchecker: scan: %v\n", err)
		}
		select {
		case <-s.done:
			return
		case <-time.After(time.Second):
		}
	}
}

func (s *liveServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/apps", s.handleApps)
	mux.HandleFunc("/trace/", s.handleTrace)
	mux.HandleFunc("/aggregate", s.handleAggregate)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *liveServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.reg.WriteText(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *liveServer) handleApps(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out, err := s.st.Report().JSON()
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, out)
}

func (s *liveServer) handleTrace(w http.ResponseWriter, r *http.Request) {
	seqStr := strings.TrimPrefix(r.URL.Path, "/trace/")
	seq, err := strconv.Atoi(seqStr)
	if err != nil || seq <= 0 {
		http.Error(w, "usage: /trace/<application sequence number>", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	out, err := s.st.Report().ChromeTraceApp(seq)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// aggregateDoc is the /aggregate response: cumulative percentile tables
// over everything the server has ingested, at fleet granularity
// (components), full (component, queue, node, instance) granularity
// (rows), and worst-group callouts per component.
type aggregateDoc struct {
	Alpha       float64              `json:"alpha"`
	Apps        uint64               `json:"apps_ingested"`
	OverflowObs uint64               `json:"overflow_observations,omitempty"`
	Components  []core.BreakdownRow  `json:"components"`
	Rows        []core.BreakdownRow  `json:"rows"`
	WorstNodes  map[string]worstSpot `json:"worst_nodes,omitempty"`
	WorstQueues map[string]worstSpot `json:"worst_queues,omitempty"`
}

type worstSpot struct {
	Name  string  `json:"name"`
	P99MS float64 `json:"p99_ms"`
}

// handleAggregate serves the cumulative cluster breakdown. An optional
// ?component=alloc query narrows both tables to one component.
func (s *liveServer) handleAggregate(w http.ResponseWriter, r *http.Request) {
	comp := r.URL.Query().Get("component")
	s.obsMu.Lock()
	cb := s.eng.Breakdown()
	doc := aggregateDoc{
		Alpha:       cb.Alpha,
		Apps:        s.eng.AppsIngested(),
		OverflowObs: s.eng.OverflowObservations(),
		Components:  cb.ComponentRows(),
		Rows:        cb.Rows(),
		WorstNodes:  make(map[string]worstSpot),
		WorstQueues: make(map[string]worstSpot),
	}
	for _, c := range core.Components {
		if comp != "" && c != comp {
			continue
		}
		if n, p99, ok := core.Worst(cb.ByNode(c), 1); ok {
			doc.WorstNodes[c] = worstSpot{Name: n, P99MS: p99}
		}
		if q, p99, ok := core.Worst(cb.ByQueue(c), 1); ok {
			doc.WorstQueues[c] = worstSpot{Name: q, P99MS: p99}
		}
	}
	s.obsMu.Unlock()
	if comp != "" {
		doc.Components = filterRows(doc.Components, comp)
		doc.Rows = filterRows(doc.Rows, comp)
	}
	writeJSON(w, doc)
}

func filterRows(rows []core.BreakdownRow, component string) []core.BreakdownRow {
	out := rows[:0]
	for _, r := range rows {
		if r.Component == component {
			out = append(out, r)
		}
	}
	return out
}

// sloDoc is the /slo response: every rule's current evaluation plus the
// recorded firing/resolved transitions, all on the event clock.
type sloDoc struct {
	NowMS   int64            `json:"now_ms"`
	Firing  int              `json:"firing"`
	Rules   []slo.RuleStatus `json:"rules"`
	History []slo.Transition `json:"history"`
}

func (s *liveServer) handleSLO(w http.ResponseWriter, _ *http.Request) {
	s.obsMu.Lock()
	doc := sloDoc{
		NowMS:   s.eng.Now(),
		Firing:  s.eng.FiringCount(),
		Rules:   s.eng.Status(),
		History: s.eng.History(),
	}
	s.obsMu.Unlock()
	writeJSON(w, doc)
}

// healthDoc is the /healthz body. Status is "ok" until
// healthFailThreshold consecutive scans fail, then "unhealthy" with 503.
type healthDoc struct {
	Status         string `json:"status"`
	Events         int    `json:"events"`
	Apps           int    `json:"apps"`
	AppsIngested   uint64 `json:"apps_ingested"`
	LastScanUnixMS int64  `json:"last_scan_unix_ms,omitempty"`
	LastError      string `json:"last_error,omitempty"`
	ConsecFails    int    `json:"consecutive_failures,omitempty"`
}

func (s *liveServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	doc := healthDoc{
		Status:         "ok",
		Events:         s.st.EventCount(),
		Apps:           len(s.st.Apps()),
		LastScanUnixMS: s.lastScanUnixMS,
		LastError:      s.lastErr,
		ConsecFails:    s.consecFails,
	}
	s.mu.Unlock()
	s.obsMu.Lock()
	doc.AppsIngested = s.eng.AppsIngested()
	s.obsMu.Unlock()
	code := http.StatusOK
	if doc.ConsecFails >= healthFailThreshold {
		doc.Status = "unhealthy"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.MarshalIndent(doc, "", "  ")
	w.Write(append(b, '\n'))
}

func writeJSON(w http.ResponseWriter, doc any) {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// start listens on addr, launches the background ingestion loop, and
// serves HTTP. It returns the bound listener so callers (and tests) can
// learn the actual address when addr is ":0".
func (s *liveServer) start(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.ingest()
	go http.Serve(ln, s.handler())
	return ln, nil
}

// close stops the ingestion loop and the stream's worker goroutines.
func (s *liveServer) close() {
	close(s.done)
	s.mu.Lock()
	s.st.Close()
	s.mu.Unlock()
}

// serveDir is the -serve entry point: tail dir forever, serving the live
// endpoints on addr.
func serveDir(addr, dir string, workers, retain, maxApps int, rules []slo.Rule) error {
	srv := newLiveServer(dir, workers, retain, maxApps, rules)
	ln, err := srv.start(addr)
	if err != nil {
		return err
	}
	defer srv.close()
	fmt.Printf("sdchecker: serving %s on http://%s (endpoints: /metrics /apps /trace/<seq> /aggregate /slo /healthz; %d SLO rules)\n",
		dir, ln.Addr(), len(rules))
	select {} // run until interrupted
}
