package main

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// liveServer runs the -follow tailer behind an HTTP endpoint: the log
// tree is polled in the background while /metrics, /apps, /trace/<seq>
// and /healthz expose the stream's current picture. Completed
// applications beyond the retention limit are evicted so the server can
// tail a cluster indefinitely.
type liveServer struct {
	mu     sync.Mutex // guards st and sc (core.Stream is not thread-safe)
	st     *core.Stream
	sc     *dirScanner
	reg    *metrics.Registry
	retain int
	// maxApps hard-caps tracked applications, complete or not: degraded
	// logs can mint unbounded app IDs whose traces never complete, which
	// EvictCompleted alone would hold forever.
	maxApps int
	done    chan struct{}
}

func newLiveServer(dir string, retain, maxApps int) *liveServer {
	reg := metrics.NewRegistry()
	st := core.NewStream()
	st.Instrument(reg)
	return &liveServer{
		st:      st,
		sc:      newDirScanner(dir, st),
		reg:     reg,
		retain:  retain,
		maxApps: maxApps,
		done:    make(chan struct{}),
	}
}

// pollOnce runs one ingestion pass: scan the tree, evict completed apps
// beyond the retention limit, then enforce the hard memory bound.
func (s *liveServer) pollOnce() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.sc.scan()
	if s.retain >= 0 {
		s.st.EvictCompleted(s.retain)
	}
	if s.maxApps >= 0 {
		s.st.EvictOldest(s.maxApps)
	}
	return err
}

// ingest polls until the server is closed. Scan errors are transient
// (files may disappear mid-walk while a collector rotates them), so they
// are reported and the loop keeps going.
func (s *liveServer) ingest() {
	for {
		if err := s.pollOnce(); err != nil {
			fmt.Printf("sdchecker: scan: %v\n", err)
		}
		select {
		case <-s.done:
			return
		case <-time.After(time.Second):
		}
	}
}

func (s *liveServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/apps", s.handleApps)
	mux.HandleFunc("/trace/", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *liveServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.reg.WriteText(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *liveServer) handleApps(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out, err := s.st.Report().JSON()
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, out)
}

func (s *liveServer) handleTrace(w http.ResponseWriter, r *http.Request) {
	seqStr := strings.TrimPrefix(r.URL.Path, "/trace/")
	seq, err := strconv.Atoi(seqStr)
	if err != nil || seq <= 0 {
		http.Error(w, "usage: /trace/<application sequence number>", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	out, err := s.st.Report().ChromeTraceApp(seq)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

func (s *liveServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	events := s.st.EventCount()
	apps := len(s.st.Apps())
	s.mu.Unlock()
	fmt.Fprintf(w, "ok events=%d apps=%d\n", events, apps)
}

// start listens on addr, launches the background ingestion loop, and
// serves HTTP. It returns the bound listener so callers (and tests) can
// learn the actual address when addr is ":0".
func (s *liveServer) start(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.ingest()
	go http.Serve(ln, s.handler())
	return ln, nil
}

// close stops the ingestion loop.
func (s *liveServer) close() { close(s.done) }

// serveDir is the -serve entry point: tail dir forever, serving the live
// endpoints on addr.
func serveDir(addr, dir string, retain, maxApps int) error {
	srv := newLiveServer(dir, retain, maxApps)
	ln, err := srv.start(addr)
	if err != nil {
		return err
	}
	defer srv.close()
	fmt.Printf("sdchecker: serving %s on http://%s (endpoints: /metrics /apps /trace/<seq> /healthz)\n",
		dir, ln.Addr())
	select {} // run until interrupted
}
