package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/slo"
)

// healthFailThreshold is how many consecutive failed scans flip /healthz
// to 503: one failure is usually a collector rotating files mid-walk, a
// sustained run means the tree is gone or unreadable.
const healthFailThreshold = 5

// Self-observability defaults: the watchdog declares a stall after
// defaultStallAfterMS without scan or shard progress (well above the
// one-second poll cadence), checking every defaultWatchdogTickMS; the
// shipped self-SLO objective is a scan p99 under defaultScanP99MS.
const (
	defaultStallAfterMS   = 30_000
	defaultWatchdogTickMS = 1_000
	defaultScanP99MS      = 10_000
)

// warnBurstThreshold is how many newly dropped (unmatched) lines between
// two scans count as a warning burst worth a flight-recorder event.
const warnBurstThreshold = 64

// defaultSelfRules builds the shipped self-SLO: the serve loop's own
// scan latency, fed back through the same engine that evaluates mined
// delays — the checker dogfooding its SLO machinery.
func defaultSelfRules(thresholdMS int64) []slo.Rule {
	r, err := slo.ParseRuleFor(
		fmt.Sprintf("pipeline-scan-p99: p99(scan) < %dms over 5m", thresholdMS), obs.Stages)
	if err != nil {
		panic("sdchecker: default self-SLO rule: " + err.Error())
	}
	return []slo.Rule{r}
}

// serveOptions configures a liveServer. The zero value is not useful;
// start from defaultServeOptions.
type serveOptions struct {
	workers int
	retain  int
	maxApps int
	rules   []slo.Rule // mined-delay SLOs (-slo)
	// selfRules are the pipeline self-SLOs; nil ships the default
	// scan-p99 rule.
	selfRules []slo.Rule
	// debug exposes net/http/pprof under /debug/pprof/ (the -debug flag).
	debug bool
	// stallAfterMS / watchdogTickMS tune the stall detector (0 = defaults).
	stallAfterMS   int64
	watchdogTickMS int64
	// clock, when set, replaces the pipeline's wall clock (tests; makes
	// flight dumps deterministic).
	clock func() int64
	// scanGate, when set, runs at the top of every pollOnce before any
	// lock is taken — the stall-injection point for watchdog tests.
	scanGate func()
}

func defaultServeOptions(workers int) serveOptions {
	return serveOptions{
		workers:        workers,
		retain:         4096,
		maxApps:        16384,
		stallAfterMS:   defaultStallAfterMS,
		watchdogTickMS: defaultWatchdogTickMS,
	}
}

// liveServer runs the -follow tailer behind an HTTP endpoint: the log
// tree is polled in the background while /metrics, /apps, /trace/<seq>,
// /trace/pipeline, /aggregate, /slo, /debug/flight and /healthz expose
// the stream's current picture. Completed applications beyond the
// retention limit are evicted so the server can tail a cluster
// indefinitely; the SLO engine keeps its own (bounded) aggregate state,
// so evicting an app does not lose its delay observations.
//
// The server also observes itself: a pipeline (internal/obs) carries
// stage spans, the flight recorder, and self-observations; a watchdog
// goroutine checks for stalls and flips /healthz to degraded.
type liveServer struct {
	mu     sync.Mutex // guards st and sc; taken before obsMu when both are needed
	st     ingestStream
	sc     *dirScanner
	reg    *metrics.Registry
	retain int
	// maxApps hard-caps tracked applications, complete or not: degraded
	// logs can mint unbounded app IDs whose traces never complete, which
	// EvictCompleted alone would hold forever.
	maxApps int
	done    chan struct{}

	// Goroutine lifecycle: start() accounts every goroutine it launches
	// (ingest, watchdog, HTTP acceptor) here, and close() joins them
	// after closing done and the HTTP server, so no goroutine outlives
	// the server — tests that start and close servers in sequence never
	// accumulate stray acceptors or per-connection handlers.
	wg sync.WaitGroup
	hs *http.Server // built by start(); Close()d to stop the acceptor and live conns

	// obsMu guards eng and pinned. With -workers > 1 the completion hook
	// runs on shard worker goroutines while HTTP handlers read the
	// engine, so the engine needs its own lock — and one the hook can
	// take without touching mu (pollOnce holds mu across Quiesce, which
	// waits for those very hooks to finish).
	obsMu sync.Mutex
	eng   *slo.Engine
	// pinned maps exemplar-referenced app IDs to their minimal summaries
	// so /explain keeps resolving decompositions and trace links after
	// -retain eviction drops the full trace. Synced each scan to exactly
	// the apps the exemplar reservoirs reference, so it is bounded by
	// the (bounded) reservoir population.
	pinned map[string]*core.AppSummary

	// selfMu guards selfEng, the engine evaluating the pipeline's own
	// stage latencies. Never nested inside obsMu or vice versa; pollOnce
	// takes it briefly after releasing neither (it holds mu only).
	selfMu  sync.Mutex
	selfEng *slo.Engine

	// Self-observability: pipeline, watchdog, runtime collector.
	pl       *obs.Pipeline
	wd       *obs.Watchdog
	rt       *obs.RuntimeCollector
	debug    bool
	wdTickMS int64
	scanGate func()

	// Poll health, for /healthz (guarded by mu).
	lastScanUnixMS int64
	lastErr        string
	consecFails    int
	lastDropped    int64

	compHist   map[string]*metrics.Histogram
	scanDur    *metrics.Histogram
	firing     *metrics.Gauge
	ingested   *metrics.Gauge
	selfFiring *metrics.Gauge
	dropped    *metrics.Counter

	// Attribution-layer metrics: offered exemplar observations, current
	// reservoir/top-k footprint, pinned summaries.
	exOffered   *metrics.Counter // attr_exemplars_total
	exTracked   *metrics.Gauge   // attr_exemplars_tracked
	topkEntries *metrics.Gauge   // attr_topk_entries
	pinnedApps  *metrics.Gauge   // attr_pinned_apps
}

func newLiveServer(dir string, o serveOptions) *liveServer {
	if o.stallAfterMS <= 0 {
		o.stallAfterMS = defaultStallAfterMS
	}
	if o.watchdogTickMS <= 0 {
		o.watchdogTickMS = defaultWatchdogTickMS
	}
	if o.selfRules == nil {
		o.selfRules = defaultSelfRules(defaultScanP99MS)
	}
	reg := metrics.NewRegistry()
	st := newIngestStream(o.workers)
	st.Instrument(reg)
	var plOpts []obs.Option
	if o.clock != nil {
		plOpts = append(plOpts, obs.WithClock(o.clock))
	}
	pl := obs.New(reg, plOpts...)
	st.ObservePipeline(pl)
	s := &liveServer{
		st:       st,
		eng:      slo.NewEngine(o.rules),
		selfEng:  slo.NewEngine(o.selfRules),
		sc:       newDirScanner(dir, st),
		reg:      reg,
		retain:   o.retain,
		maxApps:  o.maxApps,
		done:     make(chan struct{}),
		pl:       pl,
		wd:       obs.NewWatchdog(pl, reg, o.stallAfterMS),
		rt:       obs.NewRuntimeCollector(reg),
		debug:    o.debug,
		wdTickMS: o.watchdogTickMS,
		scanGate: o.scanGate,
		compHist: map[string]*metrics.Histogram{},
		scanDur: reg.Histogram("serve_scan_duration_ms",
			metrics.ExpBuckets(1, 2, 16)),
		firing:      reg.Gauge("slo_rules_firing"),
		ingested:    reg.Gauge("slo_apps_ingested"),
		selfFiring:  reg.Gauge("slo_self_rules_firing"),
		dropped:     reg.Counter("core_stream_lines_dropped_total"),
		pinned:      map[string]*core.AppSummary{},
		exOffered:   reg.Counter("attr_exemplars_total"),
		exTracked:   reg.Gauge("attr_exemplars_tracked"),
		topkEntries: reg.Gauge("attr_topk_entries"),
		pinnedApps:  reg.Gauge("attr_pinned_apps"),
	}
	s.sc.pl = pl
	// SLO alert edges land in the flight recorder so stall snapshots show
	// fire/resolve transitions in context. The engines invoke the hook
	// under the locks that already serialize them (obsMu / selfMu);
	// RecordSLOTransition only touches the thread-safe recorder.
	s.eng.OnTransition(func(tr slo.Transition) {
		s.pl.RecordSLOTransition(tr.Rule, tr.State == slo.StateFiring.String(), len(tr.Exemplars))
	})
	s.selfEng.OnTransition(func(tr slo.Transition) {
		s.pl.RecordSLOTransition(tr.Rule, tr.State == slo.StateFiring.String(), len(tr.Exemplars))
	})
	// The automatic snapshot is kept by the watchdog (served at
	// /debug/flight?snapshot=last); the hook just announces it.
	s.wd.OnSnapshot(func(dump []byte) {
		fmt.Printf("sdchecker: watchdog stall: flight recorder snapshot taken (%d bytes)\n", len(dump))
	})
	// Component-delay histograms: exponential buckets from 1ms to ~9min
	// cover the paper's sub-second tail and the worst degraded runs.
	for _, c := range core.Components {
		s.compHist[c] = reg.Histogram("core_component_delay_ms",
			metrics.ExpBuckets(1, 2, 20), "component", c)
	}
	// Completed decompositions flow into the SLO engine and the
	// component histograms. With a sharded stream the hook runs on
	// worker goroutines: histograms are thread-safe, the engine is
	// guarded by obsMu. The whole fold is the pipeline's aggregate
	// stage, timed per application (a batch, not a line).
	st.OnComplete(func(a *core.AppTrace) {
		t := s.pl.Begin()
		observations := core.Observations(a)
		for _, o := range observations {
			s.compHist[o.Component].Observe(float64(o.MS))
		}
		s.obsMu.Lock()
		s.eng.ObserveApp(a)
		s.obsMu.Unlock()
		s.exOffered.Add(int64(len(observations)))
		s.pl.StageBatch(obs.StageAggregate, -1, t, len(observations))
	})
	return s
}

// pollOnce runs one ingestion pass: scan the tree, wait for the workers
// to absorb everything, advance the SLO engine's event clock to the
// newest log timestamp (so rules resolve when their windows drain even
// with no new completions), evict completed apps beyond the retention
// limit, then enforce the hard memory bound. The pass is bracketed for
// the watchdog and recorded as the pipeline's scan stage; buffered
// stage latencies drain into the self-SLO engine at the end.
func (s *liveServer) pollOnce() error {
	if gate := s.scanGate; gate != nil {
		gate()
	}
	t := s.pl.Begin()
	s.wd.ScanBegin(t.MS)
	s.mu.Lock()
	start := time.Now()
	_, err := s.sc.scan()
	s.st.Quiesce()
	s.scanDur.Observe(float64(time.Since(start).Milliseconds()))
	clock := s.st.LastEventMS()
	s.obsMu.Lock()
	s.eng.Advance(clock)
	s.firing.Set(int64(s.eng.FiringCount()))
	s.ingested.Set(int64(s.eng.AppsIngested()))
	// Pin exemplar-referenced app summaries BEFORE eviction below, while
	// the full traces are still live in the stream.
	s.syncPinned()
	ex, tk := s.eng.Breakdown().AttrStats()
	s.exTracked.Set(int64(ex))
	s.topkEntries.Set(int64(tk))
	s.pinnedApps.Set(int64(len(s.pinned)))
	s.obsMu.Unlock()
	if s.retain >= 0 {
		s.st.EvictCompleted(s.retain)
	}
	if s.maxApps >= 0 {
		s.st.EvictOldest(s.maxApps)
	}
	if d := s.dropped.Value(); d-s.lastDropped >= warnBurstThreshold {
		s.pl.RecordWarnBurst(d - s.lastDropped)
		s.lastDropped = d
	} else {
		s.lastDropped = d
	}
	if err != nil {
		s.consecFails++
		s.lastErr = err.Error()
	} else {
		s.consecFails = 0
		s.lastErr = ""
		s.lastScanUnixMS = time.Now().UnixMilli()
	}
	s.mu.Unlock()
	s.pl.StageBatch(obs.StageScan, -1, t, 1)
	s.wd.ScanEnd(s.pl.Begin().MS)
	s.feedSelfSLO()
	return err
}

// syncPinned reconciles the pinned-summary map with the set of apps the
// exemplar reservoirs currently reference: newly referenced live apps
// are summarized, no-longer-referenced ones dropped. The caller must
// hold BOTH mu (stream lookups) and obsMu (engine breakdown + pinned).
func (s *liveServer) syncPinned() {
	refs := s.eng.Breakdown().ExemplarApps()
	for app := range s.pinned {
		if !refs[app] {
			delete(s.pinned, app)
		}
	}
	for app := range refs {
		if _, ok := s.pinned[app]; ok {
			continue
		}
		id, err := ids.ParseAppID(app)
		if err != nil {
			continue
		}
		if a := s.st.App(id); a != nil {
			s.pinned[app] = core.SummarizeApp(a)
		}
	}
}

// feedSelfSLO drains the pipeline's buffered stage latencies into the
// self-SLO engine, each at its own event time (sub-millisecond stage
// batches round up to 1ms so they register against the windows).
func (s *liveServer) feedSelfSLO() {
	samples := s.pl.DrainSelf()
	if len(samples) == 0 {
		return
	}
	s.selfMu.Lock()
	for _, sm := range samples {
		s.selfEng.ObserveAt([]core.Observation{{Component: sm.Stage, MS: (sm.DurUS + 999) / 1000}}, sm.AtMS)
	}
	s.selfFiring.Set(int64(s.selfEng.FiringCount()))
	s.selfMu.Unlock()
}

// ingest polls until the server is closed. Scan errors are transient
// (files may disappear mid-walk while a collector rotates them), so they
// are reported and the loop keeps going.
func (s *liveServer) ingest() {
	for {
		if err := s.pollOnce(); err != nil {
			fmt.Printf("sdchecker: scan: %v\n", err)
		}
		select {
		case <-s.done:
			return
		case <-time.After(time.Second):
		}
	}
}

// watchdogLoop is the independent checker: it runs on its own ticker so
// a scan loop stuck inside pollOnce is still detected. Each tick
// samples shard progress, evaluates the stall conditions, and refreshes
// the runtime self-metrics.
func (s *liveServer) watchdogLoop() {
	tick := time.Duration(s.wdTickMS) * time.Millisecond
	for {
		select {
		case <-s.done:
			return
		case <-time.After(tick):
		}
		now := s.pl.Begin().MS
		if stats := s.st.ShardStats(); len(stats) > 0 {
			queued := make([]int, len(stats))
			processed := make([]int64, len(stats))
			for i, st := range stats {
				queued[i] = st.Queued
				processed[i] = st.Processed
			}
			s.wd.ObserveShards(queued, processed, now)
		}
		s.wd.Check(now)
		s.rt.Collect()
	}
}

func (s *liveServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/apps", s.handleApps)
	mux.HandleFunc("/trace/", s.handleTrace)
	mux.HandleFunc("/trace/pipeline", s.handleTracePipeline)
	mux.HandleFunc("/aggregate", s.handleAggregate)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	if s.debug {
		// Off by default: profiles expose call stacks and flag values.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *liveServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.rt.Collect() // runtime gauges are as fresh as the scrape
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.reg.WriteText(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *liveServer) handleApps(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out, err := s.st.Report().JSON()
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, out)
}

func (s *liveServer) handleTrace(w http.ResponseWriter, r *http.Request) {
	seqStr := strings.TrimPrefix(r.URL.Path, "/trace/")
	seq, err := strconv.Atoi(seqStr)
	if err != nil || seq <= 0 {
		http.Error(w, "usage: /trace/<application sequence number> or /trace/pipeline", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	out, err := s.st.Report().ChromeTraceApp(seq)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// handleTracePipeline renders the pipeline's own stage spans as a
// Perfetto track group next to every mined application timeline: shard
// imbalance and scan cadence are visible in the same trace UI as the
// scheduling delays they produced.
func (s *liveServer) handleTracePipeline(w http.ResponseWriter, _ *http.Request) {
	spans := s.pl.Spans()
	s.mu.Lock()
	rep := s.st.Report()
	s.mu.Unlock()
	for _, a := range rep.Apps {
		spans = append(spans, core.AppSpans(a)...)
	}
	out, err := sim.ChromeTrace(spans, 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// handleFlight dumps the flight recorder. ?snapshot=last returns the
// automatic dump the watchdog took when it last declared a stall.
func (s *liveServer) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("snapshot") == "last" {
		d := s.wd.LastDump()
		if d == nil {
			http.Error(w, "no automatic snapshot taken", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(d)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.pl.FlightDump().JSON())
}

// aggregateDoc is the /aggregate response: cumulative percentile tables
// over everything the server has ingested, at fleet granularity
// (components), full (component, queue, node, instance) granularity
// (rows), and worst-group callouts per component.
type aggregateDoc struct {
	Alpha       float64              `json:"alpha"`
	Apps        uint64               `json:"apps_ingested"`
	OverflowObs uint64               `json:"overflow_observations,omitempty"`
	Components  []core.BreakdownRow  `json:"components"`
	Rows        []core.BreakdownRow  `json:"rows"`
	WorstNodes  map[string]worstSpot `json:"worst_nodes,omitempty"`
	WorstQueues map[string]worstSpot `json:"worst_queues,omitempty"`
}

type worstSpot struct {
	Name  string  `json:"name"`
	P99MS float64 `json:"p99_ms"`
}

// handleAggregate serves the cumulative cluster breakdown. An optional
// ?component=alloc query narrows both tables to one component.
func (s *liveServer) handleAggregate(w http.ResponseWriter, r *http.Request) {
	comp := r.URL.Query().Get("component")
	s.obsMu.Lock()
	cb := s.eng.Breakdown()
	doc := aggregateDoc{
		Alpha:       cb.Alpha,
		Apps:        s.eng.AppsIngested(),
		OverflowObs: s.eng.OverflowObservations(),
		Components:  cb.ComponentRows(),
		Rows:        cb.Rows(),
		WorstNodes:  make(map[string]worstSpot),
		WorstQueues: make(map[string]worstSpot),
	}
	for _, c := range core.Components {
		if comp != "" && c != comp {
			continue
		}
		if n, p99, ok := core.Worst(cb.ByNode(c), 1); ok {
			doc.WorstNodes[c] = worstSpot{Name: n, P99MS: p99}
		}
		if q, p99, ok := core.Worst(cb.ByQueue(c), 1); ok {
			doc.WorstQueues[c] = worstSpot{Name: q, P99MS: p99}
		}
	}
	s.obsMu.Unlock()
	if comp != "" {
		doc.Components = filterRows(doc.Components, comp)
		doc.Rows = filterRows(doc.Rows, comp)
	}
	writeJSON(w, doc)
}

func filterRows(rows []core.BreakdownRow, component string) []core.BreakdownRow {
	out := rows[:0]
	for _, r := range rows {
		if r.Component == component {
			out = append(out, r)
		}
	}
	return out
}

// explainFlightContext is how many flight events either side of an
// exemplar's completion-hook event the /explain response includes.
const explainFlightContext = 4

// handleExplain serves the ranked tail-attribution report: which cells
// dominate ?component='s tail at ?q= (default total, 0.99), their
// heavy-hitter apps, and every exemplar resolved to its decomposition,
// /trace/<seq> deep link, and the flight-recorder slice around its
// completion. Exemplars of evicted apps resolve through the pinned
// summaries.
func (s *liveServer) handleExplain(w http.ResponseWriter, r *http.Request) {
	comp := r.URL.Query().Get("component")
	if comp == "" {
		comp = "total"
	}
	known := false
	for _, c := range core.Components {
		if c == comp {
			known = true
			break
		}
	}
	if !known {
		http.Error(w, "unknown component (one of "+strings.Join(core.Components, "|")+")", http.StatusBadRequest)
		return
	}
	q := 0.99
	if qs := r.URL.Query().Get("q"); qs != "" {
		v, err := strconv.ParseFloat(qs, 64)
		if err != nil || !(v > 0 && v <= 1) {
			http.Error(w, "q must be a quantile in (0, 1]", http.StatusBadRequest)
			return
		}
		q = v
	}
	// Lock order: mu before obsMu, as everywhere else.
	s.mu.Lock()
	s.obsMu.Lock()
	doc := s.eng.Breakdown().Explain(comp, q, core.DefaultExplainCells, func(app string) (*core.AppSummary, bool) {
		if id, err := ids.ParseAppID(app); err == nil {
			if a := s.st.App(id); a != nil {
				return core.SummarizeApp(a), false
			}
		}
		if sum := s.pinned[app]; sum != nil {
			return sum, true
		}
		return nil, false
	})
	s.obsMu.Unlock()
	s.mu.Unlock()
	attachFlightSlices(doc, s.pl.FlightDump())
	writeJSON(w, doc)
}

// attachFlightSlices fills each exemplar's Flight field with the events
// around its application's hook_fired entry — what the pipeline was
// doing when that app completed — when the flight ring still holds it.
func attachFlightSlices(doc *core.ExplainDoc, d obs.Dump) {
	idx := make(map[string]int)
	for i, e := range d.Events {
		if e.Kind == obs.KindHook {
			idx[e.Detail] = i
		}
	}
	if len(idx) == 0 {
		return
	}
	for ci := range doc.Cells {
		for ei := range doc.Cells[ci].Exemplars {
			ex := &doc.Cells[ci].Exemplars[ei]
			i, ok := idx[ex.App]
			if !ok {
				continue
			}
			lo := i - explainFlightContext
			if lo < 0 {
				lo = 0
			}
			hi := i + explainFlightContext + 1
			if hi > len(d.Events) {
				hi = len(d.Events)
			}
			ex.Flight = append([]obs.Event(nil), d.Events[lo:hi]...)
		}
	}
}

// sloDoc is the /slo response: every rule's current evaluation plus the
// recorded firing/resolved transitions, all on the event clock — and
// the self-applied rules over the pipeline's own stage latencies.
type sloDoc struct {
	NowMS       int64            `json:"now_ms"`
	Firing      int              `json:"firing"`
	Rules       []slo.RuleStatus `json:"rules"`
	History     []slo.Transition `json:"history"`
	SelfFiring  int              `json:"self_firing"`
	SelfRules   []slo.RuleStatus `json:"self_rules"`
	SelfHistory []slo.Transition `json:"self_history,omitempty"`
}

func (s *liveServer) handleSLO(w http.ResponseWriter, _ *http.Request) {
	s.obsMu.Lock()
	doc := sloDoc{
		NowMS:   s.eng.Now(),
		Firing:  s.eng.FiringCount(),
		Rules:   s.eng.Status(),
		History: s.eng.History(),
	}
	s.obsMu.Unlock()
	s.selfMu.Lock()
	doc.SelfFiring = s.selfEng.FiringCount()
	doc.SelfRules = s.selfEng.Status()
	doc.SelfHistory = s.selfEng.History()
	s.selfMu.Unlock()
	writeJSON(w, doc)
}

// healthDoc is the /healthz body. Status is "ok" until either
// healthFailThreshold consecutive scans fail ("unhealthy", 503) or the
// pipeline watchdog declares a stall ("degraded", 503 with the reason
// and the automatic flight-snapshot count).
type healthDoc struct {
	Status         string `json:"status"`
	Events         int    `json:"events"`
	Apps           int    `json:"apps"`
	AppsIngested   uint64 `json:"apps_ingested"`
	LastScanUnixMS int64  `json:"last_scan_unix_ms,omitempty"`
	LastError      string `json:"last_error,omitempty"`
	ConsecFails    int    `json:"consecutive_failures,omitempty"`
	Watchdog       string `json:"watchdog,omitempty"`
	// WatchdogEpisodes counts distinct stall episodes ever declared;
	// LastSnapshotSeq is the flight seq of the latest automatic snapshot
	// event, so operators can line /healthz up against /debug/flight.
	WatchdogEpisodes int64  `json:"watchdog_episodes"`
	LastSnapshotSeq  uint64 `json:"last_flight_snapshot_seq,omitempty"`
	SelfSLOFiring    int    `json:"self_slo_firing"`
	FlightRecorded   uint64 `json:"flight_events_recorded"`
	FlightSnapshots  int64  `json:"flight_snapshots"`
}

func (s *liveServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	doc := healthDoc{
		Status:         "ok",
		Events:         s.st.EventCount(),
		Apps:           len(s.st.Apps()),
		LastScanUnixMS: s.lastScanUnixMS,
		LastError:      s.lastErr,
		ConsecFails:    s.consecFails,
	}
	s.mu.Unlock()
	s.obsMu.Lock()
	doc.AppsIngested = s.eng.AppsIngested()
	s.obsMu.Unlock()
	s.selfMu.Lock()
	doc.SelfSLOFiring = s.selfEng.FiringCount()
	s.selfMu.Unlock()
	doc.FlightRecorded = s.pl.Flight().Recorded()
	doc.FlightSnapshots = s.wd.Snapshots()
	doc.WatchdogEpisodes = s.wd.Episodes()
	doc.LastSnapshotSeq = s.wd.LastSnapshotSeq()
	stalled, reason := s.wd.Stalled()
	code := http.StatusOK
	switch {
	case doc.ConsecFails >= healthFailThreshold:
		doc.Status = "unhealthy"
		code = http.StatusServiceUnavailable
	case stalled:
		doc.Status = "degraded"
		doc.Watchdog = reason
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.MarshalIndent(doc, "", "  ")
	w.Write(append(b, '\n'))
}

func writeJSON(w http.ResponseWriter, doc any) {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// start listens on addr, launches the background ingestion loop and the
// watchdog checker, and serves HTTP. It returns the bound listener so
// callers (and tests) can learn the actual address when addr is ":0".
func (s *liveServer) start(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.hs = &http.Server{Handler: s.handler()}
	s.wg.Add(3)
	go func() { defer s.wg.Done(); s.ingest() }()
	go func() { defer s.wg.Done(); s.watchdogLoop() }()
	go func() {
		defer s.wg.Done()
		// Serve returns once close() closes the server; the
		// ErrServerClosed it reports then is the normal shutdown path,
		// not a failure.
		_ = s.hs.Serve(ln)
	}()
	return ln, nil
}

// close stops the ingestion loop, the HTTP server (listener and live
// connections both), and the stream's worker goroutines, and joins
// every goroutine start launched before returning.
func (s *liveServer) close() {
	close(s.done)
	if s.hs != nil {
		s.hs.Close()
	}
	s.mu.Lock()
	s.st.Close()
	s.mu.Unlock()
	s.wg.Wait()
}

// serveDir is the -serve entry point: tail dir forever, serving the live
// endpoints on addr.
func serveDir(addr, dir string, o serveOptions) error {
	srv := newLiveServer(dir, o)
	ln, err := srv.start(addr)
	if err != nil {
		return err
	}
	defer srv.close()
	extra := ""
	if o.debug {
		extra = " /debug/pprof/*"
	}
	fmt.Printf("sdchecker: serving %s on http://%s (endpoints: /metrics /apps /trace/<seq> /trace/pipeline /aggregate /explain /slo /healthz /debug/flight%s; %d SLO rules, %d self rules)\n",
		dir, ln.Addr(), extra, len(o.rules), len(srv.selfEng.Rules()))
	select {} // run until interrupted
}
