package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/workload"
)

// writeScenarioLogs simulates a small cluster run and materializes its
// log tree, returning the directory.
func writeScenarioLogs(t *testing.T) string {
	t.Helper()
	s := experiments.NewScenario(experiments.DefaultOptions())
	tables := workload.CreateTPCHTables(s.FS, 2048)
	for i := 0; i < 2; i++ {
		cfg := spark.DefaultConfig(workload.TPCHQuery(i+1, 2048, tables))
		s.Eng.At(sim.Time(int64(i)*4000+1000), func() { spark.Submit(s.RM, s.FS, cfg) })
	}
	s.Run(sim.Time(1800 * sim.Second))
	dir := t.TempDir()
	if err := s.Sink.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeEndpoints starts the real -serve server (listener, background
// ingestion loop and all) on a simulated log tree and exercises every
// endpoint while ingestion is live.
func TestServeEndpoints(t *testing.T) {
	dir := writeScenarioLogs(t)
	srv := newLiveServer(dir, 1024, 16384)
	ln, err := srv.start(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	// The ingestion loop polls in the background; wait until the first
	// scan has absorbed the tree.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := get(t, base+"/healthz")
		if code != http.StatusOK {
			t.Fatalf("/healthz status %d", code)
		}
		if strings.HasPrefix(body, "ok ") && !strings.Contains(body, "apps=0") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingestion never caught up: %q", body)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// /metrics: Prometheus text format with the stream's series.
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE core_stream_lines_total counter",
		"core_stream_apps_completed",
		"core_parser_hits_total{regex=\"rm_container\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	for _, ln := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(ln, "#") || ln == "" {
			continue
		}
		if !strings.Contains(ln, " ") {
			t.Errorf("malformed exposition line %q", ln)
		}
	}

	// /apps: JSON array with both applications and full decompositions.
	code, body = get(t, base+"/apps")
	if code != http.StatusOK {
		t.Fatalf("/apps status %d", code)
	}
	var apps []struct {
		App    string `json:"app"`
		Decomp struct {
			Total int64 `json:"total_ms"`
		} `json:"decomposition"`
	}
	if err := json.Unmarshal([]byte(body), &apps); err != nil {
		t.Fatalf("/apps is not valid JSON: %v", err)
	}
	if len(apps) != 2 {
		t.Fatalf("/apps returned %d apps, want 2", len(apps))
	}
	for _, a := range apps {
		if a.Decomp.Total <= 0 {
			t.Errorf("app %s has no total decomposition: %+v", a.App, a.Decomp)
		}
	}

	// /trace/1: Chrome trace-event JSON with the component spans.
	code, body = get(t, base+"/trace/1")
	if code != http.StatusOK {
		t.Fatalf("/trace/1 status %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace/1 is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"am", "driver", "executor", "localization", "launching"} {
		if !names[want] {
			t.Errorf("/trace/1 missing span %q (got %v)", want, names)
		}
	}

	// Error paths.
	if code, _ := get(t, base+"/trace/999"); code != http.StatusNotFound {
		t.Errorf("/trace/999 status %d, want 404", code)
	}
	if code, _ := get(t, base+"/trace/bogus"); code != http.StatusBadRequest {
		t.Errorf("/trace/bogus status %d, want 400", code)
	}
	if code, _ := get(t, fmt.Sprintf("%s/healthz", base)); code != http.StatusOK {
		t.Error("healthz broke mid-test")
	}
}
