package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/log4j"
	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/spark"
	"repro/internal/workload"
)

// writeScenarioLogs simulates a small cluster run and materializes its
// log tree, returning the directory.
func writeScenarioLogs(t *testing.T) string {
	t.Helper()
	s := experiments.NewScenario(experiments.DefaultOptions())
	tables := workload.CreateTPCHTables(s.FS, 2048)
	for i := 0; i < 2; i++ {
		cfg := spark.DefaultConfig(workload.TPCHQuery(i+1, 2048, tables))
		s.Eng.At(sim.Time(int64(i)*4000+1000), func() { spark.Submit(s.RM, s.FS, cfg) })
	}
	s.Run(sim.Time(1800 * sim.Second))
	dir := t.TempDir()
	if err := s.Sink.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// testServeOptions is the standard test configuration: small retention,
// the given workers and rules, everything else at defaults.
func testServeOptions(workers int, rules []slo.Rule) serveOptions {
	o := defaultServeOptions(workers)
	o.retain = 1024
	o.rules = rules
	return o
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeEndpoints starts the real -serve server (listener, background
// ingestion loop and all) on a simulated log tree and exercises every
// endpoint while ingestion is live.
func TestServeEndpoints(t *testing.T) {
	dir := writeScenarioLogs(t)
	srv := newLiveServer(dir, testServeOptions(4, nil))
	ln, err := srv.start(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	// The ingestion loop polls in the background; wait until the first
	// scan has absorbed the tree.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := get(t, base+"/healthz")
		if code != http.StatusOK {
			t.Fatalf("/healthz status %d", code)
		}
		var h healthDoc
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Fatalf("/healthz is not valid JSON: %v\n%s", err, body)
		}
		if h.Status == "ok" && h.Apps > 0 && h.LastScanUnixMS > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingestion never caught up: %q", body)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// /metrics: Prometheus text format with the stream's series.
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE core_stream_lines_total counter",
		"core_stream_apps_completed",
		"core_parser_hits_total{regex=\"rm_container\"}",
		"# TYPE core_component_delay_ms histogram",
		`component="total"`,
		"slo_rules_firing 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	for _, ln := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(ln, "#") || ln == "" {
			continue
		}
		if !strings.Contains(ln, " ") {
			t.Errorf("malformed exposition line %q", ln)
		}
	}

	// /apps: JSON array with both applications and full decompositions.
	code, body = get(t, base+"/apps")
	if code != http.StatusOK {
		t.Fatalf("/apps status %d", code)
	}
	var apps []struct {
		App    string `json:"app"`
		Decomp struct {
			Total int64 `json:"total_ms"`
		} `json:"decomposition"`
	}
	if err := json.Unmarshal([]byte(body), &apps); err != nil {
		t.Fatalf("/apps is not valid JSON: %v", err)
	}
	if len(apps) != 2 {
		t.Fatalf("/apps returned %d apps, want 2", len(apps))
	}
	for _, a := range apps {
		if a.Decomp.Total <= 0 {
			t.Errorf("app %s has no total decomposition: %+v", a.App, a.Decomp)
		}
	}

	// /trace/1: Chrome trace-event JSON with the component spans.
	code, body = get(t, base+"/trace/1")
	if code != http.StatusOK {
		t.Fatalf("/trace/1 status %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace/1 is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"am", "driver", "executor", "localization", "launching"} {
		if !names[want] {
			t.Errorf("/trace/1 missing span %q (got %v)", want, names)
		}
	}

	// Error paths.
	if code, _ := get(t, base+"/trace/999"); code != http.StatusNotFound {
		t.Errorf("/trace/999 status %d, want 404", code)
	}
	if code, _ := get(t, base+"/trace/bogus"); code != http.StatusBadRequest {
		t.Errorf("/trace/bogus status %d, want 400", code)
	}
	if code, _ := get(t, fmt.Sprintf("%s/healthz", base)); code != http.StatusOK {
		t.Error("healthz broke mid-test")
	}
}

func sloRules(t *testing.T, src string) []slo.Rule {
	t.Helper()
	rules, err := slo.ParseRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

// TestServeAggregateAndSLOLifecycle drives the serve stack over a
// simulated 26-node TPC-H run: /aggregate must expose percentile tables
// with per-queue/per-node attribution, and a tight SLO rule must
// demonstrably fire on the run's delays and resolve once the cluster's
// event clock moves past the rule window.
func TestServeAggregateAndSLOLifecycle(t *testing.T) {
	dir := writeScenarioLogs(t)
	rules := sloRules(t, "tight-total: p50(total) < 1ms over 5m\n")
	srv := newLiveServer(dir, testServeOptions(4, rules))
	defer srv.close()
	if err := srv.pollOnce(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// /aggregate: cumulative percentile tables.
	code, body := get(t, ts.URL+"/aggregate")
	if code != http.StatusOK {
		t.Fatalf("/aggregate status %d", code)
	}
	var agg struct {
		Alpha      float64              `json:"alpha"`
		Apps       uint64               `json:"apps_ingested"`
		Components []core.BreakdownRow  `json:"components"`
		Rows       []core.BreakdownRow  `json:"rows"`
		WorstNodes map[string]worstSpot `json:"worst_nodes"`
	}
	if err := json.Unmarshal([]byte(body), &agg); err != nil {
		t.Fatalf("/aggregate is not valid JSON: %v\n%s", err, body)
	}
	if agg.Apps != 2 || agg.Alpha <= 0 {
		t.Fatalf("aggregate header: %+v", agg)
	}
	var sawTotal, sawNodeRow bool
	for _, r := range agg.Components {
		if r.Component == "total" {
			sawTotal = true
			if r.Count != 2 || r.P50MS <= 0 || r.P99MS < r.P50MS {
				t.Errorf("total rollup %+v", r)
			}
		}
	}
	for _, r := range agg.Rows {
		if r.Node != "" {
			sawNodeRow = true
		}
	}
	if !sawTotal {
		t.Error("no total component in /aggregate")
	}
	if !sawNodeRow {
		t.Error("no per-node rows: node attribution did not flow through")
	}
	if _, ok := agg.WorstNodes["localization"]; !ok {
		t.Errorf("no worst-node callout for localization: %+v", agg.WorstNodes)
	}

	// ?component= narrows both tables.
	_, body = get(t, ts.URL+"/aggregate?component=alloc")
	var filtered struct {
		Components []core.BreakdownRow `json:"components"`
		Rows       []core.BreakdownRow `json:"rows"`
	}
	if err := json.Unmarshal([]byte(body), &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Rows) == 0 {
		t.Fatal("component filter returned nothing")
	}
	for _, r := range append(filtered.Components, filtered.Rows...) {
		if r.Component != "alloc" {
			t.Fatalf("filter leaked %+v", r)
		}
	}

	// /slo: the tight rule must be firing on real scheduling delays.
	code, body = get(t, ts.URL+"/slo")
	if code != http.StatusOK {
		t.Fatalf("/slo status %d", code)
	}
	var doc sloDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/slo is not valid JSON: %v\n%s", err, body)
	}
	if doc.Firing != 1 || len(doc.Rules) != 1 || doc.Rules[0].State != "firing" {
		t.Fatalf("rule not firing: %+v", doc)
	}
	if len(doc.History) != 1 || doc.History[0].State != "firing" {
		t.Fatalf("history %+v", doc.History)
	}
	if doc.Rules[0].ValueMS <= 1 {
		t.Fatalf("window value %v should exceed the 1ms threshold", doc.Rules[0].ValueMS)
	}

	// The cluster keeps logging but no new delays arrive: a later RM
	// line advances the event clock past the rule window and the alert
	// resolves.
	late := log4j.Line{
		TimeMS: doc.NowMS + 10*60*1000, Level: log4j.Info, Class: "x.RMAppImpl",
		Message: "application_1499000000000_0099 State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED",
	}.Format()
	if err := os.WriteFile(filepath.Join(dir, "late-rm.log"), []byte(late+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.pollOnce(); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, ts.URL+"/slo")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Firing != 0 || doc.Rules[0].State != "ok" {
		t.Fatalf("rule did not resolve: %+v", doc)
	}
	if len(doc.History) != 2 || doc.History[1].State != "ok" {
		t.Fatalf("history after recovery %+v", doc.History)
	}

	// /metrics reflects the engine state.
	_, body = get(t, ts.URL+"/metrics")
	for _, want := range []string{"slo_rules_firing 0", "slo_apps_ingested 2"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServeHealthzDegraded checks the 503 path: a scan target that
// disappears flips /healthz to unhealthy after enough consecutive
// failures, and reports the last error.
func TestServeHealthzDegraded(t *testing.T) {
	dir := t.TempDir()
	gone := filepath.Join(dir, "gone")
	if err := os.Mkdir(gone, 0o755); err != nil {
		t.Fatal(err)
	}
	srv := newLiveServer(gone, testServeOptions(4, nil))
	defer srv.close()
	if err := srv.pollOnce(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy tree reported %d: %s", code, body)
	}

	if err := os.RemoveAll(gone); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < healthFailThreshold; i++ {
		if err := srv.pollOnce(); err == nil {
			t.Fatal("scan of a removed tree succeeded")
		}
		code, _ = get(t, ts.URL+"/healthz")
		if i < healthFailThreshold-1 && code != http.StatusOK {
			t.Fatalf("degraded after only %d failures", i+1)
		}
	}
	code, body = get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d after %d failures, want 503", code, healthFailThreshold)
	}
	var h healthDoc
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "unhealthy" || h.LastError == "" || h.ConsecFails < healthFailThreshold {
		t.Fatalf("health doc %+v", h)
	}

	// Recovery: restore the tree, one good scan resets the counter.
	if err := os.Mkdir(gone, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := srv.pollOnce(); err != nil {
		t.Fatal(err)
	}
	if code, _ = get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz did not recover: %d", code)
	}
}

// TestServeConcurrentScrapes hammers every read endpoint while the
// ingestion path is feeding the stream, under -race in CI. Reported
// ingestion counts must be monotonically non-decreasing across scrapes.
func TestServeConcurrentScrapes(t *testing.T) {
	dir := writeScenarioLogs(t)
	rules := sloRules(t, "tight-total: p50(total) < 1ms over 5m\n")
	o := testServeOptions(4, rules)
	o.watchdogTickMS = 5 // hammer the watchdog/runtime sampler too
	srv := newLiveServer(dir, o)
	defer srv.close()
	go srv.watchdogLoop() // exits when srv.close() closes done
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errc := make(chan error, 12)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := srv.pollOnce(); err != nil {
				errc <- err
				return
			}
		}
	}()
	for _, ep := range []string{"/metrics", "/aggregate", "/slo", "/apps", "/debug/flight", "/trace/pipeline"} {
		wg.Add(1)
		go func(ep string) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				code, _ := get(t, ts.URL+ep)
				if code != http.StatusOK {
					errc <- fmt.Errorf("%s returned %d", ep, code)
					return
				}
			}
		}(ep)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev uint64
		for i := 0; i < 25; i++ {
			_, body := get(t, ts.URL+"/healthz")
			var h healthDoc
			if err := json.Unmarshal([]byte(body), &h); err != nil {
				errc <- fmt.Errorf("healthz JSON: %v", err)
				return
			}
			if h.AppsIngested < prev {
				errc <- fmt.Errorf("apps_ingested went backwards: %d -> %d", prev, h.AppsIngested)
				return
			}
			prev = h.AppsIngested
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// After the dust settles the engine saw both applications.
	_, body := get(t, ts.URL+"/healthz")
	var h healthDoc
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.AppsIngested != 2 {
		t.Fatalf("apps_ingested = %d, want 2", h.AppsIngested)
	}
}

// TestServeWorkersByteIdentical pins the -workers contract end to end on
// the serve scan loop: two servers tailing the same tree, one serial and
// one with four shard workers, must expose byte-identical /apps JSON.
func TestServeWorkersByteIdentical(t *testing.T) {
	dir := writeScenarioLogs(t)
	serial := newLiveServer(dir, testServeOptions(1, nil))
	defer serial.close()
	sharded := newLiveServer(dir, testServeOptions(4, nil))
	defer sharded.close()
	for _, srv := range []*liveServer{serial, sharded} {
		if err := srv.pollOnce(); err != nil {
			t.Fatal(err)
		}
	}

	ts1 := httptest.NewServer(serial.handler())
	defer ts1.Close()
	ts4 := httptest.NewServer(sharded.handler())
	defer ts4.Close()
	_, body1 := get(t, ts1.URL+"/apps")
	_, body4 := get(t, ts4.URL+"/apps")
	if body1 != body4 {
		t.Fatal("/apps diverges between -workers 1 and -workers 4")
	}
	if body1 == "" || body1 == "null\n" {
		t.Fatalf("empty /apps body: %q", body1)
	}

	// The cumulative aggregates (fed through the completion hook on
	// worker goroutines) must agree as well.
	_, agg1 := get(t, ts1.URL+"/aggregate")
	_, agg4 := get(t, ts4.URL+"/aggregate")
	if agg1 != agg4 {
		t.Fatal("/aggregate diverges between -workers 1 and -workers 4")
	}
}

// TestServeCloseStopsServing pins the close() contract: it closes the
// listener and joins every goroutine start() launched (ingest, watchdog,
// HTTP acceptor), so a closed server holds no port and leaks no
// goroutine. Regression for the unaccounted `go http.Serve` flagged by
// flow.goaccount: before the fix, close() left the acceptor serving the
// old listener forever.
func TestServeCloseStopsServing(t *testing.T) {
	dir := writeScenarioLogs(t)
	srv := newLiveServer(dir, testServeOptions(2, nil))
	ln, err := srv.start(":0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz status %d before close", code)
	}

	joined := make(chan struct{})
	go func() { srv.close(); close(joined) }()
	select {
	case <-joined:
	case <-time.After(10 * time.Second):
		t.Fatal("close() did not join the server goroutines within 10s")
	}

	// Drop the client's idle keep-alive connection so the probe below
	// dials fresh instead of reusing a socket the server already closed.
	http.DefaultClient.CloseIdleConnections()
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting connections after close()")
	}
}
