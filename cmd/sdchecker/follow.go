package main

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// ingestStream is the live-ingestion surface shared by the serial
// core.Stream and the parallel core.ShardedStream, so -follow and
// -serve run unchanged at any -workers setting.
type ingestStream interface {
	Feed(source, rawLine string) bool
	Quiesce()
	Close()
	Report() *core.Report
	Apps() []*core.AppTrace
	App(id ids.AppID) *core.AppTrace
	Complete(id ids.AppID) bool
	EventCount() int
	LastEventMS() int64
	EvictCompleted(keep int) int
	EvictOldest(max int) int
	Forget(id ids.AppID)
	OnComplete(fn func(*core.AppTrace))
	Instrument(reg *metrics.Registry)
	ObservePipeline(p *obs.Pipeline)
	ShardStats() []core.ShardStat
}

// newIngestStream picks the ingestion engine for a worker count: 0
// means GOMAXPROCS, 1 means the serial stream, anything higher the
// sharded stream. Both render byte-identical reports for the same
// lines, so the choice is purely a throughput knob.
func newIngestStream(workers int) ingestStream {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return core.NewStream()
	}
	return core.NewShardedStream(workers)
}

// dirScanner tails a log directory tree into an ingestStream: each scan
// feeds bytes appended since the previous one (and any newly created
// files). It is the shared ingestion engine of -follow and -serve.
type dirScanner struct {
	dir     string
	st      ingestStream
	offsets map[string]int64
	// pl, when set, times each scan's read phase (walk + drain) as one
	// StageRead batch — per scan, never per line.
	pl *obs.Pipeline
}

func newDirScanner(dir string, st ingestStream) *dirScanner {
	return &dirScanner{dir: dir, st: st, offsets: make(map[string]int64)}
}

// scan walks the tree once, feeding every new line. It reports whether
// any line was fed (with a sharded stream, absorption is asynchronous —
// Quiesce and compare EventCount to learn whether events were produced).
func (s *dirScanner) scan() (changed bool, err error) {
	t := s.pl.Begin()
	fed := 0
	werr := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, rerr := filepath.Rel(s.dir, path)
		if rerr != nil {
			rel = path
		}
		rel = filepath.ToSlash(rel)
		n, ferr := s.drainFile(path, rel)
		if ferr != nil {
			return ferr
		}
		fed += n
		return nil
	})
	if fed > 0 {
		s.pl.StageBatch(obs.StageRead, -1, t, fed)
	}
	return fed > 0, werr
}

// followDir is the live mode: it scans the log tree once, then polls for
// appended bytes and newly created files, feeding every new line into
// the ingestion stream and reprinting the summary whenever new
// scheduling events were absorbed. It runs until the process is
// interrupted.
func followDir(dir string, workers int) error {
	st := newIngestStream(workers)
	defer st.Close()
	sc := newDirScanner(dir, st)
	fmt.Printf("sdchecker: following %s (interrupt to stop)\n", dir)
	lastEvents := -1
	for {
		if _, err := sc.scan(); err != nil {
			return err
		}
		st.Quiesce()
		if n := st.EventCount(); n != lastEvents {
			lastEvents = n
			rep := st.Report()
			fmt.Printf("\n--- %s ---\n%s", time.Now().Format("15:04:05"), rep.Format())
		}
		time.Sleep(time.Second)
	}
}

// drainFile feeds any bytes appended since the recorded offset. It
// returns how many lines were fed.
func (s *dirScanner) drainFile(path, rel string) (int, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	off := s.offsets[rel]
	if info.Size() <= off {
		return 0, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return 0, err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	fed := 0
	read := off
	for sc.Scan() {
		line := sc.Text()
		read += int64(len(line)) + 1
		if s.st.Feed(rel, line) {
			fed++
		}
	}
	s.offsets[rel] = read
	return fed, sc.Err()
}
