package main

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
)

// dirScanner tails a log directory tree into a core.Stream: each scan
// feeds bytes appended since the previous one (and any newly created
// files). It is the shared ingestion engine of -follow and -serve.
type dirScanner struct {
	dir     string
	st      *core.Stream
	offsets map[string]int64
}

func newDirScanner(dir string, st *core.Stream) *dirScanner {
	return &dirScanner{dir: dir, st: st, offsets: make(map[string]int64)}
}

// scan walks the tree once, feeding every new line. It reports whether
// any line produced scheduling events.
func (s *dirScanner) scan() (changed bool, err error) {
	werr := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, rerr := filepath.Rel(s.dir, path)
		if rerr != nil {
			rel = path
		}
		rel = filepath.ToSlash(rel)
		grew, ferr := s.drainFile(path, rel)
		if ferr != nil {
			return ferr
		}
		if grew {
			changed = true
		}
		return nil
	})
	return changed, werr
}

// followDir is the live mode: it scans the log tree once, then polls for
// appended bytes and newly created files, feeding every new line into a
// core.Stream and reprinting the summary whenever the picture changed.
// It runs until the process is interrupted.
func followDir(dir string) error {
	sc := newDirScanner(dir, core.NewStream())
	fmt.Printf("sdchecker: following %s (interrupt to stop)\n", dir)
	for {
		changed, err := sc.scan()
		if err != nil {
			return err
		}
		if changed {
			rep := sc.st.Report()
			fmt.Printf("\n--- %s ---\n%s", time.Now().Format("15:04:05"), rep.Format())
		}
		time.Sleep(time.Second)
	}
}

// drainFile feeds any bytes appended since the recorded offset. It
// returns whether new scheduling events were produced.
func (s *dirScanner) drainFile(path, rel string) (bool, error) {
	info, err := os.Stat(path)
	if err != nil {
		return false, err
	}
	off := s.offsets[rel]
	if info.Size() <= off {
		return false, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return false, err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	changed := false
	read := off
	for sc.Scan() {
		line := sc.Text()
		read += int64(len(line)) + 1
		if s.st.Feed(rel, line) {
			changed = true
		}
	}
	s.offsets[rel] = read
	return changed, sc.Err()
}
