package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/log4j"
)

// waitFor polls cond every 25ms until it returns true or the deadline
// expires.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestServeWatchdogStallInjection is the end-to-end anomaly drill: a
// gated scan loop stalls, the watchdog flips /healthz to degraded and
// snapshots the flight recorder exactly once, the shipped self-SLO is
// firing on the pipeline's own scan latency, and releasing the gate
// recovers the server.
func TestServeWatchdogStallInjection(t *testing.T) {
	dir := writeScenarioLogs(t)
	proceed := make(chan struct{}, 64)
	released := false
	defer func() {
		if !released {
			close(proceed)
		}
	}()

	o := testServeOptions(2, nil)
	// A 1ms scan objective: any real scan of the tree violates it, so
	// the default-rule plumbing demonstrably fires end to end.
	o.selfRules = defaultSelfRules(1)
	o.stallAfterMS = 2_000 // above the 1s poll cadence: healthy ops never trip it
	o.watchdogTickMS = 25
	o.scanGate = func() { <-proceed }
	srv := newLiveServer(dir, o)
	ln, err := srv.start(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	// Let exactly one scan through and wait for it to absorb the tree.
	proceed <- struct{}{}
	waitFor(t, "first scan", 10*time.Second, func() bool {
		_, body := get(t, base+"/healthz")
		var h healthDoc
		return json.Unmarshal([]byte(body), &h) == nil && h.Apps > 0
	})

	// The self-SLO fired on the scan's own latency.
	_, body := get(t, base+"/slo")
	var sd sloDoc
	if err := json.Unmarshal([]byte(body), &sd); err != nil {
		t.Fatalf("/slo JSON: %v", err)
	}
	if sd.SelfFiring != 1 || len(sd.SelfRules) != 1 || sd.SelfRules[0].State != "firing" {
		t.Fatalf("self-SLO not firing on scan latency: %+v", sd)
	}
	if sd.SelfRules[0].Name != "pipeline-scan-p99" {
		t.Fatalf("unexpected self rule %q", sd.SelfRules[0].Name)
	}

	// No more gate tokens: the scan loop is now stuck. The watchdog
	// must degrade /healthz and take an automatic snapshot.
	var h healthDoc
	waitFor(t, "watchdog degradation", 15*time.Second, func() bool {
		code, body := get(t, base+"/healthz")
		h = healthDoc{}
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			return false
		}
		return code == http.StatusServiceUnavailable && h.Status == "degraded"
	})
	if h.Watchdog == "" || h.FlightSnapshots < 1 || h.SelfSLOFiring != 1 {
		t.Fatalf("degraded health doc incomplete: %+v", h)
	}

	// The automatic snapshot is servable and records the stall itself.
	code, snap := get(t, base+"/debug/flight?snapshot=last")
	if code != http.StatusOK {
		t.Fatalf("snapshot=last status %d", code)
	}
	if !strings.Contains(snap, `"kind": "watchdog_stall"`) {
		t.Fatalf("snapshot missing the stall event:\n%.2000s", snap)
	}
	// The live recorder has moved past the snapshot: it also holds the
	// flight_snapshot marker.
	_, live := get(t, base+"/debug/flight")
	if !strings.Contains(live, `"kind": "flight_snapshot"`) {
		t.Fatal("live flight dump missing the snapshot marker")
	}

	// Stall metrics made it to /metrics.
	_, mtext := get(t, base+"/metrics")
	for _, want := range []string{"obs_watchdog_stalls_total 1", "obs_flight_snapshots_total 1"} {
		if !strings.Contains(mtext, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Release the gate: scans resume, the watchdog recovers.
	released = true
	close(proceed)
	waitFor(t, "recovery", 15*time.Second, func() bool {
		code, _ := get(t, base+"/healthz")
		return code == http.StatusOK
	})
}

// TestServeFlightDumpDeterministic pins the flight recorder's
// reproducibility contract: two serial servers with the same injected
// clock tailing the same tree produce byte-identical /debug/flight
// bodies.
func TestServeFlightDumpDeterministic(t *testing.T) {
	dir := writeScenarioLogs(t)
	run := func() string {
		var now int64 = 1_000_000
		o := testServeOptions(1, nil) // serial: hooks fire in absorb order
		o.clock = func() int64 { now += 7; return now }
		srv := newLiveServer(dir, o)
		defer srv.close()
		for i := 0; i < 3; i++ {
			if err := srv.pollOnce(); err != nil {
				t.Fatal(err)
			}
		}
		ts := httptest.NewServer(srv.handler())
		defer ts.Close()
		code, body := get(t, ts.URL+"/debug/flight")
		if code != http.StatusOK {
			t.Fatalf("/debug/flight status %d", code)
		}
		return body
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("flight dumps diverge across identical fixed-clock runs")
	}
	var d struct {
		Recorded uint64 `json:"recorded"`
		Events   []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(a), &d); err != nil {
		t.Fatalf("/debug/flight JSON: %v", err)
	}
	if d.Recorded == 0 || len(d.Events) == 0 {
		t.Fatal("empty flight dump")
	}
	kinds := map[string]bool{}
	for _, e := range d.Events {
		kinds[e.Kind] = true
	}
	for _, want := range []string{"stage", "hook_fired"} {
		if !kinds[want] {
			t.Errorf("flight dump missing %q events (got %v)", want, kinds)
		}
	}
}

// TestServeStageVisibilityEndToEnd drives a sharded server over a
// simulated tree plus adversarial cross-shard lines and asserts all six
// pipeline stages are visible in every surface: /metrics, the Perfetto
// export, and the flight recorder.
func TestServeStageVisibilityEndToEnd(t *testing.T) {
	dir := writeScenarioLogs(t)
	// Adversarial lines: the first ID in the line (app 0001) routes the
	// line, the state change belongs to another application — with 16
	// candidate peers on 2 shards, some pair crosses shards and the
	// forward stage lights up.
	var sb strings.Builder
	for seq := 2; seq <= 17; seq++ {
		msg := fmt.Sprintf("application_1499000000000_0001 peer update; application_1499000000000_%04d State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED", seq)
		sb.WriteString(log4j.Line{TimeMS: 1499000100000 + int64(seq), Level: log4j.Info,
			Class: "x.RMAppImpl", Message: msg}.Format() + "\n")
	}
	if err := os.WriteFile(filepath.Join(dir, "adversarial-rm.log"), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := newLiveServer(dir, testServeOptions(2, nil))
	defer srv.close()
	if err := srv.pollOnce(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	stages := []string{"read", "parse", "forward", "decompose", "aggregate", "scan"}

	// /metrics: every stage has at least one recorded batch.
	_, mtext := get(t, ts.URL+"/metrics")
	for _, st := range stages {
		re := regexp.MustCompile(`obs_stage_batches_total\{stage="` + st + `"\} (\d+)`)
		m := re.FindStringSubmatch(mtext)
		if m == nil {
			t.Fatalf("/metrics missing batches series for stage %q", st)
		}
		if n, _ := strconv.Atoi(m[1]); n == 0 {
			t.Errorf("stage %q recorded no batches", st)
		}
	}
	if !strings.Contains(mtext, "core_shard_queue_depth{shard=") {
		t.Error("/metrics missing per-shard queue depth gauges")
	}

	// /trace/pipeline: stage spans next to mined app timelines.
	code, body := get(t, ts.URL+"/trace/pipeline")
	if code != http.StatusOK {
		t.Fatalf("/trace/pipeline status %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace/pipeline is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
	}
	for _, st := range stages {
		if !names[st] {
			t.Errorf("/trace/pipeline missing stage track %q (got %v)", st, names)
		}
	}
	// The mined application timelines ride in the same trace.
	for _, want := range []string{"am", "driver"} {
		if !names[want] {
			t.Errorf("/trace/pipeline missing app span %q next to pipeline tracks", want)
		}
	}

	// /debug/flight: stage events for all six stages, plus the forward
	// routing decisions themselves.
	_, fbody := get(t, ts.URL+"/debug/flight")
	var dump struct {
		Events []struct {
			Kind  string `json:"kind"`
			Stage string `json:"stage"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(fbody), &dump); err != nil {
		t.Fatalf("/debug/flight JSON: %v", err)
	}
	flightStages := map[string]bool{}
	sawForward := false
	for _, e := range dump.Events {
		if e.Kind == "stage" {
			flightStages[e.Stage] = true
		}
		if e.Kind == "forward" {
			sawForward = true
		}
	}
	for _, st := range stages {
		if !flightStages[st] {
			t.Errorf("flight recorder missing stage %q (got %v)", st, flightStages)
		}
	}
	if !sawForward {
		t.Error("flight recorder saw no cross-shard forward events")
	}
}

// TestServeDebugFlagGatesPprof pins the -debug contract: pprof handlers
// exist only when the flag is set.
func TestServeDebugFlagGatesPprof(t *testing.T) {
	dir := t.TempDir()
	plain := newLiveServer(dir, testServeOptions(1, nil))
	defer plain.close()
	tsPlain := httptest.NewServer(plain.handler())
	defer tsPlain.Close()
	if code, _ := get(t, tsPlain.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof exposed without -debug: %d", code)
	}
	// The flight recorder stays available either way.
	if code, _ := get(t, tsPlain.URL+"/debug/flight"); code != http.StatusOK {
		t.Fatalf("/debug/flight status %d without -debug", code)
	}

	o := testServeOptions(1, nil)
	o.debug = true
	dbg := newLiveServer(dir, o)
	defer dbg.close()
	tsDbg := httptest.NewServer(dbg.handler())
	defer tsDbg.Close()
	code, body := get(t, tsDbg.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index with -debug: %d\n%.500s", code, body)
	}
}

// TestModeConflict pins the flag mutual-exclusion matrix, including the
// new serve-only observability flags.
func TestModeConflict(t *testing.T) {
	cases := []struct {
		name    string
		follow  bool
		serve   string
		modes   int
		slo     string
		selfSLO string
		debug   bool
		explain string
		qSet    bool
		want    string
	}{
		{name: "plain mine", want: ""},
		{name: "serve with everything", serve: ":0", slo: "r.slo", selfSLO: "s.slo", debug: true, want: ""},
		{name: "follow+serve", follow: true, serve: ":0", want: "-follow and -serve are mutually exclusive"},
		{name: "serve+output", serve: ":0", modes: 1, want: "live modes (-follow, -serve) cannot be combined with output flags"},
		{name: "slo without serve", slo: "r.slo", want: "-slo requires -serve"},
		{name: "self-slo without serve", selfSLO: "s.slo", want: "-self-slo requires -serve"},
		{name: "debug without serve", debug: true, want: "-debug requires -serve"},
		{name: "two outputs", modes: 2, want: "choose at most one output mode"},
		{name: "explain alone", modes: 1, explain: "total", want: ""},
		{name: "explain with q", modes: 1, explain: "alloc", qSet: true, want: ""},
		{name: "q without explain", qSet: true, want: "-q requires -explain"},
		{name: "explain with serve", serve: ":0", modes: 1, explain: "total", want: "live modes (-follow, -serve) cannot be combined with output flags"},
		{name: "explain plus json", modes: 2, explain: "total", want: "choose at most one output mode"},
	}
	for _, c := range cases {
		if got := modeConflict(c.follow, c.serve, c.modes, c.slo, c.selfSLO, c.debug, c.explain, c.qSet); got != c.want {
			t.Errorf("%s: modeConflict = %q, want %q", c.name, got, c.want)
		}
	}
}
