// Command sdchecker is the paper's tool: an offline log miner that
// decomposes the job scheduling delay of data analytics applications.
//
// Point it at a directory of YARN and Spark logs (as written by
// cmd/simcluster, or a real cluster's collected logs in the same log4j
// format):
//
//	sdchecker -dir ./logs                 # aggregate decomposition report
//	sdchecker -dir ./logs -graph 1        # scheduling graph of app seq 1
//	sdchecker -dir ./logs -dot 1          # same graph in Graphviz DOT
//	sdchecker -dir ./logs -bugs           # allocated-but-unused containers
//	sdchecker -dir ./logs -per-app        # one decomposition line per app
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/slo"
)

func main() {
	var (
		dir      = flag.String("dir", "", "log directory tree to analyze (required)")
		workers  = flag.Int("workers", 0, "parse/ingest worker goroutines (0 = GOMAXPROCS, 1 = serial); output is byte-identical at any setting")
		graph    = flag.Int("graph", 0, "print the scheduling graph (ASCII) for the app with this sequence number")
		path     = flag.Int("path", 0, "print the scheduling critical path for the app with this sequence number")
		dot      = flag.Int("dot", 0, "print the scheduling graph (Graphviz DOT) for the app with this sequence number")
		bugs     = flag.Bool("bugs", false, "print only the bug-detection report")
		perApp   = flag.Bool("per-app", false, "print one decomposition line per application")
		csv      = flag.Bool("csv", false, "emit per-application decompositions as CSV")
		jsonOut  = flag.Bool("json", false, "emit per-application traces, decompositions and critical paths as JSON")
		cdfCSV   = flag.Bool("cdf-csv", false, "emit the Fig-4a CDF series as CSV")
		compCSV  = flag.String("component-csv", "", "emit one per-container component as CSV (acquisition|localization|launching|queueing)")
		validate = flag.Bool("validate", false, "check traces for temporal consistency (clock skew, missing files)")
		explain  = flag.String("explain", "", "print the tail-attribution report for this delay component (e.g. total, alloc): the cells, heavy-hitter apps, and exemplars dominating the target quantile")
		quant    = flag.Float64("q", 0.99, "with -explain: target quantile in (0, 1]")
		htmlOut  = flag.String("html", "", "write a self-contained HTML report (SVG CDFs + per-app Gantt timelines) to this file")
		follow   = flag.Bool("follow", false, "keep watching the directory for appended lines and new files, reprinting the summary on change")
		serve    = flag.String("serve", "", "address (e.g. :8080) to serve live /metrics, /apps, /trace/<seq>, /aggregate, /explain, /slo and /healthz on while tailing the directory")
		retain   = flag.Int("retain", 4096, "with -serve: keep at most this many completed applications in memory (-1 = unlimited)")
		maxApps  = flag.Int("max-apps", 16384, "with -serve: hard cap on tracked applications, complete or not — degraded logs can mint unbounded IDs (-1 = unlimited)")
		sloFile  = flag.String("slo", "", "with -serve: SLO rule file (one `name: p99(component[, queue=Q][, node=N]) < 500ms over 5m [burn 1m]` per line)")
		selfSLO  = flag.String("self-slo", "", "with -serve: self-SLO rule file over the pipeline's own stages (read|parse|forward|decompose|aggregate|scan); default is `pipeline-scan-p99: p99(scan) < 10000ms over 5m`")
		debug    = flag.Bool("debug", false, "with -serve: expose net/http/pprof under /debug/pprof/ (off by default)")
		matcher  = flag.String("matcher", "fast", "line-matching implementation: fast (byte-level) or regex (the retained reference); output is byte-identical either way")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "sdchecker: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	switch *matcher {
	case "fast":
	case "regex":
		core.UseReferenceMatcher(true) // process-wide; no restore needed
	default:
		fmt.Fprintf(os.Stderr, "sdchecker: -matcher %q: must be fast or regex\n", *matcher)
		flag.Usage()
		os.Exit(2)
	}

	// Output modes are mutually exclusive, and none of them combine with
	// the live modes (-follow tails a terminal, -serve tails HTTP): reject
	// ambiguous combinations instead of silently picking one.
	outputModes := 0
	for _, set := range []bool{
		*graph > 0, *path > 0, *dot > 0, *bugs, *perApp, *csv, *jsonOut,
		*cdfCSV, *compCSV != "", *validate, *htmlOut != "", *explain != "",
	} {
		if set {
			outputModes++
		}
	}
	qSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "q" {
			qSet = true
		}
	})
	if msg := modeConflict(*follow, *serve, outputModes, *sloFile, *selfSLO, *debug, *explain, qSet); msg != "" {
		fmt.Fprintln(os.Stderr, "sdchecker: "+msg)
		flag.Usage()
		os.Exit(2)
	}
	run(*dir, *workers, *graph, *path, *dot, *bugs, *perApp, *csv, *jsonOut, *cdfCSV,
		*compCSV, *validate, *htmlOut, *explain, *quant, *follow, *serve, *retain, *maxApps, *sloFile, *selfSLO, *debug)
}

// modeConflict validates the flag combination, returning a diagnostic
// for the first conflict found or "" when the combination is legal.
// Output modes are mutually exclusive, and none of them combine with
// the live modes (-follow tails a terminal, -serve tails HTTP); the
// serve-only knobs require -serve.
func modeConflict(follow bool, serve string, outputModes int, sloFile, selfSLOFile string, debug bool, explain string, qSet bool) string {
	switch {
	case follow && serve != "":
		return "-follow and -serve are mutually exclusive"
	case (follow || serve != "") && outputModes > 0:
		return "live modes (-follow, -serve) cannot be combined with output flags"
	case sloFile != "" && serve == "":
		return "-slo requires -serve"
	case selfSLOFile != "" && serve == "":
		return "-self-slo requires -serve"
	case debug && serve == "":
		return "-debug requires -serve"
	case qSet && explain == "":
		return "-q requires -explain"
	case outputModes > 1:
		return "choose at most one output mode"
	}
	return ""
}

// explainReport renders the offline tail-attribution report: the mined
// report's breakdown (attribution on) explained for one component, with
// every exemplar resolved against the report's own traces.
func explainReport(rep *core.Report, component string, q float64) (string, error) {
	known := false
	for _, c := range core.Components {
		if c == component {
			known = true
			break
		}
	}
	if !known {
		return "", fmt.Errorf("-explain %q: unknown component (one of %s)", component, strings.Join(core.Components, "|"))
	}
	if !(q > 0 && q <= 1) {
		return "", fmt.Errorf("-q %v: quantile must be in (0, 1]", q)
	}
	apps := make(map[string]*core.AppTrace, len(rep.Apps))
	for _, a := range rep.Apps {
		apps[a.ID.String()] = a
	}
	doc := rep.Breakdown().Explain(component, q, core.DefaultExplainCells, func(app string) (*core.AppSummary, bool) {
		if a := apps[app]; a != nil {
			return core.SummarizeApp(a), false
		}
		return nil, false
	})
	return doc.Format(), nil
}

// parseRuleFile loads an SLO rule file with the given component
// vocabulary, exiting with a diagnostic on failure.
func parseRuleFile(path string, components []string) []slo.Rule {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdchecker: %v\n", err)
		os.Exit(1)
	}
	rules, err := slo.ParseRulesFor(f, components)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdchecker: %s: %v\n", path, err)
		os.Exit(1)
	}
	return rules
}

func run(dir string, workers, graph, path, dot int, bugs, perApp, csv, jsonOut, cdfCSV bool,
	compCSV string, validate bool, htmlOut string, explain string, quant float64,
	follow bool, serve string, retain, maxApps int,
	sloFile, selfSLOFile string, debug bool) {

	if serve != "" {
		o := defaultServeOptions(workers)
		o.retain, o.maxApps, o.debug = retain, maxApps, debug
		if sloFile != "" {
			o.rules = parseRuleFile(sloFile, core.Components)
		}
		if selfSLOFile != "" {
			o.selfRules = parseRuleFile(selfSLOFile, obs.Stages)
		}
		if err := serveDir(serve, dir, o); err != nil {
			fmt.Fprintf(os.Stderr, "sdchecker: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if follow {
		if err := followDir(dir, workers); err != nil {
			fmt.Fprintf(os.Stderr, "sdchecker: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rep, err := core.MineDir(dir, workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdchecker: %v\n", err)
		os.Exit(1)
	}

	if htmlOut != "" {
		html := rep.HTMLReport("SDchecker report: "+dir, 8)
		if err := os.WriteFile(htmlOut, []byte(html), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sdchecker: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote HTML report to %s\n", htmlOut)
		return
	}

	switch {
	case explain != "":
		out, err := explainReport(rep, explain, quant)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdchecker: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(out)
	case path > 0:
		for _, a := range rep.Apps {
			if a.ID.Seq != path {
				continue
			}
			fmt.Print(core.FormatCriticalPath(core.CriticalPath(a)))
			return
		}
		fmt.Fprintf(os.Stderr, "sdchecker: no application with sequence %d\n", path)
		os.Exit(1)
	case jsonOut:
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdchecker: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	case csv:
		fmt.Print(rep.CSV())
	case cdfCSV:
		fmt.Print(rep.CDFCSV(100))
	case compCSV != "":
		out, err := rep.ComponentCSV(compCSV)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdchecker: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(out)
	case validate:
		problems := rep.ValidateAll()
		if len(problems) == 0 {
			fmt.Printf("all %d application traces are temporally consistent\n", len(rep.Apps))
			return
		}
		for _, p := range problems {
			fmt.Println(p)
		}
		os.Exit(1)
	case graph > 0 || dot > 0:
		seq := graph
		ascii := true
		if dot > 0 {
			seq = dot
			ascii = false
		}
		for _, a := range rep.Apps {
			if a.ID.Seq != seq {
				continue
			}
			g := core.BuildGraph(a)
			if ascii {
				fmt.Print(g.ASCII())
			} else {
				fmt.Print(g.DOT())
			}
			return
		}
		fmt.Fprintf(os.Stderr, "sdchecker: no application with sequence %d\n", seq)
		os.Exit(1)
	case bugs:
		if len(rep.Bugs) == 0 {
			fmt.Println("no allocated-but-unused containers found")
			return
		}
		fmt.Printf("%d allocated-but-unused containers (cf. SPARK-21562):\n", len(rep.Bugs))
		for _, f := range rep.Bugs {
			fmt.Printf("  %s\n", f)
		}
	case perApp:
		fmt.Printf("%-42s %8s %8s %8s %8s %8s %8s %8s  %s\n",
			"application", "total", "am", "in", "out", "driver", "exec", "job", "status")
		for _, a := range rep.Apps {
			d := a.Decomp
			if d == nil {
				continue
			}
			status := "complete"
			if !d.Complete {
				status = "partial"
				if len(d.Anomalies) > 0 {
					status += " (" + strings.Join(d.Anomalies, "; ") + ")"
				}
			}
			fmt.Printf("%-42s %8d %8d %8d %8d %8d %8d %8d  %s\n",
				a.ID, d.Total, d.AM, d.In, d.Out, d.Driver, d.Executor, d.JobRuntime, status)
		}
	default:
		fmt.Print(rep.Format())
	}
}
