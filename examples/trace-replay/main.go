// Trace replay: run the workload against real submission timestamps (the
// way the paper replays google-trace subsets) instead of the synthetic
// arrival process, via a CSV of submission times and a JSON scenario
// spec. This example writes both files itself and then replays them.
//
//	go run ./examples/trace-replay
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/rng"
)

func main() {
	dir, err := os.MkdirTemp("", "trace-replay")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// 1. Fabricate a bursty "collected trace": 30 submissions, timestamps
	//    in milliseconds, as a real google-trace extraction would give us.
	csvPath := filepath.Join(dir, "submissions.csv")
	r := rng.New(99)
	var lines []byte
	t := int64(1_000_000)
	for i := 0; i < 30; i++ {
		lines = append(lines, []byte(fmt.Sprintf("%d\n", t))...)
		gap := int64(r.Exp(2600))
		if r.Float64() < 0.3 {
			gap = int64(r.Exp(300)) // burst
		}
		t += gap + 1
	}
	if err := os.WriteFile(csvPath, lines, 0o644); err != nil {
		panic(err)
	}

	// 2. A scenario spec pointing at the trace.
	specPath := filepath.Join(dir, "scenario.json")
	spec := fmt.Sprintf(`{"arrival_csv": %q, "executors": 4, "seed": 7}`, csvPath)
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		panic(err)
	}

	// 3. Load, run, analyze — the same path `simcluster -config` takes.
	sp, err := experiments.LoadSpecFile(specPath)
	if err != nil {
		panic(err)
	}
	tr, err := sp.ToTraceRun()
	if err != nil {
		panic(err)
	}
	fmt.Printf("replaying %d submissions spanning %.1fs of trace time\n",
		len(tr.Arrivals), float64(tr.Arrivals[len(tr.Arrivals)-1]-tr.Arrivals[0])/1000)

	_, rep := tr.Run()
	fmt.Printf("\n%s", rep.Format())

	// 4. Show the delay-over-time series the stream of submissions makes.
	fmt.Println("\ntotal scheduling delay over trace time (30s bins):")
	for _, p := range rep.TotalTimeSeries(30_000) {
		if p.Count == 0 {
			continue
		}
		fmt.Printf("  t+%4ds  n=%-3d p50=%6.1fs p95=%6.1fs\n",
			(p.StartMS-rep.Apps[0].Submitted)/1000, p.Count, p.P50/1000, p.P95/1000)
	}
}
