// Bug hunt: reproduce SDchecker's discovery of the Spark over-allocation
// bug (paper §V-A, reported upstream as SPARK-21562). In opportunistic
// mode Spark's allocator requests more containers than it ever starts
// executors in; SDchecker spots them because their RM-side states exist
// but no NodeManager or executor log states do.
//
//	go run ./examples/bughunt
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	res := experiments.BugHunt(40)
	fmt.Print(res.Format())

	// Show what the evidence looks like for one flagged container: only
	// RM-side states, nothing from the NM or the executor.
	if len(res.Findings) > 0 {
		f := res.Findings[0]
		for _, a := range res.Report.Apps {
			if a.ID != f.App {
				continue
			}
			c := a.Container(f.Container)
			fmt.Printf("\nevidence for %s:\n", f.Container)
			for _, e := range c.Events {
				fmt.Printf("  %s\n", e)
			}
			fmt.Println("  (no LOCALIZING/SCHEDULED/RUNNING, no FIRST_LOG, no FIRST_TASK)")
			break
		}
	}
}
