// Live dashboard: the streaming variant of SDchecker. A simulated
// cluster runs in time slices; after each slice, every newly produced log
// line is fed into a core.Stream (exactly what `sdchecker -follow` does
// against files on disk) and the current picture is printed — completed
// applications get their final decomposition, in-flight ones show what is
// known so far.
//
//	go run ./examples/live-dashboard
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/workload"
)

func main() {
	s := experiments.NewScenario(experiments.DefaultOptions())
	tables := workload.CreateTPCHTables(s.FS, 2048)
	for i := 0; i < 6; i++ {
		cfg := spark.DefaultConfig(workload.TPCHQuery(i+1, 2048, tables))
		at := sim.Time(int64(i)*4000 + 1000)
		s.Eng.At(at, func() { spark.Submit(s.RM, s.FS, cfg) })
	}

	stream := core.NewStream()
	offsets := map[string]int{} // lines already fed, per file

	feedNew := func() int {
		fed := 0
		for _, f := range s.Sink.Files() {
			lines := s.Sink.Lines(f)
			for _, l := range lines[offsets[f]:] {
				if stream.Feed(f, l) {
					fed++
				}
			}
			offsets[f] = len(lines)
		}
		return fed
	}

	for slice := 1; slice <= 6; slice++ {
		s.Eng.RunUntil(sim.Time(int64(slice) * 10_000))
		events := feedNew()
		fmt.Printf("=== t=%2ds  (+%d scheduling events) ===\n", slice*10, events)
		for _, a := range stream.Apps() {
			status := "in-flight"
			detail := ""
			if stream.Complete(a.ID) {
				status = "scheduled"
				d := a.Decomp
				detail = fmt.Sprintf("total=%5.1fs am=%4.1fs in=%5.1fs out=%4.1fs",
					float64(d.Total)/1000, float64(d.AM)/1000, float64(d.In)/1000, float64(d.Out)/1000)
			} else {
				switch {
				case a.Registered != 0:
					detail = "driver registered, executors starting"
				case a.Submitted != 0:
					detail = "submitted, AppMaster starting"
				default:
					detail = "accepted"
				}
			}
			fmt.Printf("  %s  %-9s %s\n", a.ID, status, detail)
		}
	}

	// Drain and print the final aggregate — identical to an offline pass.
	s.Run(sim.Time(3600 * sim.Second))
	feedNew()
	fmt.Println("\nfinal aggregate from the stream:")
	rep := stream.Report()
	fmt.Printf("  %d apps, total p50=%.1fs p95=%.1fs, in/total=%.2f\n",
		len(rep.Apps), rep.Total.Median()/1000, rep.Total.P95()/1000, rep.InOverTotal.Median())
}
