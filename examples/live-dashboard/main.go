// Live dashboard: the streaming variant of SDchecker. A simulated
// cluster runs in time slices; after each slice, every newly produced log
// line is fed into a core.Stream (exactly what `sdchecker -follow` does
// against files on disk) and the current picture is printed — completed
// applications get their final decomposition, in-flight ones show what is
// known so far. The stream is instrumented into the scenario's metrics
// registry, so the run ends with the same counters a live `-serve`
// endpoint would expose on /metrics.
//
//	go run ./examples/live-dashboard
package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/spark"
	"repro/internal/workload"
)

func main() {
	s := experiments.NewScenario(experiments.DefaultOptions())
	tables := workload.CreateTPCHTables(s.FS, 2048)
	for i := 0; i < 6; i++ {
		cfg := spark.DefaultConfig(workload.TPCHQuery(i+1, 2048, tables))
		at := sim.Time(int64(i)*4000 + 1000)
		s.Eng.At(at, func() { spark.Submit(s.RM, s.FS, cfg) })
	}

	stream := core.NewStream()
	stream.Instrument(s.Metrics)
	feeder := core.NewSinkFeeder(stream, s.Sink)

	// Completed decompositions roll into the SLO engine, exactly as
	// `sdchecker -serve -slo rules.txt` wires them. The tight rule is
	// meant to fire on any realistic run; watch it in the alert log.
	rules, err := slo.ParseRules(strings.NewReader(
		"demo-total-p95: p95(total) < 5s over 2m\n"))
	if err != nil {
		panic(err)
	}
	engine := slo.NewEngine(rules)
	stream.OnComplete(engine.ObserveApp)

	for slice := 1; slice <= 6; slice++ {
		s.Eng.RunUntil(sim.Time(int64(slice) * 10_000))
		events := feeder.Drain()
		fmt.Printf("=== t=%2ds  (+%d scheduling events) ===\n", slice*10, events)
		for _, a := range stream.Apps() {
			status := "in-flight"
			detail := ""
			if stream.Complete(a.ID) {
				status = "scheduled"
				d := a.Decomp
				detail = fmt.Sprintf("total=%5.1fs am=%4.1fs in=%5.1fs out=%4.1fs",
					float64(d.Total)/1000, float64(d.AM)/1000, float64(d.In)/1000, float64(d.Out)/1000)
			} else {
				switch {
				case a.Registered != 0:
					detail = "driver registered, executors starting"
				case a.Submitted != 0:
					detail = "submitted, AppMaster starting"
				default:
					detail = "accepted"
				}
			}
			fmt.Printf("  %s  %-9s %s\n", a.ID, status, detail)
		}
	}

	// Drain and print the final aggregate — identical to an offline pass.
	s.Run(sim.Time(3600 * sim.Second))
	feeder.Drain()
	fmt.Println("\nfinal aggregate from the stream:")
	rep := stream.Report()
	fmt.Printf("  %d apps, total p50=%.1fs p95=%.1fs, in/total=%.2f\n",
		len(rep.Apps), rep.Total.Median()/1000, rep.Total.P95()/1000, rep.InOverTotal.Median())

	// Cluster breakdown: the same mergeable-sketch tables `-serve`
	// renders on /aggregate — per-component percentiles plus the worst
	// node by localization tail.
	engine.Advance(stream.LastEventMS())
	cb := engine.Breakdown()
	fmt.Println("\ncluster breakdown (from the SLO engine's sketches):")
	fmt.Printf("  %-14s %6s %9s %9s %9s\n", "component", "count", "p50ms", "p95ms", "p99ms")
	for _, row := range cb.ComponentRows() {
		fmt.Printf("  %-14s %6d %9.0f %9.0f %9.0f\n",
			row.Component, row.Count, row.P50MS, row.P95MS, row.P99MS)
	}
	if node, p99, ok := core.Worst(cb.ByNode("localization"), 1); ok {
		fmt.Printf("  worst node by localization p99: %s (%.0fms)\n", node, p99)
	}
	fmt.Println("\nSLO status:")
	for _, st := range engine.Status() {
		fmt.Printf("  [%s] %s (value %.0fms over %d samples)\n", st.State, st.Expr, st.ValueMS, st.WindowCount)
	}
	for _, tr := range engine.History() {
		fmt.Printf("  %s -> %s at t=%dms (value %.0fms)\n", tr.Rule, tr.State, tr.AtMS, tr.ValueMS)
	}

	// The registry holds simulator, YARN and stream series side by side —
	// the same snapshot `sdchecker -serve` renders on /metrics.
	fmt.Println("\nselected metrics:")
	for _, snap := range s.Metrics.Snapshot() {
		switch snap.Type {
		case metrics.TypeCounter, metrics.TypeGauge:
			if snap.Value == 0 {
				continue
			}
			fmt.Printf("  %-45s %s %d\n", snap.Name+labelSuffix(snap.Labels), snap.Type, snap.Value)
		case metrics.TypeHistogram:
			if snap.Count == 0 {
				continue
			}
			fmt.Printf("  %-45s %s count=%d mean=%.1f\n",
				snap.Name+labelSuffix(snap.Labels), snap.Type, snap.Count, snap.Sum/float64(snap.Count))
		}
	}
}

func labelSuffix(labels map[string]string) string {
	out := ""
	for k, v := range labels {
		if out != "" {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", k, v)
	}
	if out == "" {
		return ""
	}
	return "{" + out + "}"
}
