// Live dashboard: the streaming variant of SDchecker. A simulated
// cluster runs in time slices; after each slice, every newly produced log
// line is fed into a core.Stream (exactly what `sdchecker -follow` does
// against files on disk) and the current picture is printed — completed
// applications get their final decomposition, in-flight ones show what is
// known so far. The stream is instrumented into the scenario's metrics
// registry, so the run ends with the same counters a live `-serve`
// endpoint would expose on /metrics.
//
//	go run ./examples/live-dashboard
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/workload"
)

func main() {
	s := experiments.NewScenario(experiments.DefaultOptions())
	tables := workload.CreateTPCHTables(s.FS, 2048)
	for i := 0; i < 6; i++ {
		cfg := spark.DefaultConfig(workload.TPCHQuery(i+1, 2048, tables))
		at := sim.Time(int64(i)*4000 + 1000)
		s.Eng.At(at, func() { spark.Submit(s.RM, s.FS, cfg) })
	}

	stream := core.NewStream()
	stream.Instrument(s.Metrics)
	feeder := core.NewSinkFeeder(stream, s.Sink)

	for slice := 1; slice <= 6; slice++ {
		s.Eng.RunUntil(sim.Time(int64(slice) * 10_000))
		events := feeder.Drain()
		fmt.Printf("=== t=%2ds  (+%d scheduling events) ===\n", slice*10, events)
		for _, a := range stream.Apps() {
			status := "in-flight"
			detail := ""
			if stream.Complete(a.ID) {
				status = "scheduled"
				d := a.Decomp
				detail = fmt.Sprintf("total=%5.1fs am=%4.1fs in=%5.1fs out=%4.1fs",
					float64(d.Total)/1000, float64(d.AM)/1000, float64(d.In)/1000, float64(d.Out)/1000)
			} else {
				switch {
				case a.Registered != 0:
					detail = "driver registered, executors starting"
				case a.Submitted != 0:
					detail = "submitted, AppMaster starting"
				default:
					detail = "accepted"
				}
			}
			fmt.Printf("  %s  %-9s %s\n", a.ID, status, detail)
		}
	}

	// Drain and print the final aggregate — identical to an offline pass.
	s.Run(sim.Time(3600 * sim.Second))
	feeder.Drain()
	fmt.Println("\nfinal aggregate from the stream:")
	rep := stream.Report()
	fmt.Printf("  %d apps, total p50=%.1fs p95=%.1fs, in/total=%.2f\n",
		len(rep.Apps), rep.Total.Median()/1000, rep.Total.P95()/1000, rep.InOverTotal.Median())

	// The registry holds simulator, YARN and stream series side by side —
	// the same snapshot `sdchecker -serve` renders on /metrics.
	fmt.Println("\nselected metrics:")
	for _, snap := range s.Metrics.Snapshot() {
		switch snap.Type {
		case metrics.TypeCounter, metrics.TypeGauge:
			if snap.Value == 0 {
				continue
			}
			fmt.Printf("  %-45s %s %d\n", snap.Name+labelSuffix(snap.Labels), snap.Type, snap.Value)
		case metrics.TypeHistogram:
			if snap.Count == 0 {
				continue
			}
			fmt.Printf("  %-45s %s count=%d mean=%.1f\n",
				snap.Name+labelSuffix(snap.Labels), snap.Type, snap.Count, snap.Sum/float64(snap.Count))
		}
	}
}

func labelSuffix(labels map[string]string) string {
	out := ""
	for k, v := range labels {
		if out != "" {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", k, v)
	}
	if out == "" {
		return ""
	}
	return "{" + out + "}"
}
