// Scheduler comparison: the paper's Fig 7 trade-off between the
// centralized Capacity Scheduler and the distributed opportunistic
// scheduler — the distributed one allocates ~80x faster, but random
// placement queues tasks for tens of seconds on an overloaded cluster.
//
//	go run ./examples/scheduler-comparison
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/spark"
	"repro/internal/yarn"
)

func main() {
	run := func(name string, opportunistic bool) {
		tr := experiments.DefaultTraceRun(80)
		tr.Seed = 5
		if opportunistic {
			tr.Opts.Yarn.Scheduler = yarn.SchedOpportunistic
			tr.MutateSpark = func(i int, cfg *spark.Config) { cfg.Opportunistic = true }
		}
		_, rep := tr.Run()
		fmt.Printf("%-12s alloc delay p50=%6.0fms p95=%6.0fms | total p95=%.1fs | NM queueing p95=%6.0fms\n",
			name, rep.Alloc.Median(), rep.Alloc.P95(), rep.Total.P95()/1000, rep.Queueing.P95())
	}
	fmt.Println("80 TPC-H queries, 2GB dataset, 4 executors each:")
	run("centralized", false)
	run("distributed", true)
	fmt.Println("\n(paper Fig 7a: distributed ~80x faster median allocation;")
	fmt.Println(" under overload its random placement queues tasks at NodeManagers — Fig 7b)")
}
