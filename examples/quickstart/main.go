// Quickstart: simulate a handful of Spark-SQL (TPC-H) queries on the
// 26-node YARN testbed, run SDchecker over the logs the daemons emitted,
// and print the delay decomposition plus one application's scheduling
// graph (the paper's Fig 3).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/workload"
)

func main() {
	// 1. Build the simulated testbed (cluster + HDFS + RM + 25 NMs).
	s := experiments.NewScenario(experiments.DefaultOptions())

	// 2. Populate TPC-H (as Hive would) and submit ten queries, four
	//    executors each, two seconds apart.
	tables := workload.CreateTPCHTables(s.FS, 2048)
	for i := 0; i < 10; i++ {
		cfg := spark.DefaultConfig(workload.TPCHQuery(i+1, 2048, tables))
		at := sim.Time(int64(i) * 2000)
		s.Eng.At(at, func() { spark.Submit(s.RM, s.FS, cfg) })
	}

	// 3. Run the discrete-event simulation to completion.
	end := s.Run(sim.Time(3600 * sim.Second))
	fmt.Printf("simulation finished at virtual t=%.1fs; %d log lines produced\n\n",
		float64(end)/1000, s.Sink.TotalLines())

	// 4. SDchecker: mine the logs, decompose the scheduling delay.
	rep := s.Check()
	fmt.Print(rep.Format())

	// 5. The scheduling graph of the first application (paper Fig 3).
	fmt.Println()
	fmt.Print(core.BuildGraph(rep.Apps[0]).ASCII())
}
