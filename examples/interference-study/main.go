// Interference study: how IO interference (dfsIO writers, Fig 12) and
// CPU interference (Kmeans, Fig 13) inflate each scheduling-delay
// component — and how the paper's proposed dedicated localization
// storage class (§V-B) shields the localization delay from IO pressure.
//
//	go run ./examples/interference-study
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mapreduce"
	"repro/internal/spark"
	"repro/internal/workload"
)

func main() {
	type variant struct {
		name        string
		dfsioMaps   int
		kmeansApps  int
		dedicatedMB float64
	}
	for _, v := range []variant{
		{name: "baseline"},
		{name: "io-interference (100 dfsIO maps)", dfsioMaps: 100},
		{name: "io-interference + dedicated localization SSD", dfsioMaps: 100, dedicatedMB: 1500},
		{name: "cpu-interference (16 kmeans apps)", kmeansApps: 16},
	} {
		tr := experiments.DefaultTraceRun(80)
		tr.Seed = 9
		if v.dedicatedMB > 0 {
			tr.Opts.Yarn.DedicatedLocalDiskMBps = v.dedicatedMB
		}
		interference := make(map[string]bool)
		dm, ka := v.dfsioMaps, v.kmeansApps
		tr.Background = func(s *experiments.Scenario) {
			if dm > 0 {
				cfg := workload.DfsIO(dm, 20)
				s.PrewarmCaches("/mr/job-" + cfg.Name + ".jar")
				app := mapreduce.Submit(s.RM, s.FS, cfg)
				interference[app.ID.String()] = true
			}
			for i := 0; i < ka; i++ {
				app := spark.Submit(s.RM, s.FS, workload.KmeansConfig(400))
				interference[app.ID.String()] = true
			}
		}
		if ka > 0 {
			tr.DeadlineSec = int64(float64(80)*tr.MeanGapMs/1000) + 900
		}
		_, rep := tr.Run()
		fg := rep.Filter(func(a *core.AppTrace) bool { return !interference[a.ID.String()] })
		fmt.Printf("%-48s total p95=%5.1fs  local p50=%5.0fms  driver p95=%4.1fs  executor p95=%4.1fs\n",
			v.name, fg.Total.P95()/1000, fg.Localization.Median(), fg.Driver.P95()/1000, fg.Executor.P95()/1000)
	}
	fmt.Println("\n(IO interference hits localization and the out-application path; CPU interference")
	fmt.Println(" hits the in-application path; the dedicated storage class isolates localization IO)")
}
