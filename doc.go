// Package repro is a from-scratch reproduction of "Characterizing
// Scheduling Delay for Low-latency Data Analytics Workloads" (Chen, Pi,
// Wang, Zhou — IPDPS 2018): the SDchecker log-mining tool, a
// discrete-event simulation of the paper's entire Spark-on-YARN testbed
// that emits the log4j logs SDchecker mines, and a harness that
// regenerates every table and figure of the paper's evaluation.
//
// The root package holds only the repository-level benchmark suite
// (bench_test.go); the implementation lives under internal/ — see
// DESIGN.md for the system inventory and README.md for usage.
package repro
