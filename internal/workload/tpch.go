package workload

// QuerySpec captures the approximate execution shape of one TPC-H query
// relative to the others: how much of the dataset its scans touch, how
// CPU-heavy its operators are, and how many stages its plan runs. The
// values encode the well-known relative complexity of the benchmark
// (Q1/Q6 are single-table scans, Q9/Q21 are the heavy multi-join
// outliers) while staying inside the cost envelope the simulator is
// calibrated for (coverage 0.55-1.0, weight 0.8-2.2).
type QuerySpec struct {
	Num      int
	Name     string
	Coverage float64 // fraction of the dataset the scan stage reads
	Weight   float64 // CPU heaviness multiplier of the operators
	Stages   int     // total stages (scan + shuffles/joins + result)
}

// TPCHCatalog describes all 22 TPC-H queries.
var TPCHCatalog = [22]QuerySpec{
	{1, "pricing-summary", 0.95, 1.6, 2},             // full lineitem scan, heavy agg
	{2, "min-cost-supplier", 0.55, 1.1, 4},           // small tables, deep join
	{3, "shipping-priority", 0.85, 1.3, 3},           // lineitem+orders+customer
	{4, "order-priority", 0.80, 0.9, 3},              // semi-join
	{5, "local-supplier", 0.90, 1.7, 4},              // 6-way join
	{6, "forecast-revenue", 0.75, 0.8, 2},            // single scan + filter
	{7, "volume-shipping", 0.90, 1.8, 4},             // multi-join, two nations
	{8, "market-share", 0.92, 1.9, 4},                // 8-way join
	{9, "product-profit", 1.00, 2.2, 4},              // the heavyweight
	{10, "returned-items", 0.85, 1.4, 3},             // join + top-k
	{11, "important-stock", 0.60, 1.0, 3},            // partsupp-centric
	{12, "shipping-modes", 0.80, 1.0, 3},             // lineitem+orders
	{13, "customer-distribution", 0.70, 1.2, 3},      // outer join + count
	{14, "promotion-effect", 0.78, 0.9, 2},           // scan + join part
	{15, "top-supplier", 0.75, 1.1, 3},               // view + agg
	{16, "parts-supplier", 0.58, 0.9, 3},             // distinct count
	{17, "small-quantity", 0.82, 1.5, 3},             // correlated subquery
	{18, "large-volume", 0.95, 1.8, 4},               // big agg + join
	{19, "discounted-revenue", 0.80, 1.2, 2},         // disjunctive predicates
	{20, "potential-promotion", 0.72, 1.3, 4},        // nested semi-joins
	{21, "suppliers-who-kept-waiting", 0.98, 2.1, 4}, // the other heavyweight
	{22, "global-sales-opportunity", 0.56, 0.9, 3},   // anti-join on customer
}

// QuerySpecFor returns the catalog entry for query q (1..22); other
// values wrap around, so harnesses can cycle i%22+1 safely.
func QuerySpecFor(q int) QuerySpec {
	idx := (q - 1) % len(TPCHCatalog)
	if idx < 0 {
		idx += len(TPCHCatalog)
	}
	return TPCHCatalog[idx]
}
