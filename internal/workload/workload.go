// Package workload builds the applications the paper evaluates with:
// TPC-H queries on Spark-SQL (the low-latency analytics workload), Spark
// wordcount (the in-application comparison of Fig 11a), Kmeans from
// HiBench (the CPU interference generator of Fig 13), MapReduce wordcount
// (the cluster-load generator for Table II and Fig 7c), and dfsIO (the IO
// interference generator of Fig 12).
package workload

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/spark"
	"repro/internal/yarn"
)

// TPCHTableShare gives each TPC-H table's approximate share of the total
// dataset size (lineitem dominates).
var TPCHTableShare = []struct {
	Name  string
	Share float64
}{
	{"lineitem", 0.740},
	{"orders", 0.165},
	{"partsupp", 0.055},
	{"part", 0.017},
	{"customer", 0.017},
	{"supplier", 0.004},
	{"nation", 0.001},
	{"region", 0.001},
}

// CreateTPCHTables registers the eight TPC-H tables in HDFS (as Hive
// would have populated them) and returns their references.
func CreateTPCHTables(fs *hdfs.FS, datasetMB float64) []spark.TableRef {
	refs := make([]spark.TableRef, 0, len(TPCHTableShare))
	for _, t := range TPCHTableShare {
		path := fmt.Sprintf("/tpch/%s-%.0fMB", t.Name, datasetMB)
		size := datasetMB * t.Share
		if fs.Lookup(path) == nil {
			fs.Create(path, size, nil)
		}
		refs = append(refs, spark.TableRef{Path: path, SizeMB: size})
	}
	return refs
}

// TPCHQuery builds a Spark-SQL TPC-H query profile from the 22-entry
// catalog (internal/workload/tpch.go): each query's scan coverage, CPU
// weight and stage structure follow the benchmark's well-known relative
// complexity, so job runtimes vary across queries the way Fig 4a shows.
// tables must come from CreateTPCHTables for the same dataset size.
func TPCHQuery(queryNum int, datasetMB float64, tables []spark.TableRef) spark.AppProfile {
	spec := QuerySpecFor(queryNum)

	scanMB := datasetMB * spec.Coverage
	scanTasks := int(scanMB/hdfs.BlockSizeMB) + 1
	lineitem := tables[0]

	shuffleTasks := scanTasks / 2
	if shuffleTasks < 4 {
		shuffleTasks = 4
	}
	if shuffleTasks > 200 {
		shuffleTasks = 200
	}

	stages := []spark.StageProfile{
		{
			Name:  "scan",
			Tasks: scanTasks,
			// CPU scales with the split actually processed.
			TaskCPUSec:  7.5 * spec.Weight * splitScale(scanMB/float64(scanTasks)),
			TaskInputMB: scanMB / float64(scanTasks),
			InputPath:   lineitem.Path,
			// Streaming scan: holds a steady disk/NIC share for the
			// task's lifetime (the IO pressure behind Fig 5/Fig 12).
			TaskIODemandMBps: 30,
		},
	}
	// Middle join/shuffle stages: deeper plans split the same shuffle
	// budget across more barriers.
	mid := spec.Stages - 2
	if mid < 1 {
		mid = 1
	}
	for i := 0; i < mid; i++ {
		stages = append(stages, spark.StageProfile{
			Name:        fmt.Sprintf("shuffle-%d", i+1),
			Tasks:       shuffleTasks,
			TaskCPUSec:  2.4 * spec.Weight / float64(mid),
			TaskInputMB: 8,
		})
	}
	stages = append(stages, spark.StageProfile{
		Name:       "result",
		Tasks:      4,
		TaskCPUSec: 0.5 * spec.Weight,
	})

	return spark.AppProfile{
		Name:               fmt.Sprintf("tpch-q%d", spec.Num),
		Tables:             tables,
		SessionSetupCPUSec: 3.4,
		SessionDiskMB:      120,
		InitBaseCPUSec:     0.8,
		PerTableCPUSec:     0.55,
		// Driver-side table init reads the footer plus a sample whose size
		// grows with the table — the reason in-application delay degrades
		// 5.7x at 200 GB input (Fig 5).
		TableFooterMB:    24,
		TableSampleFrac:  0.002,
		TableSampleCapMB: 96,
		Stages:           stages,
	}
}

// splitScale scales per-task CPU with the split size relative to a full
// 128 MB block, floored so tiny queries still pay operator setup.
func splitScale(splitMB float64) float64 {
	f := splitMB / hdfs.BlockSizeMB
	if f > 1 {
		f = 1
	}
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// SparkWordcount builds the Spark wordcount profile of Fig 11a: a single
// input file opened at init (one RDD, one broadcast) and a map+reduce job
// body.
func SparkWordcount(fs *hdfs.FS, inputMB float64) spark.AppProfile {
	path := fmt.Sprintf("/wordcount/input-%.0fMB", inputMB)
	if fs.Lookup(path) == nil {
		fs.Create(path, inputMB, nil)
	}
	tasks := int(inputMB/hdfs.BlockSizeMB) + 1
	return spark.AppProfile{
		Name:               "spark-wordcount",
		Tables:             []spark.TableRef{{Path: path, SizeMB: inputMB}},
		SessionSetupCPUSec: 3.4,
		SessionDiskMB:      120,
		InitBaseCPUSec:     2.0,
		PerTableCPUSec:     0.55,
		TableFooterMB:      24,
		TableSampleFrac:    0.002,
		TableSampleCapMB:   96,
		Stages: []spark.StageProfile{
			{Name: "map", Tasks: tasks, TaskCPUSec: 0.8, TaskInputMB: inputMB / float64(tasks), InputPath: path, TaskIODemandMBps: 30},
			{Name: "reduce", Tasks: 8, TaskCPUSec: 0.5, TaskInputMB: 4},
		},
	}
}

// TPCHOpenFiles builds the Fig 11b variant: the default TPC-H init opens
// the 8 tables once (x1); multiplier x2/x3/x4 doubles/triples/quadruples
// the number of opened files, lengthening the executor delay.
func TPCHOpenFiles(queryNum int, datasetMB float64, tables []spark.TableRef, multiplier int) spark.AppProfile {
	p := TPCHQuery(queryNum, datasetMB, tables)
	if multiplier <= 1 {
		return p
	}
	base := p.Tables
	for m := 1; m < multiplier; m++ {
		p.Tables = append(p.Tables, base...)
	}
	p.Name = fmt.Sprintf("%s-x%d", p.Name, multiplier)
	return p
}

// Kmeans builds the HiBench Kmeans profile used as CPU interference in
// Fig 13: 4 executors x 16 vcores, iterating over an in-memory dataset
// with almost pure CPU tasks.
func Kmeans(iterations int) spark.AppProfile {
	stages := make([]spark.StageProfile, 0, iterations)
	for i := 0; i < iterations; i++ {
		stages = append(stages, spark.StageProfile{
			Name:       fmt.Sprintf("kmeans-iter-%d", i),
			Tasks:      53,
			TaskCPUSec: 12,
		})
	}
	return spark.AppProfile{
		Name:           "kmeans",
		InitBaseCPUSec: 0.6,
		Stages:         stages,
	}
}

// KmeansConfig wraps the Kmeans profile in the paper's interference
// configuration: 4 executors with 16 vcores each, fully CPU-loading their
// nodes.
func KmeansConfig(iterations int) spark.Config {
	cfg := spark.DefaultConfig(Kmeans(iterations))
	cfg.Executors = 4
	cfg.ExecutorProfile = yarn.Profile{VCores: 16, MemoryMB: 4096}
	return cfg
}

// MRWordcount builds the MapReduce wordcount job used to generate
// controlled cluster load (Table II, Fig 7c). The task shape is tiny so a
// loaded cluster churns containers at high rate; JVM reuse keeps the tasks
// as light as the paper's.
func MRWordcount(name string, maps int) mapreduce.Config {
	cfg := mapreduce.DefaultConfig(name, maps, 0)
	cfg.MapProfile = yarn.Profile{VCores: 1, MemoryMB: 1024}
	cfg.MapInputMB = 0 // trivial maps: the throughput benchmark measures container churn
	cfg.MapCPUSec = 0.02
	cfg.JVMReuse = true
	return cfg
}

// DfsIO builds the dfsIO interference job of Fig 12: maps parallel map
// tasks, each writing writeGB gigabytes into HDFS, overloading disks and
// the network cluster-wide.
func DfsIO(maps int, writeGB float64) mapreduce.Config {
	cfg := mapreduce.DefaultConfig(fmt.Sprintf("dfsio-%d", maps), maps, 0)
	cfg.MapProfile = yarn.Profile{VCores: 1, MemoryMB: 1024}
	cfg.MapInputMB = 0
	cfg.MapCPUSec = 0.1
	cfg.MapWriteMB = writeGB * 1024
	return cfg
}

// ClusterLoadMaps translates a target cluster-load fraction into a map
// count for MRWordcount, given the cluster's memory capacity.
func ClusterLoadMaps(cl *cluster.Cluster, loadFrac float64) int {
	perNode := cl.Config().Node.MemoryMB / 1024 // 1 GB map containers
	total := float64(perNode * cl.Config().Workers)
	n := int(loadFrac * total)
	if n < 1 {
		n = 1
	}
	return n
}
