package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/sim"
)

func fsBed() *hdfs.FS {
	eng := sim.NewEngine()
	cfg := cluster.DefaultConfig()
	cfg.Workers = 4
	cl := cluster.New(eng, cfg)
	return hdfs.New(eng, cl, 3)
}

func TestTableSharesSumToOne(t *testing.T) {
	var sum float64
	for _, s := range TPCHTableShare {
		sum += s.Share
	}
	if math.Abs(sum-1) > 0.01 {
		t.Fatalf("TPC-H shares sum to %.3f, want ~1", sum)
	}
}

func TestCreateTPCHTables(t *testing.T) {
	fs := fsBed()
	refs := CreateTPCHTables(fs, 2048)
	if len(refs) != 8 {
		t.Fatalf("tables=%d, want the 8 TPC-H tables", len(refs))
	}
	if refs[0].SizeMB < refs[1].SizeMB {
		t.Fatal("lineitem must dominate")
	}
	for _, r := range refs {
		if fs.Lookup(r.Path) == nil {
			t.Fatalf("table %s not registered in HDFS", r.Path)
		}
	}
	// Idempotent.
	again := CreateTPCHTables(fs, 2048)
	if again[0].Path != refs[0].Path {
		t.Fatal("second creation changed paths")
	}
}

func TestTPCHQueryDeterministicPerNumber(t *testing.T) {
	fs := fsBed()
	tables := CreateTPCHTables(fs, 2048)
	a := TPCHQuery(5, 2048, tables)
	b := TPCHQuery(5, 2048, tables)
	if a.Stages[0].Tasks != b.Stages[0].Tasks || a.Stages[0].TaskCPUSec != b.Stages[0].TaskCPUSec {
		t.Fatal("same query number produced different profiles")
	}
	c := TPCHQuery(6, 2048, tables)
	if a.Stages[0].TaskCPUSec == c.Stages[0].TaskCPUSec {
		t.Fatal("different query numbers should vary (Fig 4a job-runtime spread)")
	}
	// Catalog sanity: Q9 is the heavyweight, Q6 among the lightest.
	if q9, q6 := QuerySpecFor(9), QuerySpecFor(6); q9.Weight <= q6.Weight {
		t.Fatal("catalog relative complexity inverted")
	}
	// Wraparound for harnesses cycling i%22+1.
	if QuerySpecFor(23).Num != QuerySpecFor(1).Num {
		t.Fatal("catalog wraparound broken")
	}
}

func TestPropertyTPCHProfileWellFormed(t *testing.T) {
	fs := fsBed()
	f := func(q uint8, size uint32) bool {
		datasetMB := float64(size%200_000) + 20
		tables := CreateTPCHTables(fs, datasetMB)
		p := TPCHQuery(int(q%22)+1, datasetMB, tables)
		if len(p.Tables) != 8 || len(p.Stages) < 3 || len(p.Stages) > 4 {
			return false
		}
		for _, st := range p.Stages {
			if st.Tasks <= 0 || st.TaskCPUSec <= 0 {
				return false
			}
		}
		scan := p.Stages[0]
		return scan.TaskInputMB > 0 && scan.InputPath != "" && scan.TaskIODemandMBps > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestScanTasksScaleWithInput(t *testing.T) {
	fs := fsBed()
	small := TPCHQuery(3, 20, CreateTPCHTables(fs, 20))
	big := TPCHQuery(3, 200*1024, CreateTPCHTables(fs, 200*1024))
	if small.Stages[0].Tasks >= big.Stages[0].Tasks {
		t.Fatal("scan task count must grow with dataset size")
	}
	if small.Stages[0].TaskCPUSec >= big.Stages[0].TaskCPUSec {
		t.Fatal("tiny splits must cost less CPU per task")
	}
}

func TestSplitScaleBounds(t *testing.T) {
	if splitScale(128) != 1 || splitScale(1e6) != 1 {
		t.Fatal("full blocks should scale 1.0")
	}
	if s := splitScale(0); s != 0.05 {
		t.Fatalf("floor=%v", s)
	}
}

func TestWordcountProfile(t *testing.T) {
	fs := fsBed()
	p := SparkWordcount(fs, 2048)
	if len(p.Tables) != 1 {
		t.Fatalf("wordcount opens %d files, want 1 (Fig 11a contrast)", len(p.Tables))
	}
	if fs.Lookup(p.Tables[0].Path) == nil {
		t.Fatal("input not registered")
	}
}

func TestOpenFilesMultiplier(t *testing.T) {
	fs := fsBed()
	tables := CreateTPCHTables(fs, 2048)
	x1 := TPCHOpenFiles(4, 2048, tables, 1)
	x3 := TPCHOpenFiles(4, 2048, tables, 3)
	if len(x1.Tables) != 8 || len(x3.Tables) != 24 {
		t.Fatalf("x1=%d x3=%d opened files", len(x1.Tables), len(x3.Tables))
	}
}

func TestKmeansProfile(t *testing.T) {
	p := Kmeans(5)
	if len(p.Stages) != 5 {
		t.Fatalf("iterations=%d", len(p.Stages))
	}
	for _, st := range p.Stages {
		if st.TaskInputMB != 0 {
			t.Fatal("kmeans must be pure CPU (the Fig 13 interference)")
		}
	}
	cfg := KmeansConfig(3)
	if cfg.ExecutorProfile.VCores != 16 || cfg.Executors != 4 {
		t.Fatalf("kmeans config %+v, want the paper's 4x16 setup", cfg.ExecutorProfile)
	}
}

func TestDfsIOConfig(t *testing.T) {
	cfg := DfsIO(100, 20)
	if cfg.Maps != 100 || cfg.MapWriteMB != 20*1024 {
		t.Fatalf("dfsio %d maps x %vMB", cfg.Maps, cfg.MapWriteMB)
	}
	if cfg.MapInputMB != 0 || cfg.Reduces != 0 {
		t.Fatal("dfsio is write-only maps")
	}
}

func TestClusterLoadMaps(t *testing.T) {
	eng := sim.NewEngine()
	cfg := cluster.DefaultConfig()
	cl := cluster.New(eng, cfg)
	full := ClusterLoadMaps(cl, 1.0)
	tenth := ClusterLoadMaps(cl, 0.1)
	if full != 25*132 {
		t.Fatalf("full load maps=%d, want %d (1GB containers per node memory)", full, 25*132)
	}
	if tenth < full/11 || tenth > full/9 {
		t.Fatalf("10%% load maps=%d vs full %d", tenth, full)
	}
	if ClusterLoadMaps(cl, 0) != 1 {
		t.Fatal("zero load should still submit one map")
	}
}
