package core

import "fmt"

// ValidateTrace checks one application's assembled trace for temporal
// consistency: every state machine must advance monotonically
// (ALLOCATED <= ACQUIRED, LOCALIZING <= SCHEDULED <= RUNNING, driver
// first-log <= REGISTER, ...). Real-cluster log collections violate
// these when node clocks drift (the paper's testbed dedicates an NTP
// server exactly to avoid that); SDchecker surfaces rather than silently
// mis-decomposes such traces.
func ValidateTrace(a *AppTrace) []string {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	ordered := func(scope, from, to string, t1, t2 int64) {
		if t1 != 0 && t2 != 0 && t2 < t1 {
			bad("%s: %s (%d) after %s (%d)", scope, from, t1, to, t2)
		}
	}

	ordered(a.ID.String(), "SUBMITTED", "ACCEPTED", a.Submitted, a.Accepted)
	ordered(a.ID.String(), "ACCEPTED", "APT_REGISTERED", a.Accepted, a.Registered)
	ordered(a.ID.String(), "APT_REGISTERED", "FINISHED", a.Registered, a.Finished)
	ordered(a.ID.String(), "START_ALLO", "END_ALLO", a.StartAllo, a.EndAllo)
	if a.DriverRegister != 0 && a.Registered != 0 {
		// The driver's own REGISTER line and the RM's ATTEMPT_REGISTERED
		// describe the same RPC; more than a heartbeat apart is suspect.
		diff := a.Registered - a.DriverRegister
		if diff < -1000 || diff > 1000 {
			bad("%s: driver REGISTER and RM ATTEMPT_REGISTERED disagree by %dms (clock skew?)", a.ID, diff)
		}
	}

	for _, c := range a.Containers {
		id := c.ID.String()
		ordered(id, "ALLOCATED", "ACQUIRED", c.Allocated, c.Acquired)
		ordered(id, "ACQUIRED", "LOCALIZING", c.Acquired, c.Localizing)
		ordered(id, "LOCALIZING", "SCHEDULED", c.Localizing, c.Scheduled)
		ordered(id, "SCHEDULED", "RUNNING", c.Scheduled, c.Running)
		ordered(id, "SCHEDULED", "LAUNCH_INVOKED", c.Scheduled, c.LaunchInvoked)
		ordered(id, "RUNNING", "FIRST_TASK", c.Running, c.FirstTask)
		ordered(id, "FIRST_LOG", "FIRST_TASK", c.FirstLog, c.FirstTask)
		ordered(id, "RUNNING", "EXITED", c.Running, c.Exited)
		if c.FirstLog != 0 && a.Submitted != 0 && c.FirstLog < a.Submitted {
			bad("%s: container first log before application submission", id)
		}
		if c.Localizing != 0 && c.Allocated == 0 {
			bad("%s: NM states present but RM never logged ALLOCATED (missing RM log file?)", id)
		}
	}
	return problems
}

// ValidateAll runs ValidateTrace over every application of a report.
func (r *Report) ValidateAll() []string {
	var out []string
	for _, a := range r.Apps {
		out = append(out, ValidateTrace(a)...)
	}
	return out
}
