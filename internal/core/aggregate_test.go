package core

import (
	"testing"

	"repro/internal/digest"
)

// TestObservationsExtraction checks the observation extraction against the
// hand-built Spark corpus: every component appears with the right cluster
// coordinates, and AM-host components inherit the AM container's node.
func TestObservationsExtraction(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	obs := Observations(rep.Apps[0])

	byComp := make(map[string][]Observation)
	for _, o := range obs {
		byComp[o.Component] = append(byComp[o.Component], o)
	}
	counts := map[string]int{
		"total": 1, "am": 1, "driver": 1, "executor": 1, "alloc": 1,
		"acquisition": 3, "localization": 3, "launching": 3, "queueing": 3,
	}
	for comp, want := range counts {
		if got := len(byComp[comp]); got != want {
			t.Errorf("%s: %d observations, want %d", comp, got, want)
		}
	}
	if len(obs) != 17 {
		t.Errorf("total observations = %d, want 17", len(obs))
	}
	// AM-host components carry the AM container's node (mined from the NM
	// log filename); app-wide components carry no node.
	for _, comp := range []string{"am", "driver", "alloc"} {
		if n := byComp[comp][0].Node; n != "node01" {
			t.Errorf("%s node = %q, want node01", comp, n)
		}
	}
	for _, comp := range []string{"total", "executor"} {
		if n := byComp[comp][0].Node; n != "" {
			t.Errorf("%s node = %q, want empty", comp, n)
		}
	}
	for _, o := range byComp["localization"] {
		if o.Node != "node01" {
			t.Errorf("localization node = %q, want node01", o.Node)
		}
	}
	if obs2 := Observations(&AppTrace{}); obs2 != nil {
		t.Errorf("nil decomposition should yield nil, got %v", obs2)
	}
}

// TestObservationsNodeFromScheduler checks the second node-attribution
// source: the RM scheduler's "Assigned container ... on host" line, for
// containers whose NM log never surfaces (lost nodes, truncated logs).
func TestObservationsNodeFromScheduler(t *testing.T) {
	cs := buildSparkCorpus()
	e1 := "container_1499000000000_0001_01_000002"
	cs.add("hadoop/yarn-resourcemanager.log",
		line(5400, "x.CapacityScheduler",
			"Assigned container "+e1+" of capacity <memory:4096, vCores:8> on host nodeX"))
	// Drop the NM log so the scheduler line is the only node source.
	delete(cs, "hadoop/yarn-nodemanager-node01.log")
	rep := analyze(t, cs)
	var found bool
	for _, c := range rep.Apps[0].Containers {
		if c.ID.String() == e1 {
			found = true
			if c.Node != "nodeX" {
				t.Errorf("node = %q, want nodeX (from scheduler line)", c.Node)
			}
		}
	}
	if !found {
		t.Fatal("container not traced")
	}
}

func TestClusterBreakdownRollups(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	cb := rep.Breakdown()

	// Fleet rollup: one row per observed component, in display order.
	rows := cb.ComponentRows()
	var comps []string
	for _, r := range rows {
		comps = append(comps, r.Component)
	}
	want := []string{"total", "am", "driver", "executor", "alloc",
		"acquisition", "localization", "launching", "queueing"}
	if len(comps) != len(want) {
		t.Fatalf("components %v, want %v", comps, want)
	}
	for i := range want {
		if comps[i] != want[i] {
			t.Fatalf("components %v, want %v", comps, want)
		}
	}

	// Exact values survive the sketch within its relative error bound.
	for _, r := range rows {
		if r.Component == "total" {
			if r.Count != 1 {
				t.Errorf("total count = %d, want 1", r.Count)
			}
			relErrInBound(t, "total p50", r.P50MS, 11900, cb.Alpha)
		}
	}

	// Per-node rollup of localization: all three on node01.
	byNode := cb.ByNode("localization")
	if s := byNode["node01"]; s == nil || s.Count() != 3 {
		t.Fatalf("localization by node: %v", byNode)
	}
}

func relErrInBound(t *testing.T, name string, got, want, alpha float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %v, want 0", name, got)
		}
		return
	}
	if re := (got - want) / want; re > alpha || re < -alpha {
		t.Errorf("%s = %v, want %v within %v relative error", name, got, want, alpha)
	}
}

func TestClusterBreakdownMerge(t *testing.T) {
	// Two shards observing the same app merge into double counts, and the
	// merged quantiles match a breakdown that saw everything directly.
	rep := analyze(t, buildSparkCorpus())
	a, b := NewClusterBreakdown(), NewClusterBreakdown()
	a.Observe(rep.Apps[0])
	b.Observe(rep.Apps[0])
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	whole := NewClusterBreakdown()
	whole.Observe(rep.Apps[0])
	whole.Observe(rep.Apps[0])
	ra, rw := a.Rows(), whole.Rows()
	if len(ra) != len(rw) {
		t.Fatalf("row counts differ: %d vs %d", len(ra), len(rw))
	}
	for i := range ra {
		if ra[i] != rw[i] {
			t.Errorf("row %d: merged %+v != whole %+v", i, ra[i], rw[i])
		}
	}
}

func TestWorstGroup(t *testing.T) {
	cb := NewClusterBreakdown()
	addObs := func(node string, ms int64, n int) {
		for i := 0; i < n; i++ {
			cb.Add(Observation{Component: "localization", Node: node, MS: ms})
		}
	}
	addObs("node01", 100, 5)
	addObs("node02", 4000, 5)
	addObs("", 99999, 5)      // unattributed: never the callout
	addObs("node03", 8000, 1) // below minCount
	name, p99, ok := Worst(cb.ByNode("localization"), 2)
	if !ok || name != "node02" {
		t.Fatalf("worst = %q ok=%v, want node02", name, ok)
	}
	relErrInBound(t, "worst p99", p99, 4000, cb.Alpha)
	if _, _, ok := Worst(map[string]*digest.Sketch{}, 1); ok {
		t.Error("empty groups should not produce a callout")
	}
}
