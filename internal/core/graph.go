package core

import (
	"fmt"
	"strings"
)

// Graph is the scheduling graph of one application (paper Fig 3): the
// time-ordered state chain of the application, its AppMaster container,
// and each worker container, with edges weighted by elapsed time. Nodes
// carry the Table I message number where one applies; YarnSide marks the
// rectangles of Fig 3 (YARN-caused) vs. the circles (Spark-caused).
type Graph struct {
	App   *AppTrace
	Nodes []GraphNode
	Edges []GraphEdge
}

// GraphNode is one observed state.
type GraphNode struct {
	Label    string
	TimeMS   int64
	Msg      int // Table I message number, 0 for extensions
	YarnSide bool
	Lane     string // "app", "am", or the worker container ID
}

// GraphEdge connects consecutive states; DelayMS is the elapsed time.
type GraphEdge struct {
	From, To int
	DelayMS  int64
}

// BuildGraph assembles the scheduling graph for one application.
func BuildGraph(a *AppTrace) *Graph {
	g := &Graph{App: a}

	add := func(lane, label string, t int64, msg int, yarn bool) int {
		if t == 0 {
			return -1
		}
		g.Nodes = append(g.Nodes, GraphNode{Label: label, TimeMS: t, Msg: msg, YarnSide: yarn, Lane: lane})
		return len(g.Nodes) - 1
	}
	link := func(from, to int) {
		if from < 0 || to < 0 {
			return
		}
		g.Edges = append(g.Edges, GraphEdge{From: from, To: to, DelayMS: g.Nodes[to].TimeMS - g.Nodes[from].TimeMS})
	}
	chain := func(idx ...int) int {
		prev := -1
		for _, i := range idx {
			if i < 0 {
				continue
			}
			if prev >= 0 {
				link(prev, i)
			}
			prev = i
		}
		return prev
	}

	// Application lane (RMAppImpl).
	sub := add("app", "SUBMITTED", a.Submitted, 1, true)
	acc := add("app", "ACCEPTED", a.Accepted, 2, true)
	reg := add("app", "APT_REGISTERED", a.Registered, 3, true)
	chain(sub, acc, reg)

	containerChain := func(lane string, c *ContainerTrace) (head, tail int) {
		al := add(lane, "ALLOCATED", c.Allocated, 4, true)
		aq := add(lane, "ACQUIRED", c.Acquired, 5, true)
		lo := add(lane, "LOCALIZING", c.Localizing, 6, true)
		sc := add(lane, "SCHEDULED", c.Scheduled, 7, true)
		ru := add(lane, "RUNNING", c.Running, 8, true)
		tail = chain(al, aq, lo, sc, ru)
		head = al
		if head < 0 {
			head = aq
		}
		return head, tail
	}

	// AppMaster container lane.
	if am := a.AMContainer(); am != nil {
		head, tail := containerChain("am", am)
		link(acc, head)
		fl := add("am", "FIRST_LOG", am.FirstLog, 9, false)
		dr := add("am", "REGISTER", a.DriverRegister, 10, false)
		sa := add("am", "START_ALLO", a.StartAllo, 11, false)
		ea := add("am", "END_ALLO", a.EndAllo, 12, false)
		chain(tail, fl, dr, sa, ea)
		if dr >= 0 && reg >= 0 {
			link(dr, reg)
		}
	}

	// Worker container lanes.
	var saIdx = -1
	for i, n := range g.Nodes {
		if n.Msg == 11 {
			saIdx = i
		}
	}
	for _, c := range a.WorkerContainers() {
		lane := c.ID.String()
		head, tail := containerChain(lane, c)
		if saIdx >= 0 {
			link(saIdx, head)
		}
		fl := add(lane, "FIRST_LOG", c.FirstLog, 13, false)
		ft := add(lane, "FIRST_TASK", c.FirstTask, 14, false)
		chain(tail, fl, ft)
	}
	return g
}

// DOT renders the graph in Graphviz format: rectangles for YARN-caused
// states, circles for Spark-caused states, matching Fig 3's legend.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", g.App.ID.String())
	for i, n := range g.Nodes {
		shape := "ellipse"
		if n.YarnSide {
			shape = "box"
		}
		label := n.Label
		if n.Msg > 0 {
			label = fmt.Sprintf("%d. %s", n.Msg, n.Label)
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", i, fmt.Sprintf("%s\\n%s", label, n.Lane), shape)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%dms\"];\n", e.From, e.To, e.DelayMS)
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders the graph as per-lane timelines, relative to submission.
func (g *Graph) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheduling graph for %s\n", g.App.ID)
	base := g.App.Submitted
	lanes := []string{}
	byLane := map[string][]GraphNode{}
	for _, n := range g.Nodes {
		if _, ok := byLane[n.Lane]; !ok {
			lanes = append(lanes, n.Lane)
		}
		byLane[n.Lane] = append(byLane[n.Lane], n)
	}
	for _, lane := range lanes {
		fmt.Fprintf(&b, "  %-42s", lane)
		for i, n := range byLane[lane] {
			if i > 0 {
				b.WriteString(" -> ")
			}
			rel := n.TimeMS - base
			mark := "(" // Spark-side circle
			end := ")"
			if n.YarnSide {
				mark, end = "[", "]"
			}
			fmt.Fprintf(&b, "%s%s +%dms%s", mark, n.Label, rel, end)
		}
		b.WriteString("\n")
	}
	return b.String()
}
