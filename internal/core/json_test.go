package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONExportRoundTrips(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(decoded) != 1 {
		t.Fatalf("apps=%d", len(decoded))
	}
	app := decoded[0]
	if app["app"] != "application_1499000000000_0001" {
		t.Fatalf("app id: %v", app["app"])
	}
	dec := app["decomposition"].(map[string]any)
	if dec["total_ms"].(float64) != 11900 {
		t.Fatalf("total: %v", dec["total_ms"])
	}
	if _, ok := app["critical_path"]; !ok {
		t.Fatal("critical path missing from export")
	}
	conts := app["containers"].([]any)
	if len(conts) != 3 {
		t.Fatalf("containers=%d", len(conts))
	}
	if !strings.Contains(out, "\"instance\": \"spe\"") {
		t.Fatal("instance labels missing")
	}
}

func TestJSONExportEmpty(t *testing.T) {
	out, err := ReportFrom(nil, nil).JSON()
	if err != nil || out != "[]" {
		t.Fatalf("empty export: %q %v", out, err)
	}
}
