package core

import (
	"io"
	"sort"
	"strings"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// singleLine wraps one raw line as a reader for the offline parser.
func singleLine(s string) io.Reader { return strings.NewReader(s) }

// Stream is the incremental variant of the checker: feed it log lines as
// they are produced (a live cluster's `tail -f`, or a simulation pumping
// events) and read current decompositions at any point. Unlike Checker,
// which parses whole files, Stream accepts interleaved lines from many
// sources and keeps per-application state up to date after every line.
//
// Lines from container stderr files must be attributed to their
// container; pass the file path (containing the container ID) as source,
// exactly as the offline parser derives it.
type Stream struct {
	apps map[ids.AppID]*AppTrace
	// firstLogSeen tracks containers whose FIRST_LOG was already taken,
	// since a stream cannot re-read "the first line of the file".
	firstLogSeen map[ids.ContainerID]bool
	// eventsByApp buckets events so a feed only rebuilds its own app.
	eventsByApp map[ids.AppID][]Event
	total       int
	// completed caches which apps have a fully observable headline
	// decomposition (the Complete predicate), feeding the in-flight /
	// completed gauges and the eviction policy.
	completed map[ids.AppID]bool
	// notified tracks apps whose completion hook already fired, so each
	// application is delivered downstream exactly once even if later
	// lines flip its Complete flag back and forth.
	notified   map[ids.AppID]bool
	onComplete func(*AppTrace)
	// lastMS is the max event timestamp absorbed — the stream's event
	// clock, which downstream SLO evaluation advances on.
	lastMS int64
	met    *streamMetrics
	pmet   *parserMetrics
	// scratch is the reusable per-feed parser for the fast matcher: its
	// event slice is reset (not freed) each feed, which is what makes a
	// non-matching line allocation-free. The regexp reference path keeps
	// its historical throwaway-parser-per-line behavior.
	scratch *Parser
	// pl, when set, receives flight-recorder events (hook fires,
	// evictions). The serial stream has no batch boundaries of its own, so
	// stage timing lives with the callers that batch (dirScanner, miner).
	pl *obs.Pipeline
}

// ObservePipeline attaches the self-observability pipeline: completion
// hook fires and evictions are recorded in its flight recorder. Attach
// before feeding; a nil pipeline keeps the stream unobserved (the calls
// are nil-safe no-ops).
func (s *Stream) ObservePipeline(p *obs.Pipeline) { s.pl = p }

// ShardStat is one worker's progress sample for the pipeline watchdog:
// its current queue depth and its cumulative processed-batch count.
type ShardStat struct {
	Queued    int
	Processed int64
}

// ShardStats returns nil on the serial stream — there are no worker
// queues to stall. It exists so Stream and ShardedStream satisfy the
// same ingestion interface.
func (s *Stream) ShardStats() []ShardStat { return nil }

// streamMetrics are the stream's observability hooks; nil until
// Instrument is called.
type streamMetrics struct {
	lines     *metrics.Counter // lines fed
	matched   *metrics.Counter // lines that produced >= 1 event
	dropped   *metrics.Counter // lines that produced nothing
	events    *metrics.Counter // scheduling events absorbed
	inflight  *metrics.Gauge   // apps seen but not yet complete
	completed *metrics.Gauge   // apps with a complete decomposition
	evicted   *metrics.Counter // apps forgotten/evicted
}

// newStreamMetrics registers the stream-level counters and gauges; the
// serial Stream and the ShardedStream expose the same metric names so
// dashboards work against either ingestion path.
func newStreamMetrics(reg *metrics.Registry) *streamMetrics {
	return &streamMetrics{
		lines:     reg.Counter("core_stream_lines_total"),
		matched:   reg.Counter("core_stream_lines_matched_total"),
		dropped:   reg.Counter("core_stream_lines_dropped_total"),
		events:    reg.Counter("core_stream_events_total"),
		inflight:  reg.Gauge("core_stream_apps_inflight"),
		completed: reg.Gauge("core_stream_apps_completed"),
		evicted:   reg.Counter("core_stream_apps_evicted_total"),
	}
}

// Instrument registers the stream's line/event counters and app gauges in
// reg, plus the shared parser counters every per-line parser reports to.
// Call once, before feeding; a nil registry is a no-op.
func (s *Stream) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.met = newStreamMetrics(reg)
	s.pmet = newParserMetrics(reg)
}

// NewStream returns an empty incremental checker.
func NewStream() *Stream {
	return &Stream{
		apps:         make(map[ids.AppID]*AppTrace),
		firstLogSeen: make(map[ids.ContainerID]bool),
		eventsByApp:  make(map[ids.AppID][]Event),
		completed:    make(map[ids.AppID]bool),
		notified:     make(map[ids.AppID]bool),
	}
}

// OnComplete registers a hook called the first time an application's
// decomposition becomes fully observable (the Complete predicate) — the
// feed point for cluster-level aggregation and SLO evaluation. The hook
// runs synchronously inside Feed with the freshly rebuilt trace; it must
// not call back into the stream. Each application is delivered at most
// once, even if degraded later input turns its decomposition partial and
// complete again. Pass nil to remove the hook.
func (s *Stream) OnComplete(fn func(*AppTrace)) { s.onComplete = fn }

// Feed consumes one raw log line from the given source path. Unparseable
// lines are ignored, like the offline parser does. It returns true when
// the line produced at least one scheduling event.
func (s *Stream) Feed(source, rawLine string) bool {
	if s.met != nil {
		s.met.lines.Inc()
	}
	matched := s.feed(source, rawLine)
	if s.met != nil {
		if matched {
			s.met.matched.Inc()
		} else {
			s.met.dropped.Inc()
		}
	}
	return matched
}

func (s *Stream) feed(source, rawLine string) bool {
	if referenceMatcher() {
		p := NewParser()
		p.met = s.pmet
		if cidStr := reContainerInPath.FindString(source); cidStr != "" {
			cid, err := ids.ParseContainerID(cidStr)
			if err != nil {
				return false
			}
			return s.feedContainerLine(p, source, cid, rawLine)
		}
		if err := p.ParseReader(source, singleLine(rawLine)); err != nil {
			return false
		}
		return s.absorb(p.Events())
	}
	p := s.scratch
	if p == nil {
		p = NewParser()
		s.scratch = p
	}
	p.met = s.pmet
	p.events = p.events[:0]
	if cid, found, err := fastFindContainerID(source); found {
		if err != nil {
			return false
		}
		if !p.feedContainerSegments(source, cid, rawLine) {
			return false
		}
		if len(p.events) == 0 {
			return false
		}
		return s.absorb(s.dedupContainerEvents(cid, p.events))
	}
	if !p.feedDaemonSegments(source, rawLine) {
		return false
	}
	return s.absorb(p.events)
}

// absorbRouted ingests pre-parsed events routed to this stream by a
// ShardedStream worker, applying the same stateful dedup rules feed
// applies: one FIRST_LOG per container, one FIRST_TASK per container.
// It returns how many events were absorbed after dedup.
func (s *Stream) absorbRouted(evs []Event) int {
	out := make([]Event, 0, len(evs))
	for _, e := range evs {
		switch e.Kind {
		case DriverFirstLog, ExecutorFirstLog, TaskFirstLog:
			if !e.Container.IsZero() {
				if s.firstLogSeen[e.Container] {
					continue
				}
				s.firstLogSeen[e.Container] = true
			}
		case FirstTask:
			if a := s.apps[e.App]; a != nil {
				if c := a.Container(e.Container); c != nil && c.FirstTask != 0 {
					continue
				}
			}
		}
		out = append(out, e)
	}
	if !s.absorb(out) {
		return 0
	}
	return len(out)
}

// feedContainerLine handles container stderr lines: the first parseable
// line per container becomes its FIRST_LOG event.
func (s *Stream) feedContainerLine(p *Parser, source string, cid ids.ContainerID, rawLine string) bool {
	if err := p.parseContainerLog(source, cid, singleLine(rawLine)); err != nil {
		return false
	}
	evs := p.Events()
	if len(evs) == 0 {
		return false
	}
	return s.absorb(s.dedupContainerEvents(cid, evs))
}

// dedupContainerEvents filters one container feed's events against
// stream state, in place.
func (s *Stream) dedupContainerEvents(cid ids.ContainerID, evs []Event) []Event {
	out := evs[:0]
	for _, e := range evs {
		switch e.Kind {
		case DriverFirstLog, ExecutorFirstLog, TaskFirstLog:
			if s.firstLogSeen[cid] {
				continue // only the true first line counts
			}
			s.firstLogSeen[cid] = true
		case FirstTask:
			// The offline parser dedups FIRST_TASK per file; do the same
			// against current state.
			if a := s.apps[cid.App]; a != nil {
				if c := a.Container(cid); c != nil && c.FirstTask != 0 {
					continue
				}
			}
		}
		out = append(out, e)
	}
	return out
}

func (s *Stream) absorb(evs []Event) bool {
	if len(evs) == 0 {
		return false
	}
	dirty := make(map[ids.AppID]bool, 2)
	for _, e := range evs {
		s.eventsByApp[e.App] = append(s.eventsByApp[e.App], e)
		dirty[e.App] = true
		s.total++
		if e.TimeMS > s.lastMS {
			s.lastMS = e.TimeMS
		}
	}
	// Rebuild only the touched applications from their own buckets —
	// feeds stay O(events of one app), independent of stream length.
	for id := range dirty {
		for _, a := range Correlate(s.eventsByApp[id]) {
			Decompose(a)
			s.apps[a.ID] = a
			s.completed[a.ID] = s.Complete(a.ID)
			if s.completed[a.ID] && !s.notified[a.ID] {
				s.notified[a.ID] = true
				if s.onComplete != nil {
					s.pl.RecordHook(a.ID.String())
					s.onComplete(a)
				}
			}
		}
	}
	if s.met != nil {
		s.met.events.Add(int64(len(evs)))
		s.updateAppGauges()
	}
	return true
}

// updateAppGauges refreshes the in-flight / completed app gauges from the
// completion cache.
func (s *Stream) updateAppGauges() {
	if s.met == nil {
		return
	}
	done := 0
	for _, c := range s.completed {
		if c {
			done++
		}
	}
	s.met.completed.Set(int64(done))
	s.met.inflight.Set(int64(len(s.apps) - done))
}

// EventCount returns the number of scheduling events absorbed so far.
func (s *Stream) EventCount() int { return s.total }

// LastEventMS returns the latest event timestamp absorbed so far (0
// before any event) — the stream's event clock.
func (s *Stream) LastEventMS() int64 { return s.lastMS }

// App returns the live trace for one application, or nil.
func (s *Stream) App(id ids.AppID) *AppTrace { return s.apps[id] }

// Apps returns the live traces ordered by submission sequence (ties —
// possible only when garbage input mints several cluster timestamps —
// broken by cluster timestamp, so the order is deterministic).
func (s *Stream) Apps() []*AppTrace {
	out := make([]*AppTrace, 0, len(s.apps))
	for _, a := range s.apps {
		out = append(out, a)
	}
	sortTracesBySeq(out)
	return out
}

// Quiesce is a no-op on the serial stream — Feed absorbs synchronously.
// It exists so Stream and ShardedStream satisfy the same ingestion
// interface.
func (s *Stream) Quiesce() {}

// Close is a no-op on the serial stream — there are no worker
// goroutines to stop. It exists for interface symmetry with
// ShardedStream.
func (s *Stream) Close() {}

// Report snapshots the current state into a full report (aggregates +
// bug detection), like Checker.Analyze but reusable mid-stream. Events
// are gathered per application in submission order and stable-sorted by
// timestamp, so the report is deterministic for a given set of feeds —
// and identical to what a ShardedStream fed the same lines reports.
func (s *Stream) Report() *Report {
	apps := s.Apps()
	all := make([]Event, 0, s.total)
	for _, a := range apps {
		all = append(all, s.eventsByApp[a.ID]...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].TimeMS < all[j].TimeMS })
	return ReportFrom(apps, all)
}

// Complete reports whether an application's headline decomposition is
// fully observable and anomaly-free (the Decomposition.Complete flag) —
// the signal a live dashboard uses to mark a row final.
func (s *Stream) Complete(id ids.AppID) bool {
	a := s.apps[id]
	if a == nil || a.Decomp == nil {
		return false
	}
	return a.Decomp.Complete
}

// Forget drops all state for one application: its trace, its event
// bucket, and the FIRST_LOG dedup entries of its containers. Long-running
// feeds (sdchecker -serve) call this for finished apps so memory tracks
// the live working set, not the full history.
func (s *Stream) Forget(id ids.AppID) {
	if _, ok := s.apps[id]; !ok && len(s.eventsByApp[id]) == 0 {
		return
	}
	s.total -= len(s.eventsByApp[id])
	delete(s.apps, id)
	delete(s.eventsByApp, id)
	delete(s.completed, id)
	delete(s.notified, id)
	for cid := range s.firstLogSeen {
		if cid.App == id {
			delete(s.firstLogSeen, cid)
		}
	}
	s.pl.RecordEvict(id.String())
	if s.met != nil {
		s.met.evicted.Inc()
		s.updateAppGauges()
	}
}

// EvictCompleted forgets completed applications, oldest submission first,
// until at most keep of them remain. It returns how many were evicted.
// In-flight applications are never evicted: their decompositions are
// still growing.
func (s *Stream) EvictCompleted(keep int) int {
	if keep < 0 {
		keep = 0
	}
	var done []ids.AppID
	for id, c := range s.completed {
		if c {
			done = append(done, id)
		}
	}
	if len(done) <= keep {
		return 0
	}
	sortAppIDsBySeq(done)
	victims := done[:len(done)-keep]
	for _, id := range victims {
		s.Forget(id)
	}
	return len(victims)
}

// EvictOldest is the hard memory bound behind EvictCompleted: when more
// than max applications are tracked — complete or not — the oldest by
// submission sequence are forgotten until max remain. Garbage input can
// mint unbounded app IDs whose decompositions never complete; without
// this bound a tailing server would hold them all forever.
func (s *Stream) EvictOldest(max int) int {
	if max < 0 || len(s.apps) <= max {
		return 0
	}
	all := make([]ids.AppID, 0, len(s.apps))
	for id := range s.apps {
		all = append(all, id)
	}
	sortAppIDsBySeq(all)
	victims := all[:len(all)-max]
	for _, id := range victims {
		s.Forget(id)
	}
	return len(victims)
}

// sortAppIDsBySeq orders application IDs by submission sequence, ties
// (distinct cluster timestamps, garbage input only) by cluster timestamp.
func sortAppIDsBySeq(a []ids.AppID) {
	sort.Slice(a, func(i, j int) bool {
		if a[i].Seq != a[j].Seq {
			return a[i].Seq < a[j].Seq
		}
		return a[i].ClusterTS < a[j].ClusterTS
	})
}

// sortTracesBySeq orders traces the same way sortAppIDsBySeq orders IDs.
func sortTracesBySeq(out []*AppTrace) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.Seq != out[j].ID.Seq {
			return out[i].ID.Seq < out[j].ID.Seq
		}
		return out[i].ID.ClusterTS < out[j].ID.ClusterTS
	})
}
