package core

import (
	"io"
	"sort"
	"strings"

	"repro/internal/ids"
)

// singleLine wraps one raw line as a reader for the offline parser.
func singleLine(s string) io.Reader { return strings.NewReader(s) }

// Stream is the incremental variant of the checker: feed it log lines as
// they are produced (a live cluster's `tail -f`, or a simulation pumping
// events) and read current decompositions at any point. Unlike Checker,
// which parses whole files, Stream accepts interleaved lines from many
// sources and keeps per-application state up to date after every line.
//
// Lines from container stderr files must be attributed to their
// container; pass the file path (containing the container ID) as source,
// exactly as the offline parser derives it.
type Stream struct {
	apps map[ids.AppID]*AppTrace
	// firstLogSeen tracks containers whose FIRST_LOG was already taken,
	// since a stream cannot re-read "the first line of the file".
	firstLogSeen map[ids.ContainerID]bool
	// eventsByApp buckets events so a feed only rebuilds its own app.
	eventsByApp map[ids.AppID][]Event
	total       int
}

// NewStream returns an empty incremental checker.
func NewStream() *Stream {
	return &Stream{
		apps:         make(map[ids.AppID]*AppTrace),
		firstLogSeen: make(map[ids.ContainerID]bool),
		eventsByApp:  make(map[ids.AppID][]Event),
	}
}

// Feed consumes one raw log line from the given source path. Unparseable
// lines are ignored, like the offline parser does. It returns true when
// the line produced at least one scheduling event.
func (s *Stream) Feed(source, rawLine string) bool {
	p := NewParser()
	if cidStr := reContainerInPath.FindString(source); cidStr != "" {
		cid, err := ids.ParseContainerID(cidStr)
		if err != nil {
			return false
		}
		return s.feedContainerLine(p, source, cid, rawLine)
	}
	if err := p.ParseReader(source, singleLine(rawLine)); err != nil {
		return false
	}
	return s.absorb(p.Events())
}

// feedContainerLine handles container stderr lines: the first parseable
// line per container becomes its FIRST_LOG event.
func (s *Stream) feedContainerLine(p *Parser, source string, cid ids.ContainerID, rawLine string) bool {
	if err := p.parseContainerLog(source, cid, singleLine(rawLine)); err != nil {
		return false
	}
	evs := p.Events()
	if len(evs) == 0 {
		return false
	}
	out := evs[:0]
	for _, e := range evs {
		switch e.Kind {
		case DriverFirstLog, ExecutorFirstLog, TaskFirstLog:
			if s.firstLogSeen[cid] {
				continue // only the true first line counts
			}
			s.firstLogSeen[cid] = true
		case FirstTask:
			// The offline parser dedups FIRST_TASK per file; do the same
			// against current state.
			if a := s.apps[cid.App]; a != nil {
				if c := a.Container(cid); c != nil && c.FirstTask != 0 {
					continue
				}
			}
		}
		out = append(out, e)
	}
	return s.absorb(out)
}

func (s *Stream) absorb(evs []Event) bool {
	if len(evs) == 0 {
		return false
	}
	dirty := make(map[ids.AppID]bool, 2)
	for _, e := range evs {
		s.eventsByApp[e.App] = append(s.eventsByApp[e.App], e)
		dirty[e.App] = true
		s.total++
	}
	// Rebuild only the touched applications from their own buckets —
	// feeds stay O(events of one app), independent of stream length.
	for id := range dirty {
		for _, a := range Correlate(s.eventsByApp[id]) {
			Decompose(a)
			s.apps[a.ID] = a
		}
	}
	return true
}

// EventCount returns the number of scheduling events absorbed so far.
func (s *Stream) EventCount() int { return s.total }

// App returns the live trace for one application, or nil.
func (s *Stream) App(id ids.AppID) *AppTrace { return s.apps[id] }

// Apps returns the live traces ordered by submission sequence.
func (s *Stream) Apps() []*AppTrace {
	out := make([]*AppTrace, 0, len(s.apps))
	for _, a := range s.apps {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Seq < out[j].ID.Seq })
	return out
}

// Report snapshots the current state into a full report (aggregates +
// bug detection), like Checker.Analyze but reusable mid-stream.
func (s *Stream) Report() *Report {
	all := make([]Event, 0, s.total)
	for _, evs := range s.eventsByApp {
		all = append(all, evs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].TimeMS < all[j].TimeMS })
	return ReportFrom(s.Apps(), all)
}

// Complete reports whether an application's headline decomposition is
// fully observable (total, am, driver, executor all present) — the
// signal a live dashboard uses to mark a row final.
func (s *Stream) Complete(id ids.AppID) bool {
	a := s.apps[id]
	if a == nil || a.Decomp == nil {
		return false
	}
	d := a.Decomp
	return d.Total >= 0 && d.AM >= 0 && d.Driver >= 0 && d.Executor >= 0
}
