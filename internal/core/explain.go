package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/attr"
	"repro/internal/digest"
	"repro/internal/obs"
)

// This file builds the tail-attribution ("explain") report: given a
// component and a target quantile, rank the breakdown cells that put
// mass at or above the fleet-wide target, name each cell's heavy-hitter
// applications and the component's worst nodes, and resolve every
// exemplar back to its mined decomposition, trace deep link, and (in
// serve mode) the flight-recorder slice around its completion. It is
// the drill-down path from "p99 is high" on /aggregate or /slo to the
// concrete applications responsible.

// AppSummary is the minimal per-application record the drill-down layer
// keeps for exemplar-referenced applications: identity, the headline
// decomposition, and the trace sequence number behind /trace/<seq>. It
// is what survives eviction when the full AppTrace is dropped.
type AppSummary struct {
	App         string     `json:"app"`
	Seq         int        `json:"seq"`
	Name        string     `json:"name,omitempty"`
	AppType     string     `json:"type,omitempty"`
	Queue       string     `json:"queue,omitempty"`
	SubmittedMS int64      `json:"submitted_ms"`
	Decomp      jsonDecomp `json:"decomposition"`
}

// SummarizeApp captures an application's pinned summary (nil decomp
// yields zero-valued headline fields marked incomplete).
func SummarizeApp(a *AppTrace) *AppSummary {
	s := &AppSummary{
		App: a.ID.String(), Seq: a.ID.Seq,
		Name: a.Name, AppType: a.AppType, Queue: a.Queue,
		SubmittedMS: a.Submitted,
	}
	if d := a.Decomp; d != nil {
		s.Decomp = jsonDecomp{
			Total: d.Total, AM: d.AM, In: d.In, Out: d.Out,
			Driver: d.Driver, Executor: d.Executor, Alloc: d.Alloc,
			Cf: d.Cf, Cl: d.Cl, Job: d.JobRuntime,
			Complete: d.Complete, Anomalies: d.Anomalies,
		}
	}
	return s
}

// ExplainExemplar is one resolved exemplar: the raw reservoir entry
// plus its drill-down context. Flight is the flight-recorder slice
// around the application's completion hook (serve mode only).
type ExplainExemplar struct {
	digest.Exemplar
	TracePath string      `json:"trace,omitempty"`
	Evicted   bool        `json:"evicted,omitempty"`
	Summary   *AppSummary `json:"summary,omitempty"`
	Flight    []obs.Event `json:"flight,omitempty"`
}

// ExplainCell is one breakdown cell's contribution to the component's
// tail, with its heavy hitters and resolved exemplars.
type ExplainCell struct {
	Queue     string            `json:"queue,omitempty"`
	Node      string            `json:"node,omitempty"`
	Instance  string            `json:"instance,omitempty"`
	Count     uint64            `json:"count"`
	QMS       float64           `json:"q_ms"`
	MaxMS     float64           `json:"max_ms"`
	TailCount uint64            `json:"tail_count"`
	TailShare float64           `json:"tail_share"`
	TopApps   []attr.Entry      `json:"top_apps,omitempty"`
	Exemplars []ExplainExemplar `json:"exemplars,omitempty"`
}

// ExplainDoc is the ranked attribution report behind /explain and
// `sdchecker -explain`.
type ExplainDoc struct {
	Component  string        `json:"component"`
	Q          float64       `json:"q"`
	TargetMS   float64       `json:"target_ms"`
	Count      uint64        `json:"count"`
	TailCount  uint64        `json:"tail_count"`
	Alpha      float64       `json:"alpha"`
	CellsTotal int           `json:"cells_total"`
	Cells      []ExplainCell `json:"cells"`
	WorstNodes []attr.Entry  `json:"worst_nodes,omitempty"`
}

// DefaultExplainCells bounds how many cells an explain report lists.
const DefaultExplainCells = 10

// explainTopApps bounds the heavy hitters listed per cell and the worst
// nodes listed per report (the underlying summaries hold more; see
// BreakdownAttr.TopCap).
const explainTopApps = 8

// Explain builds the attribution report for one component at quantile q
// (clamped into (0,1]; out-of-range defaults to 0.99). Cells are ranked
// by how many of their observations sit at or above the fleet-wide
// target quantile value — the cells that own the tail — with ties
// broken by cell coordinates; maxCells <= 0 uses DefaultExplainCells.
// enrich, when non-nil, resolves an exemplar's app ID to its pinned or
// live summary and whether the full trace has been evicted.
func (cb *ClusterBreakdown) Explain(component string, q float64, maxCells int, enrich func(app string) (*AppSummary, bool)) *ExplainDoc {
	if !(q > 0 && q <= 1) {
		q = 0.99
	}
	if maxCells <= 0 {
		maxCells = DefaultExplainCells
	}
	fleet := cb.Component(component)
	doc := &ExplainDoc{
		Component: component, Q: q,
		TargetMS: fleet.Quantile(q),
		Count:    fleet.Count(),
		Alpha:    cb.Alpha,
	}
	doc.TailCount = fleet.CountAbove(doc.TargetMS)

	type cell struct {
		key BreakdownKey
		sk  *digest.Sketch
	}
	var cells []cell
	for k, s := range cb.Sketches {
		if k.Component == component {
			cells = append(cells, cell{k, s})
		}
	}
	doc.CellsTotal = len(cells)
	sort.Slice(cells, func(i, j int) bool {
		ti := cells[i].sk.CountAbove(doc.TargetMS)
		tj := cells[j].sk.CountAbove(doc.TargetMS)
		if ti != tj {
			return ti > tj
		}
		a, b := cells[i].key, cells[j].key
		if a.Queue != b.Queue {
			return a.Queue < b.Queue
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Instance < b.Instance
	})
	if len(cells) > maxCells {
		cells = cells[:maxCells]
	}
	for _, c := range cells {
		ec := ExplainCell{
			Queue: c.key.Queue, Node: c.key.Node, Instance: string(c.key.Instance),
			Count:     c.sk.Count(),
			QMS:       c.sk.Quantile(q),
			MaxMS:     c.sk.Max(),
			TailCount: c.sk.CountAbove(doc.TargetMS),
		}
		if doc.TailCount > 0 {
			ec.TailShare = float64(ec.TailCount) / float64(doc.TailCount)
		}
		if cb.Attr != nil {
			if tk := cb.Attr.Apps[c.key]; tk != nil {
				ec.TopApps = tk.Top(explainTopApps)
			}
		}
		for _, e := range c.sk.Exemplars() {
			ee := ExplainExemplar{Exemplar: e}
			if enrich != nil {
				if sum, evicted := enrich(e.App); sum != nil {
					ee.Summary = sum
					ee.Evicted = evicted
					ee.TracePath = fmt.Sprintf("/trace/%d", sum.Seq)
				}
			}
			ec.Exemplars = append(ec.Exemplars, ee)
		}
		doc.Cells = append(doc.Cells, ec)
	}
	if cb.Attr != nil {
		if tk := cb.Attr.Nodes[component]; tk != nil {
			doc.WorstNodes = tk.Top(explainTopApps)
		}
	}
	return doc
}

// JSON renders the report as indented JSON (the /explain wire format
// and the golden-test format).
func (d *ExplainDoc) JSON() (string, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", fmt.Errorf("core: %w", err)
	}
	return string(b), nil
}

// Format renders the report as the CLI's human-readable table.
func (d *ExplainDoc) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explain %s p%g: target %.0fms over %d observations (%d in tail, %d cells)\n",
		d.Component, d.Q*100, d.TargetMS, d.Count, d.TailCount, d.CellsTotal)
	if len(d.WorstNodes) > 0 {
		b.WriteString("worst nodes: ")
		for i, n := range d.WorstNodes {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s (%.0fms)", n.Key, n.SumMS)
		}
		b.WriteByte('\n')
	}
	for i, c := range d.Cells {
		fmt.Fprintf(&b, "#%d queue=%q node=%q instance=%q: %d obs, p%g %.0fms, max %.0fms, tail %d (%.0f%%)\n",
			i+1, c.Queue, c.Node, c.Instance, c.Count, d.Q*100, c.QMS, c.MaxMS, c.TailCount, c.TailShare*100)
		for _, a := range c.TopApps {
			fmt.Fprintf(&b, "   app %s contributed %.0fms", a.Key, a.SumMS)
			if a.ErrMS > 0 {
				fmt.Fprintf(&b, " (±%.0fms)", a.ErrMS)
			}
			b.WriteByte('\n')
		}
		for _, e := range c.Exemplars {
			fmt.Fprintf(&b, "   exemplar %s %.0fms at %d", e.App, e.ValueMS, e.AtMS)
			if e.TracePath != "" {
				fmt.Fprintf(&b, " trace %s", e.TracePath)
			}
			if e.Evicted {
				b.WriteString(" (evicted; pinned summary)")
			}
			if s := e.Summary; s != nil {
				fmt.Fprintf(&b, "\n      total %dms am %dms driver %dms executor %dms alloc %dms complete=%v",
					s.Decomp.Total, s.Decomp.AM, s.Decomp.Driver, s.Decomp.Executor, s.Decomp.Alloc, s.Decomp.Complete)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ExemplarApps returns the set of application IDs referenced by any
// exemplar reservoir in the breakdown — the apps whose summaries the
// drill-down layer must keep resolvable (e.g. pinned across eviction).
func (cb *ClusterBreakdown) ExemplarApps() map[string]bool {
	out := make(map[string]bool)
	for _, s := range cb.Sketches {
		for _, e := range s.Exemplars() {
			out[e.App] = true
		}
	}
	return out
}

// AttrStats reports the attribution layer's current footprint: held
// exemplars across all cell reservoirs and heavy-hitter entries across
// all top-k summaries (both bounded by construction).
func (cb *ClusterBreakdown) AttrStats() (exemplars, topkEntries int) {
	for _, s := range cb.Sketches {
		exemplars += len(s.Exemplars())
	}
	if cb.Attr != nil {
		for _, tk := range cb.Attr.Apps {
			topkEntries += tk.Len()
		}
		for _, tk := range cb.Attr.Nodes {
			topkEntries += tk.Len()
		}
	}
	return exemplars, topkEntries
}

// attributionCell is one cell's full attribution state in the canonical
// dump (see AttributionJSON).
type attributionCell struct {
	Component string            `json:"component"`
	Queue     string            `json:"queue,omitempty"`
	Node      string            `json:"node,omitempty"`
	Instance  string            `json:"instance,omitempty"`
	Count     uint64            `json:"count"`
	Exemplars []digest.Exemplar `json:"exemplars,omitempty"`
	TopApps   []attr.Entry      `json:"top_apps,omitempty"`
}

type attributionDoc struct {
	Cells []attributionCell       `json:"cells"`
	Nodes map[string][]attr.Entry `json:"nodes,omitempty"`
}

// AttributionJSON renders the complete attribution state — every cell's
// exemplar reservoir and heavy hitters, every component's worst nodes —
// in a canonical deterministic order. The differential oracle
// byte-compares it between serial and sharded runs at every worker
// count.
func (cb *ClusterBreakdown) AttributionJSON() (string, error) {
	compOrder := make(map[string]int, len(Components))
	for i, c := range Components {
		compOrder[c] = i
	}
	doc := attributionDoc{}
	for k, s := range cb.Sketches {
		c := attributionCell{
			Component: k.Component, Queue: k.Queue, Node: k.Node, Instance: string(k.Instance),
			Count:     s.Count(),
			Exemplars: s.Exemplars(),
		}
		if cb.Attr != nil {
			if tk := cb.Attr.Apps[k]; tk != nil {
				c.TopApps = tk.Entries()
			}
		}
		doc.Cells = append(doc.Cells, c)
	}
	sort.Slice(doc.Cells, func(i, j int) bool {
		a, b := doc.Cells[i], doc.Cells[j]
		if ca, cb2 := compOrder[a.Component], compOrder[b.Component]; ca != cb2 {
			return ca < cb2
		}
		if a.Queue != b.Queue {
			return a.Queue < b.Queue
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Instance < b.Instance
	})
	if cb.Attr != nil && len(cb.Attr.Nodes) > 0 {
		doc.Nodes = make(map[string][]attr.Entry, len(cb.Attr.Nodes))
		for c, tk := range cb.Attr.Nodes {
			doc.Nodes[c] = tk.Entries()
		}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("core: %w", err)
	}
	return string(b), nil
}
