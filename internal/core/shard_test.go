package core

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/ids"
	"repro/internal/log4j"
	"repro/internal/metrics"
)

// corpusLines flattens a corpus into one deterministic feed sequence:
// global timestamp order with file order breaking ties, as a live
// collector tailing all files at once would observe it.
func corpusLines(t *testing.T, cs corpus) []shardLine {
	t.Helper()
	type stamped struct {
		shardLine
		ms int64
	}
	var all []stamped
	for _, f := range sortedKeys(cs) {
		for _, l := range cs[f] {
			parsed, err := log4j.ParseLine(l)
			ms := int64(0)
			if err == nil {
				ms = parsed.TimeMS
			}
			all = append(all, stamped{shardLine{f, l}, ms})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].ms < all[j].ms })
	out := make([]shardLine, len(all))
	for i, s := range all {
		out[i] = s.shardLine
	}
	return out
}

// feedSerial pumps a line sequence through a fresh serial Stream, with a
// completion-hook breakdown sketch attached — the reference the sharded
// stream is diffed against.
func feedSerial(lines []shardLine) (*Stream, *ClusterBreakdown) {
	st := NewStream()
	bd := NewClusterBreakdown()
	st.OnComplete(func(a *AppTrace) { bd.Observe(a) })
	for _, ln := range lines {
		st.Feed(ln.source, ln.raw)
	}
	return st, bd
}

// diffShardedSerial feeds the same sequence into a ShardedStream with w
// workers and asserts every observable matches the serial stream: the
// rendered report (byte for byte), event counts, clock, app sets, and
// the completed-app breakdown sketch.
func diffShardedSerial(t *testing.T, lines []shardLine, w int) {
	t.Helper()
	st, refBD := feedSerial(lines)
	refRep, err := st.Report().JSON()
	if err != nil {
		t.Fatalf("serial report: %v", err)
	}

	ss := NewShardedStream(w)
	defer ss.Close()
	for _, ln := range lines {
		if !ss.Feed(ln.source, ln.raw) {
			t.Fatalf("workers=%d: Feed rejected before Close", w)
		}
	}
	ss.Quiesce()

	if got, want := ss.EventCount(), st.EventCount(); got != want {
		t.Errorf("workers=%d: EventCount=%d serial=%d", w, got, want)
	}
	if got, want := ss.LastEventMS(), st.LastEventMS(); got != want {
		t.Errorf("workers=%d: LastEventMS=%d serial=%d", w, got, want)
	}
	gotRep, err := ss.Report().JSON()
	if err != nil {
		t.Fatalf("workers=%d: sharded report: %v", w, err)
	}
	if gotRep != refRep {
		t.Errorf("workers=%d: report JSON diverges from serial stream", w)
	}

	sApps, pApps := st.Apps(), ss.Apps()
	if len(sApps) != len(pApps) {
		t.Fatalf("workers=%d: apps=%d serial=%d", w, len(pApps), len(sApps))
	}
	for i := range sApps {
		id := sApps[i].ID
		if pApps[i].ID != id {
			t.Fatalf("workers=%d: app %d = %v, serial %v", w, i, pApps[i].ID, id)
		}
		if got, want := ss.Complete(id), st.Complete(id); got != want {
			t.Errorf("workers=%d: Complete(%v)=%v serial=%v", w, id, got, want)
		}
		if ss.App(id) == nil {
			t.Errorf("workers=%d: App(%v) = nil", w, id)
		}
	}

	if got, want := ss.Breakdown().Rows(), refBD.Rows(); !reflect.DeepEqual(got, want) {
		t.Errorf("workers=%d: breakdown rows diverge from serial completion hook", w)
	}
	if got, want := ss.Breakdown().ComponentRows(), refBD.ComponentRows(); !reflect.DeepEqual(got, want) {
		t.Errorf("workers=%d: breakdown component rows diverge", w)
	}
}

func TestShardedStreamMatchesSerial(t *testing.T) {
	lines := corpusLines(t, buildMultiAppCorpus(7))
	for _, w := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			diffShardedSerial(t, lines, w)
		})
	}
}

// goldenTreeLines reads a checked-in golden log tree into a feed
// sequence (file walk order, then line order — the shape a tailing
// collector replaying a finished run would produce).
func goldenTreeLines(t *testing.T, dir string) []shardLine {
	t.Helper()
	var out []shardLine
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 256*1024), 1024*1024)
		for sc.Scan() {
			out = append(out, shardLine{filepath.ToSlash(rel), sc.Text()})
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	return out
}

// TestShardedStreamGoldenTrees runs the serial-vs-sharded differential
// over the real simulator-generated golden trees, including the faulted
// one (lost containers, partial decompositions).
func TestShardedStreamGoldenTrees(t *testing.T) {
	for _, c := range []string{"pristine", "faulted"} {
		lines := goldenTreeLines(t, filepath.Join("testdata", "golden", c, "input"))
		if len(lines) == 0 {
			t.Fatalf("%s: empty golden tree", c)
		}
		for _, w := range []int{2, 5} {
			t.Run(fmt.Sprintf("%s/workers=%d", c, w), func(t *testing.T) {
				diffShardedSerial(t, lines, w)
			})
		}
	}
}

// TestShardedOnCompleteFiresOnce pins the exactly-once completion
// contract across shards: every application's hook fires exactly once
// even though absorption is spread over four workers.
func TestShardedOnCompleteFiresOnce(t *testing.T) {
	lines := corpusLines(t, buildMultiAppCorpus(9))
	ss := NewShardedStream(4)
	defer ss.Close()
	fired := map[ids.AppID]int{}
	// The hook is serialized across shards, so a plain map is safe.
	ss.OnComplete(func(a *AppTrace) { fired[a.ID]++ })
	for _, ln := range lines {
		ss.Feed(ln.source, ln.raw)
	}
	ss.Quiesce()
	if len(fired) != 9 {
		t.Fatalf("completions for %d apps, want 9", len(fired))
	}
	for id, n := range fired {
		if n != 1 {
			t.Errorf("%v: hook fired %d times", id, n)
		}
	}
}

// TestShardedEvictionMatchesSerial pins that the cross-shard eviction
// policies pick the same victims, in the same order, as a single
// stream's.
func TestShardedEvictionMatchesSerial(t *testing.T) {
	lines := corpusLines(t, buildMultiAppCorpus(8))
	st, _ := feedSerial(lines)
	ss := NewShardedStream(3)
	defer ss.Close()
	for _, ln := range lines {
		ss.Feed(ln.source, ln.raw)
	}
	ss.Quiesce()

	if got, want := ss.EvictCompleted(5), st.EvictCompleted(5); got != want {
		t.Fatalf("EvictCompleted: sharded evicted %d, serial %d", got, want)
	}
	if got, want := appIDs(ss.Apps()), appIDs(st.Apps()); !reflect.DeepEqual(got, want) {
		t.Fatalf("after EvictCompleted: sharded apps %v, serial %v", got, want)
	}
	if got, want := ss.EvictOldest(2), st.EvictOldest(2); got != want {
		t.Fatalf("EvictOldest: sharded evicted %d, serial %d", got, want)
	}
	if got, want := appIDs(ss.Apps()), appIDs(st.Apps()); !reflect.DeepEqual(got, want) {
		t.Fatalf("after EvictOldest: sharded apps %v, serial %v", got, want)
	}

	// Forget the remaining apps one by one; both must drain to empty.
	for _, id := range appIDs(st.Apps()) {
		ss.Forget(id)
		st.Forget(id)
	}
	if n := len(ss.Apps()); n != 0 {
		t.Fatalf("after Forget all: %d apps remain", n)
	}
	if n := ss.EventCount(); n != 0 {
		t.Fatalf("after Forget all: %d events remain", n)
	}
}

func appIDs(apps []*AppTrace) []ids.AppID {
	out := make([]ids.AppID, len(apps))
	for i, a := range apps {
		out[i] = a.ID
	}
	return out
}

// TestShardedFeedAfterClose pins Close semantics: feeds are rejected,
// the read side stays usable, and Close is idempotent.
func TestShardedFeedAfterClose(t *testing.T) {
	lines := corpusLines(t, buildMultiAppCorpus(2))
	ss := NewShardedStream(2)
	for _, ln := range lines {
		ss.Feed(ln.source, ln.raw)
	}
	ss.Close()
	if ss.Feed("hadoop/yarn-resourcemanager.log", lines[0].raw) {
		t.Fatal("Feed accepted after Close")
	}
	if n := len(ss.Apps()); n != 2 {
		t.Fatalf("after Close: %d apps, want 2", n)
	}
	if _, err := ss.Report().JSON(); err != nil {
		t.Fatalf("Report after Close: %v", err)
	}
	ss.Close() // idempotent
}

// TestShardedStreamInstrumented pins the metric families the sharded
// stream registers: the serial stream's counter names (so dashboards
// work unchanged), per-shard line counters, and the forwarding counter.
func TestShardedStreamInstrumented(t *testing.T) {
	reg := metrics.NewRegistry()
	ss := NewShardedStream(2)
	defer ss.Close()
	ss.Instrument(reg)
	lines := corpusLines(t, buildMultiAppCorpus(3))
	for _, ln := range lines {
		ss.Feed(ln.source, ln.raw)
	}
	ss.Quiesce()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	dump := b.String()
	for _, want := range []string{
		"core_stream_lines_total",
		"core_stream_events_total",
		"core_stream_apps_completed",
		"core_shard_forwarded_events_total",
		`core_shard_lines_total{shard="0"}`,
		`core_shard_lines_total{shard="1"}`,
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

// TestShardedStreamConcurrentHammer is the -race stress test: several
// goroutines feed disjoint slices of the corpus while others hammer the
// read and eviction surface. It asserts freedom from data races (via the
// race detector) and that the stream survives to a consistent final
// state once feeders finish and evictions stop.
func TestShardedStreamConcurrentHammer(t *testing.T) {
	lines := corpusLines(t, buildMultiAppCorpus(12))
	ss := NewShardedStream(4)
	defer ss.Close()
	ss.OnComplete(func(a *AppTrace) { _ = a.ID })

	const feeders = 4
	var feedWG, churnWG sync.WaitGroup
	stop := make(chan struct{})

	for f := 0; f < feeders; f++ {
		feedWG.Add(1)
		go func(f int) {
			defer feedWG.Done()
			for i := f; i < len(lines); i += feeders {
				ss.Feed(lines[i].source, lines[i].raw)
			}
		}(f)
	}
	// Readers: every public read path, continuously.
	probe := mustAppID(t, "application_1499000000000_0003")
	victim := mustAppID(t, "application_1499000000000_0001")
	for r := 0; r < 2; r++ {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			id := probe
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = ss.EventCount()
				_ = ss.LastEventMS()
				_ = ss.Apps()
				_ = ss.Complete(id)
				_ = ss.App(id)
				_ = ss.Breakdown().Rows()
				_ = ss.Report()
			}
		}()
	}
	// Evicter: churns all three eviction paths against live feeds.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ss.EvictCompleted(6)
			ss.EvictOldest(10)
			if i%4 == 0 {
				ss.Forget(victim)
			}
			ss.Quiesce()
		}
	}()

	feedWG.Wait() // all lines fed (absorption may still be in flight)
	close(stop)
	churnWG.Wait()

	ss.Quiesce()
	rep := ss.Report()
	if len(rep.Apps) > 12 {
		t.Fatalf("more apps than fed: %d", len(rep.Apps))
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatalf("final report: %v", err)
	}
}
