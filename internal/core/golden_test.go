package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden expected.json files")

// TestGolden pins the full pipeline output — parse, correlate, decompose,
// JSON export — byte for byte against checked-in log trees produced by
// real simulator runs (cmd/gencorpus): a pristine run and one with node
// crashes. Regenerate expectations with `go test ./internal/core -run
// TestGolden -update` and review the diff like any other code change.
func TestGolden(t *testing.T) {
	root := filepath.Join("testdata", "golden")
	cases, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("reading golden cases: %v", err)
	}
	if len(cases) == 0 {
		t.Fatal("no golden cases; run `go run ./cmd/gencorpus`")
	}
	for _, c := range cases {
		t.Run(c.Name(), func(t *testing.T) {
			ck := New()
			if err := ck.AddDir(filepath.Join(root, c.Name(), "input")); err != nil {
				t.Fatalf("AddDir: %v", err)
			}
			rep := ck.Analyze()
			got, err := rep.JSON()
			if err != nil {
				t.Fatalf("JSON: %v", err)
			}
			expPath := filepath.Join(root, c.Name(), "expected.json")
			if *updateGolden {
				if err := os.WriteFile(expPath, []byte(got+"\n"), 0o644); err != nil {
					t.Fatalf("writing %s: %v", expPath, err)
				}
				return
			}
			want, err := os.ReadFile(expPath)
			if err != nil {
				t.Fatalf("reading %s (run with -update to create): %v", expPath, err)
			}
			if !bytes.Equal([]byte(got+"\n"), want) {
				t.Errorf("%s: JSON output drifted from golden file; rerun with -update and review the diff", c.Name())
			}
			// The retained regex reference matcher must hit the same
			// golden bytes as the byte-level fast path the run above used.
			func() {
				defer UseReferenceMatcher(true)()
				ck := New()
				if err := ck.AddDir(filepath.Join(root, c.Name(), "input")); err != nil {
					t.Fatalf("AddDir (regex matcher): %v", err)
				}
				rgot, err := ck.Analyze().JSON()
				if err != nil {
					t.Fatalf("JSON (regex matcher): %v", err)
				}
				if !bytes.Equal([]byte(rgot+"\n"), want) {
					t.Errorf("%s: regex reference matcher diverges from golden file", c.Name())
				}
			}()
			// The parallel miner must hit the same goldens byte for byte
			// at any worker count.
			for _, w := range []int{2, 5} {
				prep, err := MineDir(filepath.Join(root, c.Name(), "input"), w)
				if err != nil {
					t.Fatalf("MineDir(workers=%d): %v", w, err)
				}
				pgot, err := prep.JSON()
				if err != nil {
					t.Fatalf("parallel JSON (workers=%d): %v", w, err)
				}
				if !bytes.Equal([]byte(pgot+"\n"), want) {
					t.Errorf("%s: MineDir(workers=%d) JSON diverges from golden file", c.Name(), w)
				}
			}
			// The faulted tree must mine into flagged partial
			// decompositions, never silently complete ones.
			if c.Name() == "faulted" {
				if !strings.Contains(got, `"complete": false`) {
					t.Error("faulted golden case has no partial decomposition")
				}
				if !strings.Contains(got, "lost to node failure") {
					t.Error("faulted golden case lists no lost-container anomaly")
				}
				if !strings.Contains(got, `"lost_ms"`) {
					t.Error("faulted golden case records no container loss timestamps")
				}
			}
		})
	}
}
