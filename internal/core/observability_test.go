package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/metrics"
)

// miniAppCorpus builds the smallest corpus that yields a *complete*
// headline decomposition (total, am, driver, executor) for app number seq.
func miniAppCorpus(seq int) corpus {
	cs := corpus{}
	app := fmt.Sprintf("application_1499000000000_%04d", seq)
	am := fmt.Sprintf("container_1499000000000_%04d_01_000001", seq)
	ex := fmt.Sprintf("container_1499000000000_%04d_01_000002", seq)
	off := int64(seq) * 20_000

	rm := "hadoop/yarn-resourcemanager.log"
	cs.add(rm, line(off+100, "x.RMAppImpl", app+" State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"))
	cs.add(rm, line(off+5100, "x.RMAppImpl", app+" State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"))

	amLog := "userlogs/" + app + "/" + am + "/stderr"
	cs.add(amLog, line(off+1500, "org.apache.spark.deploy.yarn.ApplicationMaster", "Preparing Local resources"))
	cs.add(amLog, line(off+5100, "org.apache.spark.deploy.yarn.ApplicationMaster", "Registered with ResourceManager as x"))

	exLog := "userlogs/" + app + "/" + ex + "/stderr"
	cs.add(exLog, line(off+7100, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Started daemon"))
	cs.add(exLog, line(off+12000, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Got assigned task 0"))
	return cs
}

func feedCorpus(s *Stream, cs corpus) {
	for src, lines := range cs {
		for _, l := range lines {
			s.Feed(src, l)
		}
	}
}

// TestStreamEvictionBoundsMemory is the regression test for the unbounded
// firstLogSeen/eventsByApp growth: a long-running feed of 2,000 completed
// applications must stay at the retention limit once EvictCompleted runs.
func TestStreamEvictionBoundsMemory(t *testing.T) {
	const apps, keep = 2000, 100
	reg := metrics.NewRegistry()
	s := NewStream()
	s.Instrument(reg)
	for i := 1; i <= apps; i++ {
		feedCorpus(s, miniAppCorpus(i))
		if i%50 == 0 && i < apps {
			s.EvictCompleted(keep)
		}
	}
	evicted := s.EvictCompleted(keep)
	if evicted == 0 {
		t.Fatal("final eviction removed nothing")
	}
	if got := len(s.apps); got != keep {
		t.Fatalf("apps retained = %d, want %d", got, keep)
	}
	if got := len(s.eventsByApp); got != keep {
		t.Fatalf("event buckets retained = %d, want %d", got, keep)
	}
	// 2 containers with stderr per app; all entries of evicted apps pruned.
	if got := len(s.firstLogSeen); got != 2*keep {
		t.Fatalf("firstLogSeen entries = %d, want %d", got, 2*keep)
	}
	// The oldest survivor must be the first kept app.
	survivors := s.Apps()
	if survivors[0].ID.Seq != apps-keep+1 {
		t.Fatalf("oldest survivor seq = %d, want %d", survivors[0].ID.Seq, apps-keep+1)
	}
	// Metric side: every evicted app counted.
	for _, snap := range reg.Snapshot() {
		switch snap.Name {
		case "core_stream_apps_evicted_total":
			if snap.Value != apps-keep {
				t.Errorf("evicted counter = %d, want %d", snap.Value, apps-keep)
			}
		case "core_stream_apps_completed":
			if snap.Value != keep {
				t.Errorf("completed gauge = %d, want %d", snap.Value, keep)
			}
		}
	}
}

func TestStreamForget(t *testing.T) {
	s := NewStream()
	feedCorpus(s, miniAppCorpus(1))
	feedCorpus(s, miniAppCorpus(2))
	id := mustAppID(t, "application_1499000000000_0001")
	if s.App(id) == nil {
		t.Fatal("app 1 missing before Forget")
	}
	before := s.EventCount()
	s.Forget(id)
	if s.App(id) != nil {
		t.Fatal("app survived Forget")
	}
	if s.EventCount() >= before {
		t.Fatalf("event count %d not reduced from %d", s.EventCount(), before)
	}
	for cid := range s.firstLogSeen {
		if cid.App == id {
			t.Fatalf("firstLogSeen leak: %v", cid)
		}
	}
	// Forgetting an unknown app is a no-op.
	s.Forget(mustAppID(t, "application_1499000000000_0099"))
	if len(s.Apps()) != 1 {
		t.Fatal("unrelated app lost")
	}
}

// TestStreamMetricsCounts checks the stream's line/event counters against
// a corpus with known contents.
func TestStreamMetricsCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewStream()
	s.Instrument(reg)
	feedCorpus(s, buildSparkCorpus())
	s.Feed("hadoop/yarn-resourcemanager.log", "java.lang.NullPointerException")

	vals := map[string]int64{}
	for _, snap := range reg.Snapshot() {
		if snap.Type == metrics.TypeCounter && len(snap.Labels) == 0 {
			vals[snap.Name] = snap.Value
		}
	}
	if vals["core_stream_lines_total"] != vals["core_stream_lines_matched_total"]+vals["core_stream_lines_dropped_total"] {
		t.Fatalf("lines %d != matched %d + dropped %d", vals["core_stream_lines_total"],
			vals["core_stream_lines_matched_total"], vals["core_stream_lines_dropped_total"])
	}
	if vals["core_stream_lines_dropped_total"] == 0 {
		t.Fatal("junk line not counted as dropped")
	}
	if vals["core_stream_events_total"] != int64(s.EventCount()) {
		t.Fatalf("events counter %d != EventCount %d", vals["core_stream_events_total"], s.EventCount())
	}
	if vals["core_parser_lines_total"] == 0 {
		t.Fatal("shared parser counters not wired into per-line parsers")
	}
}

// chromeFile mirrors the trace-event JSON for round-trip validation.
type chromeFile struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		TS   int64             `json:"ts"`
		Dur  *int64            `json:"dur"`
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

// TestChromeTraceRoundTrip validates the mined trace export: parseable
// JSON, non-negative durations, and spans on one track either disjoint or
// strictly nested (never partially overlapping).
func TestChromeTraceRoundTrip(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	raw, err := rep.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	type span struct {
		name       string
		start, end int64
	}
	tracks := map[[2]int][]span{}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Args["name"] == "" {
				t.Fatalf("metadata event without a name: %+v", e)
			}
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("span %q has no/negative duration", e.Name)
			}
			names[e.Name] = true
			k := [2]int{e.PID, e.TID}
			tracks[k] = append(tracks[k], span{e.Name, e.TS, e.TS + *e.Dur})
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	for _, want := range []string{"am", "driver", "allocation", "acquisition", "localization", "launching", "executor"} {
		if !names[want] {
			t.Errorf("trace missing span %q", want)
		}
	}
	for k, spans := range tracks {
		for i := 0; i < len(spans); i++ {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				disjoint := a.end <= b.start || b.end <= a.start
				nested := (a.start <= b.start && b.end <= a.end) || (b.start <= a.start && a.end <= b.end)
				if !disjoint && !nested {
					t.Errorf("track %v: spans %q and %q partially overlap", k, a.name, b.name)
				}
			}
		}
	}
}

// TestStreamTraceMatchesOffline: the stream's report must render the
// byte-identical trace document the offline checker produces.
func TestStreamTraceMatchesOffline(t *testing.T) {
	cs := buildSparkCorpus()
	offline, err := analyze(t, cs).ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := streamFeedCorpus(t, cs).Report().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offline, streamed) {
		t.Fatal("stream trace differs from offline trace")
	}
}

func TestChromeTraceApp(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	if _, err := rep.ChromeTraceApp(1); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.ChromeTraceApp(42); err == nil {
		t.Fatal("unknown sequence did not error")
	}
}
