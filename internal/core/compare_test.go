package core

import (
	"strings"
	"testing"
)

func TestCompareSpeedups(t *testing.T) {
	a := analyze(t, buildSparkCorpus())
	// Build a "faster" variant by shifting the first task earlier.
	cs := buildSparkCorpus()
	app := "application_1499000000000_0001"
	e1 := "container_1499000000000_0001_01_000002"
	f := "userlogs/" + app + "/" + e1 + "/stderr"
	// Replace the executor log with an earlier first task.
	cs[f] = []string{
		line(7100, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Started daemon"),
		line(9000, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Got assigned task 0"),
	}
	b := analyze(t, cs)

	cmp := Compare("slow", a, "fast", b)
	row := cmp.Row("total")
	if row == nil {
		t.Fatal("no total row")
	}
	if row.SpeedupP50 <= 1 {
		t.Fatalf("expected B faster on total, speedup=%v", row.SpeedupP50)
	}
	if cmp.Row("nope") != nil {
		t.Fatal("phantom row")
	}
	out := cmp.Format()
	if !strings.Contains(out, "slow") || !strings.Contains(out, "total") {
		t.Fatalf("format output incomplete:\n%s", out)
	}
}

func TestCSVExports(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())

	csv := rep.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 { // header + one app
		t.Fatalf("CSV rows=%d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "app,submitted_ms,total") {
		t.Fatalf("CSV header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "application_1499000000000_0001") {
		t.Fatalf("CSV body: %q", lines[1])
	}

	comp, err := rep.ComponentCSV("localization")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(comp), "\n")); got != 4 { // header + 3 containers
		t.Fatalf("localization CSV rows=%d", got)
	}
	if _, err := rep.ComponentCSV("bogus"); err == nil {
		t.Fatal("bogus component accepted")
	}

	cdf := rep.CDFCSV(10)
	if !strings.Contains(cdf, "series,value_ms,fraction") || !strings.Contains(cdf, "total,") {
		t.Fatalf("CDF CSV incomplete:\n%s", cdf)
	}

	inst := rep.InstanceLaunchCSV()
	if !strings.Contains(inst, "spe,") || !strings.Contains(inst, "spm,") {
		t.Fatalf("instance CSV incomplete:\n%s", inst)
	}
}
