// Package core implements SDchecker, the paper's contribution: an offline
// log-mining tool that decomposes the job scheduling delay of data
// analytics applications into components.
//
// SDchecker's only input is log files in log4j format, exactly as the
// paper describes (§III): it extracts the state-transition messages of
// Table I with regular expressions, binds each to its global ID
// (application ID or container ID), groups and time-orders the events,
// builds a scheduling graph per application (Fig 3), and computes the
// delay decomposition (§III-C). It knows nothing about the simulator that
// produced the logs — point it at a directory of real Hadoop/Spark logs
// with the same message shapes and it would work the same way.
package core

import (
	"fmt"

	"repro/internal/ids"
)

// Kind identifies one mined log message type. The first fourteen map 1:1
// to Table I of the paper; the remainder are extensions SDchecker uses
// for queueing delay, bug detection, and job-runtime accounting.
type Kind int

// Table I message kinds (numbered comments give the paper's row).
const (
	KindUnknown Kind = iota

	AppSubmitted      // 1.  RMAppImpl       SUBMITTED
	AppAccepted       // 2.  RMAppImpl       ACCEPTED
	AttemptRegistered // 3.  RMAppImpl       APT_REGISTERED
	ContAllocated     // 4.  RMContainerImpl ALLOCATED
	ContAcquired      // 5.  RMContainerImpl ACQUIRED
	ContLocalizing    // 6.  ContainerImpl   LOCALIZING
	ContScheduled     // 7.  ContainerImpl   SCHEDULED
	ContRunning       // 8.  ContainerImpl   RUNNING
	DriverFirstLog    // 9.  Spark-Driver    FIRST_LOG
	DriverRegister    // 10. Spark-Driver    REGISTER
	StartAllo         // 11. Spark-Driver    START_ALLO
	EndAllo           // 12. Spark-Driver    END_ALLO
	ExecutorFirstLog  // 13. Spark-Executor  FIRST_LOG
	FirstTask         // 14. Spark-Executor  FIRST_TASK

	// Extensions beyond Table I.
	AppFinished   // RMAppImpl FINISHED — job runtime accounting
	ContReleased  // RMContainerImpl RELEASED — bug detection
	ContExited    // ContainerImpl EXITED_WITH_SUCCESS
	LaunchInvoked // ContainerLaunch script invocation — queueing delay end
	OppQueued     // opportunistic container queued at the NM
	TaskFirstLog  // first log line of a non-Spark (MapReduce) container
	AppSubmitted0 // submission summary line: application name/type/queue
	ContLost      // RMContainerImpl KILLED — container lost to node failure
	ContAssigned  // scheduler "Assigned container ... on host" — node binding
)

// kindNames indexes Kind for display.
var kindNames = map[Kind]string{
	AppSubmitted:      "SUBMITTED",
	AppAccepted:       "ACCEPTED",
	AttemptRegistered: "APT_REGISTERED",
	ContAllocated:     "ALLOCATED",
	ContAcquired:      "ACQUIRED",
	ContLocalizing:    "LOCALIZING",
	ContScheduled:     "SCHEDULED",
	ContRunning:       "RUNNING",
	DriverFirstLog:    "FIRST_LOG(driver)",
	DriverRegister:    "REGISTER",
	StartAllo:         "START_ALLO",
	EndAllo:           "END_ALLO",
	ExecutorFirstLog:  "FIRST_LOG(executor)",
	FirstTask:         "FIRST_TASK",
	AppFinished:       "FINISHED",
	ContReleased:      "RELEASED",
	ContExited:        "EXITED",
	LaunchInvoked:     "LAUNCH_INVOKED",
	OppQueued:         "OPP_QUEUED",
	TaskFirstLog:      "FIRST_LOG(task)",
	AppSubmitted0:     "APP_SUMMARY",
	ContLost:          "LOST",
	ContAssigned:      "ASSIGNED",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// TableINumber returns the paper's Table I row (1-14), or 0 for
// extension kinds.
func (k Kind) TableINumber() int {
	if k >= AppSubmitted && k <= FirstTask {
		return int(k)
	}
	return 0
}

// InstanceType labels what ran inside a container, inferred from the
// logging classes in its stderr file (Fig 9a's x-axis).
type InstanceType string

// Instance labels matching the paper's Fig 9a.
const (
	InstUnknown       InstanceType = ""
	InstSparkDriver   InstanceType = "spm"
	InstSparkExecutor InstanceType = "spe"
	InstMRMaster      InstanceType = "mrm"
	InstMRMap         InstanceType = "mrsm"
	InstMRReduce      InstanceType = "mrsr"
)

// Event is one mined log message, bound to its global IDs.
type Event struct {
	Kind      Kind
	TimeMS    int64 // epoch milliseconds (log4j precision)
	App       ids.AppID
	Container ids.ContainerID // zero for application-level events
	Source    string          // log file the event came from
	Class     string          // emitting log4j class
	Raw       string          // the matched message text
	// Instance is set on FIRST_LOG events: what ran in the container,
	// inferred from the logging classes in its stderr.
	Instance InstanceType
	// Name, AppType and Queue are set on APP_SUMMARY events, mined from
	// the RM's submission line.
	Name, AppType, Queue string
	// Node is the host a container-level event was observed on: the
	// scheduler's "Assigned container ... on host" binding for ASSIGNED
	// events, or the NodeManager whose log file the event came from.
	Node string
}

// String renders the event for debugging and graph dumps.
func (e Event) String() string {
	id := e.App.String()
	if !e.Container.IsZero() {
		id = e.Container.String()
	}
	return fmt.Sprintf("%d %s %s", e.TimeMS, e.Kind, id)
}
