package core_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/log4j"
	"repro/internal/metrics"
)

// TestVocabExamplesDriveParser closes the dynamic half of the vocabulary
// contract: the same vocab.json the logvocab analyzer checks statically
// (templates emitted, regexes declared) is replayed here through the live
// parser — every example line must mine the manifest's Kind and bump the
// manifest's per-regex hit counter. A regex that matches the example but
// routes to the wrong Kind, or a metric label that drifts from
// regexNames, fails here even though the static checks pass.
func TestVocabExamplesDriveParser(t *testing.T) {
	vocab, err := analysis.DefaultVocab()
	if err != nil {
		t.Fatalf("DefaultVocab: %v", err)
	}
	if len(vocab.Messages) < 14 {
		t.Fatalf("manifest has %d messages, want at least the 14 Table I rows", len(vocab.Messages))
	}
	for _, m := range vocab.Messages {
		t.Run(m.Name, func(t *testing.T) {
			var name string
			switch m.Source {
			case "rm":
				name = "hadoop/yarn-resourcemanager.log"
			case "nm":
				name = "hadoop/yarn-nodemanager-node1.log"
			case "container", "positional":
				name = "containers/application_1499000000000_0001/container_1499000000000_0001_01_000002/stderr"
			default:
				t.Fatalf("unknown source %q", m.Source)
			}
			raw := log4j.Line{
				TimeMS:  1499000000123,
				Level:   log4j.Info,
				Class:   m.Class,
				Message: m.Example,
			}.Format()

			p := core.NewParser()
			reg := metrics.NewRegistry()
			p.Instrument(reg)
			if err := p.ParseReader(name, strings.NewReader(raw+"\n")); err != nil {
				t.Fatalf("ParseReader: %v", err)
			}

			found := false
			var kinds []string
			for _, e := range p.Events() {
				kinds = append(kinds, e.Kind.String())
				if e.Kind.String() == m.Kind {
					found = true
				}
			}
			if !found {
				t.Fatalf("example %q mined kinds %v, want %s", m.Example, kinds, m.Kind)
			}
			if m.Metric != "" {
				if got := reg.Counter("core_parser_hits_total", "regex", m.Metric).Value(); got == 0 {
					t.Errorf("example %q did not increment core_parser_hits_total{regex=%q}", m.Example, m.Metric)
				}
			}
		})
	}
}
