package core

import (
	"fmt"
	"strings"
	"testing"
)

// plantObservations fills a breakdown with a crowd of fast applications
// in queue "etl" and one massive outlier in queue "adhoc": the tail of
// the fleet-wide total distribution belongs entirely to the outlier.
func plantObservations(cb *ClusterBreakdown) (outlier string) {
	outlier = "application_1499000000000_0099"
	for i := 0; i < 40; i++ {
		cb.Add(Observation{
			Component: "total", Queue: "etl", Node: fmt.Sprintf("node-%d", i%4),
			MS: int64(100 + i), App: fmt.Sprintf("application_1499000000000_%04d", i),
			AtMS: 1_499_000_000_000 + int64(i)*1000,
		})
	}
	cb.Add(Observation{
		Component: "total", Queue: "adhoc", Node: "node-1",
		MS: 90_000, App: outlier, AtMS: 1_499_000_100_000,
	})
	return outlier
}

// TestExplainRanksPlantedOutlier plants one known-worst application and
// checks the full drill-down chain: its cell ranks first, it leads the
// cell's heavy hitters, it is the top exemplar, and enrichment resolves
// it to a summary with a trace deep link.
func TestExplainRanksPlantedOutlier(t *testing.T) {
	cb := NewClusterBreakdown()
	outlier := plantObservations(cb)

	enriched := 0
	doc := cb.Explain("total", 0.99, 0, func(app string) (*AppSummary, bool) {
		enriched++
		if app != outlier {
			return nil, false
		}
		return &AppSummary{App: app, Seq: 99}, true
	})
	if doc.Component != "total" || doc.Count != 41 || doc.TailCount == 0 {
		t.Fatalf("doc header %+v", doc)
	}
	if len(doc.Cells) == 0 {
		t.Fatal("no cells")
	}
	top := doc.Cells[0]
	if top.Queue != "adhoc" || top.Node != "node-1" {
		t.Fatalf("top cell is %q/%q, want the outlier's adhoc/node-1", top.Queue, top.Node)
	}
	if top.TailShare <= 0 || top.TailShare > 1 {
		t.Errorf("tail share %v out of range", top.TailShare)
	}
	if len(top.TopApps) == 0 || top.TopApps[0].Key != outlier {
		t.Errorf("heavy hitters %+v do not lead with the outlier", top.TopApps)
	}
	if len(top.Exemplars) == 0 {
		t.Fatal("no exemplars in the top cell")
	}
	ex := top.Exemplars[0]
	if ex.App != outlier || ex.ValueMS != 90_000 {
		t.Errorf("top exemplar %+v, want the planted outlier at 90000ms", ex.Exemplar)
	}
	if ex.Summary == nil || !ex.Evicted || ex.TracePath != "/trace/99" {
		t.Errorf("enrichment did not resolve: %+v", ex)
	}
	if enriched == 0 {
		t.Error("enrich callback never invoked")
	}

	// The human rendering names the offender too.
	text := doc.Format()
	if !strings.Contains(text, outlier) || !strings.Contains(text, "/trace/99") {
		t.Errorf("Format() does not name the outlier:\n%s", text)
	}
	if _, err := doc.JSON(); err != nil {
		t.Fatalf("JSON: %v", err)
	}
}

// TestExplainBoundsAndClamp: out-of-range q falls back to 0.99, the cell
// list is truncated to maxCells while CellsTotal keeps the real count.
func TestExplainBoundsAndClamp(t *testing.T) {
	cb := NewClusterBreakdown()
	plantObservations(cb)
	doc := cb.Explain("total", -3, 2, nil)
	if doc.Q != 0.99 {
		t.Errorf("q = %v, want clamp to 0.99", doc.Q)
	}
	if len(doc.Cells) > 2 {
		t.Errorf("%d cells, want <= 2", len(doc.Cells))
	}
	if doc.CellsTotal <= 2 {
		t.Errorf("CellsTotal = %d, should count all cells pre-truncation", doc.CellsTotal)
	}
	// Unknown component: an empty, well-formed report, not a panic.
	empty := cb.Explain("nope", 0.99, 0, nil)
	if empty.Count != 0 || len(empty.Cells) != 0 {
		t.Errorf("unknown component yielded data: %+v", empty)
	}
}

// TestExemplarAppsAndAttrStats: the referenced-app set names the planted
// apps and the footprint counters are non-zero and bounded.
func TestExemplarAppsAndAttrStats(t *testing.T) {
	cb := NewClusterBreakdown()
	outlier := plantObservations(cb)
	apps := cb.ExemplarApps()
	if !apps[outlier] {
		t.Errorf("ExemplarApps missing the outlier: %v", apps)
	}
	ex, tk := cb.AttrStats()
	if ex == 0 || tk == 0 {
		t.Errorf("AttrStats = (%d, %d), want both non-zero", ex, tk)
	}
	maxEx := len(cb.Sketches) * cb.Attr.ResCap
	if ex > maxEx {
		t.Errorf("%d exemplars exceeds the %d bound", ex, maxEx)
	}
}

// TestAttributionJSONCanonical: identical observation multisets fed in
// different orders render identical attribution bytes — the property the
// differential oracle byte-compares across worker counts.
func TestAttributionJSONCanonical(t *testing.T) {
	a, b := NewClusterBreakdown(), NewClusterBreakdown()
	plantObservations(a)
	// Same multiset, reversed feed order.
	var obs []Observation
	for i := 39; i >= 0; i-- {
		obs = append(obs, Observation{
			Component: "total", Queue: "etl", Node: fmt.Sprintf("node-%d", i%4),
			MS: int64(100 + i), App: fmt.Sprintf("application_1499000000000_%04d", i),
			AtMS: 1_499_000_000_000 + int64(i)*1000,
		})
	}
	b.Add(Observation{
		Component: "total", Queue: "adhoc", Node: "node-1",
		MS: 90_000, App: "application_1499000000000_0099", AtMS: 1_499_000_100_000,
	})
	for _, o := range obs {
		b.Add(o)
	}
	aj, err := a.AttributionJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.AttributionJSON()
	if err != nil {
		t.Fatal(err)
	}
	if aj != bj {
		t.Error("attribution JSON depends on feed order")
	}
	if !strings.Contains(aj, "application_1499000000000_0099") {
		t.Error("attribution dump does not name the outlier")
	}
}

// TestBreakdownMergeCarriesAttribution: merging two breakdowns (the
// sharded-stream path) must merge reservoirs and heavy hitters, not just
// sketches.
func TestBreakdownMergeCarriesAttribution(t *testing.T) {
	a, b := NewClusterBreakdown(), NewClusterBreakdown()
	outlier := plantObservations(b)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.ExemplarApps()[outlier] {
		t.Error("merge dropped the outlier exemplar")
	}
	aj, _ := a.AttributionJSON()
	bj, _ := b.AttributionJSON()
	if aj != bj {
		t.Error("merge into empty breakdown is not identity for attribution state")
	}
}
