package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestExplainGolden pins the /explain wire format byte for byte against
// the checked-in golden log trees: for each case, the total-delay
// attribution report at p0.99 with every exemplar enriched from the
// mined report itself. Regenerate with `go test ./internal/core -run
// TestExplainGolden -update` and review the diff like any other code
// change.
func TestExplainGolden(t *testing.T) {
	root := filepath.Join("testdata", "golden")
	cases, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("reading golden cases: %v", err)
	}
	for _, c := range cases {
		t.Run(c.Name(), func(t *testing.T) {
			ck := New()
			if err := ck.AddDir(filepath.Join(root, c.Name(), "input")); err != nil {
				t.Fatalf("AddDir: %v", err)
			}
			rep := ck.Analyze()
			apps := make(map[string]*AppTrace, len(rep.Apps))
			for _, a := range rep.Apps {
				apps[a.ID.String()] = a
			}
			doc := rep.Breakdown().Explain("total", 0.99, DefaultExplainCells, func(app string) (*AppSummary, bool) {
				if a := apps[app]; a != nil {
					return SummarizeApp(a), false
				}
				return nil, false
			})
			got, err := doc.JSON()
			if err != nil {
				t.Fatalf("JSON: %v", err)
			}
			expPath := filepath.Join(root, c.Name(), "expected_explain.json")
			if *updateGolden {
				if err := os.WriteFile(expPath, []byte(got+"\n"), 0o644); err != nil {
					t.Fatalf("writing %s: %v", expPath, err)
				}
				return
			}
			want, err := os.ReadFile(expPath)
			if err != nil {
				t.Fatalf("reading %s (run with -update to create): %v", expPath, err)
			}
			if !bytes.Equal([]byte(got+"\n"), want) {
				t.Errorf("%s: explain output drifted from golden file; rerun with -update and review the diff", c.Name())
			}
			// The parallel miner must render the same explain report.
			for _, w := range []int{2, 5} {
				prep, err := MineDir(filepath.Join(root, c.Name(), "input"), w)
				if err != nil {
					t.Fatalf("MineDir(workers=%d): %v", w, err)
				}
				papps := make(map[string]*AppTrace, len(prep.Apps))
				for _, a := range prep.Apps {
					papps[a.ID.String()] = a
				}
				pdoc := prep.Breakdown().Explain("total", 0.99, DefaultExplainCells, func(app string) (*AppSummary, bool) {
					if a := papps[app]; a != nil {
						return SummarizeApp(a), false
					}
					return nil, false
				})
				pgot, err := pdoc.JSON()
				if err != nil {
					t.Fatalf("parallel explain JSON (workers=%d): %v", w, err)
				}
				if !bytes.Equal([]byte(pgot+"\n"), want) {
					t.Errorf("%s: MineDir(workers=%d) explain diverges from golden file", c.Name(), w)
				}
			}
		})
	}
}
