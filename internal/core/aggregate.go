package core

import (
	"fmt"
	"sort"

	"repro/internal/attr"
	"repro/internal/digest"
)

// This file is the cluster-level aggregation layer: it turns
// per-application decompositions into delay observations keyed by
// (component, queue, node, instance type) and folds them into mergeable
// quantile sketches (internal/digest), so percentile tables for a whole
// fleet — or for one queue or one node — come out of the same structure,
// and sketches from sharded runs combine exactly.

// Components lists every delay component the aggregation layer reports,
// in display order. App-level components come first, per-container ones
// after.
var Components = []string{
	"total", "am", "driver", "executor", "alloc",
	"acquisition", "localization", "launching", "queueing",
}

// Observation is one delay measurement bound to its cluster coordinates.
// Queue comes from the application's submission summary; Node and
// Instance are set on components with per-container (or AM-host)
// attribution and empty otherwise. App and AtMS carry drill-down
// identity — the application the delay belongs to and its event time
// (completion in cluster time) — consumed by the attribution layer;
// observations with an empty App aggregate without attribution.
type Observation struct {
	Component string
	Queue     string
	Node      string
	Instance  InstanceType
	MS        int64
	App       string
	AtMS      int64
}

// Observations extracts every observed delay component of one decomposed
// application. Missing components are skipped; a nil decomposition
// yields nil. Components measured on the AM host (am, driver, alloc)
// carry the AM container's node binding.
func Observations(a *AppTrace) []Observation {
	d := a.Decomp
	if d == nil {
		return nil
	}
	var amNode string
	var amInst InstanceType
	if am := a.AMContainer(); am != nil {
		amNode = am.Node
		amInst = am.Instance
	}
	// Event time for every component of this app: completion in cluster
	// time, matching the SLO engine's clock.
	appID := a.ID.String()
	atMS := a.Submitted
	if d.Total >= 0 {
		atMS += d.Total
	}
	out := make([]Observation, 0, 8+len(d.Acquisitions)+len(d.Localizations)+len(d.Launchings)+len(d.Queueings))
	app := func(component string, ms int64, node string, inst InstanceType) {
		if ms >= 0 {
			out = append(out, Observation{Component: component, Queue: a.Queue, Node: node, Instance: inst, MS: ms, App: appID, AtMS: atMS})
		}
	}
	app("total", d.Total, "", "")
	app("am", d.AM, amNode, amInst)
	app("driver", d.Driver, amNode, amInst)
	app("executor", d.Executor, "", "")
	app("alloc", d.Alloc, amNode, amInst)
	perCont := func(component string, cds []ContainerDelay) {
		for _, cd := range cds {
			out = append(out, Observation{Component: component, Queue: a.Queue, Node: cd.Node, Instance: cd.Instance, MS: cd.MS, App: appID, AtMS: atMS})
		}
	}
	perCont("acquisition", d.Acquisitions)
	perCont("localization", d.Localizations)
	perCont("launching", d.Launchings)
	perCont("queueing", d.Queueings)
	return out
}

// BreakdownKey addresses one sketch of a ClusterBreakdown.
type BreakdownKey struct {
	Component string
	Queue     string
	Node      string
	Instance  InstanceType
}

// BreakdownRow is one key's percentile summary, the /aggregate and HTML
// table row format.
type BreakdownRow struct {
	Component string  `json:"component"`
	Queue     string  `json:"queue,omitempty"`
	Node      string  `json:"node,omitempty"`
	Instance  string  `json:"instance,omitempty"`
	Count     uint64  `json:"count"`
	MeanMS    float64 `json:"mean_ms"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
}

// DefaultExemplarCap is the per-cell exemplar reservoir capacity used
// when attribution is enabled: enough to name the worst offenders of a
// cell without letting drill-down state dominate sketch memory.
const DefaultExemplarCap = 8

// BreakdownAttr is the drill-down state of a ClusterBreakdown: per-cell
// heavy hitters by contributed delay (worst apps per exact key) and
// per-component worst nodes, alongside the exemplar reservoirs living
// inside each cell sketch. Like the sketches it decorates, all of it is
// bounded and mergeable. Origin is a free-form shard label stamped on
// exemplars for the future multi-ingester fleet; it stays "" for
// in-process shards so reports remain byte-identical at any -workers.
type BreakdownAttr struct {
	ResCap int    // exemplar reservoir capacity per cell sketch
	TopCap int    // heavy-hitter capacity per top-k summary
	Origin string // shard label for exemplars ("" in-process)

	Apps  map[BreakdownKey]*attr.TopK // worst apps per (component, queue, node, instance)
	Nodes map[string]*attr.TopK       // worst nodes per component
}

func newBreakdownAttr() *BreakdownAttr {
	return &BreakdownAttr{
		ResCap: DefaultExemplarCap,
		TopCap: attr.DefaultTopK,
		Apps:   make(map[BreakdownKey]*attr.TopK),
		Nodes:  make(map[string]*attr.TopK),
	}
}

// ClusterBreakdown holds one quantile sketch per observed
// (component, queue, node, instance) combination. Rollups — one
// component across the fleet, one component per queue, per node — are
// computed by merging the exact-key sketches, which is lossless
// (digest.Merge is exact), so every view shares the same error bound.
// When Attr is non-nil (the default), cells additionally track exemplars
// and heavy hitters for drill-down; set Attr to nil before observing to
// measure or run the pre-attribution pipeline.
type ClusterBreakdown struct {
	Alpha    float64
	Sketches map[BreakdownKey]*digest.Sketch
	Attr     *BreakdownAttr
}

// NewClusterBreakdown returns an empty breakdown at the repo's default
// sketch accuracy, with attribution enabled.
func NewClusterBreakdown() *ClusterBreakdown {
	return &ClusterBreakdown{
		Alpha:    digest.DefaultAlpha,
		Sketches: make(map[BreakdownKey]*digest.Sketch),
		Attr:     newBreakdownAttr(),
	}
}

// Observe folds one application's observations in.
func (cb *ClusterBreakdown) Observe(a *AppTrace) {
	for _, o := range Observations(a) {
		cb.Add(o)
	}
}

// Add folds one observation in.
func (cb *ClusterBreakdown) Add(o Observation) {
	k := BreakdownKey{Component: o.Component, Queue: o.Queue, Node: o.Node, Instance: o.Instance}
	s := cb.Sketches[k]
	if s == nil {
		s = digest.New(cb.Alpha)
		if cb.Attr != nil {
			s.TrackExemplars(cb.Attr.ResCap)
		}
		cb.Sketches[k] = s
	}
	ms := float64(o.MS)
	if cb.Attr == nil || o.App == "" {
		s.Add(ms)
		return
	}
	s.AddExemplar(ms, o.App, o.AtMS, cb.Attr.Origin)
	tk := cb.Attr.Apps[k]
	if tk == nil {
		tk = attr.NewTopK(cb.Attr.TopCap)
		cb.Attr.Apps[k] = tk
	}
	tk.Offer(o.App, ms)
	if o.Node != "" {
		nk := cb.Attr.Nodes[o.Component]
		if nk == nil {
			nk = attr.NewTopK(cb.Attr.TopCap)
			cb.Attr.Nodes[o.Component] = nk
		}
		nk.Offer(o.Node, ms)
	}
}

// Merge folds another breakdown (e.g. one shard's) into cb. Attribution
// state merges alongside the sketches; if either side carries it, the
// result does.
func (cb *ClusterBreakdown) Merge(other *ClusterBreakdown) error {
	for k, s := range other.Sketches {
		dst := cb.Sketches[k]
		if dst == nil {
			dst = digest.New(cb.Alpha)
			if cb.Attr != nil {
				dst.TrackExemplars(cb.Attr.ResCap)
			}
			cb.Sketches[k] = dst
		}
		if err := dst.Merge(s); err != nil {
			return fmt.Errorf("core: breakdown key %+v: %w", k, err)
		}
	}
	if other.Attr != nil {
		if cb.Attr == nil {
			cb.Attr = newBreakdownAttr()
			cb.Attr.ResCap = other.Attr.ResCap
			cb.Attr.TopCap = other.Attr.TopCap
		}
		for k, tk := range other.Attr.Apps {
			dst := cb.Attr.Apps[k]
			if dst == nil {
				dst = attr.NewTopK(cb.Attr.TopCap)
				cb.Attr.Apps[k] = dst
			}
			dst.Merge(tk)
		}
		for c, tk := range other.Attr.Nodes {
			dst := cb.Attr.Nodes[c]
			if dst == nil {
				dst = attr.NewTopK(cb.Attr.TopCap)
				cb.Attr.Nodes[c] = dst
			}
			dst.Merge(tk)
		}
	}
	return nil
}

// Component returns the fleet-wide rollup sketch for one component
// (empty sketch when unobserved).
func (cb *ClusterBreakdown) Component(component string) *digest.Sketch {
	out := digest.New(cb.Alpha)
	for k, s := range cb.Sketches {
		if k.Component == component {
			out.Merge(s) // same alpha by construction
		}
	}
	return out
}

// GroupBy rolls one component up by an arbitrary key dimension (queue,
// node, instance). Keys mapping to "" are grouped under "" too, so
// callers can drop or label them.
func (cb *ClusterBreakdown) GroupBy(component string, dim func(BreakdownKey) string) map[string]*digest.Sketch {
	out := make(map[string]*digest.Sketch)
	for k, s := range cb.Sketches {
		if k.Component != component {
			continue
		}
		g := dim(k)
		dst := out[g]
		if dst == nil {
			dst = digest.New(cb.Alpha)
			out[g] = dst
		}
		dst.Merge(s)
	}
	return out
}

// ByQueue rolls one component up per queue.
func (cb *ClusterBreakdown) ByQueue(component string) map[string]*digest.Sketch {
	return cb.GroupBy(component, func(k BreakdownKey) string { return k.Queue })
}

// ByNode rolls one component up per node.
func (cb *ClusterBreakdown) ByNode(component string) map[string]*digest.Sketch {
	return cb.GroupBy(component, func(k BreakdownKey) string { return k.Node })
}

// Worst returns the group with the highest p99 among groups with at
// least minCount observations — the "worst node" / "worst queue"
// callout. Empty-name groups (unattributed observations) are skipped.
func Worst(groups map[string]*digest.Sketch, minCount uint64) (name string, p99 float64, ok bool) {
	for g, s := range groups {
		if g == "" || s.Count() < minCount {
			continue
		}
		q := s.Quantile(0.99)
		// Break p99 ties lexicographically so the callout is stable
		// across map iteration order.
		if !ok || q > p99 || (q == p99 && g < name) {
			name, p99, ok = g, q, true
		}
	}
	return name, p99, ok
}

func row(component, queue, node string, inst InstanceType, s *digest.Sketch) BreakdownRow {
	return BreakdownRow{
		Component: component, Queue: queue, Node: node, Instance: string(inst),
		Count:  s.Count(),
		MeanMS: s.Mean(),
		P50MS:  s.Quantile(0.50),
		P95MS:  s.Quantile(0.95),
		P99MS:  s.Quantile(0.99),
		MaxMS:  s.Max(),
	}
}

// Rows renders every exact key as a summary row, sorted by component
// display order, then queue, node, instance.
func (cb *ClusterBreakdown) Rows() []BreakdownRow {
	compOrder := make(map[string]int, len(Components))
	for i, c := range Components {
		compOrder[c] = i
	}
	out := make([]BreakdownRow, 0, len(cb.Sketches))
	for k, s := range cb.Sketches {
		out = append(out, row(k.Component, k.Queue, k.Node, k.Instance, s))
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if ca, cb2 := compOrder[a.Component], compOrder[b.Component]; ca != cb2 {
			return ca < cb2
		}
		if a.Queue != b.Queue {
			return a.Queue < b.Queue
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Instance < b.Instance
	})
	return out
}

// ComponentRows renders the fleet-wide rollup, one row per component in
// display order, skipping unobserved components.
func (cb *ClusterBreakdown) ComponentRows() []BreakdownRow {
	out := make([]BreakdownRow, 0, len(Components))
	for _, c := range Components {
		s := cb.Component(c)
		if s.Count() == 0 {
			continue
		}
		out = append(out, row(c, "", "", "", s))
	}
	return out
}

// Breakdown aggregates the report's applications into a fresh
// ClusterBreakdown.
func (r *Report) Breakdown() *ClusterBreakdown {
	cb := NewClusterBreakdown()
	for _, a := range r.Apps {
		cb.Observe(a)
	}
	return cb
}
