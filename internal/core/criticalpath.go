package core

import (
	"fmt"
	"strings"
)

// Segment is one labeled span of an application's scheduling critical
// path. Segments are contiguous and cover [Submitted, FirstTask].
type Segment struct {
	Label  string
	FromMS int64
	ToMS   int64
}

// Duration returns the segment length in ms.
func (s Segment) Duration() int64 { return s.ToMS - s.FromMS }

// CriticalPath walks the chain of events that actually gated the first
// task — the paper decomposes delays per component, this attributes every
// millisecond of the total delay to exactly one cause:
//
//	app-accept → am-allocate → am-acquire → am-localize → am-launch →
//	driver-init → executor-allocate → executor-acquire →
//	executor-localize → executor-launch → executor-wait
//
// where the executor chain follows the container whose first task opened
// the app (the earliest FIRST_TASK), and "executor-wait" is the idle
// period of Fig 10 (executor up, waiting for the driver's init and the
// registration gate). Returns nil when the trace is too incomplete.
func CriticalPath(a *AppTrace) []Segment {
	am := a.AMContainer()
	if am == nil || a.Submitted == 0 {
		return nil
	}
	// The gating executor: earliest FIRST_TASK.
	var gate *ContainerTrace
	for _, c := range a.WorkerContainers() {
		if c.FirstTask == 0 {
			continue
		}
		if gate == nil || c.FirstTask < gate.FirstTask {
			gate = c
		}
	}
	if gate == nil {
		return nil
	}

	var segs []Segment
	cursor := a.Submitted
	add := func(label string, to int64) {
		if to == 0 || to <= cursor {
			return // component missing or overlapped by an earlier one
		}
		segs = append(segs, Segment{Label: label, FromMS: cursor, ToMS: to})
		cursor = to
	}

	add("app-accept", a.Accepted)
	add("am-allocate", am.Allocated)
	add("am-acquire", am.Acquired)
	add("am-localize", am.Scheduled)
	add("am-launch", firstNonZero(am.Running, am.FirstLog))
	add("driver-init", firstNonZero(a.DriverRegister, a.Registered))
	add("executor-allocate", gate.Allocated)
	add("executor-acquire", gate.Acquired)
	add("executor-localize", gate.Scheduled)
	add("executor-launch", firstNonZero(gate.Running, gate.FirstLog))
	add("executor-wait", gate.FirstTask)
	return segs
}

// FormatCriticalPath renders the segments with durations and shares.
func FormatCriticalPath(segs []Segment) string {
	if len(segs) == 0 {
		return "critical path unavailable (incomplete trace)\n"
	}
	total := segs[len(segs)-1].ToMS - segs[0].FromMS
	var b strings.Builder
	fmt.Fprintf(&b, "critical path (total %dms):\n", total)
	for _, s := range segs {
		share := float64(s.Duration()) / float64(total) * 100
		bar := strings.Repeat("#", int(share/2))
		fmt.Fprintf(&b, "  %-18s %7dms %5.1f%% %s\n", s.Label, s.Duration(), share, bar)
	}
	return b.String()
}

// CriticalPathShares aggregates critical-path segment shares across all
// applications of a report: for each label, the mean fraction of the
// total delay it occupies.
func (r *Report) CriticalPathShares() map[string]float64 {
	sums := map[string]float64{}
	n := 0
	for _, a := range r.Apps {
		segs := CriticalPath(a)
		if len(segs) == 0 {
			continue
		}
		total := float64(segs[len(segs)-1].ToMS - segs[0].FromMS)
		if total <= 0 {
			continue
		}
		n++
		for _, s := range segs {
			sums[s.Label] += float64(s.Duration()) / total
		}
	}
	if n == 0 {
		return nil
	}
	for k := range sums {
		sums[k] /= float64(n)
	}
	return sums
}
