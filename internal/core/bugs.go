package core

import (
	"fmt"

	"repro/internal/ids"
)

// BugFinding is one suspicious container found by the detector.
type BugFinding struct {
	App       ids.AppID
	Container ids.ContainerID
	Reason    string
}

// String formats the finding.
func (b BugFinding) String() string {
	return fmt.Sprintf("%s: %s — %s", b.App, b.Container, b.Reason)
}

// DetectBugs reproduces the discovery of §V-A (reported upstream as
// SPARK-21562): containers whose RM-side states exist (allocated and
// acquired) but that never produced any NodeManager or executor activity
// were requested beyond the application's actual demand and never used.
//
// The detection rule is the paper's: "many containers only log states
// related to NodeManager and ResourceManager but miss states logged by
// executor" — here tightened to containers with no NM launch and no
// first-log at all, excluding the AM container.
func DetectBugs(apps []*AppTrace) []BugFinding {
	var out []BugFinding
	for _, a := range apps {
		for _, c := range a.Containers {
			if c.IsAM() {
				continue
			}
			if c.Acquired == 0 {
				continue // never handed to the application
			}
			if c.Localizing != 0 || c.Running != 0 || c.FirstLog != 0 {
				continue // the container did real work
			}
			reason := "allocated and acquired but never used (no NM or executor log states)"
			if c.Released != 0 {
				reason += "; released at application end"
			}
			out = append(out, BugFinding{App: a.ID, Container: c.ID, Reason: reason})
		}
	}
	return out
}
