package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/log4j"
)

// buildMultiAppCorpus clones the hand-built Spark corpus into n distinct
// applications (distinct submission sequence numbers), so sharding
// actually spreads work across workers.
func buildMultiAppCorpus(n int) corpus {
	out := corpus{}
	one := buildSparkCorpus()
	for i := 1; i <= n; i++ {
		tag := fmt.Sprintf("1499000000000_%04d", i)
		for f, lines := range one {
			nf := strings.ReplaceAll(f, "1499000000000_0001", tag)
			for _, l := range lines {
				out.add(nf, strings.ReplaceAll(l, "1499000000000_0001", tag))
			}
		}
	}
	return out
}

func corpusSink(t *testing.T, cs corpus) *log4j.Sink {
	t.Helper()
	s := log4j.NewSink(nil, log4j.Clock{})
	for _, f := range sortedKeys(cs) {
		for _, l := range cs[f] {
			s.Append(f, l)
		}
	}
	return s
}

func sortedKeys(cs corpus) []string {
	out := make([]string, 0, len(cs))
	for f := range cs {
		out = append(out, f)
	}
	// Deterministic file order; the miners must not depend on it, but
	// the test fixture should be stable.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestMineSinkMatchesChecker pins the parallel miner byte for byte
// against the serial checker over the same sink, at several worker
// counts, including warning lists and file/line statistics. The corpus
// includes a warning-producing file so the occurrence-replayed warning
// merge is exercised, not just the happy path.
func TestMineSinkMatchesChecker(t *testing.T) {
	cs := buildMultiAppCorpus(6)
	// A container log with no parseable lines warns; give it three
	// junk lines so per-file line counts must sum correctly too.
	junk := "userlogs/application_1499000000000_0002/container_1499000000000_0002_01_000009/stderr"
	cs.add(junk, "not a log4j line")
	cs.add(junk, "still not one")
	cs.add(junk, "")

	sink := corpusSink(t, cs)

	ck := New()
	if err := ck.AddSink(sink); err != nil {
		t.Fatalf("AddSink: %v", err)
	}
	ref := ck.Analyze()
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatalf("ref JSON: %v", err)
	}
	if len(ref.Warnings) == 0 {
		t.Fatal("fixture produced no warnings; warning merge untested")
	}

	for _, w := range []int{0, 1, 2, 3, 8} {
		rep, err := MineSink(sink, w)
		if err != nil {
			t.Fatalf("MineSink(workers=%d): %v", w, err)
		}
		got, err := rep.JSON()
		if err != nil {
			t.Fatalf("JSON(workers=%d): %v", w, err)
		}
		if got != refJSON {
			t.Errorf("workers=%d: JSON diverges from serial checker", w)
		}
		if len(rep.Warnings) != len(ref.Warnings) {
			t.Errorf("workers=%d: %d warnings, serial has %d", w, len(rep.Warnings), len(ref.Warnings))
		} else {
			for i := range rep.Warnings {
				if rep.Warnings[i] != ref.Warnings[i] {
					t.Errorf("workers=%d: warning %d = %q, serial %q", w, i, rep.Warnings[i], ref.Warnings[i])
				}
			}
		}
		if rep.FilesParsed != ref.FilesParsed || rep.LinesParsed != ref.LinesParsed {
			t.Errorf("workers=%d: stats files=%d lines=%d, serial files=%d lines=%d",
				w, rep.FilesParsed, rep.LinesParsed, ref.FilesParsed, ref.LinesParsed)
		}
		if rep.Format() != ref.Format() {
			t.Errorf("workers=%d: text report diverges from serial checker", w)
		}
	}
}

// TestMineDirMissing pins the error path: a missing directory fails the
// same way the serial walk does.
func TestMineDirMissing(t *testing.T) {
	if _, err := MineDir("testdata/does-not-exist", 4); err == nil {
		t.Fatal("MineDir on missing dir: want error, got nil")
	}
}
