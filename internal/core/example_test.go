package core_test

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/log4j"
)

// ExampleChecker mines a minimal log set and prints one decomposition —
// SDchecker's whole pipeline in a dozen lines.
func ExampleChecker() {
	l := func(off int64, class, msg string) string {
		return log4j.Line{TimeMS: 1499000000000 + off, Level: log4j.Info, Class: class, Message: msg}.Format()
	}
	app := "application_1499000000000_0001"
	am := "container_1499000000000_0001_01_000001"
	ex := "container_1499000000000_0001_01_000002"

	rmLog := strings.Join([]string{
		l(100, "x.RMAppImpl", app+" State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"),
		l(5000, "x.RMAppImpl", app+" State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"),
	}, "\n")
	driverLog := strings.Join([]string{
		l(1500, "org.apache.spark.deploy.yarn.ApplicationMaster", "Preparing Local resources"),
		l(5000, "org.apache.spark.deploy.yarn.ApplicationMaster", "Registered with ResourceManager as a"),
	}, "\n")
	execLog := strings.Join([]string{
		l(7000, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Started daemon"),
		l(12000, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Got assigned task 0"),
	}, "\n")

	c := core.New()
	c.AddReader("hadoop/yarn-resourcemanager.log", strings.NewReader(rmLog))
	c.AddReader("userlogs/"+app+"/"+am+"/stderr", strings.NewReader(driverLog))
	c.AddReader("userlogs/"+app+"/"+ex+"/stderr", strings.NewReader(execLog))

	d := c.Analyze().Apps[0].Decomp
	fmt.Printf("total=%dms am=%dms driver=%dms executor=%dms in=%dms out=%dms\n",
		d.Total, d.AM, d.Driver, d.Executor, d.In, d.Out)
	// Output: total=11900ms am=4900ms driver=3500ms executor=5000ms in=8500ms out=3400ms
}

// ExampleKind_TableINumber shows the Table I mapping.
func ExampleKind_TableINumber() {
	fmt.Println(core.AppSubmitted.TableINumber(), core.ContLocalizing.TableINumber(), core.FirstTask.TableINumber())
	// Output: 1 6 14
}
