package core_test

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/spark"
	"repro/internal/testkit"
)

// TestDiskRoundTrip runs a real simulated application, writes the log
// tree to disk (as cmd/simcluster does), re-parses it from the files (as
// cmd/sdchecker does), and checks the two analyses agree byte-for-byte on
// the decomposition — SDchecker's offline contract.
func TestDiskRoundTrip(t *testing.T) {
	b := testkit.New(testkit.Options{Workers: 4})
	b.Prewarm(map[string]float64{spark.BasePackagePath: spark.BasePackageMB})
	b.FS.Create("/tpch/t0", 256, nil)
	profile := spark.AppProfile{
		Name:               "rt",
		SessionSetupCPUSec: 0.5,
		InitBaseCPUSec:     0.2,
		PerTableCPUSec:     0.3,
		TableFooterMB:      4,
		Tables:             []spark.TableRef{{Path: "/tpch/t0", SizeMB: 256}},
		Stages:             []spark.StageProfile{{Name: "s", Tasks: 4, TaskCPUSec: 0.3}},
	}
	app := spark.Submit(b.RM, b.FS, spark.DefaultConfig(profile))
	b.Run(3600)
	if !app.Finished() {
		t.Fatal("app did not finish")
	}

	mem := core.New()
	if err := mem.AddSink(b.Sink); err != nil {
		t.Fatal(err)
	}
	inMem := mem.Analyze()

	dir := t.TempDir()
	if err := b.Sink.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	disk := core.New()
	if err := disk.AddDir(dir); err != nil {
		t.Fatal(err)
	}
	fromDisk := disk.Analyze()

	if len(inMem.Apps) != 1 || len(fromDisk.Apps) != 1 {
		t.Fatalf("apps: mem=%d disk=%d", len(inMem.Apps), len(fromDisk.Apps))
	}
	a, b2 := inMem.Apps[0].Decomp, fromDisk.Apps[0].Decomp
	if *aHeader(a) != *aHeader(b2) {
		t.Fatalf("decompositions differ:\nmem : %+v\ndisk: %+v", aHeader(a), aHeader(b2))
	}
	if len(a.Localizations) != len(b2.Localizations) {
		t.Fatal("per-container components differ across media")
	}
}

// aHeader projects the scalar fields for comparison.
func aHeader(d *core.Decomposition) *struct {
	Total, AM, In, Out, Driver, Executor, Alloc, Job int64
} {
	return &struct {
		Total, AM, In, Out, Driver, Executor, Alloc, Job int64
	}{d.Total, d.AM, d.In, d.Out, d.Driver, d.Executor, d.Alloc, d.JobRuntime}
}

// TestDeterministicReruns verifies the whole pipeline (simulation + log
// mining) is reproducible: identical seeds produce identical reports.
func TestDeterministicReruns(t *testing.T) {
	run := func() string {
		b := testkit.New(testkit.Options{Workers: 4, Seed: 77})
		b.Prewarm(map[string]float64{spark.BasePackagePath: spark.BasePackageMB})
		b.FS.Create("/tpch/t0", 256, nil)
		p := spark.AppProfile{
			Name:   "det",
			Tables: []spark.TableRef{{Path: "/tpch/t0", SizeMB: 256}},
			Stages: []spark.StageProfile{{Name: "s", Tasks: 4, TaskCPUSec: 0.3}},
		}
		spark.Submit(b.RM, b.FS, spark.DefaultConfig(p))
		b.Run(3600)
		c := core.New()
		if err := c.AddSink(b.Sink); err != nil {
			t.Fatal(err)
		}
		return c.Analyze().Format()
	}
	if run() != run() {
		t.Fatal("identical seeds produced different reports")
	}
}

// Property: for randomly shaped (but temporally consistent) timelines,
// the decomposition invariants hold: Total = Driver-chain consistent,
// In = Driver+Executor, Out = Total-In >= 0, Cl >= Cf.
func TestPropertyDecompositionInvariants(t *testing.T) {
	f := func(d1, d2, d3, d4, d5 uint16) bool {
		// Build strictly increasing offsets from the random gaps.
		sub := int64(100)
		reg := sub + int64(d1)%5000 + 1  // ATTEMPT_REGISTERED
		amFL := sub + int64(d2)%2000 + 1 // driver first log (before reg)
		if amFL >= reg {
			amFL = reg - 1
		}
		exFL := reg + int64(d3)%4000 + 1 // executor first log
		task := exFL + int64(d4)%6000 + 1
		fin := task + int64(d5)%9000 + 1

		cs := corpusLines(sub, amFL, reg, exFL, task, fin)
		c := core.New()
		for f, content := range cs {
			if err := c.AddReader(f, content); err != nil {
				return false
			}
		}
		rep := c.Analyze()
		if len(rep.Apps) != 1 {
			return false
		}
		d := rep.Apps[0].Decomp
		if d.Total != task-sub || d.AM != reg-sub || d.Driver != reg-amFL {
			return false
		}
		if d.Executor != task-exFL || d.In != d.Driver+d.Executor {
			return false
		}
		if d.Out < 0 || d.Out != max64(0, d.Total-d.In) {
			return false
		}
		return d.JobRuntime == fin-sub
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
