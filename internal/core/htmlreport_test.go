package core

import (
	"strings"
	"testing"
)

func TestHTMLReportRendersAllSections(t *testing.T) {
	cs := buildSparkCorpus()
	// Add an unused container so the bug section renders too.
	rm := "hadoop/yarn-resourcemanager.log"
	ghost := "container_1499000000000_0001_01_000004"
	cs.add(rm, line(5650, "x.RMContainerImpl", ghost+" Container Transitioned from NEW to ALLOCATED"))
	cs.add(rm, line(5800, "x.RMContainerImpl", ghost+" Container Transitioned from ALLOCATED to ACQUIRED"))
	rep := analyze(t, cs)

	html := rep.HTMLReport("test report", 3)
	for _, want := range []string{
		"<!DOCTYPE html>",
		"test report",
		"Scheduling delay components",
		"Delay CDFs",
		"<polyline",
		"Launching delay by instance type",
		"Per-application scheduling timelines",
		"APT_REGISTERED",
		"Bug findings (1)",
		"</html>",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
	// Self-contained: no external references.
	for _, banned := range []string{"http://", "https://", "<script src"} {
		if strings.Contains(html, banned) && banned != "http://" {
			t.Errorf("HTML report references external resource %q", banned)
		}
	}
	// The SVG namespace is the only allowed absolute URL.
	stripped := strings.ReplaceAll(html, "http://www.w3.org/2000/svg", "")
	if strings.Contains(stripped, "http") {
		t.Error("unexpected external URL in report")
	}
}

func TestHTMLReportEmpty(t *testing.T) {
	rep := ReportFrom(nil, nil)
	html := rep.HTMLReport("empty", 5)
	if !strings.Contains(html, "0 applications") {
		t.Fatal("empty report should still render")
	}
}

func TestHTMLEscapesTitle(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	html := rep.HTMLReport("<script>alert(1)</script>", 1)
	if strings.Contains(html, "<script>alert(1)</script>") {
		t.Fatal("title not escaped")
	}
}
