package core

import (
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// reAppInLine finds the first application or container ID in a raw log
// line. A container ID embeds its application's (clusterTS, seq) prefix,
// so one pattern routes both forms.
var reAppInLine = regexp.MustCompile(`(?:application|container)_(\d+)_(\d+)`)

// ShardedStream is the parallel variant of Stream: Feed routes each raw
// line to one of N worker goroutines, each owning a hash-shard of
// application IDs with its own serial Stream and its own completed-app
// ClusterBreakdown sketch. Parsing — the expensive part — runs on the
// workers; correlation state stays shard-local because every event of an
// application lives in exactly one shard (events a line produces for a
// foreign application, possible only on adversarial input, are forwarded
// to the owning shard).
//
// All methods are safe for concurrent use. Feed is asynchronous: call
// Quiesce to wait until everything fed so far has been absorbed. Reports
// gather applications in submission order and events per application in
// arrival order, so a sharded and a serial stream fed the same line
// sequence render byte-identical reports regardless of worker count.
type ShardedStream struct {
	shards []*streamShard

	// workMu/workCond track outstanding work items (queued lines plus
	// forwarded event batches) for Quiesce. A counter with a condition
	// variable instead of a WaitGroup: Add and Wait may race freely.
	workMu   sync.Mutex
	workCond *sync.Cond
	pending  int
	closed   bool

	// hookMu serializes the user completion hook across shards and
	// guards its installation.
	hookMu sync.Mutex
	hook   func(*AppTrace)

	wg sync.WaitGroup

	pmet     *parserMetrics
	met      *streamMetrics
	forwards *metrics.Counter

	// pl, when set, receives per-batch stage timings and flight events.
	// Timing is batched: one clock read pair per grabbed batch, never per
	// line, so the unobserved hot path is untouched.
	pl *obs.Pipeline
}

// streamShard is one worker: an input queue (raw lines routed here plus
// event batches forwarded from other shards) and the shard-local state.
type streamShard struct {
	ss *ShardedStream
	i  int

	qMu    sync.Mutex
	qCond  *sync.Cond
	lines  []shardLine
	routed [][]Event
	quit   bool

	// stMu guards the shard's Stream and sketch: the worker holds it
	// while absorbing, readers hold it while snapshotting.
	stMu sync.Mutex
	st   *Stream
	bd   *ClusterBreakdown

	// processed counts work units (lines + routed batches) this worker
	// has fully absorbed — the watchdog's per-shard progress signal.
	processed atomic.Int64

	// scratch is this worker's reusable fast-matcher parser (only the
	// worker goroutine touches it); see Stream.scratch.
	scratch *Parser

	linesTotal *metrics.Counter
	depth      *metrics.Gauge   // core_shard_queue_depth{shard=i}
	batches    *metrics.Counter // core_shard_batches_total{shard=i}
}

type shardLine struct{ source, raw string }

// NewShardedStream starts workers goroutines (0 = GOMAXPROCS), each
// owning one shard. Call Close to stop them.
func NewShardedStream(workers int) *ShardedStream {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ss := &ShardedStream{shards: make([]*streamShard, workers)}
	ss.workCond = sync.NewCond(&ss.workMu)
	for i := range ss.shards {
		sh := &streamShard{ss: ss, i: i, st: NewStream(), bd: NewClusterBreakdown()}
		sh.qCond = sync.NewCond(&sh.qMu)
		sh.st.OnComplete(sh.onComplete)
		ss.shards[i] = sh
	}
	for _, sh := range ss.shards {
		ss.wg.Add(1)
		go sh.run()
	}
	return ss
}

// Workers returns the shard/worker count.
func (ss *ShardedStream) Workers() int { return len(ss.shards) }

// OnComplete registers the hook called the first time an application's
// decomposition becomes fully observable, exactly once per application
// (guaranteed by the owning shard's Stream). Calls are serialized across
// shards; the hook runs on a worker goroutine and must not call back
// into the sharded stream. Install it before feeding.
func (ss *ShardedStream) OnComplete(fn func(*AppTrace)) {
	ss.hookMu.Lock()
	ss.hook = fn
	ss.hookMu.Unlock()
}

// Instrument registers the same stream/parser metric families the serial
// Stream exposes, plus per-worker line counters
// (core_shard_lines_total{shard=i}) and the cross-shard event forwarding
// counter. Call once, before feeding; a nil registry is a no-op.
func (ss *ShardedStream) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	ss.pmet = newParserMetrics(reg)
	ss.met = newStreamMetrics(reg)
	ss.forwards = reg.Counter("core_shard_forwarded_events_total")
	for _, sh := range ss.shards {
		sh.linesTotal = reg.Counter("core_shard_lines_total", "shard", strconv.Itoa(sh.i))
		sh.depth = reg.Gauge("core_shard_queue_depth", "shard", strconv.Itoa(sh.i))
		sh.batches = reg.Counter("core_shard_batches_total", "shard", strconv.Itoa(sh.i))
	}
}

// ObservePipeline attaches the self-observability pipeline: workers
// record per-batch stage timings (parse, forward, decompose), Quiesce
// boundaries land in the flight recorder, and each shard's Stream
// reports hook fires and evictions. Attach before feeding; nil keeps
// the stream unobserved.
func (ss *ShardedStream) ObservePipeline(p *obs.Pipeline) {
	ss.pl = p
	for _, sh := range ss.shards {
		sh.stMu.Lock()
		sh.st.ObservePipeline(p)
		sh.stMu.Unlock()
	}
}

// ShardStats samples every worker's queue depth and progress counter
// for the pipeline watchdog.
func (ss *ShardedStream) ShardStats() []ShardStat {
	out := make([]ShardStat, len(ss.shards))
	for i, sh := range ss.shards {
		sh.qMu.Lock()
		q := len(sh.lines) + len(sh.routed)
		sh.qMu.Unlock()
		out[i] = ShardStat{Queued: q, Processed: sh.processed.Load()}
	}
	return out
}

// shardOf hashes an application ID onto a shard.
func (ss *ShardedStream) shardOf(id ids.AppID) int {
	h := uint64(id.ClusterTS)*0x9e3779b97f4a7c15 + uint64(id.Seq)*0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return int(h % uint64(len(ss.shards)))
}

func fnvShard(s string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return int(h % uint32(n))
}

// route picks the shard that will own a line's events: the container ID
// in the source path (container stderr), else the first application or
// container ID in the line body (daemon logs), else a hash of the
// source. On well-formed logs this is exact — every event a line
// produces belongs to the routed application, because each extraction
// regex keys off the line's first ID — so cross-shard forwarding only
// triggers on adversarial input.
func (ss *ShardedStream) route(source, raw string) *streamShard {
	if referenceMatcher() {
		if cidStr := reContainerInPath.FindString(source); cidStr != "" {
			if cid, err := ids.ParseContainerID(cidStr); err == nil {
				return ss.shards[ss.shardOf(cid.App)]
			}
		}
		if m := reAppInLine.FindStringSubmatch(raw); m != nil {
			cts, err1 := strconv.ParseInt(m[1], 10, 64)
			seq, err2 := strconv.Atoi(m[2])
			if err1 == nil && err2 == nil {
				return ss.shards[ss.shardOf(ids.AppID{ClusterTS: cts, Seq: seq})]
			}
		}
		return ss.shards[fnvShard(source, len(ss.shards))]
	}
	// The fast helpers are allocation-free, which matters here: route
	// runs on the feeding goroutine for every line.
	if cid, found, err := fastFindContainerID(source); found && err == nil {
		return ss.shards[ss.shardOf(cid.App)]
	}
	if app, ok := fastAppInLine(raw); ok {
		return ss.shards[ss.shardOf(app)]
	}
	return ss.shards[fnvShard(source, len(ss.shards))]
}

// Feed routes one raw log line to its owning shard's queue. It returns
// true when the line was accepted (false after Close). Unlike
// Stream.Feed the parse happens asynchronously, so acceptance does not
// imply the line produced events — compare EventCount after Quiesce for
// that.
func (ss *ShardedStream) Feed(source, rawLine string) bool {
	ss.workMu.Lock()
	if ss.closed {
		ss.workMu.Unlock()
		return false
	}
	ss.pending++
	ss.workMu.Unlock()
	if ss.met != nil {
		ss.met.lines.Inc()
	}
	sh := ss.route(source, rawLine)
	sh.qMu.Lock()
	sh.lines = append(sh.lines, shardLine{source, rawLine})
	sh.depth.Set(int64(len(sh.lines) + len(sh.routed)))
	sh.qCond.Signal()
	sh.qMu.Unlock()
	return true
}

// forward hands events parsed on shard `from` to the shard owning their
// application. The pending count is raised before the originating line's
// unit is released, so Quiesce cannot observe zero while a forwarded
// batch is still in flight.
func (ss *ShardedStream) forward(from, j int, evs []Event) {
	ss.workMu.Lock()
	ss.pending++
	ss.workMu.Unlock()
	if ss.forwards != nil {
		ss.forwards.Add(int64(len(evs)))
	}
	ss.pl.RecordForward(from, j, len(evs))
	sh := ss.shards[j]
	sh.qMu.Lock()
	sh.routed = append(sh.routed, evs)
	sh.depth.Set(int64(len(sh.lines) + len(sh.routed)))
	sh.qCond.Signal()
	sh.qMu.Unlock()
}

func (ss *ShardedStream) done() {
	ss.workMu.Lock()
	ss.pending--
	if ss.pending == 0 {
		ss.workCond.Broadcast()
	}
	ss.workMu.Unlock()
}

// Quiesce blocks until every line accepted so far — and every event
// batch forwarded between shards — has been parsed and absorbed, then
// refreshes the app gauges.
func (ss *ShardedStream) Quiesce() {
	ss.workMu.Lock()
	entering := ss.pending
	ss.workMu.Unlock()
	ss.pl.RecordQuiesce(true, entering)
	ss.workMu.Lock()
	for ss.pending > 0 {
		ss.workCond.Wait()
	}
	ss.workMu.Unlock()
	ss.pl.RecordQuiesce(false, 0)
	ss.updateAppGauges()
}

// Close drains pending work and stops the workers. The read side
// (Report, Apps, Breakdown, ...) stays usable afterwards; Feed returns
// false. Stop concurrent feeders first: lines racing Close may be
// rejected.
func (ss *ShardedStream) Close() {
	ss.workMu.Lock()
	ss.closed = true
	for ss.pending > 0 {
		ss.workCond.Wait()
	}
	ss.workMu.Unlock()
	for _, sh := range ss.shards {
		sh.qMu.Lock()
		sh.quit = true
		sh.qCond.Broadcast()
		sh.qMu.Unlock()
	}
	ss.wg.Wait()
}

func (sh *streamShard) run() {
	defer sh.ss.wg.Done()
	for {
		sh.qMu.Lock()
		for len(sh.lines) == 0 && len(sh.routed) == 0 && !sh.quit {
			sh.qCond.Wait()
		}
		if len(sh.lines) == 0 && len(sh.routed) == 0 {
			sh.qMu.Unlock()
			return // quit and drained
		}
		lines, routed := sh.lines, sh.routed
		sh.lines, sh.routed = nil, nil
		sh.depth.Set(0)
		sh.qMu.Unlock()

		if pl := sh.ss.pl; pl != nil {
			sh.runObserved(pl, lines, routed)
		} else {
			for _, evs := range routed {
				sh.absorb(evs)
				sh.ss.done()
			}
			for _, ln := range lines {
				sh.process(ln)
				sh.ss.done()
			}
		}
		sh.processed.Add(int64(len(lines) + len(routed)))
		sh.batches.Inc()
	}
}

// runObserved is the instrumented batch path: the same work as the
// loops in run, but bracketed by one clock read per phase — forwarded
// batches, then the whole line batch's parse, then its absorb — so
// stage timing costs O(1) per batch, not O(lines).
func (sh *streamShard) runObserved(pl *obs.Pipeline, lines []shardLine, routed [][]Event) {
	if len(routed) > 0 {
		t := pl.Begin()
		n := 0
		for _, evs := range routed {
			n += len(evs)
			sh.absorb(evs)
			sh.ss.done()
		}
		pl.StageBatch(obs.StageForward, sh.i, t, n)
	}
	if len(lines) == 0 {
		return
	}
	t := pl.Begin()
	batch := make([][]Event, len(lines))
	for i, ln := range lines {
		if sh.linesTotal != nil {
			sh.linesTotal.Inc()
		}
		batch[i] = sh.parseLineCopy(ln.source, ln.raw)
	}
	mid := pl.Begin()
	for i := range lines {
		sh.routeAndAbsorb(batch[i])
		sh.ss.done()
	}
	// Parsing and absorbing (correlate + decompose) share the middle
	// clock read; splitting the phases costs no extra reads.
	pl.StageSpan(obs.StageParse, sh.i, t, mid, len(lines))
	pl.StageBatch(obs.StageDecompose, sh.i, mid, len(lines))
}

// onComplete is installed on every shard's Stream: it folds the
// completed app into the shard's sketch (the worker holds stMu here) and
// relays to the user hook, serialized across shards by hookMu.
func (sh *streamShard) onComplete(a *AppTrace) {
	sh.bd.Observe(a)
	sh.ss.hookMu.Lock()
	if h := sh.ss.hook; h != nil {
		h(a)
	}
	sh.ss.hookMu.Unlock()
}

// process parses one line (statelessly, off any lock) and absorbs its
// events into the shard's Stream, forwarding any events whose
// application hashes elsewhere.
func (sh *streamShard) process(ln shardLine) {
	if sh.linesTotal != nil {
		sh.linesTotal.Inc()
	}
	sh.routeAndAbsorb(sh.parseLineScratch(ln.source, ln.raw))
}

// parseLineScratch parses one line into the worker's reusable scratch
// parser and returns its scratch-backed events, valid until the next
// call (routeAndAbsorb never retains the slice: forwards copy, and
// absorbRouted filters into a fresh slice). The regexp reference path
// keeps the historical throwaway-parser-per-line behavior.
func (sh *streamShard) parseLineScratch(source, raw string) []Event {
	if referenceMatcher() {
		return parseLineEvents(sh.ss.pmet, source, raw)
	}
	p := sh.scratch
	if p == nil {
		p = NewParser()
		sh.scratch = p
	}
	p.met = sh.ss.pmet
	p.events = p.events[:0]
	if cid, found, err := fastFindContainerID(source); found {
		if err != nil {
			return nil
		}
		if !p.feedContainerSegments(source, cid, raw) {
			return nil
		}
		return p.events
	}
	if !p.feedDaemonSegments(source, raw) {
		return nil
	}
	return p.events
}

// parseLineCopy is parseLineScratch for batch parsing (runObserved
// parses a whole batch before absorbing any of it): the returned events
// survive subsequent scratch reuse.
func (sh *streamShard) parseLineCopy(source, raw string) []Event {
	evs := sh.parseLineScratch(source, raw)
	if len(evs) == 0 {
		return nil
	}
	return append([]Event(nil), evs...)
}

// routeAndAbsorb splits one line's events into shard-local and foreign,
// forwards the foreign batches, absorbs the rest, and maintains the
// matched/dropped line counters.
func (sh *streamShard) routeAndAbsorb(evs []Event) {
	matched := false
	if len(evs) > 0 {
		own := evs[:0]
		var foreign map[int][]Event
		for _, e := range evs {
			j := sh.ss.shardOf(e.App)
			if j == sh.i {
				own = append(own, e)
				continue
			}
			if foreign == nil {
				foreign = make(map[int][]Event)
			}
			foreign[j] = append(foreign[j], e)
		}
		for j, f := range foreign {
			sh.ss.forward(sh.i, j, f)
			matched = true
		}
		if sh.absorb(own) > 0 {
			matched = true
		}
	}
	if m := sh.ss.met; m != nil {
		if matched {
			m.matched.Inc()
		} else {
			m.dropped.Inc()
		}
	}
}

func (sh *streamShard) absorb(evs []Event) int {
	if len(evs) == 0 {
		return 0
	}
	sh.stMu.Lock()
	n := sh.st.absorbRouted(evs)
	sh.stMu.Unlock()
	if n > 0 && sh.ss.met != nil {
		sh.ss.met.events.Add(int64(n))
	}
	return n
}

// parseLineEvents parses one raw line exactly like Stream.feed, but
// statelessly: dedup that depends on stream state (FIRST_LOG,
// FIRST_TASK) is applied later by the owning shard's absorbRouted.
func parseLineEvents(pm *parserMetrics, source, rawLine string) []Event {
	p := NewParser()
	p.met = pm
	if cidStr := reContainerInPath.FindString(source); cidStr != "" {
		cid, err := ids.ParseContainerID(cidStr)
		if err != nil {
			return nil
		}
		if err := p.parseContainerLog(source, cid, singleLine(rawLine)); err != nil {
			return nil
		}
		return p.Events()
	}
	if err := p.ParseReader(source, singleLine(rawLine)); err != nil {
		return nil
	}
	return p.Events()
}

// EventCount returns the number of scheduling events absorbed so far
// across all shards.
func (ss *ShardedStream) EventCount() int {
	n := 0
	for _, sh := range ss.shards {
		sh.stMu.Lock()
		n += sh.st.EventCount()
		sh.stMu.Unlock()
	}
	return n
}

// LastEventMS returns the latest event timestamp absorbed by any shard.
func (ss *ShardedStream) LastEventMS() int64 {
	var last int64
	for _, sh := range ss.shards {
		sh.stMu.Lock()
		if ms := sh.st.LastEventMS(); ms > last {
			last = ms
		}
		sh.stMu.Unlock()
	}
	return last
}

// App returns the live trace for one application, or nil.
func (ss *ShardedStream) App(id ids.AppID) *AppTrace {
	sh := ss.shards[ss.shardOf(id)]
	sh.stMu.Lock()
	defer sh.stMu.Unlock()
	return sh.st.App(id)
}

// Complete reports whether an application's decomposition is fully
// observable (see Stream.Complete).
func (ss *ShardedStream) Complete(id ids.AppID) bool {
	sh := ss.shards[ss.shardOf(id)]
	sh.stMu.Lock()
	defer sh.stMu.Unlock()
	return sh.st.Complete(id)
}

// Apps returns the live traces across all shards ordered by submission
// sequence.
func (ss *ShardedStream) Apps() []*AppTrace {
	var out []*AppTrace
	for _, sh := range ss.shards {
		sh.stMu.Lock()
		out = append(out, sh.st.Apps()...)
		sh.stMu.Unlock()
	}
	sortTracesBySeq(out)
	return out
}

// Report snapshots the current state into a full report, gathering
// events per application in submission order and stable-sorting by
// timestamp — the same deterministic gathering Stream.Report uses, so a
// sharded and a serial stream fed the same lines render byte-identical
// reports. Quiesce first if every fed line must be included.
func (ss *ShardedStream) Report() *Report {
	apps := ss.Apps()
	var all []Event
	for _, a := range apps {
		sh := ss.shards[ss.shardOf(a.ID)]
		sh.stMu.Lock()
		all = append(all, sh.st.eventsByApp[a.ID]...)
		sh.stMu.Unlock()
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].TimeMS < all[j].TimeMS })
	return ReportFrom(apps, all)
}

// Breakdown losslessly merges the per-shard completed-application
// sketches into one cumulative cluster breakdown. Each application was
// observed exactly once, by its owning shard, so the merge equals what a
// single stream's completion hook would have sketched.
func (ss *ShardedStream) Breakdown() *ClusterBreakdown {
	out := NewClusterBreakdown()
	for _, sh := range ss.shards {
		sh.stMu.Lock()
		err := out.Merge(sh.bd)
		sh.stMu.Unlock()
		if err != nil {
			// All shards share the default alpha; a mismatch is a bug.
			panic("core: shard breakdown merge: " + err.Error())
		}
	}
	return out
}

// Forget drops all state for one application from its owning shard.
func (ss *ShardedStream) Forget(id ids.AppID) {
	sh := ss.shards[ss.shardOf(id)]
	sh.stMu.Lock()
	had := sh.st.App(id) != nil || len(sh.st.eventsByApp[id]) > 0
	sh.st.Forget(id)
	sh.stMu.Unlock()
	if had && ss.met != nil {
		ss.met.evicted.Inc()
	}
}

// EvictCompleted forgets completed applications, oldest submission
// first, until at most keep remain across all shards.
func (ss *ShardedStream) EvictCompleted(keep int) int {
	if keep < 0 {
		keep = 0
	}
	var done []ids.AppID
	for _, sh := range ss.shards {
		sh.stMu.Lock()
		for id, c := range sh.st.completed {
			if c {
				done = append(done, id)
			}
		}
		sh.stMu.Unlock()
	}
	if len(done) <= keep {
		return 0
	}
	sortAppIDsBySeq(done)
	victims := done[:len(done)-keep]
	for _, id := range victims {
		ss.Forget(id)
	}
	ss.updateAppGauges()
	return len(victims)
}

// EvictOldest forgets the oldest applications — complete or not — until
// at most max are tracked across all shards (the hard memory bound; see
// Stream.EvictOldest).
func (ss *ShardedStream) EvictOldest(max int) int {
	if max < 0 {
		return 0
	}
	var all []ids.AppID
	for _, sh := range ss.shards {
		sh.stMu.Lock()
		for _, a := range sh.st.Apps() {
			all = append(all, a.ID)
		}
		sh.stMu.Unlock()
	}
	if len(all) <= max {
		return 0
	}
	sortAppIDsBySeq(all)
	victims := all[:len(all)-max]
	for _, id := range victims {
		ss.Forget(id)
	}
	ss.updateAppGauges()
	return len(victims)
}

// updateAppGauges refreshes the in-flight / completed gauges from a
// cross-shard count. Unlike the serial stream this does not run per
// absorb (it would serialize the shards); Quiesce and the eviction
// entry points refresh it, which is where long-running feeds sit.
func (ss *ShardedStream) updateAppGauges() {
	if ss.met == nil {
		return
	}
	apps, done := 0, 0
	for _, sh := range ss.shards {
		sh.stMu.Lock()
		apps += len(sh.st.apps)
		for _, c := range sh.st.completed {
			if c {
				done++
			}
		}
		sh.stMu.Unlock()
	}
	ss.met.completed.Set(int64(done))
	ss.met.inflight.Set(int64(apps - done))
}
