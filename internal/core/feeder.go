package core

import "repro/internal/log4j"

// SinkFeeder incrementally pumps an in-memory log4j.Sink into a Stream.
// It remembers how many lines of each file it has already fed, so callers
// alternate freely between advancing the simulation and draining — the
// in-memory analogue of `sdchecker -follow` tailing files on disk.
type SinkFeeder struct {
	st      *Stream
	sink    *log4j.Sink
	offsets map[string]int
}

// NewSinkFeeder binds a stream to a sink, starting from the beginning of
// every file.
func NewSinkFeeder(st *Stream, sink *log4j.Sink) *SinkFeeder {
	return &SinkFeeder{st: st, sink: sink, offsets: make(map[string]int)}
}

// Drain feeds every line produced since the previous Drain and returns
// how many of them yielded at least one scheduling event.
func (f *SinkFeeder) Drain() int {
	fed := 0
	for _, file := range f.sink.Files() {
		lines := f.sink.Lines(file)
		for _, l := range lines[f.offsets[file]:] {
			if f.st.Feed(file, l) {
				fed++
			}
		}
		f.offsets[file] = len(lines)
	}
	return fed
}
