package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/log4j"
)

// corpus builds a synthetic but fully consistent log tree for one Spark
// application with two executors, with every delay chosen by hand so the
// decomposition can be asserted exactly. All times are offsets (ms) from
// base.
const base = int64(1499000000000)

func line(off int64, class, msg string) string {
	return log4j.Line{TimeMS: base + off, Level: log4j.Info, Class: class, Message: msg}.Format()
}

type corpus map[string][]string

func (c corpus) add(file, l string) { c[file] = append(c[file], l) }

func buildSparkCorpus() corpus {
	cs := corpus{}
	app := "application_1499000000000_0001"
	am := "container_1499000000000_0001_01_000001"
	e1 := "container_1499000000000_0001_01_000002"
	e2 := "container_1499000000000_0001_01_000003"

	rm := "hadoop/yarn-resourcemanager.log"
	cs.add(rm, line(90, "x.RMAppImpl", app+" State change from NEW to NEW_SAVING on event = START"))
	cs.add(rm, line(100, "x.RMAppImpl", app+" State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"))
	cs.add(rm, line(110, "x.RMAppImpl", app+" State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"))
	cs.add(rm, line(200, "x.RMContainerImpl", am+" Container Transitioned from NEW to ALLOCATED"))
	cs.add(rm, line(260, "x.RMContainerImpl", am+" Container Transitioned from ALLOCATED to ACQUIRED"))
	cs.add(rm, line(5100, "x.RMAppImpl", app+" State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"))
	// Executor containers allocated at 5400/5600, acquired at 5800.
	cs.add(rm, line(5400, "x.RMContainerImpl", e1+" Container Transitioned from NEW to ALLOCATED"))
	cs.add(rm, line(5600, "x.RMContainerImpl", e2+" Container Transitioned from NEW to ALLOCATED"))
	cs.add(rm, line(5800, "x.RMContainerImpl", e1+" Container Transitioned from ALLOCATED to ACQUIRED"))
	cs.add(rm, line(5800, "x.RMContainerImpl", e2+" Container Transitioned from ALLOCATED to ACQUIRED"))
	cs.add(rm, line(30000, "x.RMAppImpl", app+" State change from RUNNING to FINAL_SAVING on event = ATTEMPT_UNREGISTERED"))
	cs.add(rm, line(30100, "x.RMAppImpl", app+" State change from FINAL_SAVING to FINISHED on event = APP_UPDATE_SAVED"))

	nm := "hadoop/yarn-nodemanager-node01.log"
	cs.add(nm, line(300, "y.ContainerImpl", "Container "+am+" transitioned from NEW to LOCALIZING"))
	cs.add(nm, line(800, "y.ContainerImpl", "Container "+am+" transitioned from LOCALIZING to SCHEDULED"))
	cs.add(nm, line(805, "y.ContainerLaunch", "Invoking launch script for container "+am))
	cs.add(nm, line(1500, "y.ContainerImpl", "Container "+am+" transitioned from SCHEDULED to RUNNING"))
	for i, e := range []string{e1, e2} {
		off := int64(i) * 100
		cs.add(nm, line(5900+off, "y.ContainerImpl", "Container "+e+" transitioned from NEW to LOCALIZING"))
		cs.add(nm, line(6400+off, "y.ContainerImpl", "Container "+e+" transitioned from LOCALIZING to SCHEDULED"))
		cs.add(nm, line(6420+off, "y.ContainerLaunch", "Invoking launch script for container "+e))
		cs.add(nm, line(7100+off, "y.ContainerImpl", "Container "+e+" transitioned from SCHEDULED to RUNNING"))
	}

	amLog := "userlogs/" + app + "/" + am + "/stderr"
	cs.add(amLog, line(1500, "org.apache.spark.deploy.yarn.ApplicationMaster", "Preparing Local resources"))
	cs.add(amLog, line(5100, "org.apache.spark.deploy.yarn.ApplicationMaster", "Registered with ResourceManager as appattempt_1499000000000_0001_000001"))
	cs.add(amLog, line(5100, "org.apache.spark.deploy.yarn.YarnAllocator", "SDCHECKER START_ALLO Requesting 2 executor containers"))
	cs.add(amLog, line(5900, "org.apache.spark.deploy.yarn.YarnAllocator", "SDCHECKER END_ALLO All 2 requested containers allocated"))

	for i, e := range []string{e1, e2} {
		off := int64(i) * 100
		f := "userlogs/" + app + "/" + e + "/stderr"
		cs.add(f, line(7100+off, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Started daemon with process name: 2000@node01"))
		cs.add(f, line(7200+off, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Successfully registered with driver"))
		cs.add(f, line(12000+off, "org.apache.spark.executor.CoarseGrainedExecutorBackend", fmt.Sprintf("Got assigned task %d", i)))
		cs.add(f, line(12500+off, "org.apache.spark.executor.CoarseGrainedExecutorBackend", fmt.Sprintf("Got assigned task %d", i+2)))
	}
	return cs
}

func analyze(t *testing.T, cs corpus) *Report {
	t.Helper()
	c := New()
	for f, lines := range cs {
		if err := c.AddReader(f, strings.NewReader(strings.Join(lines, "\n"))); err != nil {
			t.Fatal(err)
		}
	}
	return c.Analyze()
}

func TestDecompositionExactValues(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	if len(rep.Apps) != 1 {
		t.Fatalf("apps=%d", len(rep.Apps))
	}
	d := rep.Apps[0].Decomp
	// Submitted at +100, first task at +12000.
	checks := map[string][2]int64{
		"total":    {d.Total, 11900},
		"am":       {d.AM, 5000},          // 100 -> 5100
		"driver":   {d.Driver, 3600},      // 1500 -> 5100
		"executor": {d.Executor, 4900},    // 7100 -> 12000
		"in":       {d.In, 8500},          // driver + executor
		"out":      {d.Out, 3400},         // total - in
		"alloc":    {d.Alloc, 800},        // 5100 -> 5900
		"job":      {d.JobRuntime, 30000}, // 100 -> 30100
		"Cf":       {d.Cf, 7000},          // first executor RUNNING 7100
		"Cl":       {d.Cl, 7100},          // last executor RUNNING 7200
		"Cl-Cf":    {d.ClMinusCf, 100},
	}
	for name, pair := range checks {
		if pair[0] != pair[1] {
			t.Errorf("%s = %d, want %d", name, pair[0], pair[1])
		}
	}
}

func TestPerContainerComponents(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	d := rep.Apps[0].Decomp
	if len(d.Acquisitions) != 3 || len(d.Localizations) != 3 || len(d.Launchings) != 3 {
		t.Fatalf("per-container counts acq=%d local=%d launch=%d, want 3 each",
			len(d.Acquisitions), len(d.Localizations), len(d.Launchings))
	}
	// AM: acquired 260-200=60; localization 800-300=500; launching 1500-800=700.
	if d.Acquisitions[0].MS != 60 || d.Localizations[0].MS != 500 || d.Launchings[0].MS != 700 {
		t.Fatalf("AM components: %+v %+v %+v", d.Acquisitions[0], d.Localizations[0], d.Launchings[0])
	}
	// Executor e1: acquisition 5800-5400=400.
	if d.Acquisitions[1].MS != 400 {
		t.Fatalf("e1 acquisition %d, want 400", d.Acquisitions[1].MS)
	}
	// Queueing: launch invoked 5ms (AM) / 20ms (executors) after SCHEDULED.
	if len(d.Queueings) != 3 || d.Queueings[0].MS != 5 || d.Queueings[1].MS != 20 {
		t.Fatalf("queueings: %+v", d.Queueings)
	}
}

func TestInstanceClassification(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	a := rep.Apps[0]
	if am := a.AMContainer(); am == nil || am.Instance != InstSparkDriver {
		t.Fatalf("AM instance: %+v", a.AMContainer())
	}
	execs := a.Executors()
	if len(execs) != 2 {
		t.Fatalf("executors=%d", len(execs))
	}
	for _, e := range execs {
		if e.Instance != InstSparkExecutor {
			t.Fatalf("executor classified as %q", e.Instance)
		}
	}
}

func TestFirstTaskUsesFirstOccurrence(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	e1 := rep.Apps[0].Containers[1]
	if e1.FirstTask != base+12000 {
		t.Fatalf("first task at %d, want %d (not the second 'Got assigned task')", e1.FirstTask, base+12000)
	}
}

func TestLaunchingByInstanceAggregation(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	spm := rep.LaunchingByInstance[InstSparkDriver]
	spe := rep.LaunchingByInstance[InstSparkExecutor]
	if spm == nil || spe == nil {
		t.Fatal("per-instance launching samples missing")
	}
	if spm.Len() != 1 || spe.Len() != 2 {
		t.Fatalf("spm=%d spe=%d samples", spm.Len(), spe.Len())
	}
	if spm.Median() != 700 {
		t.Fatalf("spm launching %v, want 700", spm.Median())
	}
}

func TestBugDetectorFindsUnusedContainer(t *testing.T) {
	cs := buildSparkCorpus()
	app := "application_1499000000000_0001"
	ghost := "container_1499000000000_0001_01_000004"
	rm := "hadoop/yarn-resourcemanager.log"
	cs.add(rm, line(5650, "x.RMContainerImpl", ghost+" Container Transitioned from NEW to ALLOCATED"))
	cs.add(rm, line(5800, "x.RMContainerImpl", ghost+" Container Transitioned from ALLOCATED to ACQUIRED"))
	cs.add(rm, line(29000, "x.RMContainerImpl", ghost+" Container Transitioned from ACQUIRED to RELEASED"))
	rep := analyze(t, cs)
	if len(rep.Bugs) != 1 {
		t.Fatalf("bugs=%d, want 1", len(rep.Bugs))
	}
	if rep.Bugs[0].Container.String() != ghost || rep.Bugs[0].App.String() != app {
		t.Fatalf("wrong finding: %+v", rep.Bugs[0])
	}
	// The used containers must not be flagged.
	for _, b := range rep.Bugs {
		if b.Container.Num <= 3 {
			t.Fatalf("live container flagged: %+v", b)
		}
	}
}

func TestGraphStructure(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	g := BuildGraph(rep.Apps[0])
	if len(g.Nodes) == 0 || len(g.Edges) == 0 {
		t.Fatal("empty graph")
	}
	// Every edge must be non-negative in time.
	for _, e := range g.Edges {
		if e.DelayMS < 0 {
			t.Fatalf("negative edge: %+v", e)
		}
	}
	// Table I message numbers present: 1..14 except none missing.
	seen := map[int]bool{}
	for _, n := range g.Nodes {
		seen[n.Msg] = true
	}
	for msg := 1; msg <= 14; msg++ {
		if !seen[msg] {
			t.Errorf("graph missing Table I message %d", msg)
		}
	}
	dot := g.DOT()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "shape=box") || !strings.Contains(dot, "shape=ellipse") {
		t.Fatal("DOT output missing Fig 3 shapes")
	}
	ascii := g.ASCII()
	if !strings.Contains(ascii, "SUBMITTED") || !strings.Contains(ascii, "FIRST_TASK") {
		t.Fatalf("ASCII graph incomplete:\n%s", ascii)
	}
}

func TestReportFormatMentionsComponents(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	out := rep.Format()
	for _, want := range []string{"total", "driver", "executor", "localization", "launching"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFilterDropsApps(t *testing.T) {
	cs := buildSparkCorpus()
	// Second app with only app-level events.
	rm := "hadoop/yarn-resourcemanager.log"
	app2 := "application_1499000000000_0002"
	cs.add(rm, line(400, "x.RMAppImpl", app2+" State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"))
	rep := analyze(t, cs)
	if len(rep.Apps) != 2 {
		t.Fatalf("apps=%d", len(rep.Apps))
	}
	f := rep.Filter(func(a *AppTrace) bool { return a.ID.Seq == 1 })
	if len(f.Apps) != 1 || f.Apps[0].ID.Seq != 1 {
		t.Fatalf("filter kept %d apps", len(f.Apps))
	}
}

func TestAllocationThroughput(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	// 3 allocations between +200 and +5600: 3 / 5.4s.
	got := rep.AllocationThroughput()
	if got < 0.5 || got > 0.6 {
		t.Fatalf("throughput %.3f, want ~0.556", got)
	}
}

func TestUnparseableLinesSkipped(t *testing.T) {
	cs := buildSparkCorpus()
	cs.add("hadoop/yarn-resourcemanager.log", "java.lang.NullPointerException")
	cs.add("hadoop/yarn-resourcemanager.log", "\tat Foo.bar(Foo.java:1)")
	rep := analyze(t, cs)
	if len(rep.Apps) != 1 {
		t.Fatal("stack trace corrupted parsing")
	}
}

func TestEmptyContainerLogWarns(t *testing.T) {
	c := New()
	err := c.AddReader("userlogs/application_1_0001/container_1_0001_01_000002/stderr", strings.NewReader("not a log line\n"))
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Analyze()
	if len(rep.Warnings) == 0 {
		t.Fatal("expected a warning for a container log with no parseable lines")
	}
}

func TestMissingComponentsAreMarked(t *testing.T) {
	cs := corpus{}
	app := "application_1499000000000_0003"
	cs.add("hadoop/yarn-resourcemanager.log",
		line(100, "x.RMAppImpl", app+" State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"))
	rep := analyze(t, cs)
	d := rep.Apps[0].Decomp
	if d.Total != Missing || d.AM != Missing || d.In != Missing {
		t.Fatalf("incomplete app not marked missing: %+v", d)
	}
}

func TestKindTableNumbers(t *testing.T) {
	if AppSubmitted.TableINumber() != 1 || FirstTask.TableINumber() != 14 {
		t.Fatal("Table I numbering broken")
	}
	if LaunchInvoked.TableINumber() != 0 {
		t.Fatal("extension kinds must have no Table I number")
	}
	if !strings.Contains(AppSubmitted.String(), "SUBMITTED") {
		t.Fatal("kind name broken")
	}
}

func TestAMRetryClassifiedByLogContent(t *testing.T) {
	// The AM's first container (Num 1) fails at launch; the RM retries in
	// container 4, which hosts the actual driver. The decomposition must
	// follow the driver's logs, not YARN's number-1 convention.
	cs := corpus{}
	app := "application_1499000000000_0001"
	failed := "container_1499000000000_0001_01_000001"
	retry := "container_1499000000000_0001_01_000002"
	exec := "container_1499000000000_0001_01_000003"

	rm := "hadoop/yarn-resourcemanager.log"
	cs.add(rm, line(100, "x.RMAppImpl", app+" State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"))
	cs.add(rm, line(200, "x.RMContainerImpl", failed+" Container Transitioned from NEW to ALLOCATED"))
	cs.add(rm, line(260, "x.RMContainerImpl", failed+" Container Transitioned from ALLOCATED to ACQUIRED"))
	cs.add(rm, line(900, "x.RMContainerImpl", retry+" Container Transitioned from NEW to ALLOCATED"))
	cs.add(rm, line(950, "x.RMContainerImpl", retry+" Container Transitioned from ALLOCATED to ACQUIRED"))
	cs.add(rm, line(5000, "x.RMAppImpl", app+" State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"))

	nm := "hadoop/yarn-nodemanager-node01.log"
	cs.add(nm, line(300, "y.ContainerImpl", "Container "+failed+" transitioned from NEW to LOCALIZING"))
	cs.add(nm, line(700, "y.ContainerImpl", "Container "+failed+" transitioned from LOCALIZING to SCHEDULED"))
	cs.add(nm, line(800, "y.ContainerImpl", "Container "+failed+" transitioned from SCHEDULED to EXITED_WITH_FAILURE"))
	cs.add(nm, line(1000, "y.ContainerImpl", "Container "+retry+" transitioned from NEW to LOCALIZING"))
	cs.add(nm, line(1400, "y.ContainerImpl", "Container "+retry+" transitioned from LOCALIZING to SCHEDULED"))
	cs.add(nm, line(2000, "y.ContainerImpl", "Container "+retry+" transitioned from SCHEDULED to RUNNING"))

	retryLog := "userlogs/" + app + "/" + retry + "/stderr"
	cs.add(retryLog, line(2000, "org.apache.spark.deploy.yarn.ApplicationMaster", "Preparing Local resources"))
	cs.add(retryLog, line(5000, "org.apache.spark.deploy.yarn.ApplicationMaster", "Registered with ResourceManager as x"))

	execLog := "userlogs/" + app + "/" + exec + "/stderr"
	cs.add(execLog, line(7000, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Started daemon"))
	cs.add(execLog, line(9000, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Got assigned task 0"))

	rep := analyze(t, cs)
	a := rep.Apps[0]
	am := a.AMContainer()
	if am == nil || am.ID.Num != 2 {
		t.Fatalf("AM container misidentified: %+v", am)
	}
	d := a.Decomp
	if d.Driver != 3000 {
		t.Fatalf("driver delay %d, want 3000 (from the retry container's logs)", d.Driver)
	}
	// The retry must not appear among the workers (would corrupt Cf/Cl).
	for _, w := range a.WorkerContainers() {
		if w.ID.Num == 2 {
			t.Fatal("AM retry counted as a worker container")
		}
	}
	if d.Cf != 6900 { // executor FIRST... RUNNING is absent; Cf uses RUNNING only
		// executor has no RUNNING line in this corpus; Cf should be Missing
		if d.Cf != Missing {
			t.Fatalf("Cf = %d, want Missing (no worker RUNNING logged)", d.Cf)
		}
	}
}
