package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/log4j"
	"repro/internal/metrics"
)

// This file is the dynamic half of the fast-path equivalence proof: the
// byte-level matcher and the retained regex reference implementation are
// run side by side over the same input and must agree on everything
// observable — events, warnings, error text, and every per-regex hit
// counter. (The static half lives in sdlint's logvocab analyzer, which
// proves each fast rule language-equal to its regex.)

var diffSources = []string{
	"hadoop/yarn-resourcemanager.log",
	"hadoop/yarn-nodemanager-node01.log",
	"userlogs/application_1499000000000_0001/container_1499000000000_0001_01_000001/stderr",
}

// parseUnder runs one offline parse with the chosen matcher and returns
// every observable output.
func parseUnder(ref bool, name string, data []byte) (evs []Event, warns []string, errStr string, hits map[string]int64) {
	restore := UseReferenceMatcher(ref)
	defer restore()
	p := NewParser()
	reg := metrics.NewRegistry()
	p.Instrument(reg)
	if err := p.ParseReader(name, bytes.NewReader(data)); err != nil {
		errStr = err.Error()
	}
	hits = make(map[string]int64, len(regexNames)+1)
	for _, n := range regexNames {
		hits[n] = reg.Counter("core_parser_hits_total", "regex", n).Value()
	}
	hits["__lines"] = reg.Counter("core_parser_lines_total").Value()
	return p.Events(), p.Warnings(), errStr, hits
}

// diffParsers asserts the two matchers are observationally identical on
// one input file.
func diffParsers(t *testing.T, name string, data []byte) {
	t.Helper()
	fe, fw, ferr, fh := parseUnder(false, name, data)
	re, rw, rerr, rh := parseUnder(true, name, data)
	if ferr != rerr {
		t.Fatalf("%s: error diverges: fast=%q regex=%q", name, ferr, rerr)
	}
	if len(fe) != len(re) {
		t.Fatalf("%s: fast mined %d events, regex %d", name, len(fe), len(re))
	}
	for i := range fe {
		if !reflect.DeepEqual(fe[i], re[i]) {
			t.Fatalf("%s: event %d diverges:\nfast:  %+v\nregex: %+v", name, i, fe[i], re[i])
		}
	}
	if !reflect.DeepEqual(fw, rw) {
		t.Fatalf("%s: warnings diverge:\nfast:  %q\nregex: %q", name, fw, rw)
	}
	if !reflect.DeepEqual(fh, rh) {
		t.Fatalf("%s: hit counters diverge:\nfast:  %v\nregex: %v", name, fh, rh)
	}
}

// diffStreams asserts the two matchers agree through the incremental
// path (which has its own segment splitter replacing bufio.Scanner).
func diffStreams(t *testing.T, sources []string, lines []string) {
	t.Helper()
	run := func(ref bool) (int, int64, string) {
		restore := UseReferenceMatcher(ref)
		defer restore()
		st := NewStream()
		for i, ln := range lines {
			st.Feed(sources[i%len(sources)], ln)
		}
		return st.EventCount(), st.LastEventMS(), st.Report().Format()
	}
	fn, fms, frep := run(false)
	rn, rms, rrep := run(true)
	if fn != rn || fms != rms {
		t.Fatalf("stream diverges: fast=(%d events, last %d) regex=(%d, %d)", fn, fms, rn, rms)
	}
	if frep != rrep {
		t.Fatalf("stream report diverges:\nfast:\n%s\nregex:\n%s", frep, rrep)
	}
}

// FuzzFastVsRegex is the differential fuzz target of the equivalence
// proof: arbitrary bytes — and a deterministically degraded (torn,
// truncated, skewed, garbage-injected) variant of them — go through both
// parser implementations and both stream paths, which must agree byte
// for byte on every output.
func FuzzFastVsRegex(f *testing.F) {
	seedCorpusWorkers(f)
	f.Fuzz(func(t *testing.T, data []byte, n uint8) {
		name := diffSources[int(n)%len(diffSources)]
		diffParsers(t, name, data)

		// The same bytes after lossy collection (cmd/gencorpus's model),
		// seeded from the fuzzed byte for deterministic variety.
		sink := log4j.NewSink(nil, log4j.Clock{})
		sink.Degrade(log4j.DegradeConfig{
			TruncateProb: 0.2,
			TearProb:     0.2,
			GarbageProb:  0.1,
			SkewMaxMs:    5000,
			Seed:         uint64(n),
		})
		for _, ln := range strings.Split(string(data), "\n") {
			sink.Append(name, ln)
		}
		mangled := strings.Join(sink.Lines(name), "\n")
		diffParsers(t, name, []byte(mangled))

		// Line-interleaved and whole-blob stream feeds: the latter makes
		// the fast path's segment iterator split embedded newlines.
		diffStreams(t, diffSources, strings.Split(string(data), "\n"))
		diffStreams(t, diffSources[int(n)%len(diffSources):], []string{string(data), mangled})
	})
}

// TestFastVsRegexCorpus replays every checked-in corpus file — real
// simulator output, including the model-checker traces and degraded
// variants — through the differential harness as named subtests, so a
// divergence points at the offending file without needing -fuzz.
func TestFastVsRegexCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		t.Run(e.Name(), func(t *testing.T) {
			for _, src := range diffSources {
				diffParsers(t, src, data)
			}
			diffStreams(t, diffSources, strings.Split(string(data), "\n"))
		})
	}
}
