package core

// Trace export: renders a mined application trace as Chrome trace-event
// JSON (Perfetto-compatible), one track per container and one span per
// delay component of §III-C. The span vocabulary and the renderer are
// shared with internal/sim's ground-truth Recorder, so a simulator run
// exported from the true event timeline and the same run exported from
// SDchecker's mined graph are diffable track-by-track — the
// repro-fidelity check the paper could not do on a real cluster.
//
// This is core's only dependency on internal/sim, and it uses nothing of
// the simulation engine: only the span/renderer types, with timestamps
// carried as epoch milliseconds exactly as mined from the logs.

import (
	"fmt"

	"repro/internal/sim"
)

// appSpan emits one app-level or container-level span when both endpoints
// were observed (non-zero) and ordered.
func appendSpan(out []sim.TraceSpan, process, thread, name string, start, end int64) []sim.TraceSpan {
	if start == 0 || end == 0 || end < start {
		return out
	}
	return append(out, sim.TraceSpan{
		Process: process, Thread: thread, Name: name,
		Start: sim.Time(start), End: sim.Time(end),
	})
}

// AppSpans converts one mined application trace into trace spans, one per
// observed delay component. Timestamps are epoch milliseconds (render
// with epochMS = 0). Components whose defining messages were not mined
// produce no span, mirroring Decompose's Missing semantics.
func AppSpans(a *AppTrace) []sim.TraceSpan {
	proc := a.ID.String()
	var out []sim.TraceSpan

	// Application-level: AM delay on the app track.
	out = appendSpan(out, proc, sim.AppTrack, sim.SpanAM, a.Submitted, a.Registered)

	// Driver-side spans live on the AM container's track.
	if am := a.AMContainer(); am != nil {
		amTrack := am.ID.String()
		out = appendSpan(out, proc, amTrack, sim.SpanDriver, am.FirstLog, a.DriverRegister)
		out = appendSpan(out, proc, amTrack, sim.SpanAllocation, a.StartAllo, a.EndAllo)
	}

	for _, c := range a.Containers {
		track := c.ID.String()
		out = appendSpan(out, proc, track, sim.SpanAcquisition, c.Allocated, c.Acquired)
		out = appendSpan(out, proc, track, sim.SpanLocalization, c.Localizing, c.Scheduled)
		out = appendSpan(out, proc, track, sim.SpanLaunching, c.Scheduled, c.Running)
		if !c.IsAM() {
			out = appendSpan(out, proc, track, sim.SpanExecutor, c.FirstLog, c.FirstTask)
		}
	}
	return out
}

// ChromeTrace renders one application's mined scheduling graph as a
// Chrome trace-event JSON document.
func ChromeTrace(a *AppTrace) ([]byte, error) {
	return sim.ChromeTrace(AppSpans(a), 0)
}

// ChromeTraceAll renders every application of a report into one trace
// document (one process per application).
func (r *Report) ChromeTrace() ([]byte, error) {
	var spans []sim.TraceSpan
	for _, a := range r.Apps {
		spans = append(spans, AppSpans(a)...)
	}
	return sim.ChromeTrace(spans, 0)
}

// ChromeTraceApp renders the trace for the application with the given
// submission sequence number, or errors when it is unknown.
func (r *Report) ChromeTraceApp(seq int) ([]byte, error) {
	for _, a := range r.Apps {
		if a.ID.Seq == seq {
			return ChromeTrace(a)
		}
	}
	return nil, fmt.Errorf("core: no application with sequence %d", seq)
}
