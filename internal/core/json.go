package core

import (
	"encoding/json"
	"fmt"
)

// jsonApp is the machine-readable projection of one application trace —
// the export format for downstream tooling (plotting, dashboards,
// cross-run diffing). All timestamps are epoch milliseconds; -1 marks a
// missing component.
type jsonApp struct {
	App       string          `json:"app"`
	Name      string          `json:"name,omitempty"`
	Type      string          `json:"type,omitempty"`
	Queue     string          `json:"queue,omitempty"`
	Submitted int64           `json:"submitted_ms"`
	Decomp    jsonDecomp      `json:"decomposition"`
	Path      []jsonSegment   `json:"critical_path,omitempty"`
	Container []jsonContainer `json:"containers"`
}

type jsonDecomp struct {
	Total    int64 `json:"total_ms"`
	AM       int64 `json:"am_ms"`
	In       int64 `json:"in_ms"`
	Out      int64 `json:"out_ms"`
	Driver   int64 `json:"driver_ms"`
	Executor int64 `json:"executor_ms"`
	Alloc    int64 `json:"alloc_ms"`
	Cf       int64 `json:"cf_ms"`
	Cl       int64 `json:"cl_ms"`
	Job      int64 `json:"job_ms"`
	// Complete is false when headline observations are missing or
	// anomalies were found; the decomposition is then partial.
	Complete  bool     `json:"complete"`
	Anomalies []string `json:"anomalies,omitempty"`
}

type jsonSegment struct {
	Label string `json:"label"`
	MS    int64  `json:"ms"`
}

type jsonContainer struct {
	ID            string `json:"id"`
	Instance      string `json:"instance,omitempty"`
	Node          string `json:"node,omitempty"`
	Allocated     int64  `json:"allocated_ms,omitempty"`
	Acquired      int64  `json:"acquired_ms,omitempty"`
	Localizing    int64  `json:"localizing_ms,omitempty"`
	Scheduled     int64  `json:"scheduled_ms,omitempty"`
	Running       int64  `json:"running_ms,omitempty"`
	FirstLog      int64  `json:"first_log_ms,omitempty"`
	FirstTask     int64  `json:"first_task_ms,omitempty"`
	Exited        int64  `json:"exited_ms,omitempty"`
	Released      int64  `json:"released_ms,omitempty"`
	LaunchInvoked int64  `json:"launch_invoked_ms,omitempty"`
	Lost          int64  `json:"lost_ms,omitempty"`
}

// JSON renders the report's per-application traces, decompositions, and
// critical paths as indented JSON.
func (r *Report) JSON() (string, error) {
	out := make([]jsonApp, 0, len(r.Apps))
	for _, a := range r.Apps {
		ja := jsonApp{
			App:       a.ID.String(),
			Name:      a.Name,
			Type:      a.AppType,
			Queue:     a.Queue,
			Submitted: a.Submitted,
		}
		if d := a.Decomp; d != nil {
			ja.Decomp = jsonDecomp{
				Total: d.Total, AM: d.AM, In: d.In, Out: d.Out,
				Driver: d.Driver, Executor: d.Executor, Alloc: d.Alloc,
				Cf: d.Cf, Cl: d.Cl, Job: d.JobRuntime,
				Complete: d.Complete, Anomalies: d.Anomalies,
			}
		}
		for _, s := range CriticalPath(a) {
			ja.Path = append(ja.Path, jsonSegment{Label: s.Label, MS: s.Duration()})
		}
		for _, c := range a.Containers {
			ja.Container = append(ja.Container, jsonContainer{
				ID:            c.ID.String(),
				Instance:      string(c.Instance),
				Node:          c.Node,
				Allocated:     c.Allocated,
				Acquired:      c.Acquired,
				Localizing:    c.Localizing,
				Scheduled:     c.Scheduled,
				Running:       c.Running,
				FirstLog:      c.FirstLog,
				FirstTask:     c.FirstTask,
				Exited:        c.Exited,
				Released:      c.Released,
				LaunchInvoked: c.LaunchInvoked,
				Lost:          c.Lost,
			})
		}
		out = append(out, ja)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", fmt.Errorf("core: %w", err)
	}
	return string(b), nil
}
