package core

import "fmt"

// Decomposition is the per-application delay breakdown of §III-C. All
// values are milliseconds; Missing (-1) marks components whose defining
// log messages were absent (e.g. an application that never ran a task).
const Missing int64 = -1

// ContainerDelay is one per-container delay observation. Node carries the
// container's host binding so cluster-level aggregation can slice
// per-node ("" when the logs held no binding).
type ContainerDelay struct {
	Container string
	Instance  InstanceType
	Node      string
	MS        int64
}

// Decomposition holds every delay SDchecker derives for one application.
type Decomposition struct {
	// Total scheduling delay: submission (msg 1) to first user task
	// assignment (msg 14).
	Total int64
	// AM delay: submission to AppMaster registration (msgs 1 -> 3).
	AM int64
	// Cf / Cl delay: submission to first / last worker-container launch
	// (msgs 1 -> 8); ClMinusCf is Fig 6b's spread metric.
	Cf, Cl, ClMinusCf int64
	// In-application delay (Spark-caused) = Driver + Executor delay;
	// Out-application delay (YARN-caused) = Total - In.
	In, Out int64
	// Driver delay: driver first log to RM registration (msgs 9 -> 10).
	Driver int64
	// Executor delay: first executor first-log to first task assignment
	// (msgs 13 -> 14).
	Executor int64
	// Alloc delay: the manually-added START_ALLO -> END_ALLO interval
	// (msgs 11 -> 12) — the aggregated resource allocation delay.
	Alloc int64
	// JobRuntime: submission to application FINISHED (extension), the
	// denominator of the paper's normalized plots.
	JobRuntime int64

	// Per-container components (msgs 4->5, 6->7, 7->8), plus the
	// queueing delay extension (SCHEDULED -> launch-script invocation).
	Acquisitions  []ContainerDelay
	Localizations []ContainerDelay
	Launchings    []ContainerDelay
	Queueings     []ContainerDelay

	// Complete reports whether the decomposition rests on a full set of
	// headline observations (Total, AM, Driver, Executor all present) and
	// no anomalies. Incomplete decompositions are still returned — a
	// partial breakdown of a degraded log beats no breakdown — but they
	// must not be silently aggregated as if sound.
	Complete bool
	// Anomalies lists, in human-readable form, why the trace is partial or
	// suspect: missing headline messages, containers lost to node failure,
	// or out-of-order timestamps hinting at clock skew between log files.
	Anomalies []string
}

func diff(later, earlier int64) int64 {
	if later == 0 || earlier == 0 {
		return Missing
	}
	d := later - earlier
	if d < 0 {
		return Missing
	}
	return d
}

// Decompose computes the delay breakdown for one application trace and
// stores it on the trace.
func Decompose(a *AppTrace) *Decomposition {
	d := &Decomposition{
		Total: Missing, AM: Missing, Cf: Missing, Cl: Missing, ClMinusCf: Missing,
		In: Missing, Out: Missing, Driver: Missing, Executor: Missing,
		Alloc: Missing, JobRuntime: Missing,
	}
	a.Decomp = d

	d.AM = diff(a.Registered, a.Submitted)
	d.Alloc = diff(a.EndAllo, a.StartAllo)
	d.JobRuntime = diff(a.Finished, a.Submitted)

	// Driver delay (msgs 9 -> 10).
	if am := a.AMContainer(); am != nil {
		d.Driver = diff(a.DriverRegister, am.FirstLog)
	}

	// First task / first executor log over all worker containers.
	var firstTask, firstExecLog int64
	var firstRun, lastRun int64
	for _, c := range a.WorkerContainers() {
		if c.FirstTask > 0 && (firstTask == 0 || c.FirstTask < firstTask) {
			firstTask = c.FirstTask
		}
		if c.FirstLog > 0 && (firstExecLog == 0 || c.FirstLog < firstExecLog) {
			firstExecLog = c.FirstLog
		}
		if c.Running > 0 {
			if firstRun == 0 || c.Running < firstRun {
				firstRun = c.Running
			}
			if c.Running > lastRun {
				lastRun = c.Running
			}
		}
	}
	d.Total = diff(firstTask, a.Submitted)
	d.Executor = diff(firstTask, firstExecLog)
	d.Cf = diff(firstRun, a.Submitted)
	d.Cl = diff(lastRun, a.Submitted)
	if d.Cf >= 0 && d.Cl >= 0 {
		d.ClMinusCf = d.Cl - d.Cf
	}

	// In/out split (§III-C): in-application = Spark-internal delays.
	if d.Driver >= 0 && d.Executor >= 0 {
		d.In = d.Driver + d.Executor
		if d.Total >= 0 {
			d.Out = d.Total - d.In
			if d.Out < 0 {
				d.Out = 0
			}
		}
	}

	// Per-container components.
	for _, c := range a.Containers {
		id := c.ID.String()
		if v := diff(c.Acquired, c.Allocated); v >= 0 {
			d.Acquisitions = append(d.Acquisitions, ContainerDelay{id, c.Instance, c.Node, v})
		}
		if v := diff(c.Scheduled, c.Localizing); v >= 0 {
			d.Localizations = append(d.Localizations, ContainerDelay{id, c.Instance, c.Node, v})
		}
		if v := diff(c.Running, c.Scheduled); v >= 0 && c.OppQueuedAt == 0 {
			d.Launchings = append(d.Launchings, ContainerDelay{id, c.Instance, c.Node, v})
		}
		if v := diff(c.LaunchInvoked, c.Scheduled); v >= 0 {
			d.Queueings = append(d.Queueings, ContainerDelay{id, c.Instance, c.Node, v})
		}
	}

	d.Anomalies = findAnomalies(a, firstTask)
	d.Complete = d.Total >= 0 && d.AM >= 0 && d.Driver >= 0 && d.Executor >= 0 &&
		len(d.Anomalies) == 0
	return d
}

// findAnomalies explains why a trace is partial or suspect: headline
// Table I messages that never arrived (dropped or truncated lines, app
// still in flight), containers the RM marked KILLED after losing their
// node, and timestamp pairs that run backwards (clock skew between the
// files the two observations came from). The list is bounded: per-check
// findings collapse into counts.
func findAnomalies(a *AppTrace, firstTask int64) []string {
	var out []string
	if a.Submitted == 0 {
		out = append(out, "SUBMITTED not observed")
	}
	if a.Registered == 0 {
		out = append(out, "AM registration not observed")
	}
	if am := a.AMContainer(); am == nil {
		out = append(out, "no AM container observed")
	} else if am.FirstLog == 0 {
		out = append(out, "AM container log not observed")
	}
	if firstTask == 0 {
		out = append(out, "no FIRST_TASK observed")
	}
	lost := 0
	for _, c := range a.Containers {
		if c.Lost > 0 {
			lost++
		}
	}
	if lost > 0 {
		out = append(out, fmt.Sprintf("%d container(s) lost to node failure", lost))
	}
	if n := countOrderViolations(a); n > 0 {
		out = append(out, fmt.Sprintf("%d out-of-order timestamp pair(s) (clock skew or corrupted stamps)", n))
	}
	return out
}

// countOrderViolations counts observed timestamp pairs that violate the
// causal order of the scheduling state machines. Pairs with either side
// unobserved (0) don't count — absence is reported separately.
func countOrderViolations(a *AppTrace) int {
	n := 0
	bad := func(earlier, later int64) {
		if earlier > 0 && later > 0 && later < earlier {
			n++
		}
	}
	bad(a.Submitted, a.Accepted)
	bad(a.Accepted, a.Registered)
	bad(a.Submitted, a.Finished)
	for _, c := range a.Containers {
		bad(c.Allocated, c.Acquired)
		bad(c.Acquired, c.Localizing)
		bad(c.Localizing, c.Scheduled)
		bad(c.Scheduled, c.Running)
		bad(c.Running, c.FirstLog)
		bad(c.FirstLog, c.FirstTask)
	}
	return n
}
