package core

import "testing"

func TestTotalTimeSeries(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	pts := rep.TotalTimeSeries(60_000)
	if len(pts) != 1 {
		t.Fatalf("points=%d, want 1 (single app)", len(pts))
	}
	if pts[0].Count != 1 || pts[0].P50 != 11900 {
		t.Fatalf("point=%+v", pts[0])
	}
	if rep.Filter(func(*AppTrace) bool { return false }).TotalTimeSeries(0) != nil {
		t.Fatal("empty report should yield nil series")
	}
}
