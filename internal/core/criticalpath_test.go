package core

import (
	"strings"
	"testing"
)

func TestCriticalPathCoversTotal(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	a := rep.Apps[0]
	segs := CriticalPath(a)
	if len(segs) == 0 {
		t.Fatal("no critical path")
	}
	// Contiguous from submission to first task.
	if segs[0].FromMS != a.Submitted {
		t.Fatalf("path starts at %d, want submission %d", segs[0].FromMS, a.Submitted)
	}
	if segs[len(segs)-1].ToMS != a.Submitted+a.Decomp.Total {
		t.Fatalf("path ends at %d, want first task", segs[len(segs)-1].ToMS)
	}
	var sum int64
	for i, s := range segs {
		if s.Duration() <= 0 {
			t.Fatalf("segment %d non-positive: %+v", i, s)
		}
		if i > 0 && s.FromMS != segs[i-1].ToMS {
			t.Fatalf("gap between segments %d and %d", i-1, i)
		}
		sum += s.Duration()
	}
	if sum != a.Decomp.Total {
		t.Fatalf("segments sum to %d, total is %d", sum, a.Decomp.Total)
	}
}

func TestCriticalPathLabels(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	segs := CriticalPath(rep.Apps[0])
	want := map[string]int64{
		"am-localize":   540,  // ACQUIRED 260 -> SCHEDULED 800 (includes the NM handoff)
		"am-launch":     700,  // 800 -> 1500
		"driver-init":   3600, // 1500 -> 5100
		"executor-wait": 4900, // 7100 -> 12000
	}
	got := map[string]int64{}
	for _, s := range segs {
		got[s.Label] = s.Duration()
	}
	for label, ms := range want {
		if got[label] != ms {
			t.Errorf("%s = %dms, want %d (segments: %+v)", label, got[label], ms, segs)
		}
	}
	out := FormatCriticalPath(segs)
	if !strings.Contains(out, "driver-init") || !strings.Contains(out, "%") {
		t.Fatalf("format output incomplete:\n%s", out)
	}
}

func TestCriticalPathIncomplete(t *testing.T) {
	cs := corpus{}
	cs.add("hadoop/yarn-resourcemanager.log",
		line(100, "x.RMAppImpl", "application_1499000000000_0001 State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"))
	rep := analyze(t, cs)
	if got := CriticalPath(rep.Apps[0]); got != nil {
		t.Fatalf("incomplete trace produced a path: %v", got)
	}
	if !strings.Contains(FormatCriticalPath(nil), "unavailable") {
		t.Fatal("nil path formatting")
	}
}

func TestCriticalPathShares(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	shares := rep.CriticalPathShares()
	if shares == nil {
		t.Fatal("no shares")
	}
	var sum float64
	for _, v := range shares {
		if v < 0 {
			t.Fatal("negative share")
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %.4f, want 1", sum)
	}
}
