package core

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/log4j"
	"repro/internal/obs"
)

// The parallel offline miner: parsing dominates SDchecker's wall time
// (regex extraction over every log line), and files are independent
// until correlation, so MineDir/MineSink fan the files of a log tree out
// to worker goroutines and merge the per-file results back in file
// order. The merged event slice is exactly what one serial Parser over
// the same files in the same order would have produced, so the report —
// including its JSON export — is byte-identical to Checker.Analyze for
// any worker count.

// mineFile is one log file to parse: its logical (slash-separated) name
// and a way to open its content.
type mineFile struct {
	name string
	open func() (io.ReadCloser, error)
}

// MineDir mines a log directory tree like Checker.AddDir + Analyze, but
// parses files on up to workers goroutines (0 = GOMAXPROCS). The report
// is byte-identical to the serial checker's regardless of worker count.
func MineDir(dir string, workers int) (*Report, error) {
	return MineDirObserved(dir, workers, nil)
}

// MineDirObserved is MineDir with self-observability attached: per-file
// read/parse stage timings, decompose/aggregate phase spans, and the
// pending-files gauge land in pl. A nil pipeline makes it exactly
// MineDir (every instrumentation call is a nil-safe no-op, so the
// unobserved path stays benchmark-neutral).
func MineDirObserved(dir string, workers int, pl *obs.Pipeline) (*Report, error) {
	var files []mineFile
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			rel = path
		}
		files = append(files, mineFile{
			name: filepath.ToSlash(rel),
			open: func() (io.ReadCloser, error) { return os.Open(path) },
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mineFiles(files, workers, pl)
}

// MineSink mines an in-memory log sink like Checker.AddSink + Analyze,
// parsing files on up to workers goroutines (0 = GOMAXPROCS).
func MineSink(s *log4j.Sink, workers int) (*Report, error) {
	return MineSinkObserved(s, workers, nil)
}

// MineSinkObserved is MineSink with self-observability attached (see
// MineDirObserved).
func MineSinkObserved(s *log4j.Sink, workers int, pl *obs.Pipeline) (*Report, error) {
	names := s.Files()
	files := make([]mineFile, 0, len(names))
	for _, f := range names {
		f := f
		files = append(files, mineFile{
			name: f,
			open: func() (io.ReadCloser, error) { return io.NopCloser(s.Reader(f)), nil },
		})
	}
	return mineFiles(files, workers, pl)
}

// mineFiles parses every file on a worker pool, merges the per-file
// parsers in file order (events, line/file counts, and warnings — the
// latter replayed occurrence by occurrence so dedup counts match a
// serial parse), then correlates, decomposes in parallel, and builds the
// report.
func mineFiles(files []mineFile, workers int, pl *obs.Pipeline) (*Report, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(files) {
		workers = len(files)
	}
	if workers < 1 {
		workers = 1
	}

	pl.FilesPending(len(files))
	parsers := make([]*Parser, len(files))
	errs := make([]error, len(files))
	var next, claimed int64 = -1, 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(files) {
					return
				}
				t := pl.Begin()
				r, err := files[i].open()
				if err != nil {
					errs[i] = err
					continue
				}
				opened := pl.Begin()
				p := NewParser()
				err = p.ParseReader(files[i].name, r)
				r.Close()
				parsers[i], errs[i] = p, err
				pl.StageSpan(obs.StageRead, -1, t, opened, 1)
				pl.StageBatch(obs.StageParse, w, opened, p.lines)
				pl.FilesPending(len(files) - int(atomic.AddInt64(&claimed, 1)))
			}
		}()
	}
	wg.Wait()
	pl.FilesPending(0)

	merged := NewParser()
	for i, p := range parsers {
		if errs[i] != nil {
			// First error in file order, like the serial walk surfaces.
			return nil, errs[i]
		}
		merged.events = append(merged.events, p.events...)
		merged.files += p.files
		merged.lines += p.lines
		merged.warns.absorb(&p.warns)
	}

	tCorr := pl.Begin()
	apps := Correlate(merged.Events())
	tDec := pl.Begin()
	decomposeAll(apps, workers)
	tRep := pl.Begin()
	r := buildReport(apps, merged.Events())
	r.Warnings = merged.Warnings()
	r.FilesParsed, r.LinesParsed = merged.Stats()
	// Correlation and report building bracket the decompose phase; both
	// fold into the aggregate stage.
	pl.StageSpan(obs.StageAggregate, -1, tCorr, tDec, len(merged.events))
	pl.StageSpan(obs.StageDecompose, -1, tDec, tRep, len(apps))
	pl.StageBatch(obs.StageAggregate, -1, tRep, len(apps))
	return r, nil
}

// decomposeAll runs the (pure, per-app) decomposition over a worker
// pool. Each worker writes only its own apps' Decomp fields, so the
// result is identical to a serial loop.
func decomposeAll(apps []*AppTrace, workers int) {
	if workers > len(apps) {
		workers = len(apps)
	}
	if workers <= 1 {
		for _, a := range apps {
			Decompose(a)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(apps) {
					return
				}
				Decompose(apps[i])
			}
		}()
	}
	wg.Wait()
}
