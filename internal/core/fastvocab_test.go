package core_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/log4j"
	"repro/internal/metrics"
)

// This file is the property-test satellite of the fast-path equivalence
// proof: every concrete message shape the system can produce — the
// manifest examples and instantiations of every emitter template in the
// simulated frameworks — is replayed through the byte-level matcher and
// the regex reference, which must mine identical events.

// mineBoth parses one formatted line under both matchers and asserts
// identical events, returning the fast run's registry for counter
// assertions.
func mineBoth(t *testing.T, name, raw string) ([]core.Event, *metrics.Registry) {
	t.Helper()
	run := func(ref bool) ([]core.Event, []string, *metrics.Registry) {
		restore := core.UseReferenceMatcher(ref)
		defer restore()
		p := core.NewParser()
		reg := metrics.NewRegistry()
		p.Instrument(reg)
		if err := p.ParseReader(name, strings.NewReader(raw+"\n")); err != nil {
			t.Fatalf("ParseReader: %v", err)
		}
		return p.Events(), p.Warnings(), reg
	}
	fe, fw, freg := run(false)
	re, rw, _ := run(true)
	if !reflect.DeepEqual(fe, re) {
		t.Fatalf("line %q: fast mined %+v, regex %+v", raw, fe, re)
	}
	if !reflect.DeepEqual(fw, rw) {
		t.Fatalf("line %q: warnings diverge: fast=%q regex=%q", raw, fw, rw)
	}
	return fe, freg
}

func sourceFile(t *testing.T, source string) string {
	t.Helper()
	switch source {
	case "rm":
		return "hadoop/yarn-resourcemanager.log"
	case "nm":
		return "hadoop/yarn-nodemanager-node1.log"
	case "container", "positional":
		return "containers/application_1499000000000_0001/container_1499000000000_0001_01_000002/stderr"
	}
	t.Fatalf("unknown source %q", source)
	return ""
}

// TestVocabExamplesDriveFastParser is the fast-path twin of
// TestVocabExamplesDriveParser: the manifest examples must mine the
// manifest Kind and bump the manifest metric under the byte-level
// matcher, and the reference implementation must agree event for event.
func TestVocabExamplesDriveFastParser(t *testing.T) {
	vocab, err := analysis.DefaultVocab()
	if err != nil {
		t.Fatalf("DefaultVocab: %v", err)
	}
	for _, m := range vocab.Messages {
		t.Run(m.Name, func(t *testing.T) {
			raw := log4j.Line{
				TimeMS:  1499000000123,
				Level:   log4j.Info,
				Class:   m.Class,
				Message: m.Example,
			}.Format()
			evs, reg := mineBoth(t, sourceFile(t, m.Source), raw)
			found := false
			for _, e := range evs {
				if e.Kind.String() == m.Kind {
					found = true
				}
			}
			if !found {
				t.Fatalf("example %q mined %+v, want kind %s", m.Example, evs, m.Kind)
			}
			if m.Metric != "" {
				if got := reg.Counter("core_parser_hits_total", "regex", m.Metric).Value(); got == 0 {
					t.Errorf("example %q did not increment core_parser_hits_total{regex=%q}", m.Example, m.Metric)
				}
			}
		})
	}
}

// emitterTemplates syntactically collects every Infof/Warnf/Errorf
// format-string literal in the emitting framework packages — the full
// production-side vocabulary, including messages the miner ignores.
func emitterTemplates(t *testing.T) []string {
	t.Helper()
	var out []string
	fset := token.NewFileSet()
	for _, pkg := range []string{"yarn", "spark", "mapreduce", "docker", "hdfs"} {
		dir := filepath.Join("..", pkg)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range ents {
			if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", e.Name(), err)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Infof", "Warnf", "Errorf":
				default:
					return true
				}
				if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if s, err := strconv.Unquote(lit.Value); err == nil {
						out = append(out, s)
					}
				}
				return true
			})
		}
	}
	return out
}

// instantiate renders a fmt template with ID-shaped sample values, one
// variant per sample row.
func instantiate(format string) []string {
	samples := [][]any{
		{"container_1499000000000_0001_01_000002", int64(7), 0.25},
		{"application_1499000000000_0003", int64(1499000000123), 1.0},
		{"node1.example.com:8041", int64(0), 0.0},
	}
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		j := i + 1
		for j < len(format) && strings.IndexByte("+-# 0123456789.", format[j]) >= 0 {
			j++
		}
		if j >= len(format) {
			return nil
		}
		if format[j] != '%' {
			verbs = append(verbs, format[j])
		}
		i = j
	}
	var out []string
	for _, row := range samples {
		var args []any
		for k, v := range verbs {
			switch v {
			case 'd', 'x', 'X', 'b', 'o':
				args = append(args, row[1])
			case 'f', 'F', 'e', 'E', 'g', 'G':
				args = append(args, row[2])
			case 't':
				args = append(args, k%2 == 0)
			default:
				args = append(args, row[0])
			}
		}
		s := fmt.Sprintf(format, args...)
		if strings.Contains(s, "%!") {
			return nil // exotic verb shape; skip rather than feed broken text
		}
		out = append(out, s)
	}
	return out
}

// TestEmitterTemplatesDriveBothParsers instantiates every emitter
// template in the tree and replays each rendering through both matcher
// implementations under every log source — the whole emittable
// vocabulary, mined identically.
func TestEmitterTemplatesDriveBothParsers(t *testing.T) {
	templates := emitterTemplates(t)
	if len(templates) < 20 {
		t.Fatalf("found only %d emitter templates; the extraction no longer covers the frameworks", len(templates))
	}
	sources := []string{"rm", "nm", "container"}
	classes := []string{
		"org.apache.hadoop.yarn.server.resourcemanager.rmcontainer.RMContainerImpl",
		"org.apache.spark.deploy.yarn.ApplicationMaster",
	}
	seen := map[string]bool{}
	for _, format := range templates {
		if seen[format] {
			continue
		}
		seen[format] = true
		for _, msg := range instantiate(format) {
			for _, src := range sources {
				for _, class := range classes {
					raw := log4j.Line{
						TimeMS:  1499000000123,
						Level:   log4j.Info,
						Class:   class,
						Message: msg,
					}.Format()
					mineBoth(t, sourceFile(t, src), raw)
				}
			}
		}
	}
	t.Logf("replayed %d distinct emitter templates through both matchers", len(seen))
}
