package core

import (
	"fmt"
	"html/template"
	"sort"
	"strings"

	"repro/internal/digest"
	"repro/internal/stats"
)

// HTMLReport renders a self-contained HTML page (inline SVG, no external
// assets): the component summary table, the Fig-4a-style CDF chart, the
// Fig-9a per-instance launching chart, and Gantt timelines of the first
// maxGantt applications showing each container's scheduling phases.
func (r *Report) HTMLReport(title string, maxGantt int) string {
	if maxGantt <= 0 {
		maxGantt = 5
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", template.HTMLEscapeString(title))
	b.WriteString(`<style>
body{font-family:ui-monospace,monospace;margin:24px;color:#222}
h1{font-size:20px} h2{font-size:16px;margin-top:28px}
table{border-collapse:collapse;font-size:12px}
td,th{border:1px solid #bbb;padding:3px 8px;text-align:right}
th{background:#eee} td:first-child,th:first-child{text-align:left}
.legend span{display:inline-block;margin-right:14px;font-size:12px}
.lane{font-size:10px}
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", template.HTMLEscapeString(title))
	fmt.Fprintf(&b, "<p>%d applications, %d log files, %d lines parsed.</p>\n",
		len(r.Apps), r.FilesParsed, r.LinesParsed)
	if r.PartialApps > 0 {
		fmt.Fprintf(&b, "<p><b>%d of %d decompositions are partial</b> (missing observations or anomalies); aggregates use observed components only.</p>\n",
			r.PartialApps, r.CompleteApps+r.PartialApps)
	}

	r.htmlSummaryTable(&b)
	r.htmlClusterBreakdown(&b)
	r.htmlCDFChart(&b)
	r.htmlInstanceChart(&b)
	r.htmlGantts(&b, maxGantt)

	if len(r.Bugs) > 0 {
		fmt.Fprintf(&b, "<h2>Bug findings (%d)</h2>\n<ul>\n", len(r.Bugs))
		max := len(r.Bugs)
		if max > 20 {
			max = 20
		}
		for _, f := range r.Bugs[:max] {
			fmt.Fprintf(&b, "<li>%s</li>\n", template.HTMLEscapeString(f.String()))
		}
		b.WriteString("</ul>\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

func (r *Report) htmlSummaryTable(b *strings.Builder) {
	b.WriteString("<h2>Scheduling delay components (ms)</h2>\n<table>\n")
	b.WriteString("<tr><th>component</th><th>n</th><th>mean</th><th>sd</th><th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>\n")
	for _, sm := range r.Summaries() {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%.0f</td><td>%.0f</td><td>%.0f</td><td>%.0f</td><td>%.0f</td><td>%.0f</td></tr>\n",
			template.HTMLEscapeString(sm.Name), sm.Count, sm.Mean, sm.StdDev, sm.P50, sm.P95, sm.P99, sm.Max)
	}
	b.WriteString("</table>\n")
}

// htmlClusterBreakdown renders the fleet-level view: per-component
// percentile rollups from the mergeable sketches, per-queue and per-node
// tables for the headline components, and worst-queue / worst-node
// callouts (the drift a production operator watches for).
func (r *Report) htmlClusterBreakdown(b *strings.Builder) {
	cb := r.Breakdown()
	rows := cb.ComponentRows()
	if len(rows) == 0 {
		return
	}
	b.WriteString("<h2>Cluster breakdown (quantile sketches)</h2>\n")

	writeRows := func(header string, rs []BreakdownRow, label func(BreakdownRow) string) {
		fmt.Fprintf(b, "<table>\n<tr><th>%s</th><th>n</th><th>mean</th><th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>\n",
			template.HTMLEscapeString(header))
		for _, rw := range rs {
			fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%.1f</td><td>%.1f</td><td>%.1f</td><td>%.1f</td><td>%.1f</td></tr>\n",
				template.HTMLEscapeString(label(rw)), rw.Count, rw.MeanMS, rw.P50MS, rw.P95MS, rw.P99MS, rw.MaxMS)
		}
		b.WriteString("</table>\n")
	}
	writeRows("component (ms)", rows, func(rw BreakdownRow) string { return rw.Component })

	// Worst-node / worst-queue callouts over the headline components.
	var callouts []string
	for _, comp := range []string{"total", "localization", "launching"} {
		if n, p99, ok := Worst(cb.ByNode(comp), 2); ok {
			callouts = append(callouts, fmt.Sprintf("worst node for %s: <b>%s</b> (p99 %.0f ms)",
				comp, template.HTMLEscapeString(n), p99))
		}
		if q, p99, ok := Worst(cb.ByQueue(comp), 2); ok {
			callouts = append(callouts, fmt.Sprintf("worst queue for %s: <b>%s</b> (p99 %.0f ms)",
				comp, template.HTMLEscapeString(q), p99))
		}
	}
	if len(callouts) > 0 {
		b.WriteString("<p>" + strings.Join(callouts, " &middot; ") + "</p>\n")
	}

	// Per-queue and per-node tables for the total scheduling delay.
	dims := []struct {
		title  string
		groups map[string]*digest.Sketch
	}{
		{"queue (total delay, ms)", cb.ByQueue("total")},
		{"node (localization delay, ms)", cb.ByNode("localization")},
	}
	for _, dim := range dims {
		names := make([]string, 0, len(dim.groups))
		for g := range dim.groups {
			if g != "" {
				names = append(names, g)
			}
		}
		if len(names) == 0 {
			continue
		}
		sort.Strings(names)
		grs := make([]BreakdownRow, 0, len(names))
		for _, g := range names {
			grs = append(grs, row("", "", g, "", dim.groups[g]))
		}
		writeRows(dim.title, grs, func(rw BreakdownRow) string { return rw.Node })
	}
}

// cdfColors are the series colors of the Fig-4a-style chart.
var cdfColors = map[string]string{
	"job": "#888888", "total": "#d62728", "am": "#2ca02c", "in": "#1f77b4", "out": "#ff7f0e",
}

func (r *Report) htmlCDFChart(b *strings.Builder) {
	series := []struct {
		name string
		s    *stats.Sample
	}{
		{"job", r.Job}, {"total", r.Total}, {"am", r.AM}, {"in", r.In}, {"out", r.Out},
	}
	var maxV float64
	for _, sr := range series {
		if m := sr.s.Max(); m > maxV {
			maxV = m
		}
	}
	if maxV == 0 {
		return
	}
	const w, h, pad = 640, 280, 40
	b.WriteString("<h2>Delay CDFs (Fig 4a)</h2>\n<div class=\"legend\">")
	for _, sr := range series {
		fmt.Fprintf(b, "<span style=\"color:%s\">&#9632; %s</span>", cdfColors[sr.name], sr.name)
	}
	b.WriteString("</div>\n")
	fmt.Fprintf(b, "<svg width=\"%d\" height=\"%d\" xmlns=\"http://www.w3.org/2000/svg\">\n", w, h)
	fmt.Fprintf(b, "<rect x=\"%d\" y=\"10\" width=\"%d\" height=\"%d\" fill=\"none\" stroke=\"#999\"/>\n", pad, w-pad-10, h-pad-10)
	// Axis labels: 0 .. maxV ms.
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" font-size=\"10\">0</text>\n", pad, h-pad+12)
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" font-size=\"10\" text-anchor=\"end\">%.1fs</text>\n", w-10, h-pad+12, maxV/1000)
	fmt.Fprintf(b, "<text x=\"8\" y=\"%d\" font-size=\"10\">1.0</text>\n<text x=\"8\" y=\"%d\" font-size=\"10\">0.0</text>\n", 18, h-pad)
	plotW, plotH := float64(w-pad-10), float64(h-pad-20)
	for _, sr := range series {
		pts := sr.s.CDF(60)
		if len(pts) == 0 {
			continue
		}
		var poly []string
		for _, p := range pts {
			x := float64(pad) + p.Value/maxV*plotW
			y := 10 + (1-p.Fraction)*plotH
			poly = append(poly, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(b, "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" points=\"%s\"/>\n",
			cdfColors[sr.name], strings.Join(poly, " "))
	}
	b.WriteString("</svg>\n")
}

func (r *Report) htmlInstanceChart(b *strings.Builder) {
	if len(r.LaunchingByInstance) == 0 {
		return
	}
	insts := make([]string, 0, len(r.LaunchingByInstance))
	var maxV float64
	for k, s := range r.LaunchingByInstance {
		insts = append(insts, string(k))
		if v := s.P95(); v > maxV {
			maxV = v
		}
	}
	sort.Strings(insts)
	const barW, gap, h, pad = 70, 24, 200, 30
	w := pad*2 + len(insts)*(barW+gap)
	b.WriteString("<h2>Launching delay by instance type (Fig 9a; bar = p50, whisker = p95)</h2>\n")
	fmt.Fprintf(b, "<svg width=\"%d\" height=\"%d\" xmlns=\"http://www.w3.org/2000/svg\">\n", w, h+pad)
	for i, name := range insts {
		s := r.LaunchingByInstance[InstanceType(name)]
		x := pad + i*(barW+gap)
		p50h := s.Median() / maxV * float64(h-20)
		p95h := s.P95() / maxV * float64(h-20)
		fmt.Fprintf(b, "<rect x=\"%d\" y=\"%.1f\" width=\"%d\" height=\"%.1f\" fill=\"#4c78a8\"/>\n",
			x, float64(h)-p50h, barW, p50h)
		fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"#d62728\" stroke-width=\"2\"/>\n",
			x, float64(h)-p95h, x+barW, float64(h)-p95h)
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" font-size=\"11\" text-anchor=\"middle\">%s</text>\n",
			x+barW/2, h+14, template.HTMLEscapeString(name))
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%.1f\" font-size=\"9\" text-anchor=\"middle\">%.0f</text>\n",
			x+barW/2, float64(h)-p50h-3, s.Median())
	}
	b.WriteString("</svg>\n")
}

// ganttPhases maps each container phase to a color.
var ganttPhases = []struct {
	name  string
	color string
}{
	{"acquire", "#c7c7c7"},
	{"localize", "#ff7f0e"},
	{"launch", "#2ca02c"},
	{"idle-to-task", "#1f77b4"},
}

func (r *Report) htmlGantts(b *strings.Builder, maxGantt int) {
	n := len(r.Apps)
	if n > maxGantt {
		n = maxGantt
	}
	if n == 0 {
		return
	}
	b.WriteString("<h2>Per-application scheduling timelines (Fig 3 as a Gantt)</h2>\n<div class=\"legend\">")
	for _, p := range ganttPhases {
		fmt.Fprintf(b, "<span style=\"color:%s\">&#9632; %s</span>", p.color, p.name)
	}
	b.WriteString("</div>\n")
	for _, a := range r.Apps[:n] {
		r.htmlGanttOne(b, a)
	}
}

func (r *Report) htmlGanttOne(b *strings.Builder, a *AppTrace) {
	if a.Submitted == 0 {
		return
	}
	// Horizon: last observable scheduling event.
	var horizon int64
	for _, c := range a.Containers {
		for _, t := range []int64{c.Running, c.FirstTask, c.FirstLog} {
			if t > horizon {
				horizon = t
			}
		}
	}
	if horizon <= a.Submitted {
		return
	}
	span := float64(horizon - a.Submitted)
	const rowH, w, pad = 16, 760, 250
	hgt := (len(a.Containers)+1)*rowH + 30
	fmt.Fprintf(b, "<h3 style=\"font-size:13px\">%s (total %.1fs)</h3>\n",
		template.HTMLEscapeString(a.ID.String()), span/1000)
	fmt.Fprintf(b, "<svg width=\"%d\" height=\"%d\" xmlns=\"http://www.w3.org/2000/svg\">\n", w+pad, hgt)
	x := func(t int64) float64 {
		return float64(pad) + float64(t-a.Submitted)/span*float64(w-20)
	}
	row := 0
	seg := func(y int, from, to int64, color string) {
		if from == 0 || to == 0 || to < from {
			return
		}
		fmt.Fprintf(b, "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\"/>\n",
			x(from), y*rowH+4, maxF(x(to)-x(from), 1), rowH-6, color)
	}
	for _, c := range a.Containers {
		label := c.ID.String()
		if c.Instance != InstUnknown {
			label += " (" + string(c.Instance) + ")"
		}
		fmt.Fprintf(b, "<text x=\"4\" y=\"%d\" font-size=\"10\" class=\"lane\">%s</text>\n",
			row*rowH+rowH-4, template.HTMLEscapeString(label))
		seg(row, c.Allocated, c.Acquired, ganttPhases[0].color)
		seg(row, c.Localizing, c.Scheduled, ganttPhases[1].color)
		seg(row, c.Scheduled, c.Running, ganttPhases[2].color)
		end := c.FirstTask
		if end == 0 {
			end = horizon
		}
		seg(row, firstNonZero(c.FirstLog, c.Running), end, ganttPhases[3].color)
		row++
	}
	// App-level milestone markers.
	mark := func(t int64, label, color string) {
		if t == 0 {
			return
		}
		fmt.Fprintf(b, "<line x1=\"%.1f\" y1=\"0\" x2=\"%.1f\" y2=\"%d\" stroke=\"%s\" stroke-dasharray=\"3,2\"/>\n",
			x(t), x(t), row*rowH, color)
		fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%d\" font-size=\"9\" fill=\"%s\">%s</text>\n",
			x(t), row*rowH+12, color, template.HTMLEscapeString(label))
	}
	mark(a.Registered, "APT_REGISTERED", "#2ca02c")
	mark(a.StartAllo, "START_ALLO", "#9467bd")
	mark(a.EndAllo, "END_ALLO", "#9467bd")
	b.WriteString("</svg>\n")
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func firstNonZero(vals ...int64) int64 {
	for _, v := range vals {
		if v != 0 {
			return v
		}
	}
	return 0
}
