package core

import "testing"

func TestAppSummaryMined(t *testing.T) {
	cs := buildSparkCorpus()
	app := "application_1499000000000_0001"
	cs.add("hadoop/yarn-resourcemanager.log",
		line(85, "x.RMAppImpl", "Application "+app+" submitted: name=tpch-q5 type=SPARK queue=default"))
	rep := analyze(t, cs)
	a := rep.Apps[0]
	if a.Name != "tpch-q5" || a.AppType != "SPARK" || a.Queue != "default" {
		t.Fatalf("summary not mined: %q %q %q", a.Name, a.AppType, a.Queue)
	}
	byName := rep.ByName()
	if s := byName["tpch-q5"]; s == nil || s.Len() != 1 {
		t.Fatalf("ByName grouping: %v", byName)
	}
	byQueue := rep.ByQueue()
	if s := byQueue["default"]; s == nil || s.Len() != 1 {
		t.Fatalf("ByQueue grouping: %v", byQueue)
	}
}

func TestGroupTotalsSkipsUnnamed(t *testing.T) {
	rep := analyze(t, buildSparkCorpus()) // no summary line
	if got := rep.ByName(); len(got) != 0 {
		t.Fatalf("unnamed apps grouped: %v", got)
	}
}

func TestMergeReports(t *testing.T) {
	a := analyze(t, buildSparkCorpus())
	b := analyze(t, buildSparkCorpus())
	m := Merge(a, b, nil)
	if len(m.Apps) != 2 {
		t.Fatalf("merged apps=%d, want 2", len(m.Apps))
	}
	if m.Total.Len() != 2 {
		t.Fatalf("merged total sample n=%d", m.Total.Len())
	}
	if m.Total.Median() != a.Total.Median() {
		t.Fatalf("merged median %v != per-run %v", m.Total.Median(), a.Total.Median())
	}
	if m.FilesParsed != a.FilesParsed+b.FilesParsed {
		t.Fatal("file accounting lost in merge")
	}
}
