package core_test

import (
	"io"
	"strings"

	"repro/internal/log4j"
)

// corpusLines builds a minimal consistent one-executor application log
// set with the given absolute-offset milestones (offsets from epoch base
// 1499000000000).
func corpusLines(sub, amFirstLog, reg, exFirstLog, task, fin int64) map[string]io.Reader {
	const base = int64(1499000000000)
	l := func(off int64, class, msg string) string {
		return log4j.Line{TimeMS: base + off, Level: log4j.Info, Class: class, Message: msg}.Format()
	}
	app := "application_1499000000000_0001"
	am := "container_1499000000000_0001_01_000001"
	ex := "container_1499000000000_0001_01_000002"

	rmLines := []string{
		l(sub, "x.RMAppImpl", app+" State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"),
		l(sub+1, "x.RMAppImpl", app+" State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"),
		l(reg, "x.RMAppImpl", app+" State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"),
		l(fin, "x.RMAppImpl", app+" State change from FINAL_SAVING to FINISHED on event = APP_UPDATE_SAVED"),
	}
	amLines := []string{
		l(amFirstLog, "org.apache.spark.deploy.yarn.ApplicationMaster", "Preparing Local resources"),
		l(reg, "org.apache.spark.deploy.yarn.ApplicationMaster", "Registered with ResourceManager as x"),
	}
	exLines := []string{
		l(exFirstLog, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Started daemon"),
		l(task, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Got assigned task 0"),
	}
	return map[string]io.Reader{
		"hadoop/yarn-resourcemanager.log":        strings.NewReader(strings.Join(rmLines, "\n")),
		"userlogs/" + app + "/" + am + "/stderr": strings.NewReader(strings.Join(amLines, "\n")),
		"userlogs/" + app + "/" + ex + "/stderr": strings.NewReader(strings.Join(exLines, "\n")),
	}
}
