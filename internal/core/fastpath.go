package core

import (
	"math"
	"regexp"
	"strings"

	"repro/internal/ids"
	"repro/internal/log4j"
)

// The mining hot path. The miner's vocabulary (internal/analysis/
// vocab.json) is a fixed set of literal-anchored patterns, so instead of
// running a regexp over every line the fast path dispatches on literal
// anchors ("application_", "Assigned container ", ...) and hand-rolls
// the field extraction with byte loops. Each rule is a small segment
// program; ruleRegex renders the segments back into a regex that is
// byte-for-byte the pattern parser.go declares, and sdlint's logvocab
// analyzer proves the two accept the same language (automaton
// containment both directions), so a rule here cannot silently drift
// from the declared vocabulary. The regexp implementation stays behind
// UseReferenceMatcher as the differential-testing reference.
//
// Matching preserves regexp semantics exactly:
//   - unanchored search tries anchor occurrences left to right
//     (leftmost match wins, like FindStringSubmatch);
//   - \w+/\S+/\d+ runs are matched maximally, which is exact because
//     segValidate checks each run is followed by a literal whose first
//     byte is outside the run's class (so backtracking cannot help);
//   - `.*lit` backtracks from the rightmost occurrence of lit before
//     the first newline (greedy dot, no dot-all flag);
//   - `(.+)lit$` requires lit as a suffix and a newline-free, non-empty
//     capture (no multiline flag, so $ is end of text).

type segKind uint8

const (
	segLit      segKind = iota // literal text
	segOptLit                  // optional literal group: (lit)?
	segAppID                   // application_\d+_\d+
	segContID                  // container_\d+_\d+_\d+_\d+
	segWord                    // (\w+)
	segNonSpace                // (\S+)
	segDigits                  // (\d+)
	segDotStar                 // .*  (must be followed by segLit)
	segDotPlus                 // (.+) (must be followed by segLit, segEnd)
	segEnd                     // $
	segAltLit                  // (?:lit|lit2)
)

type seg struct {
	kind segKind
	lit  string
	lit2 string // segAltLit only
	bare bool   // capturing kinds: emit the pattern without parens
}

type fastRule struct {
	name     string // metric name, or the regex variable for helpers
	regexVar string
	segs     []seg
}

// span is one captured field: subject[beg:end].
type span struct{ beg, end int }

// fastMatch receives a rule's captures. Four is the widest rule
// (app_summary, app_state); segValidate enforces the bound.
type fastMatch struct {
	n  int
	sp [4]span
}

func (m *fastMatch) get(s string, i int) string { return s[m.sp[i].beg:m.sp[i].end] }

// Indices into fastDaemonRules, in mineDaemonLine's cascade order.
const (
	ruleAppSummary = iota
	ruleAppState
	ruleRMContainer
	ruleNMContainer
	ruleLaunchInvoked
	ruleOppQueued
	ruleAssigned
	ruleOppAssigned
)

var fastDaemonRules = []fastRule{
	{name: "app_summary", regexVar: "reAppSummary", segs: []seg{
		{kind: segLit, lit: "Application "}, {kind: segAppID},
		{kind: segLit, lit: " submitted: name="}, {kind: segNonSpace},
		{kind: segLit, lit: " type="}, {kind: segNonSpace},
		{kind: segLit, lit: " queue="}, {kind: segNonSpace},
	}},
	{name: "app_state", regexVar: "reAppState", segs: []seg{
		{kind: segAppID},
		{kind: segLit, lit: " State change from "}, {kind: segWord},
		{kind: segLit, lit: " to "}, {kind: segWord},
		{kind: segLit, lit: " on event = "}, {kind: segWord},
	}},
	{name: "rm_container", regexVar: "reRMCont", segs: []seg{
		{kind: segContID},
		{kind: segLit, lit: " Container Transitioned from "}, {kind: segWord},
		{kind: segLit, lit: " to "}, {kind: segWord},
	}},
	{name: "nm_container", regexVar: "reNMCont", segs: []seg{
		{kind: segLit, lit: "Container "}, {kind: segContID},
		{kind: segLit, lit: " transitioned from "}, {kind: segWord},
		{kind: segLit, lit: " to "}, {kind: segWord},
	}},
	{name: "launch_invoked", regexVar: "reInvoke", segs: []seg{
		{kind: segLit, lit: "Invoking launch script for container "}, {kind: segContID},
	}},
	{name: "opp_queued", regexVar: "reOppQueue", segs: []seg{
		{kind: segLit, lit: "Opportunistic container "}, {kind: segContID},
		{kind: segLit, lit: " queued"},
	}},
	{name: "assigned", regexVar: "reAssigned", segs: []seg{
		{kind: segLit, lit: "Assigned container "}, {kind: segContID},
		{kind: segLit, lit: " "}, {kind: segDotStar},
		{kind: segLit, lit: "on host "}, {kind: segNonSpace},
	}},
	{name: "opp_assigned", regexVar: "reOppAssigned", segs: []seg{
		{kind: segLit, lit: "Allocated opportunistic container "}, {kind: segContID},
		{kind: segLit, lit: " on host "}, {kind: segNonSpace},
	}},
}

// Indices into fastBodyRules (container-log message bodies).
const (
	ruleRegister = iota
	ruleStartAllo
	ruleEndAllo
	ruleFirstTask
)

var fastBodyRules = []fastRule{
	{name: "register", regexVar: "reRegister", segs: []seg{
		{kind: segLit, lit: "Registered with "}, {kind: segOptLit, lit: "the "},
		{kind: segLit, lit: "ResourceManager"},
	}},
	{name: "start_allo", regexVar: "reStartAllo", segs: []seg{
		{kind: segLit, lit: "SDCHECKER START_ALLO"},
	}},
	{name: "end_allo", regexVar: "reEndAllo", segs: []seg{
		{kind: segLit, lit: "SDCHECKER END_ALLO"},
	}},
	{name: "first_task", regexVar: "reFirstTask", segs: []seg{
		{kind: segLit, lit: "Got assigned task "}, {kind: segDigits},
	}},
}

// Indices into fastHelperRules (routing/path helpers, named by their
// regex variable because they carry no metric).
const (
	ruleContainerInPath = iota
	ruleNodeInPath
	ruleAppInLine
)

// fastDaemonPrescreen is a one-byte rejection filter for the daemon
// cascade: a byte that every rule's mandatory literals contain, so a
// message lacking it cannot match any rule and the whole cascade (eight
// anchor searches) is skipped after a single IndexByte. With the
// current vocabulary the byte is '_' — every daemon rule extracts an
// application or container ID — which realistic non-vocabulary chatter
// (IPC handlers, audit records, heartbeats) almost never contains. The
// byte is computed from the segment tables at init, not assumed, so a
// table edit that invalidates it disables the filter rather than
// breaking matching.
var fastDaemonPrescreen, fastDaemonPrescreenOK = prescreenByte(fastDaemonRules)

// prescreenByte intersects, across rules, the sets of bytes each rule's
// match must contain (bytes of unconditional literals: segLit, the ID
// prefixes, and bytes common to both branches of segAltLit), and picks
// one shared byte. Space is excluded — virtually every message has one,
// so it rejects nothing. ok=false means no usable shared byte exists.
func prescreenByte(rules []fastRule) (b byte, ok bool) {
	var common [256]bool
	for i := range common {
		common[i] = true
	}
	for ri := range rules {
		var req [256]bool
		mark := func(lit string) {
			for i := 0; i < len(lit); i++ {
				req[lit[i]] = true
			}
		}
		for _, sg := range rules[ri].segs {
			switch sg.kind {
			case segLit:
				mark(sg.lit)
			case segAppID:
				mark("application_")
			case segContID:
				mark("container_")
			case segAltLit:
				for i := 0; i < len(sg.lit); i++ {
					if strings.IndexByte(sg.lit2, sg.lit[i]) >= 0 {
						req[sg.lit[i]] = true
					}
				}
			}
		}
		for i := range common {
			common[i] = common[i] && req[i]
		}
	}
	if common['_'] {
		return '_', true
	}
	for i := range common {
		if common[i] && byte(i) != ' ' {
			return byte(i), true
		}
	}
	return 0, false
}

var fastHelperRules = []fastRule{
	{name: "reContainerInPath", regexVar: "reContainerInPath", segs: []seg{
		{kind: segContID, bare: true},
	}},
	{name: "reNodeInPath", regexVar: "reNodeInPath", segs: []seg{
		{kind: segLit, lit: "yarn-nodemanager-"}, {kind: segDotPlus},
		{kind: segLit, lit: ".log"}, {kind: segEnd},
	}},
	{name: "reAppInLine", regexVar: "reAppInLine", segs: []seg{
		{kind: segAltLit, lit: "application", lit2: "container"},
		{kind: segLit, lit: "_"}, {kind: segDigits},
		{kind: segLit, lit: "_"}, {kind: segDigits},
	}},
}

func isWordByte(c byte) bool {
	return c == '_' || ('0' <= c && c <= '9') || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

// isSpaceByte is Go regexp's \s: [\t\n\f\r ] (no \v).
func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\f' || c == '\r'
}

func isDigitByte(c byte) bool { return '0' <= c && c <= '9' }

func digitRunEnd(s string, i int) int {
	for i < len(s) && isDigitByte(s[i]) {
		i++
	}
	return i
}

// matchAppIDAt matches application_\d+_\d+ starting exactly at i and
// returns the end offset, or -1.
func matchAppIDAt(s string, i int) int {
	const p = "application_"
	if !strings.HasPrefix(s[i:], p) {
		return -1
	}
	j := i + len(p)
	e := digitRunEnd(s, j)
	if e == j || e >= len(s) || s[e] != '_' {
		return -1
	}
	j = e + 1
	e = digitRunEnd(s, j)
	if e == j {
		return -1
	}
	return e
}

// matchContIDAt matches container_\d+_\d+_\d+_\d+ starting exactly at i.
func matchContIDAt(s string, i int) int {
	const p = "container_"
	if !strings.HasPrefix(s[i:], p) {
		return -1
	}
	j := i + len(p)
	for f := 0; f < 4; f++ {
		e := digitRunEnd(s, j)
		if e == j {
			return -1
		}
		if f == 3 {
			return e
		}
		if e >= len(s) || s[e] != '_' {
			return -1
		}
		j = e + 1
	}
	return -1
}

// anchor returns the next candidate start position >= from for the
// rule's first segment, or -1. A match can only begin at one of these.
func (r *fastRule) anchor(s string, from int) int {
	if from > len(s) {
		return -1
	}
	first := &r.segs[0]
	switch first.kind {
	case segLit:
		j := strings.Index(s[from:], first.lit)
		if j < 0 {
			return -1
		}
		return from + j
	case segAppID:
		j := strings.Index(s[from:], "application_")
		if j < 0 {
			return -1
		}
		return from + j
	case segContID:
		j := strings.Index(s[from:], "container_")
		if j < 0 {
			return -1
		}
		return from + j
	case segAltLit:
		j := strings.Index(s[from:], first.lit)
		j2 := strings.Index(s[from:], first.lit2)
		if j < 0 || (j2 >= 0 && j2 < j) {
			j = j2
		}
		if j < 0 {
			return -1
		}
		return from + j
	}
	panic("core: fast rule " + r.name + " starts with an unanchorable segment")
}

// match runs the rule over s with regexp search semantics and fills m's
// captures on success. It never allocates.
func (r *fastRule) match(s string, m *fastMatch) bool {
	for from := 0; ; {
		pos := r.anchor(s, from)
		if pos < 0 {
			return false
		}
		m.n = 0
		if matchSegsAt(s, pos, r.segs, m) {
			return true
		}
		from = pos + 1
	}
}

func (m *fastMatch) record(beg, end int) {
	m.sp[m.n] = span{beg, end}
	m.n++
}

func matchSegsAt(s string, i int, segs []seg, m *fastMatch) bool {
	for k := 0; k < len(segs); k++ {
		sg := &segs[k]
		switch sg.kind {
		case segLit:
			if !strings.HasPrefix(s[i:], sg.lit) {
				return false
			}
			i += len(sg.lit)
		case segOptLit:
			// (lit)? before a literal: the greedy present branch commits
			// only if the following literal also fits, otherwise the
			// absent branch is the one regexp backtracking would take.
			if strings.HasPrefix(s[i:], sg.lit) && strings.HasPrefix(s[i+len(sg.lit):], segs[k+1].lit) {
				i += len(sg.lit)
			}
		case segAppID:
			e := matchAppIDAt(s, i)
			if e < 0 {
				return false
			}
			m.record(i, e)
			i = e
		case segContID:
			e := matchContIDAt(s, i)
			if e < 0 {
				return false
			}
			m.record(i, e)
			i = e
		case segWord, segNonSpace, segDigits:
			e := i
			switch sg.kind {
			case segWord:
				for e < len(s) && isWordByte(s[e]) {
					e++
				}
			case segNonSpace:
				for e < len(s) && !isSpaceByte(s[e]) {
					e++
				}
			default:
				e = digitRunEnd(s, e)
			}
			if e == i {
				return false
			}
			m.record(i, e)
			i = e
		case segDotStar:
			// Greedy `.*lit`: try the rightmost occurrence of lit before
			// the first newline, then earlier ones, exactly regexp's
			// preference order.
			lit := segs[k+1].lit
			hi := i + strings.IndexByte(s[i:], '\n')
			if hi < i {
				hi = len(s)
			} else {
				hi += len(lit) // lit may touch but not cross the newline
				if hi > len(s) {
					hi = len(s)
				}
			}
			for {
				j := strings.LastIndex(s[i:hi], lit)
				if j < 0 {
					return false
				}
				save := m.n
				if matchSegsAt(s, i+j+len(lit), segs[k+2:], m) {
					return true
				}
				m.n = save
				hi = i + j + len(lit) - 1
			}
		case segDotPlus:
			// `(.+)lit$`: lit must be a suffix and the capture newline-free.
			lit := segs[k+1].lit
			if !strings.HasSuffix(s, lit) {
				return false
			}
			end := len(s) - len(lit)
			if end <= i || strings.IndexByte(s[i:end], '\n') >= 0 {
				return false
			}
			m.record(i, end)
			i = len(s)
			k += 2 // consumed lit; the loop lands on segEnd
		case segEnd:
			if i != len(s) {
				return false
			}
		case segAltLit:
			switch {
			case strings.HasPrefix(s[i:], sg.lit):
				i += len(sg.lit)
			case strings.HasPrefix(s[i:], sg.lit2):
				i += len(sg.lit2)
			default:
				return false
			}
		}
	}
	return true
}

// contains is match without captures, for the pure-literal body rules.
func (r *fastRule) contains(s string) bool {
	var m fastMatch
	return r.match(s, &m)
}

// segValidate panics unless every rule stays inside the shapes the
// matcher is exact for. It runs once at init so an edit that breaks an
// equivalence precondition fails every test immediately.
func segValidate() {
	check := func(r *fastRule) {
		segs := r.segs
		caps := 0
		bad := func(why string) {
			panic("core: fast rule " + r.name + ": " + why)
		}
		for k, sg := range segs {
			litFollows := func(class func(byte) bool, what string) {
				if k+1 == len(segs) {
					return
				}
				next := segs[k+1]
				if next.kind == segEnd {
					return
				}
				if next.kind != segLit || next.lit == "" || class(next.lit[0]) {
					bad(what + " run must be followed by a literal starting outside the class")
				}
			}
			switch sg.kind {
			case segLit:
				if sg.lit == "" {
					bad("empty literal")
				}
			case segOptLit:
				if k+1 >= len(segs) || segs[k+1].kind != segLit {
					bad("optional literal must be followed by a literal")
				}
			case segAppID, segContID:
				caps++
				litFollows(isDigitByte, "ID")
			case segWord:
				caps++
				litFollows(isWordByte, "\\w+")
			case segNonSpace:
				caps++
				litFollows(func(c byte) bool { return !isSpaceByte(c) }, "\\S+")
			case segDigits:
				caps++
				litFollows(isDigitByte, "\\d+")
			case segDotStar:
				if k+1 >= len(segs) || segs[k+1].kind != segLit {
					bad(".* must be followed by a literal")
				}
			case segDotPlus:
				caps++
				if k+2 >= len(segs) || segs[k+1].kind != segLit || segs[k+2].kind != segEnd {
					bad("(.+) must be followed by a literal and $")
				}
			case segEnd:
				if k+1 != len(segs) {
					bad("$ must be last")
				}
			}
		}
		if caps > len(fastMatch{}.sp) {
			bad("too many captures")
		}
		if len(segs) == 0 {
			bad("empty rule")
		}
		r.anchor("", 0) // panics on unanchorable first segment
	}
	for i := range fastDaemonRules {
		check(&fastDaemonRules[i])
	}
	for i := range fastBodyRules {
		check(&fastBodyRules[i])
	}
	for i := range fastHelperRules {
		check(&fastHelperRules[i])
	}
}

func init() {
	segValidate()
	// The emit switches in parser.go index these tables by the rule
	// constants; pin the correspondence.
	for i, want := range []string{"app_summary", "app_state", "rm_container", "nm_container",
		"launch_invoked", "opp_queued", "assigned", "opp_assigned"} {
		if fastDaemonRules[i].name != want {
			panic("core: fastDaemonRules order drifted from the mining cascade")
		}
	}
	for i, want := range []string{"register", "start_allo", "end_allo", "first_task"} {
		if fastBodyRules[i].name != want {
			panic("core: fastBodyRules order drifted")
		}
	}
	for i, want := range []string{"reContainerInPath", "reNodeInPath", "reAppInLine"} {
		if fastHelperRules[i].name != want {
			panic("core: fastHelperRules order drifted")
		}
	}
}

// ruleRegex renders the rule's segments as the regex the byte matcher
// implements. For every rule this is byte-for-byte the pattern declared
// in parser.go (asserted by TestFastSpecPatternsMatchSource), and sdlint
// proves the languages coincide even if the bytes ever diverge.
func (r *fastRule) ruleRegex() string {
	var b strings.Builder
	wrap := func(body string, bare bool) {
		if bare {
			b.WriteString(body)
			return
		}
		b.WriteString("(")
		b.WriteString(body)
		b.WriteString(")")
	}
	for _, sg := range r.segs {
		switch sg.kind {
		case segLit:
			b.WriteString(regexp.QuoteMeta(sg.lit))
		case segOptLit:
			b.WriteString("(")
			b.WriteString(regexp.QuoteMeta(sg.lit))
			b.WriteString(")?")
		case segAppID:
			wrap(`application_\d+_\d+`, sg.bare)
		case segContID:
			wrap(`container_\d+_\d+_\d+_\d+`, sg.bare)
		case segWord:
			wrap(`\w+`, sg.bare)
		case segNonSpace:
			wrap(`\S+`, sg.bare)
		case segDigits:
			wrap(`\d+`, sg.bare)
		case segDotStar:
			b.WriteString(`.*`)
		case segDotPlus:
			wrap(`.+`, sg.bare)
		case segEnd:
			b.WriteString(`$`)
		case segAltLit:
			b.WriteString("(?:")
			b.WriteString(regexp.QuoteMeta(sg.lit))
			b.WriteString("|")
			b.WriteString(regexp.QuoteMeta(sg.lit2))
			b.WriteString(")")
		}
	}
	return b.String()
}

// FastRuleSpec describes one fast-path rule for the sdlint equivalence
// proof: the metric (or helper) name, the miner regex variable the rule
// replaces, and the regex generated from the same segment table the
// byte matcher executes.
type FastRuleSpec struct {
	Name     string
	RegexVar string
	Pattern  string
}

// FastPathSpec exports the full dispatch table — every daemon, container
// body, and helper rule — so sdlint's logvocab analyzer can prove each
// rule equivalent to its declared regex and the table complete against
// the vocabulary manifest.
func FastPathSpec() []FastRuleSpec {
	var out []FastRuleSpec
	for _, tbl := range [][]fastRule{fastDaemonRules, fastBodyRules, fastHelperRules} {
		for i := range tbl {
			r := &tbl[i]
			out = append(out, FastRuleSpec{Name: r.name, RegexVar: r.regexVar, Pattern: r.ruleRegex()})
		}
	}
	return out
}

// fastParseAppID parses a span the matcher already validated as
// application_\d+_\d+ without allocating; on integer overflow it falls
// back to ids.ParseAppID so the error text (and therefore the parser's
// warning) is identical to the reference implementation's.
func fastParseAppID(s string) (ids.AppID, error) {
	rest := s[len("application_"):]
	us := strings.IndexByte(rest, '_')
	cts, ok1 := parseDecimal(rest[:us])
	seq, ok2 := parseDecimal(rest[us+1:])
	if !ok1 || !ok2 {
		return ids.ParseAppID(s)
	}
	return ids.AppID{ClusterTS: cts, Seq: int(seq)}, nil
}

// fastParseContainerID is fastParseAppID for container_\d+_\d+_\d+_\d+.
func fastParseContainerID(s string) (ids.ContainerID, error) {
	rest := s[len("container_"):]
	u1 := strings.IndexByte(rest, '_')
	u2 := u1 + 1 + strings.IndexByte(rest[u1+1:], '_')
	u3 := u2 + 1 + strings.IndexByte(rest[u2+1:], '_')
	cts, ok1 := parseDecimal(rest[:u1])
	seq, ok2 := parseDecimal(rest[u1+1 : u2])
	att, ok3 := parseDecimal(rest[u2+1 : u3])
	num, ok4 := parseDecimal(rest[u3+1:])
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return ids.ParseContainerID(s)
	}
	return ids.ContainerID{
		App:     ids.AppID{ClusterTS: cts, Seq: int(seq)},
		Attempt: int(att),
		Num:     int(num),
	}, nil
}

// parseDecimal parses an all-digit string as a non-negative int64,
// reporting false on overflow (strconv's out-of-range case).
func parseDecimal(s string) (int64, bool) {
	var n int64
	for i := 0; i < len(s); i++ {
		d := int64(s[i] - '0')
		if n > (math.MaxInt64-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// fastFindContainerID finds the leftmost container ID in s (the fast
// reContainerInPath.FindString + ids.ParseContainerID). found reports a
// textual match; err is non-nil when the match overflows integer parsing.
func fastFindContainerID(s string) (cid ids.ContainerID, found bool, err error) {
	var m fastMatch
	if !fastHelperRules[ruleContainerInPath].match(s, &m) {
		return ids.ContainerID{}, false, nil
	}
	cid, err = fastParseContainerID(m.get(s, 0))
	return cid, true, err
}

// fastNodeFromPath is nodeFromPath without the regexp: the capture of
// yarn-nodemanager-(.+)\.log$ or "".
func fastNodeFromPath(name string) string {
	var m fastMatch
	if !fastHelperRules[ruleNodeInPath].match(name, &m) {
		return ""
	}
	return m.get(name, 0)
}

// fastAppInLine is the fast reAppInLine route helper: the leftmost
// application/container ID prefix in raw, parsed. ok is false when there
// is no match or the leftmost match overflows (the sharded router falls
// back to source-hash placement in both cases, exactly like the
// strconv-error path of the regex router).
func fastAppInLine(raw string) (ids.AppID, bool) {
	var m fastMatch
	if !fastHelperRules[ruleAppInLine].match(raw, &m) {
		return ids.AppID{}, false
	}
	cts, ok1 := parseDecimal(m.get(raw, 0))
	seq, ok2 := parseDecimal(m.get(raw, 1))
	if !ok1 || !ok2 {
		return ids.AppID{}, false
	}
	return ids.AppID{ClusterTS: cts, Seq: int(seq)}, true
}

// maxLineBytes is bufio.Scanner's token cap as configured by the file
// parsers: a line of this many bytes or more is a scan error.
const maxLineBytes = 4 * 1024 * 1024

// segmentIter splits a raw feed exactly like parseDaemonLog's
// bufio.Scanner would: on '\n', one trailing '\r' dropped per segment,
// no final empty segment after a trailing newline, and a segment of
// maxLineBytes or more (measured before the '\r' drop, like the
// scanner's buffered token) is the ErrTooLong case.
type segmentIter struct {
	raw   string
	start int
}

func (it *segmentIter) next() (seg string, ok, tooLong bool) {
	if it.start > len(it.raw) {
		return "", false, false
	}
	nl := strings.IndexByte(it.raw[it.start:], '\n')
	if nl < 0 {
		if it.start == len(it.raw) {
			it.start++
			return "", false, false
		}
		seg = it.raw[it.start:]
		it.start = len(it.raw) + 1
	} else {
		seg = it.raw[it.start : it.start+nl]
		it.start += nl + 1
	}
	if len(seg) >= maxLineBytes {
		return "", false, true
	}
	if len(seg) > 0 && seg[len(seg)-1] == '\r' {
		seg = seg[:len(seg)-1]
	}
	return seg, true, false
}

// feedDaemonSegments is parseDaemonLog for an in-memory feed on the
// fast matcher: no reader, no scanner buffer, no allocations on
// non-matching lines. It reports false where the scanner would have
// returned an error.
func (p *Parser) feedDaemonSegments(source, raw string) bool {
	for it := (segmentIter{raw: raw}); ; {
		seg, ok, tooLong := it.next()
		if tooLong {
			return false
		}
		if !ok {
			return true
		}
		p.lines++
		line, lok := log4j.ParseLineFast(seg)
		if !lok {
			continue
		}
		p.countLine()
		p.mineDaemonLineFast(source, line)
	}
}

// feedContainerSegments is parseContainerLog for an in-memory feed on
// the fast matcher. On the scanner-error equivalent it truncates the
// events it appended, like the buffered path does.
func (p *Parser) feedContainerSegments(source string, cid ids.ContainerID, raw string) bool {
	cs := p.beginContainerScan()
	for it := (segmentIter{raw: raw}); ; {
		seg, ok, tooLong := it.next()
		if tooLong {
			p.events = p.events[:cs.bodyStart]
			return false
		}
		if !ok {
			break
		}
		p.lines++
		cs.line(p, source, cid, seg, false)
	}
	cs.finish(p, source, cid)
	return true
}
