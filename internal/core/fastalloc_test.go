//go:build !race

package core

import (
	"testing"

	"repro/internal/log4j"
)

// Allocation regression tests for the byte-level hot path. The central
// claim — the reason the fast matcher exists — is that scanning a line
// that matches no vocabulary rule costs zero heap allocations: no
// regexp machine, no error values, no submatch slices. Excluded under
// -race because the detector's instrumentation perturbs the counts.

// TestFastPathZeroAllocNonMatching pins the zero-allocation contract at
// every layer: the daemon-line miner, the container body matcher, and
// the whole Stream.Feed path, on parseable-but-unmined and on garbage
// lines alike.
func TestFastPathZeroAllocNonMatching(t *testing.T) {
	restore := UseReferenceMatcher(false)
	defer restore()

	line := log4j.Line{
		TimeMS:  1499000000123,
		Level:   log4j.Info,
		Class:   "org.apache.hadoop.ipc.Server",
		Message: "IPC Server handler 12 on 8030, call heartbeat from 10.0.0.7",
	}
	p := NewParser()
	if got := testing.AllocsPerRun(1000, func() {
		p.mineDaemonLineFast("hadoop/yarn-resourcemanager.log", line)
	}); got != 0 {
		t.Errorf("mineDaemonLineFast on a non-vocabulary line: %v allocs/op, want 0", got)
	}

	cases := map[string]string{
		"stamped non-vocabulary": line.Format(),
		"garbage no stamp":       "\tat org.apache.hadoop.ipc.Client$Connection.run(Client.java:891)",
		"empty":                  "",
	}
	for name, raw := range cases {
		st := NewStream()
		st.Feed("hadoop/yarn-resourcemanager.log", raw) // warm the scratch parser
		if got := testing.AllocsPerRun(1000, func() {
			st.Feed("hadoop/yarn-resourcemanager.log", raw)
		}); got != 0 {
			t.Errorf("Stream.Feed(%s): %v allocs/op, want 0", name, got)
		}
	}

	// Container stderr body lines after the first (FIRST_LOG already
	// deduplicated) that hit no body rule.
	st := NewStream()
	src := "userlogs/application_1499000000000_0001/container_1499000000000_0001_01_000001/stderr"
	body := log4j.Line{
		TimeMS:  1499000000200,
		Level:   log4j.Info,
		Class:   "org.apache.spark.executor.Executor",
		Message: "Finished task 3.0 in stage 1.0 (TID 7) in 212 ms",
	}.Format()
	st.Feed(src, body)
	if got := testing.AllocsPerRun(1000, func() {
		st.Feed(src, body)
	}); got != 0 {
		t.Errorf("Stream.Feed(container body): %v allocs/op, want 0", got)
	}
}

// TestFastPathAllocBudgetMatching bounds the cost of lines that DO mine
// an event. Matching lines legitimately allocate (the event is absorbed
// into per-application state), but the budget must stay fixed and small
// — a regression here means the hot path regrew per-line garbage.
func TestFastPathAllocBudgetMatching(t *testing.T) {
	restore := UseReferenceMatcher(false)
	defer restore()

	raw := log4j.Line{
		TimeMS:  1499000000123,
		Level:   log4j.Info,
		Class:   "org.apache.hadoop.yarn.server.resourcemanager.rmcontainer.RMContainerImpl",
		Message: "container_1499000000000_0001_01_000002 Container Transitioned from ALLOCATED to ACQUIRED",
	}.Format()
	measure := func(ref bool) float64 {
		restore := UseReferenceMatcher(ref)
		defer restore()
		st := NewStream()
		st.Feed("hadoop/yarn-resourcemanager.log", raw)
		return testing.AllocsPerRun(500, func() {
			st.Feed("hadoop/yarn-resourcemanager.log", raw)
		})
	}
	fast, ref := measure(false), measure(true)
	// The absorb machinery (per-app event tracking) dominates both; the
	// matcher itself must contribute nothing on top — the fast path may
	// never allocate more than the reference, and the absolute budget
	// (measured 36 vs 43 at introduction) must not creep.
	if fast > ref {
		t.Errorf("fast matcher allocates more than the regex reference on a matching line: %v > %v allocs/op", fast, ref)
	}
	const budget = 40.0
	if fast > budget {
		t.Errorf("Stream.Feed(matching line): %v allocs/op, budget %v", fast, budget)
	}
}
