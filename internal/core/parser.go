package core

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync/atomic"

	"repro/internal/ids"
	"repro/internal/log4j"
	"repro/internal/metrics"
)

// matcherRef selects the regexp reference implementation for the mining
// hot path; the default (false) is the byte-level matcher in fastpath.go.
// Each file scan or stream feed loads the flag once, so a concurrent
// toggle never mixes implementations within one line — and since both
// implementations are proven to produce identical output (sdlint
// language equivalence, differential fuzzing, DiffOracle byte-diffs),
// the toggle is observable only through timing and allocation behavior.
var matcherRef atomic.Bool

// UseReferenceMatcher switches the miner between the byte-level fast
// path (false, the default) and the retained regexp implementation
// (true), returning a func that restores the previous setting. It exists
// for differential tests and before/after benchmarks.
func UseReferenceMatcher(on bool) (restore func()) {
	prev := matcherRef.Swap(on)
	return func() { matcherRef.Store(prev) }
}

func referenceMatcher() bool { return matcherRef.Load() }

// Parser mines scheduling-related events from log files. Feed it any
// number of files (daemon logs and per-container stderr files) in any
// order, then hand Events() to the Correlator.
type Parser struct {
	events []Event
	warns  warnSet
	files  int
	lines  int
	met    *parserMetrics

	// cloneMined is set while mining lines sliced from a whole-file
	// blob: the fast miner then clones each matching line so emitted
	// events do not pin the blob. Streams feed caller-owned line
	// strings and leave it false.
	cloneMined bool
}

// maxDistinctWarnings bounds the warning set: corrupted inputs can
// produce one unique warning per garbage line, which must not exhaust
// memory in -follow/-serve modes. Beyond the cap only a suppression
// counter grows.
const maxDistinctWarnings = 256

// warnSet deduplicates warnings, keeping a repeat count per message and
// a count of messages dropped once the distinct cap is hit.
type warnSet struct {
	order      []string
	count      map[string]int
	suppressed int
}

func (w *warnSet) add(msg string) {
	if w.count == nil {
		w.count = make(map[string]int)
	}
	if n, ok := w.count[msg]; ok {
		w.count[msg] = n + 1
		return
	}
	if len(w.order) >= maxDistinctWarnings {
		w.suppressed++
		return
	}
	w.order = append(w.order, msg)
	w.count[msg] = 1
}

// absorb replays another set's occurrences into w in their original
// order, so merging per-file warn sets file by file reproduces what one
// serial parser over the same files would have kept. The only divergence
// is a single file with more than maxDistinctWarnings distinct messages:
// its own overflow was already collapsed into a suppression count, which
// carries over as-is (display-only; reports never serialize warnings).
func (w *warnSet) absorb(o *warnSet) {
	for _, msg := range o.order {
		for i := o.count[msg]; i > 0; i-- {
			w.add(msg)
		}
	}
	w.suppressed += o.suppressed
}

// render flattens the set back to display strings, annotating repeats
// and the suppressed overflow.
func (w *warnSet) render() []string {
	if len(w.order) == 0 {
		return nil
	}
	out := make([]string, 0, len(w.order)+1)
	for _, msg := range w.order {
		if n := w.count[msg]; n > 1 {
			out = append(out, fmt.Sprintf("%s (x%d)", msg, n))
		} else {
			out = append(out, msg)
		}
	}
	if w.suppressed > 0 {
		out = append(out, fmt.Sprintf("... %d further distinct warnings suppressed", w.suppressed))
	}
	return out
}

// regexNames enumerates the extraction regexes for per-regex hit
// counters; the names are the `regex` label values on
// core_parser_hits_total.
var regexNames = []string{
	"app_summary", "app_state", "rm_container", "nm_container",
	"launch_invoked", "opp_queued", "register", "start_allo", "end_allo",
	"first_task", "first_log", "assigned", "opp_assigned",
}

// parserMetrics are the parser's observability hooks (shared across the
// throwaway parsers a Stream creates per line).
type parserMetrics struct {
	lines *metrics.Counter            // log4j-parseable lines consumed
	hits  map[string]*metrics.Counter // per-regex match counts
}

func newParserMetrics(reg *metrics.Registry) *parserMetrics {
	if reg == nil {
		return nil
	}
	pm := &parserMetrics{
		lines: reg.Counter("core_parser_lines_total"),
		hits:  make(map[string]*metrics.Counter, len(regexNames)),
	}
	for _, n := range regexNames {
		pm.hits[n] = reg.Counter("core_parser_hits_total", "regex", n)
	}
	return pm
}

// Instrument registers the parser's line and per-regex hit counters in
// reg. A nil registry is a no-op.
func (p *Parser) Instrument(reg *metrics.Registry) {
	p.met = newParserMetrics(reg)
}

// hit counts one match of the named extraction regex.
func (p *Parser) hit(re string) {
	if p.met != nil {
		p.met.hits[re].Inc()
	}
}

// countLine counts one successfully parsed log4j line.
func (p *Parser) countLine() {
	if p.met != nil {
		p.met.lines.Inc()
	}
}

// The extraction regexes (§III-A: "parse the logs to extract scheduling
// related messages using regular expression").
var (
	reAppState = regexp.MustCompile(`(application_\d+_\d+) State change from (\w+) to (\w+) on event = (\w+)`)
	reRMCont   = regexp.MustCompile(`(container_\d+_\d+_\d+_\d+) Container Transitioned from (\w+) to (\w+)`)
	reNMCont   = regexp.MustCompile(`Container (container_\d+_\d+_\d+_\d+) transitioned from (\w+) to (\w+)`)
	reInvoke   = regexp.MustCompile(`Invoking launch script for container (container_\d+_\d+_\d+_\d+)`)
	reOppQueue = regexp.MustCompile(`Opportunistic container (container_\d+_\d+_\d+_\d+) queued`)

	reRegister  = regexp.MustCompile(`Registered with (the )?ResourceManager`)
	reStartAllo = regexp.MustCompile(`SDCHECKER START_ALLO`)
	reEndAllo   = regexp.MustCompile(`SDCHECKER END_ALLO`)
	reFirstTask = regexp.MustCompile(`Got assigned task (\d+)`)

	reContainerInPath = regexp.MustCompile(`container_\d+_\d+_\d+_\d+`)
	// reNodeInPath recovers the NodeManager host from its daemon log file
	// name (yarn.NodeManager writes hadoop/yarn-nodemanager-<node>.log).
	reNodeInPath = regexp.MustCompile(`yarn-nodemanager-(.+)\.log$`)

	reAppSummary = regexp.MustCompile(`Application (application_\d+_\d+) submitted: name=(\S+) type=(\S+) queue=(\S+)`)
	// reAssigned mines the scheduler's container-to-host binding, the only
	// RM-side source of per-node attribution.
	reAssigned = regexp.MustCompile(`Assigned container (container_\d+_\d+_\d+_\d+) .*on host (\S+)`)
	// reOppAssigned mines the same binding for opportunistic containers,
	// which the distributed allocator announces with its own phrasing.
	reOppAssigned = regexp.MustCompile(`Allocated opportunistic container (container_\d+_\d+_\d+_\d+) on host (\S+)`)
)

// NewParser returns an empty parser.
func NewParser() *Parser {
	return &Parser{}
}

// Warnings returns non-fatal anomalies found while parsing, deduplicated
// (repeats annotated "(xN)") and capped so arbitrary garbage input cannot
// grow them without bound.
func (p *Parser) Warnings() []string { return p.warns.render() }

// Stats returns (files, lines) consumed so far.
func (p *Parser) Stats() (files, lines int) { return p.files, p.lines }

// Events returns all mined events (unsorted; the Correlator orders them).
func (p *Parser) Events() []Event { return p.events }

func (p *Parser) warnf(format string, args ...any) {
	p.warns.add(fmt.Sprintf(format, args...))
}

// ParseReader consumes one log file. name should be the file's path: when
// it contains a container ID (userlogs/<app>/<container>/stderr), the file
// is treated as a container log and its first parseable line becomes the
// FIRST_LOG event of Table I.
func (p *Parser) ParseReader(name string, r io.Reader) error {
	p.files++
	if referenceMatcher() {
		if cidStr := reContainerInPath.FindString(name); cidStr != "" {
			cid, err := ids.ParseContainerID(cidStr)
			if err != nil {
				return fmt.Errorf("core: %s: %w", name, err)
			}
			return p.parseContainerLog(name, cid, r)
		}
		return p.parseDaemonLog(name, r)
	}
	if cid, found, err := fastFindContainerID(name); found {
		if err != nil {
			return fmt.Errorf("core: %s: %w", name, err)
		}
		return p.parseContainerLog(name, cid, r)
	}
	return p.parseDaemonLog(name, r)
}

// ParseSink consumes every file of an in-memory sink.
func (p *Parser) ParseSink(s *log4j.Sink) error {
	for _, f := range s.Files() {
		if err := p.ParseReader(f, s.Reader(f)); err != nil {
			return err
		}
	}
	return nil
}

// ParseDir walks a log directory tree (as written by Sink.WriteDir or
// collected from a real cluster) and consumes every regular file.
func (p *Parser) ParseDir(dir string) error {
	return filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			rel = path
		}
		return p.ParseReader(filepath.ToSlash(rel), f)
	})
}

// parseDaemonLog mines RM/NM logs: app state changes, container
// transitions on both sides, launch invocations, opportunistic queueing.
func (p *Parser) parseDaemonLog(name string, r io.Reader) error {
	if referenceMatcher() {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			p.lines++
			line, err := log4j.ParseLine(sc.Text())
			if err != nil {
				continue // stack traces / malformed lines are skipped
			}
			p.countLine()
			p.mineDaemonLineRegex(name, line)
		}
		return sc.Err()
	}
	// Fast path: read the file once and walk it with the zero-copy
	// segment iterator — the scanner's per-line Text() copy was the last
	// allocation left on non-matching lines. Equivalence with the scanner
	// holds on errors too: bufio splits whatever it buffered (including a
	// partial tail) with atEOF=true once the reader errors, which is
	// exactly a segment walk over the bytes the copy gathered; and a
	// segment at the 4 MiB buffer cap surfaces as the scanner's
	// ErrTooLong before any read error, matching the buffer-full case.
	var bw blobWriter
	if l, ok := r.(interface{ Len() int }); ok {
		bw.hint = l.Len() // sized reader on the chunked path: grow once
	}
	_, rerr := io.Copy(&bw, r)
	// Mined strings would otherwise be slices of the whole-file blob;
	// have the miner clone the matched line out (one copy per matching
	// line, nothing on the others) so events never pin the file.
	p.cloneMined = true
	defer func() { p.cloneMined = false }()
	it := segmentIter{raw: bw.String()}
	for {
		seg, ok, tooLong := it.next()
		if tooLong {
			return bufio.ErrTooLong
		}
		if !ok {
			break
		}
		p.lines++
		line, lok := log4j.ParseLineFast(seg)
		if !lok {
			continue
		}
		p.countLine()
		p.mineDaemonLineFast(name, line)
	}
	return rerr
}

// blobWriter accumulates a reader's contents as one string, taking the
// backing string wholesale — no copy, no allocation — when the source
// hands it over in a single WriteString (strings.Reader.WriteTo, and so
// Sink.Reader, does exactly that under io.Copy). Any other reader
// drains through the builder in chunks, growing once to the size hint
// when one is known.
type blobWriter struct {
	direct string          // whole-string handover, if it happened
	hint   int             // size hint, applied on first chunked write
	b      strings.Builder // chunked fallback
}

func (w *blobWriter) spill() {
	if w.hint > 0 {
		w.b.Grow(w.hint)
		w.hint = 0
	}
	if w.direct != "" {
		s := w.direct
		w.direct = ""
		w.b.WriteString(s)
	}
}

func (w *blobWriter) WriteString(s string) (int, error) {
	if w.direct == "" && w.b.Len() == 0 {
		w.direct = s
		return len(s), nil
	}
	w.spill()
	return w.b.WriteString(s)
}

func (w *blobWriter) Write(p []byte) (int, error) {
	w.spill()
	return w.b.Write(p)
}

func (w *blobWriter) String() string {
	if w.direct != "" {
		return w.direct
	}
	return w.b.String()
}

// mineDaemonLineFast is mineDaemonLineRegex on the byte-level rule
// tables: same cascade order, same hit counters, same emitted events.
func (p *Parser) mineDaemonLineFast(name string, line log4j.Line) {
	msg := line.Message
	if fastDaemonPrescreenOK && strings.IndexByte(msg, fastDaemonPrescreen) < 0 {
		return // no rule's mandatory literals fit: cannot match
	}
	var m fastMatch
	for ri := range fastDaemonRules {
		r := &fastDaemonRules[ri]
		if !r.match(msg, &m) {
			continue
		}
		if p.cloneMined {
			// Capture spans are offsets, so they survive the clone; every
			// extracted field below then shares the clone's backing array
			// instead of pinning the blob msg was sliced from.
			msg = strings.Clone(msg)
			line.Class = strings.Clone(line.Class)
		}
		p.hit(r.name)
		switch ri {
		case ruleAppSummary:
			app, err := fastParseAppID(m.get(msg, 0))
			if err != nil {
				p.warnf("%s: %v", name, err)
				return
			}
			p.emit(Event{Kind: AppSubmitted0, TimeMS: line.TimeMS, App: app, Source: name, Class: line.Class,
				Raw: msg, Name: m.get(msg, 1), AppType: m.get(msg, 2), Queue: m.get(msg, 3)})
		case ruleAppState:
			app, err := fastParseAppID(m.get(msg, 0))
			if err != nil {
				p.warnf("%s: %v", name, err)
				return
			}
			var kind Kind
			switch {
			case m.get(msg, 3) == "ATTEMPT_REGISTERED":
				kind = AttemptRegistered
			case m.get(msg, 2) == "SUBMITTED":
				kind = AppSubmitted
			case m.get(msg, 2) == "ACCEPTED":
				kind = AppAccepted
			case m.get(msg, 2) == "FINISHED":
				kind = AppFinished
			default:
				return // other transitions are not scheduling-relevant
			}
			p.emit(Event{Kind: kind, TimeMS: line.TimeMS, App: app, Source: name, Class: line.Class, Raw: msg})
		case ruleRMContainer:
			cid, err := fastParseContainerID(m.get(msg, 0))
			if err != nil {
				p.warnf("%s: %v", name, err)
				return
			}
			var kind Kind
			switch m.get(msg, 2) {
			case "ALLOCATED":
				kind = ContAllocated
			case "ACQUIRED":
				kind = ContAcquired
			case "RELEASED":
				kind = ContReleased
			case "KILLED":
				kind = ContLost
			default:
				return
			}
			p.emit(Event{Kind: kind, TimeMS: line.TimeMS, App: cid.App, Container: cid, Source: name, Class: line.Class, Raw: msg})
		case ruleNMContainer:
			cid, err := fastParseContainerID(m.get(msg, 0))
			if err != nil {
				p.warnf("%s: %v", name, err)
				return
			}
			var kind Kind
			switch m.get(msg, 2) {
			case "LOCALIZING":
				kind = ContLocalizing
			case "SCHEDULED":
				kind = ContScheduled
			case "RUNNING":
				kind = ContRunning
			case "EXITED_WITH_SUCCESS":
				kind = ContExited
			default:
				return
			}
			p.emit(Event{Kind: kind, TimeMS: line.TimeMS, App: cid.App, Container: cid, Source: name, Class: line.Class, Raw: msg, Node: fastNodeFromPath(name)})
		case ruleLaunchInvoked:
			if cid, err := fastParseContainerID(m.get(msg, 0)); err == nil {
				p.emit(Event{Kind: LaunchInvoked, TimeMS: line.TimeMS, App: cid.App, Container: cid, Source: name, Class: line.Class, Raw: msg, Node: fastNodeFromPath(name)})
			}
		case ruleOppQueued:
			if cid, err := fastParseContainerID(m.get(msg, 0)); err == nil {
				p.emit(Event{Kind: OppQueued, TimeMS: line.TimeMS, App: cid.App, Container: cid, Source: name, Class: line.Class, Raw: msg, Node: fastNodeFromPath(name)})
			}
		case ruleAssigned, ruleOppAssigned:
			if cid, err := fastParseContainerID(m.get(msg, 0)); err == nil {
				p.emit(Event{Kind: ContAssigned, TimeMS: line.TimeMS, App: cid.App, Container: cid, Source: name, Class: line.Class, Raw: msg, Node: m.get(msg, 1)})
			}
		}
		return
	}
}

// nodeFromPath derives the NodeManager host from a daemon log path, or
// "" for RM/other logs.
func nodeFromPath(name string) string {
	if m := reNodeInPath.FindStringSubmatch(name); m != nil {
		return m[1]
	}
	return ""
}

// mineDaemonLineRegex is the retained regexp reference implementation
// (§III-A's literal "parse the logs … using regular expression"); the
// byte-level twin above must stay observably identical to it.
func (p *Parser) mineDaemonLineRegex(name string, line log4j.Line) {
	msg := line.Message
	if m := reAppSummary.FindStringSubmatch(msg); m != nil {
		p.hit("app_summary")
		app, err := ids.ParseAppID(m[1])
		if err != nil {
			p.warnf("%s: %v", name, err)
			return
		}
		p.emit(Event{Kind: AppSubmitted0, TimeMS: line.TimeMS, App: app, Source: name, Class: line.Class,
			Raw: msg, Name: m[2], AppType: m[3], Queue: m[4]})
		return
	}
	if m := reAppState.FindStringSubmatch(msg); m != nil {
		p.hit("app_state")
		app, err := ids.ParseAppID(m[1])
		if err != nil {
			p.warnf("%s: %v", name, err)
			return
		}
		var kind Kind
		switch {
		case m[4] == "ATTEMPT_REGISTERED":
			kind = AttemptRegistered
		case m[3] == "SUBMITTED":
			kind = AppSubmitted
		case m[3] == "ACCEPTED":
			kind = AppAccepted
		case m[3] == "FINISHED":
			kind = AppFinished
		default:
			return // other transitions are not scheduling-relevant
		}
		p.emit(Event{Kind: kind, TimeMS: line.TimeMS, App: app, Source: name, Class: line.Class, Raw: msg})
		return
	}
	if m := reRMCont.FindStringSubmatch(msg); m != nil {
		p.hit("rm_container")
		cid, err := ids.ParseContainerID(m[1])
		if err != nil {
			p.warnf("%s: %v", name, err)
			return
		}
		var kind Kind
		switch m[3] {
		case "ALLOCATED":
			kind = ContAllocated
		case "ACQUIRED":
			kind = ContAcquired
		case "RELEASED":
			kind = ContReleased
		case "KILLED":
			kind = ContLost
		default:
			return
		}
		p.emit(Event{Kind: kind, TimeMS: line.TimeMS, App: cid.App, Container: cid, Source: name, Class: line.Class, Raw: msg})
		return
	}
	if m := reNMCont.FindStringSubmatch(msg); m != nil {
		p.hit("nm_container")
		cid, err := ids.ParseContainerID(m[1])
		if err != nil {
			p.warnf("%s: %v", name, err)
			return
		}
		var kind Kind
		switch m[3] {
		case "LOCALIZING":
			kind = ContLocalizing
		case "SCHEDULED":
			kind = ContScheduled
		case "RUNNING":
			kind = ContRunning
		case "EXITED_WITH_SUCCESS":
			kind = ContExited
		default:
			return
		}
		p.emit(Event{Kind: kind, TimeMS: line.TimeMS, App: cid.App, Container: cid, Source: name, Class: line.Class, Raw: msg, Node: nodeFromPath(name)})
		return
	}
	if m := reInvoke.FindStringSubmatch(msg); m != nil {
		p.hit("launch_invoked")
		if cid, err := ids.ParseContainerID(m[1]); err == nil {
			p.emit(Event{Kind: LaunchInvoked, TimeMS: line.TimeMS, App: cid.App, Container: cid, Source: name, Class: line.Class, Raw: msg, Node: nodeFromPath(name)})
		}
		return
	}
	if m := reOppQueue.FindStringSubmatch(msg); m != nil {
		p.hit("opp_queued")
		if cid, err := ids.ParseContainerID(m[1]); err == nil {
			p.emit(Event{Kind: OppQueued, TimeMS: line.TimeMS, App: cid.App, Container: cid, Source: name, Class: line.Class, Raw: msg, Node: nodeFromPath(name)})
		}
		return
	}
	if m := reAssigned.FindStringSubmatch(msg); m != nil {
		p.hit("assigned")
		if cid, err := ids.ParseContainerID(m[1]); err == nil {
			p.emit(Event{Kind: ContAssigned, TimeMS: line.TimeMS, App: cid.App, Container: cid, Source: name, Class: line.Class, Raw: msg, Node: m[2]})
		}
		return
	}
	if m := reOppAssigned.FindStringSubmatch(msg); m != nil {
		p.hit("opp_assigned")
		if cid, err := ids.ParseContainerID(m[1]); err == nil {
			p.emit(Event{Kind: ContAssigned, TimeMS: line.TimeMS, App: cid.App, Container: cid, Source: name, Class: line.Class, Raw: msg, Node: m[2]})
		}
	}
}

// containerScan carries one container-log scan's state. It is shared by
// the buffered (ParseReader) path and the single-line stream feeds, and
// by both matcher implementations. Body events append directly to
// p.events past bodyStart; finish inserts the FIRST_LOG event in front
// of them, reproducing the reference ordering.
type containerScan struct {
	bodyStart   int
	instance    InstanceType
	firstLine   log4j.Line
	hasFirst    bool
	sawFirstTsk bool
}

func (p *Parser) beginContainerScan() containerScan {
	return containerScan{bodyStart: len(p.events), instance: InstUnknown}
}

// line consumes one raw container-log line under the selected matcher.
func (cs *containerScan) line(p *Parser, name string, cid ids.ContainerID, raw string, ref bool) {
	var line log4j.Line
	if ref {
		l, err := log4j.ParseLine(raw)
		if err != nil {
			return
		}
		line = l
	} else {
		l, ok := log4j.ParseLineFast(raw)
		if !ok {
			return
		}
		line = l
	}
	p.countLine()
	if !cs.hasFirst {
		cs.firstLine, cs.hasFirst = line, true
	}
	// Instance classification from logging classes and message shape.
	switch {
	case strings.Contains(line.Class, "CoarseGrainedExecutorBackend"):
		cs.instance = InstSparkExecutor
	case strings.Contains(line.Class, "deploy.yarn.ApplicationMaster"):
		if cs.instance == InstUnknown {
			cs.instance = InstSparkDriver
		}
	case strings.Contains(line.Class, "MRAppMaster"):
		cs.instance = InstMRMaster
	case strings.Contains(line.Class, "YarnChild"):
		if strings.Contains(line.Message, "Starting MAP") {
			cs.instance = InstMRMap
		} else if strings.Contains(line.Message, "Starting REDUCE") {
			cs.instance = InstMRReduce
		}
	}
	var kind Kind
	switch {
	case matchBody(ruleRegister, line.Message, ref) && strings.Contains(line.Class, "deploy.yarn.ApplicationMaster"):
		p.hit("register")
		kind = DriverRegister
	case matchBody(ruleStartAllo, line.Message, ref):
		p.hit("start_allo")
		kind = StartAllo
	case matchBody(ruleEndAllo, line.Message, ref):
		p.hit("end_allo")
		kind = EndAllo
	case !cs.sawFirstTsk && matchBody(ruleFirstTask, line.Message, ref):
		cs.sawFirstTsk = true
		p.hit("first_task")
		kind = FirstTask
	default:
		return
	}
	p.emit(Event{Kind: kind, TimeMS: line.TimeMS, App: cid.App, Container: cid, Source: name, Class: line.Class, Raw: line.Message})
}

func matchBody(rule int, msg string, ref bool) bool {
	if !ref {
		return fastBodyRules[rule].contains(msg)
	}
	switch rule {
	case ruleRegister:
		return reRegister.MatchString(msg)
	case ruleStartAllo:
		return reStartAllo.MatchString(msg)
	case ruleEndAllo:
		return reEndAllo.MatchString(msg)
	default:
		return reFirstTask.MatchString(msg)
	}
}

// finish emits the FIRST_LOG event (Table I rows 9/13) in front of the
// body events the scan appended, or the no-parseable-lines warning.
func (cs *containerScan) finish(p *Parser, name string, cid ids.ContainerID) {
	if !cs.hasFirst {
		p.warnf("%s: container log has no parseable lines", name)
		return
	}
	p.hit("first_log")
	flKind := TaskFirstLog
	switch cs.instance {
	case InstSparkDriver:
		flKind = DriverFirstLog
	case InstSparkExecutor:
		flKind = ExecutorFirstLog
	}
	ev := Event{Kind: flKind, TimeMS: cs.firstLine.TimeMS, App: cid.App, Container: cid, Source: name, Class: cs.firstLine.Class, Raw: cs.firstLine.Message, Instance: cs.instance}
	p.events = append(p.events, Event{})
	copy(p.events[cs.bodyStart+1:], p.events[cs.bodyStart:len(p.events)-1])
	p.events[cs.bodyStart] = ev
}

// parseContainerLog mines one container's stderr: the first parseable
// line is FIRST_LOG; Spark driver/executor markers and the instance type
// come from the body.
func (p *Parser) parseContainerLog(name string, cid ids.ContainerID, r io.Reader) error {
	ref := referenceMatcher()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	cs := p.beginContainerScan()
	for sc.Scan() {
		p.lines++
		cs.line(p, name, cid, sc.Text(), ref)
	}
	if err := sc.Err(); err != nil {
		p.events = p.events[:cs.bodyStart] // a failed scan yields no events
		return err
	}
	cs.finish(p, name, cid)
	return nil
}

func (p *Parser) emit(e Event) {
	p.events = append(p.events, e)
}
