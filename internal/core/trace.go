package core

import (
	"sort"

	"repro/internal/ids"
)

// ContainerTrace is the time-ordered scheduling history of one container,
// assembled from events that arrived in RM, NM, and container logs. All
// timestamps are epoch milliseconds; 0 means the event was not observed.
type ContainerTrace struct {
	ID       ids.ContainerID
	Instance InstanceType
	// Node is the host the container was bound to, mined from the
	// scheduler's ASSIGNED line or the NodeManager log the container's
	// NM-side transitions appeared in ("" when neither was collected).
	Node string

	Allocated     int64 // RMContainerImpl -> ALLOCATED  (msg 4)
	Acquired      int64 // RMContainerImpl -> ACQUIRED   (msg 5)
	Localizing    int64 // ContainerImpl   -> LOCALIZING (msg 6)
	Scheduled     int64 // ContainerImpl   -> SCHEDULED  (msg 7)
	LaunchInvoked int64 // launch script invocation (extension)
	Running       int64 // ContainerImpl   -> RUNNING    (msg 8)
	FirstLog      int64 // first stderr line (msgs 9/13)
	FirstTask     int64 // first task assignment (msg 14)
	Exited        int64
	Released      int64
	OppQueuedAt   int64 // opportunistic queueing observed
	Lost          int64 // RMContainerImpl -> KILLED (node lost)

	Events []Event
}

// IsAM reports whether this container hosted the ApplicationMaster.
// Container number 1 is YARN's convention, but when an AM container fails
// and the RM retries in a fresh container, the retry carries a higher
// number — so the instance classification mined from the container's own
// log takes precedence.
func (c *ContainerTrace) IsAM() bool {
	switch c.Instance {
	case InstSparkDriver, InstMRMaster:
		return true
	case InstSparkExecutor, InstMRMap, InstMRReduce:
		return false
	}
	return c.ID.IsAM()
}

// AppTrace is one application's assembled scheduling history.
type AppTrace struct {
	ID ids.AppID
	// Name, AppType and Queue come from the RM's submission summary line
	// (empty when that line was not collected).
	Name, AppType, Queue string

	Submitted      int64 // RMAppImpl -> SUBMITTED (msg 1)
	Accepted       int64 // RMAppImpl -> ACCEPTED  (msg 2)
	Registered     int64 // ATTEMPT_REGISTERED     (msg 3)
	Finished       int64 // RMAppImpl -> FINISHED  (extension)
	DriverRegister int64 // Spark driver REGISTER  (msg 10)
	StartAllo      int64 // msg 11
	EndAllo        int64 // msg 12

	Containers []*ContainerTrace // ordered by container number
	Events     []Event           // every event of the app, time-ordered

	Decomp *Decomposition // filled by Decompose

	byCID map[ids.ContainerID]*ContainerTrace
}

// Container returns the trace for cid, or nil.
func (a *AppTrace) Container(cid ids.ContainerID) *ContainerTrace {
	return a.byCID[cid]
}

// AMContainer returns the ApplicationMaster container trace, or nil.
// When an AM retry produced several AM-classified containers, the one
// that actually came up (has a first log) wins.
func (a *AppTrace) AMContainer() *ContainerTrace {
	var fallback *ContainerTrace
	for _, c := range a.Containers {
		if !c.IsAM() {
			continue
		}
		if c.FirstLog != 0 {
			return c
		}
		if fallback == nil {
			fallback = c
		}
	}
	return fallback
}

// Executors returns the Spark executor container traces.
func (a *AppTrace) Executors() []*ContainerTrace {
	var out []*ContainerTrace
	for _, c := range a.Containers {
		if c.Instance == InstSparkExecutor {
			out = append(out, c)
		}
	}
	return out
}

// WorkerContainers returns every non-AM container (executors, MR tasks,
// and containers that never launched anything).
func (a *AppTrace) WorkerContainers() []*ContainerTrace {
	var out []*ContainerTrace
	for _, c := range a.Containers {
		if !c.IsAM() {
			out = append(out, c)
		}
	}
	return out
}

// Correlate groups mined events by application and container ID, orders
// them by timestamp, and returns one AppTrace per application sorted by
// submission sequence (§III-C: "binds each log event with its
// corresponding global ID ... aggregates and groups state transformations
// based on the IDs").
func Correlate(events []Event) []*AppTrace {
	apps := make(map[ids.AppID]*AppTrace)
	get := func(id ids.AppID) *AppTrace {
		a := apps[id]
		if a == nil {
			a = &AppTrace{ID: id, byCID: make(map[ids.ContainerID]*ContainerTrace)}
			apps[id] = a
		}
		return a
	}
	getC := func(a *AppTrace, cid ids.ContainerID) *ContainerTrace {
		c := a.byCID[cid]
		if c == nil {
			c = &ContainerTrace{ID: cid}
			a.byCID[cid] = c
			a.Containers = append(a.Containers, c)
		}
		return c
	}

	// Events can arrive in any order across files; sort first so "first
	// occurrence wins" rules below are well-defined.
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].TimeMS < sorted[j].TimeMS })

	setOnce := func(dst *int64, v int64) {
		if *dst == 0 {
			*dst = v
		}
	}

	for _, e := range sorted {
		a := get(e.App)
		a.Events = append(a.Events, e)
		if e.Container.IsZero() {
			switch e.Kind {
			case AppSubmitted0:
				if a.Name == "" {
					a.Name, a.AppType, a.Queue = e.Name, e.AppType, e.Queue
				}
			case AppSubmitted:
				setOnce(&a.Submitted, e.TimeMS)
			case AppAccepted:
				setOnce(&a.Accepted, e.TimeMS)
			case AttemptRegistered:
				setOnce(&a.Registered, e.TimeMS)
			case AppFinished:
				setOnce(&a.Finished, e.TimeMS)
			}
			continue
		}
		c := getC(a, e.Container)
		c.Events = append(c.Events, e)
		if c.Node == "" && e.Node != "" {
			c.Node = e.Node
		}
		switch e.Kind {
		case ContAllocated:
			setOnce(&c.Allocated, e.TimeMS)
		case ContAcquired:
			setOnce(&c.Acquired, e.TimeMS)
		case ContLocalizing:
			setOnce(&c.Localizing, e.TimeMS)
		case ContScheduled:
			setOnce(&c.Scheduled, e.TimeMS)
		case LaunchInvoked:
			setOnce(&c.LaunchInvoked, e.TimeMS)
		case ContRunning:
			setOnce(&c.Running, e.TimeMS)
		case DriverFirstLog, ExecutorFirstLog, TaskFirstLog:
			setOnce(&c.FirstLog, e.TimeMS)
			if c.Instance == InstUnknown {
				c.Instance = e.Instance
			}
		case FirstTask:
			setOnce(&c.FirstTask, e.TimeMS)
		case ContExited:
			setOnce(&c.Exited, e.TimeMS)
		case ContReleased:
			setOnce(&c.Released, e.TimeMS)
		case ContLost:
			setOnce(&c.Lost, e.TimeMS)
		case OppQueued:
			setOnce(&c.OppQueuedAt, e.TimeMS)
		case DriverRegister:
			setOnce(&a.DriverRegister, e.TimeMS)
		case StartAllo:
			setOnce(&a.StartAllo, e.TimeMS)
		case EndAllo:
			setOnce(&a.EndAllo, e.TimeMS)
		}
	}

	out := make([]*AppTrace, 0, len(apps))
	for _, a := range apps {
		// Stable: containers sharing a number (AM retries across attempts)
		// keep first-observation order, so output is deterministic.
		sort.SliceStable(a.Containers, func(i, j int) bool { return a.Containers[i].ID.Num < a.Containers[j].ID.Num })
		out = append(out, a)
	}
	sortTracesBySeq(out)
	return out
}
