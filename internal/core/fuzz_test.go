package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedCorpus adds every checked-in testdata/corpus file — real simulator
// output, including degraded (torn/truncated/skewed) variants regenerated
// by cmd/gencorpus — as a fuzz seed.
func seedCorpus(f *testing.F) {
	dir := filepath.Join("testdata", "corpus")
	ents, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("reading seed corpus: %v", err)
	}
	n := 0
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatalf("reading seed %s: %v", e.Name(), err)
		}
		f.Add(data)
		n++
	}
	if n == 0 {
		f.Fatal("empty seed corpus; run `go run ./cmd/gencorpus`")
	}
	// Hand-picked adversarial shapes on top of the real logs.
	f.Add([]byte("2017-07-02 12:53:22,505 INFO org.apache.x.Y: Container container_1499000000000_0001_01_000002 transitioned from NEW to LOCALIZING"))
	f.Add([]byte("garbage\n\x00\xff\n2017-07-02 99:99:99,999 INFO x: y"))
	f.Add([]byte("2017-07-02 12:53:22,505 INFO a: application_1_2 submitted: name= type= queue="))
	f.Add([]byte(strings.Repeat("no timestamp here\n", 40)))
}

// FuzzParseReader feeds arbitrary bytes through the whole offline
// pipeline: parse, correlate, decompose, report, JSON. The contract under
// garbage input is no panic, bounded warnings, and a well-formed (possibly
// empty or partial) report — never an error for mere log damage.
func FuzzParseReader(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewParser()
		if err := p.ParseReader("hadoop/yarn-resourcemanager.log", bytes.NewReader(data)); err != nil {
			t.Fatalf("ParseReader must tolerate arbitrary input, got %v", err)
		}
		if n := len(p.Warnings()); n > maxDistinctWarnings+1 {
			t.Fatalf("%d warnings retained; cap is %d", n, maxDistinctWarnings)
		}
		apps := Correlate(p.Events())
		for _, a := range apps {
			d := Decompose(a)
			if d == nil {
				t.Fatal("Decompose returned nil")
			}
			_ = ValidateTrace(a)
			_ = CriticalPath(a)
		}
		rep := ReportFrom(apps, p.Events())
		_ = rep.Format()
		if _, err := rep.JSON(); err != nil {
			t.Fatalf("JSON: %v", err)
		}
	})
}

// FuzzStreamFeed pushes arbitrary line streams through the incremental
// checker, interleaved across an RM log, an NM log, and a container stderr
// source (exercising container attribution), and checks the memory bound.
func FuzzStreamFeed(f *testing.F) {
	seedCorpus(f)
	sources := []string{
		"hadoop/yarn-resourcemanager.log",
		"hadoop/yarn-nodemanager-node01.log",
		"userlogs/application_1499000000000_0001/container_1499000000000_0001_01_000001/stderr",
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st := NewStream()
		for i, line := range strings.Split(string(data), "\n") {
			st.Feed(sources[i%len(sources)], line)
		}
		st.EvictOldest(8)
		if n := len(st.Apps()); n > 8 {
			t.Fatalf("%d apps tracked after EvictOldest(8)", n)
		}
		rep := st.Report()
		_ = rep.Format()
		for _, a := range st.Apps() {
			_ = st.Complete(a.ID)
		}
	})
}
