package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// seedCorpus adds every checked-in testdata/corpus file — real simulator
// output, including degraded (torn/truncated/skewed) variants regenerated
// by cmd/gencorpus — as a fuzz seed.
func seedCorpus(f *testing.F) {
	dir := filepath.Join("testdata", "corpus")
	ents, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("reading seed corpus: %v", err)
	}
	n := 0
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatalf("reading seed %s: %v", e.Name(), err)
		}
		f.Add(data)
		n++
	}
	if n == 0 {
		f.Fatal("empty seed corpus; run `go run ./cmd/gencorpus`")
	}
	// Hand-picked adversarial shapes on top of the real logs.
	f.Add([]byte("2017-07-02 12:53:22,505 INFO org.apache.x.Y: Container container_1499000000000_0001_01_000002 transitioned from NEW to LOCALIZING"))
	f.Add([]byte("garbage\n\x00\xff\n2017-07-02 99:99:99,999 INFO x: y"))
	f.Add([]byte("2017-07-02 12:53:22,505 INFO a: application_1_2 submitted: name= type= queue="))
	f.Add([]byte(strings.Repeat("no timestamp here\n", 40)))
}

// seedCorpusWorkers is seedCorpus for the two-argument stream fuzz
// target, cycling the fuzzed worker count over the same seed inputs.
func seedCorpusWorkers(f *testing.F) {
	dir := filepath.Join("testdata", "corpus")
	ents, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("reading seed corpus: %v", err)
	}
	n := 0
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatalf("reading seed %s: %v", e.Name(), err)
		}
		f.Add(data, uint8(n))
		n++
	}
	if n == 0 {
		f.Fatal("empty seed corpus; run `go run ./cmd/gencorpus`")
	}
	f.Add([]byte("2017-07-02 12:53:22,505 INFO org.apache.x.Y: Container container_1499000000000_0001_01_000002 transitioned from NEW to LOCALIZING"), uint8(3))
	// A line whose first ID differs from the mined subject ID forces the
	// cross-shard forwarding path.
	f.Add([]byte("2017-07-02 12:53:22,505 INFO x.RMContainerImpl: application_1499000000000_0009 container_1499000000000_0001_01_000002 Container Transitioned from NEW to ALLOCATED"), uint8(7))
	f.Add([]byte("garbage\n\x00\xff\n2017-07-02 99:99:99,999 INFO x: y"), uint8(0))
	f.Add([]byte(strings.Repeat("no timestamp here\n", 40)), uint8(255))
}

// FuzzParseReader feeds arbitrary bytes through the whole offline
// pipeline: parse, correlate, decompose, report, JSON. The contract under
// garbage input is no panic, bounded warnings, and a well-formed (possibly
// empty or partial) report — never an error for mere log damage.
func FuzzParseReader(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewParser()
		if err := p.ParseReader("hadoop/yarn-resourcemanager.log", bytes.NewReader(data)); err != nil {
			t.Fatalf("ParseReader must tolerate arbitrary input, got %v", err)
		}
		if n := len(p.Warnings()); n > maxDistinctWarnings+1 {
			t.Fatalf("%d warnings retained; cap is %d", n, maxDistinctWarnings)
		}
		apps := Correlate(p.Events())
		for _, a := range apps {
			d := Decompose(a)
			if d == nil {
				t.Fatal("Decompose returned nil")
			}
			_ = ValidateTrace(a)
			_ = CriticalPath(a)
		}
		rep := ReportFrom(apps, p.Events())
		_ = rep.Format()
		if _, err := rep.JSON(); err != nil {
			t.Fatalf("JSON: %v", err)
		}
	})
}

// FuzzStreamFeed pushes arbitrary line streams through the incremental
// checker, interleaved across an RM log, an NM log, and a container stderr
// source (exercising container attribution), and checks the memory bound.
// Every input additionally runs through a ShardedStream with a fuzzed
// worker count as a differential oracle against the serial stream: the
// absorbed event multiset must match no matter how lines shard, even on
// adversarial input that triggers cross-shard event forwarding.
func FuzzStreamFeed(f *testing.F) {
	seedCorpusWorkers(f)
	sources := []string{
		"hadoop/yarn-resourcemanager.log",
		"hadoop/yarn-nodemanager-node01.log",
		"userlogs/application_1499000000000_0001/container_1499000000000_0001_01_000001/stderr",
	}
	f.Fuzz(func(t *testing.T, data []byte, workers uint8) {
		lines := strings.Split(string(data), "\n")

		st := NewStream()
		for i, line := range lines {
			st.Feed(sources[i%len(sources)], line)
		}

		w := int(workers%8) + 1
		reg := metrics.NewRegistry()
		ss := NewShardedStream(w)
		defer ss.Close()
		ss.Instrument(reg)
		for i, line := range lines {
			ss.Feed(sources[i%len(sources)], line)
		}
		ss.Quiesce()

		// Order-independent invariants that hold even when adversarial
		// lines force cross-shard forwarding: same events absorbed, same
		// applications tracked, same per-application event counts.
		if got, want := ss.EventCount(), st.EventCount(); got != want {
			t.Fatalf("workers=%d: EventCount=%d serial=%d", w, got, want)
		}
		if got, want := ss.LastEventMS(), st.LastEventMS(); got != want {
			t.Fatalf("workers=%d: LastEventMS=%d serial=%d", w, got, want)
		}
		sApps, pApps := st.Apps(), ss.Apps()
		if len(sApps) != len(pApps) {
			t.Fatalf("workers=%d: apps=%d serial=%d", w, len(pApps), len(sApps))
		}
		for i := range sApps {
			if pApps[i].ID != sApps[i].ID {
				t.Fatalf("workers=%d: app %d = %v, serial %v", w, i, pApps[i].ID, sApps[i].ID)
			}
			if len(pApps[i].Events) != len(sApps[i].Events) {
				t.Fatalf("workers=%d: app %v has %d events, serial %d",
					w, sApps[i].ID, len(pApps[i].Events), len(sApps[i].Events))
			}
		}
		// With no cross-shard forwarding (the case for all well-formed
		// logs), the sharded report must render byte-identically.
		if reg.Counter("core_shard_forwarded_events_total").Value() == 0 {
			if ss.Report().Format() != st.Report().Format() {
				t.Fatalf("workers=%d: report diverges from serial with no forwarded events", w)
			}
		}

		st.EvictOldest(8)
		if n := len(st.Apps()); n > 8 {
			t.Fatalf("%d apps tracked after EvictOldest(8)", n)
		}
		ss.EvictOldest(8)
		if n := len(ss.Apps()); n > 8 {
			t.Fatalf("workers=%d: %d apps tracked after EvictOldest(8)", w, n)
		}
		rep := st.Report()
		_ = rep.Format()
		for _, a := range st.Apps() {
			_ = st.Complete(a.ID)
		}
	})
}
