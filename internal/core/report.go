package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/log4j"
	"repro/internal/stats"
)

// Checker is the SDchecker front end: feed it logs, then Analyze.
type Checker struct {
	parser *Parser
}

// New returns an empty checker.
func New() *Checker {
	return &Checker{parser: NewParser()}
}

// AddReader feeds one log file (name decides daemon vs container log).
func (c *Checker) AddReader(name string, r io.Reader) error {
	return c.parser.ParseReader(name, r)
}

// AddSink feeds every file of an in-memory log sink.
func (c *Checker) AddSink(s *log4j.Sink) error {
	return c.parser.ParseSink(s)
}

// AddDir feeds a log directory tree.
func (c *Checker) AddDir(dir string) error {
	return c.parser.ParseDir(dir)
}

// Analyze correlates, decomposes, aggregates, and runs bug detection.
func (c *Checker) Analyze() *Report {
	apps := Correlate(c.parser.Events())
	for _, a := range apps {
		Decompose(a)
	}
	r := buildReport(apps, c.parser.Events())
	r.Warnings = c.parser.Warnings()
	r.FilesParsed, r.LinesParsed = c.parser.Stats()
	return r
}

// ReportFrom rebuilds a report over a subset of application traces —
// used to exclude interference workloads from foreground metrics. Traces
// must already be decomposed (Analyze does this).
func ReportFrom(apps []*AppTrace, events []Event) *Report {
	for _, a := range apps {
		if a.Decomp == nil {
			Decompose(a)
		}
	}
	return buildReport(apps, events)
}

// Merge combines several reports into one (e.g. aggregating repeated runs
// of the same scenario under different seeds for tighter percentiles).
// Application traces are concatenated; duplicate application IDs across
// runs are expected (every seeded run numbers from 1) and kept distinct.
func Merge(reports ...*Report) *Report {
	var apps []*AppTrace
	var events []Event
	files, lines := 0, 0
	var warnings []string
	for _, r := range reports {
		if r == nil {
			continue
		}
		apps = append(apps, r.Apps...)
		events = append(events, r.Events...)
		files += r.FilesParsed
		lines += r.LinesParsed
		warnings = append(warnings, r.Warnings...)
	}
	merged := ReportFrom(apps, events)
	merged.FilesParsed, merged.LinesParsed = files, lines
	merged.Warnings = warnings
	return merged
}

// Filter returns a new report restricted to apps where keep returns true.
func (r *Report) Filter(keep func(a *AppTrace) bool) *Report {
	var kept []*AppTrace
	for _, a := range r.Apps {
		if keep(a) {
			kept = append(kept, a)
		}
	}
	nr := ReportFrom(kept, r.Events)
	nr.Warnings = r.Warnings
	nr.FilesParsed, nr.LinesParsed = r.FilesParsed, r.LinesParsed
	return nr
}

// Report aggregates the per-application decompositions across a run. All
// delay samples are in milliseconds.
type Report struct {
	Apps   []*AppTrace
	Events []Event

	FilesParsed int
	LinesParsed int
	Warnings    []string

	// CompleteApps / PartialApps count decompositions by their Complete
	// flag: partial ones (degraded logs, lost nodes, in-flight apps) are
	// still listed but carry anomaly reasons instead of trusted totals.
	CompleteApps int
	PartialApps  int

	// Per-application samples.
	Job, Total, AM, In, Out *stats.Sample
	Driver, Executor, Alloc *stats.Sample
	Cf, Cl, ClMinusCf       *stats.Sample
	// Normalized samples (paper Fig 4b): Total/Job and each component
	// over Total.
	TotalOverJob, AMOverTotal, InOverTotal, OutOverTotal *stats.Sample

	// Per-container samples.
	Acquisition, Localization, Launching, Queueing *stats.Sample

	// Per-instance-type breakdowns (Fig 9a).
	LaunchingByInstance    map[InstanceType]*stats.Sample
	LocalizationByInstance map[InstanceType]*stats.Sample

	Bugs []BugFinding
}

func buildReport(apps []*AppTrace, events []Event) *Report {
	r := &Report{
		Apps: apps, Events: events,
		Job: stats.NewSample(len(apps)), Total: stats.NewSample(len(apps)),
		AM: stats.NewSample(len(apps)), In: stats.NewSample(len(apps)),
		Out: stats.NewSample(len(apps)), Driver: stats.NewSample(len(apps)),
		Executor: stats.NewSample(len(apps)), Alloc: stats.NewSample(len(apps)),
		Cf: stats.NewSample(len(apps)), Cl: stats.NewSample(len(apps)),
		ClMinusCf:    stats.NewSample(len(apps)),
		TotalOverJob: stats.NewSample(len(apps)), AMOverTotal: stats.NewSample(len(apps)),
		InOverTotal: stats.NewSample(len(apps)), OutOverTotal: stats.NewSample(len(apps)),
		Acquisition: stats.NewSample(0), Localization: stats.NewSample(0),
		Launching: stats.NewSample(0), Queueing: stats.NewSample(0),
		LaunchingByInstance:    make(map[InstanceType]*stats.Sample),
		LocalizationByInstance: make(map[InstanceType]*stats.Sample),
	}
	addIf := func(s *stats.Sample, v int64) {
		if v >= 0 {
			s.Add(float64(v))
		}
	}
	byInst := func(m map[InstanceType]*stats.Sample, inst InstanceType, v int64) {
		if inst == InstUnknown {
			return
		}
		s := m[inst]
		if s == nil {
			s = stats.NewSample(0)
			m[inst] = s
		}
		s.Add(float64(v))
	}
	for _, a := range apps {
		d := a.Decomp
		if d == nil {
			continue
		}
		if d.Complete {
			r.CompleteApps++
		} else {
			r.PartialApps++
		}
		addIf(r.Job, d.JobRuntime)
		addIf(r.Total, d.Total)
		addIf(r.AM, d.AM)
		addIf(r.In, d.In)
		addIf(r.Out, d.Out)
		addIf(r.Driver, d.Driver)
		addIf(r.Executor, d.Executor)
		addIf(r.Alloc, d.Alloc)
		addIf(r.Cf, d.Cf)
		addIf(r.Cl, d.Cl)
		addIf(r.ClMinusCf, d.ClMinusCf)
		if d.Total > 0 && d.JobRuntime > 0 {
			r.TotalOverJob.Add(float64(d.Total) / float64(d.JobRuntime))
		}
		if d.Total > 0 {
			if d.AM >= 0 {
				r.AMOverTotal.Add(float64(d.AM) / float64(d.Total))
			}
			if d.In >= 0 {
				r.InOverTotal.Add(float64(d.In) / float64(d.Total))
			}
			if d.Out >= 0 {
				r.OutOverTotal.Add(float64(d.Out) / float64(d.Total))
			}
		}
		for _, cd := range d.Acquisitions {
			r.Acquisition.Add(float64(cd.MS))
		}
		for _, cd := range d.Localizations {
			r.Localization.Add(float64(cd.MS))
			byInst(r.LocalizationByInstance, cd.Instance, cd.MS)
		}
		for _, cd := range d.Launchings {
			r.Launching.Add(float64(cd.MS))
			byInst(r.LaunchingByInstance, cd.Instance, cd.MS)
		}
		for _, cd := range d.Queueings {
			r.Queueing.Add(float64(cd.MS))
		}
	}
	r.Bugs = DetectBugs(apps)
	return r
}

// GroupTotals groups the per-application total scheduling delay by a key
// derived from each trace — e.g. the application name (query class) or
// queue, both mined from the RM's submission summary line. Apps with an
// empty key or no total are skipped.
func (r *Report) GroupTotals(key func(*AppTrace) string) map[string]*stats.Sample {
	out := make(map[string]*stats.Sample)
	for _, a := range r.Apps {
		if a.Decomp == nil || a.Decomp.Total < 0 {
			continue
		}
		k := key(a)
		if k == "" {
			continue
		}
		s := out[k]
		if s == nil {
			s = stats.NewSample(8)
			out[k] = s
		}
		s.Add(float64(a.Decomp.Total))
	}
	return out
}

// ByName groups total delays by application name (query class).
func (r *Report) ByName() map[string]*stats.Sample {
	return r.GroupTotals(func(a *AppTrace) string { return a.Name })
}

// ByQueue groups total delays by submission queue.
func (r *Report) ByQueue() map[string]*stats.Sample {
	return r.GroupTotals(func(a *AppTrace) string { return a.Queue })
}

// TimeSeriesPoint is one bin of a delay-over-trace-time series.
type TimeSeriesPoint struct {
	StartMS int64
	Count   int
	P50     float64
	P95     float64
}

// TotalTimeSeries bins the per-application total scheduling delay by
// submission time. It separates steady-state behavior from trace warm-up
// or interference ramps — e.g. under dfsIO the later bins degrade while
// the earliest queries escape (visible in Fig 12's scatter).
func (r *Report) TotalTimeSeries(binMS int64) []TimeSeriesPoint {
	if binMS <= 0 {
		binMS = 60_000
	}
	bins := map[int64]*stats.Sample{}
	var minBin, maxBin int64
	first := true
	for _, a := range r.Apps {
		if a.Decomp == nil || a.Decomp.Total < 0 || a.Submitted == 0 {
			continue
		}
		b := a.Submitted / binMS
		if first || b < minBin {
			minBin = b
		}
		if first || b > maxBin {
			maxBin = b
		}
		first = false
		s := bins[b]
		if s == nil {
			s = stats.NewSample(8)
			bins[b] = s
		}
		s.Add(float64(a.Decomp.Total))
	}
	if first {
		return nil
	}
	out := make([]TimeSeriesPoint, 0, maxBin-minBin+1)
	for b := minBin; b <= maxBin; b++ {
		p := TimeSeriesPoint{StartMS: b * binMS}
		if s := bins[b]; s != nil {
			p.Count = s.Len()
			p.P50 = s.Median()
			p.P95 = s.P95()
		}
		out = append(out, p)
	}
	return out
}

// AllocationThroughput returns the cluster-wide container allocation rate
// (containers/second) measured over the busy window — the Table II
// metric: total ALLOCATED events divided by the span between the first
// and last allocation.
func (r *Report) AllocationThroughput() float64 {
	var first, last int64
	var n int
	for _, e := range r.Events {
		if e.Kind != ContAllocated {
			continue
		}
		n++
		if first == 0 || e.TimeMS < first {
			first = e.TimeMS
		}
		if e.TimeMS > last {
			last = e.TimeMS
		}
	}
	if n < 2 || last <= first {
		return 0
	}
	return float64(n) / (float64(last-first) / 1000.0)
}

// ComponentShare returns each component's mean contribution to the mean
// total scheduling delay (Table III's "contribution" column). Components
// measured per container are first averaged within the run.
func (r *Report) ComponentShare() map[string]float64 {
	total := r.Total.Mean()
	if total == 0 {
		return nil
	}
	perApp := func(s *stats.Sample) float64 {
		if r.Total.Len() == 0 {
			return 0
		}
		// Per-container samples: containers per app ≈ sample/app count.
		return s.Sum() / float64(r.Total.Len())
	}
	return map[string]float64{
		"alloc-delays":   r.Alloc.Mean() / total,
		"acqui-delays":   r.Acquisition.Mean() / total,
		"local-delays":   r.Localization.Mean() / total,
		"laun-delays":    r.Launching.Mean() / total,
		"driver-delay":   r.Driver.Mean() / total,
		"executor-delay": r.Executor.Mean() / total,
		"acqui-per-app":  perApp(r.Acquisition) / total,
	}
}

// Summaries returns the standard component summaries in display order.
func (r *Report) Summaries() []stats.Summary {
	return []stats.Summary{
		r.Job.Summarize("job"),
		r.Total.Summarize("total"),
		r.AM.Summarize("am"),
		r.In.Summarize("in"),
		r.Out.Summarize("out"),
		r.Driver.Summarize("driver"),
		r.Executor.Summarize("executor"),
		r.Alloc.Summarize("alloc"),
		r.Acquisition.Summarize("acquisition"),
		r.Localization.Summarize("localization"),
		r.Launching.Summarize("launching"),
		r.Queueing.Summarize("queueing"),
		r.Cf.Summarize("Cf"),
		r.Cl.Summarize("Cl"),
		r.ClMinusCf.Summarize("Cl-Cf"),
	}
}

// Format renders a paper-style text report.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SDchecker report: %d applications, %d files, %d lines parsed\n",
		len(r.Apps), r.FilesParsed, r.LinesParsed)
	if r.PartialApps > 0 {
		fmt.Fprintf(&b, "WARNING: %d of %d decompositions are partial (missing observations or anomalies); aggregate rows below use observed components only\n",
			r.PartialApps, r.CompleteApps+r.PartialApps)
		shown := 0
		for _, a := range r.Apps {
			if a.Decomp == nil || a.Decomp.Complete || len(a.Decomp.Anomalies) == 0 {
				continue
			}
			if shown == 10 {
				fmt.Fprintf(&b, "  ... and %d more partial applications\n", r.PartialApps-shown)
				break
			}
			fmt.Fprintf(&b, "  %s: %s\n", a.ID, strings.Join(a.Decomp.Anomalies, "; "))
			shown++
		}
	}
	b.WriteString(stats.FormatTable("scheduling delay components (ms)", r.Summaries()))
	fmt.Fprintf(&b, "\nnormalized: total/job p50=%.2f p95=%.2f | in/total p50=%.2f | out/total p50=%.2f | am/total p50=%.2f\n",
		r.TotalOverJob.Median(), r.TotalOverJob.P95(),
		r.InOverTotal.Median(), r.OutOverTotal.Median(), r.AMOverTotal.Median())

	if len(r.LaunchingByInstance) > 0 {
		b.WriteString("\nlaunching delay by instance type (ms):\n")
		insts := make([]string, 0, len(r.LaunchingByInstance))
		for k := range r.LaunchingByInstance {
			insts = append(insts, string(k))
		}
		sort.Strings(insts)
		for _, k := range insts {
			s := r.LaunchingByInstance[InstanceType(k)]
			fmt.Fprintf(&b, "  %-5s n=%-5d p50=%6.0f p95=%6.0f\n", k, s.Len(), s.Median(), s.P95())
		}
	}
	if n := len(r.Bugs); n > 0 {
		fmt.Fprintf(&b, "\nBUG: %d containers allocated but never used (cf. SPARK-21562)\n", n)
		max := n
		if max > 5 {
			max = 5
		}
		for _, f := range r.Bugs[:max] {
			fmt.Fprintf(&b, "  %s\n", f)
		}
		if n > max {
			fmt.Fprintf(&b, "  ... and %d more\n", n-max)
		}
	}
	return b.String()
}
