package core

import (
	"sort"
	"testing"

	"repro/internal/ids"
	"repro/internal/log4j"
)

// streamFeedCorpus pumps the synthetic corpus line by line, in global
// timestamp order (as a live collector would see it).
func streamFeedCorpus(t *testing.T, cs corpus) *Stream {
	t.Helper()
	s := NewStream()
	streamFeedInto(t, s, cs)
	return s
}

// streamFeedInto feeds the corpus into an existing stream (so tests can
// register hooks before the first line arrives).
func streamFeedInto(t *testing.T, s *Stream, cs corpus) {
	t.Helper()
	type stamped struct {
		src  string
		line string
		ms   int64
	}
	var all []stamped
	for src, lines := range cs {
		for _, l := range lines {
			parsed, err := log4j.ParseLine(l)
			if err != nil {
				t.Fatalf("corpus line unparseable: %v", err)
			}
			all = append(all, stamped{src, l, parsed.TimeMS})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].ms < all[j].ms })
	for _, e := range all {
		s.Feed(e.src, e.line)
	}
}

func TestStreamMatchesOfflineAnalysis(t *testing.T) {
	cs := buildSparkCorpus()
	offline := analyze(t, cs)
	s := streamFeedCorpus(t, cs)

	if len(s.Apps()) != len(offline.Apps) {
		t.Fatalf("stream apps=%d offline=%d", len(s.Apps()), len(offline.Apps))
	}
	so, od := s.Apps()[0].Decomp, offline.Apps[0].Decomp
	pairs := [][2]int64{
		{so.Total, od.Total}, {so.AM, od.AM}, {so.Driver, od.Driver},
		{so.Executor, od.Executor}, {so.In, od.In}, {so.Out, od.Out},
		{so.Alloc, od.Alloc}, {so.JobRuntime, od.JobRuntime},
	}
	for i, p := range pairs {
		if p[0] != p[1] {
			t.Errorf("component %d: stream %d != offline %d", i, p[0], p[1])
		}
	}
}

func TestStreamIncrementalCompleteness(t *testing.T) {
	cs := buildSparkCorpus()
	s := NewStream()
	app := mustAppID(t, "application_1499000000000_0001")

	// Feed only the RM log: decomposition incomplete.
	for _, l := range cs["hadoop/yarn-resourcemanager.log"] {
		s.Feed("hadoop/yarn-resourcemanager.log", l)
	}
	if s.Complete(app) {
		t.Fatal("complete without any container logs")
	}
	// Add the remaining files: now complete.
	for src, lines := range cs {
		if src == "hadoop/yarn-resourcemanager.log" {
			continue
		}
		for _, l := range lines {
			s.Feed(src, l)
		}
	}
	if !s.Complete(app) {
		t.Fatalf("still incomplete after all logs: %+v", s.App(app).Decomp)
	}
}

func TestStreamFirstLogIsFirstLineOnly(t *testing.T) {
	s := NewStream()
	src := "userlogs/application_1499000000000_0001/container_1499000000000_0001_01_000002/stderr"
	s.Feed(src, line(7000, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "Started daemon"))
	s.Feed(src, line(7500, "org.apache.spark.executor.CoarseGrainedExecutorBackend", "some later line"))
	app := mustAppID(t, "application_1499000000000_0001")
	c := s.App(app).Containers[0]
	if c.FirstLog != 1499000000000+7000 {
		t.Fatalf("first log %d moved by a later line", c.FirstLog)
	}
}

func TestStreamIgnoresJunk(t *testing.T) {
	s := NewStream()
	if s.Feed("hadoop/rm.log", "java.lang.NullPointerException") {
		t.Fatal("junk counted as an event")
	}
	if s.EventCount() != 0 {
		t.Fatal("junk absorbed")
	}
}

func TestStreamReportAggregates(t *testing.T) {
	s := streamFeedCorpus(t, buildSparkCorpus())
	rep := s.Report()
	if rep.Total.Len() != 1 || rep.Total.Median() != 11900 {
		t.Fatalf("stream report total: n=%d p50=%v", rep.Total.Len(), rep.Total.Median())
	}
	if got := rep.AllocationThroughput(); got <= 0 {
		t.Fatalf("throughput %v", got)
	}
}

func mustAppID(t *testing.T, s string) ids.AppID {
	t.Helper()
	parsed, err := ids.ParseAppID(s)
	if err != nil {
		t.Fatal(err)
	}
	return parsed
}

func TestStreamOnCompleteFiresOnce(t *testing.T) {
	s := NewStream()
	var got []*AppTrace
	s.OnComplete(func(a *AppTrace) { got = append(got, a) })
	streamFeedInto(t, s, buildSparkCorpus())
	if len(got) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(got))
	}
	if d := got[0].Decomp; d == nil || !d.Complete {
		t.Fatal("hook delivered an incomplete trace")
	}
	// Replaying lines rebuilds the app but must not re-deliver it.
	streamFeedInto(t, s, buildSparkCorpus())
	if len(got) != 1 {
		t.Fatalf("hook fired %d times after replay, want 1", len(got))
	}
}

func TestStreamOnCompleteAfterForget(t *testing.T) {
	// Forget drops the delivery record: if the same app is fed again
	// (e.g. a server restarted its scan), it is delivered again — the
	// aggregation layer owns cross-restart dedup, not the stream.
	s := NewStream()
	fired := 0
	s.OnComplete(func(*AppTrace) { fired++ })
	streamFeedInto(t, s, buildSparkCorpus())
	s.Forget(mustAppID(t, "application_1499000000000_0001"))
	streamFeedInto(t, s, buildSparkCorpus())
	if fired != 2 {
		t.Fatalf("hook fired %d times across forget, want 2", fired)
	}
}
