package core

import (
	"strings"
	"testing"
)

func TestValidateCleanTrace(t *testing.T) {
	rep := analyze(t, buildSparkCorpus())
	if problems := rep.ValidateAll(); len(problems) != 0 {
		t.Fatalf("clean trace reported problems: %v", problems)
	}
}

func TestValidateDetectsClockSkew(t *testing.T) {
	cs := buildSparkCorpus()
	// A container whose RUNNING precedes SCHEDULED — classic clock skew
	// between the NM writing both... or corrupted collection.
	nm := "hadoop/yarn-nodemanager-node01.log"
	ghost := "container_1499000000000_0001_01_000005"
	cs.add(nm, line(9000, "y.ContainerImpl", "Container "+ghost+" transitioned from NEW to LOCALIZING"))
	cs.add(nm, line(9500, "y.ContainerImpl", "Container "+ghost+" transitioned from LOCALIZING to SCHEDULED"))
	cs.add(nm, line(9200, "y.ContainerImpl", "Container "+ghost+" transitioned from SCHEDULED to RUNNING"))
	rep := analyze(t, cs)
	problems := rep.ValidateAll()
	found := false
	for _, p := range problems {
		if strings.Contains(p, ghost) && strings.Contains(p, "SCHEDULED") {
			found = true
		}
	}
	if !found {
		t.Fatalf("skewed container not flagged: %v", problems)
	}
}

func TestValidateDetectsMissingRMLog(t *testing.T) {
	cs := corpus{}
	// NM states only — as if the RM log was not collected.
	nm := "hadoop/yarn-nodemanager-node01.log"
	c := "container_1499000000000_0009_01_000002"
	cs.add(nm, line(100, "y.ContainerImpl", "Container "+c+" transitioned from NEW to LOCALIZING"))
	cs.add(nm, line(200, "y.ContainerImpl", "Container "+c+" transitioned from LOCALIZING to SCHEDULED"))
	rep := analyze(t, cs)
	problems := rep.ValidateAll()
	found := false
	for _, p := range problems {
		if strings.Contains(p, "missing RM log") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing RM coverage not flagged: %v", problems)
	}
}

func TestValidateDetectsRegisterDisagreement(t *testing.T) {
	cs := buildSparkCorpus()
	app := "application_1499000000000_0001"
	am := "container_1499000000000_0001_01_000001"
	f := "userlogs/" + app + "/" + am + "/stderr"
	// Shift the driver's REGISTER line far from the RM's record.
	cs[f] = []string{
		line(1500, "org.apache.spark.deploy.yarn.ApplicationMaster", "Preparing Local resources"),
		line(9000, "org.apache.spark.deploy.yarn.ApplicationMaster", "Registered with ResourceManager as x"),
		line(9000, "org.apache.spark.deploy.yarn.YarnAllocator", "SDCHECKER START_ALLO Requesting 2 executor containers"),
		line(9100, "org.apache.spark.deploy.yarn.YarnAllocator", "SDCHECKER END_ALLO All 2 requested containers allocated"),
	}
	rep := analyze(t, cs)
	problems := rep.ValidateAll()
	found := false
	for _, p := range problems {
		if strings.Contains(p, "clock skew") {
			found = true
		}
	}
	if !found {
		t.Fatalf("REGISTER disagreement not flagged: %v", problems)
	}
}
