package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Comparison is an A/B view of two reports — the tool the ablation
// benches use to quantify a configuration change (JVM reuse on/off,
// dedicated localization disk, heartbeat interval, ...).
type Comparison struct {
	NameA, NameB string
	Rows         []ComparisonRow
}

// ComparisonRow compares one delay component.
type ComparisonRow struct {
	Component  string
	P50A, P50B float64
	P95A, P95B float64
	// SpeedupP50/P95 = A/B: >1 means B is faster.
	SpeedupP50, SpeedupP95 float64
}

// Compare builds the component-by-component comparison of two reports.
func Compare(nameA string, a *Report, nameB string, b *Report) *Comparison {
	cmp := &Comparison{NameA: nameA, NameB: nameB}
	pairs := []struct {
		name string
		sa   *stats.Sample
		sb   *stats.Sample
	}{
		{"total", a.Total, b.Total},
		{"am", a.AM, b.AM},
		{"in", a.In, b.In},
		{"out", a.Out, b.Out},
		{"driver", a.Driver, b.Driver},
		{"executor", a.Executor, b.Executor},
		{"alloc", a.Alloc, b.Alloc},
		{"acquisition", a.Acquisition, b.Acquisition},
		{"localization", a.Localization, b.Localization},
		{"launching", a.Launching, b.Launching},
		{"queueing", a.Queueing, b.Queueing},
		{"job", a.Job, b.Job},
	}
	div := func(x, y float64) float64 {
		if y == 0 {
			return 0
		}
		return x / y
	}
	for _, p := range pairs {
		if p.sa.Len() == 0 && p.sb.Len() == 0 {
			continue
		}
		row := ComparisonRow{
			Component: p.name,
			P50A:      p.sa.Median(), P50B: p.sb.Median(),
			P95A: p.sa.P95(), P95B: p.sb.P95(),
		}
		row.SpeedupP50 = div(row.P50A, row.P50B)
		row.SpeedupP95 = div(row.P95A, row.P95B)
		cmp.Rows = append(cmp.Rows, row)
	}
	return cmp
}

// Row returns the comparison row for a component, or nil.
func (c *Comparison) Row(component string) *ComparisonRow {
	for i := range c.Rows {
		if c.Rows[i].Component == component {
			return &c.Rows[i]
		}
	}
	return nil
}

// Format renders the comparison as an aligned table.
func (c *Comparison) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "comparison: A=%s vs B=%s (speedup = A/B, >1 means B faster)\n", c.NameA, c.NameB)
	fmt.Fprintf(&b, "  %-14s %10s %10s %8s %10s %10s %8s\n",
		"component", "A p50", "B p50", "x p50", "A p95", "B p95", "x p95")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "  %-14s %10.0f %10.0f %8.2f %10.0f %10.0f %8.2f\n",
			r.Component, r.P50A, r.P50B, r.SpeedupP50, r.P95A, r.P95B, r.SpeedupP95)
	}
	return b.String()
}

// CSV renders the report's per-application decompositions as CSV for
// external plotting — one row per application, milliseconds.
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString("app,submitted_ms,total,am,in,out,driver,executor,alloc,cf,cl,job\n")
	for _, a := range r.Apps {
		d := a.Decomp
		if d == nil {
			continue
		}
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			a.ID, a.Submitted, d.Total, d.AM, d.In, d.Out, d.Driver, d.Executor, d.Alloc, d.Cf, d.Cl, d.JobRuntime)
	}
	return b.String()
}

// ComponentCSV renders one per-container component (acquisition,
// localization, launching, queueing) as CSV rows of
// app,container,instance,ms.
func (r *Report) ComponentCSV(component string) (string, error) {
	var b strings.Builder
	b.WriteString("app,container,instance,ms\n")
	for _, a := range r.Apps {
		d := a.Decomp
		if d == nil {
			continue
		}
		var rows []ContainerDelay
		switch component {
		case "acquisition":
			rows = d.Acquisitions
		case "localization":
			rows = d.Localizations
		case "launching":
			rows = d.Launchings
		case "queueing":
			rows = d.Queueings
		default:
			return "", fmt.Errorf("core: unknown component %q", component)
		}
		for _, cd := range rows {
			fmt.Fprintf(&b, "%s,%s,%s,%d\n", a.ID, cd.Container, cd.Instance, cd.MS)
		}
	}
	return b.String(), nil
}

// CDFCSV renders the CDFs of the headline delays (Fig 4a style) as CSV:
// series,value_ms,fraction.
func (r *Report) CDFCSV(points int) string {
	var b strings.Builder
	b.WriteString("series,value_ms,fraction\n")
	series := []struct {
		name string
		s    *stats.Sample
	}{
		{"job", r.Job}, {"total", r.Total}, {"am", r.AM}, {"in", r.In}, {"out", r.Out},
	}
	for _, sr := range series {
		for _, p := range sr.s.CDF(points) {
			fmt.Fprintf(&b, "%s,%.0f,%.4f\n", sr.name, p.Value, p.Fraction)
		}
	}
	return b.String()
}

// InstanceLaunchCSV renders Fig 9a's data: instance,ms rows sorted by
// instance label.
func (r *Report) InstanceLaunchCSV() string {
	var b strings.Builder
	b.WriteString("instance,ms\n")
	insts := make([]string, 0, len(r.LaunchingByInstance))
	for k := range r.LaunchingByInstance {
		insts = append(insts, string(k))
	}
	sort.Strings(insts)
	for _, k := range insts {
		for _, v := range r.LaunchingByInstance[InstanceType(k)].Values() {
			fmt.Fprintf(&b, "%s,%.0f\n", k, v)
		}
	}
	return b.String()
}
