// Package trace generates query submission timelines shaped like the
// google-trace subsets the paper uses (§IV-A): a long trace of 2,000
// queries for the overall-delay study and a short trace of 200 queries
// for the per-component studies. Arrivals are bursty — most gaps are
// exponential around the configured mean, with occasional tight bursts —
// matching the heterogeneity/dynamicity Reiss et al. report for the
// google trace.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rng"
	"repro/internal/sim"
)

// LongTraceQueries and ShortTraceQueries are the paper's trace sizes.
const (
	LongTraceQueries  = 2000
	ShortTraceQueries = 200
)

// Config shapes an arrival process.
type Config struct {
	N          int     // number of submissions
	MeanGapMs  float64 // mean inter-arrival gap
	BurstProb  float64 // probability a gap belongs to a burst
	BurstGapMs float64 // mean gap inside a burst
	Seed       uint64
}

// Long returns the 2000-query trace configuration at the given mean gap.
func Long(meanGapMs float64, seed uint64) Config {
	return Config{N: LongTraceQueries, MeanGapMs: meanGapMs, BurstProb: 0.25, BurstGapMs: meanGapMs / 8, Seed: seed}
}

// Short returns the 200-query trace configuration.
func Short(meanGapMs float64, seed uint64) Config {
	return Config{N: ShortTraceQueries, MeanGapMs: meanGapMs, BurstProb: 0.25, BurstGapMs: meanGapMs / 8, Seed: seed}
}

// FromCSV reads real submission timestamps — one integer per line (or
// the first comma-separated column), in milliseconds — normalizes them to
// start at startMs, and returns them sorted. Lines starting with '#' and
// blank lines are skipped. This is how an actual google-trace subset (as
// the paper used) is replayed instead of the synthetic arrival process.
func FromCSV(r io.Reader, startMs sim.Time) ([]sim.Time, error) {
	sc := bufio.NewScanner(r)
	var raw []int64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if i := strings.IndexByte(text, ','); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		raw = append(raw, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("trace: no submission timestamps found")
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	base := raw[0]
	out := make([]sim.Time, len(raw))
	for i, v := range raw {
		out[i] = startMs + sim.Time(v-base)
	}
	return out, nil
}

// Arrivals materializes the submission instants, sorted ascending,
// starting at startMs.
func Arrivals(cfg Config, startMs sim.Time) []sim.Time {
	r := rng.New(cfg.Seed ^ 0x7ace)
	out := make([]sim.Time, 0, cfg.N)
	t := startMs
	// Burst gaps steal probability mass, so stretch the non-burst mean to
	// keep the configured overall rate.
	normalMean := cfg.MeanGapMs
	if cfg.BurstProb > 0 && cfg.BurstProb < 1 {
		normalMean = (cfg.MeanGapMs - cfg.BurstProb*cfg.BurstGapMs) / (1 - cfg.BurstProb)
		if normalMean < 1 {
			normalMean = 1
		}
	}
	for i := 0; i < cfg.N; i++ {
		out = append(out, t)
		var gap float64
		if r.Float64() < cfg.BurstProb {
			gap = r.Exp(cfg.BurstGapMs)
		} else {
			gap = r.Exp(normalMean)
		}
		if gap < 1 {
			gap = 1
		}
		t += sim.Time(gap)
	}
	return out
}
