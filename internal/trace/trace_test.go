package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestArrivalsCountAndOrder(t *testing.T) {
	cfg := Long(2600, 1)
	if cfg.N != LongTraceQueries {
		t.Fatalf("long trace size %d", cfg.N)
	}
	arr := Arrivals(cfg, 1000)
	if len(arr) != 2000 {
		t.Fatalf("arrivals=%d", len(arr))
	}
	if arr[0] != 1000 {
		t.Fatalf("first arrival %d, want startMs", arr[0])
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
}

func TestMeanGapRoughlyHonored(t *testing.T) {
	arr := Arrivals(Config{N: 5000, MeanGapMs: 1000, BurstProb: 0.25, BurstGapMs: 125, Seed: 3}, 0)
	span := float64(arr[len(arr)-1] - arr[0])
	mean := span / float64(len(arr)-1)
	if mean < 800 || mean > 1200 {
		t.Fatalf("mean gap %.0fms, want ~1000", mean)
	}
}

func TestBurstinessProducesTightGaps(t *testing.T) {
	arr := Arrivals(Config{N: 2000, MeanGapMs: 1000, BurstProb: 0.3, BurstGapMs: 50, Seed: 4}, 0)
	tight := 0
	for i := 1; i < len(arr); i++ {
		if arr[i]-arr[i-1] < 200 {
			tight++
		}
	}
	// Roughly the burst fraction of gaps should be tight.
	if tight < 300 {
		t.Fatalf("only %d tight gaps in a bursty trace", tight)
	}
}

func TestShortTrace(t *testing.T) {
	if Short(2600, 1).N != ShortTraceQueries {
		t.Fatal("short trace size")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := Arrivals(Long(2600, 9), 0)
	b := Arrivals(Long(2600, 9), 0)
	c := Arrivals(Long(2600, 10), 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestPropertyArrivalsMonotone(t *testing.T) {
	f := func(n uint8, gap uint16, seed uint32) bool {
		cfg := Config{N: int(n%100) + 1, MeanGapMs: float64(gap%5000) + 1, BurstProb: 0.25, BurstGapMs: 10, Seed: uint64(seed)}
		arr := Arrivals(cfg, sim.Time(5))
		if len(arr) != cfg.N || arr[0] != 5 {
			return false
		}
		for i := 1; i < len(arr); i++ {
			if arr[i] <= arr[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromCSV(t *testing.T) {
	in := "# google-trace subset\n100000\n100500,queryA\n\n102000\n"
	arr, err := FromCSV(strings.NewReader(in), 2000)
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{2000, 2500, 4000}
	if len(arr) != len(want) {
		t.Fatalf("arrivals=%v", arr)
	}
	for i := range want {
		if arr[i] != want[i] {
			t.Fatalf("arrivals=%v want %v", arr, want)
		}
	}
}

func TestFromCSVUnsorted(t *testing.T) {
	arr, err := FromCSV(strings.NewReader("300\n100\n200\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if arr[0] != 0 || arr[1] != 100 || arr[2] != 200 {
		t.Fatalf("arrivals=%v", arr)
	}
}

func TestFromCSVErrors(t *testing.T) {
	if _, err := FromCSV(strings.NewReader(""), 0); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := FromCSV(strings.NewReader("abc\n"), 0); err == nil {
		t.Fatal("garbage accepted")
	}
}
