// Package hdfs simulates the Hadoop distributed file system the paper's
// testbed runs (replication factor 3, 128 MB blocks). Only the properties
// the paper's experiments exercise are modeled:
//
//   - NameNode lookups cost client-side CPU (the paper attributes the mild
//     CPU-interference sensitivity of localization to the HDFS client,
//     §IV-E), plus a small RPC latency.
//   - Reads stream from a replica — the local disk when a replica is
//     co-located, otherwise a remote datanode's disk across the fabric and
//     the client NIC. Every leg contends with other traffic, which is how
//     dfsIO interference inflates localization delay in Fig 12.
//   - Writes push one local replica plus two remote replicas through the
//     pipeline, loading local disk, local NIC, fabric, and remote disks —
//     the mechanism dfsIO uses to overload the cluster.
package hdfs

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/sim"
)

// ReplicationFactor is the configured HDFS replication (paper: 3).
const ReplicationFactor = 3

// BlockSizeMB is the configured HDFS block size (paper: 128 MB).
const BlockSizeMB = 128

// File is one stored file and its replica placement.
type File struct {
	Path     string
	SizeMB   float64
	Replicas []int // node indices holding a replica
}

// FS is the simulated filesystem.
type FS struct {
	eng   *sim.Engine
	cl    *cluster.Cluster
	rng   *rng.Source
	files map[string]*File

	// LookupCPUVcoreSec is the client CPU work to resolve block locations
	// and open the stream. LookupRPCMs is the NameNode round-trip floor.
	LookupCPUVcoreSec float64
	LookupRPCMs       float64
	// ChecksumCPUVcoreSecPerMB is client CPU spent verifying and copying
	// each MB read (decompression + CRC).
	ChecksumCPUVcoreSecPerMB float64
	// StreamDemandMBps caps a single stream's rate on any leg.
	StreamDemandMBps float64
}

// New creates an empty filesystem over the cluster.
func New(eng *sim.Engine, cl *cluster.Cluster, seed uint64) *FS {
	return &FS{
		eng:   eng,
		cl:    cl,
		rng:   rng.New(seed),
		files: make(map[string]*File),

		LookupCPUVcoreSec:        0.015,
		LookupRPCMs:              2,
		ChecksumCPUVcoreSecPerMB: 0.0003,
		StreamDemandMBps:         800,
	}
}

// Create registers a file with replicas placed uniformly at random,
// optionally pinning the first replica to preferred (HDFS places the first
// replica on the writing node). No IO is simulated — use it to pre-populate
// datasets and jars before the experiment clock starts.
func (fs *FS) Create(path string, sizeMB float64, preferred *cluster.Node) *File {
	if sizeMB < 0 {
		panic(fmt.Sprintf("hdfs: negative size for %s", path))
	}
	f := &File{Path: path, SizeMB: sizeMB}
	n := len(fs.cl.Nodes)
	taken := make(map[int]bool)
	if preferred != nil {
		f.Replicas = append(f.Replicas, preferred.Index)
		taken[preferred.Index] = true
	}
	for len(f.Replicas) < ReplicationFactor && len(f.Replicas) < n {
		idx := fs.rng.Intn(n)
		if taken[idx] {
			continue
		}
		taken[idx] = true
		f.Replicas = append(f.Replicas, idx)
	}
	fs.files[path] = f
	return f
}

// Lookup returns the file metadata, or nil when absent.
func (fs *FS) Lookup(path string) *File { return fs.files[path] }

// hasReplica reports whether node idx holds a replica of f.
func hasReplica(f *File, idx int) bool {
	for _, r := range f.Replicas {
		if r == idx {
			return true
		}
	}
	return false
}

// Read streams the file to client and calls done when the stream (and the
// client-side checksum work) completes. Missing paths panic: simulation
// scenarios always create their inputs first.
func (fs *FS) Read(client *cluster.Node, path string, done func(at sim.Time)) {
	f := fs.files[path]
	if f == nil {
		panic(fmt.Sprintf("hdfs: read of missing path %s", path))
	}
	fs.ReadData(client, f, f.SizeMB, done)
}

// ReadData streams sizeMB from the file's replicas to client. A partial
// read (sizeMB < f.SizeMB) models tasks reading one split of a table.
func (fs *FS) ReadData(client *cluster.Node, f *File, sizeMB float64, done func(at sim.Time)) {
	fs.lookupThenStream(client, f, sizeMB, done)
}

// ReadAnonymous streams sizeMB from a random remote datanode without a
// registered file — convenient for synthetic shuffle/spill traffic.
func (fs *FS) ReadAnonymous(client *cluster.Node, sizeMB float64, done func(at sim.Time)) {
	remote := fs.pickRemote(client.Index)
	fs.streamDemand(client, remote, sizeMB, fs.StreamDemandMBps, done)
}

// ReadPaced streams sizeMB at a bounded steady rate (a scan pipeline that
// consumes input as it computes). f may be nil for anonymous remote data.
// Paced streams hold their resource share for their whole duration, which
// is how many concurrent scans saturate cluster disks.
func (fs *FS) ReadPaced(client *cluster.Node, f *File, sizeMB, demandMBps float64, done func(at sim.Time)) {
	if demandMBps <= 0 {
		demandMBps = fs.StreamDemandMBps
	}
	fs.eng.After(int64(fs.LookupRPCMs), func() {
		client.Compute(fs.LookupCPUVcoreSec, 1, func(sim.Time) {
			src := fs.pickRemote(client.Index)
			if f != nil {
				src = fs.pickSource(client, f)
			}
			fs.streamDemand(client, src, sizeMB, demandMBps, done)
		})
	})
}

func (fs *FS) lookupThenStream(client *cluster.Node, f *File, sizeMB float64, done func(at sim.Time)) {
	// NameNode RPC floor, then client CPU to open the stream.
	fs.eng.After(int64(fs.LookupRPCMs), func() {
		client.Compute(fs.LookupCPUVcoreSec, 1, func(sim.Time) {
			fs.streamDemand(client, fs.pickSource(client, f), sizeMB, fs.StreamDemandMBps, done)
		})
	})
}

// pickSource chooses the datanode a read streams from. Small files live
// on their three replica nodes; files larger than a few blocks have their
// blocks spread across the whole cluster (each block is replicated
// independently), so a read of one split can land on any node — without
// this, concurrent scans of a big table would hotspot three disks, which
// real HDFS does not do.
func (fs *FS) pickSource(client *cluster.Node, f *File) int {
	const spreadThresholdMB = 3 * BlockSizeMB
	if f.SizeMB > spreadThresholdMB {
		return fs.rng.Intn(len(fs.cl.Nodes))
	}
	if hasReplica(f, client.Index) {
		return client.Index
	}
	if len(f.Replicas) > 0 {
		return f.Replicas[fs.rng.Intn(len(f.Replicas))]
	}
	return fs.pickRemote(client.Index)
}

// streamDemand moves sizeMB from source node index (or the client itself
// when src == client.Index; src < 0 picks a random remote) at the given
// per-leg demand cap, then burns checksum CPU before invoking done.
func (fs *FS) streamDemand(client *cluster.Node, src int, sizeMB, demand float64, done func(at sim.Time)) {
	if src < 0 {
		src = fs.pickRemote(client.Index)
	}
	finish := func(sim.Time) {
		cpu := fs.ChecksumCPUVcoreSecPerMB * sizeMB
		client.Compute(cpu, 1, func(at sim.Time) { done(at) })
	}
	var legs []cluster.Leg
	if src == client.Index {
		legs = []cluster.Leg{
			{Res: client.Disk, Work: sizeMB, Demand: demand},
		}
	} else {
		remote := fs.cl.Node(src)
		legs = []cluster.Leg{
			{Res: remote.Disk, Work: sizeMB, Demand: demand},
			{Res: remote.Net, Work: sizeMB, Demand: demand},
			{Res: fs.cl.Fabric, Work: sizeMB, Demand: demand},
			{Res: client.Net, Work: sizeMB, Demand: demand},
		}
	}
	cluster.StartTransfer(fs.eng, legs, finish)
}

// Write streams sizeMB from client into a new file at path: one replica on
// the local disk, two pushed through the pipeline to remote disks. done
// fires when the slowest replica leg drains. This is the dfsIO write path.
func (fs *FS) Write(client *cluster.Node, path string, sizeMB float64, done func(at sim.Time)) {
	f := fs.Create(path, sizeMB, client)
	legs := []cluster.Leg{
		{Res: client.Disk, Work: sizeMB, Demand: fs.StreamDemandMBps},
	}
	remoteCopies := 0
	for _, r := range f.Replicas {
		if r == client.Index {
			continue
		}
		remote := fs.cl.Node(r)
		legs = append(legs,
			cluster.Leg{Res: remote.Disk, Work: sizeMB, Demand: fs.StreamDemandMBps},
			cluster.Leg{Res: remote.Net, Work: sizeMB, Demand: fs.StreamDemandMBps},
		)
		remoteCopies++
	}
	if remoteCopies > 0 {
		legs = append(legs,
			cluster.Leg{Res: client.Net, Work: sizeMB * float64(remoteCopies), Demand: fs.StreamDemandMBps},
			cluster.Leg{Res: fs.cl.Fabric, Work: sizeMB * float64(remoteCopies), Demand: fs.StreamDemandMBps},
		)
	}
	cluster.StartTransfer(fs.eng, legs, func(at sim.Time) { done(at) })
}

func (fs *FS) pickRemote(not int) int {
	n := len(fs.cl.Nodes)
	if n == 1 {
		return 0
	}
	for {
		idx := fs.rng.Intn(n)
		if idx != not {
			return idx
		}
	}
}
