package hdfs

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func bed(workers int) (*sim.Engine, *cluster.Cluster, *FS) {
	eng := sim.NewEngine()
	cfg := cluster.DefaultConfig()
	cfg.Workers = workers
	cfg.Node.DiskSeekPenalty = 0
	cl := cluster.New(eng, cfg)
	return eng, cl, New(eng, cl, 5)
}

func TestCreatePlacesReplicas(t *testing.T) {
	_, cl, fs := bed(6)
	f := fs.Create("/data/a", 256, cl.Node(2))
	if len(f.Replicas) != ReplicationFactor {
		t.Fatalf("replicas=%d, want %d", len(f.Replicas), ReplicationFactor)
	}
	if f.Replicas[0] != 2 {
		t.Fatal("preferred node not first replica")
	}
	seen := map[int]bool{}
	for _, r := range f.Replicas {
		if seen[r] {
			t.Fatal("duplicate replica placement")
		}
		seen[r] = true
	}
}

func TestCreateSmallCluster(t *testing.T) {
	_, _, fs := bed(2)
	f := fs.Create("/data/a", 10, nil)
	if len(f.Replicas) != 2 {
		t.Fatalf("2-node cluster placed %d replicas, want 2", len(f.Replicas))
	}
}

func TestLookup(t *testing.T) {
	_, _, fs := bed(3)
	fs.Create("/x", 1, nil)
	if fs.Lookup("/x") == nil {
		t.Fatal("created file not found")
	}
	if fs.Lookup("/y") != nil {
		t.Fatal("phantom file found")
	}
}

func TestReadMissingPanics(t *testing.T) {
	_, cl, fs := bed(3)
	defer func() {
		if recover() == nil {
			t.Error("read of missing path did not panic")
		}
	}()
	fs.Read(cl.Node(0), "/missing", func(sim.Time) {})
}

func TestReadCompletesWithChecksumCost(t *testing.T) {
	eng, cl, fs := bed(4)
	fs.Create("/data/a", 80, cl.Node(0))
	var done sim.Time
	fs.Read(cl.Node(0), "/data/a", func(at sim.Time) { done = at })
	eng.Run()
	// Local read: lookup RPC (2ms) + lookup CPU (15ms) + 80MB at 800MB/s
	// (100ms) + checksum CPU (80*0.0003=24ms) ≈ 140ms.
	if done < 100 || done > 250 {
		t.Fatalf("local read finished at %dms, want ~140", done)
	}
}

func TestRemoteReadCrossesNetworkLegs(t *testing.T) {
	eng, cl, fs := bed(4)
	f := fs.Create("/data/a", 100, cl.Node(1))
	// Force remote by reading from a node with no replica.
	var reader *cluster.Node
	for _, n := range cl.Nodes {
		if !hasReplica(f, n.Index) {
			reader = n
			break
		}
	}
	if reader == nil {
		t.Skip("all nodes hold a replica")
	}
	var done sim.Time
	fs.Read(reader, "/data/a", func(at sim.Time) { done = at })
	// Saturate the reader's NIC to prove the read crosses it.
	reader.Net.Start(1e7, 1250, func(sim.Time) {})
	eng.RunUntil(1_000_000)
	// NIC shared 50/50: 100MB at 625MB/s ≈ 160ms + overheads.
	if done < 150 {
		t.Fatalf("remote read too fast (%dms) — did it skip the NIC leg?", done)
	}
}

func TestWriteLoadsLocalAndRemoteDisks(t *testing.T) {
	eng, cl, fs := bed(4)
	var done sim.Time
	fs.Write(cl.Node(0), "/out/x", 400, func(at sim.Time) { done = at })
	eng.Run()
	if done < 400 {
		t.Fatalf("400MB write finished at %dms — faster than one disk pass", done)
	}
	f := fs.Lookup("/out/x")
	if f == nil || f.Replicas[0] != 0 {
		t.Fatal("write did not register the file with a local first replica")
	}
}

func TestPacedReadIsSlower(t *testing.T) {
	eng, cl, fs := bed(4)
	f := fs.Create("/data/a", 300, cl.Node(0))
	var fast, slow sim.Time
	fs.ReadData(cl.Node(0), f, 300, func(at sim.Time) { fast = at })
	eng.Run()
	fs.ReadPaced(cl.Node(0), f, 300, 30, func(at sim.Time) { slow = at })
	eng.Run()
	slowDur := slow - fast
	// 300MB at 30MB/s = 10s.
	if slowDur < 9_000 || slowDur > 12_000 {
		t.Fatalf("paced read took %dms, want ~10000", slowDur)
	}
}

func TestPacedReadNilFileUsesRemote(t *testing.T) {
	eng, cl, fs := bed(4)
	var done bool
	fs.ReadPaced(cl.Node(0), nil, 10, 100, func(sim.Time) { done = true })
	eng.Run()
	if !done {
		t.Fatal("anonymous paced read never completed")
	}
}

func TestBlockSpreadSourceSelection(t *testing.T) {
	_, cl, fs := bed(10)
	big := fs.Create("/big", 10*1024, cl.Node(0)) // way over 3 blocks
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[fs.pickSource(cl.Node(0), big)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("big-file reads only hit %d nodes; blocks should spread cluster-wide", len(seen))
	}
	small := fs.Create("/small", 64, cl.Node(3))
	for i := 0; i < 100; i++ {
		src := fs.pickSource(cl.Node(9), small)
		if !hasReplica(small, src) {
			t.Fatalf("small-file read from non-replica node %d", src)
		}
	}
}

func TestSmallFileLocalPreference(t *testing.T) {
	_, cl, fs := bed(8)
	f := fs.Create("/small", 64, cl.Node(4))
	for i := 0; i < 50; i++ {
		if src := fs.pickSource(cl.Node(4), f); src != 4 {
			t.Fatalf("local replica not preferred: src=%d", src)
		}
	}
}

func TestNegativeSizePanics(t *testing.T) {
	_, _, fs := bed(2)
	defer func() {
		if recover() == nil {
			t.Error("negative size did not panic")
		}
	}()
	fs.Create("/bad", -1, nil)
}

// Property: every read of a created file completes, for any size.
func TestPropertyReadsComplete(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng, cl, fs := bed(4)
		done := 0
		for i, s := range sizes {
			if i >= 10 {
				break
			}
			path := string(rune('a'+i)) + "/f"
			fs.Create(path, float64(s%2000)+1, nil)
			fs.Read(cl.Node(i%4), path, func(sim.Time) { done++ })
		}
		eng.Run()
		n := len(sizes)
		if n > 10 {
			n = 10
		}
		return done == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
