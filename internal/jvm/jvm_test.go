package jvm

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/sim"
)

func bed() (*sim.Engine, *cluster.Node) {
	eng := sim.NewEngine()
	cfg := cluster.DefaultConfig()
	cfg.Workers = 1
	cfg.Node.DiskSeekPenalty = 0
	cl := cluster.New(eng, cfg)
	return eng, cl.Node(0)
}

func TestBootOrdering(t *testing.T) {
	eng, node := bed()
	var firstLogAt, warmAt sim.Time
	Spark().Boot(eng, node, rng.New(1), false,
		func() { firstLogAt = eng.Now() },
		func() { warmAt = eng.Now() })
	eng.Run()
	if firstLogAt <= 0 {
		t.Fatal("firstLog never fired")
	}
	if warmAt <= firstLogAt {
		t.Fatalf("warm at %d not after firstLog at %d", warmAt, firstLogAt)
	}
}

func TestBootLatencyRoughlyCalibrated(t *testing.T) {
	eng, node := bed()
	r := rng.New(2)
	var total sim.Time
	n := 40
	var runOne func(i int)
	runOne = func(i int) {
		if i >= n {
			return
		}
		start := eng.Now()
		Spark().Boot(eng, node, r, false, func() {}, func() {
			total += eng.Now() - start
			runOne(i + 1)
		})
	}
	runOne(0)
	eng.Run()
	mean := float64(total) / float64(n)
	// Bootstrap ~620ms + warmup ~450ms + disk ~200ms: around 1.0-1.5s.
	if mean < 900 || mean > 1700 {
		t.Fatalf("mean boot-to-warm %.0fms, want ~1000-1500", mean)
	}
}

func TestReuseIsMuchFaster(t *testing.T) {
	eng, node := bed()
	r := rng.New(3)
	var cold, warm sim.Time
	start := eng.Now()
	Spark().Boot(eng, node, r, false, func() {}, func() { cold = eng.Now() - start })
	eng.Run()
	start2 := eng.Now()
	Spark().Boot(eng, node, r, true, func() {}, func() { warm = eng.Now() - start2 })
	eng.Run()
	if warm*4 > cold {
		t.Fatalf("JVM reuse boot %dms not <4x faster than cold %dms", warm, cold)
	}
}

func TestWarmupStretchesUnderCPULoad(t *testing.T) {
	measure := func(load bool) sim.Time {
		eng, node := bed()
		if load {
			node.Compute(1e9, 256, func(sim.Time) {})
		}
		var d sim.Time
		start := eng.Now()
		Spark().Boot(eng, node, rng.New(4), false, func() {}, func() { d = eng.Now() - start })
		eng.RunUntil(1_000_000)
		return d
	}
	idle, busy := measure(false), measure(true)
	if busy <= idle+200 {
		t.Fatalf("warm-up under CPU load %dms vs idle %dms — no contention effect", busy, idle)
	}
}

func TestWarmupStretchesUnderDiskLoad(t *testing.T) {
	measure := func(load bool) sim.Time {
		eng, node := bed()
		if load {
			for i := 0; i < 12; i++ {
				node.Disk.Start(1e9, 800, func(sim.Time) {})
			}
		}
		var d sim.Time
		start := eng.Now()
		Spark().Boot(eng, node, rng.New(4), false, func() {}, func() { d = eng.Now() - start })
		eng.RunUntil(10_000_000)
		return d
	}
	idle, busy := measure(false), measure(true)
	if busy <= idle+500 {
		t.Fatalf("warm-up under disk load %dms vs idle %dms — class loading should slow (paper §IV-E)", busy, idle)
	}
}

func TestModelOrdering(t *testing.T) {
	if jm, s := MapReduceMaster(), Spark(); jm.BootstrapMedianMs <= s.BootstrapMedianMs {
		t.Fatal("MR master JVM should be heavier than Spark's (Fig 9a)")
	}
	if tk, s := MapReduceTask(), Spark(); tk.BootstrapMedianMs <= s.BootstrapMedianMs {
		t.Fatal("MR task JVM should be heavier than Spark's (Fig 9a)")
	}
}
