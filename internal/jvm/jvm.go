// Package jvm models Java virtual machine start-up and warm-up, the cost
// the paper (citing Lion et al., OSDI'16) identifies as a major part of
// the in-application delay. A launch has two phases:
//
//  1. Bootstrap — process fork/exec, JVM binary load, class-path scan.
//     Mostly latency-bound; modeled as a log-normal floor. The instance's
//     first log line appears at the end of bootstrap.
//  2. Warm-up — class loading and JIT interpretation of framework code.
//     CPU-bound, so it runs on the node's CPU share and stretches under
//     CPU interference (Fig 13's driver/executor slowdowns).
//
// Reuse mode (the paper's proposed "JVM reuse" optimization, Table III)
// skips bootstrap almost entirely and most of warm-up.
package jvm

import (
	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Model parameterizes one JVM class (driver JVMs are heavier than task
// JVMs because they load more framework classes).
type Model struct {
	// BootstrapMedianMs and BootstrapSigma parameterize the log-normal
	// bootstrap floor (fork/exec to first log line).
	BootstrapMedianMs float64
	BootstrapSigma    float64
	// WarmupVcoreSec is CPU work spent on class loading + JIT after the
	// first log line; WarmupVcores is its parallelism cap.
	WarmupVcoreSec float64
	WarmupVcores   float64
	// WarmupDiskMB is read from the local disk during warm-up (class and
	// jar loading). The paper attributes part of the executor-delay
	// degradation under IO interference to exactly this (§IV-E: "heavy
	// disk activities interfere with JVM warm-up when the JVM is loading
	// classes from jar packages").
	WarmupDiskMB         float64
	WarmupDiskDemandMBps float64
	// ReuseBootstrapMs and ReuseWarmupFraction describe the JVM-reuse
	// optimization: a reused JVM attaches in ReuseBootstrapMs and repeats
	// only ReuseWarmupFraction of the warm-up.
	ReuseBootstrapMs    float64
	ReuseWarmupFraction float64
}

// Spark returns the model calibrated for Spark driver/executor JVMs: a
// ~700 ms median launch (Fig 9a) of which roughly 250 ms is bootstrap
// floor and the rest CPU-bound warm-up.
func Spark() Model {
	return Model{
		BootstrapMedianMs:    620,
		BootstrapSigma:       0.18,
		WarmupVcoreSec:       0.90,
		WarmupVcores:         2,
		WarmupDiskMB:         140,
		WarmupDiskDemandMBps: 650,
		ReuseBootstrapMs:     40,
		ReuseWarmupFraction:  0.1,
	}
}

// MapReduceMaster returns the model for the MapReduce ApplicationMaster
// (mrm), slightly heavier than Spark's (Fig 9a).
func MapReduceMaster() Model {
	m := Spark()
	m.BootstrapMedianMs = 850
	m.WarmupVcoreSec = 1.2
	return m
}

// MapReduceTask returns the model for MR map/reduce task JVMs (mrsm/mrsr).
func MapReduceTask() Model {
	m := Spark()
	m.BootstrapMedianMs = 760
	m.WarmupVcoreSec = 1.05
	return m
}

// Boot runs the bootstrap phase on node and calls firstLog at its end (the
// instant the process writes its first log line), then runs warm-up on the
// node CPU and calls warm when the JVM is ready for framework work.
func (m Model) Boot(eng *sim.Engine, node *cluster.Node, r *rng.Source, reuse bool, firstLog, warm func()) {
	bootMs := m.BootstrapMedianMs
	warmWork := m.WarmupVcoreSec
	if reuse {
		bootMs = m.ReuseBootstrapMs
		warmWork *= m.ReuseWarmupFraction
	}
	diskMB := m.WarmupDiskMB
	if reuse {
		diskMB *= m.ReuseWarmupFraction
	}
	d := int64(r.LogNormalMedian(bootMs, m.BootstrapSigma))
	if d < 1 {
		d = 1
	}
	eng.After(d, func() {
		firstLog()
		// Class-loading disk reads and JIT CPU interleave; warm-up ends
		// when both are done.
		remaining := 1
		join := func() {
			remaining--
			if remaining == 0 {
				warm()
			}
		}
		if diskMB > 0 {
			remaining++
			cluster.StartTransfer(eng, []cluster.Leg{
				{Res: node.Disk, Work: diskMB, Demand: m.WarmupDiskDemandMBps},
			}, func(sim.Time) { join() })
		}
		if warmWork <= 0 {
			eng.After(0, join)
			return
		}
		node.Compute(warmWork, m.WarmupVcores, func(sim.Time) { join() })
	})
}
