package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestForkIsStableAndIndependent(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork(3)
	c2 := parent.Fork(3)
	if c1.Uint64() != c2.Uint64() {
		t.Fatal("Fork with same id is not reproducible")
	}
	c3 := parent.Fork(4)
	if c3.Uint64() == parent.Fork(3).Uint64() {
		t.Fatal("Fork with different ids collided")
	}
	// Forking must not advance the parent.
	p1, p2 := New(7), New(7)
	p1.Fork(9)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Fork advanced the parent state")
	}
}

func TestPropertyFloat64Range(t *testing.T) {
	s := New(11)
	f := func(uint8) bool {
		v := s.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIntnRange(t *testing.T) {
	s := New(12)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniformBounds(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(5, 9)
		if v < 5 || v >= 9 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(14)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(100)
	}
	mean := sum / n
	if mean < 90 || mean > 110 {
		t.Fatalf("Exp(100) sample mean %.1f, want ~100", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(15)
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := s.Normal(50, 10)
		sum += v
		sq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-50) > 1 {
		t.Fatalf("Normal mean %.2f, want ~50", mean)
	}
	if math.Abs(sd-10) > 1 {
		t.Fatalf("Normal stddev %.2f, want ~10", sd)
	}
}

func TestBoundedNormalClamps(t *testing.T) {
	s := New(16)
	for i := 0; i < 5000; i++ {
		v := s.BoundedNormal(0, 100, -5, 5)
		if v < -5 || v > 5 {
			t.Fatalf("BoundedNormal escaped bounds: %v", v)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(17)
	const n = 20001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LogNormalMedian(700, 0.3)
	}
	// Median of samples should be near the parameter.
	count := 0
	for _, v := range vals {
		if v < 700 {
			count++
		}
	}
	frac := float64(count) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("LogNormalMedian: %.3f of samples below the median parameter, want ~0.5", frac)
	}
}

func TestParetoTail(t *testing.T) {
	s := New(18)
	for i := 0; i < 5000; i++ {
		if v := s.Pareto(10, 2); v < 10 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestPropertyPermIsPermutation(t *testing.T) {
	s := New(19)
	f := func(n uint8) bool {
		m := int(n%50) + 1
		p := s.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
