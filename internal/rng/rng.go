// Package rng provides seeded random distributions used by the latency
// models of the simulated cluster. All sources are deterministic: a Source
// built from the same seed produces the same stream, which keeps whole
// simulation runs reproducible.
//
// The generator is SplitMix64 (Steele et al., "Fast Splittable
// Pseudorandom Number Generators"), chosen over math/rand so that a seed
// can be cheaply forked per component (per node, per container) without
// correlated streams.
package rng

import "math"

// Source is a deterministic pseudorandom source. The zero value is a valid
// source seeded with 0; prefer New to make seeding explicit.
type Source struct {
	state uint64
}

// New returns a source with the given seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// State exposes the generator's current internal state. The model checker
// folds it into canonical state fingerprints: two simulation states that
// agree on all domain fields but hold different generator states must not
// be merged, because their futures diverge.
func (s *Source) State() uint64 { return s.state }

// Fork derives an independent child source from this one, keyed by id.
// Forking with the same id twice yields the same child; distinct ids yield
// decorrelated streams. The parent's state is not advanced.
func (s *Source) Fork(id uint64) *Source {
	// Mix parent state and id through one SplitMix64 round each.
	z := s.state + 0x9e3779b97f4a7c15*(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &Source{state: z ^ (z >> 31)}
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box-Muller).
func (s *Source) Normal(mean, stddev float64) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// BoundedNormal returns a normal sample clamped to [lo, hi]. It models
// latencies with a typical value and physical floor/ceiling.
func (s *Source) BoundedNormal(mean, stddev, lo, hi float64) float64 {
	v := s.Normal(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LogNormal returns a log-normally distributed value parameterized by the
// underlying normal's mu and sigma. Log-normal is the canonical shape for
// launch and warm-up latencies (long right tail).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LogNormalMedian returns a log-normal sample parameterized by its median
// and the sigma of the underlying normal — more convenient for calibrating
// latency models against a paper's reported medians.
func (s *Source) LogNormalMedian(median, sigma float64) float64 {
	return median * math.Exp(s.Normal(0, sigma))
}

// Pareto returns a Pareto-distributed value with scale xm and shape alpha.
// Used for heavy-tailed components (Docker image loads, bursty arrivals).
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Shuffle permutes the integers [0, n) in place notification order.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
