package yarn

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestCacheHitMiss(t *testing.T) {
	c := newLocalCache(1000)
	if c.Contains("/a") {
		t.Fatal("empty cache hit")
	}
	c.Put("/a", 100)
	if !c.Contains("/a") {
		t.Fatal("miss after put")
	}
	hits, misses, _, used := c.Stats()
	if hits != 1 || misses != 1 || used != 100 {
		t.Fatalf("stats hits=%d misses=%d used=%v", hits, misses, used)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newLocalCache(250)
	c.Put("/a", 100)
	c.Put("/b", 100)
	c.Contains("/a") // refresh /a: /b becomes LRU
	c.Put("/c", 100) // overflow: evict /b
	if c.Contains("/b") {
		t.Fatal("/b should have been evicted (LRU)")
	}
	if !c.Contains("/a") || !c.Contains("/c") {
		t.Fatal("recent entries evicted")
	}
	_, _, ev, used := c.Stats()
	if ev != 1 || used != 200 {
		t.Fatalf("evictions=%d used=%v", ev, used)
	}
}

func TestCacheOversizedEntryKept(t *testing.T) {
	c := newLocalCache(100)
	c.Put("/huge", 500)
	if !c.Contains("/huge") {
		t.Fatal("sole oversized entry must survive (cache target-size semantics)")
	}
}

func TestCacheUpdateSize(t *testing.T) {
	c := newLocalCache(0) // unbounded
	c.Put("/a", 100)
	c.Put("/a", 300)
	if _, _, _, used := c.Stats(); used != 300 {
		t.Fatalf("used=%v after size update, want 300", used)
	}
	if c.Len() != 1 {
		t.Fatalf("len=%d", c.Len())
	}
}

func TestCacheUnboundedNeverEvicts(t *testing.T) {
	c := newLocalCache(0)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("/f%d", i), 1000)
	}
	if _, _, ev, _ := c.Stats(); ev != 0 {
		t.Fatalf("unbounded cache evicted %d", ev)
	}
	if c.Len() != 100 {
		t.Fatalf("len=%d", c.Len())
	}
}

// Property: used never exceeds capacity by more than one oversized entry,
// and Len matches the linked list.
func TestPropertyCacheInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c := newLocalCache(500)
		for _, op := range ops {
			path := fmt.Sprintf("/f%d", op%17)
			switch op % 3 {
			case 0, 1:
				c.Put(path, float64(op%200)+1)
			default:
				c.Contains(path)
			}
			// Walk the list and cross-check.
			n := 0
			var sum float64
			for e := c.head; e != nil; e = e.next {
				n++
				sum += e.sizeMB
				if n > c.Len()+1 {
					return false // cycle
				}
			}
			if n != c.Len() || sum != c.usedMB {
				return false
			}
			if c.Len() > 1 && c.usedMB > 500+200 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderingPolicyNames(t *testing.T) {
	if OrderFIFO.String() != "fifo" || OrderFair.String() != "fair" {
		t.Fatal("policy names")
	}
}

func TestFairOrderingPrefersSmallApps(t *testing.T) {
	big := &App{running: map[ids.ContainerID]*Allocation{}}
	small := &App{running: map[ids.ContainerID]*Allocation{}}
	for i := 0; i < 5; i++ {
		big.running[ids.ContainerID{Num: i}] = nil
	}
	q := []*ask{{app: big}, {app: small}}
	orderQueue(OrderFair, q)
	if q[0].app != small {
		t.Fatal("fair ordering did not prefer the smaller app")
	}
	// AM asks jump the queue entirely.
	q = []*ask{{app: big}, {app: small}, {app: big, forAM: true}}
	orderQueue(OrderFair, q)
	if !q[0].forAM {
		t.Fatal("AM ask not served first under fair ordering")
	}
	// FIFO leaves the order alone.
	q = []*ask{{app: big}, {app: small}}
	orderQueue(OrderFIFO, q)
	if q[0].app != big {
		t.Fatal("FIFO reordered the queue")
	}
}
