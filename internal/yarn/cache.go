package yarn

// localCache is the NodeManager's public-resource localization cache
// (the "shared cache" of real YARN, and the substrate for the caching
// service the paper proposes in §V-B). It is an LRU bounded by
// capacityMB; capacity <= 0 means unbounded.
type localCache struct {
	capacityMB float64
	usedMB     float64
	entries    map[string]*cacheEntry
	head, tail *cacheEntry // most-recent at head

	hits, misses, evictions int
}

type cacheEntry struct {
	path       string
	sizeMB     float64
	prev, next *cacheEntry
}

func newLocalCache(capacityMB float64) *localCache {
	return &localCache{capacityMB: capacityMB, entries: make(map[string]*cacheEntry)}
}

// Contains reports a hit and refreshes recency.
func (c *localCache) Contains(path string) bool {
	e, ok := c.entries[path]
	if !ok {
		c.misses++
		return false
	}
	c.hits++
	c.moveToFront(e)
	return true
}

// Put inserts (or refreshes) a localized resource, evicting least
// recently used entries to fit.
func (c *localCache) Put(path string, sizeMB float64) {
	if e, ok := c.entries[path]; ok {
		c.usedMB += sizeMB - e.sizeMB
		e.sizeMB = sizeMB
		c.moveToFront(e)
		c.evictToFit()
		return
	}
	e := &cacheEntry{path: path, sizeMB: sizeMB}
	c.entries[path] = e
	c.usedMB += sizeMB
	c.pushFront(e)
	c.evictToFit()
}

// Stats returns (hits, misses, evictions, usedMB).
func (c *localCache) Stats() (hits, misses, evictions int, usedMB float64) {
	return c.hits, c.misses, c.evictions, c.usedMB
}

// Len returns the number of cached resources.
func (c *localCache) Len() int { return len(c.entries) }

func (c *localCache) evictToFit() {
	if c.capacityMB <= 0 {
		return
	}
	for c.usedMB > c.capacityMB && c.tail != nil {
		victim := c.tail
		// Never evict the entry we just inserted if it is alone; an
		// oversized single resource simply exceeds the target size, as
		// YARN's cache-target-size behaves.
		if victim == c.head {
			return
		}
		c.remove(victim)
		delete(c.entries, victim.path)
		c.usedMB -= victim.sizeMB
		c.evictions++
	}
}

func (c *localCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *localCache) remove(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *localCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.remove(e)
	c.pushFront(e)
}
