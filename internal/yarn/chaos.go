package yarn

// ChaosFlags deliberately disable internal safety guards. They exist so
// the model checker's self-tests (internal/mc, cmd/sdmc -break-epoch-guard)
// can prove that removing a guard is *observable*: the small-scope
// explorer must produce a minimized counterexample the moment a guard is
// gone. Production code never sets these.
type ChaosFlags struct {
	// DisableNMEpochGuard makes containerRun.stale ignore the NodeManager
	// incarnation check: localization/launch callback chains scheduled
	// before a crash resume against the restarted NM as if nothing
	// happened, resurrecting containers the RM already declared lost.
	DisableNMEpochGuard bool
}

var chaos ChaosFlags

// SetChaos installs (or, with the zero value, clears) the chaos flags.
// Tests that set chaos must restore the zero value before returning; the
// flags are process-global and deliberately crude.
func SetChaos(c ChaosFlags) { chaos = c }
