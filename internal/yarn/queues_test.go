package yarn

import (
	"strings"
	"testing"
)

func TestQueueSetDefaults(t *testing.T) {
	qs, err := newQueueSet(1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qs.lookup("")
	if err != nil || q.cfg.Name != DefaultQueueName {
		t.Fatalf("default lookup: %v %+v", err, q)
	}
	if !qs.canAllocate(q, 1000) {
		t.Fatal("default queue should own the whole cluster")
	}
	if qs.canAllocate(q, 1001) {
		t.Fatal("over-cluster allocation accepted")
	}
}

func TestQueueSetValidation(t *testing.T) {
	cases := []struct {
		name string
		cfgs []QueueConfig
		want string
	}{
		{"empty name", []QueueConfig{{Name: "", Capacity: 1}}, "empty name"},
		{"bad capacity", []QueueConfig{{Name: "a", Capacity: 0}}, "capacity"},
		{"bad max", []QueueConfig{{Name: "a", Capacity: 0.5, MaxCapacity: 0.3}}, "max-capacity"},
		{"dup", []QueueConfig{{Name: "a", Capacity: 0.4}, {Name: "a", Capacity: 0.4}}, "duplicate"},
		{"oversum", []QueueConfig{{Name: "a", Capacity: 0.7}, {Name: "b", Capacity: 0.7}}, "sum"},
	}
	for _, c := range cases {
		if _, err := newQueueSet(1000, c.cfgs); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err=%v", c.name, err)
		}
	}
}

func TestQueueElasticCeiling(t *testing.T) {
	qs, err := newQueueSet(1000, []QueueConfig{
		{Name: "prod", Capacity: 0.6, MaxCapacity: 0.8},
		{Name: "adhoc", Capacity: 0.4, MaxCapacity: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := qs.lookup("prod")
	// prod can burst past its 60% guarantee up to 80%.
	qs.charge(prod, 700)
	if !qs.canAllocate(prod, 100) {
		t.Fatal("burst below the ceiling rejected")
	}
	if qs.canAllocate(prod, 101) {
		t.Fatal("burst above the ceiling accepted")
	}
	qs.uncharge(prod, 700)
	if prod.usedMemMB != 0 {
		t.Fatal("uncharge accounting broken")
	}
	if _, err := qs.lookup("nope"); err == nil {
		t.Fatal("unknown queue accepted")
	}
}

func TestQueueHeadroomOrder(t *testing.T) {
	qs, _ := newQueueSet(1000, []QueueConfig{
		{Name: "a", Capacity: 0.5},
		{Name: "b", Capacity: 0.5},
	})
	a, _ := qs.lookup("a")
	qs.charge(a, 400) // a is nearly at its guarantee; b untouched
	order := qs.headroomOrder()
	if order[0] != "b" {
		t.Fatalf("underserved queue not first: %v", order)
	}
	if qs.usage("a") != 0.4 {
		t.Fatalf("usage=%v", qs.usage("a"))
	}
}
