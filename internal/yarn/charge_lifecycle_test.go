package yarn_test

// Table-driven tests for the leaf-queue charge lifecycle: every way a
// guaranteed container can end — normal completion, launch failure, node
// loss, release before acquisition, AM requeue — must return its memory
// charge, leaving queue usage at zero and no container charged. These
// are the code paths behind the model checker's queue-charge-conservation
// oracle; run them under -race in CI like the rest of the suite.

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/testkit"
	"repro/internal/yarn"
)

func TestChargeLifecycleReturnsEveryCharge(t *testing.T) {
	cases := []struct {
		name string
		// drive runs the scenario each time the AM (re)launches; attempt
		// counts launches, so relaunch-aware scenarios can arm only once.
		drive func(t *testing.T, b *testkit.Bed, env *yarn.ProcessEnv, attempt int)
		// runSeconds gives slow scenarios (expiry, relaunch) room to settle.
		runSeconds int
	}{
		{
			name: "normal completion",
			drive: func(t *testing.T, b *testkit.Bed, env *yarn.ProcessEnv, attempt int) {
				app := env.Alloc.Container.App
				b.RM.Ask(app, 2, yarn.Profile{VCores: 1, MemoryMB: 2048})
				sim.NewTicker(env.Eng, 300, 100, func() {
					for _, g := range b.RM.Pull(app) {
						g.Node.StartContainer(g, execSpec(&stubProc{lifeMs: 500}))
					}
				})
			},
		},
		{
			name: "release before acquisition",
			drive: func(t *testing.T, b *testkit.Bed, env *yarn.ProcessEnv, attempt int) {
				app := env.Alloc.Container.App
				b.RM.Ask(app, 2, yarn.Profile{VCores: 1, MemoryMB: 2048})
				sim.NewTicker(env.Eng, 300, 100, func() {
					if grants := b.RM.Pull(app); len(grants) > 0 {
						b.RM.ReleaseGrants(app, grants)
					}
				})
			},
		},
		{
			name: "node loss while running",
			drive: func(t *testing.T, b *testkit.Bed, env *yarn.ProcessEnv, attempt int) {
				app := env.Alloc.Container.App
				b.RM.Ask(app, 1, yarn.Profile{VCores: 1, MemoryMB: 2048})
				sim.NewTicker(env.Eng, 300, 100, func() {
					for _, g := range b.RM.Pull(app) {
						node := g.Node
						g.Node.StartContainer(g, execSpec(&stubProc{lifeMs: 600_000}))
						// Kill the worker's node shortly after launch; the
						// charge must come back via the lost-container path.
						env.Eng.After(2000, node.Crash)
					}
				})
			},
			runSeconds: 60,
		},
		{
			name: "launch failure",
			drive: func(t *testing.T, b *testkit.Bed, env *yarn.ProcessEnv, attempt int) {
				app := env.Alloc.Container.App
				b.RM.Ask(app, 1, yarn.Profile{VCores: 1, MemoryMB: 2048})
				sim.NewTicker(env.Eng, 300, 100, func() {
					for _, g := range b.RM.Pull(app) {
						node := g.Node
						// Crash and restart the node before the launch
						// arrives: launching against the new incarnation may
						// fail or re-reserve, but either way the charge is
						// returned when the container reaches its terminal.
						node.Crash()
						node.Restart()
						g.Node.StartContainer(g, execSpec(&stubProc{lifeMs: 500}))
					}
				})
			},
			runSeconds: 60,
		},
		{
			name: "AM requeue drops grant charges",
			drive: func(t *testing.T, b *testkit.Bed, env *yarn.ProcessEnv, attempt int) {
				app := env.Alloc.Container.App
				if attempt > 1 {
					// Relaunched after the crash below: the dead attempt's
					// pending charges were returned by requeueAM; wrap up.
					env.Eng.After(500, func() {
						b.RM.FinishApp(app)
						env.Exit()
					})
					return
				}
				// Two grants left pending (never pulled), then the AM's own
				// node dies: requeueAM must return the pending charges, and
				// the relaunched AM (same durable stubProc) finishes the app.
				b.RM.Ask(app, 2, yarn.Profile{VCores: 1, MemoryMB: 2048})
				env.Eng.After(3000, func() {
					idx := nodeIndexByName(b, env.Node.Name)
					b.NMs[idx].Crash()
					env.Eng.After(1000, b.NMs[idx].Restart)
				})
			},
			runSeconds: 120,
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := testkit.New(testkit.Options{
				Workers: 2,
				Yarn: func(cfg *yarn.Config) {
					cfg.NMHeartbeatMs = 100
					cfg.NodeExpiryMs = 4000
					cfg.LocalityDelayMaxBeats = 0
				},
			})
			b.Prewarm(map[string]float64{"/pkg": 100})
			attempt := 0
			am := &stubProc{lifeMs: 20_000, onLaunch: func(env *yarn.ProcessEnv) {
				attempt++
				b.RM.RegisterAttempt(env.Alloc.Container.App)
				c.drive(t, b, env, attempt)
			}}
			b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
			secs := int64(c.runSeconds)
			if secs == 0 {
				secs = 30
			}
			b.Run(secs)

			if charged := b.RM.ChargedContainers(); len(charged) != 0 {
				t.Fatalf("containers still charged after drain: %v", charged)
			}
			if u := b.RM.QueueUsage(yarn.DefaultQueueName); u != 0 {
				t.Fatalf("queue usage %.4f after drain, want 0", u)
			}
			for _, n := range b.RM.Snapshot().Nodes {
				if n.ReservedMemMB < 0 || n.ReservedVCores < 0 {
					t.Fatalf("node %s counters negative: mem=%d vcores=%d",
						n.Name, n.ReservedMemMB, n.ReservedVCores)
				}
			}
		})
	}
}

func execSpec(proc yarn.Process) yarn.LaunchSpec {
	return yarn.LaunchSpec{
		Resources: []yarn.LocalResource{{Path: "/pkg", SizeMB: 50, Public: true}},
		Instance:  yarn.InstSparkExecutor,
		Process:   proc,
	}
}
