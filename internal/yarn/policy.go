package yarn

import "sort"

// OrderingPolicy selects which pending request the centralized scheduler
// serves first at each scheduling opportunity. The paper's deployment
// offers both the Capacity Scheduler's FIFO ordering and the Fair
// Scheduler's fair-share ordering (§IV-A mentions Capacity and Fair as
// the configurable centralized schedulers).
type OrderingPolicy int

// Supported orderings.
const (
	// OrderFIFO serves requests in submission order (Capacity Scheduler
	// default ordering policy).
	OrderFIFO OrderingPolicy = iota
	// OrderFair serves the application with the fewest running containers
	// first (Fair Scheduler / fair ordering policy), which shortens the
	// allocation delay of small jobs behind large ones.
	OrderFair
)

// String names the policy.
func (p OrderingPolicy) String() string {
	if p == OrderFair {
		return "fair"
	}
	return "fifo"
}

// orderQueue arranges the pending asks according to the policy. FIFO
// leaves submission order intact; Fair sorts by the owning application's
// current container count (stable, so equal apps stay FIFO).
func orderQueue(policy OrderingPolicy, queue []*ask) {
	if policy != OrderFair {
		return
	}
	sort.SliceStable(queue, func(i, j int) bool {
		// AM requests always sort first: an application cannot make
		// progress at all without its master.
		if queue[i].forAM != queue[j].forAM {
			return queue[i].forAM
		}
		return len(queue[i].app.running) < len(queue[j].app.running)
	})
}
