package yarn_test

import (
	"strings"
	"testing"

	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/testkit"
	"repro/internal/yarn"
)

// stubProc is a minimal container process: it emits a first log line,
// runs for lifeMs, then exits.
type stubProc struct {
	lifeMs   int64
	onLaunch func(env *yarn.ProcessEnv)
	env      *yarn.ProcessEnv
}

func (p *stubProc) Launched(env *yarn.ProcessEnv) {
	p.env = env
	env.Logger("test.Stub").Infof("stub started")
	env.MarkFirstLog()
	if p.onLaunch != nil {
		p.onLaunch(env)
	}
	if p.lifeMs > 0 {
		env.Eng.After(p.lifeMs, env.Exit)
	}
}

func amSpec(proc yarn.Process) yarn.LaunchSpec {
	return yarn.LaunchSpec{
		Resources: []yarn.LocalResource{{Path: "/pkg", SizeMB: 100, Public: true}},
		Instance:  yarn.InstSparkDriver,
		Process:   proc,
	}
}

func logText(b *testkit.Bed, file string) string {
	return strings.Join(b.Lines(file), "\n")
}

func TestSubmissionWalksAppStateMachine(t *testing.T) {
	b := testkit.New(testkit.Options{})
	b.Prewarm(map[string]float64{"/pkg": 100})
	am := &stubProc{lifeMs: 500}
	id := b.RM.Submit(yarn.AppSpec{Name: "t", Type: "SPARK", AMLaunch: amSpec(am)})
	b.Run(60)
	rmLog := logText(b, yarn.RMLogFile)
	for _, want := range []string{
		id.String() + " State change from NEW to NEW_SAVING",
		"from NEW_SAVING to SUBMITTED",
		"from SUBMITTED to ACCEPTED on event = APP_ACCEPTED",
	} {
		if !strings.Contains(rmLog, want) {
			t.Errorf("RM log missing %q", want)
		}
	}
}

func TestAMContainerIsLaunched(t *testing.T) {
	b := testkit.New(testkit.Options{})
	b.Prewarm(map[string]float64{"/pkg": 100})
	launched := false
	am := &stubProc{lifeMs: 1000, onLaunch: func(env *yarn.ProcessEnv) {
		launched = true
		if !env.Alloc.Container.IsAM() {
			t.Error("AM process not in container 1")
		}
	}}
	id := b.RM.Submit(yarn.AppSpec{Name: "t", Type: "SPARK", AMLaunch: amSpec(am)})
	b.Run(120)
	if !launched {
		t.Fatal("AM container never launched")
	}
	rmLog := logText(b, yarn.RMLogFile)
	cid := ids.ContainerID{App: id, Attempt: 1, Num: 1}
	if !strings.Contains(rmLog, cid.String()+" Container Transitioned from NEW to ALLOCATED") {
		t.Error("AM container ALLOCATED not logged")
	}
	if !strings.Contains(rmLog, cid.String()+" Container Transitioned from ALLOCATED to ACQUIRED") {
		t.Error("AM container ACQUIRED not logged")
	}
	// NodeManager side: LOCALIZING -> SCHEDULED -> RUNNING, then exit.
	var nmAll string
	for _, f := range b.Sink.Files() {
		if strings.Contains(f, "nodemanager") {
			nmAll += logText(b, f)
		}
	}
	for _, want := range []string{
		"transitioned from NEW to LOCALIZING",
		"from LOCALIZING to SCHEDULED",
		"from SCHEDULED to RUNNING",
		"from RUNNING to EXITED_WITH_SUCCESS",
	} {
		if !strings.Contains(nmAll, want) {
			t.Errorf("NM logs missing %q", want)
		}
	}
}

func TestAskPullAcquiresOnHeartbeat(t *testing.T) {
	b := testkit.New(testkit.Options{})
	b.Prewarm(map[string]float64{"/pkg": 100})
	var grants []*yarn.Allocation
	am := &stubProc{lifeMs: 30_000, onLaunch: func(env *yarn.ProcessEnv) {
		b.RM.RegisterAttempt(env.Alloc.Container.App)
		b.RM.Ask(env.Alloc.Container.App, 3, yarn.Profile{VCores: 2, MemoryMB: 2048})
		tick := func() { grants = append(grants, b.RM.Pull(env.Alloc.Container.App)...) }
		sim.NewTicker(env.Eng, 500, 100, tick)
	}}
	id := b.RM.Submit(yarn.AppSpec{Name: "t", Type: "SPARK", AMLaunch: amSpec(am)})
	b.Run(30)
	if len(grants) != 3 {
		t.Fatalf("pulled %d grants, want 3", len(grants))
	}
	rmLog := logText(b, yarn.RMLogFile)
	if got := strings.Count(rmLog, "from ALLOCATED to ACQUIRED"); got != 4 { // AM + 3
		t.Fatalf("ACQUIRED logged %d times, want 4", got)
	}
	_ = id
}

func TestLocalityDelayPostponesAllocation(t *testing.T) {
	mk := func(maxBeats int) sim.Time {
		b := testkit.New(testkit.Options{Yarn: func(c *yarn.Config) {
			c.LocalityDelayMaxBeats = maxBeats
		}})
		b.Prewarm(map[string]float64{"/pkg": 100})
		var granted sim.Time
		am := &stubProc{lifeMs: 600_000, onLaunch: func(env *yarn.ProcessEnv) {
			app := env.Alloc.Container.App
			b.RM.RegisterAttempt(app)
			asked := env.Eng.Now()
			b.RM.Ask(app, 1, yarn.Profile{VCores: 1, MemoryMB: 1024})
			sim.NewTicker(env.Eng, 100, 50, func() {
				if granted == 0 && len(b.RM.Pull(app)) > 0 {
					granted = env.Eng.Now() - asked
				}
			})
		}}
		b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
		b.Run(600)
		return granted
	}
	fast := mk(0)
	slow := mk(200)
	if fast == 0 || slow == 0 {
		t.Fatalf("grants missing: fast=%d slow=%d", fast, slow)
	}
	if slow < fast+2000 {
		t.Fatalf("delay scheduling had no effect: fast=%dms slow=%dms", fast, slow)
	}
}

func TestMaxAssignPerHeartbeatSpreads(t *testing.T) {
	count := func(limit int) int {
		b := testkit.New(testkit.Options{Workers: 6, Yarn: func(c *yarn.Config) {
			c.MaxAssignPerHeartbeat = limit
			c.LocalityDelayMaxBeats = 0
		}})
		b.Prewarm(map[string]float64{"/pkg": 100})
		nodes := map[string]bool{}
		am := &stubProc{lifeMs: 600_000, onLaunch: func(env *yarn.ProcessEnv) {
			app := env.Alloc.Container.App
			b.RM.RegisterAttempt(app)
			b.RM.Ask(app, 6, yarn.Profile{VCores: 1, MemoryMB: 1024})
			sim.NewTicker(env.Eng, 200, 100, func() {
				for _, g := range b.RM.Pull(app) {
					nodes[g.Node.Node.Name] = true
				}
			})
		}}
		b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
		b.Run(60)
		return len(nodes)
	}
	spread := count(1)
	packed := count(0)
	if spread < 4 {
		t.Fatalf("single-assignment spread over %d nodes, want >=4", spread)
	}
	if packed > spread {
		t.Fatalf("batch assignment spread %d > single-assignment %d", packed, spread)
	}
}

func TestOpportunisticGrantsAreImmediate(t *testing.T) {
	b := testkit.New(testkit.Options{Yarn: func(c *yarn.Config) { c.Scheduler = yarn.SchedOpportunistic }})
	b.Prewarm(map[string]float64{"/pkg": 100})
	var delay sim.Time
	am := &stubProc{lifeMs: 60_000, onLaunch: func(env *yarn.ProcessEnv) {
		app := env.Alloc.Container.App
		b.RM.RegisterAttempt(app)
		asked := env.Eng.Now()
		b.RM.AskOpportunistic(app, 4, yarn.Profile{VCores: 2, MemoryMB: 2048}, func(allocs []*yarn.Allocation) {
			delay = env.Eng.Now() - asked
			if len(allocs) != 4 {
				t.Errorf("got %d opportunistic grants, want 4", len(allocs))
			}
			for _, al := range allocs {
				if al.Type != yarn.Opportunistic {
					t.Error("grant not marked opportunistic")
				}
			}
		})
	}}
	b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
	b.Run(60)
	if delay == 0 || delay > 200 {
		t.Fatalf("opportunistic grant delay %dms, want one quick RPC", delay)
	}
}

func TestOpportunisticQueuesOnBusyNode(t *testing.T) {
	b := testkit.New(testkit.Options{Workers: 1})
	b.Prewarm(map[string]float64{"/pkg": 100})
	started := 0
	am := &stubProc{lifeMs: 600_000, onLaunch: func(env *yarn.ProcessEnv) {
		app := env.Alloc.Container.App
		b.RM.RegisterAttempt(app)
		// One worker with 32 vcores; the AM took 1. Ask for opportunistic
		// containers of 16 vcores each: two fit (with the AM's 1 vcore,
		// 1+16+16=33 > 32 -> only one runs, the second queues).
		b.RM.AskOpportunistic(app, 2, yarn.Profile{VCores: 16, MemoryMB: 1024}, func(allocs []*yarn.Allocation) {
			for _, al := range allocs {
				al.Node.StartContainer(al, yarn.LaunchSpec{
					Resources: []yarn.LocalResource{{Path: "/pkg", SizeMB: 50, Public: true}},
					Instance:  yarn.InstSparkExecutor,
					Process:   &stubProc{lifeMs: 600_000, onLaunch: func(*yarn.ProcessEnv) { started++ }},
				})
			}
		})
	}}
	b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
	b.Run(60)
	if started != 1 {
		t.Fatalf("started %d opportunistic containers, want 1 (second queued)", started)
	}
	if q := b.NMs[0].QueuedOpportunistic(); q != 1 {
		t.Fatalf("NM queue depth %d, want 1", q)
	}
	var nmLog string
	for _, f := range b.Sink.Files() {
		if strings.Contains(f, "nodemanager") {
			nmLog += logText(b, f)
		}
	}
	if !strings.Contains(nmLog, "Opportunistic container") || !strings.Contains(nmLog, "queued") {
		t.Error("queueing not logged")
	}
}

func TestReleaseGrantsLogsReleased(t *testing.T) {
	b := testkit.New(testkit.Options{})
	b.Prewarm(map[string]float64{"/pkg": 100})
	am := &stubProc{lifeMs: 60_000, onLaunch: func(env *yarn.ProcessEnv) {
		app := env.Alloc.Container.App
		b.RM.RegisterAttempt(app)
		b.RM.Ask(app, 2, yarn.Profile{VCores: 1, MemoryMB: 1024})
		sim.NewTicker(env.Eng, 500, 200, func() {
			if grants := b.RM.Pull(app); len(grants) > 0 {
				b.RM.ReleaseGrants(app, grants)
			}
		})
	}}
	b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
	b.Run(60)
	rmLog := logText(b, yarn.RMLogFile)
	if got := strings.Count(rmLog, "from ACQUIRED to RELEASED"); got != 2 {
		t.Fatalf("RELEASED logged %d times, want 2", got)
	}
}

func TestMemoryOnlyAccountingOversubscribesCPU(t *testing.T) {
	b := testkit.New(testkit.Options{Workers: 1})
	nm := b.NMs[0]
	// 132 GB node: 100 x 1 GB containers reserve fine even though vcores
	// (32) are long gone — DefaultResourceCalculator behavior.
	got := 0
	for i := 0; i < 100; i++ {
		if b.RM.NodeManagers()[0] == nm {
			// reserve is unexported; exercise it through the scheduler by
			// checking FreeMemMB drops as asks are assigned instead.
			break
		}
	}
	_ = got
	if nm.FreeMemMB() != 132*1024 {
		t.Fatalf("fresh NM free mem %d", nm.FreeMemMB())
	}
}

func TestVCoresAccountingLimits(t *testing.T) {
	b := testkit.New(testkit.Options{Workers: 1, Yarn: func(c *yarn.Config) {
		c.UseVCoresAccounting = true
		c.LocalityDelayMaxBeats = 0
	}})
	b.Prewarm(map[string]float64{"/pkg": 100})
	granted := 0
	am := &stubProc{lifeMs: 600_000, onLaunch: func(env *yarn.ProcessEnv) {
		app := env.Alloc.Container.App
		b.RM.RegisterAttempt(app)
		b.RM.Ask(app, 10, yarn.Profile{VCores: 8, MemoryMB: 1024})
		sim.NewTicker(env.Eng, 500, 100, func() {
			granted += len(b.RM.Pull(app))
		})
	}}
	b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
	b.Run(30)
	// 32 vcores, 1 used by the AM: floor(31/8) = 3 containers fit.
	if granted != 3 {
		t.Fatalf("granted %d under vcores accounting, want 3", granted)
	}
}

func TestFinishAppLogsFinalStates(t *testing.T) {
	b := testkit.New(testkit.Options{})
	b.Prewarm(map[string]float64{"/pkg": 100})
	am := &stubProc{onLaunch: func(env *yarn.ProcessEnv) {
		app := env.Alloc.Container.App
		b.RM.RegisterAttempt(app)
		env.Eng.After(500, func() {
			b.RM.FinishApp(app)
			env.Exit()
		})
	}}
	id := b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
	b.Run(60)
	rmLog := logText(b, yarn.RMLogFile)
	for _, want := range []string{
		"from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED",
		"from RUNNING to FINAL_SAVING",
		"from FINAL_SAVING to FINISHED",
	} {
		if !strings.Contains(rmLog, want) {
			t.Errorf("RM log missing %q", want)
		}
	}
	if app := b.RM.App(id); app == nil || app.FinishTime == 0 {
		t.Error("finish time not recorded")
	}
}

func TestLocalizationCacheMakesSecondContainerFaster(t *testing.T) {
	// Without prewarming, the first container cold-fetches the public
	// package; the second (on the same node) hits the NM cache.
	b := testkit.New(testkit.Options{Workers: 1, Yarn: func(c *yarn.Config) { c.LocalityDelayMaxBeats = 0 }})
	b.Prewarm(map[string]float64{"/pkg": 100})
	// The executors localize a package the AM does not use, so the first
	// fetch is genuinely cold.
	b.FS.Create("/exec-pkg", 500, nil)
	var durations []sim.Time
	launchOne := func(app ids.AppID, al *yarn.Allocation) {
		start := b.Eng.Now()
		al.Node.StartContainer(al, yarn.LaunchSpec{
			Resources: []yarn.LocalResource{{Path: "/exec-pkg", SizeMB: 500, Public: true}},
			Instance:  yarn.InstSparkExecutor,
			Process: &stubProc{lifeMs: 100, onLaunch: func(*yarn.ProcessEnv) {
				durations = append(durations, b.Eng.Now()-start)
			}},
		})
		_ = app
	}
	am := &stubProc{lifeMs: 600_000, onLaunch: func(env *yarn.ProcessEnv) {
		app := env.Alloc.Container.App
		b.RM.RegisterAttempt(app)
		b.RM.Ask(app, 1, yarn.Profile{VCores: 1, MemoryMB: 1024})
		first := true
		sim.NewTicker(env.Eng, 300, 100, func() {
			for _, g := range b.RM.Pull(app) {
				launchOne(app, g)
			}
			if first && len(durations) == 1 {
				first = false
				b.RM.Ask(app, 1, yarn.Profile{VCores: 1, MemoryMB: 1024})
			}
		})
	}}
	b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
	b.Run(300)
	if len(durations) != 2 {
		t.Fatalf("launched %d containers, want 2", len(durations))
	}
	if durations[1] >= durations[0] {
		t.Fatalf("cache hit (%dms) not faster than cold fetch (%dms)", durations[1], durations[0])
	}
}

func TestDedicatedLocalizationDiskIsolates(t *testing.T) {
	measure := func(dedicated float64) sim.Time {
		b := testkit.New(testkit.Options{Workers: 1, Yarn: func(c *yarn.Config) {
			c.DedicatedLocalDiskMBps = dedicated
			c.LocalityDelayMaxBeats = 0
		}})
		b.Prewarm(map[string]float64{"/pkg": 500})
		// Hammer the HDFS disk.
		for i := 0; i < 20; i++ {
			b.Cl.Node(0).Disk.Start(1e9, 800, func(sim.Time) {})
		}
		var done sim.Time
		am := &stubProc{lifeMs: 1000, onLaunch: func(env *yarn.ProcessEnv) {
			done = b.Eng.Now()
		}}
		b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
		b.Run(3600)
		return done
	}
	shared := measure(0)
	isolated := measure(1500)
	if shared == 0 || isolated == 0 {
		t.Fatal("AM never launched")
	}
	if isolated+1000 >= shared {
		t.Fatalf("dedicated localization disk (%dms) should beat shared (%dms) under disk pressure", isolated, shared)
	}
}

func TestQueueCeilingLimitsApplication(t *testing.T) {
	// Two queues: "small" capped at 10% of the cluster's memory. A job in
	// it cannot allocate past the ceiling even though nodes are empty.
	b := testkit.New(testkit.Options{Workers: 2, Yarn: func(c *yarn.Config) {
		c.LocalityDelayMaxBeats = 0
		c.Queues = []yarn.QueueConfig{
			{Name: "big", Capacity: 0.9, MaxCapacity: 1.0},
			{Name: "small", Capacity: 0.1, MaxCapacity: 0.1},
		}
	}})
	b.Prewarm(map[string]float64{"/pkg": 100})
	granted := 0
	am := &stubProc{lifeMs: 600_000, onLaunch: func(env *yarn.ProcessEnv) {
		app := env.Alloc.Container.App
		b.RM.RegisterAttempt(app)
		// 2 nodes x 132 GB = 264 GB; 10% = ~26.4 GB. AM took 2 GB.
		// Ask for 10 x 4 GB: only 6 fit under the ceiling.
		b.RM.Ask(app, 10, yarn.Profile{VCores: 1, MemoryMB: 4096})
		sim.NewTicker(env.Eng, 500, 100, func() {
			granted += len(b.RM.Pull(app))
		})
	}}
	b.RM.Submit(yarn.AppSpec{Name: "t", Queue: "small", AMLaunch: amSpec(am)})
	b.Run(30)
	if granted != 6 {
		t.Fatalf("granted %d under a 10%% ceiling, want 6", granted)
	}
	if u := b.RM.QueueUsage("small"); u < 0.09 || u > 0.11 {
		t.Fatalf("queue usage %.3f, want ~0.10", u)
	}
}

func TestQueueUsageReleasedOnExit(t *testing.T) {
	b := testkit.New(testkit.Options{Workers: 2, Yarn: func(c *yarn.Config) {
		c.LocalityDelayMaxBeats = 0
	}})
	b.Prewarm(map[string]float64{"/pkg": 100})
	am := &stubProc{lifeMs: 2000, onLaunch: func(env *yarn.ProcessEnv) {
		b.RM.RegisterAttempt(env.Alloc.Container.App)
	}}
	b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
	b.Run(60)
	if u := b.RM.QueueUsage(yarn.DefaultQueueName); u != 0 {
		t.Fatalf("queue usage %.4f after all containers exited, want 0", u)
	}
}

func TestSubmitToUnknownQueuePanics(t *testing.T) {
	b := testkit.New(testkit.Options{})
	defer func() {
		if recover() == nil {
			t.Error("unknown queue did not panic")
		}
	}()
	b.RM.Submit(yarn.AppSpec{Name: "t", Queue: "ghost", AMLaunch: amSpec(&stubProc{})})
}

func TestPreemptionEvictsOpportunistic(t *testing.T) {
	b := testkit.New(testkit.Options{Workers: 1, Yarn: func(c *yarn.Config) {
		c.PreemptOpportunistic = true
		c.LocalityDelayMaxBeats = 0
	}})
	b.Prewarm(map[string]float64{"/pkg": 100})
	oppStarted, oppPreempted := 0, 0
	am := &stubProc{lifeMs: 600_000, onLaunch: func(env *yarn.ProcessEnv) {
		app := env.Alloc.Container.App
		b.RM.RegisterAttempt(app)
		b.RM.SetFailureHandler(app, func(*yarn.Allocation) { oppPreempted++ })
		// Fill the node's 32 vcores with two 16-vcore opportunistic
		// containers (the AM's 1 vcore oversubscribes slightly already).
		b.RM.AskOpportunistic(app, 2, yarn.Profile{VCores: 16, MemoryMB: 1024}, func(allocs []*yarn.Allocation) {
			for _, al := range allocs {
				al.Node.StartContainer(al, yarn.LaunchSpec{
					Resources: []yarn.LocalResource{{Path: "/pkg", SizeMB: 50, Public: true}},
					Instance:  yarn.InstSparkExecutor,
					Process:   &stubProc{lifeMs: 600_000, onLaunch: func(*yarn.ProcessEnv) { oppStarted++ }},
				})
			}
			// Then demand a guaranteed 16-vcore container: one
			// opportunistic victim must be preempted for it.
			env.Eng.After(5000, func() {
				b.RM.Ask(app, 1, yarn.Profile{VCores: 16, MemoryMB: 1024})
				sim.NewTicker(env.Eng, 300, 100, func() {
					for _, g := range b.RM.Pull(app) {
						g.Node.StartContainer(g, yarn.LaunchSpec{
							Resources: []yarn.LocalResource{{Path: "/pkg", SizeMB: 50, Public: true}},
							Instance:  yarn.InstSparkExecutor,
							Process:   &stubProc{lifeMs: 600_000},
						})
					}
				})
			})
		})
	}}
	b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
	b.Run(120)
	if oppStarted < 1 {
		t.Fatal("no opportunistic containers ran")
	}
	if oppPreempted != 1 {
		t.Fatalf("preempted %d opportunistic containers, want 1", oppPreempted)
	}
	var nmLog string
	for _, f := range b.Sink.Files() {
		if strings.Contains(f, "nodemanager") {
			nmLog += logText(b, f)
		}
	}
	if !strings.Contains(nmLog, "Preempting opportunistic container") {
		t.Fatal("preemption not logged")
	}
}
