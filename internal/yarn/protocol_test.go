package yarn_test

import (
	"strings"
	"testing"

	"repro/internal/log4j"
	"repro/internal/sim"
	"repro/internal/testkit"
	"repro/internal/yarn"
)

// TestDecisionSerializationCeiling verifies the Capacity Scheduler's
// serialized per-container decision cost: a large batch of allocations is
// spread over time at roughly 1/RMDecisionMicros containers per second —
// the Table II throughput ceiling.
func TestDecisionSerializationCeiling(t *testing.T) {
	b := testkit.New(testkit.Options{Workers: 2, Yarn: func(c *yarn.Config) {
		c.MaxAssignPerHeartbeat = 0
		c.LocalityDelayMaxBeats = 0
		c.RMDecisionMicros = 2000 // 2 ms per decision: 500/s ceiling
	}})
	b.Prewarm(map[string]float64{"/pkg": 100})
	const want = 200
	granted := 0
	var firstAt, lastAt sim.Time
	am := &stubProc{lifeMs: 600_000, onLaunch: func(env *yarn.ProcessEnv) {
		app := env.Alloc.Container.App
		b.RM.RegisterAttempt(app)
		b.RM.Ask(app, want, yarn.Profile{VCores: 1, MemoryMB: 512})
		sim.NewTicker(env.Eng, 100, 50, func() {
			for range b.RM.Pull(app) {
				granted++
				if firstAt == 0 {
					firstAt = env.Eng.Now()
				}
				lastAt = env.Eng.Now()
			}
		})
	}}
	b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
	b.Run(120)
	if granted != want {
		t.Fatalf("granted %d, want %d", granted, want)
	}
	// 200 containers at 2 ms/decision take >= 400 ms of decision time.
	if span := lastAt - firstAt; span < 300 {
		t.Fatalf("decisions span %dms — serialization cost not applied", span)
	}
}

// TestAllocationLogSpacing checks that the ALLOCATED log lines themselves
// carry the serialized decision timestamps SDchecker measures throughput
// from.
func TestAllocationLogSpacing(t *testing.T) {
	b := testkit.New(testkit.Options{Workers: 2, Yarn: func(c *yarn.Config) {
		c.MaxAssignPerHeartbeat = 0
		c.LocalityDelayMaxBeats = 0
		c.RMDecisionMicros = 5000 // 5 ms
	}})
	b.Prewarm(map[string]float64{"/pkg": 100})
	am := &stubProc{lifeMs: 600_000, onLaunch: func(env *yarn.ProcessEnv) {
		app := env.Alloc.Container.App
		b.RM.RegisterAttempt(app)
		b.RM.Ask(app, 10, yarn.Profile{VCores: 1, MemoryMB: 512})
		sim.NewTicker(env.Eng, 500, 100, func() { b.RM.Pull(app) })
	}}
	b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
	b.Run(60)

	var stamps []int64
	for _, raw := range b.Lines(yarn.RMLogFile) {
		l, err := log4j.ParseLine(raw)
		if err != nil {
			continue
		}
		if strings.Contains(l.Message, "from NEW to ALLOCATED") && !strings.Contains(l.Message, "_000001 ") {
			stamps = append(stamps, l.TimeMS)
		}
	}
	if len(stamps) != 10 {
		t.Fatalf("found %d executor allocations, want 10", len(stamps))
	}
	for i := 1; i < len(stamps); i++ {
		if stamps[i] < stamps[i-1] {
			t.Fatal("allocation timestamps not monotone")
		}
	}
	if spread := stamps[len(stamps)-1] - stamps[0]; spread < 40 {
		t.Fatalf("10 allocations within %dms at 5ms/decision — spacing not logged", spread)
	}
}

// TestPullReturnsNothingForUnknownApp guards nil-safety of the AM protocol.
func TestPullReturnsNothingForUnknownApp(t *testing.T) {
	b := testkit.New(testkit.Options{})
	if got := b.RM.Pull(b.IDs.NewApp()); got != nil {
		t.Fatalf("pull for unknown app returned %v", got)
	}
	b.RM.Ask(b.IDs.NewApp(), 3, yarn.Profile{VCores: 1, MemoryMB: 512}) // no-op
	b.RM.RegisterAttempt(b.IDs.NewApp())                                // no-op
	b.RM.FinishApp(b.IDs.NewApp())                                      // no-op
}

// TestAskAfterFinishIsDropped: requests from finished apps must not leak
// into the queue.
func TestAskAfterFinishIsDropped(t *testing.T) {
	b := testkit.New(testkit.Options{})
	b.Prewarm(map[string]float64{"/pkg": 100})
	var appID = b.IDs.NewApp() // placeholder; real id captured below
	am := &stubProc{onLaunch: func(env *yarn.ProcessEnv) {
		appID = env.Alloc.Container.App
		b.RM.RegisterAttempt(appID)
		b.RM.FinishApp(appID)
		b.RM.Ask(appID, 5, yarn.Profile{VCores: 1, MemoryMB: 512})
		env.Exit()
	}}
	b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
	b.Run(60)
	if q := b.RM.Queued(); q != 0 {
		t.Fatalf("queue holds %d requests from a finished app", q)
	}
}
