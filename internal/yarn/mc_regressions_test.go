package yarn_test

// Regression tests for invariant violations surfaced by the small-scope
// model checker (internal/mc, cmd/sdmc). Each test is a direct, minimized
// re-enactment of a counterexample trace; the mc package additionally
// replays the original serialized counterexamples in its own tests.

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/testkit"
	"repro/internal/yarn"
)

// TestPendingGrantSurvivesNMRestart re-enacts the minimized
// nm-reserve-conservation counterexample: a guaranteed container is
// granted (reserving capacity on its node) but not yet pulled by the AM;
// the node crashes and restarts — zeroing its reservation counters —
// before the launch arrives. Launching the grant on the new incarnation
// must re-reserve against it; otherwise the exit-time unreserve returns
// memory the incarnation never set aside and drives the node's counters
// negative.
func TestPendingGrantSurvivesNMRestart(t *testing.T) {
	b := testkit.New(testkit.Options{
		Workers: 2,
		Cluster: func(c *cluster.Config) {
			c.Node.MemoryMB = 5000 // AM (2048) + worker (4096) cannot share a node
			c.Node.VCores = 8
		},
		Yarn: func(c *yarn.Config) {
			c.NMHeartbeatMs = 100
			c.NodeExpiryMs = 600_000 // keep liveness expiry out of this scenario
			c.LocalityDelayMaxBeats = 0
			c.AMProfile = yarn.Profile{VCores: 1, MemoryMB: 2048}
		},
	})
	b.Prewarm(map[string]float64{"/pkg": 100})

	workerRan := false
	worker := yarn.LaunchSpec{
		Resources: []yarn.LocalResource{{Path: "/pkg", SizeMB: 50, Public: true}},
		Instance:  yarn.InstSparkExecutor,
		Process:   &stubProc{lifeMs: 200, onLaunch: func(*yarn.ProcessEnv) { workerRan = true }},
	}
	am := &stubProc{lifeMs: 600_000, onLaunch: func(env *yarn.ProcessEnv) {
		app := env.Alloc.Container.App
		b.RM.RegisterAttempt(app)
		// The worker only fits on the node the AM is NOT on.
		b.RM.Ask(app, 1, yarn.Profile{VCores: 1, MemoryMB: 4096})
		env.Eng.After(3000, func() {
			// By now the grant is pending (deliberately never pulled).
			var grantNode = -1
			for _, a := range b.RM.Snapshot().Apps {
				for _, c := range a.Conts {
					if c.Where == "pending" {
						grantNode = nodeIndexByName(b, c.Node)
					}
				}
			}
			if grantNode < 0 {
				t.Error("no pending grant found before the crash")
				return
			}
			// Crash and immediately restart the grant's node: the new
			// incarnation starts with zeroed reservation counters, and the
			// RM still holds the grant made against the old epoch.
			b.NMs[grantNode].Crash()
			b.NMs[grantNode].Restart()
			env.Eng.After(500, func() {
				for _, g := range b.RM.Pull(app) {
					g.Node.StartContainer(g, worker)
				}
			})
		})
	}}
	b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
	b.Run(30)

	if !workerRan {
		t.Fatal("worker never launched on the restarted node")
	}
	for _, n := range b.RM.Snapshot().Nodes {
		if n.ReservedMemMB < 0 || n.ReservedVCores < 0 {
			t.Fatalf("node %s reservation counters went negative: mem=%d vcores=%d",
				n.Name, n.ReservedMemMB, n.ReservedVCores)
		}
		if n.Name != amNodeName(b) && (n.ReservedMemMB != 0 || n.ReservedVCores != 0) {
			t.Fatalf("node %s holds a stale reservation after the worker exited: mem=%d vcores=%d",
				n.Name, n.ReservedMemMB, n.ReservedVCores)
		}
	}
}

// TestLostContainerReportNotDoubleTerminated re-enacts the
// container-accounting counterexample: the RM declares a node's
// containers lost (liveness expiry), but the NM was only silent — it is
// still running them and later reports a normal completion. The RM must
// drop reports for containers it already terminated; the RMContainerImpl
// log must show exactly one terminal transition per container.
func TestLostContainerReportNotDoubleTerminated(t *testing.T) {
	b := testkit.New(testkit.Options{
		Workers: 2,
		Yarn: func(c *yarn.Config) {
			c.NMHeartbeatMs = 100
			c.NodeExpiryMs = 400
			c.LocalityDelayMaxBeats = 0
		},
	})
	b.Prewarm(map[string]float64{"/pkg": 100})

	started := false
	am := &stubProc{lifeMs: 600_000, onLaunch: func(env *yarn.ProcessEnv) {
		app := env.Alloc.Container.App
		b.RM.RegisterAttempt(app)
		b.RM.Ask(app, 1, yarn.Profile{VCores: 1, MemoryMB: 1024})
		env.Eng.After(2000, func() {
			for _, g := range b.RM.Pull(app) {
				g.Node.StartContainer(g, yarn.LaunchSpec{
					Resources: []yarn.LocalResource{{Path: "/pkg", SizeMB: 50, Public: true}},
					Instance:  yarn.InstSparkExecutor,
					// Lives past the expiry the test forces below.
					Process: &stubProc{lifeMs: 3000, onLaunch: func(wenv *yarn.ProcessEnv) {
						started = true
						// Partition the worker's NM: the RM expires the node
						// while the container keeps running, then the (live)
						// NM reports a normal exit after the partition heals.
						wenv.NM.Partition()
						wenv.Eng.After(5000, wenv.NM.Heal)
					}},
				})
			}
		})
	}}
	b.RM.Submit(yarn.AppSpec{Name: "t", AMLaunch: amSpec(am)})
	b.Run(30)

	if !started {
		t.Fatal("worker never started")
	}
	rmLog := logText(b, yarn.RMLogFile)
	killed := strings.Count(rmLog, "Transitioned from RUNNING to KILLED")
	completedAfter := false
	for _, line := range strings.Split(rmLog, "\n") {
		if killed > 0 && strings.Contains(line, "Transitioned from RUNNING to COMPLETED") {
			// Any RUNNING->COMPLETED for the killed container would follow
			// its KILLED line; pin it down by container ID below.
			completedAfter = true
		}
	}
	if killed == 0 {
		t.Fatal("expiry never declared the container lost; scenario did not arm")
	}
	// Extract the killed container's ID and assert it has exactly one
	// terminal transition in the whole log.
	for _, line := range strings.Split(rmLog, "\n") {
		i := strings.Index(line, " Container Transitioned from RUNNING to KILLED")
		if i < 0 {
			continue
		}
		fields := strings.Fields(line[:i])
		cid := fields[len(fields)-1]
		terms := strings.Count(rmLog, cid+" Container Transitioned from RUNNING to KILLED") +
			strings.Count(rmLog, cid+" Container Transitioned from RUNNING to COMPLETED") +
			strings.Count(rmLog, cid+" Container Transitioned from ACQUIRED to COMPLETED")
		if terms != 1 {
			t.Fatalf("container %s has %d terminal transitions, want exactly 1", cid, terms)
		}
	}
	_ = completedAfter
}

func nodeIndexByName(b *testkit.Bed, name string) int {
	for i, nm := range b.NMs {
		if nm.Node.Name == name {
			return i
		}
	}
	return -1
}

func amNodeName(b *testkit.Bed) string {
	for _, a := range b.RM.Snapshot().Apps {
		for _, c := range a.Conts {
			if c.ForAM {
				return c.Node
			}
		}
	}
	return ""
}
