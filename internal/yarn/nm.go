package yarn

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/docker"
	"repro/internal/hdfs"
	"repro/internal/ids"
	"repro/internal/log4j"
	"repro/internal/rng"
	"repro/internal/share"
	"repro/internal/sim"
)

// NodeManager hosts containers on one worker node. It owns the
// ContainerImpl state machine whose transitions (LOCALIZING, SCHEDULED,
// RUNNING) SDchecker mines as log messages 6-8, the localization service
// with its per-node public-resource cache, and the queue for opportunistic
// containers (Hadoop 3 distributed scheduling).
type NodeManager struct {
	Eng  *sim.Engine
	Node *cluster.Node

	rm  *RM
	fs  *hdfs.FS
	cfg Config
	rng *rng.Source

	logCont   *log4j.Logger
	logLaunch *log4j.Logger

	totalVCores int
	totalMemMB  int
	// Guaranteed reservations (made by the RM at allocation time).
	reservedVCores int
	reservedMemMB  int
	// Capacity consumed by running opportunistic containers.
	oppVCores int
	oppMemMB  int

	freeVCores int // cached totalVCores - reservedVCores, read by the RM

	cache    *localCache // localized public resources (LRU)
	oppQueue []*containerRun
	running  map[ids.ContainerID]*containerRun
	// localizing tracks containers between StartContainer and launch (or
	// queueing), so a crash can account for them too.
	localizing map[ids.ContainerID]*containerRun
	completed  []*Allocation // reported to the RM on the next heartbeat

	// localDisk is where localization IO lands: the node's HDFS disks by
	// default, or a dedicated storage class (Config.DedicatedLocalDiskMBps).
	localDisk *share.Resource

	hb *sim.Ticker

	// Crash/restart state. down blackholes the NM; epoch invalidates
	// in-flight localization/launch callback chains from before a restart
	// (each chain step rechecks run.epoch against nm.epoch). lostAtCrash
	// holds the containers killed by the crash, reported to the RM when the
	// NM resyncs on restart (the RM's expiry timer covers nodes that never
	// come back).
	down        bool
	epoch       int
	lostAtCrash []*Allocation

	// RM-side liveness view (owned by the RM, kept here to stay
	// deterministic — no map of NM pointers to iterate).
	lastBeat sim.Time
	expired  bool
}

// containerRun tracks one container through localization, queueing,
// launch and execution.
type containerRun struct {
	alloc *Allocation
	spec  LaunchSpec
	env   *ProcessEnv
	// localizingAt / scheduledAt anchor the ground-truth localization and
	// launching spans.
	localizingAt sim.Time
	scheduledAt  sim.Time
	// epoch is the NM incarnation that started this container; a restart
	// bumps the NM's epoch, orphaning every older chain.
	epoch int
}

// stale reports whether this container belongs to a dead NM incarnation.
// The epoch half of the guard can be chaos-disabled so the model checker
// can demonstrate what breaks without it (see chaos.go).
func (run *containerRun) stale(nm *NodeManager) bool {
	if nm.down {
		return true
	}
	return !chaos.DisableNMEpochGuard && run.epoch != nm.epoch
}

// NewNodeManager creates the NM for node and registers it with the RM.
// Its heartbeat is phase-staggered by the node index so that 25 NMs do
// not beat in lockstep.
func NewNodeManager(rm *RM, node *cluster.Node, fs *hdfs.FS, sink *log4j.Sink) *NodeManager {
	nm := &NodeManager{
		Eng:         rm.Eng,
		Node:        node,
		rm:          rm,
		fs:          fs,
		cfg:         rm.Cfg,
		rng:         node.Rng.Fork(0x17a),
		logCont:     sink.Logger(NMLogFile(node), ClassContainerImpl),
		logLaunch:   sink.Logger(NMLogFile(node), ClassContainerLaunch),
		totalVCores: node.VCores,
		totalMemMB:  node.MemoryMB,
		freeVCores:  node.VCores,
		cache:       newLocalCache(rm.Cfg.LocalCacheCapacityMB),
		running:     make(map[ids.ContainerID]*containerRun),
		localizing:  make(map[ids.ContainerID]*containerRun),
	}
	nm.localDisk = node.Disk
	if rm.Cfg.DedicatedLocalDiskMBps > 0 {
		nm.localDisk = share.NewResource(rm.Eng, node.Name+"/local-ssd", rm.Cfg.DedicatedLocalDiskMBps)
	}
	period := rm.Cfg.NMHeartbeatMs
	offset := (period*int64(node.Index))/int64(len(rm.Cl.Nodes)) + nm.rng.Int63n(20)
	nm.hb = sim.NewTicker(rm.Eng, period, offset, nm.heartbeat)
	rm.registerNM(nm)
	return nm
}

// PrewarmCache marks public resources as already localized on this node,
// modelling a cluster that has run the framework before (the paper's
// steady-state measurements).
func (nm *NodeManager) PrewarmCache(paths ...string) {
	for _, p := range paths {
		size := 0.0
		if f := nm.fs.Lookup(p); f != nil {
			size = f.SizeMB
		}
		nm.cache.Put(p, size)
	}
}

// CacheStats exposes the localization cache counters (hits, misses,
// evictions, used MB) for the caching-service ablation.
func (nm *NodeManager) CacheStats() (hits, misses, evictions int, usedMB float64) {
	return nm.cache.Stats()
}

// FreeVCores returns unreserved guaranteed capacity.
func (nm *NodeManager) FreeVCores() int { return nm.freeVCores }

// RunningContainers returns the number of containers currently executing.
func (nm *NodeManager) RunningContainers() int { return len(nm.running) }

// QueuedOpportunistic returns the opportunistic queue depth (Fig 7b).
func (nm *NodeManager) QueuedOpportunistic() int { return len(nm.oppQueue) }

// reserve claims guaranteed capacity; called by the RM at allocation.
// With the default memory-only calculator (see Config.UseVCoresAccounting)
// vcores may oversubscribe; the processor-sharing CPU model absorbs it.
func (nm *NodeManager) reserve(p Profile) bool {
	if nm.reservedMemMB+p.MemoryMB > nm.totalMemMB {
		return false
	}
	if nm.cfg.UseVCoresAccounting && nm.reservedVCores+p.VCores > nm.totalVCores {
		return false
	}
	nm.reservedVCores += p.VCores
	nm.reservedMemMB += p.MemoryMB
	nm.freeVCores = nm.totalVCores - nm.reservedVCores
	return true
}

func (nm *NodeManager) unreserve(p Profile) {
	nm.reservedVCores -= p.VCores
	nm.reservedMemMB -= p.MemoryMB
	nm.freeVCores = nm.totalVCores - nm.reservedVCores
}

// FreeMemMB returns unreserved guaranteed memory.
func (nm *NodeManager) FreeMemMB() int { return nm.totalMemMB - nm.reservedMemMB }

// oppFits reports whether an opportunistic container can start now.
// Unlike guaranteed reservation, opportunistic admission is
// utilization-based (the NM queues the container when the node is busy),
// so vcores always count here — this queueing is what Fig 7b measures.
func (nm *NodeManager) oppFits(p Profile) bool {
	if nm.reservedMemMB+nm.oppMemMB+p.MemoryMB > nm.totalMemMB {
		return false
	}
	return nm.reservedVCores+nm.oppVCores+p.VCores <= nm.totalVCores
}

// heartbeat reports completed containers and receives new assignments.
func (nm *NodeManager) heartbeat() {
	if nm.down {
		return
	}
	nm.rm.met.nmBeat()
	if len(nm.completed) > 0 {
		done := nm.completed
		nm.completed = nil
		for _, al := range done {
			nm.rm.containerFinished(al)
		}
	}
	nm.rm.nodeUpdate(nm)
}

// StartContainer begins the container lifecycle:
// NEW -> LOCALIZING -> SCHEDULED -> (queue if opportunistic and the node
// is busy) -> launch -> RUNNING (logged when the instance emits its first
// log line, per paper §III-B) -> EXITED_WITH_SUCCESS.
func (nm *NodeManager) StartContainer(al *Allocation, spec LaunchSpec) {
	if nm.down {
		// Node died while the start was in flight. Record the container so
		// a restart's resync reports it lost; if the node never comes back,
		// the RM's expiry timer finds it through the app's running set.
		nm.lostAtCrash = append(nm.lostAtCrash, al)
		return
	}
	if al.Type == Guaranteed && al.nmEpoch != nm.epoch {
		// The reservation was made against an incarnation that crashed
		// before the launch arrived; the restart zeroed those counters.
		// Re-reserve against the live incarnation — otherwise the exit
		// path would return memory this incarnation never set aside,
		// driving its counters negative. If the fresh node can't take the
		// container (capacity re-promised since the restart), it fails
		// like any launch failure and the AM re-requests.
		if !nm.reserve(al.Profile) {
			nm.rm.containerLaunchFailed(al)
			return
		}
		al.nmEpoch = nm.epoch
		al.reserved = true
	}
	run := &containerRun{alloc: al, spec: spec, localizingAt: nm.Eng.Now(), epoch: nm.epoch}
	nm.localizing[al.Container] = run
	nm.logCont.Infof("Container %s transitioned from NEW to LOCALIZING", al.Container)
	nm.rm.met.transition("LOCALIZING")
	nm.Node.Compute(nm.cfg.LocalizerSetupVcoreSec, 1, func(sim.Time) {
		nm.localize(run, 0)
	})
}

// localize fetches resources sequentially, then marks SCHEDULED.
func (nm *NodeManager) localize(run *containerRun, idx int) {
	if run.stale(nm) {
		return
	}
	if idx >= len(run.spec.Resources) {
		run.scheduledAt = nm.Eng.Now()
		nm.logCont.Infof("Container %s transitioned from LOCALIZING to SCHEDULED", run.alloc.Container)
		nm.rm.met.transition("SCHEDULED")
		nm.rm.Tracer.Record(sim.TraceSpan{
			Process: run.alloc.Container.App.String(), Thread: run.alloc.Container.String(),
			Name: sim.SpanLocalization, Start: run.localizingAt, End: run.scheduledAt,
		})
		nm.afterScheduled(run)
		return
	}
	res := run.spec.Resources[idx]
	next := func(sim.Time) { nm.localize(run, idx+1) }
	if res.SizeMB <= 0 {
		nm.Eng.After(1, func() { next(nm.Eng.Now()) })
		return
	}
	if res.Public && nm.cache.Contains(res.Path) {
		// Cache hit: verify and copy. Only part of the bytes touch the
		// disk (the rest is page-cache hot); the copy/CRC costs CPU.
		diskMB := res.SizeMB * nm.cfg.CacheDiskFraction
		cluster.StartTransfer(nm.Eng, []cluster.Leg{
			{Res: nm.localDisk, Work: diskMB, Demand: nm.cfg.LocalCacheReadDemandMBps},
		}, func(sim.Time) {
			nm.Node.Compute(res.SizeMB*nm.cfg.LocalizeCPUVcoreSecPerMB, 1, next)
		})
		return
	}
	// Cold fetch: download from HDFS and write the local copy.
	f := nm.fs.Lookup(res.Path)
	if f == nil {
		f = nm.fs.Create(res.Path, res.SizeMB, nil)
	}
	nm.fs.ReadData(nm.Node, f, res.SizeMB, func(sim.Time) {
		cluster.StartTransfer(nm.Eng, []cluster.Leg{
			{Res: nm.localDisk, Work: res.SizeMB, Demand: nm.cfg.ColdFetchDemandMBps},
		}, func(sim.Time) {
			if res.Public {
				nm.cache.Put(res.Path, res.SizeMB)
			}
			next(nm.Eng.Now())
		})
	})
}

// afterScheduled either launches immediately (guaranteed, or an
// opportunistic container on an idle-enough node) or queues the container
// — the queueing delay the paper measures for the distributed scheduler.
func (nm *NodeManager) afterScheduled(run *containerRun) {
	if run.alloc.Type == Opportunistic {
		if !nm.oppFits(run.alloc.Profile) {
			nm.logLaunch.Infof("Opportunistic container %s queued at %s", run.alloc.Container, nm.Node.Name)
			delete(nm.localizing, run.alloc.Container)
			nm.oppQueue = append(nm.oppQueue, run)
			return
		}
		nm.oppVCores += run.alloc.Profile.VCores
		nm.oppMemMB += run.alloc.Profile.MemoryMB
	} else if nm.cfg.PreemptOpportunistic {
		nm.preemptForGuaranteed(run.alloc.Profile)
	}
	nm.invokeLaunch(run)
}

// preemptForGuaranteed kills running opportunistic containers, newest
// first, until the guaranteed profile fits within the node's vcores.
func (nm *NodeManager) preemptForGuaranteed(p Profile) {
	for nm.reservedVCores+nm.oppVCores > nm.totalVCores {
		victim := nm.newestOpportunistic()
		if victim == nil {
			return
		}
		cid := victim.alloc.Container
		nm.logCont.Infof("Container %s transitioned from RUNNING to KILLING", cid)
		nm.rm.met.transition("KILLING")
		nm.logLaunch.Infof("Preempting opportunistic container %s for a guaranteed container", cid)
		delete(nm.running, cid)
		nm.oppVCores -= victim.alloc.Profile.VCores
		nm.oppMemMB -= victim.alloc.Profile.MemoryMB
		if victim.env != nil {
			victim.env.exited = true // the process is gone; Exit is a no-op
		}
		nm.rm.containerLaunchFailed(victim.alloc)
	}
	_ = p
}

// newestOpportunistic returns the most recently allocated running
// opportunistic container, or nil.
func (nm *NodeManager) newestOpportunistic() *containerRun {
	var best *containerRun
	for _, run := range nm.running {
		if run.alloc.Type != Opportunistic {
			continue
		}
		if best == nil || run.alloc.Container.Num > best.alloc.Container.Num ||
			(run.alloc.Container.Num == best.alloc.Container.Num && run.alloc.Container.App.Seq > best.alloc.Container.App.Seq) {
			best = run
		}
	}
	return best
}

// invokeLaunch writes the launch script and starts the process through
// the configured container runtime.
func (nm *NodeManager) invokeLaunch(run *containerRun) {
	if run.stale(nm) {
		return
	}
	cid := run.alloc.Container
	nm.logLaunch.Infof("Invoking launch script for container %s", cid)
	if p := nm.cfg.LaunchFailureProb; p > 0 && nm.rng.Float64() < p {
		// Injected launch failure: the script exits non-zero before the
		// process ever logs. The AM finds out through the RM and must
		// re-request the container.
		fail := int64(nm.rng.Uniform(30, 120))
		nm.Eng.After(fail, func() { nm.containerFailed(run) })
		return
	}
	setup := int64(nm.rng.Uniform(8, 28)) // write script, set env, mkdirs
	nm.Eng.After(setup, func() {
		docker.Apply(nm.Eng, nm.Node, nm.rng, run.spec.Runtime, nm.cfg.DockerOverhead, func() {
			if run.stale(nm) {
				return
			}
			env := &ProcessEnv{
				Eng:      nm.Eng,
				Node:     nm.Node,
				NM:       nm,
				Alloc:    run.alloc,
				Rng:      nm.rng.Fork(uint64(cid.Num)<<16 ^ uint64(cid.App.Seq)),
				JVMReuse: nm.cfg.JVMReuse,
				run:      run,
			}
			env.sink = nm.rm.Sink
			run.env = env
			delete(nm.localizing, cid)
			nm.running[cid] = run
			run.spec.Process.Launched(env)
		})
	})
}

// markFirstLog is called by ProcessEnv when the instance writes its first
// log line; the container is then RUNNING.
func (nm *NodeManager) markFirstLog(run *containerRun) {
	nm.logCont.Infof("Container %s transitioned from SCHEDULED to RUNNING", run.alloc.Container)
	nm.rm.met.transition("RUNNING")
	nm.rm.Tracer.Record(sim.TraceSpan{
		Process: run.alloc.Container.App.String(), Thread: run.alloc.Container.String(),
		Name: sim.SpanLaunching, Start: run.scheduledAt, End: nm.Eng.Now(),
	})
}

// containerFailed handles a launch failure: EXITED_WITH_FAILURE is
// logged, capacity freed, and the RM informed so the AM can recover.
func (nm *NodeManager) containerFailed(run *containerRun) {
	if run.stale(nm) {
		return
	}
	cid := run.alloc.Container
	delete(nm.localizing, cid)
	nm.logCont.Infof("Container %s transitioned from SCHEDULED to EXITED_WITH_FAILURE", cid)
	nm.rm.met.transition("EXITED_WITH_FAILURE")
	nm.logLaunch.Infof("Container %s exit code 1: launch script failed", cid)
	if run.alloc.Type == Opportunistic {
		nm.oppVCores -= run.alloc.Profile.VCores
		nm.oppMemMB -= run.alloc.Profile.MemoryMB
	} else {
		nm.unreserve(run.alloc.Profile)
		run.alloc.reserved = false
	}
	nm.rm.containerLaunchFailed(run.alloc)
	nm.drainOppQueue()
}

// containerExited releases capacity, reports to the RM on the next
// heartbeat, and starts queued opportunistic work that now fits.
func (nm *NodeManager) containerExited(run *containerRun) {
	if run.stale(nm) {
		return
	}
	cid := run.alloc.Container
	delete(nm.running, cid)
	nm.logCont.Infof("Container %s transitioned from RUNNING to EXITED_WITH_SUCCESS", cid)
	nm.rm.met.transition("EXITED_WITH_SUCCESS")
	if run.alloc.Type == Opportunistic {
		nm.oppVCores -= run.alloc.Profile.VCores
		nm.oppMemMB -= run.alloc.Profile.MemoryMB
	} else {
		nm.unreserve(run.alloc.Profile)
		run.alloc.reserved = false
	}
	nm.completed = append(nm.completed, run.alloc)
	nm.drainOppQueue()
}

func (nm *NodeManager) drainOppQueue() {
	for len(nm.oppQueue) > 0 && nm.oppFits(nm.oppQueue[0].alloc.Profile) {
		run := nm.oppQueue[0]
		nm.oppQueue = nm.oppQueue[1:]
		nm.oppVCores += run.alloc.Profile.VCores
		nm.oppMemMB += run.alloc.Profile.MemoryMB
		nm.invokeLaunch(run)
	}
}

// Shutdown stops the heartbeat ticker (used when tearing down scenarios).
func (nm *NodeManager) Shutdown() {
	if nm.hb != nil {
		nm.hb.Stop()
	}
}

// Down reports whether the NM is currently crashed.
func (nm *NodeManager) Down() bool { return nm.down }

// Crash kills the node: heartbeats stop, every hosted process dies
// mid-flight, and in-flight localization/launch chains are orphaned. The
// RM hears nothing — it discovers the crash through heartbeat silence
// (checkLiveness) or, if the node restarts first, through resync. Completed
// containers whose reports were on the wire are flushed first so their
// queue charges do not leak. Idempotent while down.
func (nm *NodeManager) Crash() {
	if nm.down {
		return
	}
	nm.down = true
	if nm.hb != nil { // nil while partitioned
		nm.hb.Stop()
		nm.hb = nil
	}
	nm.Node.Fail()
	for _, al := range nm.completed {
		nm.rm.containerFinished(al)
	}
	nm.completed = nil
	victims := make([]*containerRun, 0, len(nm.running)+len(nm.localizing)+len(nm.oppQueue))
	for _, run := range nm.running {
		victims = append(victims, run)
	}
	for _, run := range nm.localizing {
		victims = append(victims, run)
	}
	sort.Slice(victims, func(i, j int) bool {
		ci, cj := victims[i].alloc.Container, victims[j].alloc.Container
		if ci.App.Seq != cj.App.Seq {
			return ci.App.Seq < cj.App.Seq
		}
		return ci.Num < cj.Num
	})
	victims = append(victims, nm.oppQueue...)
	nm.running = make(map[ids.ContainerID]*containerRun)
	nm.localizing = make(map[ids.ContainerID]*containerRun)
	nm.oppQueue = nil
	// Mark every process dead before notifying any of them, so that a
	// dying AM's cleanup can't make a doomed neighbor log from the grave.
	for _, run := range victims {
		if run.env != nil {
			run.env.exited = true // the process is gone; Exit is a no-op
		}
	}
	for _, run := range victims {
		if k, ok := run.spec.Process.(Killable); ok {
			k.Killed()
		}
		nm.lostAtCrash = append(nm.lostAtCrash, run.alloc)
	}
}

// Restart brings a crashed node back: a fresh NM incarnation with empty
// capacity counters and container state (the localization cache survives
// on disk, as it does in real YARN). It resyncs with the RM by reporting
// the containers the crash killed, then resumes heartbeating — the first
// beat re-registers the node if the RM had expired it. Idempotent while up.
func (nm *NodeManager) Restart() {
	if !nm.down {
		return
	}
	nm.down = false
	nm.epoch++
	nm.Node.Recover()
	nm.reservedVCores, nm.reservedMemMB = 0, 0
	nm.oppVCores, nm.oppMemMB = 0, 0
	nm.freeVCores = nm.totalVCores
	nm.running = make(map[ids.ContainerID]*containerRun)
	nm.localizing = make(map[ids.ContainerID]*containerRun)
	nm.oppQueue = nil
	nm.completed = nil
	nm.rm.Sink.Logger(NMLogFile(nm.Node), ClassNodeStatusUpd).
		Infof("Registering with RM using containers from previous attempt")
	lost := nm.lostAtCrash
	nm.lostAtCrash = nil
	for _, al := range lost {
		nm.rm.containerLost(al)
	}
	period := nm.cfg.NMHeartbeatMs
	offset := 50 + nm.rng.Int63n(int64(period))
	nm.hb = sim.NewTicker(nm.Eng, period, offset, nm.heartbeat)
}

// Partition cuts the NM off from the RM without killing anything on the
// node: heartbeats stop but every hosted container keeps running. The RM
// cannot tell a partition from a crash — silence is silence — so it will
// expire the node and declare its containers lost while they are in fact
// alive, the exact ambiguity behind the RM's idempotent handling of
// late completion reports. Idempotent while partitioned or down.
func (nm *NodeManager) Partition() {
	if nm.down || nm.hb == nil {
		return
	}
	nm.hb.Stop()
	nm.hb = nil
}

// Heal resumes heartbeating after a Partition; the first beat
// re-registers the node if the RM expired it meanwhile. Idempotent.
func (nm *NodeManager) Heal() {
	if nm.down || nm.hb != nil {
		return
	}
	period := nm.cfg.NMHeartbeatMs
	offset := 50 + nm.rng.Int63n(int64(period))
	nm.hb = sim.NewTicker(nm.Eng, period, offset, nm.heartbeat)
}

// ProcessEnv is the container-side world handed to a Process.
type ProcessEnv struct {
	Eng      *sim.Engine
	Node     *cluster.Node
	NM       *NodeManager
	Alloc    *Allocation
	Rng      *rng.Source
	JVMReuse bool

	sink        *log4j.Sink
	run         *containerRun
	firstLogged bool
	exited      bool
}

// Logger returns a logger writing to this container's stderr file under
// the given class name. The first line written through any of the
// container's loggers is the FIRST_LOG event.
func (e *ProcessEnv) Logger(class string) *log4j.Logger {
	return e.sink.Logger(StderrPath(e.Alloc.Container), class)
}

// Tracer returns the cluster's ground-truth span recorder (nil-safe to
// record on when tracing is off), so framework processes can record their
// driver/executor/allocation spans next to YARN's container spans.
func (e *ProcessEnv) Tracer() *sim.Recorder { return e.NM.rm.Tracer }

// MarkFirstLog must be called exactly once, at the instant the process
// emits its first log line; it drives the SCHEDULED -> RUNNING transition.
func (e *ProcessEnv) MarkFirstLog() {
	if e.firstLogged || e.exited {
		return
	}
	e.firstLogged = true
	e.NM.markFirstLog(e.run)
}

// Exited reports whether the container is already gone (normal exit or
// node crash); processes check it before post-mortem cleanup.
func (e *ProcessEnv) Exited() bool { return e.exited }

// Exit terminates the container successfully.
func (e *ProcessEnv) Exit() {
	if e.exited {
		return
	}
	e.exited = true
	e.NM.containerExited(e.run)
}
