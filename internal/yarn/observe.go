package yarn

import "repro/internal/metrics"

// nmStates are the ContainerImpl transition targets counted per state on
// yarn_nm_container_transitions_total.
var nmStates = []string{
	"LOCALIZING", "SCHEDULED", "RUNNING",
	"EXITED_WITH_SUCCESS", "EXITED_WITH_FAILURE", "KILLING",
}

// rmMetrics are the RM's (and, shared through it, every NM's)
// observability hooks; nil until RM.Instrument is called.
type rmMetrics struct {
	rmHeartbeats *metrics.Counter   // nodeUpdate calls reaching the scheduler
	allocations  *metrics.Counter   // containers allocated
	allocLatency *metrics.Histogram // ask -> allocation decision, ms
	nmHeartbeats *metrics.Counter   // NM heartbeat ticks
	transitions  map[string]*metrics.Counter
}

// Instrument registers the ResourceManager's allocation counters and
// latency histogram plus the NodeManagers' heartbeat and container-state
// counters in reg. The scheduler type is carried as a label so runs with
// different schedulers stay distinguishable in one registry. Call once,
// before running; a nil registry is a no-op.
func (rm *RM) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	sched := rm.Cfg.Scheduler.String()
	m := &rmMetrics{
		rmHeartbeats: reg.Counter("yarn_rm_heartbeats_total", "scheduler", sched),
		allocations:  reg.Counter("yarn_rm_allocations_total", "scheduler", sched),
		allocLatency: reg.Histogram("yarn_rm_allocation_latency_ms", metrics.DefBuckets),
		nmHeartbeats: reg.Counter("yarn_nm_heartbeats_total"),
		transitions:  make(map[string]*metrics.Counter, len(nmStates)),
	}
	for _, st := range nmStates {
		m.transitions[st] = reg.Counter("yarn_nm_container_transitions_total", "state", st)
	}
	rm.met = m
}

func (m *rmMetrics) rmBeat() {
	if m != nil {
		m.rmHeartbeats.Inc()
	}
}

func (m *rmMetrics) nmBeat() {
	if m != nil {
		m.nmHeartbeats.Inc()
	}
}

// allocated counts one container allocation and its ask-to-decision
// latency.
func (m *rmMetrics) allocated(latencyMS float64) {
	if m != nil {
		m.allocations.Inc()
		m.allocLatency.Observe(latencyMS)
	}
}

// transition counts one ContainerImpl state entry on a NodeManager.
func (m *rmMetrics) transition(state string) {
	if m != nil {
		m.transitions[state].Inc()
	}
}
