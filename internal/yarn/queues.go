package yarn

import (
	"fmt"
	"sort"
)

// QueueConfig describes one Capacity Scheduler leaf queue: its guaranteed
// share of the cluster and its elastic ceiling
// (yarn.scheduler.capacity.<queue>.capacity / maximum-capacity).
type QueueConfig struct {
	Name string
	// Capacity is the guaranteed fraction of cluster memory (0..1].
	Capacity float64
	// MaxCapacity is the elastic ceiling fraction; 0 means 1.0.
	MaxCapacity float64
}

// DefaultQueueName is where applications land when no queue is named —
// YARN's root.default.
const DefaultQueueName = "default"

// queueState tracks one leaf queue's usage at the RM.
type queueState struct {
	cfg       QueueConfig
	usedMemMB int
}

// queueSet manages the leaf queues. A nil/empty configuration behaves as
// a single default queue owning the whole cluster, which is the setup the
// paper evaluates ("we use the Capacity Scheduler").
type queueSet struct {
	totalMemMB int
	byName     map[string]*queueState
	order      []string
}

func newQueueSet(totalMemMB int, cfgs []QueueConfig) (*queueSet, error) {
	qs := &queueSet{totalMemMB: totalMemMB, byName: make(map[string]*queueState)}
	if len(cfgs) == 0 {
		cfgs = []QueueConfig{{Name: DefaultQueueName, Capacity: 1, MaxCapacity: 1}}
	}
	var sum float64
	for _, c := range cfgs {
		if c.Name == "" {
			return nil, fmt.Errorf("yarn: queue with empty name")
		}
		if c.Capacity <= 0 || c.Capacity > 1 {
			return nil, fmt.Errorf("yarn: queue %q capacity %v out of (0,1]", c.Name, c.Capacity)
		}
		if c.MaxCapacity == 0 {
			c.MaxCapacity = 1
		}
		if c.MaxCapacity < c.Capacity || c.MaxCapacity > 1 {
			return nil, fmt.Errorf("yarn: queue %q max-capacity %v out of [capacity,1]", c.Name, c.MaxCapacity)
		}
		if _, dup := qs.byName[c.Name]; dup {
			return nil, fmt.Errorf("yarn: duplicate queue %q", c.Name)
		}
		qs.byName[c.Name] = &queueState{cfg: c}
		qs.order = append(qs.order, c.Name)
		sum += c.Capacity
	}
	if sum > 1.0001 {
		return nil, fmt.Errorf("yarn: queue capacities sum to %.2f > 1", sum)
	}
	return qs, nil
}

// lookup resolves a queue name ("" means default / the first queue).
func (qs *queueSet) lookup(name string) (*queueState, error) {
	if name == "" {
		if q, ok := qs.byName[DefaultQueueName]; ok {
			return q, nil
		}
		return qs.byName[qs.order[0]], nil
	}
	q, ok := qs.byName[name]
	if !ok {
		return nil, fmt.Errorf("yarn: unknown queue %q", name)
	}
	return q, nil
}

// canAllocate reports whether the queue may take memMB more memory, i.e.
// stays under its elastic ceiling.
func (qs *queueSet) canAllocate(q *queueState, memMB int) bool {
	limit := int(q.cfg.MaxCapacity * float64(qs.totalMemMB))
	return q.usedMemMB+memMB <= limit
}

// charge/uncharge account queue usage at allocation and release.
func (qs *queueSet) charge(q *queueState, memMB int)   { q.usedMemMB += memMB }
func (qs *queueSet) uncharge(q *queueState, memMB int) { q.usedMemMB -= memMB }

// headroomOrder returns queue names sorted by how far each queue is below
// its guaranteed capacity (most underserved first) — the Capacity
// Scheduler's inter-queue ordering.
func (qs *queueSet) headroomOrder() []string {
	type item struct {
		name string
		need float64 // guaranteed minus used, as a fraction
	}
	items := make([]item, 0, len(qs.order))
	for _, name := range qs.order {
		q := qs.byName[name]
		used := float64(q.usedMemMB) / float64(qs.totalMemMB)
		items = append(items, item{name, q.cfg.Capacity - used})
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].need > items[j].need })
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.name
	}
	return out
}

// Usage returns a queue's current memory usage fraction (for tests and
// telemetry).
func (qs *queueSet) usage(name string) float64 {
	q, err := qs.lookup(name)
	if err != nil {
		return 0
	}
	return float64(q.usedMemMB) / float64(qs.totalMemMB)
}
