package yarn

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/sim"
)

// NodeCrash is one scheduled node failure: the node's NM stops
// heartbeating at AtMs and, unless DownForMs <= 0, restarts DownForMs
// later. The RM learns of the crash only through heartbeat silence
// (Config.NodeExpiryMs) or the restarted NM's resync.
type NodeCrash struct {
	Node      int   // node index (0-based, cluster order)
	AtMs      int64 // crash instant in sim time
	DownForMs int64 // outage length; <= 0 means the node never comes back
}

// FaultSchedule is a deterministic set of node crash/restart events. Being
// plain data, a schedule can be logged, replayed, or embedded in a test.
type FaultSchedule struct {
	Crashes []NodeCrash
}

// Empty reports whether the schedule injects nothing.
func (fs FaultSchedule) Empty() bool { return len(fs.Crashes) == 0 }

// String summarizes the schedule for experiment output.
func (fs FaultSchedule) String() string {
	if fs.Empty() {
		return "no faults"
	}
	return fmt.Sprintf("%d node crash(es)", len(fs.Crashes))
}

// Install schedules every crash and restart onto the engine against the
// RM's registered NodeManagers. Crashes naming unregistered nodes are
// ignored; overlapping events are harmless (Crash while down and Restart
// while up are no-ops).
func (fs FaultSchedule) Install(eng *sim.Engine, rm *RM) {
	for _, c := range fs.Crashes {
		if c.Node < 0 || c.Node >= len(rm.nms) {
			continue
		}
		nm := rm.nms[c.Node]
		eng.At(sim.Time(c.AtMs), nm.Crash)
		if c.DownForMs > 0 {
			eng.At(sim.Time(c.AtMs+c.DownForMs), nm.Restart)
		}
	}
}

// RandomFaults draws a crash schedule over [0, horizonMs): each of nodes
// machines independently alternates exponential up-times (mean meanUpMs)
// and exponential outages (mean meanDownMs). The draw is fully determined
// by seed, so a failure sweep varies only meanUpMs while holding the rest
// of the scenario fixed. Crashes are returned in time order.
func RandomFaults(seed uint64, nodes int, horizonMs int64, meanUpMs, meanDownMs float64) FaultSchedule {
	var fs FaultSchedule
	if nodes <= 0 || horizonMs <= 0 || meanUpMs <= 0 {
		return fs
	}
	root := rng.New(seed ^ 0xfa17)
	for n := 0; n < nodes; n++ {
		r := root.Fork(uint64(n) + 1)
		t := int64(r.Exp(meanUpMs))
		for t < horizonMs {
			down := int64(r.Exp(meanDownMs))
			if down < 1 {
				down = 1
			}
			fs.Crashes = append(fs.Crashes, NodeCrash{Node: n, AtMs: t, DownForMs: down})
			t += down + int64(r.Exp(meanUpMs))
		}
	}
	sort.Slice(fs.Crashes, func(i, j int) bool {
		if fs.Crashes[i].AtMs != fs.Crashes[j].AtMs {
			return fs.Crashes[i].AtMs < fs.Crashes[j].AtMs
		}
		return fs.Crashes[i].Node < fs.Crashes[j].Node
	})
	return fs
}
