package yarn

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the Snapshot half of the Step/Snapshot/Restore seam the
// small-scope model checker (internal/mc) drives. A Snapshot is a
// canonical, side-effect-free capture of every piece of RM/NM domain
// state that either (a) an invariant oracle needs to check, or (b) can
// influence future behavior and therefore must separate states in the
// explorer's fingerprint map. Restore is deterministic replay: the
// simulation is a pure function of (seed, choice trace), so rebuilding a
// world and re-applying a trace reproduces any state exactly.

// ContSnap captures one live allocation.
type ContSnap struct {
	ID      string
	AppSeq  int
	Num     int
	Type    string // "G" or "O"
	MemMB   int
	VCores  int
	Node    string
	Where   string // "running" or "pending" (granted, awaiting AM pull)
	Charged bool   // still holds a leaf-queue memory charge
	Queue   string // charged queue name ("" when uncharged)
	Lost    bool
	// Reserved means the allocation holds a guaranteed-capacity node
	// reservation; NMEpoch is the NM incarnation it was made against. A
	// reservation only counts toward the node's live accounting when
	// NMEpoch matches the node's current epoch (restarts zero counters).
	Reserved bool
	NMEpoch  int
	ForAM    bool
}

// AskSnap captures one pending centralized request.
type AskSnap struct {
	AppSeq    int
	Remaining int
	WaitBeats int
	MemMB     int
	VCores    int
	ForAM     bool
}

// AppSnap captures one RMApp.
type AppSnap struct {
	ID       string
	Seq      int
	State    string
	Finished bool
	Queue    string
	Conts    []ContSnap // running then pending, each sorted by container number
}

// QueueSnap captures one leaf queue's accounting.
type QueueSnap struct {
	Name       string
	UsedMemMB  int
	LimitMemMB int // elastic ceiling in MB
}

// NodeSnap captures one NodeManager.
type NodeSnap struct {
	Name             string
	Index            int
	Down             bool
	Expired          bool
	Epoch            int
	ReservedVCores   int
	ReservedMemMB    int
	OppVCores        int
	OppMemMB         int
	TotalVCores      int
	TotalMemMB       int
	Running          int
	Localizing       int
	OppQueued        int
	CompletedPending int // exited, report riding the next heartbeat
	LostAtCrash      int // killed by a crash, awaiting restart resync
	SilenceMS        int64
}

// Snapshot is one canonical capture of the YARN control plane.
type Snapshot struct {
	Now            int64
	Apps           []AppSnap
	Queues         []QueueSnap
	Nodes          []NodeSnap
	Asks           []AskSnap
	AllocatedTotal int

	// Generator states: domain-equal states with different generator
	// positions have different futures and must not be merged.
	RMRng    uint64
	NodeRngs []uint64
}

// Snapshot captures the current control-plane state. It allocates but
// never mutates; taking a snapshot is safe at any event boundary.
func (rm *RM) Snapshot() *Snapshot {
	s := &Snapshot{
		Now:            int64(rm.Eng.Now()),
		AllocatedTotal: rm.AllocatedTotal,
		RMRng:          rm.rng.State(),
	}

	contSnap := func(al *Allocation, where string) ContSnap {
		typ := "G"
		if al.Type == Opportunistic {
			typ = "O"
		}
		qname := ""
		if al.queue != nil {
			qname = al.queue.cfg.Name
		}
		return ContSnap{
			ID:       al.Container.String(),
			AppSeq:   al.Container.App.Seq,
			Num:      al.Container.Num,
			Type:     typ,
			MemMB:    al.Profile.MemoryMB,
			VCores:   al.Profile.VCores,
			Node:     al.Node.Node.Name,
			Where:    where,
			Charged:  al.queue != nil,
			Queue:    qname,
			Lost:     al.lost,
			Reserved: al.reserved,
			NMEpoch:  al.nmEpoch,
			ForAM:    al.forAM,
		}
	}

	seqs := make([]int, 0, len(rm.apps))
	bySeq := make(map[int]*App, len(rm.apps))
	for id, a := range rm.apps {
		seqs = append(seqs, id.Seq)
		bySeq[id.Seq] = a
	}
	sort.Ints(seqs)
	posBySeq := make(map[int]int, len(seqs))
	for _, seq := range seqs {
		a := bySeq[seq]
		as := AppSnap{ID: a.ID.String(), Seq: seq, State: a.State, Finished: a.finished, Queue: a.queue.cfg.Name}
		running := make([]ContSnap, 0, len(a.running))
		for _, al := range a.running {
			running = append(running, contSnap(al, "running"))
		}
		sort.Slice(running, func(i, j int) bool { return running[i].Num < running[j].Num })
		as.Conts = append(as.Conts, running...)
		for _, al := range a.pendingGrants {
			as.Conts = append(as.Conts, contSnap(al, "pending"))
		}
		posBySeq[seq] = len(s.Apps)
		s.Apps = append(s.Apps, as)
	}
	// Allocations whose serialized scheduling decision is still in flight
	// (created on a heartbeat, not yet routed by finalizeAllocation)
	// already hold their queue charge and node reservation.
	for _, al := range rm.inflight {
		pos := posBySeq[al.Container.App.Seq]
		s.Apps[pos].Conts = append(s.Apps[pos].Conts, contSnap(al, "inflight"))
	}

	for _, name := range rm.queues.order {
		q := rm.queues.byName[name]
		s.Queues = append(s.Queues, QueueSnap{
			Name:       name,
			UsedMemMB:  q.usedMemMB,
			LimitMemMB: int(q.cfg.MaxCapacity * float64(rm.queues.totalMemMB)),
		})
	}

	for _, nm := range rm.nms {
		s.Nodes = append(s.Nodes, NodeSnap{
			Name:             nm.Node.Name,
			Index:            nm.Node.Index,
			Down:             nm.down,
			Expired:          nm.expired,
			Epoch:            nm.epoch,
			ReservedVCores:   nm.reservedVCores,
			ReservedMemMB:    nm.reservedMemMB,
			OppVCores:        nm.oppVCores,
			OppMemMB:         nm.oppMemMB,
			TotalVCores:      nm.totalVCores,
			TotalMemMB:       nm.totalMemMB,
			Running:          len(nm.running),
			Localizing:       len(nm.localizing),
			OppQueued:        len(nm.oppQueue),
			CompletedPending: len(nm.completed),
			LostAtCrash:      len(nm.lostAtCrash),
			SilenceMS:        int64(rm.Eng.Now() - nm.lastBeat),
		})
		s.NodeRngs = append(s.NodeRngs, nm.rng.State())
	}

	for _, q := range rm.queue {
		s.Asks = append(s.Asks, AskSnap{
			AppSeq:    q.app.ID.Seq,
			Remaining: q.remaining,
			WaitBeats: q.waitBeats,
			MemMB:     q.profile.MemoryMB,
			VCores:    q.profile.VCores,
			ForAM:     q.forAM,
		})
	}
	return s
}

// Fingerprint renders the snapshot as one canonical string. Absolute time
// is deliberately excluded (per-node heartbeat silence is kept, since
// liveness expiry depends on it); the model checker appends the engine's
// pending-event structure and uses the result as its visited-state key.
func (s *Snapshot) Fingerprint() string {
	var b strings.Builder
	for _, a := range s.Apps {
		fmt.Fprintf(&b, "a%d:%s:%v:%s", a.Seq, a.State, a.Finished, a.Queue)
		for _, c := range a.Conts {
			fmt.Fprintf(&b, "{%d.%d%s@%s:%s:c%v:%s:l%v:r%v:e%d:am%v:%dx%d}",
				c.AppSeq, c.Num, c.Type, c.Node, c.Where, c.Charged, c.Queue,
				c.Lost, c.Reserved, c.NMEpoch, c.ForAM, c.MemMB, c.VCores)
		}
		b.WriteByte(';')
	}
	for _, q := range s.Queues {
		fmt.Fprintf(&b, "q%s:%d/%d;", q.Name, q.UsedMemMB, q.LimitMemMB)
	}
	for i, n := range s.Nodes {
		fmt.Fprintf(&b, "n%d:d%v:x%v:e%d:r%d/%d:o%d/%d:run%d:loc%d:oq%d:cp%d:lac%d:s%d:g%x;",
			n.Index, n.Down, n.Expired, n.Epoch, n.ReservedVCores, n.ReservedMemMB,
			n.OppVCores, n.OppMemMB, n.Running, n.Localizing, n.OppQueued,
			n.CompletedPending, n.LostAtCrash, n.SilenceMS, s.NodeRngs[i])
	}
	for _, k := range s.Asks {
		fmt.Fprintf(&b, "k%d:%d:%d:%v:%dx%d;", k.AppSeq, k.Remaining, k.WaitBeats, k.ForAM, k.MemMB, k.VCores)
	}
	fmt.Fprintf(&b, "t%d;g%x", s.AllocatedTotal, s.RMRng)
	return b.String()
}
