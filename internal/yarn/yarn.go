// Package yarn simulates the Apache YARN resource manager stack the paper
// evaluates on: a ResourceManager with pluggable schedulers (the
// centralized Capacity Scheduler and the Hadoop-3.0 distributed
// Opportunistic scheduler from Mercury), NodeManagers with the container
// lifecycle state machine, the localization service, and the heartbeat
// protocols connecting them.
//
// Every state transition of the RMAppImpl, RMContainerImpl, and
// ContainerImpl state machines is written through internal/log4j in the
// exact layout the real daemons use, because those log lines — not any
// simulator-internal state — are SDchecker's only input.
package yarn

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/docker"
	"repro/internal/ids"
	"repro/internal/log4j"
	"repro/internal/sim"
)

// Real YARN logging class names; SDchecker's regexes (Table I) key on the
// trailing simple name.
const (
	ClassRMAppImpl       = "org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl"
	ClassRMContainerImpl = "org.apache.hadoop.yarn.server.resourcemanager.rmcontainer.RMContainerImpl"
	ClassContainerImpl   = "org.apache.hadoop.yarn.server.nodemanager.containermanager.container.ContainerImpl"
	ClassContainerLaunch = "org.apache.hadoop.yarn.server.nodemanager.containermanager.launcher.ContainerLaunch"
	ClassCapacitySched   = "org.apache.hadoop.yarn.server.resourcemanager.scheduler.capacity.CapacityScheduler"
	ClassOpportunistic   = "org.apache.hadoop.yarn.server.resourcemanager.scheduler.distributed.OpportunisticContainerAllocator"
	ClassRMNodeImpl      = "org.apache.hadoop.yarn.server.resourcemanager.rmnode.RMNodeImpl"
	ClassLivelinessMon   = "org.apache.hadoop.yarn.util.AbstractLivelinessMonitor"
	ClassNodeStatusUpd   = "org.apache.hadoop.yarn.server.nodemanager.NodeStatusUpdaterImpl"
)

// SchedulerType selects the out-application scheduling policy.
type SchedulerType int

// Supported schedulers (paper §IV-A: Hadoop-3.0.0-alpha3 ships both).
const (
	// SchedCapacity is the centralized Capacity Scheduler ("ce-" in Fig 7).
	SchedCapacity SchedulerType = iota
	// SchedOpportunistic is the distributed opportunistic scheduler
	// ("de-" in Fig 7), which trades placement quality for latency.
	SchedOpportunistic
)

// String names the scheduler for reports.
func (s SchedulerType) String() string {
	if s == SchedOpportunistic {
		return "opportunistic"
	}
	return "capacity"
}

// ContainerType distinguishes guaranteed from opportunistic containers.
type ContainerType int

// Container execution types (Hadoop 3 opportunistic containers).
const (
	Guaranteed ContainerType = iota
	Opportunistic
)

// Profile is a container resource request (the "ensemble of CPU and
// memory" the paper describes).
type Profile struct {
	VCores   int
	MemoryMB int
}

// InstanceType labels what runs inside a container, for the Fig 9a
// launch-delay breakdown. Values follow the paper's x-axis labels.
type InstanceType string

// Instance types measured in Fig 9a.
const (
	InstSparkDriver   InstanceType = "spm"  // Spark driver (AppMaster)
	InstSparkExecutor InstanceType = "spe"  // Spark executor
	InstMRMaster      InstanceType = "mrm"  // MapReduce AppMaster
	InstMRMap         InstanceType = "mrsm" // MapReduce map task
	InstMRReduce      InstanceType = "mrsr" // MapReduce reduce task
)

// LocalResource is one file the NodeManager must localize before launch.
type LocalResource struct {
	Path   string  // HDFS path
	SizeMB float64 // file size
	// Public resources (framework jars) are cached per node across
	// applications; private ones (user --files) are fetched every time.
	Public bool
}

// Process is the application-side code that runs inside a container. The
// NodeManager invokes Launched after localization, queueing (for
// opportunistic containers) and container-runtime start overhead.
type Process interface {
	Launched(env *ProcessEnv)
}

// Killable is optionally implemented by Processes that need to know when
// their container dies with its node (a crash, not a graceful Exit). The
// process must stop scheduling work; it gets no further callbacks.
type Killable interface {
	Killed()
}

// LaunchSpec is everything the NodeManager needs to start a container.
type LaunchSpec struct {
	Resources []LocalResource
	Instance  InstanceType
	Runtime   docker.Runtime
	Process   Process
}

// Allocation is a granted container handed to an ApplicationMaster.
type Allocation struct {
	Container ids.ContainerID
	Node      *NodeManager
	Profile   Profile
	Type      ContainerType
	AllocTime sim.Time

	queue    *queueState // leaf queue charged for this container (guaranteed only)
	forAM    bool        // allocated to run the ApplicationMaster
	lost     bool        // terminally accounted (lost or released); dedupes expiry vs resync
	nmEpoch  int         // NM incarnation the reservation was made against
	reserved bool        // currently holds a node reservation (guaranteed only)
}

// Config holds the tunables of the YARN deployment.
type Config struct {
	Scheduler SchedulerType
	// Ordering selects FIFO (Capacity default) or Fair request ordering
	// for the centralized scheduler.
	Ordering OrderingPolicy
	// Queues configures the Capacity Scheduler's leaf queues (guaranteed
	// and maximum capacity fractions). Empty means one default queue
	// owning the whole cluster — the paper's setup.
	Queues []QueueConfig
	// NMHeartbeatMs is the NodeManager->ResourceManager heartbeat period
	// (default 1000 ms); centralized allocations happen on these beats.
	NMHeartbeatMs int64
	// AMHeartbeatMs is the default ApplicationMaster->RM heartbeat used by
	// MapReduce (1000 ms); it caps the container acquisition delay
	// (Fig 7c). Spark overrides its own allocator cadence.
	AMHeartbeatMs int64
	// RMDecisionMicros is the Capacity Scheduler's per-container
	// allocation decision cost.
	RMDecisionMicros int64
	// LocalityDelayMaxBeats models the Capacity Scheduler's delay
	// scheduling (yarn.scheduler.capacity.node-locality-delay): a request
	// with locality preferences is skipped for up to this many node
	// heartbeats before the scheduler relaxes to off-switch placement.
	// Each ask draws a uniform number of skip-beats up to this maximum;
	// AM requests have no locality preference and are never delayed.
	LocalityDelayMaxBeats int
	// MaxAssignPerHeartbeat caps containers assigned per node heartbeat.
	// Hadoop 3.0.0-alpha3's Capacity Scheduler assigns one container per
	// heartbeat by default (multiple-assignments came later); the
	// throughput experiment (Table II) raises it to the batch-assignment
	// configuration. <= 0 means unlimited.
	MaxAssignPerHeartbeat int
	// OppRPCMeanMs is the distributed scheduler's request round-trip.
	OppRPCMeanMs float64
	// OppPowerOfChoices is the distributed scheduler's placement policy:
	// 1 (default) picks a uniformly random node — the paper's
	// opportunistic scheduler, whose bad placements cause Fig 7b's
	// queueing; k >= 2 samples k nodes and places on the least loaded
	// (Sparrow's batch sampling), the natural fix the paper's related
	// work points to.
	OppPowerOfChoices int
	// AMProfile is the resource shape of AppMaster containers.
	AMProfile Profile
	// DockerOverhead configures RuntimeDocker launches.
	DockerOverhead docker.Overhead
	// LocalCacheReadDemandMBps caps cache-warm localization reads.
	LocalCacheReadDemandMBps float64
	// CacheDiskFraction is the fraction of a cache-warm file actually
	// re-read from disk during localization (the rest is page-cache hot).
	// Warm localization still degrades under disk interference — Fig 12b's
	// mechanism — but at the reduced volume.
	CacheDiskFraction float64
	// LocalizeCPUVcoreSecPerMB is NM-side CPU per localized MB (copy,
	// CRC, permissions).
	LocalizeCPUVcoreSecPerMB float64
	// ColdFetchDemandMBps caps cold localization fetch streams.
	ColdFetchDemandMBps float64
	// DedicatedLocalDiskMBps, when > 0, gives each NodeManager a separate
	// storage class (SSD / RAM disk) for localization IO instead of the
	// HDFS disks — the optimization the paper proposes in §V-B to isolate
	// localization from dfsIO-style interference. Zero keeps the paper's
	// default layout (/yarn-temp on the same drives as HDFS).
	DedicatedLocalDiskMBps float64
	// LocalizerSetupVcoreSec is NM-side CPU to set up a localizer.
	LocalizerSetupVcoreSec float64
	// LocalCacheCapacityMB bounds the per-node public localization cache
	// (yarn.nodemanager.localizer.cache.target-size-mb); LRU eviction.
	// <= 0 disables the bound.
	LocalCacheCapacityMB float64
	// JVMReuse enables the JVM-reuse optimization (ablation).
	JVMReuse bool
	// PreemptOpportunistic makes NodeManagers kill running opportunistic
	// containers (newest first) when a guaranteed container's launch
	// would otherwise oversubscribe the node's vcores — Hadoop 3's
	// guaranteed-over-opportunistic preemption. Killed containers are
	// reported as launch failures so the owning AM re-requests them.
	PreemptOpportunistic bool
	// LaunchFailureProb injects container launch failures (bad node, OOM
	// at fork, image pull error): with this probability the launch script
	// exits non-zero before the process comes up, the NM reports the
	// failure, and the owning ApplicationMaster must recover. 0 disables.
	LaunchFailureProb float64
	// NodeExpiryMs is how long the RM waits without a heartbeat before
	// declaring a node LOST and killing its containers
	// (yarn.nm.liveness-monitor.expiry-interval-ms). Real YARN defaults to
	// 600 s; the simulator defaults to 10 s so failure experiments resolve
	// within low-latency job lifetimes. <= 0 disables the monitor.
	NodeExpiryMs int64
	// UseVCoresAccounting makes the scheduler account vcores as well as
	// memory. Off by default: the stock Capacity Scheduler uses the
	// DefaultResourceCalculator, which considers memory only — the reason
	// a fully-loaded cluster can turn over far more 1 GB containers per
	// second than it has cores (Table II).
	UseVCoresAccounting bool
}

// DefaultConfig mirrors the paper's deployment defaults.
func DefaultConfig() Config {
	return Config{
		Scheduler:                SchedCapacity,
		NMHeartbeatMs:            1000,
		AMHeartbeatMs:            1000,
		RMDecisionMicros:         350,
		LocalityDelayMaxBeats:    45,
		MaxAssignPerHeartbeat:    1,
		OppRPCMeanMs:             18,
		OppPowerOfChoices:        1,
		AMProfile:                Profile{VCores: 1, MemoryMB: 2048},
		DockerOverhead:           docker.DefaultOverhead(),
		LocalCacheReadDemandMBps: 1200,
		CacheDiskFraction:        0.35,
		LocalizeCPUVcoreSecPerMB: 0.0005,
		ColdFetchDemandMBps:      800,
		LocalizerSetupVcoreSec:   0.02,
		LocalCacheCapacityMB:     20480,
		NodeExpiryMs:             10_000,
	}
}

// ResourceFit reports whether a profile fits in the given free capacity.
func ResourceFit(freeVCores, freeMemMB int, p Profile) bool {
	return p.VCores <= freeVCores && p.MemoryMB <= freeMemMB
}

func containerLogDir(app ids.AppID, c ids.ContainerID) string {
	return fmt.Sprintf("userlogs/%s/%s", app, c)
}

// StderrPath returns the container's log file path within the sink — the
// file whose first line is the FIRST_LOG event SDchecker mines.
func StderrPath(c ids.ContainerID) string {
	return containerLogDir(c.App, c) + "/stderr"
}

// RMLogFile is the ResourceManager log path within the sink.
const RMLogFile = "hadoop/yarn-resourcemanager.log"

// NMLogFile returns the NodeManager log path for a node.
func NMLogFile(node *cluster.Node) string {
	return "hadoop/yarn-nodemanager-" + node.Name + ".log"
}

// sinkLoggers bundles the per-daemon loggers.
type rmLoggers struct {
	app   *log4j.Logger
	cont  *log4j.Logger
	sched *log4j.Logger
	node  *log4j.Logger // RMNodeImpl: node state transitions
	live  *log4j.Logger // liveliness monitor: heartbeat expiry
}

func newRMLoggers(sink *log4j.Sink, schedClass string) rmLoggers {
	return rmLoggers{
		app:   sink.Logger(RMLogFile, ClassRMAppImpl),
		cont:  sink.Logger(RMLogFile, ClassRMContainerImpl),
		sched: sink.Logger(RMLogFile, schedClass),
		node:  sink.Logger(RMLogFile, ClassRMNodeImpl),
		live:  sink.Logger(RMLogFile, ClassLivelinessMon),
	}
}
