package yarn

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/ids"
	"repro/internal/log4j"
	"repro/internal/rng"
	"repro/internal/sim"
)

// AppSpec describes one application submission.
type AppSpec struct {
	Name     string
	Type     string // "SPARK" or "MAPREDUCE"; recorded in the RM log
	AMLaunch LaunchSpec
	// AMProfile overrides Config.AMProfile when non-zero.
	AMProfile Profile
	// Queue names the Capacity Scheduler leaf queue ("" = default).
	Queue string
}

// App is the ResourceManager's view of one application (RMAppImpl).
type App struct {
	ID    ids.AppID
	Spec  AppSpec
	State string

	SubmitTime sim.Time
	FinishTime sim.Time

	pendingGrants []*Allocation // allocated, awaiting AM acquisition
	running       map[ids.ContainerID]*Allocation
	finished      bool
	queue         *queueState
	onFailure     func(*Allocation)
}

// ask is a pending centralized container request.
type ask struct {
	app       *App
	profile   Profile
	remaining int
	forAM     bool
	// waitBeats is the delay-scheduling skip counter: the ask is passed
	// over on this many node heartbeats before it becomes assignable.
	waitBeats int
	// asked is when the request entered the queue, for the RM's
	// allocation-latency histogram.
	asked sim.Time
}

// RM is the ResourceManager.
type RM struct {
	Eng  *sim.Engine
	Cfg  Config
	Cl   *cluster.Cluster
	Sink *log4j.Sink
	IDs  *ids.Factory

	// Tracer, when set, receives ground-truth scheduling spans at the
	// instant each phase completes (the simulator-side counterpart of the
	// spans SDchecker mines from logs). Nil disables recording.
	Tracer *sim.Recorder

	logs rmLoggers
	rng  *rng.Source
	met  *rmMetrics

	nms    []*NodeManager
	apps   map[ids.AppID]*App
	queue  []*ask
	queues *queueSet

	// inflight holds allocations between the reserve+charge taken on a
	// node heartbeat and the serialized decision event that routes them
	// (finalizeAllocation). Snapshots must see them: their queue charge
	// and node reservation are already live, so conservation oracles
	// would otherwise observe charges with no owning container.
	inflight []*Allocation

	// liveTick drives the node liveliness monitor (AbstractLivelinessMonitor):
	// nodes whose heartbeat is older than Cfg.NodeExpiryMs are expired and
	// their containers declared LOST. Started lazily with the first NM.
	liveTick *sim.Ticker

	// decisionClockUS serializes Capacity Scheduler allocation decisions
	// at sub-millisecond granularity (the engine ticks in ms, so decisions
	// are tracked in absolute microseconds and rounded when logged). This
	// is what bounds cluster-wide allocation throughput (Table II).
	decisionClockUS int64

	// AllocatedTotal counts every container allocation, for throughput
	// accounting alongside the log-mined numbers.
	AllocatedTotal int
}

// NewRM builds a ResourceManager over the cluster. NodeManagers attach
// themselves via registerNM (see NewNodeManager).
func NewRM(eng *sim.Engine, cfg Config, cl *cluster.Cluster, sink *log4j.Sink, factory *ids.Factory, seed uint64) *RM {
	schedClass := ClassCapacitySched
	if cfg.Scheduler == SchedOpportunistic {
		schedClass = ClassOpportunistic
	}
	totalMem := 0
	for _, n := range cl.Nodes {
		totalMem += n.MemoryMB
	}
	qs, err := newQueueSet(totalMem, cfg.Queues)
	if err != nil {
		panic(err) // queue configuration errors are deployment bugs
	}
	return &RM{
		Eng:    eng,
		Cfg:    cfg,
		Cl:     cl,
		Sink:   sink,
		IDs:    factory,
		logs:   newRMLoggers(sink, schedClass),
		rng:    rng.New(seed),
		apps:   make(map[ids.AppID]*App),
		queues: qs,
	}
}

// QueueUsage returns a leaf queue's current share of cluster memory.
func (rm *RM) QueueUsage(name string) float64 { return rm.queues.usage(name) }

// ChargedContainers lists containers still holding a queue charge, for
// leak checks in tests: after every app drains it must be empty.
func (rm *RM) ChargedContainers() []string {
	var out []string
	for _, a := range rm.apps {
		for _, al := range a.running {
			if al.queue != nil {
				out = append(out, fmt.Sprintf("%s running on %s (down=%v finished=%v)", al.Container, al.Node.Node.Name, al.Node.down, a.finished))
			}
		}
		for _, al := range a.pendingGrants {
			if al.queue != nil {
				out = append(out, fmt.Sprintf("%s pending on %s (down=%v finished=%v)", al.Container, al.Node.Node.Name, al.Node.down, a.finished))
			}
		}
	}
	sort.Strings(out)
	return out
}

func (rm *RM) registerNM(nm *NodeManager) {
	nm.lastBeat = rm.Eng.Now()
	rm.nms = append(rm.nms, nm)
	if rm.liveTick == nil && rm.Cfg.NodeExpiryMs > 0 {
		period := rm.Cfg.NodeExpiryMs / 2
		if period < 500 {
			period = 500
		}
		rm.liveTick = sim.NewTicker(rm.Eng, period, period, rm.checkLiveness)
	}
}

// checkLiveness expires nodes that have missed heartbeats for longer than
// NodeExpiryMs, the RM-side half of crash detection: the NM does not tell
// the RM it died, silence does.
func (rm *RM) checkLiveness() {
	now := rm.Eng.Now()
	for _, nm := range rm.nms {
		if nm.expired {
			// Still LOST. Allocations can land on an expired node after
			// its expiry sweep (the distributed scheduler samples nodes
			// with no global view — a grant can target a dead node), and
			// if the node never returns, no resync will ever report them.
			// Re-sweep so such stragglers are declared lost on the next
			// liveness tick; containerLost is idempotent.
			for _, al := range rm.allocationsOn(nm) {
				rm.containerLost(al)
			}
			continue
		}
		if int64(now-nm.lastBeat) <= rm.Cfg.NodeExpiryMs {
			continue
		}
		rm.expireNode(nm)
	}
}

// expireNode marks a silent node LOST and declares every container the RM
// placed there dead, in the real RM's log vocabulary.
func (rm *RM) expireNode(nm *NodeManager) {
	nm.expired = true
	host := nm.Node.Name + ":8041"
	rm.logs.live.Infof("Expired:%s Timed out after %d secs", host, rm.Cfg.NodeExpiryMs/1000)
	rm.logs.node.Infof("Deactivating Node %s as it is now LOST", host)
	rm.logs.node.Infof("%s Node Transitioned from RUNNING to LOST", host)
	for _, al := range rm.allocationsOn(nm) {
		rm.containerLost(al)
	}
}

// allocationsOn collects every live allocation the RM has placed on the
// node — acquired/running containers plus grants still awaiting AM pull —
// in deterministic (app sequence, container number) order. Finished apps
// are included: an app can complete (gate timers let it limp) while a
// stranded container still holds its queue charge.
func (rm *RM) allocationsOn(nm *NodeManager) []*Allocation {
	var out []*Allocation
	for _, a := range rm.apps {
		for _, al := range a.running {
			if al.Node == nm && !al.lost {
				out = append(out, al)
			}
		}
		for _, al := range a.pendingGrants {
			if al.Node == nm && !al.lost {
				out = append(out, al)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].Container, out[j].Container
		if ci.App.Seq != cj.App.Seq {
			return ci.App.Seq < cj.App.Seq
		}
		return ci.Num < cj.Num
	})
	return out
}

// containerLost reports one container killed by a node failure: the
// RMContainerImpl transitions to KILLED with the lost-node exit status
// (-100), queue charge is dropped, and the owner recovers — the RM itself
// retries AppMasters, worker losses reach the AM on its next heartbeat.
// Idempotent per allocation (expiry and NM resync can both report it).
func (rm *RM) containerLost(al *Allocation) {
	if al.lost {
		return
	}
	al.lost = true
	rm.contState(al.Container, "RUNNING", "KILLED")
	rm.logs.cont.Infof("%s completed with exit status -100. Diagnostics: Container released on a *lost* node", al.Container)
	if al.queue != nil {
		rm.queues.uncharge(al.queue, al.Profile.MemoryMB)
		al.queue = nil
	}
	a := rm.apps[al.Container.App]
	if a == nil || a.finished {
		return
	}
	delete(a.running, al.Container)
	kept := a.pendingGrants[:0]
	for _, g := range a.pendingGrants {
		if g != al {
			kept = append(kept, g)
		}
	}
	a.pendingGrants = kept
	if al.forAM || al.Container.IsAM() {
		rm.requeueAM(a)
		return
	}
	if a.onFailure != nil {
		delay := int64(rm.rng.Uniform(100, 400))
		rm.Eng.After(delay, func() {
			if !a.finished && a.onFailure != nil {
				a.onFailure(al)
			}
		})
	}
}

// safeUnreserve returns a guaranteed container's node reservation, unless
// the node has crashed (its counters are dead) or restarted since the
// reservation was made (its counters were zeroed; unreserving against the
// fresh incarnation would drive them negative).
func (rm *RM) safeUnreserve(al *Allocation) {
	if al.Type == Guaranteed && !al.Node.down && al.Node.epoch == al.nmEpoch {
		al.Node.unreserve(al.Profile)
	}
	al.reserved = false
}

// releaseUnacquired releases every grant the AM never pulled: queue charge
// dropped, node reservation returned, RELEASED logged. Called when the
// attempt dies (the relaunched AM re-requests from scratch) and when the
// app finishes (stragglers granted after the AM's last heartbeat).
func (rm *RM) releaseUnacquired(a *App) {
	for _, al := range a.pendingGrants {
		if al.lost {
			continue
		}
		al.lost = true
		rm.contState(al.Container, "ALLOCATED", "RELEASED")
		rm.safeUnreserve(al)
		if al.queue != nil {
			rm.queues.uncharge(al.queue, al.Profile.MemoryMB)
			al.queue = nil
		}
	}
	a.pendingGrants = nil
}

// requeueAM re-requests an application's AppMaster container (a new
// container of the same attempt; full attempt state machines are out of
// scope). The dead attempt's outstanding asks and unpulled grants are
// dropped first — the relaunched AM negotiates its containers anew.
func (rm *RM) requeueAM(a *App) {
	kept := rm.queue[:0]
	for _, q := range rm.queue {
		if q.app != a {
			kept = append(kept, q)
		}
	}
	rm.queue = kept
	rm.releaseUnacquired(a)
	profile := a.Spec.AMProfile
	if profile == (Profile{}) {
		profile = rm.Cfg.AMProfile
	}
	rm.queue = append(rm.queue, &ask{app: a, profile: profile, remaining: 1, forAM: true, waitBeats: 2 + rm.rng.Intn(10), asked: rm.Eng.Now()})
}

// NodeManagers returns the registered NodeManagers.
func (rm *RM) NodeManagers() []*NodeManager { return rm.nms }

// App returns the RM's record for an application.
func (rm *RM) App(id ids.AppID) *App { return rm.apps[id] }

// appState logs an RMAppImpl state transition in the real daemon's format.
func (rm *RM) appState(a *App, from, to, event string) {
	a.State = to
	rm.logs.app.Infof("%s State change from %s to %s on event = %s", a.ID, from, to, event)
}

// contState logs an RMContainerImpl transition.
func (rm *RM) contState(c ids.ContainerID, from, to string) {
	rm.logs.cont.Infof("%s Container Transitioned from %s to %s", c, from, to)
}

// Submit registers a new application, walking RMAppImpl through
// NEW -> NEW_SAVING -> SUBMITTED -> ACCEPTED and queueing the AppMaster
// container request. The returned ID is available immediately; the state
// transitions happen over the next few (simulated) milliseconds, as the
// real RM's async dispatcher does.
func (rm *RM) Submit(spec AppSpec) ids.AppID {
	id := rm.IDs.NewApp()
	q, err := rm.queues.lookup(spec.Queue)
	if err != nil {
		panic(err) // submitting to an unconfigured queue is a harness bug
	}
	a := &App{ID: id, Spec: spec, State: "NEW", running: make(map[ids.ContainerID]*Allocation), queue: q}
	rm.apps[id] = a

	rpc := int64(rm.rng.Uniform(4, 14))
	rm.Eng.After(rpc, func() {
		// The submission summary line carries the application name and
		// queue — SDchecker mines it to group results by query class.
		rm.logs.app.Infof("Application %s submitted: name=%s type=%s queue=%s",
			a.ID, spec.Name, spec.Type, q.cfg.Name)
		rm.appState(a, "NEW", "NEW_SAVING", "START")
		save := int64(rm.rng.Uniform(6, 28))
		rm.Eng.After(save, func() {
			a.SubmitTime = rm.Eng.Now()
			rm.appState(a, "NEW_SAVING", "SUBMITTED", "APP_NEW_SAVED")
			accept := int64(rm.rng.Uniform(1, 6))
			rm.Eng.After(accept, func() {
				rm.appState(a, "SUBMITTED", "ACCEPTED", "APP_ACCEPTED")
				profile := spec.AMProfile
				if profile == (Profile{}) {
					profile = rm.Cfg.AMProfile
				}
				// AM requests carry no locality preference, but queue
				// activation still costs a few scheduling opportunities.
				rm.queue = append(rm.queue, &ask{app: a, profile: profile, remaining: 1, forAM: true, waitBeats: 2 + rm.rng.Intn(10), asked: rm.Eng.Now()})
			})
		})
	})
	return id
}

// Ask adds a centralized (guaranteed) request for n containers. Grants are
// delivered when the AM pulls on its heartbeat (Pull), reproducing the
// allocate-protocol round trips that dominate the centralized allocation
// delay in Fig 7a.
func (rm *RM) Ask(appID ids.AppID, n int, p Profile) {
	a := rm.apps[appID]
	if a == nil || a.finished {
		return
	}
	q := &ask{app: a, profile: p, remaining: n, asked: rm.Eng.Now()}
	if max := rm.Cfg.LocalityDelayMaxBeats; max > 0 {
		q.waitBeats = 4 + rm.rng.Intn(max)
	}
	rm.queue = append(rm.queue, q)
}

// Pull is the AM heartbeat: it returns (and marks ACQUIRED) every
// container allocated since the last pull.
func (rm *RM) Pull(appID ids.AppID) []*Allocation {
	a := rm.apps[appID]
	if a == nil || len(a.pendingGrants) == 0 {
		return nil
	}
	grants := a.pendingGrants
	a.pendingGrants = nil
	for _, g := range grants {
		rm.contState(g.Container, "ALLOCATED", "ACQUIRED")
		a.running[g.Container] = g
		rm.Tracer.Record(sim.TraceSpan{
			Process: g.Container.App.String(), Thread: g.Container.String(),
			Name: sim.SpanAcquisition, Start: g.AllocTime, End: rm.Eng.Now(),
		})
	}
	return grants
}

// PendingGrantCount reports containers allocated but not yet acquired.
func (rm *RM) PendingGrantCount(appID ids.AppID) int {
	if a := rm.apps[appID]; a != nil {
		return len(a.pendingGrants)
	}
	return 0
}

// AskOpportunistic requests n containers through the distributed
// scheduler: a single RPC that picks random nodes with no global state and
// returns the grants directly (Mercury-style). deliver runs after the RPC
// round trip with all n allocations, acquired.
func (rm *RM) AskOpportunistic(appID ids.AppID, n int, p Profile, deliver func([]*Allocation)) {
	a := rm.apps[appID]
	if a == nil || a.finished {
		return
	}
	rpc := int64(rm.rng.Exp(rm.Cfg.OppRPCMeanMs))
	if rpc < 3 {
		rpc = 3
	}
	asked := rm.Eng.Now()
	rm.Eng.After(rpc, func() {
		allocs := make([]*Allocation, 0, n)
		for i := 0; i < n; i++ {
			nm := rm.pickOppNode()
			cid := rm.IDs.NewContainer(a.ID)
			rm.logs.sched.Infof("Allocated opportunistic container %s on host %s", cid, nm.Node.Name)
			rm.contState(cid, "NEW", "ALLOCATED")
			rm.contState(cid, "ALLOCATED", "ACQUIRED")
			rm.AllocatedTotal++
			rm.met.allocated(float64(rm.Eng.Now() - asked))
			// Opportunistic grants are acquired in the same RPC: the
			// acquisition span is zero-length by construction.
			rm.Tracer.Record(sim.TraceSpan{
				Process: cid.App.String(), Thread: cid.String(),
				Name: sim.SpanAcquisition, Start: rm.Eng.Now(), End: rm.Eng.Now(),
			})
			al := &Allocation{Container: cid, Node: nm, Profile: p, Type: Opportunistic, AllocTime: rm.Eng.Now(), nmEpoch: nm.epoch}
			a.running[cid] = al
			allocs = append(allocs, al)
		}
		deliver(allocs)
	})
}

// pickOppNode chooses the node for one opportunistic container: a
// uniformly random node by default, or the least-loaded of
// OppPowerOfChoices random samples (Sparrow-style batch sampling).
func (rm *RM) pickOppNode() *NodeManager {
	// sample draws one random node, redrawing a few times to avoid nodes
	// the RM currently believes LOST (under total blackout any node goes).
	sample := func() *NodeManager {
		nm := rm.nms[rm.rng.Intn(len(rm.nms))]
		for tries := 0; nm.expired && tries < 3; tries++ {
			nm = rm.nms[rm.rng.Intn(len(rm.nms))]
		}
		return nm
	}
	k := rm.Cfg.OppPowerOfChoices
	if k < 2 {
		return sample()
	}
	if k > len(rm.nms) {
		k = len(rm.nms)
	}
	var best *NodeManager
	bestLoad := 0
	for i := 0; i < k; i++ {
		nm := sample()
		load := nm.reservedVCores + nm.oppVCores + 16*len(nm.oppQueue)
		if best == nil || load < bestLoad {
			best, bestLoad = nm, load
		}
	}
	return best
}

// ReleaseGrants returns acquired-but-unused containers (the Spark
// over-allocation bug, §V-A): the RM logs a RELEASED transition and the
// NodeManager never sees them.
func (rm *RM) ReleaseGrants(appID ids.AppID, allocs []*Allocation) {
	a := rm.apps[appID]
	for _, al := range allocs {
		rm.contState(al.Container, "ACQUIRED", "RELEASED")
		if a != nil {
			delete(a.running, al.Container)
		}
		rm.safeUnreserve(al)
		if al.queue != nil {
			rm.queues.uncharge(al.queue, al.Profile.MemoryMB)
			al.queue = nil
		}
	}
}

// RegisterAttempt is the AM's registration call; it moves the app to
// RUNNING via the ATTEMPT_REGISTERED event — log message 3 in Table I.
func (rm *RM) RegisterAttempt(appID ids.AppID) {
	a := rm.apps[appID]
	if a == nil {
		return
	}
	rm.appState(a, "ACCEPTED", "RUNNING", "ATTEMPT_REGISTERED")
	rm.Tracer.Record(sim.TraceSpan{
		Process: a.ID.String(), Thread: sim.AppTrack,
		Name: sim.SpanAM, Start: a.SubmitTime, End: rm.Eng.Now(),
	})
}

// FinishApp unregisters the application: RUNNING -> FINAL_SAVING ->
// FINISHED. Frameworks stop their own containers before calling this.
func (rm *RM) FinishApp(appID ids.AppID) {
	a := rm.apps[appID]
	if a == nil || a.finished {
		return
	}
	a.finished = true
	// Drop this app's outstanding asks and release grants it never pulled.
	kept := rm.queue[:0]
	for _, q := range rm.queue {
		if q.app != a {
			kept = append(kept, q)
		}
	}
	rm.queue = kept
	rm.releaseUnacquired(a)
	rm.appState(a, "RUNNING", "FINAL_SAVING", "ATTEMPT_UNREGISTERED")
	rm.Eng.After(int64(rm.rng.Uniform(5, 25)), func() {
		a.FinishTime = rm.Eng.Now()
		rm.appState(a, "FINAL_SAVING", "FINISHED", "APP_UPDATE_SAVED")
	})
}

// SetFailureHandler registers the AM-side callback invoked (after the
// status propagates on the next heartbeat) when one of the application's
// containers fails to launch. Frameworks use it to request replacements.
func (rm *RM) SetFailureHandler(appID ids.AppID, fn func(*Allocation)) {
	if a := rm.apps[appID]; a != nil {
		a.onFailure = fn
	}
}

// containerLaunchFailed is the NM's report of a launch failure. Reports
// for containers the RM already declared lost are dropped: node expiry
// can race a live NM's report (the node was only silent, not dead), and
// the container must not get a second terminal transition.
func (rm *RM) containerLaunchFailed(al *Allocation) {
	if al.lost {
		return
	}
	rm.contState(al.Container, "ACQUIRED", "COMPLETED")
	rm.logs.cont.Infof("%s completed with exit status 1: launch failure", al.Container)
	if al.queue != nil {
		rm.queues.uncharge(al.queue, al.Profile.MemoryMB)
		al.queue = nil
	}
	a := rm.apps[al.Container.App]
	if a == nil {
		return
	}
	delete(a.running, al.Container)
	if al.forAM || al.Container.IsAM() {
		// The RM itself retries the AppMaster.
		rm.requeueAM(a)
		return
	}
	if a.onFailure != nil {
		// Status reaches the AM on its next allocate heartbeat.
		delay := int64(rm.rng.Uniform(100, 400))
		rm.Eng.After(delay, func() {
			if !a.finished && a.onFailure != nil {
				a.onFailure(al)
			}
		})
	}
}

// containerFinished is the NM's report of a completed container. Like
// containerLaunchFailed, reports for already-lost containers are dropped
// so an expiry/heartbeat race cannot produce a duplicate terminal.
func (rm *RM) containerFinished(al *Allocation) {
	if al.lost {
		return
	}
	rm.contState(al.Container, "RUNNING", "COMPLETED")
	if al.queue != nil {
		rm.queues.uncharge(al.queue, al.Profile.MemoryMB)
		al.queue = nil
	}
	if a := rm.apps[al.Container.App]; a != nil {
		delete(a.running, al.Container)
	}
}

// nodeUpdate is the NM heartbeat: the Capacity Scheduler assigns queued
// requests onto the reporting node while it has headroom. Each assignment
// costs a serialized decision (RMDecisionMicros), which is the cluster's
// allocation-throughput ceiling measured in Table II.
func (rm *RM) nodeUpdate(nm *NodeManager) {
	rm.met.rmBeat()
	nm.lastBeat = rm.Eng.Now()
	if nm.expired {
		// A restarted NM re-registers on its first heartbeat back.
		nm.expired = false
		rm.logs.node.Infof("%s:8041 Node Transitioned from NEW to RUNNING", nm.Node.Name)
	}
	if len(rm.queue) == 0 {
		return
	}
	orderQueue(rm.Cfg.Ordering, rm.queue)
	if len(rm.queues.order) > 1 {
		// Inter-queue ordering: serve the most underserved queue first.
		rank := map[string]int{}
		for i, name := range rm.queues.headroomOrder() {
			rank[name] = i
		}
		sort.SliceStable(rm.queue, func(i, j int) bool {
			return rank[rm.queue[i].app.queue.cfg.Name] < rank[rm.queue[j].app.queue.cfg.Name]
		})
	}
	nowUS := int64(rm.Eng.Now()) * 1000
	if rm.decisionClockUS < nowUS {
		rm.decisionClockUS = nowUS
	}
	assigned := 0
	limit := rm.Cfg.MaxAssignPerHeartbeat
	for _, q := range rm.queue {
		if limit > 0 && assigned >= limit {
			break
		}
		if q.waitBeats > 0 {
			q.waitBeats-- // delay scheduling: skip this opportunity
			continue
		}
		for q.remaining > 0 && (limit <= 0 || assigned < limit) &&
			rm.queues.canAllocate(q.app.queue, q.profile.MemoryMB) && nm.reserve(q.profile) {
			q.remaining--
			assigned++
			rm.queues.charge(q.app.queue, q.profile.MemoryMB)
			cid := rm.IDs.NewContainer(q.app.ID)
			al := &Allocation{Container: cid, Node: nm, Profile: q.profile, Type: Guaranteed, queue: q.app.queue, nmEpoch: nm.epoch, reserved: true}
			rm.inflight = append(rm.inflight, al)
			rm.decisionClockUS += rm.Cfg.RMDecisionMicros
			at := sim.Time((rm.decisionClockUS + 999) / 1000)
			rm.met.allocated(float64(at - q.asked))
			app, forAM := q.app, q.forAM
			rm.Eng.At(at, func() { rm.finalizeAllocation(app, al, forAM) })
		}
		if nm.FreeMemMB() < 512 {
			break
		}
	}
	// Compact satisfied asks.
	kept := rm.queue[:0]
	for _, q := range rm.queue {
		if q.remaining > 0 {
			kept = append(kept, q)
		}
	}
	tail := rm.queue[len(kept):]
	for i := range tail {
		tail[i] = nil
	}
	rm.queue = kept
}

// finalizeAllocation logs the allocation at the serialized decision
// instant and routes the grant: AM containers are launched by the RM's
// AMLauncher; executor containers wait for the AM's next Pull.
// dropInflight removes an allocation from the in-flight set once it has
// been routed somewhere observable (an app's running/pendingGrants sets)
// or its charge has been returned.
func (rm *RM) dropInflight(al *Allocation) {
	still := rm.inflight[:0]
	for _, x := range rm.inflight {
		if x != al {
			still = append(still, x)
		}
	}
	rm.inflight = still
}

func (rm *RM) finalizeAllocation(a *App, al *Allocation, forAM bool) {
	al.AllocTime = rm.Eng.Now()
	al.forAM = forAM
	rm.AllocatedTotal++
	rm.logs.sched.Infof("Assigned container %s of capacity <memory:%d, vCores:%d> on host %s",
		al.Container, al.Profile.MemoryMB, al.Profile.VCores, al.Node.Node.Name)
	rm.contState(al.Container, "NEW", "ALLOCATED")
	if a.finished {
		// App finished while the decision was in flight; release quietly.
		rm.dropInflight(al)
		rm.contState(al.Container, "ALLOCATED", "RELEASED")
		rm.safeUnreserve(al)
		if al.queue != nil {
			rm.queues.uncharge(al.queue, al.Profile.MemoryMB)
			al.queue = nil
		}
		return
	}
	if al.Node.down {
		// The node died between reservation and the serialized decision:
		// kill the container before anything launches. No unreserve — the
		// NM's counters reset when (if) it restarts.
		rm.dropInflight(al)
		al.lost = true
		rm.contState(al.Container, "ALLOCATED", "KILLED")
		rm.logs.cont.Infof("%s completed with exit status -100. Diagnostics: Container released on a *lost* node", al.Container)
		if al.queue != nil {
			rm.queues.uncharge(al.queue, al.Profile.MemoryMB)
			al.queue = nil
		}
		if forAM {
			rm.requeueAM(a)
		} else if a.onFailure != nil {
			delay := int64(rm.rng.Uniform(100, 400))
			rm.Eng.After(delay, func() {
				if !a.finished && a.onFailure != nil {
					a.onFailure(al)
				}
			})
		}
		return
	}
	if forAM {
		// AMLauncher: acquire and start the AM container directly.
		d := int64(rm.rng.Uniform(25, 80))
		rm.Eng.After(d, func() {
			rm.dropInflight(al)
			rm.contState(al.Container, "ALLOCATED", "ACQUIRED")
			a.running[al.Container] = al
			rm.Tracer.Record(sim.TraceSpan{
				Process: al.Container.App.String(), Thread: al.Container.String(),
				Name: sim.SpanAcquisition, Start: al.AllocTime, End: rm.Eng.Now(),
			})
			al.Node.StartContainer(al, a.Spec.AMLaunch)
		})
		return
	}
	rm.dropInflight(al)
	a.pendingGrants = append(a.pendingGrants, al)
}

// Queued reports the number of pending centralized container requests.
func (rm *RM) Queued() int {
	var n int
	for _, q := range rm.queue {
		n += q.remaining
	}
	return n
}

// Nodes returns the underlying cluster nodes (convenience for tests).
func (rm *RM) Nodes() []*cluster.Node { return rm.Cl.Nodes }

// DumpState formats a one-line summary, used in harness progress output.
func (rm *RM) DumpState() string {
	running := 0
	for _, a := range rm.apps {
		if !a.finished {
			running++
		}
	}
	return fmt.Sprintf("apps=%d live=%d queued=%d allocated=%d",
		len(rm.apps), running, rm.Queued(), rm.AllocatedTotal)
}
