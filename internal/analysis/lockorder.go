package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LockOrder verifies the documented mutex acquisition orders and the
// hook-under-lock ban:
//
//   - cmd/sdchecker documents "mu is taken before obsMu when both are
//     needed" (liveServer): acquiring mu while obsMu is held inverts the
//     order and can deadlock against pollOnce;
//   - internal/core's sharded stream serializes completion hooks with
//     hookMu while workers hold their shard's stMu, so acquiring stMu
//     while holding hookMu inverts that order;
//   - completion hooks must never be invoked while a shard queue lock
//     (qMu, workMu) is held — Quiesce waits on those locks for the very
//     hooks to finish;
//   - re-locking a mutex already held in the same function is flagged
//     (sync.Mutex is not reentrant).
//
// The analysis is intra-procedural and tracks the held set through each
// function body in source order, honouring defer'd unlocks.
var LockOrder = &Analyzer{
	Name: lockorderName,
	Doc:  "verify documented mutex acquisition orders (mu→obsMu, stMu→hookMu) and the hook-under-shard-lock ban",
	Run:  lockorderRun,
}

// lockPair documents "before must be acquired before after": acquiring
// `before` while `after` is held is an inversion.
type lockPair struct{ before, after string }

var lockPairs = []lockPair{
	{"mu", "obsMu"},
	{"stMu", "hookMu"},
}

// shardLocks are the locks the worker queues and the Quiesce counter
// live behind; user hooks must not run under them.
var shardLocks = map[string]bool{"qMu": true, "workMu": true}

var lockOrderPkgs = []string{"cmd/sdchecker", "internal/core", "internal/slo"}

// lockEvent is one ordered occurrence inside a function body.
type lockEvent struct {
	pos  token.Pos
	kind int // evLock, evUnlock, evDeferUnlock, evHookCall
	name string
}

const (
	evLock = iota
	evUnlock
	evDeferUnlock
	evHookCall
)

func lockorderRun(pass *Pass) {
	if pass.Pkg.Fixture != lockorderName && !matchesAny(pass.Pkg.PkgPath, lockOrderPkgs) {
		return
	}
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
				checkLockBody(pass, body)
			})
		}
	}
}

// forEachFuncBody visits body and every function-literal body inside it,
// each as an independent scope (a goroutine or callback body holds no
// locks from its lexical context at its own call time... or holds them
// unknowably — either way its acquisition order is judged on its own).
func forEachFuncBody(body *ast.BlockStmt, fn func(*ast.BlockStmt)) {
	fn(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			forEachFuncBody(lit.Body, fn)
			return false
		}
		return true
	})
}

// lockSelName extracts the lock's field name from a Lock/Unlock receiver
// chain (s.obsMu.Lock → "obsMu"); "" when the callee is not a mutex op.
func lockSelName(call *ast.CallExpr) (name string, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", ""
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name, op
	case *ast.Ident:
		return x.Name, op
	}
	return "", ""
}

// hookNameRE matches identifiers that conventionally hold completion or
// sink callbacks.
var hookNameRE = regexp.MustCompile(`(?i)^(hook|oncomplete|ondone|onfinish|onsnapshot|ontransition|callback|cb)$`)

// collectLockEvents linearizes a body's lock operations and hook
// invocations in source order. Function literals are skipped (they're
// separate scopes, walked by forEachFuncBody).
func collectLockEvents(info *types.Info, body *ast.BlockStmt) []lockEvent {
	hookVars := hookAliasNames(body)
	var evs []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if name, op := lockSelName(n.Call); op == "unlock" {
				evs = append(evs, lockEvent{pos: n.Pos(), kind: evDeferUnlock, name: name})
				return false
			}
			return true
		case *ast.CallExpr:
			if name, op := lockSelName(n); name != "" {
				kind := evLock
				if op == "unlock" {
					kind = evUnlock
				}
				evs = append(evs, lockEvent{pos: n.Pos(), kind: kind, name: name})
				return true
			}
			if name, ok := calleeHookName(info, n, hookVars); ok {
				evs = append(evs, lockEvent{pos: n.Pos(), kind: evHookCall, name: name})
			}
		}
		return true
	})
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// calleeHookName reports whether a call fires a hook-named field,
// variable, or alias of one. Method calls are excluded: st.OnComplete(f)
// registers a hook, while s.hook(a) — a func-valued field — fires one;
// the type checker's selection kind tells them apart.
func calleeHookName(info *types.Info, call *ast.CallExpr, aliases map[string]bool) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if !hookNameRE.MatchString(fun.Sel.Name) {
			return "", false
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			return "", false // registration/method, not a fire
		}
		return fun.Sel.Name, true
	case *ast.Ident:
		if hookNameRE.MatchString(fun.Name) || aliases[fun.Name] {
			return fun.Name, true
		}
	}
	return "", false
}

// hookAliasNames finds local variables bound from hook-named selectors
// (`h := s.hook`, `if h := ss.hook; ...`), so calling the alias counts
// as a hook invocation.
func hookAliasNames(body *ast.BlockStmt) map[string]bool {
	aliases := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			sel, ok := rhs.(*ast.SelectorExpr)
			if !ok || !hookNameRE.MatchString(sel.Sel.Name) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				aliases[id.Name] = true
			}
		}
		return true
	})
	return aliases
}

// checkLockBody runs the held-set simulation over one function body.
func checkLockBody(pass *Pass, body *ast.BlockStmt) {
	held := make(map[string]bool)
	heldOrder := func() string {
		var names []string
		for n := range held {
			names = append(names, n)
		}
		sort.Strings(names)
		return strings.Join(names, ", ")
	}
	for _, ev := range collectLockEvents(pass.TypesInfo(), body) {
		switch ev.kind {
		case evLock:
			if held[ev.name] {
				pass.Reportf(ev.pos, "%s.Lock() while %s is already held in this function (sync.Mutex is not reentrant)", ev.name, ev.name)
			}
			for _, p := range lockPairs {
				if ev.name == p.before && held[p.after] {
					pass.Reportf(ev.pos, "acquiring %s while holding %s inverts the documented %s→%s order", ev.name, p.after, p.before, p.after)
				}
			}
			held[ev.name] = true
		case evUnlock, evDeferUnlock:
			if ev.kind == evUnlock {
				delete(held, ev.name)
			}
			// A defer'd unlock keeps the lock held to function end:
			// nothing to remove.
		case evHookCall:
			for name := range held {
				if shardLocks[name] {
					pass.Reportf(ev.pos, "hook %s invoked while holding shard lock %s (held: %s); Quiesce waits on that lock for hooks to finish", ev.name, name, heldOrder())
				}
			}
		}
	}
}
