package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// MetricNames enforces Prometheus naming and label conventions at every
// metrics.Registry registration call site (Counter/Gauge/Histogram):
//
//   - metric names are compile-time constants in snake_case
//     (^[a-z][a-z0-9_]*$, no __ runs, no trailing _) — the exposition
//     endpoint is scraped by name, so dynamic or misspelled names
//     silently fork a series;
//   - counters end in _total; gauges and histograms must not (the
//     suffix promises monotonicity);
//   - histogram base names must not collide with the generated
//     _bucket/_sum/_count series and should carry a unit suffix
//     (_ms, _seconds, _bytes);
//   - label arguments come in key/value pairs whose keys are constant
//     snake_case strings and avoid the reserved le/quantile/__name__.
var MetricNames = &Analyzer{
	Name: metricnamesName,
	Doc:  "enforce Prometheus naming and label conventions at metrics.Registry registration sites",
	Run:  metricnamesRun,
}

var (
	metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	unitSuffixes = []string{"_ms", "_seconds", "_bytes"}
	// reservedLabels are generated or scrape-internal label names.
	reservedLabels = map[string]bool{"le": true, "quantile": true, "__name__": true}
)

func metricnamesRun(pass *Pass) {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := registryCall(pass, info, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			checkMetricName(pass, info, call, method)
			checkMetricLabels(pass, info, call, method)
			return true
		})
	}
}

// registryCall reports whether the call is Counter/Gauge/Histogram on a
// metrics.Registry receiver, and which. Fixture packages may use any
// receiver exposing those method names.
func registryCall(pass *Pass, info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	method := sel.Sel.Name
	switch method {
	case "Counter", "Gauge", "Histogram":
	default:
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" {
		return "", false
	}
	if obj.Pkg() != nil && PathHasSuffix(obj.Pkg().Path(), "internal/metrics") {
		return method, true
	}
	// Fixtures declare their own Registry stand-in.
	if pass.Pkg.Fixture == metricnamesName {
		return method, true
	}
	return "", false
}

func checkMetricName(pass *Pass, info *types.Info, call *ast.CallExpr, method string) {
	nameArg := call.Args[0]
	name, ok := constString(info, nameArg)
	if !ok {
		pass.Reportf(nameArg.Pos(),
			"%s registration with a non-constant metric name; dynamic names fork series silently — use constant names and put variance in labels", method)
		return
	}
	switch {
	case !metricNameRE.MatchString(name):
		pass.Reportf(nameArg.Pos(), "metric name %q is not snake_case (want ^[a-z][a-z0-9_]*$)", name)
		return
	case strings.Contains(name, "__"):
		pass.Reportf(nameArg.Pos(), "metric name %q contains a __ run (reserved for generated names)", name)
		return
	case strings.HasSuffix(name, "_"):
		pass.Reportf(nameArg.Pos(), "metric name %q has a trailing underscore", name)
		return
	}
	switch method {
	case "Counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(nameArg.Pos(), "counter %q must end in _total", name)
		}
	case "Gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(nameArg.Pos(), "gauge %q must not end in _total (the suffix promises a monotone counter)", name)
		}
	case "Histogram":
		switch {
		case strings.HasSuffix(name, "_total"):
			pass.Reportf(nameArg.Pos(), "histogram %q must not end in _total (the suffix promises a monotone counter)", name)
		case strings.HasSuffix(name, "_bucket"), strings.HasSuffix(name, "_sum"), strings.HasSuffix(name, "_count"):
			pass.Reportf(nameArg.Pos(), "histogram %q collides with its own generated _bucket/_sum/_count series", name)
		case !hasUnitSuffix(name):
			pass.Reportf(nameArg.Pos(), "histogram %q should end in a unit suffix (%s)", name, strings.Join(unitSuffixes, ", "))
		}
	}
}

func hasUnitSuffix(name string) bool {
	for _, s := range unitSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

// checkMetricLabels validates the trailing key/value label arguments.
// Histogram's second argument is the bucket slice, not a label.
func checkMetricLabels(pass *Pass, info *types.Info, call *ast.CallExpr, method string) {
	labels := call.Args[1:]
	if method == "Histogram" {
		if len(labels) == 0 {
			return
		}
		labels = labels[1:]
	}
	if len(labels)%2 != 0 {
		pass.Reportf(call.Pos(), "%s registration with %d label arguments; labels come in key/value pairs", method, len(labels))
		return
	}
	for i := 0; i < len(labels); i += 2 {
		key, ok := constString(info, labels[i])
		if !ok {
			pass.Reportf(labels[i].Pos(), "label key must be a compile-time constant string")
			continue
		}
		switch {
		case reservedLabels[key]:
			pass.Reportf(labels[i].Pos(), "label key %q is reserved by the exposition format", key)
		case !metricNameRE.MatchString(key):
			pass.Reportf(labels[i].Pos(), "label key %q is not snake_case (want ^[a-z][a-z0-9_]*$)", key)
		}
	}
}
