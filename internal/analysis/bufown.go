package analysis

import (
	"embed"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"os"

	"repro/internal/analysis/flow"
)

// BufOwn proves the zero-copy scan discipline: no string or []byte
// derived from a reusable scan buffer (a manifest-declared source such
// as blobWriter.String, whose result segmentIter slices into line
// views) may be stored into heap-lived state — a package variable, a
// map, a channel send, or a struct that outlives the call — without
// passing through a sanctioned clone site (strings.Clone and friends,
// or a clone guarded by a declared gate such as cloneMined).
//
// The analysis is interprocedural: per-function ownership summaries are
// computed by internal/analysis/flow over every scoped package, so a
// retention hidden behind helper calls (p.emit, warns.add) is still
// attributed to the call site that fed it source-derived memory.
var BufOwn = &Analyzer{
	Name:   bufownName,
	Doc:    "prove no reusable-scan-buffer memory is retained past a scan without a sanctioned clone (manifest: internal/analysis/ownership.json)",
	Run:    bufownRun,
	Finish: bufownFinish,
}

// The ownership manifest declares the contract bufown enforces; like
// vocab.json it is embedded so cmd/sdlint needs no side files, and
// "checked": sources and gates that no longer resolve in the scoped
// packages are themselves findings, so the manifest cannot rot.

//go:embed ownership.json
var ownershipFS embed.FS

// OwnSource declares one reusable-buffer source function.
type OwnSource struct {
	// Recv is the receiver type name ("" for package-level functions).
	Recv string `json:"recv"`
	// Func is the function or method name.
	Func string `json:"func"`
	// Doc says why the result aliases reusable memory.
	Doc string `json:"doc,omitempty"`
}

// OwnCloner declares one sanctioned clone function: its results copy
// their inputs' bytes.
type OwnCloner struct {
	// Pkg is the defining package's import path ("" for functions
	// matched by receiver within the scoped packages).
	Pkg string `json:"pkg,omitempty"`
	// Recv is the receiver type name for scoped methods.
	Recv string `json:"recv,omitempty"`
	Func string `json:"func"`
}

// Ownership is the parsed manifest.
type Ownership struct {
	Version int `json:"version"`

	// Packages scopes the analysis (import-path suffixes, like the
	// other analyzers' package lists).
	Packages []string `json:"packages"`

	Sources []OwnSource `json:"sources"`
	Cloners []OwnCloner `json:"cloners"`

	// Gates lists clone-guard identifiers: inside `if gate { ... }`,
	// assignments from cloner calls kill taint unconditionally, because
	// the gate is declared true exactly when the value needs cloning.
	Gates []string `json:"gates"`

	// Path is where the manifest was loaded from (for diagnostics).
	Path string `json:"-"`
}

// DefaultOwnership parses the embedded manifest.
func DefaultOwnership() (*Ownership, error) {
	raw, err := ownershipFS.ReadFile("ownership.json")
	if err != nil {
		return nil, err
	}
	return parseOwnership(raw, "internal/analysis/ownership.json")
}

// LoadOwnership parses a manifest file (fixtures may carry their own).
func LoadOwnership(path string) (*Ownership, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseOwnership(raw, path)
}

func parseOwnership(raw []byte, path string) (*Ownership, error) {
	o := &Ownership{Path: path}
	if err := json.Unmarshal(raw, o); err != nil {
		return nil, fmt.Errorf("analysis: %s: %v", path, err)
	}
	if len(o.Sources) == 0 {
		return nil, fmt.Errorf("analysis: %s: no sources declared; an empty contract proves nothing", path)
	}
	for _, c := range o.Cloners {
		if c.Func == "" || (c.Pkg == "" && c.Recv == "") {
			return nil, fmt.Errorf("analysis: %s: cloner %+v needs func and one of pkg or recv", path, c)
		}
	}
	return o, nil
}

func (u *Unit) ownership() (*Ownership, error) {
	if u.OwnershipPath != "" {
		return LoadOwnership(u.OwnershipPath)
	}
	return DefaultOwnership()
}

// bufownRun is per-package a no-op: the ownership analysis is inherently
// cross-package (summaries compose across import edges), so all work
// happens in Finish over the gathered passes.
func bufownRun(pass *Pass) {}

func bufownFinish(u *Unit) {
	man, err := u.ownership()
	if err != nil {
		u.ReportAt(bufownName, "internal/analysis/ownership.json", 1, "%v", err)
		return
	}

	var scoped []*Pass
	for _, p := range u.Passes(bufownName) {
		if p.Pkg.Fixture == bufownName || matchesAny(p.Pkg.PkgPath, man.Packages) {
			scoped = append(scoped, p)
		}
	}
	if len(scoped) == 0 {
		return // partial load: nothing in scope, nothing to prove
	}

	prog := flow.NewProgram(u.Prog.Fset, flow.Config{
		IsSource: func(fn *types.Func) bool {
			for _, s := range man.Sources {
				if fn.Name() == s.Func && recvTypeName(fn) == s.Recv {
					return true
				}
			}
			return false
		},
		IsCloner: func(fn *types.Func) bool {
			for _, c := range man.Cloners {
				if fn.Name() != c.Func {
					continue
				}
				if c.Pkg != "" {
					if fn.Pkg() != nil && fn.Pkg().Path() == c.Pkg && recvTypeName(fn) == "" {
						return true
					}
					continue
				}
				if recvTypeName(fn) == c.Recv {
					return true
				}
			}
			return false
		},
		IsGate: func(name string) bool {
			for _, g := range man.Gates {
				if name == g {
					return true
				}
			}
			return false
		},
	})

	// Register every function of every scoped package, remembering which
	// pass owns it so reports honour that file's //lint:allow directives.
	passOf := make(map[*flow.Func]*Pass)
	sourcesSeen := make(map[string]bool)
	gatesSeen := make(map[string]bool)
	for _, p := range scoped {
		for _, file := range p.Files() {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn := prog.Add(fd, p.TypesInfo()); fn != nil {
					passOf[fn] = p
					for i, s := range man.Sources {
						if fn.Obj.Name() == s.Func && recvTypeName(fn.Obj) == s.Recv {
							sourcesSeen[sourceKey(man.Sources[i])] = true
						}
					}
				}
			}
		}
		// Gates resolve against any identifier declared in scope (a
		// field or variable named after the guard).
		for id, obj := range p.TypesInfo().Defs {
			if obj == nil {
				continue
			}
			for _, g := range man.Gates {
				if id.Name == g {
					gatesSeen[g] = true
				}
			}
		}
	}

	// Checked manifest: a source or gate that no longer resolves means
	// the contract drifted from the code — the proof would be vacuous.
	for _, s := range man.Sources {
		if !sourcesSeen[sourceKey(s)] {
			u.ReportAt(bufownName, man.Path, 1,
				"ownership manifest declares source %s, but no scoped package defines it; the buffer-ownership proof is vacuous — update the manifest", sourceKey(s))
		}
	}
	for _, g := range man.Gates {
		if !gatesSeen[g] {
			u.ReportAt(bufownName, man.Path, 1,
				"ownership manifest declares clone gate %q, but no scoped package declares that identifier; update the manifest", g)
		}
	}

	prog.Resolve()
	for _, fn := range prog.Funcs() {
		p := passOf[fn]
		prog.Check(fn, func(e flow.Escape) {
			p.Reportf(e.Pos, "reusable scan-buffer memory %s without a sanctioned clone (see internal/analysis/ownership.json)", e.What)
		})
	}
}

func sourceKey(s OwnSource) string {
	if s.Recv == "" {
		return s.Func
	}
	return s.Recv + "." + s.Func
}

// recvTypeName returns the receiver's type name ("" for functions),
// unwrapping one pointer.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
