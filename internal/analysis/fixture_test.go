package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want is one expectation parsed from a fixture: a finding of the
// analyzer under test whose message matches re, at file:line (line 0
// matches manifest-level findings from want.txt, keyed by file only).
type want struct {
	file string // base name ("bad.go", "vocab.json")
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants parses `// want `regex“ comments from the fixture's .go
// files (recursively, for multi-package fixtures) and whole-line
// regexes from an optional want.txt sidecar (expectations against
// non-Go files such as the vocab manifest).
func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.WalkDir(dir, func(path string, e os.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return err
		}
		switch {
		case strings.HasSuffix(e.Name(), ".go"):
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			sc := bufio.NewScanner(f)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for line := 1; sc.Scan(); line++ {
				text := sc.Text()
				i := strings.Index(text, "// want `")
				if i < 0 {
					continue
				}
				expr := text[i+len("// want `"):]
				j := strings.LastIndex(expr, "`")
				if j < 0 {
					t.Fatalf("%s:%d: unterminated want expression", e.Name(), line)
				}
				wants = append(wants, &want{file: e.Name(), line: line, re: regexp.MustCompile(expr[:j])})
			}
		case e.Name() == "want.txt":
			raw, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, l := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
				if l = strings.TrimSpace(l); l != "" {
					wants = append(wants, &want{file: "vocab.json", re: regexp.MustCompile(l)})
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runFixture loads one fixture tree (the package itself plus any
// subpackages, for paired fixtures like smconform's yarn+mc) and runs
// one analyzer over it.
func runFixture(t *testing.T, a *Analyzer, sub string) []Finding {
	t.Helper()
	rel := filepath.Join("testdata", "src", a.Name, sub)
	prog, err := Load("../..", "./internal/analysis/"+filepath.ToSlash(rel)+"/...")
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	unit := &Unit{Prog: prog, Analyzers: []*Analyzer{a}}
	if a == LogVocab {
		unit.VocabPath = filepath.Join(rel, "vocab.json")
	}
	return unit.Run()
}

// TestFixtures drives every analyzer over its good (zero findings) and
// bad (each finding matched by a want, each want hit) packages —
// the analysistest protocol, minus x/tools.
func TestFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name+"/good", func(t *testing.T) {
			for _, f := range Errors(runFixture(t, a, "good")) {
				t.Errorf("unexpected finding: %s", f)
			}
		})
		t.Run(a.Name+"/bad", func(t *testing.T) {
			findings := runFixture(t, a, "bad")
			wants := collectWants(t, filepath.Join("testdata", "src", a.Name, "bad"))
			if len(wants) == 0 {
				t.Fatal("bad fixture has no want expectations")
			}
			for _, f := range findings {
				if f.Suppressed || f.Warning {
					continue
				}
				if !consume(wants, f) {
					t.Errorf("unmatched finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("want not found: %s:%d: %s", w.file, w.line, w.re)
				}
			}
		})
	}
}

// consume marks the first unhit want matching the finding.
func consume(wants []*want, f Finding) bool {
	base := filepath.Base(f.File)
	for _, w := range wants {
		if w.hit || w.file != base {
			continue
		}
		if w.line != 0 && w.line != f.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// TestSuppressionDirective pins the //lint:allow path: the reviewed
// wall-clock read in the determinism fixture must surface as a
// suppressed finding, not an error.
func TestSuppressionDirective(t *testing.T) {
	findings := runFixture(t, Determinism, "bad")
	for _, f := range findings {
		if f.Suppressed {
			if f.Reason == "" {
				t.Errorf("suppressed finding lost its reason: %s", f)
			}
			return
		}
	}
	t.Error("determinism/bad fixture produced no suppressed finding; the //lint:allow directive was not honoured")
}

// TestSelfCheck runs the full suite over the repository itself: the tree
// this test ships with must be lint-clean (suppressions allowed). This is
// the same bar CI enforces via cmd/sdlint.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree load in -short mode")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	unit := &Unit{Prog: prog, Analyzers: Analyzers(), FastSpec: coreFastSpec(t)}
	findings := unit.Run()
	for _, f := range Errors(findings) {
		t.Errorf("repository is not lint-clean: %s", f)
	}
	for _, f := range Warnings(findings) {
		t.Errorf("repository carries a stale suppression: %s", f)
	}
	if len(prog.Packages) < 10 {
		t.Errorf("self-check loaded only %d packages; pattern ./... no longer covers the tree", len(prog.Packages))
	}
}

// TestListAndDocs keeps the suite's registry coherent for cmd/sdlint.
func TestListAndDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
	if len(seen) != 8 {
		t.Errorf("suite has %d analyzers, want 8", len(seen))
	}
}

// TestUnusedSuppressionWarning pins the suppression audit: a
// //lint:allow directive that matches no finding of an analyzer that ran
// surfaces as an advisory unused-suppression warning (never an error).
func TestUnusedSuppressionWarning(t *testing.T) {
	findings := runFixture(t, Determinism, "good")
	if len(Errors(findings)) != 0 {
		t.Fatalf("warnings must not be errors: %v", Errors(findings))
	}
	for _, f := range Warnings(findings) {
		if f.Analyzer == "unused-suppression" && strings.Contains(f.Message, "determinism") {
			return
		}
	}
	t.Fatal("stale //lint:allow directive in determinism/good produced no unused-suppression warning")
}
