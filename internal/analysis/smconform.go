package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// SMConform keeps the model checker honest: the RMApp, RMContainer, and
// NM-container transition relations internal/mc explores are
// hand-declared tables, hand-mirrored from the state machines
// internal/yarn actually implements. This analyzer extracts the
// implemented relation directly from the yarn code — transition-line
// emit sites, both literal formats and the appState/contState wrapper
// methods with their literal call-site arguments — extracts the
// declared relation from the mc tables, and fails the build on any
// edge present in one but not the other. It also checks model hygiene:
// no outgoing edges from declared-terminal states, no non-terminal
// sinks, no duplicate table entries, and a non-empty extraction for
// every machine the model declares (so extractor rot cannot silently
// turn the proof vacuous).
var SMConform = &Analyzer{
	Name:   smconformName,
	Doc:    "prove the RMApp/RMContainer/NM-container transition relations in internal/yarn and the tables internal/mc explores are the same relation",
	Run:    smconformRun,
	Finish: smconformFinish,
}

// The three machines, named as in mc's oracles.
const (
	smRMApp  = "RMApp"
	smRMCont = "RMContainer"
	smNMCont = "NM-container"
)

// smShape recognizes one machine's transition line in a *format string*
// (verbs still embedded): groups 1 and 2 capture the from/to slots,
// each either a literal state or a %s/%v verb.
type smShape struct {
	machine string
	re      *regexp.Regexp
}

var smShapes = []smShape{
	{smRMApp, regexp.MustCompile(`State change from (%[sv]|[A-Z_]+) to (%[sv]|[A-Z_]+) on event`)},
	{smRMCont, regexp.MustCompile(`Container Transitioned from (%[sv]|[A-Z_]+) to (%[sv]|[A-Z_]+)$`)},
	{smNMCont, regexp.MustCompile(`^Container (?:%[sv]|\S+) transitioned from (%[sv]|[A-Z_]+) to (%[sv]|[A-Z_]+)$`)},
}

// smModelVars maps mc's table variable names to (machine, role).
var smModelVars = map[string]struct {
	machine  string
	terminal bool
}{
	"rmAppEdges":     {smRMApp, false},
	"rmContEdges":    {smRMCont, false},
	"nmContEdges":    {smNMCont, false},
	"rmContTerminal": {smRMCont, true},
	"nmContTerminal": {smNMCont, true},
}

type smEdge struct {
	machine, from, to string
	pos               token.Pos
	pass              *Pass
}

func (e smEdge) key() string { return e.machine + "|" + e.from + "|" + e.to }

// smWrapper is a detected transition-logging wrapper: a function whose
// emit format carries verbs in the from/to slots bound to its own
// parameters, so each call site contributes one edge.
type smWrapper struct {
	machine            string
	fromParam, toParam int
}

type smconformFact struct {
	role       string // "yarn" or "mc"
	codeEdges  []smEdge
	modelEdges []smEdge
	terminals  []smEdge // from = state, to = "" (terminal declarations)
	tables     []smEdge // from = table var name (edge tables only)
}

// smRole classifies a package: the implementation side, the model side,
// or out of scope. Fixture subpackages play the role their directory
// names (testdata/src/flow.smconform/*/yarn, .../mc).
func smRole(pkg *Package) string {
	if pkg.Fixture == smconformName {
		switch {
		case strings.HasSuffix(pkg.PkgPath, "/yarn"):
			return "yarn"
		case strings.HasSuffix(pkg.PkgPath, "/mc"):
			return "mc"
		}
		return ""
	}
	if pkg.Fixture != "" {
		return ""
	}
	switch {
	case PathHasSuffix(pkg.PkgPath, "internal/yarn"):
		return "yarn"
	case PathHasSuffix(pkg.PkgPath, "internal/mc"):
		return "mc"
	}
	return ""
}

func smconformRun(pass *Pass) {
	role := smRole(pass.Pkg)
	if role == "" {
		return
	}
	fact := &smconformFact{role: role}
	switch role {
	case "yarn":
		smExtractYarn(pass, fact)
	case "mc":
		smExtractModel(pass, fact)
	}
	pass.Result = fact
}

// verbIndex counts %s/%v verbs in format before byte offset i: the
// argument index (after the format itself) feeding that slot.
func verbIndex(format string, i int) int {
	return strings.Count(format[:i], "%s") + strings.Count(format[:i], "%v")
}

// smExtractYarn pulls the implemented transition relation out of one
// implementation package: literal transition formats contribute edges
// directly; wrapper methods (verbs bound to parameters) contribute one
// edge per literal call site.
func smExtractYarn(pass *Pass, fact *smconformFact) {
	info := pass.TypesInfo()
	wrappers := make(map[string]smWrapper) // types.Func FullName -> wrapper

	// Pass 1: emit sites. Literal from/to: an edge. Parameter-bound
	// from/to: the enclosing function is a wrapper.
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isEmitCall(info, call) || len(call.Args) == 0 {
					return true
				}
				format, ok := constString(info, call.Args[0])
				if !ok {
					return true
				}
				for _, shape := range smShapes {
					m := shape.re.FindStringSubmatchIndex(format)
					if m == nil {
						continue
					}
					from, to := format[m[2]:m[3]], format[m[4]:m[5]]
					fromVerb, toVerb := strings.HasPrefix(from, "%"), strings.HasPrefix(to, "%")
					switch {
					case !fromVerb && !toVerb:
						fact.codeEdges = append(fact.codeEdges, smEdge{shape.machine, from, to, call.Pos(), pass})
					case fromVerb && toVerb:
						fp := smParamIndex(info, fd, call, verbIndex(format, m[2]))
						tp := smParamIndex(info, fd, call, verbIndex(format, m[4]))
						if fp < 0 || tp < 0 {
							pass.Reportf(call.Pos(),
								"%s transition emitted with from/to that are neither literals nor parameters of %s; the transition relation cannot be extracted — route it through literal states or a wrapper", shape.machine, fd.Name.Name)
							break
						}
						wrappers[funcFullName(info, fd)] = smWrapper{shape.machine, fp, tp}
					default:
						pass.Reportf(call.Pos(),
							"%s transition emitted with a mixed literal/parameter from-to pair; the extractor only proves fully-literal emits or parameter-bound wrappers", shape.machine)
					}
					break
				}
				return true
			})
		}
	}

	// Pass 2: wrapper call sites. Every call must pass literal states —
	// anything else leaves an edge the model checker cannot know about.
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			w, ok := wrappers[fn.FullName()]
			if !ok {
				return true
			}
			if w.fromParam >= len(call.Args) || w.toParam >= len(call.Args) {
				return true
			}
			from, okF := constString(info, call.Args[w.fromParam])
			to, okT := constString(info, call.Args[w.toParam])
			if !okF || !okT {
				pass.Reportf(call.Pos(),
					"%s transition wrapper %s called with non-literal states; the yarn↔mc conformance proof requires literal edges", w.machine, fn.Name())
				return true
			}
			fact.codeEdges = append(fact.codeEdges, smEdge{w.machine, from, to, call.Pos(), pass})
			return true
		})
	}
}

// smParamIndex resolves call argument argIdx (0-based after the format)
// to an index into fd's parameters, or -1.
func smParamIndex(info *types.Info, fd *ast.FuncDecl, call *ast.CallExpr, argIdx int) int {
	if argIdx+1 >= len(call.Args) {
		return -1
	}
	id, ok := ast.Unparen(call.Args[argIdx+1]).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := info.Uses[id]
	if obj == nil {
		return -1
	}
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return -1
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

func funcFullName(info *types.Info, fd *ast.FuncDecl) string {
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
		return fn.FullName()
	}
	return fd.Name.Name
}

// smExtractModel pulls the declared relation out of one model package:
// the named table variables' composite literals.
func smExtractModel(pass *Pass, fact *smconformFact) {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				mv, ok := smModelVars[vs.Names[0].Name]
				if !ok {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					pass.Reportf(vs.Pos(), "model table %s is not a composite literal; the conformance extractor cannot read it", vs.Names[0].Name)
					continue
				}
				if !mv.terminal {
					fact.tables = append(fact.tables, smEdge{mv.machine, vs.Names[0].Name, "", vs.Pos(), pass})
				}
				for _, el := range lit.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := constString(info, kv.Key)
					if !ok {
						pass.Reportf(kv.Pos(), "model table %s has a non-literal key; the conformance extractor cannot read it", vs.Names[0].Name)
						continue
					}
					if mv.terminal {
						fact.terminals = append(fact.terminals, smEdge{mv.machine, key, "", kv.Pos(), pass})
						continue
					}
					switch val := ast.Unparen(kv.Value).(type) {
					case *ast.CompositeLit: // map[string][]string
						for _, tel := range val.Elts {
							if to, ok := constString(info, tel); ok {
								fact.modelEdges = append(fact.modelEdges, smEdge{mv.machine, key, to, tel.Pos(), pass})
							} else {
								pass.Reportf(tel.Pos(), "model table %s has a non-literal transition target", vs.Names[0].Name)
							}
						}
					default: // map[string]string
						if to, ok := constString(info, kv.Value); ok {
							fact.modelEdges = append(fact.modelEdges, smEdge{mv.machine, key, to, kv.Value.Pos(), pass})
						} else {
							pass.Reportf(kv.Value.Pos(), "model table %s has a non-literal transition target", vs.Names[0].Name)
						}
					}
				}
			}
		}
	}
}

func smconformFinish(u *Unit) {
	var facts []*smconformFact
	yarnSeen, mcSeen := false, false
	for _, p := range u.Passes(smconformName) {
		fact, ok := p.Result.(*smconformFact)
		if !ok {
			continue
		}
		facts = append(facts, fact)
		switch fact.role {
		case "yarn":
			yarnSeen = true
		case "mc":
			mcSeen = true
		}
	}
	// The diff is only meaningful over the whole pair; a partial load
	// (sdlint ./internal/yarn alone) proves nothing either way.
	if !yarnSeen || !mcSeen {
		return
	}

	var code, model []smEdge
	var terminals, tables []smEdge
	for _, f := range facts {
		code = append(code, f.codeEdges...)
		model = append(model, f.modelEdges...)
		terminals = append(terminals, f.terminals...)
		tables = append(tables, f.tables...)
	}

	codeSet := make(map[string]smEdge)
	for _, e := range code {
		if _, dup := codeSet[e.key()]; !dup {
			codeSet[e.key()] = e
		}
	}
	modelSet := make(map[string]smEdge)
	for _, e := range model {
		if prev, dup := modelSet[e.key()]; dup {
			e.pass.Reportf(e.pos, "model declares %s transition %s -> %s twice (first at %s)",
				e.machine, e.from, e.to, e.pass.Fset().Position(prev.pos))
			continue
		}
		modelSet[e.key()] = e
	}
	terminal := make(map[string]smEdge) // machine|state
	machinesWithTerminals := make(map[string]bool)
	for _, t := range terminals {
		terminal[t.machine+"|"+t.from] = t
		machinesWithTerminals[t.machine] = true
	}

	// Code ⊆ model: an implemented edge the model checker never explores.
	for _, k := range sortedKeys(codeSet) {
		e := codeSet[k]
		if _, ok := modelSet[e.key()]; !ok {
			e.pass.Reportf(e.pos,
				"%s transition %s -> %s is emitted by the implementation but absent from the model tables internal/mc explores; the model checker's coverage claim is broken — add the edge to the table or remove the emit",
				e.machine, e.from, e.to)
		}
	}
	// Model ⊆ code: a declared edge nothing implements.
	for _, k := range sortedKeys(modelSet) {
		e := modelSet[k]
		if _, ok := codeSet[e.key()]; !ok {
			e.pass.Reportf(e.pos,
				"model declares %s transition %s -> %s, but no implementation emit site produces it; the model explores behavior the system cannot exhibit — remove the edge or implement it",
				e.machine, e.from, e.to)
		}
	}

	// Model hygiene, per machine that declares a terminal set: terminal
	// states must be sinks, and every sink must be terminal.
	outgoing := make(map[string]bool) // machine|state has outgoing model edge
	reached := make(map[string]smEdge)
	for _, e := range modelSet {
		outgoing[e.machine+"|"+e.from] = true
		reached[e.machine+"|"+e.to] = e
	}
	for _, k := range sortedKeys(modelSet) {
		e := modelSet[k]
		if t, ok := terminal[e.machine+"|"+e.from]; ok {
			e.pass.Reportf(e.pos, "model declares an outgoing %s transition from terminal state %s (declared terminal at %s)",
				e.machine, e.from, e.pass.Fset().Position(t.pos))
		}
	}
	for _, k := range sortedKeysE(reached) {
		e := reached[k]
		if !machinesWithTerminals[e.machine] {
			continue // RMApp declares no terminal set: chains may stop anywhere
		}
		st := e.machine + "|" + e.to
		if !outgoing[st] {
			if _, ok := terminal[st]; !ok {
				e.pass.Reportf(e.pos, "model state %s of %s is a sink but not declared terminal; the terminal table drifted",
					e.to, e.machine)
			}
		}
	}

	// Empty-extraction honesty: a machine the model declares must yield
	// at least one implemented edge, or the extractor (or the code) has
	// rotted and the equality above is vacuously true.
	codeMachines := make(map[string]bool)
	for _, e := range codeSet {
		codeMachines[e.machine] = true
	}
	modelHasEdges := make(map[string]bool)
	for _, e := range modelSet {
		modelHasEdges[e.machine] = true
	}
	for _, t := range tables {
		if modelHasEdges[t.machine] && !codeMachines[t.machine] {
			t.pass.Reportf(t.pos,
				"no implemented %s transitions were extracted from the implementation packages, but the model table %s declares some; either the machine is dead code or the extractor no longer recognizes its emit shape",
				t.machine, t.from)
		}
	}
}

func sortedKeys(m map[string]smEdge) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysE(m map[string]smEdge) []string { return sortedKeys(m) }
