package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism bans nondeterminism sources inside the simulation and
// mining packages, whose entire value rests on bit-reproducibility: the
// DiffOracle demands byte-identical reports across seeds and worker
// counts, so wall-clock reads, the global math/rand stream, and
// map-iteration-ordered output are all defects there. Only the engine
// clock (sim.Engine.Now) and the seeded internal/rng sources are
// legitimate time/randomness.
var Determinism = &Analyzer{
	Name: determinismName,
	Doc:  "ban wall-clock time, global math/rand, and map-ordered output in simulation/mining packages",
	Run:  determinismRun,
}

// deterministicPkgs are the packages under the reproducibility contract.
var deterministicPkgs = []string{
	"internal/sim", "internal/yarn", "internal/spark", "internal/mapreduce",
	"internal/hdfs", "internal/docker", "internal/rng", "internal/workload",
	"internal/mc", "internal/attr",
}

// bannedTimeFuncs are the time package entry points that read or wait on
// the wall clock. time.Since is included even though it takes an
// argument: it reads time.Now internally.
var bannedTimeFuncs = map[string]string{
	"Now":       "reads the wall clock; use the engine clock (sim.Engine.Now)",
	"Since":     "reads the wall clock; subtract engine timestamps instead",
	"Sleep":     "blocks on the wall clock; schedule an engine event instead",
	"After":     "fires on the wall clock; schedule an engine event instead",
	"Tick":      "fires on the wall clock; use sim.Ticker",
	"NewTimer":  "fires on the wall clock; schedule an engine event instead",
	"NewTicker": "fires on the wall clock; use sim.Ticker",
	"AfterFunc": "fires on the wall clock; schedule an engine event instead",
}

func determinismRun(pass *Pass) {
	if pass.Pkg.Fixture != determinismName && !matchesAny(pass.Pkg.PkgPath, deterministicPkgs) {
		return
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		// Global math/rand streams are unseeded (or process-seeded)
		// shared state; even seeded use belongs in internal/rng where
		// streams can be forked per component.
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in a deterministic package; use the seeded internal/rng sources", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkWallClockCall(pass, info, n)
			case *ast.RangeStmt:
				checkMapRangeOutput(pass, info, n, f)
			}
			return true
		})
	}
}

// checkWallClockCall flags calls into the banned time package surface.
func checkWallClockCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	reason, banned := bannedTimeFuncs[sel.Sel.Name]
	if !banned {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "time" {
		return
	}
	pass.Reportf(call.Pos(), "time.%s %s", sel.Sel.Name, reason)
}

// checkMapRangeOutput flags map iterations whose order can leak into
// output: emitting log lines from inside the loop, or accumulating into
// an outer slice that is never deterministically sorted afterwards.
func checkMapRangeOutput(pass *Pass, info *types.Info, rng *ast.RangeStmt, file *ast.File) {
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	// Emission inside the loop: line order in the log becomes map order.
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isEmitCall(info, call) {
			pass.Reportf(call.Pos(),
				"log emission inside a map iteration: line order becomes map order; iterate a sorted key slice")
		}
		return true
	})

	// Accumulation into an outer slice: find `v = append(v, ...)` where
	// v is declared outside the loop, then require a later sort touching
	// v in the same function.
	for _, v := range outerAppendTargets(info, rng) {
		if !sortedLater(info, file, rng, v) {
			pass.Reportf(rng.Pos(),
				"map iteration appends to %q without a deterministic sort afterwards; sort the result or iterate sorted keys", v.Name())
		}
	}
}

// outerAppendTargets returns variables declared outside the range body
// that the body grows via v = append(v, ...).
func outerAppendTargets(info *types.Info, rng *ast.RangeStmt) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" || i >= len(as.Lhs) {
				continue
			}
			lhs, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := info.Uses[lhs].(*types.Var)
			if !ok && info.Defs[lhs] != nil {
				v, ok = info.Defs[lhs].(*types.Var)
			}
			if !ok || v == nil || seen[v] {
				continue
			}
			// Declared inside the loop body: per-iteration, harmless.
			if v.Pos() >= rng.Body.Pos() && v.Pos() <= rng.Body.End() {
				continue
			}
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

// sortedLater reports whether, after the range statement, the function
// calls into package sort (or slices.Sort*) with the variable in its
// arguments — the idiomatic "gather then order" pattern.
func sortedLater(info *types.Info, file *ast.File, rng *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := info.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			used := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.Uses[id] == v {
					used = true
				}
				return !used
			})
			if used {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
