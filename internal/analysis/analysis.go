// Package analysis implements sdlint, a static-analysis suite that
// enforces the contracts the compiler cannot see: the emitter↔miner log
// vocabulary (Table I), simulation determinism, lock ordering, metric
// naming, and completion-hook discipline.
//
// The design mirrors golang.org/x/tools/go/analysis — an Analyzer runs
// over one type-checked package (a Pass) and reports Diagnostics — but is
// built entirely on the standard library so the repository carries no
// external dependency: packages are loaded with `go list -export` and
// type-checked against the toolchain's export data (see loader.go).
//
// Two extensions over the x/tools model:
//
//   - Cross-package analyses. The log-vocabulary contract spans the
//     emitting packages and the miner; an Analyzer may declare a Finish
//     hook that runs once after every package's Run, with access to all
//     passes, to do whole-program reporting.
//
//   - Source-level suppressions. A `//lint:allow <analyzer> <reason>`
//     comment on the diagnosed line (or the line above it) marks a
//     finding as reviewed-and-accepted; suppressed findings are counted
//     but do not fail the build. The reason is mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in reports and in //lint:allow
	// directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Run analyzes one package and reports package-local findings via
	// pass.Reportf. It may return a value that Finish (if any) will see
	// in Pass.Result — typically an extraction of the package's facts.
	Run func(pass *Pass)

	// Finish, if non-nil, runs once per analysis run after every
	// package's Run completed, for whole-program checks (e.g. matching
	// emitter templates against miner regexes across packages).
	Finish func(unit *Unit)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	unit     *Unit

	// Result stashes whatever Run wants Finish to see for this package.
	Result any
}

// Fset returns the run-wide file set (positions are comparable across
// packages).
func (p *Pass) Fset() *token.FileSet { return p.unit.Prog.Fset }

// Files returns the package's parsed files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypesInfo returns the package's type information. It is always
// non-nil, but may be partial if the package had type errors.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.unit.report(p.Analyzer.Name, p.Pkg, p.Fset().Position(pos), fmt.Sprintf(format, args...))
}

// Unit is one whole analysis run: a loaded program crossed with a set of
// analyzers, accumulating findings.
type Unit struct {
	Prog      *Program
	Analyzers []*Analyzer

	// VocabPath optionally overrides the embedded vocabulary manifest
	// (fixtures carry their own vocab.json).
	VocabPath string

	// OwnershipPath optionally overrides the embedded buffer-ownership
	// manifest consumed by flow.bufown.
	OwnershipPath string

	// FastSpec, when non-empty, is the miner fast path's self-description
	// (core.FastPathSpec converted element-wise): one entry per byte-level
	// rule, carrying the regex the rule claims to implement. The logvocab
	// analyzer then proves each claimed pattern equal, as a language, to
	// the declared regex variable it shadows, and that the table covers
	// the whole manifest. Left empty (fixtures, partial loads) the
	// fast-path checks are skipped.
	FastSpec []FastRuleSpec

	passes   []*Pass
	findings []Finding
	timings  map[string]time.Duration
}

// Timings returns wall time spent per analyzer (Run over every package
// plus Finish), populated by Run.
func (u *Unit) Timings() map[string]time.Duration { return u.timings }

// FastRuleSpec describes one byte-level fast-path rule for the logvocab
// equivalence check. It mirrors core.FastRuleSpec field-for-field so the
// driver can convert between them without core importing analysis.
type FastRuleSpec struct {
	// Name is the rule's hit-counter metric (vocab.json "metric"), or a
	// helper's regex variable name for non-mining rules.
	Name string

	// RegexVar names the miner regex variable the rule replaces.
	RegexVar string

	// Pattern is the regex the byte-level matcher claims to implement,
	// generated from the rule's segment table (not copied from parser.go
	// — equality with the declared variable is what gets proven).
	Pattern string
}

// Finding is one reported diagnostic, resolved to a concrete position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`

	// Suppressed marks findings acknowledged by a //lint:allow
	// directive; Reason carries the directive's justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"suppress_reason,omitempty"`

	// Warning marks advisory findings (e.g. unused-suppression) that are
	// reported but never fail the build.
	Warning bool `json:"warning,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	if f.Suppressed {
		s += fmt.Sprintf(" (suppressed: %s)", f.Reason)
	}
	if f.Warning {
		s += " (warning)"
	}
	return s
}

// Passes returns every pass of one analyzer (by name), in package load
// order. Finish hooks use it to gather per-package extractions.
func (u *Unit) Passes(analyzer string) []*Pass {
	var out []*Pass
	for _, p := range u.passes {
		if p.Analyzer.Name == analyzer {
			out = append(out, p)
		}
	}
	return out
}

// ReportAt records a whole-program finding at an explicit position (used
// by Finish hooks; pos may name a non-Go file such as vocab.json).
func (u *Unit) ReportAt(analyzer, file string, line int, format string, args ...any) {
	u.report(analyzer, nil, token.Position{Filename: file, Line: line}, fmt.Sprintf(format, args...))
}

func (u *Unit) report(analyzer string, pkg *Package, pos token.Position, msg string) {
	f := Finding{
		Analyzer: analyzer,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  msg,
	}
	if pkg != nil {
		f.Package = pkg.PkgPath
		if reason, ok := pkg.allowed(analyzer, pos); ok {
			f.Suppressed, f.Reason = true, reason
		}
	}
	u.findings = append(u.findings, f)
}

// Run executes every analyzer over every package, then the Finish hooks,
// then the suppression audit, and returns the findings sorted by
// position (ties broken by analyzer, then message, so -json output is
// stable across runs).
func (u *Unit) Run() []Finding {
	u.timings = make(map[string]time.Duration)
	for _, a := range u.Analyzers {
		t0 := time.Now()
		for _, pkg := range u.Prog.Packages {
			pass := &Pass{Analyzer: a, Pkg: pkg, unit: u}
			u.passes = append(u.passes, pass)
			if a.Run != nil {
				a.Run(pass)
			}
		}
		u.timings[a.Name] += time.Since(t0)
	}
	for _, a := range u.Analyzers {
		if a.Finish != nil {
			t0 := time.Now()
			a.Finish(u)
			u.timings[a.Name] += time.Since(t0)
		}
	}
	u.auditSuppressions()
	sort.SliceStable(u.findings, func(i, j int) bool {
		a, b := u.findings[i], u.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return u.findings
}

// auditSuppressions reports every //lint:allow directive whose analyzer
// ran in this unit but which suppressed nothing, as a warning: a stale
// directive either outlived the finding it reviewed or never matched,
// and silently pre-approves whatever appears on its line next.
func (u *Unit) auditSuppressions() {
	ran := make(map[string]bool)
	for _, a := range u.Analyzers {
		ran[a.Name] = true
	}
	for _, pkg := range u.Prog.Packages {
		for file, dirs := range pkg.allows {
			for _, d := range dirs {
				if d.used || !ran[d.analyzer] {
					continue
				}
				u.findings = append(u.findings, Finding{
					Analyzer: "unused-suppression",
					Package:  pkg.PkgPath,
					File:     file,
					Line:     d.line,
					Message: fmt.Sprintf("//lint:allow %s suppresses nothing: no %s finding on this line or the one below; remove the stale directive",
						d.analyzer, d.analyzer),
					Warning: true,
				})
			}
		}
	}
}

// Errors returns the findings of a finished run that fail the build:
// neither suppressed nor advisory warnings.
func Errors(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed && !f.Warning {
			out = append(out, f)
		}
	}
	return out
}

// Warnings returns the advisory findings of a finished run.
func Warnings(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if f.Warning {
			out = append(out, f)
		}
	}
	return out
}

// allowDirective is one parsed //lint:allow comment. used is set when a
// finding consumes the directive, so the suppression audit can flag
// directives that no longer match anything.
type allowDirective struct {
	line     int
	analyzer string
	reason   string
	used     bool
}

// parseAllowDirectives scans a file's comments for //lint:allow
// directives. A directive with no reason is itself a finding (reported by
// the driver as analyzer "lint"), so the map value keeps the raw text.
func parseAllowDirectives(fset *token.FileSet, f *ast.File) []*allowDirective {
	var out []*allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:allow ")
			if !ok {
				continue
			}
			name, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
			out = append(out, &allowDirective{
				line:     fset.Position(c.Pos()).Line,
				analyzer: name,
				reason:   strings.TrimSpace(reason),
			})
		}
	}
	return out
}

// allowed reports whether a finding of analyzer a at pos is covered by a
// //lint:allow directive on the same line or the line immediately above.
func (p *Package) allowed(analyzer string, pos token.Position) (string, bool) {
	for _, d := range p.allows[pos.Filename] {
		if d.analyzer != analyzer {
			continue
		}
		if d.line == pos.Line || d.line == pos.Line-1 {
			d.used = true
			reason := d.reason
			if reason == "" {
				reason = "(no reason given)"
			}
			return reason, true
		}
	}
	return "", false
}
