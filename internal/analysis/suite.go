package analysis

// Analyzers returns the full sdlint suite in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LogVocab,
		Determinism,
		LockOrder,
		MetricNames,
		HookOnce,
		BufOwn,
		SMConform,
		GoAccount,
	}
}

// ByName resolves a subset selection (cmd/sdlint -only); nil for an
// unknown name.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Analyzer name constants, shared by the Analyzer declarations and
// their run functions (a direct X.Name reference would be an
// initialization cycle).
const (
	logvocabName    = "logvocab"
	determinismName = "determinism"
	lockorderName   = "lockorder"
	metricnamesName = "metricnames"
	hookonceName    = "hookonce"

	// The flow.* analyzers are built on the internal/analysis/flow
	// dataflow engine; the prefix groups them in -list and -only.
	bufownName    = "flow.bufown"
	smconformName = "flow.smconform"
	goaccountName = "flow.goaccount"
)
