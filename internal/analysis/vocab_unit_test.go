package analysis

import (
	"strings"
	"testing"
)

func TestDefaultVocab(t *testing.T) {
	v, err := DefaultVocab()
	if err != nil {
		t.Fatal(err)
	}
	if v.Version < 1 {
		t.Errorf("version %d", v.Version)
	}
	rows := map[int]bool{}
	for _, m := range v.Messages {
		if m.Table1Row > 0 {
			rows[m.Table1Row] = true
		}
	}
	for r := 1; r <= 14; r++ {
		if !rows[r] {
			t.Errorf("Table I row %d missing from the manifest", r)
		}
	}
	if !v.IsHelper("reContainerInPath") {
		t.Error("reContainerInPath should be a helper")
	}
	if v.IsHelper("reInvoke") {
		t.Error("reInvoke is a message regex, not a helper")
	}
	if got := v.ByRegexVar("reNMCont"); len(got) < 3 {
		t.Errorf("reNMCont extracts %d messages, want >=3 (LOCALIZING/SCHEDULED/RUNNING)", len(got))
	}
}

func TestVocabLineOf(t *testing.T) {
	v, err := DefaultVocab()
	if err != nil {
		t.Fatal(err)
	}
	first := v.LineOf(v.Messages[0].Name)
	if first <= 1 {
		t.Errorf("LineOf(%q) = %d, want a line inside the file", v.Messages[0].Name, first)
	}
	last := v.LineOf(v.Messages[len(v.Messages)-1].Name)
	if last <= first {
		t.Errorf("LineOf is not monotone with declaration order: first=%d last=%d", first, last)
	}
	if v.LineOf("NO_SUCH_MESSAGE") != 1 {
		t.Error("unknown message should fall back to line 1")
	}
}

func TestParseVocabValidation(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		want string // error substring, "" for ok
	}{
		{"ok", `{"version":1,"messages":[{"name":"A","source":"rm","regex_var":"reA","template":"x %d"}]}`, ""},
		{"empty name", `{"version":1,"messages":[{"name":"","source":"rm","regex_var":"reA","template":"x"}]}`, "empty name"},
		{"duplicate", `{"version":1,"messages":[{"name":"A","source":"rm","regex_var":"reA","template":"x"},{"name":"A","source":"rm","regex_var":"reB","template":"y"}]}`, "duplicate"},
		{"positional with template", `{"version":1,"messages":[{"name":"A","source":"positional","regex_var":"","template":"x"}]}`, "positional"},
		{"rm without regex", `{"version":1,"messages":[{"name":"A","source":"rm","regex_var":"","template":""}]}`, "positional"},
		{"bad json", `{`, "unexpected end"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseVocab([]byte(c.raw), "test.json")
			if c.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want substring %q", err, c.want)
			}
		})
	}
}
