package analysis

import (
	"go/ast"
	"go/types"
)

// HookOnce polices the completion-hook discipline in the miner and the
// live server: OnComplete/sink callbacks must fire exactly once per
// application and must not escape onto untracked goroutines.
//
//   - a hook invoked from a `go` function literal escapes Quiesce
//     accounting unless the launching function raises a pending counter
//     or WaitGroup first: Quiesce could observe zero in-flight work
//     while the hook still runs;
//   - a hook invoked at more than one syntactic site in the same
//     function can fire twice for one application; the exactly-once
//     pattern routes every fire through a single guarded site;
//   - a hook field invoked without a nil guard crashes when no hook is
//     installed.
var HookOnce = &Analyzer{
	Name: hookonceName,
	Doc:  "flag completion hooks that can fire twice, escape goroutines without Quiesce accounting, or fire unguarded",
	Run:  hookonceRun,
}

var hookOncePkgs = []string{"internal/core", "internal/obs", "internal/slo", "cmd/sdchecker"}

func hookonceRun(pass *Pass) {
	if pass.Pkg.Fixture != hookonceName && !matchesAny(pass.Pkg.PkgPath, hookOncePkgs) {
		return
	}
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHookEscapes(pass, fd.Body)
			forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
				checkHookFires(pass, body)
			})
		}
	}
}

// hookCallsIn collects hook invocations lexically inside n (including
// nested function literals when deep is true).
func hookCallsIn(info *types.Info, n ast.Node, aliases map[string]bool, deep bool) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && !deep && m != n {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if _, ok := calleeHookName(info, call, aliases); ok {
				out = append(out, call)
			}
		}
		return true
	})
	return out
}

// checkHookEscapes flags `go func() { ... hook(...) ... }()` launched
// from a function that never raises Quiesce accounting (a pending
// counter increment or a WaitGroup/pending Add) beforehand.
func checkHookEscapes(pass *Pass, body *ast.BlockStmt) {
	aliases := hookAliasNames(body)
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		calls := hookCallsIn(pass.TypesInfo(), lit.Body, aliases, true)
		if len(calls) == 0 {
			return true
		}
		if !hasAccountingBefore(body, gs) {
			pass.Reportf(gs.Pos(),
				"hook escapes onto a goroutine without Quiesce accounting (no pending counter or WaitGroup Add before the go statement)")
		}
		return true
	})
}

// hasAccountingBefore reports whether, before the go statement, the
// function increments a pending counter (`x.pending++`) or calls Add on
// a WaitGroup-ish receiver (wg, pending, work).
func hasAccountingBefore(body *ast.BlockStmt, gs *ast.GoStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || (n != nil && n.Pos() >= gs.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if name := trailingName(n.X); name == "pending" {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
				switch trailingName(sel.X) {
				case "wg", "pending", "work":
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// trailingName returns the last identifier of a selector chain (s.wg →
// "wg", pending → "pending").
func trailingName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// checkHookFires enforces single-site, nil-guarded hook invocation per
// function body.
func checkHookFires(pass *Pass, body *ast.BlockStmt) {
	aliases := hookAliasNames(body)
	sites := make(map[string][]*ast.CallExpr)
	ast.Inspect(body, func(n ast.Node) bool {
		// Nested literals are their own bodies via forEachFuncBody.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := calleeHookName(pass.TypesInfo(), call, aliases); ok {
			sites[name] = append(sites[name], call)
			if !nilGuarded(body, call, name) {
				pass.Reportf(call.Pos(), "hook %s invoked without a nil guard", name)
			}
		}
		return true
	})
	for name, calls := range sites {
		for _, call := range calls[1:] {
			pass.Reportf(call.Pos(),
				"hook %s invoked at %d sites in one function; a hook that can fire twice per application breaks the exactly-once contract — route fires through a single guarded site",
				name, len(calls))
		}
	}
}

// nilGuarded reports whether the call is inside an if whose condition
// (or init) mentions the callee name together with nil.
func nilGuarded(body *ast.BlockStmt, call *ast.CallExpr, name string) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if call.Pos() < ifs.Body.Pos() || call.End() > ifs.Body.End() {
			return true
		}
		mentionsName, mentionsNil := false, false
		check := func(e ast.Node) {
			if e == nil {
				return
			}
			ast.Inspect(e, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if id.Name == name {
						mentionsName = true
					}
					if id.Name == "nil" {
						mentionsNil = true
					}
				}
				if sel, ok := m.(*ast.SelectorExpr); ok && sel.Sel.Name == name {
					mentionsName = true
				}
				return true
			})
		}
		check(ifs.Cond)
		if ifs.Init != nil {
			check(ifs.Init)
		}
		if mentionsName && mentionsNil {
			guarded = true
			return false
		}
		return true
	})
	return guarded
}
