package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoAccount enforces leak-freedom for the pipeline's goroutines: every
// `go` statement in a pipeline package must be tied to a recognized
// lifecycle account, so Quiesce, the watchdog, and process shutdown can
// always observe the goroutine. A launch is accounted when either
//
//   - the launching function raises a WaitGroup or pending counter
//     before the go statement (`wg.Add(1); go ...` — the hookonce
//     discipline, generalized to every goroutine), or
//
//   - the launched body itself waits on a lifecycle signal: a receive,
//     select case, or range over a done/quit/stop/shutdown channel, a
//     `<-ctx.Done()`, or a deferred `wg.Done()`; method launches are
//     resolved through a cross-package declaration index, two calls
//     deep, so `go s.loop()` is tied by the select inside loop.
//
// A goroutine with neither is invisible to every shutdown path — the
// exact shape of the listener leak this analyzer found in sdchecker's
// live server.
var GoAccount = &Analyzer{
	Name:   goaccountName,
	Doc:    "require every go statement in pipeline packages to be tied to a lifecycle account (WaitGroup/pending counter before launch, or a done/stop-channel wait in the body)",
	Run:    goaccountRun,
	Finish: goaccountFinish,
}

var goAccountPkgs = []string{"internal/core", "internal/obs", "internal/yarn", "internal/slo", "cmd/sdchecker"}

// lifecycleChan matches channel names that signal goroutine shutdown.
func lifecycleChan(name string) bool {
	switch strings.ToLower(name) {
	case "done", "quit", "stop", "stopc", "stopch", "closed", "closing", "shutdown":
		return true
	}
	return false
}

// goaccountFact carries one package's declaration index and go sites to
// Finish (launch targets may be declared in another scoped package).
type goaccountFact struct {
	decls map[string]*goDecl // types.Func.FullName -> declaration
	sites []goSite
}

type goDecl struct {
	decl *ast.FuncDecl
	info *types.Info
}

type goSite struct {
	gs   *ast.GoStmt
	body *ast.BlockStmt // enclosing function body (for accounting scan)
	pass *Pass
}

func goaccountRun(pass *Pass) {
	fact := &goaccountFact{decls: make(map[string]*goDecl)}
	inScope := pass.Pkg.Fixture == goaccountName || matchesAny(pass.Pkg.PkgPath, goAccountPkgs)
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo().Defs[fd.Name].(*types.Func); ok {
				fact.decls[obj.FullName()] = &goDecl{decl: fd, info: pass.TypesInfo()}
			}
			if !inScope {
				continue
			}
			forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
				for _, s := range flattenStmts(body) {
					if gs, ok := s.(*ast.GoStmt); ok {
						fact.sites = append(fact.sites, goSite{gs: gs, body: fd.Body, pass: pass})
					}
				}
			})
		}
	}
	pass.Result = fact
}

// flattenStmts yields every statement lexically inside body, without
// descending into nested function literals (forEachFuncBody visits
// those separately; the accounting scan still uses the outermost
// declared body, where wg.Add conventionally lives).
func flattenStmts(body *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			out = append(out, s)
		}
		return true
	})
	return out
}

func goaccountFinish(u *Unit) {
	index := make(map[string]*goDecl)
	var sites []goSite
	for _, p := range u.Passes(goaccountName) {
		fact, ok := p.Result.(*goaccountFact)
		if !ok {
			continue
		}
		for k, v := range fact.decls {
			index[k] = v
		}
		sites = append(sites, fact.sites...)
	}
	for _, site := range sites {
		if hasAccountingBefore(site.body, site.gs) {
			continue
		}
		if launchTied(site.gs.Call, site.pass.TypesInfo(), index, 2) {
			continue
		}
		site.pass.Reportf(site.gs.Pos(),
			"go statement is tied to no lifecycle account: no WaitGroup/pending Add before launch, and the goroutine never waits on a done/stop channel or Done(); an unaccounted goroutine is invisible to Quiesce and shutdown")
	}
}

// launchTied reports whether the launched body waits on a lifecycle
// signal. Function literals are inspected directly; static callees are
// resolved through the declaration index, recursing depth calls deep so
// the wait may live in a helper.
func launchTied(call *ast.CallExpr, info *types.Info, index map[string]*goDecl, depth int) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return bodyTied(lit.Body, info, index, depth)
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	d := index[fn.FullName()]
	if d == nil {
		return false
	}
	return bodyTied(d.decl.Body, d.info, index, depth)
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// bodyTied scans one body for a lifecycle wait: `<-x.done`,
// `<-ctx.Done()`, a select/range over a lifecycle channel, a ranged
// channel (ended by close), or a (deferred) wg.Done() — then follows
// same-index callees depth-1 more levels down.
func bodyTied(body *ast.BlockStmt, info *types.Info, index map[string]*goDecl, depth int) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if lifecycleChan(trailingName(n.X)) {
				tied = true
			}
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
					tied = true // <-ctx.Done()
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					tied = true // terminated by close()
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(n.Args) == 0 {
				switch trailingName(sel.X) {
				case "wg", "pending", "work":
					tied = true // wg.Done(): WaitGroup-joined
				}
			}
			if depth > 1 && !tied {
				if fn := calleeFunc(info, n); fn != nil {
					if d := index[fn.FullName()]; d != nil && d.decl.Body != body {
						if bodyTied(d.decl.Body, d.info, index, depth-1) {
							tied = true
						}
					}
				}
			}
		}
		return !tied
	})
	return tied
}
