package analysis

import (
	"fmt"
	"regexp"
	"regexp/syntax"
	"sort"
	"strings"
	"unicode"
)

// This file implements the shared token automaton behind the logvocab
// analyzer. Both sides of the vocabulary contract are regular languages:
//
//   - an emitter template ("Invoking launch script for container %s")
//     denotes the set of log messages the call site can produce, obtained
//     by mapping each fmt verb to the sub-language of its renderings;
//
//   - a miner regex (reInvoke in internal/core/parser.go) denotes the set
//     of messages SDchecker will extract, as a substring match.
//
// Compiling both to NFAs (regexp/syntax progs) and walking their product
// decides, without running anything, whether a regex can ever fire on an
// emitted line — the languages intersect — or whether drift has made one
// side unreachable from the other.

// verbLang maps a fmt verb to a regular expression over its possible
// renderings. The mapping is deliberately broad (every actual rendering
// must be inside the language; extra strings only make the intersection
// test more permissive, never flakier).
func verbLang(verb byte) string {
	switch verb {
	case 'd', 'b', 'o':
		return `-?\d+`
	case 'x', 'X':
		return `-?[0-9a-fA-F]+`
	case 'f', 'F', 'e', 'E', 'g', 'G':
		return `-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?`
	case 't':
		return `(?:true|false)`
	case 'c':
		return `.`
	default: // s, v, q, U, p, T and anything exotic
		return `.+`
	}
}

// TemplateToRegexp converts a fmt format string into an anchored regular
// expression denoting every message the template can render. Literal text
// is quoted; verbs become verbLang classes.
func TemplateToRegexp(format string) string {
	var b strings.Builder
	b.WriteString(`\A(?s:`)
	lit := func(s string) { b.WriteString(regexp.QuoteMeta(s)) }
	for i := 0; i < len(format); {
		c := format[i]
		if c != '%' {
			j := strings.IndexByte(format[i:], '%')
			if j < 0 {
				lit(format[i:])
				i = len(format)
				continue
			}
			lit(format[i : i+j])
			i += j
			continue
		}
		// Scan one verb: %[flags][width][.precision][verb].
		j := i + 1
		for j < len(format) && strings.IndexByte("+-# 0123456789.[]*", format[j]) >= 0 {
			j++
		}
		if j >= len(format) {
			lit(format[i:])
			break
		}
		verb := format[j]
		if verb == '%' {
			lit("%")
		} else {
			b.WriteString("(?:")
			b.WriteString(verbLang(verb))
			b.WriteString(")")
		}
		i = j + 1
	}
	b.WriteString(`)\z`)
	return b.String()
}

// Automaton is a compiled NFA over one regular language.
type Automaton struct {
	prog *syntax.Prog
	src  string
}

// CompileTemplate builds the automaton of a fmt template's renderings
// (anchored: the whole message).
func CompileTemplate(format string) (*Automaton, error) {
	return compileAutomaton(TemplateToRegexp(format))
}

// CompileMinerRegex builds the automaton of the messages a miner regex
// fires on. Miner regexes search (regexp.MatchString semantics), so the
// language is wrapped unanchored: any message containing a match.
func CompileMinerRegex(expr string) (*Automaton, error) {
	return compileAutomaton(`(?s:.*(?:` + expr + `).*)`)
}

// CompileSearch builds the automaton of the messages a search regex
// fires on, like CompileMinerRegex, but keeps the wrapper's dot-all flag
// out of expr: CompileMinerRegex's single (?s:...) group leaks (?s) into
// the embedded expression, which is fine for intersection tests (it only
// loosens both sides symmetrically) but wrong for containment, where one
// side picking up strings the written regex rejects shows up as a
// spurious violation.
func CompileSearch(expr string) (*Automaton, error) {
	return compileAutomaton(`(?s:.*)(?:` + expr + `)(?s:.*)`)
}

func compileAutomaton(expr string) (*Automaton, error) {
	re, err := syntax.Parse(expr, syntax.Perl)
	if err != nil {
		return nil, fmt.Errorf("analysis: automaton: %v", err)
	}
	prog, err := syntax.Compile(re.Simplify())
	if err != nil {
		return nil, fmt.Errorf("analysis: automaton: %v", err)
	}
	return &Automaton{prog: prog, src: expr}, nil
}

// maxProductStates bounds the product walk. The miner regexes and
// templates compile to a few dozen instructions each, so real products
// stay tiny; on pathological blowup the test conservatively reports
// "intersects" (no false alarm).
const maxProductStates = 50_000

// Intersects reports whether the two languages share at least one string
// — the decision procedure behind both directions of the vocabulary
// check. It walks the product of the two NFAs breadth-first, stepping
// both sides with representative runes drawn from the boundaries of
// their rune classes.
func (a *Automaton) Intersects(b *Automaton) bool {
	sa := a.closure(map[uint32]bool{uint32(a.prog.Start): true})
	sb := b.closure(map[uint32]bool{uint32(b.prog.Start): true})

	type pair struct{ ka, kb string }
	start := pair{stateKey(sa), stateKey(sb)}
	seen := map[pair]bool{start: true}
	type node struct {
		sa, sb map[uint32]bool
	}
	queue := []node{{sa, sb}}

	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if a.accepting(n.sa) && b.accepting(n.sb) {
			return true
		}
		if len(seen) > maxProductStates {
			return true // give up conservatively
		}
		for _, r := range representatives(a.runeInsts(n.sa), b.runeInsts(n.sb)) {
			na := a.step(n.sa, r)
			if len(na) == 0 {
				continue
			}
			nb := b.step(n.sb, r)
			if len(nb) == 0 {
				continue
			}
			na, nb = a.closure(na), b.closure(nb)
			p := pair{stateKey(na), stateKey(nb)}
			if !seen[p] {
				seen[p] = true
				queue = append(queue, node{na, nb})
			}
		}
	}
	return false
}

// SubsetOf reports whether every string a accepts is also accepted by b
// — the decision procedure for the fast-path equivalence check (running
// it in both directions decides language equality). It walks the product
// of a's NFA state sets against b's: a counterexample is any reachable
// product state where a accepts and b does not. Unlike Intersects, the
// b side is allowed to die (an empty b set with a still alive is exactly
// where violations live), and the candidate runes must cover every
// maximal interval on which all live classes behave constantly, not just
// class bounds — see boundaryRunes. Empty-width assertions are treated
// as epsilon on both sides (exact for the assertion-free miner
// vocabulary; identical patterns always compare equal regardless). On
// pathological state blowup it reports true conservatively, mirroring
// Intersects.
func (a *Automaton) SubsetOf(b *Automaton) bool {
	sa := a.closure(map[uint32]bool{uint32(a.prog.Start): true})
	sb := b.closure(map[uint32]bool{uint32(b.prog.Start): true})

	type pair struct{ ka, kb string }
	start := pair{stateKey(sa), stateKey(sb)}
	seen := map[pair]bool{start: true}
	type node struct {
		sa, sb map[uint32]bool
	}
	queue := []node{{sa, sb}}

	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if a.accepting(n.sa) && !b.accepting(n.sb) {
			return false
		}
		if len(seen) > maxProductStates {
			return true // give up conservatively
		}
		for _, r := range boundaryRunes(a.runeInsts(n.sa), b.runeInsts(n.sb)) {
			na := a.step(n.sa, r)
			if len(na) == 0 {
				continue // a died: no string through here is in a's language
			}
			nb := b.closure(b.step(n.sb, r))
			na = a.closure(na)
			p := pair{stateKey(na), stateKey(nb)}
			if !seen[p] {
				seen[p] = true
				queue = append(queue, node{na, nb})
			}
		}
	}
	return true
}

// closure expands a state set across non-consuming instructions. Empty-
// width assertions (^ $ \b) are treated as epsilon: the automaton
// over-approximates, which can only make the vocabulary check more
// lenient, never report a false mismatch.
func (a *Automaton) closure(set map[uint32]bool) map[uint32]bool {
	var stack []uint32
	for pc := range set {
		stack = append(stack, pc)
	}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		inst := &a.prog.Inst[pc]
		push := func(next uint32) {
			if !set[next] {
				set[next] = true
				stack = append(stack, next)
			}
		}
		switch inst.Op {
		case syntax.InstAlt, syntax.InstAltMatch:
			push(inst.Out)
			push(inst.Arg)
		case syntax.InstCapture, syntax.InstNop, syntax.InstEmptyWidth:
			push(inst.Out)
		}
	}
	return set
}

func (a *Automaton) accepting(set map[uint32]bool) bool {
	for pc := range set {
		if a.prog.Inst[pc].Op == syntax.InstMatch {
			return true
		}
	}
	return false
}

// runeInsts returns the rune-consuming instructions live in a state set.
func (a *Automaton) runeInsts(set map[uint32]bool) []*syntax.Inst {
	var out []*syntax.Inst
	for pc := range set {
		inst := &a.prog.Inst[pc]
		switch inst.Op {
		case syntax.InstRune, syntax.InstRune1, syntax.InstRuneAny, syntax.InstRuneAnyNotNL:
			out = append(out, inst)
		}
	}
	return out
}

// step consumes one rune, returning the successor set (pre-closure).
func (a *Automaton) step(set map[uint32]bool, r rune) map[uint32]bool {
	next := make(map[uint32]bool)
	for pc := range set {
		inst := &a.prog.Inst[pc]
		switch inst.Op {
		case syntax.InstRune, syntax.InstRune1, syntax.InstRuneAny, syntax.InstRuneAnyNotNL:
			if inst.MatchRune(r) {
				next[inst.Out] = true
			}
		}
	}
	return next
}

// representatives picks candidate runes that partition the product's
// alphabet: the lower and upper bound of every rune range on either
// side. Any nonempty intersection of one class from each side contains
// one of these bounds, so testing only them is exhaustive.
func representatives(insts ...[]*syntax.Inst) []rune {
	var cands []rune
	add := func(r rune) {
		if r >= 0 {
			cands = append(cands, r)
		}
	}
	for _, side := range insts {
		for _, inst := range side {
			switch inst.Op {
			case syntax.InstRuneAny, syntax.InstRuneAnyNotNL:
				add('a') // any printable representative
				add('\n')
			default:
				for i := 0; i+1 < len(inst.Rune); i += 2 {
					add(inst.Rune[i])
					add(inst.Rune[i+1])
				}
				if len(inst.Rune) == 1 {
					add(inst.Rune[0])
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	out := cands[:0]
	var last rune = -1
	for _, r := range cands {
		if r != last {
			out = append(out, r)
			last = r
		}
	}
	return out
}

// boundaryRunes picks candidate runes for the containment walk. Class
// bounds alone (what representatives uses) are enough for intersection —
// any nonempty overlap of two classes contains a bound — but a
// containment violation can live strictly between classes: [a-z] vs
// [a-cx-z] is only refuted by a rune in [d,w]. The alphabet splits into
// maximal intervals on which every live class (both sides) is constant;
// each interval's left end is 0, some class lo, or some class hi+1, so
// emitting b-1, b, b+1 for every bound b (with "any" expanded to
// explicit ranges) lands at least one candidate in every interval.
func boundaryRunes(instsA, instsB []*syntax.Inst) []rune {
	var cands []rune
	bound := func(lo, hi rune) {
		for _, r := range [...]rune{lo - 1, lo, lo + 1, hi - 1, hi, hi + 1} {
			if r >= 0 && r <= unicode.MaxRune {
				cands = append(cands, r)
			}
		}
	}
	for _, side := range [...][]*syntax.Inst{instsA, instsB} {
		for _, inst := range side {
			switch inst.Op {
			case syntax.InstRuneAny:
				bound(0, unicode.MaxRune)
			case syntax.InstRuneAnyNotNL:
				bound(0, '\n'-1)
				bound('\n'+1, unicode.MaxRune)
			default:
				if len(inst.Rune) == 1 {
					bound(inst.Rune[0], inst.Rune[0])
					continue
				}
				for i := 0; i+1 < len(inst.Rune); i += 2 {
					bound(inst.Rune[i], inst.Rune[i+1])
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	out := cands[:0]
	var last rune = -1
	for _, r := range cands {
		if r != last {
			out = append(out, r)
			last = r
		}
	}
	return out
}

// stateKey canonicalizes a state set for the visited map.
func stateKey(set map[uint32]bool) string {
	pcs := make([]uint32, 0, len(set))
	for pc := range set {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	var b strings.Builder
	for _, pc := range pcs {
		fmt.Fprintf(&b, "%d,", pc)
	}
	return b.String()
}
