package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LogVocab statically enforces the emitter↔miner vocabulary contract of
// Table I: the log4j emit call sites across the simulated frameworks and
// the extraction regexes in internal/core must both agree with the
// checked-in manifest (vocab.json). Five checks:
//
//  1. every manifest template appears verbatim as an emit-site format
//     string (catches: renaming/retiring an emitted message);
//  2. every manifest regex_var exists in the miner and its compiled
//     pattern matches the manifest example (catches: regex drift);
//  3. every miner message regex is referenced by the manifest or listed
//     as a helper (catches: regexes added without updating the contract);
//  4. every manifest regex can fire on a line some emitter produces —
//     decided on the product of the regex and template automata
//     (catches: a miner pattern no emitter can satisfy);
//  5. each message's template language intersects its regex language
//     (catches: template and regex drifting apart in a matched pair).
//
// When the driver supplies the byte-level matcher's self-description
// (Unit.FastSpec, from core.FastPathSpec), three more checks prove the
// fast path equivalent to the regex vocabulary:
//
//  6. every mined manifest message and every helper has a fast rule,
//     bound to the right regex variable (catches: a metric the byte
//     matcher silently stopped covering, OPP_ASSIGNED-style);
//  7. each fast rule's generated pattern and its declared regex accept
//     exactly the same language — containment proven in both directions
//     on the NFA product (catches: the byte matcher drifting from the
//     regex it claims to implement, e.g. a renamed literal prefix);
//  8. no fast rule is stray: each names a manifest metric or a helper
//     (catches: dead dispatch entries masking a rename).
//
// A violation names the exact message type broken.
var LogVocab = &Analyzer{
	Name:   logvocabName,
	Doc:    "enforce the Table I emitter↔miner log-vocabulary manifest (vocab.json)",
	Run:    logvocabRun,
	Finish: logvocabFinish,
}

// emitterPkgs are the packages whose log4j emit sites form the
// vocabulary's production side.
var emitterPkgs = []string{
	"internal/yarn", "internal/spark", "internal/mapreduce",
	"internal/docker", "internal/hdfs",
}

// minerPkgs hold the extraction regexes (the consumption side).
var minerPkgs = []string{"internal/core"}

// tmplFact is one extracted emit-site format string.
type tmplFact struct {
	format string
	pos    token.Pos
}

// regexFact is one extracted package-level regexp.MustCompile pattern.
type regexFact struct {
	name    string
	pattern string
	pos     token.Pos
}

// vocabFacts is the per-package extraction handed to Finish.
type vocabFacts struct {
	emitter   bool
	miner     bool
	templates []tmplFact
	regexes   []regexFact
}

func logvocabRun(pass *Pass) {
	facts := &vocabFacts{
		emitter: pass.Pkg.Fixture == logvocabName || matchesAny(pass.Pkg.PkgPath, emitterPkgs),
		miner:   pass.Pkg.Fixture == logvocabName || matchesAny(pass.Pkg.PkgPath, minerPkgs),
	}
	pass.Result = facts
	if facts.emitter {
		facts.templates = collectEmitTemplates(pass)
	}
	if facts.miner {
		facts.regexes = collectMinerRegexes(pass)
	}
}

func matchesAny(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if PathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// isEmitCall reports whether a call expression is a log4j-style emit:
// a method named Infof/Warnf/Errorf with signature (string, ...any).
// Both *log4j.Logger and the AM-side Logger interfaces match.
func isEmitCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Infof", "Warnf", "Errorf":
	default:
		return false
	}
	// Require a method selection (rules out fmt.Errorf and friends).
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	sig, ok := selection.Type().(*types.Signature)
	if !ok || !sig.Variadic() || sig.Params().Len() != 2 {
		return false
	}
	basic, ok := sig.Params().At(0).Type().(*types.Basic)
	return ok && basic.Kind() == types.String
}

// constString resolves an expression to a compile-time string constant.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func collectEmitTemplates(pass *Pass) []tmplFact {
	var out []tmplFact
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isEmitCall(info, call) || len(call.Args) == 0 {
				return true
			}
			if format, ok := constString(info, call.Args[0]); ok {
				out = append(out, tmplFact{format: format, pos: call.Args[0].Pos()})
			}
			return true
		})
	}
	return out
}

// collectMinerRegexes extracts package-level `var x = regexp.MustCompile(lit)`
// declarations — the miner's vocabulary surface.
func collectMinerRegexes(pass *Pass) []regexFact {
	var out []regexFact
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, val := range vs.Values {
					call, ok := val.(*ast.CallExpr)
					if !ok || len(call.Args) != 1 {
						continue
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "MustCompile" {
						continue
					}
					if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "regexp" {
						continue
					}
					pattern, ok := constString(info, call.Args[0])
					if !ok {
						continue
					}
					out = append(out, regexFact{
						name:    vs.Names[i].Name,
						pattern: pattern,
						pos:     vs.Names[i].Pos(),
					})
				}
			}
		}
	}
	return out
}

func logvocabFinish(unit *Unit) {
	type tmplSite struct {
		tmplFact
		pass *Pass
	}
	var (
		templates []tmplSite
		regexes   []regexFact
		rexPass   = map[string]*Pass{}
		sawMiner  bool
		sawEmit   bool
	)
	for _, p := range unit.Passes(logvocabName) {
		facts, _ := p.Result.(*vocabFacts)
		if facts == nil {
			continue
		}
		sawMiner = sawMiner || (facts.miner && len(facts.regexes) > 0)
		sawEmit = sawEmit || (facts.emitter && len(facts.templates) > 0)
		for _, t := range facts.templates {
			templates = append(templates, tmplSite{t, p})
		}
		for _, r := range facts.regexes {
			regexes = append(regexes, r)
			rexPass[r.name] = p
		}
	}
	// The contract spans both sides; analyzing a partial tree (a single
	// package) must not fabricate "missing emitter" noise.
	if !sawMiner || !sawEmit {
		return
	}

	vocab, err := loadUnitVocab(unit)
	if err != nil {
		unit.ReportAt(logvocabName, "vocab.json", 1, "cannot load vocabulary manifest: %v", err)
		return
	}

	regexByName := make(map[string]regexFact, len(regexes))
	for _, r := range regexes {
		regexByName[r.name] = r
	}
	templateSet := make(map[string][]tmplSite)
	for _, t := range templates {
		templateSet[t.format] = append(templateSet[t.format], t)
	}

	// Compile every emitted template's automaton once (check 4 unions
	// them; check 5 indexes them).
	tmplAutomata := make(map[string]*Automaton, len(templateSet))
	for format := range templateSet {
		a, err := CompileTemplate(format)
		if err != nil {
			continue // unparseable rendering language: skip, broad by design
		}
		tmplAutomata[format] = a
	}

	referenced := make(map[string]bool)
	for _, m := range vocab.Messages {
		if m.Positional() {
			continue
		}
		line := vocab.LineOf(m.Name)

		// Check 1: template emitted verbatim somewhere.
		sites := templateSet[m.Template]
		if len(sites) == 0 {
			unit.ReportAt(logvocabName, vocab.Path, line,
				"message %s (Table I row %d): no emit call site uses template %q — the emitter vocabulary drifted from the manifest",
				m.Name, m.Table1Row, m.Template)
		}

		// Check 2: regex exists and fires on the example.
		referenced[m.RegexVar] = true
		rex, ok := regexByName[m.RegexVar]
		if !ok {
			unit.ReportAt(logvocabName, vocab.Path, line,
				"message %s: regex variable %s is not declared in the miner", m.Name, m.RegexVar)
			continue
		}
		re, err := regexp.Compile(rex.pattern)
		if err != nil {
			rexPass[rex.name].Reportf(rex.pos, "message %s: regex %s does not compile: %v", m.Name, rex.name, err)
			continue
		}
		if !re.MatchString(m.Example) {
			rexPass[rex.name].Reportf(rex.pos,
				"message %s: regex %s no longer matches the manifest example %q — the miner vocabulary drifted",
				m.Name, rex.name, m.Example)
			continue
		}

		// Check 5: the matched pair's languages must still intersect.
		if ta := tmplAutomata[m.Template]; ta != nil && len(sites) > 0 {
			ra, err := CompileMinerRegex(rex.pattern)
			if err == nil && !ta.Intersects(ra) {
				sites[0].pass.Reportf(sites[0].pos,
					"message %s: no rendering of template %q can match regex %s (%q) — emitter and miner drifted apart",
					m.Name, m.Template, rex.name, rex.pattern)
			}
		}
	}

	// Check 3: every miner regex is in the contract.
	for _, r := range regexes {
		if vocab.IsHelper(r.name) || referenced[r.name] {
			continue
		}
		rexPass[r.name].Reportf(r.pos,
			"regex %s is not referenced by the vocabulary manifest (add a message entry or list it under helpers)", r.name)
	}

	// Check 4: every referenced regex is producible by some emitter.
	for name := range referenced {
		rex, ok := regexByName[name]
		if !ok {
			continue // reported by check 2
		}
		ra, err := CompileMinerRegex(rex.pattern)
		if err != nil {
			continue
		}
		producible := false
		for _, ta := range tmplAutomata {
			if ta.Intersects(ra) {
				producible = true
				break
			}
		}
		if !producible {
			var names []string
			for _, m := range vocab.ByRegexVar(name) {
				names = append(names, m.Name)
			}
			rexPass[rex.name].Reportf(rex.pos,
				"regex %s (message types %s) cannot match any line the emitters produce",
				rex.name, strings.Join(names, ", "))
		}
	}

	// Checks 6-8: the byte-level fast path, when its self-description is
	// supplied, must cover the manifest and implement each regex exactly.
	if len(unit.FastSpec) > 0 {
		logvocabFastChecks(unit, vocab, regexByName, rexPass)
	}
}

// logvocabFastChecks proves the miner's byte-level dispatch table
// equivalent to the regex vocabulary: complete over the manifest
// (check 6), language-equal rule by rule (check 7), and free of stray
// entries (check 8).
func logvocabFastChecks(unit *Unit, vocab *Vocab, regexByName map[string]regexFact, rexPass map[string]*Pass) {
	specByName := make(map[string]FastRuleSpec, len(unit.FastSpec))
	for _, s := range unit.FastSpec {
		specByName[s.Name] = s
	}

	// Check 6: every mined message's metric has a fast rule bound to the
	// manifest's regex variable, and every helper is reimplemented.
	valid := make(map[string]bool) // spec names accounted for (check 8)
	for _, m := range vocab.Messages {
		if m.Positional() {
			continue
		}
		line := vocab.LineOf(m.Name)
		s, ok := specByName[m.Metric]
		if !ok {
			unit.ReportAt(logvocabName, vocab.Path, line,
				"message %s: fast path has no rule for metric %s — the byte-level matcher no longer covers the manifest",
				m.Name, m.Metric)
			continue
		}
		valid[s.Name] = true
		if s.RegexVar != m.RegexVar {
			unit.ReportAt(logvocabName, vocab.Path, line,
				"message %s: fast rule %s claims to implement %s but the manifest binds metric %s to %s",
				m.Name, s.Name, s.RegexVar, m.Metric, m.RegexVar)
		}
	}
	for _, h := range vocab.Helpers {
		s, ok := specByName[h]
		if !ok {
			unit.ReportAt(logvocabName, vocab.Path, 1,
				"helper %s: fast path has no rule reimplementing it", h)
			continue
		}
		valid[s.Name] = true
		if s.RegexVar != h {
			unit.ReportAt(logvocabName, vocab.Path, 1,
				"helper %s: fast rule claims to implement %s instead", h, s.RegexVar)
		}
	}

	// Check 7: each rule's generated pattern is language-equal to the
	// regex variable it shadows, proven by containment both directions.
	for _, s := range unit.FastSpec {
		rex, ok := regexByName[s.RegexVar]
		if !ok {
			unit.ReportAt(logvocabName, vocab.Path, 1,
				"fast rule %s: regex variable %s is not declared in the miner", s.Name, s.RegexVar)
			continue
		}
		fa, errF := CompileSearch(s.Pattern)
		ra, errR := CompileSearch(rex.pattern)
		if errF != nil || errR != nil {
			unit.ReportAt(logvocabName, vocab.Path, 1,
				"fast rule %s: cannot compile automata for equivalence proof (%v, %v)", s.Name, errF, errR)
			continue
		}
		if !fa.SubsetOf(ra) {
			rexPass[rex.name].Reportf(rex.pos,
				"fast rule %s accepts lines regex %s (%q) rejects — generated pattern %q is too broad",
				s.Name, rex.name, rex.pattern, s.Pattern)
		}
		if !ra.SubsetOf(fa) {
			rexPass[rex.name].Reportf(rex.pos,
				"regex %s (%q) accepts lines fast rule %s rejects — generated pattern %q is too narrow",
				rex.name, rex.pattern, s.Name, s.Pattern)
		}
	}

	// Check 8: no stray dispatch entries.
	for _, s := range unit.FastSpec {
		if !valid[s.Name] {
			unit.ReportAt(logvocabName, vocab.Path, 1,
				"fast rule %s matches no manifest metric and no helper (dead dispatch entry, or the manifest moved on)", s.Name)
		}
	}
}

// loadUnitVocab picks the fixture override or the embedded manifest.
func loadUnitVocab(unit *Unit) (*Vocab, error) {
	if unit.VocabPath != "" {
		return LoadVocab(unit.VocabPath)
	}
	return DefaultVocab()
}
