package analysis

import (
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"os"
)

// The vocabulary manifest is the single source of truth for the
// emitter↔miner contract: the logvocab analyzer checks the static tree
// against it at build time, and internal/core's unit tests drive the
// live parser with the same examples (see internal/core/vocab_test.go).

//go:embed vocab.json
var vocabFS embed.FS

// VocabMessage is one message type of the vocabulary.
type VocabMessage struct {
	// Name labels the message type in diagnostics; Table I types reuse
	// the paper's labels (which are also core.Kind display names).
	Name string `json:"name"`

	// Table1Row is the paper's Table I row (1-14), 0 for extensions.
	Table1Row int `json:"table1_row"`

	// Class is the log4j logging class that emits the message.
	Class string `json:"class"`

	// Source says which log the message appears in: "rm", "nm",
	// "container" (stderr body), or "positional" (defined by file
	// position, not shape — the FIRST_LOG rows).
	Source string `json:"source"`

	// RegexVar names the extraction regex variable in
	// internal/core/parser.go ("" for positional messages).
	RegexVar string `json:"regex_var"`

	// Metric is the `regex` label value on core_parser_hits_total.
	Metric string `json:"metric"`

	// Template is the emitter's format string, byte-for-byte as it
	// appears at the emit call site ("" for positional messages).
	Template string `json:"template"`

	// Example is a concrete message instance: it must match the
	// compiled RegexVar pattern and drive the parser to Kind.
	Example string `json:"example"`

	// Kind is the core.Kind display name the parser mines from Example.
	Kind string `json:"kind"`
}

// Positional reports whether the message is defined by file position
// (FIRST_LOG) rather than by a template/regex pair.
func (m VocabMessage) Positional() bool { return m.Source == "positional" }

// Vocab is the parsed manifest.
type Vocab struct {
	Version int `json:"version"`

	// Helpers lists regex variables in the miner that are not message
	// extractors (ID/path recognition); they are exempt from the
	// producibility checks.
	Helpers []string `json:"helpers"`

	Messages []VocabMessage `json:"messages"`

	// Path is where the manifest was loaded from (for diagnostics);
	// raw keeps the bytes for line-number lookups.
	Path string `json:"-"`
	raw  []byte
}

// DefaultVocab parses the embedded manifest.
func DefaultVocab() (*Vocab, error) {
	raw, err := vocabFS.ReadFile("vocab.json")
	if err != nil {
		return nil, err
	}
	return parseVocab(raw, "internal/analysis/vocab.json")
}

// LoadVocab parses a manifest file (fixtures carry their own).
func LoadVocab(path string) (*Vocab, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseVocab(raw, path)
}

func parseVocab(raw []byte, path string) (*Vocab, error) {
	v := &Vocab{raw: raw, Path: path}
	if err := json.Unmarshal(raw, v); err != nil {
		return nil, fmt.Errorf("analysis: %s: %v", path, err)
	}
	seen := make(map[string]bool)
	for _, m := range v.Messages {
		if m.Name == "" {
			return nil, fmt.Errorf("analysis: %s: message with empty name", path)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("analysis: %s: duplicate message %q", path, m.Name)
		}
		seen[m.Name] = true
		if m.Positional() != (m.Template == "" && m.RegexVar == "") {
			return nil, fmt.Errorf("analysis: %s: message %q: exactly the positional messages omit template and regex_var", path, m.Name)
		}
	}
	return v, nil
}

// IsHelper reports whether a miner regex variable is a declared helper.
func (v *Vocab) IsHelper(varName string) bool {
	for _, h := range v.Helpers {
		if h == varName {
			return true
		}
	}
	return false
}

// ByRegexVar returns the messages extracted by one regex variable.
func (v *Vocab) ByRegexVar(varName string) []VocabMessage {
	var out []VocabMessage
	for _, m := range v.Messages {
		if m.RegexVar == varName {
			out = append(out, m)
		}
	}
	return out
}

// LineOf returns the 1-based line in the manifest file where a message
// is declared (the line of its "name" field), or 1 if not found — so
// manifest-keyed findings point into vocab.json.
func (v *Vocab) LineOf(name string) int {
	needle := []byte(fmt.Sprintf("%q: %q", "name", name))
	i := bytes.Index(v.raw, needle)
	if i < 0 {
		return 1
	}
	return 1 + bytes.Count(v.raw[:i], []byte("\n"))
}
