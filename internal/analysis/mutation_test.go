package analysis

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// This file is the suite's mutation self-test: each case copies an
// analyzer's good fixture into a scratch package, seeds one defect a
// human plausibly introduces (a deleted clone, a drifted transition
// edge, an unaccounted goroutine, a gutted manifest), and requires the
// analyzer to report it. A detector that cannot re-find a seeded defect
// is decoration, not a proof.

// copyTree copies every non-test .go and .json file under src into dst,
// preserving relative paths, and registers cleanup of dst.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	t.Cleanup(func() { os.RemoveAll(dst) })
	err := filepath.WalkDir(src, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return err
		}
		name := e.Name()
		if strings.HasSuffix(name, "_test.go") ||
			(!strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, ".json")) {
			return nil
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, raw, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// mutateFile replaces old with new in one file, requiring exactly one
// occurrence so a fixture edit cannot silently defuse a mutant.
func mutateFile(t *testing.T, path, old, new string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(raw), old); n != 1 {
		t.Fatalf("%s: mutation anchor occurs %d times, want 1:\n%s", path, n, old)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(raw), old, new, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// runScratch loads one scratch subtree of an analyzer's fixture area and
// runs that analyzer (with an optional ownership-manifest override).
func runScratch(t *testing.T, a *Analyzer, sub, ownershipPath string) []Finding {
	t.Helper()
	rel := filepath.Join("testdata", "src", a.Name, sub)
	prog, err := Load("../..", "./internal/analysis/"+filepath.ToSlash(rel)+"/...")
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	unit := &Unit{Prog: prog, Analyzers: []*Analyzer{a}, OwnershipPath: ownershipPath}
	return unit.Run()
}

type mutCase struct {
	name     string
	analyzer *Analyzer
	file     string // path under the copied good tree to mutate ("" = manifest-only mutant)
	old, new string
	manifest string // optional ownership.json override content
	want     string // substring that must appear in an unsuppressed finding
}

const ownNoGates = `{"version":1,"packages":[],
  "sources":[{"recv":"blobWriter","func":"String"}],
  "cloners":[{"pkg":"strings","func":"Clone"},{"pkg":"fmt","func":"Sprintf"}],
  "gates":[]}`

const ownNoCloners = `{"version":1,"packages":[],
  "sources":[{"recv":"blobWriter","func":"String"}],
  "cloners":[],
  "gates":["cloneMined"]}`

func mutationCases() []mutCase {
	return []mutCase{
		// --- flow.bufown: the clone discipline, broken eight ways ---
		{name: "bufown-drop-msg-clone", analyzer: BufOwn, file: "good.go",
			old: "msg = strings.Clone(msg)", new: "_ = msg",
			want: "passed to mine"},
		{name: "bufown-drop-class-clone", analyzer: BufOwn, file: "good.go",
			old: "ln.Class = strings.Clone(ln.Class)", new: "_ = ln.Class",
			want: "passed to mine"},
		{name: "bufown-ungated-clone", analyzer: BufOwn, file: "good.go",
			old: "if p.cloneMined {", new: "if len(msg) > 1 {",
			want: "passed to mine"},
		{name: "bufown-warn-raw", analyzer: BufOwn, file: "good.go",
			old: `p.warnf("empty blob: %s", raw)`, new: "p.warns = append(p.warns, raw)",
			want: "field warns of p"},
		{name: "bufown-emit-view", analyzer: BufOwn, file: "good.go",
			old:  "bs := []byte(w.String())\n\tp.emit(event{Raw: string(bs)})",
			new:  "p.emit(event{Raw: w.String()})",
			want: "passed to emit"},
		{name: "bufown-bypass-miner", analyzer: BufOwn, file: "good.go",
			old: "p.mine(ln)", new: "p.emit(event{Raw: ln.Message})",
			want: "passed to emit"},
		{name: "bufown-manifest-no-gates", analyzer: BufOwn,
			manifest: ownNoGates, want: "passed to mine"},
		{name: "bufown-manifest-no-cloners", analyzer: BufOwn,
			manifest: ownNoCloners, want: "passed to mine"},

		// --- flow.goaccount: every tie to a lifecycle account, severed ---
		{name: "goaccount-drop-wg-add", analyzer: GoAccount, file: "good.go",
			old:  "s.wg.Add(1)\n\tgo func() {\n\t\tdefer s.wg.Done()\n\t\t<-s.work\n\t}()",
			new:  "go func() {\n\t\t<-s.work\n\t}()",
			want: "tied to no lifecycle account"},
		{name: "goaccount-drop-pending-inc", analyzer: GoAccount, file: "good.go",
			old:  "s.pending++\n\tgo func() {",
			new:  "go func() {",
			want: "tied to no lifecycle account"},
		{name: "goaccount-account-after-launch", analyzer: GoAccount, file: "good.go",
			old:  "s.pending++\n\tgo func() {\n\t\t<-s.work\n\t}()",
			new:  "go func() {\n\t\t<-s.work\n\t}()\n\ts.pending++",
			want: "tied to no lifecycle account"},
		{name: "goaccount-drop-done-case", analyzer: GoAccount, file: "good.go",
			old:  "case <-s.done:\n\t\t\t\treturn\n\t\t\tcase v := <-s.work:",
			new:  "case v := <-s.work:",
			want: "tied to no lifecycle account"},
		{name: "goaccount-quit-to-work", analyzer: GoAccount, file: "good.go",
			old:  "<-s.quit",
			new:  "<-s.work",
			want: "tied to no lifecycle account"},
		{name: "goaccount-loop-loses-done", analyzer: GoAccount, file: "good.go",
			old:  "\t\tcase <-s.done:\n\t\t\treturn\n\t\tcase v := <-s.work:",
			new:  "\t\tcase v := <-s.work:",
			want: "tied to no lifecycle account"},
		{name: "goaccount-helper-loses-wait", analyzer: GoAccount, file: "good.go",
			old:  "func (s *srv) inner() { <-s.done }",
			new:  "func (s *srv) inner() { s.pending = 0 }",
			want: "tied to no lifecycle account"},
		{name: "goaccount-range-over-slice", analyzer: GoAccount, file: "good.go",
			old:  "for v := range s.work { // ended by close(s.work)",
			new:  "for v := range []int{1, 2} {",
			want: "tied to no lifecycle account"},

		// --- flow.smconform: implementation and model drift apart ---
		{name: "smconform-undeclared-edge", analyzer: SMConform, file: "yarn/yarn.go",
			old:  `r.contState("c_1", "ALLOCATED", "RUNNING")`,
			new:  `r.contState("c_1", "ALLOCATED", "LOST")`,
			want: "RMContainer transition ALLOCATED -> LOST is emitted by the implementation but absent"},
		{name: "smconform-model-drift", analyzer: SMConform, file: "mc/mc.go",
			old:  `"RUNNING":   "FINISHED",`,
			new:  `"RUNNING":   "KILLED",`,
			want: "model declares RMApp transition RUNNING -> KILLED, but no implementation emit site"},
		{name: "smconform-duplicate-entry", analyzer: SMConform, file: "mc/mc.go",
			old:  `"ALLOCATED": {"RUNNING"},`,
			new:  `"ALLOCATED": {"RUNNING", "RUNNING"},`,
			want: "twice"},
		{name: "smconform-terminal-drift", analyzer: SMConform, file: "mc/mc.go",
			old:  `var rmContTerminal = map[string]bool{"COMPLETED": true}`,
			new:  `var rmContTerminal = map[string]bool{"RUNNING": true}`,
			want: "outgoing RMContainer transition from terminal state RUNNING"},
		{name: "smconform-emit-shape-rot", analyzer: SMConform, file: "yarn/yarn.go",
			old:  `"%s Container Transitioned from %s to %s"`,
			new:  `"%s Container moved from %s to %s"`,
			want: "no implemented RMContainer transitions were extracted"},
		{name: "smconform-nm-drift", analyzer: SMConform, file: "yarn/yarn.go",
			old:  `"Container %s transitioned from RUNNING to DONE"`,
			new:  `"Container %s transitioned from RUNNING to EXITED"`,
			want: "NM-container transition RUNNING -> EXITED is emitted"},
		{name: "smconform-non-literal-call", analyzer: SMConform, file: "yarn/yarn.go",
			old:  `r.appState("app_1", "NEW", "SUBMITTED", "START")`,
			new:  "st := \"NEW\"\n\tr.appState(\"app_1\", st, \"SUBMITTED\", \"START\")",
			want: "wrapper appState called with non-literal states"},
		{name: "smconform-unimplemented-edge", analyzer: SMConform, file: "yarn/yarn.go",
			old:  "r.appState(\"app_1\", \"RUNNING\", \"FINISHED\", \"UNREGISTERED\")\n",
			new:  "",
			want: "model declares RMApp transition RUNNING -> FINISHED, but no implementation emit site"},
	}
}

// TestMutations seeds each defect into a scratch copy of the analyzer's
// good fixture and requires the analyzer to report it.
func TestMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("scratch-package loads in -short mode")
	}
	for _, mc := range mutationCases() {
		t.Run(mc.name, func(t *testing.T) {
			base := filepath.Join("testdata", "src", mc.analyzer.Name)
			scratch := "mut-" + mc.name
			copyTree(t, filepath.Join(base, "good"), filepath.Join(base, scratch))
			if mc.file != "" {
				mutateFile(t, filepath.Join(base, scratch, mc.file), mc.old, mc.new)
			}
			ownPath := ""
			if mc.manifest != "" {
				ownPath = filepath.Join(base, scratch, "ownership.json")
				if err := os.WriteFile(ownPath, []byte(mc.manifest), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			findings := Errors(runScratch(t, mc.analyzer, scratch, ownPath))
			for _, f := range findings {
				if strings.Contains(f.Message, mc.want) {
					return
				}
			}
			t.Fatalf("seeded mutant not detected: no finding contains %q; findings: %v",
				mc.want, findings)
		})
	}
}

// TestRealTreeConformanceMutant is the acceptance demonstration for
// flow.smconform on the production packages: a copy of internal/yarn and
// internal/mc is conformance-clean as shipped, and injecting one
// undeclared transition edge into the yarn copy (RUNNING -> VANISHED,
// replacing a preemption emit) fails the analysis.
func TestRealTreeConformanceMutant(t *testing.T) {
	if testing.Short() {
		t.Skip("scratch-package loads in -short mode")
	}
	base := filepath.Join("testdata", "src", SMConform.Name)
	scratch := "mut-real"
	copyTree(t, filepath.Join("..", "yarn"), filepath.Join(base, scratch, "yarn"))
	copyTree(t, filepath.Join("..", "mc"), filepath.Join(base, scratch, "mc"))

	if errs := Errors(runScratch(t, SMConform, scratch, "")); len(errs) != 0 {
		t.Fatalf("pristine yarn/mc copy is not conformance-clean: %v", errs)
	}

	mutateFile(t, filepath.Join(base, scratch, "yarn", "rm.go"),
		`rm.contState(al.Container, "RUNNING", "KILLED")`,
		`rm.contState(al.Container, "RUNNING", "VANISHED")`)
	var hit bool
	for _, f := range Errors(runScratch(t, SMConform, scratch, "")) {
		if strings.Contains(f.Message, "RMContainer transition RUNNING -> VANISHED is emitted by the implementation but absent") {
			hit = true
		}
	}
	if !hit {
		t.Fatal("undeclared RMContainer edge RUNNING -> VANISHED injected into the yarn copy was not reported")
	}
}
