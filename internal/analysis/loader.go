package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// TypeErrors collects type-checker complaints. Analysis proceeds on
	// partial information; the driver surfaces these separately.
	TypeErrors []error

	// Fixture is the analyzer name this package is a test fixture for
	// (derived from a testdata/src/<analyzer>/... path), or "". Analyzers
	// that normally restrict themselves to specific package paths treat
	// their own fixtures as in scope.
	Fixture string

	allows map[string][]*allowDirective
}

// Program is a loaded set of packages sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	// ModuleDir is the filesystem root of the main module, where
	// vocab.json and go.mod live.
	ModuleDir string

	// ModulePath is the main module's import path prefix.
	ModulePath string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Module     *struct {
		Path string
		Dir  string
	}
	Error *struct {
		Err string
	}
}

// Load lists patterns with the go tool (run in dir), parses the matched
// packages, and type-checks them against the toolchain's export data.
// Dependencies — including the standard library — are imported from the
// compiled export files `go list -export` produces, so loading needs no
// network and no GOPATH layout.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	prog := &Program{Fset: token.NewFileSet()}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			if lp.Error != nil {
				return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
			}
			targets = append(targets, lp)
			if lp.Module != nil && prog.ModuleDir == "" {
				prog.ModuleDir = lp.Module.Dir
				prog.ModulePath = lp.Module.Path
			}
		}
	}

	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(prog.Fset, "gc", lookup)

	for _, t := range targets {
		pkg := &Package{
			PkgPath: t.ImportPath,
			Name:    t.Name,
			Dir:     t.Dir,
			Fixture: fixtureOf(t.ImportPath),
			allows:  make(map[string][]*allowDirective),
		}
		for _, gf := range t.GoFiles {
			path := filepath.Join(t.Dir, gf)
			f, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			pkg.Files = append(pkg.Files, f)
			pkg.allows[path] = parseAllowDirectives(prog.Fset, f)
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		// Check returns an error on the first problem, but the Error
		// handler keeps it going; a partially-typed package is still
		// analyzable.
		pkg.Types, _ = conf.Check(t.ImportPath, prog.Fset, pkg.Files, pkg.Info)
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// fixtureOf extracts the analyzer name from a fixture import path of the
// form .../testdata/src/<analyzer>/... ("" for regular packages).
func fixtureOf(importPath string) string {
	const marker = "/testdata/src/"
	i := strings.Index(importPath, marker)
	if i < 0 {
		return ""
	}
	rest := importPath[i+len(marker):]
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		rest = rest[:j]
	}
	return rest
}

// PathHasSuffix reports whether an import path ends with suffix at a
// path-segment boundary (e.g. "repro/internal/core" has suffix
// "internal/core" but not "ternal/core").
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
