package analysis

import (
	"regexp"
	"testing"
)

func TestTemplateToRegexp(t *testing.T) {
	cases := []struct {
		format  string
		match   []string
		nomatch []string
	}{
		{
			format:  "Invoking launch script for container %s",
			match:   []string{"Invoking launch script for container container_1_2_3_4"},
			nomatch: []string{"Invoking launch script for container ", "launch script"},
		},
		{
			format:  "queue depth %d",
			match:   []string{"queue depth 0", "queue depth -17"},
			nomatch: []string{"queue depth x", "queue depth 1.5"},
		},
		{
			format:  "ratio %.2f done",
			match:   []string{"ratio 0.25 done", "ratio -3 done"},
			nomatch: []string{"ratio abc done"},
		},
		{
			format:  "100%% complete",
			match:   []string{"100% complete"},
			nomatch: []string{"100%% complete"},
		},
		{
			format:  "flag %t set",
			match:   []string{"flag true set", "flag false set"},
			nomatch: []string{"flag maybe set"},
		},
		{
			format:  "no verbs at all",
			match:   []string{"no verbs at all"},
			nomatch: []string{"no verbs at all!", "prefix no verbs at all"},
		},
	}
	for _, c := range cases {
		re, err := regexp.Compile(TemplateToRegexp(c.format))
		if err != nil {
			t.Fatalf("%q: %v", c.format, err)
		}
		for _, s := range c.match {
			if !re.MatchString(s) {
				t.Errorf("template %q: rendering %q not in language %q", c.format, s, re)
			}
		}
		for _, s := range c.nomatch {
			if re.MatchString(s) {
				t.Errorf("template %q: non-rendering %q in language %q", c.format, s, re)
			}
		}
	}
}

func TestAutomatonIntersects(t *testing.T) {
	cases := []struct {
		name     string
		template string
		regex    string
		want     bool
	}{
		{"verbatim", "Invoking launch script for container %s",
			`Invoking launch script for container (container_\d+_\d+_\d+_\d+)`, true},
		{"numeric verb feeds digit class", "queue depth %d", `queue depth (\d+)`, true},
		// A trailing %s renders to any suffix, so a renamed template with
		// %s still (correctly) intersects a substring regex — the verbatim
		// template check, not the automaton, catches renames. A %d verb
		// pins the suffix shape and the intersection vanishes.
		{"renamed template", "Starting launch script for container %d",
			`Invoking launch script for container (container_\d+_\d+_\d+_\d+)`, false},
		{"disjoint literal", "cache warm", `cache (\d+) warm`, false},
		{"wording drift", "queue depth %d", `queue size (\d+)`, false},
		{"substring semantics", "prefix: job %d finished (ok)", `job (\d+) finished`, true},
		{"flexible %s produces anything", "note: %s", `job (\d+) finished`, true},
		{"anchored template rejects embedded", "job %d", `job (\d+) finished`, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ta, err := CompileTemplate(c.template)
			if err != nil {
				t.Fatal(err)
			}
			ra, err := CompileMinerRegex(c.regex)
			if err != nil {
				t.Fatal(err)
			}
			if got := ta.Intersects(ra); got != c.want {
				t.Errorf("template %q vs regex %q: Intersects=%v, want %v", c.template, c.regex, got, c.want)
			}
		})
	}
}

// TestIntersectsRealVocabulary pins the production manifest: every
// non-positional message's template/regex pair must intersect with the
// real patterns from internal/core. A regression here means the
// automaton construction broke, independent of tree state.
func TestIntersectsRealVocabulary(t *testing.T) {
	vocab, err := DefaultVocab()
	if err != nil {
		t.Fatal(err)
	}
	// Mirror of the miner's declarations (kept honest by the logvocab
	// self-check, which compares the real tree against the manifest).
	if len(vocab.Messages) == 0 {
		t.Fatal("empty manifest")
	}
	for _, m := range vocab.Messages {
		if m.Positional() {
			continue
		}
		ta, err := CompileTemplate(m.Template)
		if err != nil {
			t.Fatalf("%s: template: %v", m.Name, err)
		}
		// The example is one concrete rendering: the anchored template
		// language must contain something the example's shape allows.
		ra, err := CompileMinerRegex(regexp.QuoteMeta(m.Example))
		if err != nil {
			t.Fatalf("%s: example: %v", m.Name, err)
		}
		if !ta.Intersects(ra) {
			t.Errorf("%s: example %q is not a rendering of template %q", m.Name, m.Example, m.Template)
		}
	}
}

// TestAutomatonSubsetOf exercises the containment walk behind the
// fast-path equivalence check (search semantics: both patterns wrapped
// unanchored by CompileSearch).
func TestAutomatonSubsetOf(t *testing.T) {
	cases := []struct {
		name string
		a, b string
		want bool
	}{
		{"identical", `Assigned container (container_\d+_\d+_\d+_\d+)`,
			`Assigned container (container_\d+_\d+_\d+_\d+)`, true},
		{"digits in words", `job (\d+)`, `job (\w+)`, true},
		{"words not in digits", `job (\w+)`, `job (\d+)`, false},
		// The violation lives strictly between class bounds ('d'..'w'):
		// only a mid-interval candidate rune refutes it. Regression test
		// for boundaryRunes vs the intersection-only representatives.
		{"gap inside class", `x[a-z]y`, `x[a-cx-z]y`, false},
		{"split class in full class", `x[a-cx-z]y`, `x[a-z]y`, true},
		{"renamed literal", `Allocated opportunistic container`,
			`Al1ocated opportunistic container`, false},
		{"optional widens", `Registered with (?:the )?ResourceManager`,
			`Registered with the ResourceManager`, false},
		{"mandatory narrows", `Registered with the ResourceManager`,
			`Registered with (?:the )?ResourceManager`, true},
		{"longer run accepted by shorter", `queue (\d\d+)`, `queue (\d+)`, true},
		{"shorter run rejected by longer", `queue (\d+)`, `queue (\d\d+)`, false},
		{"dot-star absorbs", `Assigned container container_1_2_3_4 x on host h`,
			`Assigned container (container_\d+_\d+_\d+_\d+) .*on host (\S+)`, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			aa, err := CompileSearch(c.a)
			if err != nil {
				t.Fatal(err)
			}
			ba, err := CompileSearch(c.b)
			if err != nil {
				t.Fatal(err)
			}
			if got := aa.SubsetOf(ba); got != c.want {
				t.Errorf("%q ⊆ %q: got %v, want %v", c.a, c.b, got, c.want)
			}
		})
	}
}

// TestCompileSearchNoFlagLeak pins the reason CompileSearch exists: the
// wrapper's (?s) must not change the embedded pattern's meaning. Under
// CompileMinerRegex's single dot-all group, `a.b` would also accept
// "a\nb"-containing strings and the two compilations would disagree.
func TestCompileSearchNoFlagLeak(t *testing.T) {
	strict, err := CompileSearch(`a.b`)
	if err != nil {
		t.Fatal(err)
	}
	newline, err := CompileSearch(`a(?s:.)b`)
	if err != nil {
		t.Fatal(err)
	}
	if !strict.SubsetOf(newline) {
		t.Error("a.b should be contained in its dot-all widening")
	}
	if newline.SubsetOf(strict) {
		t.Error("dot-all widening leaked out: a(?s:.)b compared equal to a.b")
	}
}
