package analysis

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// coreFastSpec converts the live miner's fast-path self-description for
// injection into a Unit — the same wiring cmd/sdlint performs. Importing
// core here is cycle-free: the miner never imports the analysis suite.
func coreFastSpec(t *testing.T) []FastRuleSpec {
	t.Helper()
	var out []FastRuleSpec
	for _, r := range core.FastPathSpec() {
		out = append(out, FastRuleSpec(r))
	}
	if len(out) == 0 {
		t.Fatal("core.FastPathSpec returned no rules")
	}
	return out
}

// runLogVocabWithSpec runs the logvocab analyzer over the good fixture
// (emitter, miner, and manifest all in agreement) with an arbitrary
// fast-path self-description, isolating checks 6-8.
func runLogVocabWithSpec(t *testing.T, spec []FastRuleSpec) []Finding {
	t.Helper()
	rel := filepath.Join("testdata", "src", LogVocab.Name, "good")
	prog, err := Load("../..", "./internal/analysis/"+filepath.ToSlash(rel))
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	unit := &Unit{
		Prog:      prog,
		Analyzers: []*Analyzer{LogVocab},
		VocabPath: filepath.Join(rel, "vocab.json"),
		FastSpec:  spec,
	}
	return Errors(unit.Run())
}

// fixtureSpec is the correct self-description for the good fixture: one
// rule per mined metric, one per helper, patterns language-equal to the
// fixture's declared regexes.
func fixtureSpec() []FastRuleSpec {
	return []FastRuleSpec{
		{Name: "a", RegexVar: "reA", Pattern: `accepted job (\d+)`},
		{Name: "reHelper", RegexVar: "reHelper", Pattern: `job_\d+`},
	}
}

func TestFastSpecChecksClean(t *testing.T) {
	for _, f := range runLogVocabWithSpec(t, fixtureSpec()) {
		t.Errorf("clean spec produced finding: %s", f)
	}
}

// mutate returns fixtureSpec with one entry replaced (or dropped when
// repl is nil).
func mutate(name string, repl *FastRuleSpec) []FastRuleSpec {
	var out []FastRuleSpec
	for _, s := range fixtureSpec() {
		if s.Name != name {
			out = append(out, s)
		} else if repl != nil {
			out = append(out, *repl)
		}
	}
	return out
}

func TestFastSpecChecksCatchDrift(t *testing.T) {
	cases := []struct {
		name string
		spec []FastRuleSpec
		want string // substring of the expected finding
	}{
		{"missing metric rule", mutate("a", nil),
			"fast path has no rule for metric a"},
		{"missing helper rule", mutate("reHelper", nil),
			"helper reHelper: fast path has no rule"},
		{"pattern too broad", mutate("a",
			&FastRuleSpec{Name: "a", RegexVar: "reA", Pattern: `accepted job (\w+)`}),
			"fast rule a accepts lines regex reA"},
		{"pattern too narrow", mutate("a",
			&FastRuleSpec{Name: "a", RegexVar: "reA", Pattern: `accepted job (\d\d+)`}),
			"accepts lines fast rule a rejects"},
		{"renamed literal prefix", mutate("a",
			&FastRuleSpec{Name: "a", RegexVar: "reA", Pattern: `acepted job (\d+)`}),
			"fast rule a"},
		{"regex variable mismatch", mutate("a",
			&FastRuleSpec{Name: "a", RegexVar: "reHelper", Pattern: `job_\d+`}),
			"manifest binds metric a to reA"},
		{"undeclared regex variable", mutate("a",
			&FastRuleSpec{Name: "a", RegexVar: "reGone", Pattern: `accepted job (\d+)`}),
			"regex variable reGone is not declared"},
		{"stray rule", append(fixtureSpec(),
			FastRuleSpec{Name: "zz", RegexVar: "reA", Pattern: `accepted job (\d+)`}),
			"fast rule zz matches no manifest metric and no helper"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			findings := runLogVocabWithSpec(t, c.spec)
			if len(findings) == 0 {
				t.Fatalf("drifted spec produced no findings, want one matching %q", c.want)
			}
			for _, f := range findings {
				if strings.Contains(f.Message, c.want) {
					return
				}
			}
			t.Errorf("no finding matched %q; got: %v", c.want, findings)
		})
	}
}

// TestCoreFastSpecShape pins the live dispatch table's surface: every
// manifest metric and helper present, nothing stray, patterns compiling.
// (TestSelfCheck proves the languages equal against the real tree; this
// cheaper test keeps the shape honest even in -short runs.)
func TestCoreFastSpecShape(t *testing.T) {
	spec := coreFastSpec(t)
	vocab, err := DefaultVocab()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]FastRuleSpec, len(spec))
	for _, s := range spec {
		if _, dup := byName[s.Name]; dup {
			t.Errorf("duplicate fast rule name %q", s.Name)
		}
		byName[s.Name] = s
		if _, err := CompileSearch(s.Pattern); err != nil {
			t.Errorf("fast rule %s: generated pattern %q does not compile: %v", s.Name, s.Pattern, err)
		}
	}
	valid := map[string]bool{}
	for _, m := range vocab.Messages {
		if m.Positional() {
			continue
		}
		s, ok := byName[m.Metric]
		if !ok {
			t.Errorf("message %s: no fast rule for metric %s", m.Name, m.Metric)
			continue
		}
		valid[s.Name] = true
		if s.RegexVar != m.RegexVar {
			t.Errorf("message %s: fast rule bound to %s, manifest says %s", m.Name, s.RegexVar, m.RegexVar)
		}
	}
	for _, h := range vocab.Helpers {
		if _, ok := byName[h]; !ok {
			t.Errorf("helper %s: no fast rule", h)
		}
		valid[h] = true
	}
	for _, s := range spec {
		if !valid[s.Name] {
			t.Errorf("stray fast rule %s", s.Name)
		}
	}
}
