// Package good stays inside the determinism rules: injected clocks,
// sorted map iteration, gather-then-sort accumulation.
package good

import "sort"

type logger struct{}

func (logger) Infof(format string, args ...any) {}

var log logger

// Stamp takes the clock as an input instead of reading the wall clock.
func Stamp(nowMS int64) int64 { return nowMS }

// Dump iterates a sorted key slice, so line order is deterministic.
func Dump(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		log.Infof("entry %s=%d", k, m[k])
	}
}

// Gather accumulates in map order but sorts before returning.
func Gather(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Count only reduces over the map; order cannot leak.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Clean has no determinism finding, so the directive below suppresses
// nothing — the suite's suppression audit must flag it as a warning.
//
//lint:allow determinism stale directive kept for the unused-suppression audit test
func Clean(nowMS int64) int64 { return nowMS + 1 }
