// Package bad violates every determinism rule; each // want comment is
// matched against sdlint findings by the fixture runner.
package bad

import (
	"math/rand" // want `import of math/rand in a deterministic package; use the seeded internal/rng sources`
	"time"
)

type logger struct{}

func (logger) Infof(format string, args ...any) {}

var log logger

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixMilli() // want `time\.Now reads the wall clock`
}

// Nap blocks on the wall clock.
func Nap() {
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks on the wall clock`
}

// Roll uses the global math/rand stream.
func Roll() int {
	return rand.Intn(6)
}

// Dump emits log lines in map order.
func Dump(m map[string]int) {
	for k, v := range m {
		log.Infof("entry %s=%d", k, v) // want `log emission inside a map iteration`
	}
}

// Gather accumulates in map order and never sorts.
func Gather(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration appends to "out" without a deterministic sort afterwards`
		out = append(out, k)
	}
	return out
}

// Allowed documents a reviewed wall-clock read; the directive keeps it
// out of the error count.
func Allowed() int64 {
	//lint:allow determinism fixture: reviewed wall-clock read
	return time.Now().UnixMilli()
}
