// Package mc seeds the model-side conformance mutants: declared edges
// nothing implements (the whole RMApp table), a duplicate entry, an
// outgoing edge from a terminal state, and an undeclared sink.
package mc

// mutant: the yarn side emits no RMApp transitions at all, so this
// whole table is vacuous — and every entry is a declared edge with no
// implementation.
var rmAppEdges = map[string]string{ // want `no implemented RMApp transitions were extracted`
	"NEW":       "SUBMITTED", // want `model declares RMApp transition NEW -> SUBMITTED, but no implementation emit site produces it`
	"SUBMITTED": "RUNNING",   // want `model declares RMApp transition SUBMITTED -> RUNNING, but no implementation emit site produces it`
	"RUNNING":   "FINISHED",  // want `model declares RMApp transition RUNNING -> FINISHED, but no implementation emit site produces it`
}

var rmContEdges = map[string][]string{
	"NEW": {
		"ALLOCATED",
		"ALLOCATED", // want `model declares RMContainer transition NEW -> ALLOCATED twice`
	},
	"ALLOCATED": {"RUNNING"},
	"RUNNING": {
		"COMPLETED",
		"STALLED", // want `model state STALLED of RMContainer is a sink but not declared terminal`
	},
}

var rmContTerminal = map[string]bool{"COMPLETED": true}

var nmContEdges = map[string][]string{
	"NEW":     {"RUNNING"},
	"RUNNING": {"DONE"},
	"DONE": {
		"GONE", // want `outgoing NM-container transition from terminal state DONE`
	},
}

var nmContTerminal = map[string]bool{"DONE": true, "GONE": true}
