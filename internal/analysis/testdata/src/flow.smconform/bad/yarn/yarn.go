// Package yarn seeds the implementation-side conformance mutants: an
// emitted edge the model never declares, a wrapper call with
// non-literal states, and emit shapes the extractor must refuse to
// guess about (mixed literal/parameter, verbs bound to locals).
package yarn

type logger struct{}

func (l *logger) Infof(format string, args ...any) {}

type rm struct {
	app  *logger
	cont *logger
}

func (r *rm) contState(id, from, to string) {
	r.cont.Infof("%s Container Transitioned from %s to %s", id, from, to)
}

func pick() string { return "RUNNING" }

func (r *rm) driveCont(id, from, to string) {
	r.contState("c_1", "NEW", "ALLOCATED")
	r.contState("c_1", "ALLOCATED", "RUNNING")
	r.contState("c_1", "RUNNING", "COMPLETED")
	r.contState("c_1", "RUNNING", "STALLED")
	// mutant: the drifted transition edge — implemented, never modeled.
	r.contState("c_1", "ALLOCATED", "LOST") // want `RMContainer transition ALLOCATED -> LOST is emitted by the implementation but absent from the model tables`
	// mutant: states threaded through variables leave an edge the model
	// checker cannot know about.
	r.contState(id, from, to) // want `wrapper contState called with non-literal states`
}

func (r *rm) driveNM(cid string) {
	r.cont.Infof("Container %s transitioned from NEW to RUNNING", cid)
	r.cont.Infof("Container %s transitioned from RUNNING to DONE", cid)
	r.cont.Infof("Container %s transitioned from DONE to GONE", cid)
}

// mutant: half literal, half parameter — the extractor refuses to guess.
func (r *rm) failApp(id, from, ev string) {
	r.app.Infof("%s State change from %s to FAILED on event = %s", id, from, ev) // want `RMApp transition emitted with a mixed literal/parameter from-to pair`
}

// mutant: verbs bound to locals, not parameters — not a wrapper, not
// literal, so the relation cannot be extracted.
func (r *rm) relayApp(id string) {
	from, to := pick(), pick()
	r.app.Infof("%s State change from %s to %s on event = GO", id, from, to) // want `RMApp transition emitted with from/to that are neither literals nor parameters of relayApp`
}
