// Package mc is the model side of the smconform good fixture: tables
// declaring exactly the relation the yarn subpackage implements.
package mc

var rmAppEdges = map[string]string{
	"NEW":       "SUBMITTED",
	"SUBMITTED": "RUNNING",
	"RUNNING":   "FINISHED",
}

var rmContEdges = map[string][]string{
	"NEW":       {"ALLOCATED"},
	"ALLOCATED": {"RUNNING"},
	"RUNNING":   {"COMPLETED"},
}

var rmContTerminal = map[string]bool{"COMPLETED": true}

var nmContEdges = map[string][]string{
	"NEW":     {"RUNNING"},
	"RUNNING": {"DONE"},
}

var nmContTerminal = map[string]bool{"DONE": true}
