// Package yarn is the implementation side of the smconform good
// fixture: transition lines flow through parameter-bound wrappers
// (appState, contState) called with literal states, plus fully-literal
// NM-container emits — the same shapes internal/yarn uses.
package yarn

type logger struct{}

func (l *logger) Infof(format string, args ...any) {}

type rm struct {
	app  *logger
	cont *logger
}

func (r *rm) appState(id, from, to, event string) {
	r.app.Infof("%s State change from %s to %s on event = %s", id, from, to, event)
}

func (r *rm) contState(id, from, to string) {
	r.cont.Infof("%s Container Transitioned from %s to %s", id, from, to)
}

func (r *rm) driveApp() {
	r.appState("app_1", "NEW", "SUBMITTED", "START")
	r.appState("app_1", "SUBMITTED", "RUNNING", "ACCEPTED")
	r.appState("app_1", "RUNNING", "FINISHED", "UNREGISTERED")
}

func (r *rm) driveCont() {
	r.contState("c_1", "NEW", "ALLOCATED")
	r.contState("c_1", "ALLOCATED", "RUNNING")
	r.contState("c_1", "RUNNING", "COMPLETED")
	// the same edge from a second site is fine: one relation edge
	r.contState("c_2", "ALLOCATED", "RUNNING")
}

func (r *rm) driveNM(cid string) {
	r.cont.Infof("Container %s transitioned from NEW to RUNNING", cid)
	r.cont.Infof("Container %s transitioned from RUNNING to DONE", cid)
	// node-machine lines must not be mistaken for container transitions
	r.cont.Infof("%s Node Transitioned from RUNNING to LOST", cid)
}
