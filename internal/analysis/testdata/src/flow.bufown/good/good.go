// Package good mirrors the zero-copy mining discipline of
// internal/core: every retention of blobWriter-derived memory passes
// through a sanctioned clone (strings.Clone, fmt.Sprintf) or the
// cloneMined gate.
package good

import (
	"fmt"
	"strings"
)

// blobWriter mirrors internal/core's reusable scan buffer: String
// returns a view of memory the next scan overwrites, so the ownership
// manifest declares it a taint source.
type blobWriter struct{ buf []byte }

func (w *blobWriter) String() string { return string(w.buf) }

type event struct {
	Class string
	Raw   string
}

type line struct {
	Class   string
	Message string
}

type parser struct {
	cloneMined bool
	events     []event
	warns      []string
}

func parseLine(seg string) line {
	return line{Class: seg[:1], Message: seg[1:]}
}

func (p *parser) emit(e event) { p.events = append(p.events, e) }

func (p *parser) warnf(format string, args ...any) {
	p.warns = append(p.warns, fmt.Sprintf(format, args...))
}

// mine is the sanctioned gated-clone discipline: under cloneMined, the
// strings that will be retained are cloned before emit.
func (p *parser) mine(ln line) {
	msg := ln.Message
	if p.cloneMined {
		msg = strings.Clone(msg)
		ln.Class = strings.Clone(ln.Class)
	}
	p.emit(event{Class: ln.Class, Raw: msg})
}

func (p *parser) scan(w *blobWriter) {
	p.cloneMined = true
	defer func() { p.cloneMined = false }()
	raw := w.String()
	for i := 0; i+2 < len(raw); i += 2 {
		ln := parseLine(raw[i : i+2])
		p.mine(ln)
	}
}

// scanCount only derives scalars from the buffer: nothing to clone.
func (p *parser) scanCount(w *blobWriter) int {
	raw := w.String()
	n := 0
	for i := 0; i < len(raw); i++ {
		if raw[i] == '\n' {
			n++
		}
	}
	return n
}

// scanWarn retains only Sprintf output, which copies its operands.
func (p *parser) scanWarn(w *blobWriter) {
	raw := w.String()
	if len(raw) == 0 {
		p.warnf("empty blob: %s", raw)
	}
}

// scanConvert round-trips through []byte, which copies both ways.
func (p *parser) scanConvert(w *blobWriter) {
	bs := []byte(w.String())
	p.emit(event{Raw: string(bs)})
}

// scanLocal keeps buffer views in frame-local state only.
func scanLocal(w *blobWriter) string {
	raw := w.String()
	var parts []string
	for i := 0; i+1 < len(raw); i += 2 {
		parts = append(parts, raw[i:i+2])
	}
	return strings.Join(parts, ",") // Join allocates a fresh string
}
