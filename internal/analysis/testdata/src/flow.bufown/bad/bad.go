// Package bad seeds every mutant of the zero-copy discipline the
// bufown analyzer must catch: removed clones, wrong gates, partial
// field clones, and retentions hidden behind helpers.
package bad

import "strings"

type blobWriter struct{ buf []byte }

func (w *blobWriter) String() string { return string(w.buf) }

type event struct {
	Class string
	Raw   string
}

type line struct {
	Class   string
	Message string
}

type parser struct {
	cloneMined bool
	events     []event
	flag       bool
}

var lastRaw string
var cache = map[string]string{}
var ch = make(chan string, 1)

// mutant 1: store a buffer view straight into a package variable.
func scanGlobal(w *blobWriter) {
	lastRaw = w.String() // want `stored into package variable lastRaw`
}

// mutant 2: store into a map that outlives every frame.
func scanMap(w *blobWriter) {
	raw := w.String()
	cache["last"] = raw // want `element store of package variable cache`
}

// mutant 3: send the view to another goroutine.
func scanChan(w *blobWriter) {
	raw := w.String()
	ch <- raw // want `sent on a channel`
}

func retain(s string) { lastRaw = s }

// mutant 4: the retention hides behind a helper call.
func scanHelper(w *blobWriter) {
	retain(w.String()) // want `passed to retain`
}

func stash(s string) { retain(s) }

// mutant 5: two hops deep.
func scanTwoHops(w *blobWriter) {
	stash(w.String()) // want `passed to stash`
}

func (p *parser) mineNoClone(ln line) {
	p.events = append(p.events, event{Class: ln.Class, Raw: ln.Message})
}

// mutant 6: the clone site was deleted outright.
func (p *parser) scanNoClone(w *blobWriter) {
	raw := w.String()
	ln := line{Class: raw[:1], Message: raw[1:]}
	p.mineNoClone(ln) // want `passed to mineNoClone`
}

// mutant 7: the clone runs under a condition that is not a declared
// gate, so on the other branch the view is retained raw.
func (p *parser) scanWrongGate(w *blobWriter) {
	msg := w.String()
	if p.flag {
		msg = strings.Clone(msg)
	}
	p.events = append(p.events, event{Raw: msg}) // want `field events of p`
}

func (p *parser) minePartial(ln line) {
	if p.cloneMined {
		ln.Class = strings.Clone(ln.Class)
	}
	p.events = append(p.events, event{Class: ln.Class, Raw: ln.Message})
}

// mutant 8: only one of the two retained fields is cloned.
func (p *parser) scanPartial(w *blobWriter) {
	raw := w.String()
	ln := line{Class: raw[:1], Message: raw[1:]}
	p.minePartial(ln) // want `passed to minePartial`
}

// mutant 9: the view escapes through a deferred closure.
func scanDeferred(w *blobWriter) {
	raw := w.String()
	defer func() {
		lastRaw = raw // want `stored into package variable lastRaw`
	}()
}

// mutant 10: a substring of the view still aliases the buffer.
func scanSlice(w *blobWriter) {
	raw := w.String()
	if len(raw) > 2 {
		cache["head"] = raw[:2] // want `element store of package variable cache`
	}
}
