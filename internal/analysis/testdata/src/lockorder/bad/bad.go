// Package bad violates the lock-order rules: re-entrant locking, the
// documented mu→obsMu order, and hooks fired under shard locks.
package bad

import "sync"

type server struct {
	mu    sync.Mutex
	obsMu sync.Mutex
	qMu   sync.Mutex
	hook  func(int)
}

// Relock acquires a mutex it already holds.
func (s *server) Relock() {
	s.mu.Lock()
	s.mu.Lock() // want `mu\.Lock\(\) while mu is already held in this function`
	s.mu.Unlock()
	s.mu.Unlock()
}

// Inverted takes obsMu before mu, against the documented order.
func (s *server) Inverted() {
	s.obsMu.Lock()
	s.mu.Lock() // want `acquiring mu while holding obsMu inverts the documented mu→obsMu order`
	s.mu.Unlock()
	s.obsMu.Unlock()
}

// DeferHeld keeps mu held via defer, so a later obsMu→mu acquisition in
// the same body still inverts.
func (s *server) DeferHeld() {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	s.mu.Lock() // want `acquiring mu while holding obsMu inverts the documented mu→obsMu order`
	s.mu.Unlock()
}

// FireUnderShardLock invokes the completion hook while holding a shard
// queue lock that Quiesce waits on.
func (s *server) FireUnderShardLock(v int) {
	s.qMu.Lock()
	if s.hook != nil {
		s.hook(v) // want `hook hook invoked while holding shard lock qMu`
	}
	s.qMu.Unlock()
}

// AliasUnderShardLock fires through a local alias; still under the lock.
func (s *server) AliasUnderShardLock(v int) {
	s.qMu.Lock()
	defer s.qMu.Unlock()
	if h := s.hook; h != nil {
		h(v) // want `hook h invoked while holding shard lock qMu`
	}
}

type engine struct {
	qMu          sync.Mutex
	onTransition func(string)
}

// TransitionUnderShardLock delivers an alert edge while holding a shard
// lock Quiesce waits on.
func (e *engine) TransitionUnderShardLock(rule string) {
	e.qMu.Lock()
	if e.onTransition != nil {
		e.onTransition(rule) // want `hook onTransition invoked while holding shard lock qMu`
	}
	e.qMu.Unlock()
}
