// Package good follows the lock discipline: mu before obsMu, hooks
// fired only after shard locks are released.
package good

import "sync"

type server struct {
	mu    sync.Mutex
	obsMu sync.Mutex
	qMu   sync.Mutex
	hook  func(int)
}

// Ordered takes the documented mu→obsMu order.
func (s *server) Ordered() {
	s.mu.Lock()
	s.obsMu.Lock()
	s.obsMu.Unlock()
	s.mu.Unlock()
}

// Sequential reacquisition after release is not re-entrant locking.
func (s *server) Sequential() {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// FireOutsideLock snapshots under the shard lock, releases it, then
// fires the hook.
func (s *server) FireOutsideLock(v int) {
	s.qMu.Lock()
	h := s.hook
	s.qMu.Unlock()
	if h != nil {
		h(v)
	}
}

// EarlyReturn unlocks on the fast path before returning; the later
// re-acquisition is a fresh hold, not a re-entrant one.
func (s *server) EarlyReturn(fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

type engine struct {
	qMu          sync.Mutex
	onTransition func(string)
}

// TransitionOutsideLock snapshots the alert-edge hook under the shard
// lock, releases it, then fires — the SLO fire path's discipline.
func (e *engine) TransitionOutsideLock(rule string) {
	e.qMu.Lock()
	h := e.onTransition
	e.qMu.Unlock()
	if h != nil {
		h(rule)
	}
}
