// Package bad drifts from its fixture manifest in every direction the
// logvocab analyzer distinguishes: a retired template (M_GONE), a
// missing regex variable (M_NOVAR), a regex that no longer matches its
// example (M_DRIFT), emitter/miner pairs whose languages are disjoint
// (M_QUEUE, M_ORPHAN), and an uncontracted regex (reExtra). The
// manifest-level findings land in vocab.json and are matched by the
// want.txt sidecar.
package bad

import "regexp"

type logger struct{}

func (logger) Infof(format string, args ...any) {}

var log logger

var (
	reOK     = regexp.MustCompile(`accepted job (\d+)`)
	reGone   = regexp.MustCompile(`worker (\w+) retired`) // want `regex reGone \(message types M_GONE\) cannot match any line the emitters produce`
	reDrift  = regexp.MustCompile(`job (\d+) finished`)   // want `message M_DRIFT: regex reDrift no longer matches the manifest example`
	reQueue  = regexp.MustCompile(`queue size (\d+)`)     // want `regex reQueue \(message types M_QUEUE\) cannot match any line the emitters produce`
	reOrphan = regexp.MustCompile(`cache (\d+) warm`)     // want `regex reOrphan \(message types M_ORPHAN\) cannot match any line the emitters produce`
	reExtra  = regexp.MustCompile(`spurious (\w+)`)       // want `regex reExtra is not referenced by the vocabulary manifest`
)

// Emit produces the package's (drifted) vocabulary.
func Emit(job int) {
	log.Infof("accepted job %d", job)
	log.Infof("never mind %d", job)
	log.Infof("job %d finished", job)
	log.Infof("queue depth %d", job) // want `message M_QUEUE: no rendering of template "queue depth %d" can match regex reQueue`
	log.Infof("cache warm")          // want `message M_ORPHAN: no rendering of template "cache warm" can match regex reOrphan`
}

// Mine consumes lines with the declared regexes.
func Mine(line string) bool {
	return reOK.MatchString(line) || reGone.MatchString(line) ||
		reDrift.MatchString(line) || reQueue.MatchString(line) ||
		reOrphan.MatchString(line) || reExtra.MatchString(line)
}
