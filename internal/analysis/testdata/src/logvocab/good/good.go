// Package good keeps the emitter, the miner, and the fixture manifest
// in agreement: the one message template is emitted verbatim, its regex
// matches the example, and the extra regex is a declared helper.
package good

import "regexp"

type logger struct{}

func (logger) Infof(format string, args ...any) {}

var log logger

var (
	reA      = regexp.MustCompile(`accepted job (\d+)`)
	reHelper = regexp.MustCompile(`job_\d+`)
)

// Emit produces the manifest's vocabulary.
func Emit(job int) {
	log.Infof("accepted job %d", job)
}

// Mine consumes a line with the declared regexes.
func Mine(line string) bool {
	return reA.MatchString(line) || reHelper.MatchString(line)
}
