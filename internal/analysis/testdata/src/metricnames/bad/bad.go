// Package bad violates the Prometheus naming and label conventions at
// registration sites of its Registry stand-in.
package bad

// Registry mimics metrics.Registry's registration surface.
type Registry struct{}

func (r *Registry) Counter(name string, kv ...string) *int                { return nil }
func (r *Registry) Gauge(name string, kv ...string) *int                  { return nil }
func (r *Registry) Histogram(name string, b []float64, kv ...string) *int { return nil }

func register(r *Registry, which string) {
	r.Counter("events")                    // want `counter "events" must end in _total`
	r.Gauge("queue_total")                 // want `gauge "queue_total" must not end in _total`
	r.Histogram("lat", nil)                // want `histogram "lat" should end in a unit suffix`
	r.Histogram("lat_sum", nil)            // want `histogram "lat_sum" collides with its own generated _bucket/_sum/_count series`
	r.Counter("Bad-Name_total")            // want `metric name "Bad-Name_total" is not snake_case`
	r.Counter("a__b_total")                // want `metric name "a__b_total" contains a __ run`
	r.Counter(which)                       // want `Counter registration with a non-constant metric name`
	r.Counter("odd_total", "k")            // want `Counter registration with 1 label arguments`
	r.Counter("res_total", "le", "0.5")    // want `label key "le" is reserved by the exposition format`
	r.Counter("key_total", "Bad Key", "v") // want `label key "Bad Key" is not snake_case`
}

// registerSelfObservability gets the self-metric conventions wrong.
func registerSelfObservability(r *Registry) {
	r.Gauge("obs_watchdog_stalls_total")     // want `gauge "obs_watchdog_stalls_total" must not end in _total`
	r.Histogram("obs_stage_duration", nil)   // want `histogram "obs_stage_duration" should end in a unit suffix`
	r.Counter("go_gc_cycles")                // want `counter "go_gc_cycles" must end in _total`
	r.Histogram("go_gc_pause_ms_count", nil) // want `histogram "go_gc_pause_ms_count" collides with its own generated _bucket/_sum/_count series`
}

// registerAttribution gets the drill-down families wrong in both
// directions: a counter without _total, a bounded gauge with it.
func registerAttribution(r *Registry) {
	r.Counter("attr_exemplars")       // want `counter "attr_exemplars" must end in _total`
	r.Gauge("attr_topk_total")        // want `gauge "attr_topk_total" must not end in _total`
	r.Gauge("attr_pinned_apps_total") // want `gauge "attr_pinned_apps_total" must not end in _total`
}
