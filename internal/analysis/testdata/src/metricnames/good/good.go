// Package good registers metrics that satisfy every naming and label
// convention.
package good

// Registry mimics metrics.Registry's registration surface.
type Registry struct{}

func (r *Registry) Counter(name string, kv ...string) *int                { return nil }
func (r *Registry) Gauge(name string, kv ...string) *int                  { return nil }
func (r *Registry) Histogram(name string, b []float64, kv ...string) *int { return nil }

func register(r *Registry, shard string) {
	r.Counter("events_fired_total")
	r.Counter("lines_total", "shard", shard) // dynamic values are fine; keys must be constant
	r.Gauge("queue_depth")
	r.Histogram("alloc_latency_ms", []float64{1, 5, 25})
	r.Histogram("payload_bytes", nil, "kind", "snapshot")
}
