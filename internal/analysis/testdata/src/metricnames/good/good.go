// Package good registers metrics that satisfy every naming and label
// convention.
package good

// Registry mimics metrics.Registry's registration surface.
type Registry struct{}

func (r *Registry) Counter(name string, kv ...string) *int                { return nil }
func (r *Registry) Gauge(name string, kv ...string) *int                  { return nil }
func (r *Registry) Histogram(name string, b []float64, kv ...string) *int { return nil }

func register(r *Registry, shard string) {
	r.Counter("events_fired_total")
	r.Counter("lines_total", "shard", shard) // dynamic values are fine; keys must be constant
	r.Gauge("queue_depth")
	r.Histogram("alloc_latency_ms", []float64{1, 5, 25})
	r.Histogram("payload_bytes", nil, "kind", "snapshot")
}

// registerSelfObservability mirrors the pipeline self-metrics and the
// runtime collector's vocabulary.
func registerSelfObservability(r *Registry, stage string) {
	r.Histogram("obs_stage_duration_ms", []float64{1, 2, 4}, "stage", stage)
	r.Counter("obs_stage_items_total", "stage", stage)
	r.Counter("obs_flight_events_total")
	r.Gauge("obs_watchdog_stalled")
	r.Gauge("go_goroutines")
	r.Gauge("go_heap_alloc_bytes")
	r.Counter("go_gc_cycles_total")
	r.Histogram("go_gc_pause_ms", nil)
}

// registerAttribution mirrors the drill-down layer's metric families:
// offered exemplars are a counter, the bounded footprints are gauges.
func registerAttribution(r *Registry) {
	r.Counter("attr_exemplars_total")
	r.Gauge("attr_exemplars_tracked")
	r.Gauge("attr_topk_entries")
	r.Gauge("attr_pinned_apps")
}
