// Package good shows every recognized lifecycle account for a go
// statement: WaitGroup/pending accounting before launch, and
// done/stop-channel waits (direct, in a select, via range-over-channel,
// through a method, or one helper deep).
package good

import "sync"

type srv struct {
	wg      sync.WaitGroup
	pending int
	done    chan struct{}
	quit    chan struct{}
	work    chan int
}

func (s *srv) startWg() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-s.work
	}()
}

func (s *srv) startPending() {
	s.pending++
	go func() {
		<-s.work
	}()
}

func (s *srv) startDoneSelect() {
	go func() {
		for {
			select {
			case <-s.done:
				return
			case v := <-s.work:
				_ = v
			}
		}
	}()
}

func (s *srv) startQuitRecv() {
	go func() {
		<-s.quit
	}()
}

func (s *srv) loop() {
	for {
		select {
		case <-s.done:
			return
		case v := <-s.work:
			_ = v
		}
	}
}

func (s *srv) startMethod() {
	go s.loop()
}

func (s *srv) inner() { <-s.done }

func (s *srv) helper() { s.inner() }

func (s *srv) startDepthTwo() {
	go s.helper()
}

func (s *srv) startRange() {
	go func() {
		for v := range s.work { // ended by close(s.work)
			_ = v
		}
	}()
}
