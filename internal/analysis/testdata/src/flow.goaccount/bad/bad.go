// Package bad seeds unaccounted-goroutine mutants: launches with no
// WaitGroup/pending accounting and no lifecycle wait in the body.
package bad

import "net"

type srv struct {
	pending int
	done    chan struct{}
	work    chan int
	ln      net.Listener
}

func handle(c net.Conn) {}

// mutant 1: plain fire-and-forget literal.
func (s *srv) leakPlain() {
	go func() { // want `tied to no lifecycle account`
		s.pending = 1
	}()
}

// mutant 2: the wg.Add was deleted (accounting must come BEFORE).
func (s *srv) leakAddAfter() {
	go func() { // want `tied to no lifecycle account`
		<-s.work
	}()
	s.pending++
}

func (s *srv) spin() {
	for {
		select {
		case v := <-s.work:
			_ = v
		}
	}
}

// mutant 3: method launch whose body waits only on work, never done.
func (s *srv) leakMethod() {
	go s.spin() // want `tied to no lifecycle account`
}

// mutant 4: external callee — no body to inspect, no accounting.
func (s *srv) leakExternal(fn func()) {
	go fn() // want `tied to no lifecycle account`
}

// mutant 5: the classic http.Serve shape — accepting in a loop with no
// way to be told to stop.
func (s *srv) leakAccept() {
	go func() { // want `tied to no lifecycle account`
		for {
			c, err := s.ln.Accept()
			if err != nil {
				return
			}
			_ = c
		}
	}()
}

// mutant 6: ranging over a slice is not a lifecycle wait.
func (s *srv) leakRangeSlice(items []int) {
	go func() { // want `tied to no lifecycle account`
		for _, v := range items {
			_ = v
		}
	}()
}

// mutant 7: a done-channel wait in the LAUNCHING function does not
// cover the launched goroutine.
func (s *srv) leakWaitOutside() {
	go func() { // want `tied to no lifecycle account`
		s.pending = 2
	}()
	<-s.done
}

func (s *srv) deepHelper() {
	for v := range s.work {
		_ = v
	}
}

func (s *srv) mid() { s.deep() }

func (s *srv) deep() { s.deeper() }

func (s *srv) deeper() { <-s.done }

// mutant 8: the lifecycle wait is three calls deep — beyond the
// bounded resolution, so it must be restructured or accounted.
func (s *srv) leakTooDeep() {
	go s.mid() // want `tied to no lifecycle account`
}
