// Package good follows the completion-hook discipline: accounted
// goroutines, a single guarded fire site, alias snapshots.
package good

type stream struct {
	pending int
	hook    func(int)
}

// Accounted raises the pending counter before the goroutine, so Quiesce
// observes the in-flight hook.
func (s *stream) Accounted(v int) {
	s.pending++
	go func() {
		if s.hook != nil {
			s.hook(v)
		}
		s.pending--
	}()
}

// SingleFire routes every fire through one guarded site.
func (s *stream) SingleFire(v int) {
	if s.hook != nil {
		s.hook(v)
	}
}

// AliasFire snapshots the hook and fires the alias under a nil guard.
func (s *stream) AliasFire(v int) {
	if h := s.hook; h != nil {
		h(v)
	}
}

type watchdog struct {
	onSnapshot func([]byte)
}

// SnapshotFire mirrors the watchdog's exactly-once snapshot hook: a
// single alias fire site under a nil guard.
func (w *watchdog) SnapshotFire(dump []byte) {
	if h := w.onSnapshot; h != nil {
		h(dump)
	}
}

type engine struct {
	onTransition func(string)
}

// TransitionFire mirrors the SLO engine's alert-edge hook: exactly one
// alias fire site, nil-guarded, per evaluated transition.
func (e *engine) TransitionFire(rule string) {
	if h := e.onTransition; h != nil {
		h(rule)
	}
}
