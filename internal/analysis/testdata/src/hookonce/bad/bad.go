// Package bad violates the completion-hook discipline: escapes to
// untracked goroutines, double fires, and unguarded fires.
package bad

type stream struct {
	pending int
	hook    func(int)
	cb      func(int)
}

// Escape launches the hook on a goroutine without raising any Quiesce
// accounting first.
func (s *stream) Escape(v int) {
	go func() { // want `hook escapes onto a goroutine without Quiesce accounting`
		if s.hook != nil {
			s.hook(v)
		}
	}()
}

// DoubleFire can invoke the hook twice for one value.
func (s *stream) DoubleFire(v int) {
	if s.hook != nil {
		s.hook(v)
	}
	if s.hook != nil {
		s.hook(v + 1) // want `hook hook invoked at 2 sites in one function`
	}
}

// Unguarded fires without a nil check and crashes when no hook is set.
func (s *stream) Unguarded(v int) {
	s.cb(v) // want `hook cb invoked without a nil guard`
}

type watchdog struct {
	onSnapshot func([]byte)
}

// DoubleSnapshot can hand the same stall's dump to the snapshot hook
// twice — the exactly-once contract the real watchdog keeps with its
// snapped flag.
func (w *watchdog) DoubleSnapshot(d []byte) {
	if w.onSnapshot != nil {
		w.onSnapshot(d)
	}
	if w.onSnapshot != nil {
		w.onSnapshot(d) // want `hook onSnapshot invoked at 2 sites in one function`
	}
}

// UnguardedSnapshot crashes when no snapshot hook is registered.
func (w *watchdog) UnguardedSnapshot(d []byte) {
	w.onSnapshot(d) // want `hook onSnapshot invoked without a nil guard`
}

type engine struct {
	onTransition func(string)
}

// DoubleTransition can deliver one alert edge twice — the SLO engine
// routes every edge through a single guarded site instead.
func (e *engine) DoubleTransition(rule string) {
	if e.onTransition != nil {
		e.onTransition(rule)
	}
	if e.onTransition != nil {
		e.onTransition(rule) // want `hook onTransition invoked at 2 sites in one function`
	}
}

// UnguardedTransition crashes when no transition hook is installed.
func (e *engine) UnguardedTransition(rule string) {
	e.onTransition(rule) // want `hook onTransition invoked without a nil guard`
}
