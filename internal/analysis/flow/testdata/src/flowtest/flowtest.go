// Package flowtest is a synthetic subject for the flow engine's unit
// tests. Functions named Bad* must produce at least one escape report;
// functions named Good* must produce none. The test configures buf's
// String method as the taint source, strings.Clone / fmt.Sprintf /
// clone as cloners, and "gate"/"cloneMined" as gate identifiers.
package flowtest

import (
	"fmt"
	"strings"
)

// buf mimics blobWriter: a reusable scan buffer whose String result
// aliases memory the next scan will overwrite.
type buf struct{ b []byte }

func (b *buf) String() string { return string(b.b) }

var sinkStr string
var sinkMap = map[string]string{}
var sinkCh = make(chan string, 1)

type rec struct {
	Class string
	Msg   string
}

type keeper struct {
	lines []string
	gate  bool
}

func (k *keeper) keep(s string) { k.lines = append(k.lines, s) }

func clone(s string) string { return strings.Clone(s) }

func ident(s string) string { return s }

// iter mimics segmentIter: returns slices of its reusable raw buffer.
type iter struct {
	raw string
	pos int
}

func (it *iter) next() string {
	i := it.pos
	it.pos = i + 1
	return it.raw[i : i+1]
}

// retain stores its argument beyond any caller's frame.
func retain(s string) { sinkStr = s }

func retain2(s string) { retain(s) }

// --- direct escapes ---

func BadGlobal(b *buf) { sinkStr = b.String() }

func BadMap(b *buf) { sinkMap["k"] = b.String() }

func BadChan(b *buf) { sinkCh <- b.String() }

func BadViaHelper(b *buf) { retain(b.String()) }

func BadViaTwoHops(b *buf) { retain2(b.String()) }

func BadViaPointee(b *buf, k *keeper) { k.keep(b.String()) }

func BadField(b *buf, k *keeper) {
	r := rec{Msg: b.String()}
	k.keep(r.Msg)
}

func BadFieldOther(b *buf, k *keeper) {
	r := rec{Msg: b.String(), Class: b.String()}
	r.Msg = strings.Clone(r.Msg)
	k.keep(r.Class) // Class was never cloned
}

func BadUngated(b *buf, k *keeper) {
	s := b.String()
	if len(s) > 0 { // not a declared gate: the clone may not run
		s = strings.Clone(s)
	}
	k.keep(s)
}

func BadSlice(b *buf, k *keeper) {
	s := b.String()
	k.keep(s[1:3]) // a substring still aliases the buffer
}

func BadDeferredLit(b *buf) {
	s := b.String()
	defer func() { sinkStr = s }() // closure shares the frame's s
}

func BadIter(b *buf, k *keeper) {
	it := iter{raw: b.String()}
	k.keep(it.next()) // next's result aliases it.raw, which aliases b
}

// --- sanctioned paths ---

func GoodIter(b *buf, k *keeper) {
	it := iter{raw: b.String()}
	k.keep(strings.Clone(it.next()))
}

func GoodClone(b *buf) { sinkStr = strings.Clone(b.String()) }

func GoodNamedClone(b *buf) { sinkStr = clone(b.String()) }

func GoodSprintf(b *buf) { sinkStr = fmt.Sprintf("%s!", b.String()) }

func GoodConcat(b *buf) { sinkStr = b.String() + "" }

func GoodConvert(b *buf) {
	bs := []byte(b.String()) // string -> []byte copies
	sinkStr = string(bs)     // and back again
}

func GoodGated(b *buf, k *keeper) {
	s := b.String()
	if k.gate {
		s = strings.Clone(s)
	}
	k.keep(s)
}

func GoodFieldClone(b *buf, k *keeper) {
	r := rec{Msg: b.String(), Class: "x"}
	r.Msg = strings.Clone(r.Msg)
	k.keep(r.Msg)
	k.keep(r.Class)
}

// GoodNamedResult regresses the named-result bug: seg is declared in
// the signature, not the body, but it is frame-local — assigning a view
// to it is a flow to the caller, not a store into a package variable.
func GoodNamedResult(b *buf) (seg string) {
	seg = b.String()
	return
}

func GoodLocalOnly(b *buf) int {
	s := b.String()
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] == 'x' {
			n++
		}
	}
	return n
}

func GoodLocalSlice(b *buf) {
	var acc []string
	acc = append(acc, b.String())
	_ = acc
}

func GoodCopy(b *buf) {
	dst := make([]byte, 8)
	copy(dst, b.String())
	sinkStr = string(dst)
}

func GoodUnknownCallee(b *buf) {
	// strings.ToUpper is outside the analyzed set: results derive from
	// arguments, but no retention is assumed — and ToUpper's result is
	// stored only in a local.
	s := strings.ToUpper(b.String())
	_ = s
}
