// Package flow is a stdlib-only, flow-sensitive interprocedural
// dataflow engine over go/types-resolved ASTs. It computes per-function
// ownership summaries — which inputs flow to which results, which
// inputs are written into another input's pointee, and which inputs
// escape to state no frame owns (globals, map inserts, channel sends) —
// by fixpoint iteration over the static call graph, then replays each
// function with a concrete taint source active to find unsanctioned
// escapes.
//
// The abstraction is deliberately small and matched to the repository's
// ownership disciplines rather than fully general:
//
//   - Taint attaches to reference-carrying values only (strings, slices,
//     maps, channels, pointers, interfaces, and structs holding them);
//     assigning through an int or bool breaks taint, as does anything
//     that copies bytes (string<->[]byte conversions, string
//     concatenation, copy, and the manifest's cloner functions).
//
//   - Struct locals and parameters are tracked one field deep, so
//     `line.Class = strings.Clone(line.Class)` cleans exactly that field
//     while line.Message stays tracked.
//
//   - A clone inside `if gate { x = clone(x) }` where gate is a declared
//     guard identifier kills x's taint unconditionally: the gate is, by
//     declaration, true exactly when the value is tainted. This mirrors
//     the dynamic cloneMined discipline in internal/core.
//
//   - A function's locally-allocated heap (p := New(); p.f = v) counts
//     as local until it is itself stored somewhere non-local; the store
//     of p is where taint inside it is reported.
//
//   - Unknown callees (outside the analyzed set) propagate taint from
//     arguments to reference-carrying results but are assumed not to
//     retain their arguments; retaining callees must be in the analyzed
//     set or declared in the caller's manifest.
package flow

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
)

var debugEscapes = os.Getenv("FLOW_DEBUG") != ""

// srcBit is the label for values derived from a configured Source
// function; input i (receiver first, then parameters) is bit i+1.
const srcBit uint64 = 1

// maxInputs caps the labelled inputs of one function (beyond it, extra
// inputs share the last label — conservative, never unsound for the
// escape direction, and unheard-of in this tree).
const maxInputs = 62

// Config declares the ownership contract the engine enforces.
type Config struct {
	// IsSource reports whether calling fn yields a value whose backing
	// memory is owned by a reusable buffer (e.g. blobWriter.String).
	IsSource func(fn *types.Func) bool

	// IsCloner reports whether fn's results copy their inputs' bytes
	// (strings.Clone, fmt.Sprintf, ...). Cloner results are clean.
	IsCloner func(fn *types.Func) bool

	// IsGate reports whether an identifier (or trailing selector name)
	// is a declared clone guard: inside `if gate { ... }`, assignments
	// from cloner calls kill taint unconditionally.
	IsGate func(name string) bool
}

// Func is one function under analysis.
type Func struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Info *types.Info

	sum summary
}

// summary is a function's ownership summary in label space: bit 0 is
// "derived from a Source call inside", bit i+1 is input i.
type summary struct {
	// escapes: labels stored where no frame owns them (package globals,
	// sends on channels, inserts into non-local maps).
	escapes uint64
	// toPointee[i]: labels written into input i's pointee (fields of a
	// pointer receiver, elements of a map/slice argument, ...).
	toPointee []uint64
	// toResult[r]: labels flowing into result r.
	toResult []uint64
}

func (s *summary) equal(o *summary) bool {
	if s.escapes != o.escapes || len(s.toPointee) != len(o.toPointee) || len(s.toResult) != len(o.toResult) {
		return false
	}
	for i := range s.toPointee {
		if s.toPointee[i] != o.toPointee[i] {
			return false
		}
	}
	for i := range s.toResult {
		if s.toResult[i] != o.toResult[i] {
			return false
		}
	}
	return true
}

// Retains reports whether input i's memory can outlive a call to f —
// stored into another input's pointee or escaping the call graph
// entirely. Valid after Program.Resolve.
func (f *Func) Retains(i int) bool {
	bit := inputBit(i)
	if f.sum.escapes&bit != 0 {
		return true
	}
	for j, m := range f.sum.toPointee {
		// Input i landing in its own pointee (k.lines = append(k.lines,
		// ...)) keeps the memory with its existing owner: not retention.
		if j != i && m&bit != 0 {
			return true
		}
	}
	return false
}

// DebugString renders f's resolved summary for tests and debugging.
func (f *Func) DebugString() string {
	return fmt.Sprintf("escapes=%b toPointee=%b toResult=%b", f.sum.escapes, f.sum.toPointee, f.sum.toResult)
}

// FlowsToResult reports whether input i's backing memory can flow into
// result r without an intervening copy. Valid after Program.Resolve.
func (f *Func) FlowsToResult(i, r int) bool {
	if r < 0 || r >= len(f.sum.toResult) {
		return false
	}
	return f.sum.toResult[r]&inputBit(i) != 0
}

// Program is a set of functions analyzed together. Functions are keyed
// by FullName, not object identity: every package is type-checked
// against export data, so a callee referenced from an importing package
// is a different types.Object than the one from its source-checked home
// package, but both render the same full name.
type Program struct {
	Fset  *token.FileSet
	cfg   Config
	funcs map[string]*Func
	list  []*Func
}

// NewProgram returns an empty program with the given contract.
func NewProgram(fset *token.FileSet, cfg Config) *Program {
	return &Program{Fset: fset, cfg: cfg, funcs: make(map[string]*Func)}
}

// Add registers one function declaration for analysis. Declarations
// without bodies and functions already added are ignored.
func (p *Program) Add(decl *ast.FuncDecl, info *types.Info) *Func {
	if decl == nil || decl.Body == nil {
		return nil
	}
	obj, _ := info.Defs[decl.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	if f := p.funcs[obj.FullName()]; f != nil {
		return f
	}
	f := &Func{Obj: obj, Decl: decl, Info: info}
	p.funcs[obj.FullName()] = f
	p.list = append(p.list, f)
	return f
}

// FuncOf returns the analyzed function for obj, or nil.
func (p *Program) FuncOf(obj *types.Func) *Func { return p.funcs[obj.FullName()] }

// Funcs returns every registered function, in registration order.
func (p *Program) Funcs() []*Func { return p.list }

// Resolve computes every function's summary by fixpoint iteration:
// summaries only grow, so iterating until a full round changes nothing
// terminates. The round cap is a safety net far above the call-graph
// depth of any real package.
func (p *Program) Resolve() {
	for round := 0; round < 32; round++ {
		changed := false
		for _, f := range p.list {
			w := newWalker(p, f, nil)
			w.run()
			next := summary{escapes: w.escapes, toPointee: w.toPointee, toResult: w.toResult}
			if !next.equal(&f.sum) {
				f.sum = next
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// Escape is one unsanctioned flow of source-derived memory out of the
// frame that materialized it.
type Escape struct {
	Pos token.Pos
	// What describes the destination ("stored into p (heap-lived ...)").
	What string
}

// Check replays fn with only Source calls producing taint and reports
// every point where source-derived memory outlives the frame without a
// sanctioned clone. Call after Resolve.
func (p *Program) Check(fn *Func, report func(Escape)) {
	w := newWalker(p, fn, report)
	w.run()
}

// ---------------------------------------------------------------------
// Taint state

// tkey addresses one tracked cell: a variable, or one field of it.
// field == "" is the undecomposed whole.
type tkey struct {
	obj   types.Object
	field string
}

type state map[tkey]uint64

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s state) join(o state) {
	for k, v := range o {
		s[k] |= v
	}
}

// walker runs the abstract interpretation of one function body, in one
// of two modes: summary mode (report == nil; inputs carry labels) and
// check mode (report != nil; only Source calls create taint).
type walker struct {
	prog   *Program
	fn     *Func
	info   *types.Info
	st     state
	report func(Escape)

	inputs []types.Object // receiver first, then params
	named  []types.Object // named results (for naked returns)

	escapes   uint64
	toPointee []uint64
	toResult  []uint64

	// kills collects cells assigned from a cloner call while walking a
	// gate-guarded branch, so the join can apply them unconditionally.
	kills map[tkey]uint64
}

func newWalker(p *Program, fn *Func, report func(Escape)) *walker {
	w := &walker{prog: p, fn: fn, info: fn.Info, st: make(state), report: report}
	sig := fn.Obj.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		w.inputs = append(w.inputs, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		w.inputs = append(w.inputs, sig.Params().At(i))
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if v := sig.Results().At(i); v.Name() != "" {
			w.named = append(w.named, v)
		} else {
			w.named = append(w.named, nil)
		}
	}
	w.toPointee = make([]uint64, len(w.inputs))
	w.toResult = make([]uint64, sig.Results().Len())
	if report == nil {
		// Summary mode: label the inputs.
		for i, in := range w.inputs {
			w.initInput(in, inputBit(i))
		}
	}
	return w
}

func inputBit(i int) uint64 {
	if i >= maxInputs {
		i = maxInputs - 1
	}
	return 1 << uint(i+1)
}

// initInput seeds one input's taint label. Struct values get per-field
// cells (so a field-wise clone can kill precisely); everything
// reference-carrying else gets a whole-cell label.
func (w *walker) initInput(in types.Object, label uint64) {
	t := in.Type()
	if st, ok := t.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if carriesRef(f.Type()) {
				w.st[tkey{in, f.Name()}] = label
			}
		}
		return
	}
	if carriesRef(t) {
		w.st[tkey{in, ""}] = label
	}
}

// carriesRef reports whether values of t can share backing memory with
// another value (and so can carry taint).
func carriesRef(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice, *types.Map, *types.Chan, *types.Pointer, *types.Interface, *types.Signature:
		return true
	case *types.Array:
		return carriesRef(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRef(u.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

func (w *walker) run() {
	w.block(w.fn.Decl.Body)
	// Falling off the end of a function with named results is an
	// implicit naked return.
	w.nakedReturn()
}

func (w *walker) nakedReturn() {
	for i, v := range w.named {
		if v != nil {
			w.toResult[i] |= w.readWhole(v)
		}
	}
}

// ---------------------------------------------------------------------
// Statements

func (w *walker) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		w.assignStmt(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var mask uint64
					if len(vs.Values) == len(vs.Names) {
						mask = w.expr(vs.Values[i])
					} else if len(vs.Values) == 1 {
						masks := w.exprTuple(vs.Values[0], len(vs.Names))
						mask = masks[i]
					}
					if obj := w.info.Defs[name]; obj != nil {
						w.writeWhole(obj, mask)
					}
				}
			}
		}
	case *ast.IfStmt:
		w.ifStmt(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		for i := 0; i < 2; i++ {
			if s.Cond != nil {
				w.expr(s.Cond)
			}
			w.block(s.Body)
			if s.Post != nil {
				w.stmt(s.Post)
			}
		}
	case *ast.RangeStmt:
		mask := w.expr(s.X)
		for i := 0; i < 2; i++ {
			w.bindRange(s, mask)
			w.block(s.Body)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.forkCases(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		var tagMask uint64
		var tagAssign *ast.AssignStmt
		switch a := s.Assign.(type) {
		case *ast.AssignStmt:
			tagAssign = a
			tagMask = w.expr(a.Rhs[0])
		case *ast.ExprStmt:
			tagMask = w.expr(a.X)
		}
		// Each case clause redeclares the assigned variable with the
		// case's type; taint carries over from the switched value.
		base := w.st.clone()
		joined := w.st.clone()
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.st = base.clone()
			if tagAssign != nil {
				if id, ok := tagAssign.Lhs[0].(*ast.Ident); ok {
					if obj := w.info.Implicits[cc]; obj != nil {
						w.writeWhole(obj, tagMask)
					} else if obj := w.info.Defs[id]; obj != nil {
						w.writeWhole(obj, tagMask)
					}
				}
			}
			for _, cs := range cc.Body {
				w.stmt(cs)
			}
			joined.join(w.st)
		}
		w.st = joined
	case *ast.SelectStmt:
		w.forkCases(s.Body)
	case *ast.ReturnStmt:
		if len(s.Results) == 0 {
			w.nakedReturn()
			return
		}
		if len(s.Results) == 1 && len(w.toResult) > 1 {
			masks := w.exprTuple(s.Results[0], len(w.toResult))
			for i, m := range masks {
				w.toResult[i] |= m
			}
			return
		}
		for i, r := range s.Results {
			if i < len(w.toResult) {
				w.toResult[i] |= w.expr(r)
			}
		}
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.SendStmt:
		w.expr(s.Chan)
		mask := w.expr(s.Value)
		w.escape(mask, s.Arrow, "sent on a channel")
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.CommClause:
		if s.Comm != nil {
			w.stmt(s.Comm)
		}
		for _, cs := range s.Body {
			w.stmt(cs)
		}
	}
}

// forkCases runs each case/comm clause from the pre-switch state and
// joins the exits (plus the fall-past-all-cases state).
func (w *walker) forkCases(body *ast.BlockStmt) {
	base := w.st.clone()
	joined := w.st.clone()
	for _, c := range body.List {
		w.st = base.clone()
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.expr(e)
			}
			for _, cs := range cc.Body {
				w.stmt(cs)
			}
		case *ast.CommClause:
			w.stmt(cc)
		}
		joined.join(w.st)
	}
	w.st = joined
}

// ifStmt forks then/else and joins — except that assignments from
// cloner calls inside a gate-guarded then-branch kill taint in the
// join too: the gate is declared to be true exactly when the value
// needs cloning.
func (w *walker) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		w.stmt(s.Init)
	}
	w.expr(s.Cond)
	gated := w.prog.cfg.IsGate != nil && mentionsGate(s.Cond, w.prog.cfg.IsGate)

	base := w.st.clone()
	var prevKills map[tkey]uint64
	if gated {
		prevKills, w.kills = w.kills, make(map[tkey]uint64)
	}
	w.block(s.Body)
	thenExit := w.st
	kills := w.kills
	if gated {
		w.kills = prevKills
	}

	w.st = base
	if s.Else != nil {
		w.stmt(s.Else)
	}
	w.st.join(thenExit)
	if gated {
		for k, v := range kills {
			w.st[k] = v
		}
	}
}

// mentionsGate reports whether the condition reads a declared gate
// identifier (p.cloneMined, cloneMined, ...).
func mentionsGate(cond ast.Expr, isGate func(string) bool) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if isGate(n.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if isGate(n.Sel.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (w *walker) bindRange(s *ast.RangeStmt, mask uint64) {
	bind := func(e ast.Expr, m uint64) {
		if e == nil {
			return
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			w.assign(e, m, e.Pos())
			return
		}
		obj := w.info.Defs[id]
		if obj == nil {
			obj = w.info.Uses[id]
		}
		if obj != nil {
			if !carriesRef(obj.Type()) {
				m = 0
			}
			w.writeWhole(obj, m)
		}
	}
	// Ranging over a string yields runes (no sharing); everything else
	// can share backing memory with the ranged value.
	if tv, ok := w.info.Types[s.X]; ok {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			mask = 0
		}
	}
	bind(s.Key, 0) // keys are ints except for maps; approximate clean
	if tv, ok := w.info.Types[s.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			bind(s.Key, mask)
		}
	}
	bind(s.Value, mask)
}

// ---------------------------------------------------------------------
// Assignment and escape classification

func (w *walker) assignStmt(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		masks := w.exprTuple(s.Rhs[0], len(s.Lhs))
		for i, lhs := range s.Lhs {
			w.assign(lhs, masks[i], s.Pos())
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		// A struct literal assigned whole to a local gets per-field
		// cells, so later field-wise clones kill precisely.
		if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			rhs := ast.Unparen(s.Rhs[i])
			if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				rhs = ast.Unparen(ue.X)
			}
			if lit, ok := rhs.(*ast.CompositeLit); ok {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					if obj := w.objOf(id); obj != nil && w.isLocal(obj) && w.assignComposite(obj, lit) {
						continue
					}
				}
			}
		}
		mask := w.expr(s.Rhs[i])
		// += on strings concatenates (copies); other compound ops are
		// numeric. Either way the result shares nothing with the RHS.
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			mask = 0
		}
		w.assign(lhs, mask, s.Pos())
		// Gated-clone kill bookkeeping: x = cloner(...) inside a gate
		// branch records the post-clone value for the join.
		if w.kills != nil && isClonerCall(w.prog, w.info, s.Rhs[i]) {
			if k, ok := w.lhsKey(lhs); ok {
				w.kills[k] = w.st[k]
			}
		}
	}
}

// assignComposite writes a struct literal's elements into per-field
// cells of obj. Reports false (unhandled) for non-struct literals.
func (w *walker) assignComposite(obj types.Object, lit *ast.CompositeLit) bool {
	st := structOf(obj.Type())
	if st == nil {
		return false
	}
	w.writeWhole(obj, 0)
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			w.st[tkey{obj, ""}] |= w.expr(el)
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			w.st[tkey{obj, ""}] |= w.expr(kv.Value)
			continue
		}
		if m := w.expr(kv.Value); m != 0 {
			w.st[tkey{obj, key.Name}] = m
		}
	}
	return true
}

// lhsKey resolves an assignable expression to its tracked cell, when it
// has one (local ident or field of a tracked object).
func (w *walker) lhsKey(lhs ast.Expr) (tkey, bool) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if obj := w.objOf(lhs); obj != nil {
			return tkey{obj, ""}, true
		}
	case *ast.SelectorExpr:
		if root, field := w.rootOf(lhs); root != nil {
			return tkey{root, field}, true
		}
	}
	return tkey{}, false
}

func isClonerCall(p *Program, info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || p.cfg.IsCloner == nil {
		return false
	}
	fn := calleeOf(info, call)
	return fn != nil && p.cfg.IsCloner(fn)
}

// assign stores mask into lhs, classifying the destination: local
// update, flow into an input's pointee, or an escape to unowned state.
func (w *walker) assign(lhs ast.Expr, mask uint64, pos token.Pos) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := w.objOf(lhs)
		if obj == nil {
			return
		}
		if !carriesRef(obj.Type()) {
			mask = 0
		}
		if w.isLocal(obj) {
			w.writeWhole(obj, mask)
			return
		}
		if i := w.inputIndex(obj); i >= 0 {
			// Reassigning a parameter variable itself is local.
			w.writeWhole(obj, mask)
			return
		}
		// Package-level variable.
		w.escape(mask, pos, fmt.Sprintf("stored into package variable %s", lhs.Name))
	case *ast.SelectorExpr:
		root, field := w.rootOf(lhs)
		if root == nil {
			return
		}
		w.storeThrough(root, field, mask, pos, "field "+lhs.Sel.Name)
	case *ast.IndexExpr:
		w.expr(lhs.Index)
		root, field := w.rootOfExpr(lhs.X)
		if root == nil {
			return
		}
		w.storeThrough(root, field, mask, pos, "element store")
	case *ast.StarExpr:
		root, field := w.rootOfExpr(lhs.X)
		if root == nil {
			return
		}
		w.storeThrough(root, field, mask, pos, "pointee store")
	}
}

// storeThrough handles a store whose destination is reached through
// root: a local keeps the taint in the frame; an input records a
// pointee flow (reported in check mode when the taint is source-
// derived); a global escapes.
func (w *walker) storeThrough(root types.Object, field string, mask uint64, pos token.Pos, what string) {
	if w.isLocal(root) && !isRefThrough(root.Type()) {
		// A value-typed local struct: the store stays in the frame, and
		// field granularity lets later kills work.
		w.writeField(root, field, mask)
		return
	}
	if w.isLocal(root) {
		// A local pointer/map/slice: pointee is owned by this frame
		// until root itself is stored elsewhere; keep tracking on root.
		w.writeField(root, field, mask)
		return
	}
	if i := w.inputIndex(root); i >= 0 {
		if !isRefThrough(root.Type()) {
			// A value parameter (struct passed by value): stores stay in
			// this frame's copy.
			w.writeField(root, field, mask)
			return
		}
		w.toPointee[minInput(i)] |= mask
		if w.report != nil && mask&srcBit != 0 {
			w.report(Escape{Pos: pos, What: fmt.Sprintf("%s of %s, which outlives this call", what, root.Name())})
		}
		return
	}
	// Package-level root.
	w.escape(mask, pos, fmt.Sprintf("%s of package variable %s", what, root.Name()))
}

func minInput(i int) int {
	if i >= maxInputs {
		return maxInputs - 1
	}
	return i
}

// isRefThrough reports whether writing through a value of t reaches
// memory visible outside the current frame's copy of it.
func isRefThrough(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

func (w *walker) escape(mask uint64, pos token.Pos, what string) {
	if mask == 0 {
		return
	}
	if debugEscapes {
		fmt.Printf("ESCAPE mask=%b at %s: %s\n", mask, w.prog.Fset.Position(pos), what)
	}
	w.escapes |= mask &^ srcBit
	if mask&srcBit != 0 {
		w.escapes |= srcBit
		if w.report != nil {
			w.report(Escape{Pos: pos, What: what})
		}
	}
}

// ---------------------------------------------------------------------
// Cell reads and writes

func (w *walker) objOf(id *ast.Ident) types.Object {
	if obj := w.info.Uses[id]; obj != nil {
		return obj
	}
	return w.info.Defs[id]
}

// isLocal reports whether obj is a variable owned by the current frame:
// declared inside the function body, or a named result (declared in the
// signature, so the whole-declaration range is checked — inputs were
// already excluded above).
func (w *walker) isLocal(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if w.inputIndex(obj) >= 0 {
		return false
	}
	decl := w.fn.Decl
	return obj.Pos() >= decl.Pos() && obj.Pos() <= decl.End()
}

func (w *walker) inputIndex(obj types.Object) int {
	for i, in := range w.inputs {
		if in == obj {
			return i
		}
	}
	return -1
}

// readWhole returns the union of every cell of obj.
func (w *walker) readWhole(obj types.Object) uint64 {
	var m uint64
	for k, v := range w.st {
		if k.obj == obj {
			m |= v
		}
	}
	return m
}

func (w *walker) readField(obj types.Object, field string) uint64 {
	return w.st[tkey{obj, field}] | w.st[tkey{obj, ""}]
}

// writeWhole strong-updates obj: every field cell is dropped.
func (w *walker) writeWhole(obj types.Object, mask uint64) {
	for k := range w.st {
		if k.obj == obj {
			delete(w.st, k)
		}
	}
	if mask != 0 {
		w.st[tkey{obj, ""}] = mask
	}
}

// writeField strong-updates one field cell, first exploding a
// whole-object mask onto the fields so the update really is strong.
func (w *walker) writeField(obj types.Object, field string, mask uint64) {
	if field == "" {
		// Store through the whole object (slice element, pointee):
		// weak update, content merges.
		if mask != 0 {
			w.st[tkey{obj, ""}] |= mask
		}
		return
	}
	if whole := w.st[tkey{obj, ""}]; whole != 0 {
		if st := structOf(obj.Type()); st != nil {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if carriesRef(f.Type()) {
					w.st[tkey{obj, f.Name()}] |= whole
				}
			}
			delete(w.st, tkey{obj, ""})
		}
	}
	k := tkey{obj, field}
	if mask == 0 {
		delete(w.st, k)
	} else {
		w.st[k] = mask
	}
}

// structOf unwraps t (through one pointer) to its struct type, or nil.
func structOf(t types.Type) *types.Struct {
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	st, _ := u.(*types.Struct)
	return st
}

// rootOf resolves a selector chain to its root object and the first
// field selected on it (line.Class -> (line, "Class"); p.warns.count ->
// (p, "warns")). Returns nil for non-ident roots (call results etc.).
func (w *walker) rootOf(sel *ast.SelectorExpr) (types.Object, string) {
	// Package-qualified identifier (pkg.Var) is itself a root.
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := w.info.Uses[id].(*types.PkgName); isPkg {
			return w.info.Uses[sel.Sel], ""
		}
	}
	field := sel.Sel.Name
	e := ast.Unparen(sel.X)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return w.objOf(x), field
		case *ast.SelectorExpr:
			field = x.Sel.Name
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			field = ""
			e = ast.Unparen(x.X)
		default:
			return nil, ""
		}
	}
}

// rootOfExpr is rootOf for arbitrary expressions.
func (w *walker) rootOfExpr(e ast.Expr) (types.Object, string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return w.objOf(e), ""
	case *ast.SelectorExpr:
		return w.rootOf(e)
	case *ast.StarExpr:
		return w.rootOfExpr(e.X)
	case *ast.IndexExpr:
		root, _ := w.rootOfExpr(e.X)
		return root, ""
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.rootOfExpr(e.X)
		}
	}
	return nil, ""
}

// ---------------------------------------------------------------------
// Expressions

// expr computes the taint mask of e, performing call effects and
// walking nested function literals along the way.
func (w *walker) expr(e ast.Expr) uint64 {
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.BasicLit:
		return 0
	case *ast.Ident:
		obj := w.objOf(e)
		if obj == nil || !carriesRef(objType(obj)) {
			return 0
		}
		return w.readWhole(obj)
	case *ast.SelectorExpr:
		// Method value or qualified name: no data read.
		if sel, ok := w.info.Selections[e]; ok && sel.Kind() != types.FieldVal {
			w.expr(e.X)
			return 0
		}
		root, field := w.rootOf(e)
		if root == nil {
			return w.expr(e.X)
		}
		return w.readField(root, field)
	case *ast.ParenExpr:
		return w.expr(e.X)
	case *ast.StarExpr:
		return w.expr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND || e.Op == token.ARROW {
			return w.expr(e.X)
		}
		w.expr(e.X)
		return 0
	case *ast.BinaryExpr:
		// String concatenation allocates a fresh backing array; every
		// other binary op is scalar. Either way: clean.
		w.expr(e.X)
		w.expr(e.Y)
		return 0
	case *ast.IndexExpr:
		w.expr(e.Index)
		base := w.expr(e.X)
		if tv, ok := w.info.Types[e.X]; ok {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				return 0 // s[i] is a byte
			}
		}
		return base
	case *ast.IndexListExpr:
		return w.expr(e.X)
	case *ast.SliceExpr:
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
		return w.expr(e.X)
	case *ast.TypeAssertExpr:
		return w.expr(e.X)
	case *ast.CompositeLit:
		var m uint64
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= w.expr(kv.Value)
				continue
			}
			m |= w.expr(el)
		}
		return m
	case *ast.FuncLit:
		// Closures share the frame's variables: analyze the body inline
		// at the point of creation. Stores inside are classified with
		// the enclosing function's inputs/locals, which is exactly the
		// sharing semantics of a capture.
		w.block(e.Body)
		return 0
	case *ast.CallExpr:
		masks := w.call(e)
		var m uint64
		for _, v := range masks {
			m |= v
		}
		return m
	}
	return 0
}

func objType(obj types.Object) types.Type {
	if obj == nil {
		return types.Typ[types.Invalid]
	}
	return obj.Type()
}

// exprTuple computes per-result masks for a multi-value expression.
func (w *walker) exprTuple(e ast.Expr, n int) []uint64 {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		masks := w.call(call)
		if len(masks) == n {
			return masks
		}
		out := make([]uint64, n)
		var all uint64
		for _, m := range masks {
			all |= m
		}
		for i := range out {
			out[i] = all
		}
		return out
	}
	out := make([]uint64, n)
	m := w.expr(e)
	// v, ok := m[k] / x.(T) / <-ch: the bool is clean.
	out[0] = m
	return out
}

// ---------------------------------------------------------------------
// Calls

// calleeOf resolves a call to its static callee, or nil (builtins,
// dynamic calls, conversions).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// call evaluates a call's arguments, applies the callee's summary (or a
// conservative default), and returns per-result taint masks.
func (w *walker) call(call *ast.CallExpr) []uint64 {
	// Type conversion?
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return []uint64{w.conversion(tv.Type, call.Args[0])}
	}
	// Builtin?
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			return w.builtin(b.Name(), call)
		}
	}

	fn := calleeOf(w.info, call)

	// Function literal called in place: bind arguments, then the body
	// was/will be analyzed inline by expr(FuncLit).
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, a := range call.Args {
			w.expr(a)
		}
		w.block(lit.Body)
		return w.resultMasks(call, 0)
	}

	// Evaluate receiver and arguments (in order).
	var argMasks []uint64
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selection, ok := w.info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
			argMasks = append(argMasks, w.expr(sel.X))
		} else {
			w.expr(sel.X)
		}
	}
	for _, a := range call.Args {
		argMasks = append(argMasks, w.expr(a))
	}

	if fn != nil && w.prog.cfg.IsCloner != nil && w.prog.cfg.IsCloner(fn) {
		return w.resultMasks(call, 0)
	}
	if fn != nil && w.prog.cfg.IsSource != nil && w.prog.cfg.IsSource(fn) {
		return w.resultMasks(call, srcBit)
	}
	if fn != nil {
		if f := w.prog.funcs[fn.FullName()]; f != nil {
			return w.applySummary(call, f, argMasks)
		}
	}

	// Unknown callee: results derive from reference-carrying arguments;
	// no retention assumed (see package doc).
	var all uint64
	for _, m := range argMasks {
		all |= m
	}
	return w.resultMasks(call, all)
}

func (w *walker) conversion(to types.Type, arg ast.Expr) uint64 {
	m := w.expr(arg)
	if m == 0 {
		return 0
	}
	from, ok := w.info.Types[arg]
	if !ok {
		return m
	}
	// string <-> []byte/[]rune conversions copy; conversions within one
	// kind (named string to string, slice to named slice) share memory.
	fromStr := isStringType(from.Type)
	toStr := isStringType(to)
	if fromStr != toStr {
		return 0
	}
	return m
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (w *walker) builtin(name string, call *ast.CallExpr) []uint64 {
	switch name {
	case "append":
		var m uint64
		for _, a := range call.Args {
			m |= w.expr(a)
		}
		return []uint64{m}
	case "copy":
		// copy duplicates bytes into dst's existing storage: clean.
		for _, a := range call.Args {
			w.expr(a)
		}
		return []uint64{0}
	case "panic":
		if len(call.Args) == 1 {
			m := w.expr(call.Args[0])
			w.escape(m, call.Pos(), "passed to panic")
		}
		return nil
	default:
		for _, a := range call.Args {
			w.expr(a)
		}
		return w.resultMasks(call, 0)
	}
}

// resultMasks sizes the per-result mask slice for a call expression.
func (w *walker) resultMasks(call *ast.CallExpr, mask uint64) []uint64 {
	tv, ok := w.info.Types[call]
	if !ok {
		return []uint64{mask}
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		out := make([]uint64, tuple.Len())
		for i := range out {
			if carriesRef(tuple.At(i).Type()) {
				out[i] = mask
			}
		}
		return out
	}
	if !carriesRef(tv.Type) {
		mask = 0
	}
	return []uint64{mask}
}

// applySummary composes a known callee's summary with the call's
// argument masks: results pick up flowing labels, pointee flows write
// into the argument roots, and escapes propagate (or report).
func (w *walker) applySummary(call *ast.CallExpr, callee *Func, argMasks []uint64) []uint64 {
	// Argument expressions, receiver first, mirroring argMasks.
	var argExprs []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selection, ok := w.info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
			argExprs = append(argExprs, sel.X)
		}
	}
	argExprs = append(argExprs, call.Args...)

	// Fold variadic extras into the last input slot so summary bit j
	// addresses argument j.
	nin := len(callee.sum.toPointee)
	if len(argMasks) > nin && nin > 0 {
		folded := make([]uint64, nin)
		copy(folded, argMasks[:nin-1])
		for _, m := range argMasks[nin-1:] {
			folded[nin-1] |= m
		}
		argMasks = folded
	}

	compose := func(labels uint64) uint64 {
		var out uint64
		if labels&srcBit != 0 {
			out |= srcBit
		}
		for j := 0; j < len(argMasks) && j < maxInputs; j++ {
			if labels&inputBit(j) != 0 {
				out |= argMasks[j]
			}
		}
		return out
	}

	// Pointee flows: taint written into argument j's pointee lands on
	// the argument's root in this frame.
	for j, labels := range callee.sum.toPointee {
		incoming := compose(labels)
		if incoming == 0 {
			continue
		}
		if j >= len(argExprs) {
			continue
		}
		targets := argExprs[j : j+1]
		if j == nin-1 {
			targets = argExprs[j:] // the variadic slot covers the rest
		}
		for _, arg := range targets {
			root, field := w.rootOfExpr(arg)
			if root == nil {
				continue
			}
			w.storeThrough(root, field, incoming, call.Pos(),
				fmt.Sprintf("passed to %s, which stores it into its %s argument; that memory", callee.Obj.Name(), inputName(callee, j)))
		}
	}

	// Escapes inside the callee: labels that map to our arguments
	// escape here too. Source-derived escapes inside the callee are the
	// callee's own report; only argument-carried taint reports here.
	if esc := compose(callee.sum.escapes &^ srcBit); esc != 0 {
		w.escape(esc, call.Pos(), fmt.Sprintf("passed to %s, which stores it beyond any caller's frame", callee.Obj.Name()))
	}

	out := make([]uint64, len(callee.sum.toResult))
	for r, labels := range callee.sum.toResult {
		out[r] = compose(labels)
	}
	if len(out) == 0 {
		return w.resultMasks(call, 0)
	}
	return out
}

// inputName names callee input j for diagnostics.
func inputName(callee *Func, j int) string {
	sig := callee.Obj.Type().(*types.Signature)
	if sig.Recv() != nil {
		if j == 0 {
			return "receiver"
		}
		j--
	}
	if j < sig.Params().Len() {
		if n := sig.Params().At(j).Name(); n != "" {
			return n
		}
	}
	return fmt.Sprintf("#%d", j)
}

// ---------------------------------------------------------------------
// Shared const-string helper (used by smconform's extraction).

// ConstString resolves an expression to its compile-time string value.
func ConstString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
