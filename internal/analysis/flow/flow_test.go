package flow_test

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

// loadFlowtest type-checks the synthetic subject package and resolves
// summaries under the test contract: buf.String is the source,
// strings.Clone / fmt.Sprintf / clone are cloners, gate/cloneMined are
// gate identifiers.
func loadFlowtest(t *testing.T) *flow.Program {
	t.Helper()
	prog, err := analysis.Load("../../..", "./internal/analysis/flow/testdata/src/flowtest")
	if err != nil {
		t.Fatalf("load flowtest: %v", err)
	}
	if len(prog.Packages) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(prog.Packages))
	}
	pkg := prog.Packages[0]
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("flowtest does not type-check: %v", terr)
	}

	cfg := flow.Config{
		IsSource: func(fn *types.Func) bool {
			return fn.Name() == "String" && recvNamed(fn) == "buf"
		},
		IsCloner: func(fn *types.Func) bool {
			full := fn.FullName()
			return full == "strings.Clone" || full == "fmt.Sprintf" || fn.Name() == "clone"
		},
		IsGate: func(name string) bool {
			return name == "gate" || name == "cloneMined"
		},
	}
	fp := flow.NewProgram(prog.Fset, cfg)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				fp.Add(fd, pkg.Info)
			}
		}
	}
	fp.Resolve()
	return fp
}

func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// TestEscapeVerdicts drives Check over every Bad*/Good* function: each
// Bad must report at least one escape, each Good must report none.
func TestEscapeVerdicts(t *testing.T) {
	fp := loadFlowtest(t)
	bad, good := 0, 0
	for _, fn := range fp.Funcs() {
		name := fn.Obj.Name()
		var wantBad bool
		switch {
		case strings.HasPrefix(name, "Bad"):
			wantBad = true
			bad++
		case strings.HasPrefix(name, "Good"):
			good++
		default:
			continue
		}
		var got []flow.Escape
		fp.Check(fn, func(e flow.Escape) { got = append(got, e) })
		if wantBad && len(got) == 0 {
			t.Errorf("%s: want an escape report, got none", name)
		}
		if !wantBad && len(got) > 0 {
			t.Errorf("%s: unexpected escape: %s", name, got[0].What)
		}
	}
	if bad < 10 || good < 10 {
		t.Fatalf("convention sweep found %d Bad / %d Good functions; the fixture shrank", bad, good)
	}
}

// TestSummaries pins the interprocedural summaries the verdicts rest
// on: retention through helpers, pointee flows into receivers, result
// aliasing, and cloner-cut flows.
func TestSummaries(t *testing.T) {
	fp := loadFlowtest(t)
	byName := map[string]*flow.Func{}
	for _, fn := range fp.Funcs() {
		byName[fn.Obj.Name()] = fn
	}
	need := func(name string) *flow.Func {
		t.Helper()
		fn := byName[name]
		if fn == nil {
			t.Fatalf("function %s missing from fixture", name)
		}
		return fn
	}

	// retain stores its only parameter into a global; retain2 inherits
	// that transitively through the fixpoint.
	if !need("retain").Retains(0) {
		t.Error("retain: parameter 0 should be retained")
	}
	if !need("retain2").Retains(0) {
		t.Error("retain2: retention should propagate through one hop")
	}
	// keep appends its parameter (input 1; receiver is input 0) into
	// the receiver's slice — retained, but not an escape on its own.
	if !need("keep").Retains(1) {
		t.Error("keep: parameter should be retained into the receiver")
	}
	if need("keep").Retains(0) {
		t.Error("keep: the receiver itself is not retained anywhere")
	}
	// ident aliases its input into its result; clone copies.
	if !need("ident").FlowsToResult(0, 0) {
		t.Error("ident: input should flow to result")
	}
	if need("clone").FlowsToResult(0, 0) {
		t.Error("clone: a cloner call must cut input-to-result flow")
	}
	if need("clone").Retains(0) {
		t.Error("clone: nothing is retained")
	}
	// iter.next returns a slice of the receiver's raw field.
	if !need("next").FlowsToResult(0, 0) {
		t.Error("next: receiver memory should flow to the result")
	}
}
