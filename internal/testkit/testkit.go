// Package testkit builds small simulated testbeds for unit and
// integration tests: a cluster of a few nodes with a ResourceManager,
// NodeManagers, HDFS, and an in-memory log sink.
package testkit

import (
	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/ids"
	"repro/internal/log4j"
	"repro/internal/sim"
	"repro/internal/yarn"
)

// ClusterTS is the cluster timestamp used in test IDs and log stamps.
const ClusterTS = 1499000000000

// Bed is a wired mini-testbed.
type Bed struct {
	Eng  *sim.Engine
	Cl   *cluster.Cluster
	FS   *hdfs.FS
	RM   *yarn.RM
	NMs  []*yarn.NodeManager
	Sink *log4j.Sink
	IDs  *ids.Factory
}

// Options tweak the bed before the daemons start.
type Options struct {
	Workers int
	Yarn    func(*yarn.Config)
	Cluster func(*cluster.Config)
	Seed    uint64
}

// New builds a bed with the given number of workers (default 4).
func New(opts Options) *Bed {
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	ccfg := cluster.DefaultConfig()
	ccfg.Workers = opts.Workers
	ccfg.Seed = opts.Seed
	if opts.Cluster != nil {
		opts.Cluster(&ccfg)
	}
	ycfg := yarn.DefaultConfig()
	if opts.Yarn != nil {
		opts.Yarn(&ycfg)
	}

	eng := sim.NewEngine()
	cl := cluster.New(eng, ccfg)
	sink := log4j.NewSink(eng, log4j.Clock{EpochMS: ClusterTS})
	fs := hdfs.New(eng, cl, opts.Seed^0xf5)
	factory := ids.NewFactory(ClusterTS)
	rm := yarn.NewRM(eng, ycfg, cl, sink, factory, opts.Seed^0x21)

	b := &Bed{Eng: eng, Cl: cl, FS: fs, RM: rm, Sink: sink, IDs: factory}
	for _, n := range cl.Nodes {
		b.NMs = append(b.NMs, yarn.NewNodeManager(rm, n, fs, sink))
	}
	return b
}

// Prewarm marks paths cached on every NM and registers them in HDFS.
func (b *Bed) Prewarm(paths map[string]float64) {
	for p, size := range paths {
		if b.FS.Lookup(p) == nil {
			b.FS.Create(p, size, nil)
		}
		for _, nm := range b.NMs {
			nm.PrewarmCache(p)
		}
	}
}

// Run drives the bed for the given number of virtual seconds.
func (b *Bed) Run(seconds int64) sim.Time {
	return b.Eng.RunUntil(b.Eng.Now() + sim.Time(seconds*1000))
}

// Lines returns all log lines of one file (helper for log assertions).
func (b *Bed) Lines(file string) []string { return b.Sink.Lines(file) }
