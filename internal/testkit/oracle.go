package testkit

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/log4j"
	"repro/internal/sim"
)

// OracleInput is one log tree to validate: the sink holding the run's
// logs, and (optionally) the simulator's ground-truth span recorder.
type OracleInput struct {
	Name string
	Sink *log4j.Sink

	// Truth, when set, enables the ground-truth containment check:
	// every mined delay-component span must fall within its recorded
	// counterpart on the same (application, container, name) track.
	// Leave nil for degraded-log runs — per-file clock skew moves mined
	// timestamps off the simulator's timeline by design.
	Truth   *sim.Recorder
	EpochMS int64 // wall-clock epoch of sim time 0 (shifts Truth spans)

	// RequireSpans lists span names the mined trace must contain (e.g.
	// the full shared vocabulary for a healthy Spark run).
	RequireSpans []string
}

// DiffOracle is a differential test harness for the parallel mining
// pipeline: for each worker count it checks that MineSink renders byte
// for byte what the serial Checker renders, that a ShardedStream fed
// the sink's lines renders byte for byte what a serial Stream renders
// (with losslessly merged breakdown sketches), that the byte-level fast
// matcher and the retained regex reference render byte-identical
// reports, and — when ground truth is supplied — that the mined spans
// are contained in the simulator's recorded spans.
type DiffOracle struct {
	// Workers are the parallel worker counts to diff (default 2, 3, 8).
	Workers []int
}

// Check runs the full differential suite and returns the serial
// checker's report (the reference all parallel paths were diffed
// against) for any further scenario-specific assertions.
func (o DiffOracle) Check(t testing.TB, in OracleInput) *core.Report {
	t.Helper()
	workers := o.Workers
	if len(workers) == 0 {
		workers = []int{2, 3, 8}
	}

	// Reference: the serial offline checker.
	ck := core.New()
	if err := ck.AddSink(in.Sink); err != nil {
		t.Fatalf("%s: AddSink: %v", in.Name, err)
	}
	ref := ck.Analyze()
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatalf("%s: reference JSON: %v", in.Name, err)
	}
	refAttr, err := ref.Breakdown().AttributionJSON()
	if err != nil {
		t.Fatalf("%s: reference attribution JSON: %v", in.Name, err)
	}

	// Reference: the serial stream, fed the sink's lines in file order,
	// with a completion-hook breakdown sketch.
	st := core.NewStream()
	refBD := core.NewClusterBreakdown()
	st.OnComplete(func(a *core.AppTrace) { refBD.Observe(a) })
	for _, f := range in.Sink.Files() {
		for _, l := range in.Sink.Lines(f) {
			st.Feed(f, l)
		}
	}
	stJSON, err := st.Report().JSON()
	if err != nil {
		t.Fatalf("%s: serial stream JSON: %v", in.Name, err)
	}
	stAttr, err := refBD.AttributionJSON()
	if err != nil {
		t.Fatalf("%s: serial stream attribution JSON: %v", in.Name, err)
	}

	// Cross-implementation diff: the whole suite above ran on the
	// byte-level fast matcher (the default); re-running the two serial
	// references on the retained regex implementation must reproduce the
	// same bytes, making every oracle scenario also a matcher-equivalence
	// scenario.
	func() {
		defer core.UseReferenceMatcher(true)()
		ck := core.New()
		if err := ck.AddSink(in.Sink); err != nil {
			t.Fatalf("%s: AddSink (regex matcher): %v", in.Name, err)
		}
		got, err := ck.Analyze().JSON()
		if err != nil {
			t.Fatalf("%s: regex-matcher JSON: %v", in.Name, err)
		}
		if got != refJSON {
			t.Errorf("%s: regex matcher diverges from fast matcher (offline checker)", in.Name)
		}
		st := core.NewStream()
		bd := core.NewClusterBreakdown()
		st.OnComplete(func(a *core.AppTrace) { bd.Observe(a) })
		for _, f := range in.Sink.Files() {
			for _, l := range in.Sink.Lines(f) {
				st.Feed(f, l)
			}
		}
		if got, err := st.Report().JSON(); err != nil {
			t.Fatalf("%s: regex-matcher stream JSON: %v", in.Name, err)
		} else if got != stJSON {
			t.Errorf("%s: regex matcher diverges from fast matcher (stream)", in.Name)
		}
		if attr, err := bd.AttributionJSON(); err != nil {
			t.Fatalf("%s: regex-matcher attribution JSON: %v", in.Name, err)
		} else if attr != stAttr {
			t.Errorf("%s: regex matcher diverges from fast matcher (attribution)", in.Name)
		}
	}()

	for _, w := range workers {
		// Parallel offline mining == serial checker, byte for byte.
		rep, err := core.MineSink(in.Sink, w)
		if err != nil {
			t.Fatalf("%s: MineSink(workers=%d): %v", in.Name, w, err)
		}
		got, err := rep.JSON()
		if err != nil {
			t.Fatalf("%s: MineSink(workers=%d) JSON: %v", in.Name, w, err)
		}
		if got != refJSON {
			t.Errorf("%s: MineSink(workers=%d) diverges from serial checker", in.Name, w)
		}
		if !reflect.DeepEqual(rep.Breakdown().Rows(), ref.Breakdown().Rows()) {
			t.Errorf("%s: MineSink(workers=%d) breakdown diverges", in.Name, w)
		}
		// Attribution state (exemplar reservoirs + heavy-hitter top-k)
		// must merge to the same bytes at any worker count.
		if attr, err := rep.Breakdown().AttributionJSON(); err != nil {
			t.Fatalf("%s: MineSink(workers=%d) attribution JSON: %v", in.Name, w, err)
		} else if attr != refAttr {
			t.Errorf("%s: MineSink(workers=%d) attribution diverges from serial checker", in.Name, w)
		}

		// Parallel streaming == serial streaming, byte for byte, with a
		// lossless sketch merge.
		ss := core.NewShardedStream(w)
		for _, f := range in.Sink.Files() {
			for _, l := range in.Sink.Lines(f) {
				ss.Feed(f, l)
			}
		}
		ss.Quiesce()
		sgot, err := ss.Report().JSON()
		if err != nil {
			t.Fatalf("%s: ShardedStream(workers=%d) JSON: %v", in.Name, w, err)
		}
		if sgot != stJSON {
			t.Errorf("%s: ShardedStream(workers=%d) diverges from serial stream", in.Name, w)
		}
		if !reflect.DeepEqual(ss.Breakdown().Rows(), refBD.Rows()) {
			t.Errorf("%s: ShardedStream(workers=%d) merged breakdown diverges from serial hook sketch", in.Name, w)
		}
		if attr, err := ss.Breakdown().AttributionJSON(); err != nil {
			t.Fatalf("%s: ShardedStream(workers=%d) attribution JSON: %v", in.Name, w, err)
		} else if attr != stAttr {
			t.Errorf("%s: ShardedStream(workers=%d) attribution diverges from serial stream", in.Name, w)
		}
		ss.Close()
	}

	if in.Truth != nil {
		o.checkContainment(t, in, ref)
	}
	if len(in.RequireSpans) > 0 {
		seen := map[string]bool{}
		for _, a := range ref.Apps {
			for _, sp := range core.AppSpans(a) {
				seen[sp.Name] = true
			}
		}
		for _, want := range in.RequireSpans {
			if !seen[want] {
				t.Errorf("%s: mined trace missing span %q", in.Name, want)
			}
		}
	}
	return ref
}

// checkContainment verifies every mined delay-component span falls
// within a ground-truth span on the same track (the PR 1 fidelity check,
// applied to whatever scenario the oracle is driven with).
func (o DiffOracle) checkContainment(t testing.TB, in OracleInput, rep *core.Report) {
	t.Helper()
	type key struct{ proc, track, name string }
	truth := map[key][][2]int64{}
	for _, sp := range in.Truth.Spans() {
		k := key{sp.Process, sp.Thread, sp.Name}
		truth[k] = append(truth[k], [2]int64{in.EpochMS + int64(sp.Start), in.EpochMS + int64(sp.End)})
	}
	if len(truth) == 0 {
		t.Fatalf("%s: ground-truth recorder captured nothing", in.Name)
	}
	mined := 0
	for _, a := range rep.Apps {
		for _, m := range core.AppSpans(a) {
			mined++
			k := key{m.Process, m.Thread, m.Name}
			within := false
			for _, tr := range truth[k] {
				if tr[0] <= int64(m.Start) && int64(m.End) <= tr[1] {
					within = true
					break
				}
			}
			if !within {
				t.Errorf("%s: mined span %s/%s %q [%d, %d] not within any ground-truth span",
					in.Name, m.Process, m.Thread, m.Name, m.Start, m.End)
			}
		}
	}
	if mined == 0 {
		t.Fatalf("%s: no spans mined from the logs", in.Name)
	}
}
