package docker

import (
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/sim"
)

func bed() (*sim.Engine, *cluster.Node) {
	eng := sim.NewEngine()
	cfg := cluster.DefaultConfig()
	cfg.Workers = 1
	cl := cluster.New(eng, cfg)
	return eng, cl.Node(0)
}

func sample(rt Runtime, n int) []float64 {
	eng, node := bed()
	r := rng.New(9)
	out := make([]float64, 0, n)
	var run func(i int)
	run = func(i int) {
		if i >= n {
			return
		}
		start := eng.Now()
		Apply(eng, node, r, rt, DefaultOverhead(), func() {
			out = append(out, float64(eng.Now()-start))
			run(i + 1)
		})
	}
	run(0)
	eng.Run()
	sort.Float64s(out)
	return out
}

func median(v []float64) float64 { return v[len(v)/2] }

func TestDefaultIsFast(t *testing.T) {
	v := sample(RuntimeDefault, 50)
	if m := median(v); m < 5 || m > 120 {
		t.Fatalf("default runtime median %vms, want a few tens of ms", m)
	}
}

func TestDockerOverheadCalibration(t *testing.T) {
	def := sample(RuntimeDefault, 80)
	dock := sample(RuntimeDocker, 80)
	extra := median(dock) - median(def)
	// Paper Fig 9b: ~350 ms median overhead.
	if extra < 200 || extra > 600 {
		t.Fatalf("docker median overhead %vms, want ~350", extra)
	}
	p95 := dock[int(float64(len(dock))*0.95)] - def[int(float64(len(def))*0.95)]
	if p95 < extra {
		t.Fatalf("docker tail overhead %vms should exceed the median %vms (long tail)", p95, extra)
	}
}

func TestDockerSensitiveToDiskLoad(t *testing.T) {
	measure := func(load bool) float64 {
		eng, node := bed()
		if load {
			for i := 0; i < 20; i++ {
				node.Disk.Start(1e9, 800, func(sim.Time) {})
			}
		}
		var d float64
		Apply(eng, node, rng.New(3), RuntimeDocker, DefaultOverhead(), func() {
			d = float64(eng.Now())
		})
		eng.RunUntil(10_000_000)
		return d
	}
	idle, busy := measure(false), measure(true)
	if busy <= idle {
		t.Fatalf("docker start under disk load %vms vs idle %vms — image load should slow", busy, idle)
	}
}

func TestRuntimeString(t *testing.T) {
	if RuntimeDefault.String() != "default" || RuntimeDocker.String() != "docker" {
		t.Fatal("runtime names wrong")
	}
}
