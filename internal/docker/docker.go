// Package docker models the container-runtime launch overhead the paper
// measures in Fig 9b: running a YARN container inside Docker adds image
// load and mount work before the launch script executes. The paper
// measured a 350 ms median / 658 ms 95th-percentile overhead with a
// 2.65 GB image, with a long tail it attributes to the extra IO of image
// loading — so part of the overhead here is a read on the node's disk
// share, which also makes Docker launches IO-interference sensitive.
package docker

import (
	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Runtime selects how a container process is started.
type Runtime int

// Available container runtimes.
const (
	// RuntimeDefault is the stock YARN DefaultContainerExecutor
	// (bare process).
	RuntimeDefault Runtime = iota
	// RuntimeDocker launches the process inside a Docker container.
	RuntimeDocker
)

// String names the runtime for logs and reports.
func (r Runtime) String() string {
	if r == RuntimeDocker {
		return "docker"
	}
	return "default"
}

// Overhead parameterizes the Docker start path.
type Overhead struct {
	// SetupMedianMs / SetupSigma: daemon round-trip, namespace and cgroup
	// setup, mount of the (locally cached) image. Log-normal.
	SetupMedianMs float64
	SetupSigma    float64
	// ImageReadMB is the slice of image layer data actually touched at
	// start (metadata + hot files; the 2.65 GB image is lazily loaded).
	ImageReadMB float64
	// ImageReadDemandMBps caps the image read rate on the disk share.
	ImageReadDemandMBps float64
}

// DefaultOverhead is calibrated against Fig 9b (350 ms median extra,
// ~658 ms at the 95th percentile, long tail).
func DefaultOverhead() Overhead {
	return Overhead{
		SetupMedianMs:       230,
		SetupSigma:          0.58,
		ImageReadMB:         110,
		ImageReadDemandMBps: 900,
	}
}

// Apply runs the runtime start path on node and invokes done when the
// process can exec. For RuntimeDefault it only costs the fork/exec floor.
func Apply(eng *sim.Engine, node *cluster.Node, r *rng.Source, rt Runtime, ov Overhead, done func()) {
	forkMs := int64(r.LogNormalMedian(25, 0.3))
	if forkMs < 1 {
		forkMs = 1
	}
	if rt == RuntimeDefault {
		eng.After(forkMs, func() { done() })
		return
	}
	setup := int64(r.LogNormalMedian(ov.SetupMedianMs, ov.SetupSigma))
	if setup < 1 {
		setup = 1
	}
	eng.After(forkMs+setup, func() {
		cluster.StartTransfer(eng, []cluster.Leg{
			{Res: node.Disk, Work: ov.ImageReadMB, Demand: ov.ImageReadDemandMBps},
		}, func(sim.Time) { done() })
	})
}
