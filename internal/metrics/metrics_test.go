package metrics

import (
	"bytes"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "kind", "fired")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("events_total", "kind", "fired"); again != c {
		t.Fatal("get-or-create returned a different counter for the same series")
	}
	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", DefBuckets)
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_ms", []float64{10, 20})
	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Type != TypeHistogram || s.Count != 0 || s.Sum != 0 {
		t.Fatalf("empty histogram snapshot: %+v", s)
	}
	if len(s.Buckets) != 3 { // 10, 20, +Inf
		t.Fatalf("buckets = %d, want 3", len(s.Buckets))
	}
	for _, b := range s.Buckets {
		if b.Count != 0 {
			t.Fatalf("empty histogram has bucket count %d", b.Count)
		}
	}
	if !math.IsInf(s.Buckets[2].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", s.Buckets[2].UpperBound)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `lat_ms_bucket{le="+Inf"} 0`) {
		t.Fatalf("exposition missing +Inf bucket:\n%s", buf.String())
	}
}

func TestHistogramBucketBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", []float64{10, 20})
	h.Observe(10) // exactly on the first bound: le="10" must include it
	h.Observe(10.0001)
	h.Observe(20)
	h.Observe(21) // beyond the last bound: only +Inf
	s := r.Snapshot()[0]
	wantCum := []uint64{1, 3, 4}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%v count=%d, want %d", b.UpperBound, b.Count, wantCum[i])
		}
	}
	if s.Count != 4 || s.Sum != 10+10.0001+20+21 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", DefBuckets)
	c := r.Counter("n")
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(float64(i % 100))
				c.Inc()
				if i%500 == 0 {
					r.Snapshot() // readers race with writers under -race
				}
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*each {
		t.Fatalf("observations = %d, want %d", got, workers*each)
	}
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
}

// promLine validates one exposition line: comment or `name{labels} value`.
var promLine = regexp.MustCompile(`^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* .+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [-+0-9.eEIinf]+)$`)

func TestWriteTextIsValidPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "scheduler", "capacity").Add(3)
	r.Counter("a_total", "scheduler", "opportunistic").Add(1)
	r.Gauge("b_depth").Set(-2)
	r.Histogram("c_ms", []float64{5, 50}).Observe(7)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	typeSeen := map[string]bool{}
	for _, ln := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !promLine.MatchString(ln) {
			t.Errorf("invalid exposition line: %q", ln)
		}
		if strings.HasPrefix(ln, "# TYPE ") {
			name := strings.Fields(ln)[2]
			if typeSeen[name] {
				t.Errorf("duplicate TYPE line for %s", name)
			}
			typeSeen[name] = true
		}
	}
	for _, want := range []string{
		`a_total{scheduler="capacity"} 3`,
		`b_depth -2`,
		`c_ms_bucket{le="50"} 1`,
		`c_ms_count 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("m")
	r.Gauge("m")
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.25, 2, 6)
	want := []float64{0.25, 0.5, 1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("len=%d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d]=%v want %v", i, got[i], want[i])
		}
	}
	if one := ExpBuckets(5, 10, 1); len(one) != 1 || one[0] != 5 {
		t.Errorf("n=1: %v", one)
	}

	// Sub-millisecond observations must be distinguishable, unlike with
	// DefBuckets whose first bound is 1 ms.
	r := NewRegistry()
	h := r.Histogram("fine_ms", ExpBuckets(0.25, 2, 8))
	h.Observe(0.3)
	h.Observe(0.9)
	snap := r.Snapshot()[0]
	if snap.Buckets[1].Count != 1 || snap.Buckets[2].Count != 2 {
		t.Errorf("sub-ms observations not separated: %+v", snap.Buckets)
	}
}

func TestExpBucketsPanics(t *testing.T) {
	for _, tc := range []struct {
		start, factor float64
		n             int
	}{
		{0, 2, 4}, {-1, 2, 4}, {1, 1, 4}, {1, 0.5, 4}, {1, 2, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExpBuckets(%v,%v,%d) did not panic", tc.start, tc.factor, tc.n)
				}
			}()
			ExpBuckets(tc.start, tc.factor, tc.n)
		}()
	}
}
