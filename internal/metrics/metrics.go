// Package metrics is a dependency-free instrumentation library: named
// counters, gauges, and fixed-bucket histograms collected in a Registry,
// with a structured snapshot API and Prometheus text-format exposition.
//
// Design rules, chosen for a hot simulator loop:
//
//   - Get-or-create: Registry.Counter/Gauge/Histogram return the existing
//     series when called twice with the same name and labels, so callers
//     never need registration bookkeeping.
//   - Nil-safety: every method on a nil *Counter, *Gauge, *Histogram or
//     *Registry is a no-op. Components hold metric pointers that are nil
//     until instrumented, and the increment sites stay unconditional.
//   - Counters and gauges are single atomics; histograms take a mutex
//     only around their fixed bucket array. All types are safe for
//     concurrent use (the -serve HTTP handlers read while a feeder
//     writes).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Series types as exposed in snapshots and the Prometheus TYPE line.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// DefBuckets are general-purpose millisecond-latency bucket upper bounds.
var DefBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// ExpBuckets returns n exponentially spaced bucket upper bounds:
// start, start*factor, ..., start*factor^(n-1). DefBuckets bottoms out at
// 1 ms, far too coarse for localization/launching delays that live in
// the sub-millisecond range on a warm cluster; component-delay
// histograms use e.g. ExpBuckets(0.25, 2, 20) to cover 0.25 ms .. ~2 min
// with constant relative resolution. start must be > 0, factor > 1, and
// n >= 1 (programming errors panic, matching the registry's style).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: ExpBuckets(%v, %v, %d) out of domain", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n panics: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic("metrics: counter decrement")
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bucket upper bounds
// are inclusive (Prometheus `le` semantics): an observation exactly on a
// boundary lands in that boundary's bucket. Observations above the last
// bound land only in the implicit +Inf bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []uint64  // len(bounds)+1; last is +Inf
	sum    float64
	total  uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v: inclusive upper bound
	h.counts[idx]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket holding the target rank, the same estimate
// Prometheus' histogram_quantile computes from the exposition. Values
// in the +Inf overflow bucket are clamped to the largest finite bound.
// Returns 0 on an empty (or nil) histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, b := range h.bounds {
		prev := cum
		cum += h.counts[i]
		if cum >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if h.counts[i] == 0 {
				return b
			}
			return lower + (b-lower)*float64(rank-prev)/float64(h.counts[i])
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	UpperBound float64 // +Inf for the overflow bucket
	Count      uint64  // observations <= UpperBound (cumulative)
}

// Snapshot is the point-in-time state of one series.
type Snapshot struct {
	Name   string
	Labels map[string]string
	Type   string

	// Value holds the counter/gauge reading.
	Value int64
	// Histogram state (Type == TypeHistogram only).
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

// series is one registered metric instance.
type series struct {
	name   string
	labels map[string]string
	key    string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named series grouped into families (one family per
// metric name; all series of a family share a type).
type Registry struct {
	mu       sync.Mutex
	families map[string]string // name -> type
	series   map[string]*series
	order    []string // series keys in registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]string), series: make(map[string]*series)}
}

// labelMap converts alternating key/value pairs.
func labelMap(kv []string) map[string]string {
	if len(kv)%2 != 0 {
		panic("metrics: odd label key/value list")
	}
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// get returns the series for (name, labels), creating it with mk when
// absent. Type mismatches across calls are programming errors and panic.
func (r *Registry) get(name, typ string, kv []string, mk func(*series)) *series {
	labels := labelMap(kv)
	key := name + labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.families[name]; ok && t != typ {
		panic(fmt.Sprintf("metrics: %s already registered as %s, requested %s", name, t, typ))
	}
	if s, ok := r.series[key]; ok {
		return s
	}
	s := &series{name: name, labels: labels, key: key}
	mk(s)
	r.families[name] = typ
	r.series[key] = s
	r.order = append(r.order, key)
	return s
}

// Counter returns the counter for name and the given label key/value
// pairs, creating it on first use. Nil receiver returns nil.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, TypeCounter, kv, func(s *series) { s.c = &Counter{} }).c
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, TypeGauge, kv, func(s *series) { s.g = &Gauge{} }).g
}

// Histogram returns the histogram for name and labels, creating it with
// the given bucket upper bounds on first use (later calls reuse the
// original buckets).
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, TypeHistogram, kv, func(s *series) { s.h = newHistogram(bounds) }).h
}

// Snapshot returns the current state of every series, in registration
// order. Histogram bucket counts are cumulative, like the exposition
// format. An empty (or nil) registry returns an empty slice.
func (r *Registry) Snapshot() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	ss := make([]*series, 0, len(keys))
	for _, k := range keys {
		ss = append(ss, r.series[k])
	}
	r.mu.Unlock()

	out := make([]Snapshot, 0, len(ss))
	for _, s := range ss {
		snap := Snapshot{Name: s.name, Labels: s.labels}
		switch {
		case s.c != nil:
			snap.Type = TypeCounter
			snap.Value = s.c.Value()
		case s.g != nil:
			snap.Type = TypeGauge
			snap.Value = s.g.Value()
		case s.h != nil:
			snap.Type = TypeHistogram
			s.h.mu.Lock()
			snap.Count = s.h.total
			snap.Sum = s.h.sum
			var cum uint64
			for i, b := range s.h.bounds {
				cum += s.h.counts[i]
				snap.Buckets = append(snap.Buckets, Bucket{UpperBound: b, Count: cum})
			}
			cum += s.h.counts[len(s.h.bounds)]
			snap.Buckets = append(snap.Buckets, Bucket{UpperBound: inf, Count: cum})
			s.h.mu.Unlock()
		}
		out = append(out, snap)
	}
	return out
}

var inf = math.Inf(1)

// formatFloat renders a float for the exposition format.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WriteText writes the registry in Prometheus text exposition format
// (version 0.0.4): one `# TYPE` line per family followed by its series.
func (r *Registry) WriteText(w io.Writer) error {
	snaps := r.Snapshot()
	// Group by family, preserving first-seen order.
	var famOrder []string
	byFam := map[string][]Snapshot{}
	for _, s := range snaps {
		if _, ok := byFam[s.Name]; !ok {
			famOrder = append(famOrder, s.Name)
		}
		byFam[s.Name] = append(byFam[s.Name], s)
	}
	for _, fam := range famOrder {
		group := byFam[fam]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, group[0].Type); err != nil {
			return err
		}
		for _, s := range group {
			if err := writeSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, s Snapshot) error {
	switch s.Type {
	case TypeCounter, TypeGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, labelString(s.Labels), s.Value)
		return err
	case TypeHistogram:
		for _, b := range s.Buckets {
			labels := make(map[string]string, len(s.Labels)+1)
			for k, v := range s.Labels {
				labels[k] = v
			}
			labels["le"] = formatFloat(b.UpperBound)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, labelString(labels), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", s.Name, labelString(s.Labels), s.Sum); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelString(s.Labels), s.Count)
		return err
	}
	return nil
}
