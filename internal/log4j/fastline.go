package log4j

import "strings"

// The streaming miner parses every line of every log file, so ParseLine's
// costs — time.ParseInLocation for the stamp and an fmt.Errorf allocation
// for each unparseable line — dominate the scan. ParseLineFast is the
// allocation-free twin: a fixed-offset byte decoder for the stamp and a
// boolean instead of an error. It accepts exactly the lines ParseLine
// accepts and produces an identical Line for them (property-tested in
// fastline_test.go); callers that need the error text keep ParseLine.

// ParseLineFast parses one log4j line without allocating. It returns
// ok=false exactly when ParseLine would return an error, and the same
// Line value when it would not.
func ParseLineFast(s string) (Line, bool) {
	if len(s) < 24 {
		return Line{}, false
	}
	ms, ok := parseStampFast(s)
	if !ok {
		return Line{}, false
	}
	rest := s[23:]
	i := 0
	for i < len(rest) && rest[i] == ' ' {
		i++
	}
	rest = rest[i:]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return Line{}, false
	}
	level := Level(rest[:sp])
	rest = rest[sp+1:]
	colon := strings.Index(rest, ": ")
	if colon < 0 {
		return Line{}, false
	}
	return Line{
		TimeMS:  ms,
		Level:   level,
		Class:   rest[:colon],
		Message: rest[colon+2:],
	}, true
}

// parseStampFast decodes the 23-byte "2006-01-02 15:04:05,000" prefix of
// s. ParseStamp's LastIndexByte comma split plus time.ParseInLocation is
// equivalent to: fixed separators at the layout offsets, all-digit
// fields, and the calendar ranges the time package enforces (months
// 1-12, day valid for the month and leap year, hour <= 23, minute and
// second <= 59 — a leap-second 60 is rejected there too). One time.Parse
// quirk survives the fixed 19-char length: a layout space matches one or
// more value spaces and the non-padded hour accepts a single digit, so
// "YYYY-MM-DD  H:MM:SS" (two spaces) is also a valid shape; every other
// combination changes the length and misplaces the comma.
func parseStampFast(s string) (int64, bool) {
	if s[4] != '-' || s[7] != '-' || s[10] != ' ' || s[13] != ':' || s[16] != ':' || s[19] != ',' {
		return 0, false
	}
	year, ok := stampField(s, 0, 4)
	if !ok {
		return 0, false
	}
	month, ok := stampField(s, 5, 7)
	if !ok || month < 1 || month > 12 {
		return 0, false
	}
	day, ok := stampField(s, 8, 10)
	if !ok || day < 1 || day > daysInMonth(year, month) {
		return 0, false
	}
	var hour int
	if s[11] == ' ' {
		if s[12] < '0' || s[12] > '9' {
			return 0, false
		}
		hour = int(s[12] - '0')
	} else {
		hour, ok = stampField(s, 11, 13)
		if !ok || hour > 23 {
			return 0, false
		}
	}
	min, ok := stampField(s, 14, 16)
	if !ok || min > 59 {
		return 0, false
	}
	sec, ok := stampField(s, 17, 19)
	if !ok || sec > 59 {
		return 0, false
	}
	millis, ok := stampField(s, 20, 23)
	if !ok {
		return 0, false
	}
	return epochDays(year, month, day)*86400_000 +
		int64(hour)*3600_000 + int64(min)*60_000 + int64(sec)*1000 + int64(millis), true
}

func stampField(s string, i, j int) (int, bool) {
	n := 0
	for ; i < j; i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func daysInMonth(year, month int) int {
	switch month {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	}
	if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
		return 29
	}
	return 28
}

// epochDays counts days from 1970-01-01 to the given civil date
// (proleptic Gregorian; the standard days-from-civil computation).
func epochDays(year, month, day int) int64 {
	y := year
	if month <= 2 {
		y--
	}
	era := y / 400
	if y < 0 && y%400 != 0 {
		era--
	}
	yoe := y - era*400
	mp := month - 3
	if month <= 2 {
		mp = month + 9
	}
	doy := (153*mp+2)/5 + day - 1
	doe := int64(yoe)*365 + int64(yoe/4) - int64(yoe/100) + int64(doy)
	return int64(era)*146097 + doe - 719468
}
