package log4j

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestStampFormat(t *testing.T) {
	c := Clock{EpochMS: 1499000000000} // 2017-07-02 12:53:20 UTC
	got := c.Stamp(0)
	if got != "2017-07-02 12:53:20,000" {
		t.Fatalf("stamp=%q", got)
	}
	if got := c.Stamp(1234); got != "2017-07-02 12:53:21,234" {
		t.Fatalf("stamp(+1234)=%q", got)
	}
}

func TestParseStampRoundTrip(t *testing.T) {
	c := Clock{EpochMS: 1499000000000}
	for _, offset := range []sim.Time{0, 1, 999, 1000, 86_400_000, 12_345_678} {
		s := c.Stamp(offset)
		ms, err := ParseStamp(s)
		if err != nil {
			t.Fatalf("ParseStamp(%q): %v", s, err)
		}
		if ms != c.EpochMS+int64(offset) {
			t.Fatalf("round trip %q: got %d, want %d", s, ms, c.EpochMS+int64(offset))
		}
	}
}

func TestPropertyStampRoundTrip(t *testing.T) {
	c := Clock{EpochMS: 1499000000000}
	f := func(offset uint32) bool {
		s := c.Stamp(sim.Time(offset))
		ms, err := ParseStamp(s)
		return err == nil && ms == c.EpochMS+int64(offset)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseStampErrors(t *testing.T) {
	for _, bad := range []string{"", "2017-07-02 13:33:20", "2017-07-02 13:33:20.000", "garbage,123", "2017-07-02 13:33:20,abc"} {
		if _, err := ParseStamp(bad); err == nil {
			t.Errorf("ParseStamp(%q) accepted", bad)
		}
	}
}

func TestParseLine(t *testing.T) {
	raw := "2017-07-02 12:53:21,234 INFO org.apache.hadoop.yarn.server.resourcemanager.rmapp.RMAppImpl: application_1 State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"
	l, err := ParseLine(raw)
	if err != nil {
		t.Fatal(err)
	}
	if l.Level != Info {
		t.Fatalf("level=%q", l.Level)
	}
	if !strings.HasSuffix(l.Class, "RMAppImpl") {
		t.Fatalf("class=%q", l.Class)
	}
	if !strings.HasPrefix(l.Message, "application_1 State change") {
		t.Fatalf("message=%q", l.Message)
	}
	if l.TimeMS != 1499000001234 {
		t.Fatalf("time=%d", l.TimeMS)
	}
}

func TestLineFormatParseRoundTrip(t *testing.T) {
	l := Line{TimeMS: 1499000001234, Level: Warn, Class: "a.b.C", Message: "hello: world"}
	got, err := ParseLine(l.Format())
	if err != nil {
		t.Fatal(err)
	}
	if got != l {
		t.Fatalf("round trip: got %+v, want %+v", got, l)
	}
}

func TestParseLineRejectsJunk(t *testing.T) {
	for _, bad := range []string{"", "short", "java.lang.NullPointerException", "\tat org.apache.Foo.bar(Foo.java:42)"} {
		if _, err := ParseLine(bad); err == nil {
			t.Errorf("ParseLine(%q) accepted", bad)
		}
	}
}

func TestSinkLoggerAndOrdering(t *testing.T) {
	eng := sim.NewEngine()
	sink := NewSink(eng, Clock{EpochMS: 1499000000000})
	rm := sink.Logger("rm.log", "a.RMAppImpl")
	nm := sink.Logger("nm.log", "a.ContainerImpl")
	eng.At(10, func() { rm.Infof("first %d", 1) })
	eng.At(20, func() { nm.Warnf("warn") })
	eng.At(30, func() { rm.Errorf("boom") })
	eng.Run()

	if got := sink.Files(); len(got) != 2 || got[0] != "rm.log" {
		t.Fatalf("files=%v", got)
	}
	lines := sink.Lines("rm.log")
	if len(lines) != 2 {
		t.Fatalf("rm.log has %d lines", len(lines))
	}
	l0, err := ParseLine(lines[0])
	if err != nil || l0.Message != "first 1" || l0.Level != Info {
		t.Fatalf("line0=%+v err=%v", l0, err)
	}
	l1, _ := ParseLine(lines[1])
	if l1.Level != Error {
		t.Fatalf("line1 level=%q", l1.Level)
	}
	if sink.TotalLines() != 3 {
		t.Fatalf("total=%d", sink.TotalLines())
	}
}

func TestSinkReader(t *testing.T) {
	eng := sim.NewEngine()
	sink := NewSink(eng, Clock{EpochMS: 0})
	sink.Logger("f.log", "C").Infof("x")
	sc := bufio.NewScanner(sink.Reader("f.log"))
	n := 0
	for sc.Scan() {
		if sc.Text() != "" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("reader yielded %d lines", n)
	}
}

func TestWriteDirRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	sink := NewSink(eng, Clock{EpochMS: 1499000000000})
	sink.Logger("hadoop/rm.log", "C").Infof("hello")
	sink.Logger("userlogs/app/container_1_0001_01_000001/stderr", "D").Infof("world")

	dir := t.TempDir()
	if err := sink.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "hadoop", "rm.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "hello") {
		t.Fatalf("rm.log content: %q", data)
	}
	if _, err := os.Stat(filepath.Join(dir, "userlogs", "app", "container_1_0001_01_000001", "stderr")); err != nil {
		t.Fatal(err)
	}
}
