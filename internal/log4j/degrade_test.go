package log4j

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func degradedSink(cfg DegradeConfig) *Sink {
	s := NewSink(sim.NewEngine(), Clock{EpochMS: 1499000000000})
	s.Degrade(cfg)
	return s
}

func emitN(s *Sink, file string, n int) {
	log := s.Logger(file, "org.test.Class")
	for i := 0; i < n; i++ {
		log.Infof("message number %d with some padding to allow cuts", i)
	}
}

func TestDegradeZeroConfigIsTransparent(t *testing.T) {
	s := degradedSink(DegradeConfig{})
	emitN(s, "a.log", 10)
	if got := len(s.Lines("a.log")); got != 10 {
		t.Fatalf("zero config changed line count: got %d, want 10", got)
	}
}

func TestDegradeDropLosesLines(t *testing.T) {
	s := degradedSink(DegradeConfig{DropProb: 0.5, Seed: 7})
	emitN(s, "a.log", 200)
	got := len(s.Lines("a.log"))
	if got >= 200 || got == 0 {
		t.Fatalf("drop 0.5 kept %d of 200 lines", got)
	}
}

func TestDegradeTruncateCutsLines(t *testing.T) {
	s := degradedSink(DegradeConfig{TruncateProb: 1, Seed: 7})
	emitN(s, "a.log", 50)
	lines := s.Lines("a.log")
	if len(lines) != 50 {
		t.Fatalf("truncate changed line count: %d", len(lines))
	}
	short := 0
	for _, l := range lines {
		if !strings.HasSuffix(l, "cuts") {
			short++
		}
	}
	if short == 0 {
		t.Fatal("truncate 1.0 cut no lines")
	}
}

func TestDegradeTearGluesHalves(t *testing.T) {
	s := degradedSink(DegradeConfig{TearProb: 1, Seed: 7})
	emitN(s, "a.log", 20)
	lines := s.Lines("a.log")
	// Every line is torn, so each stored line after the first carries the
	// previous line's tail glued on. Total bytes are conserved.
	var stored, emitted int
	for _, l := range lines {
		stored += len(l)
	}
	s2 := degradedSink(DegradeConfig{})
	emitN(s2, "a.log", 20)
	for _, l := range s2.Lines("a.log") {
		emitted += len(l)
	}
	// The last torn tail is still pending, so stored <= emitted.
	if stored > emitted || stored == 0 {
		t.Fatalf("tear bytes: stored %d, emitted %d", stored, emitted)
	}
	glued := 0
	for _, l := range lines[1:] {
		if _, err := ParseLine(l); err != nil {
			glued++
		}
	}
	if glued == 0 {
		t.Fatal("tear 1.0 produced no glued unparseable lines")
	}
}

func TestDegradeSkewShiftsWholeFileConstantly(t *testing.T) {
	s := degradedSink(DegradeConfig{SkewMaxMs: 5000, Seed: 3})
	emitN(s, "a.log", 5)
	clean := degradedSink(DegradeConfig{})
	emitN(clean, "a.log", 5)

	var offset int64
	for i, l := range s.Lines("a.log") {
		got, err := ParseLine(l)
		if err != nil {
			t.Fatalf("skewed line %d unparseable: %v", i, err)
		}
		want, _ := ParseLine(clean.Lines("a.log")[i])
		d := got.TimeMS - want.TimeMS
		if i == 0 {
			offset = d
		} else if d != offset {
			t.Fatalf("skew not constant within file: line %d offset %d, want %d", i, d, offset)
		}
	}
	if offset == 0 {
		t.Log("drawn skew was 0; acceptable but not exercising the shift")
	}
	if offset < -5000 || offset > 5000 {
		t.Fatalf("skew %d outside ±5000ms", offset)
	}
}

func TestDegradeGarbageInsertsNoise(t *testing.T) {
	s := degradedSink(DegradeConfig{GarbageProb: 1, Seed: 7})
	emitN(s, "a.log", 10)
	lines := s.Lines("a.log")
	if len(lines) != 20 {
		t.Fatalf("garbage 1.0: got %d lines, want 20", len(lines))
	}
	if _, err := ParseLine(lines[0]); err == nil {
		t.Fatal("expected first line to be unparseable garbage")
	}
}

func TestDegradeDeterministic(t *testing.T) {
	cfg := DegradeConfig{DropProb: 0.2, TruncateProb: 0.2, TearProb: 0.2, SkewMaxMs: 1000, GarbageProb: 0.1, Seed: 42}
	a, b := degradedSink(cfg), degradedSink(cfg)
	for _, s := range []*Sink{a, b} {
		emitN(s, "x.log", 100)
		emitN(s, "y.log", 100)
	}
	for _, f := range []string{"x.log", "y.log"} {
		la, lb := a.Lines(f), b.Lines(f)
		if len(la) != len(lb) {
			t.Fatalf("%s: nondeterministic line count %d vs %d", f, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("%s line %d differs:\n%q\n%q", f, i, la[i], lb[i])
			}
		}
	}
}

func TestDegradePerFileStreamsIndependent(t *testing.T) {
	cfg := DegradeConfig{DropProb: 0.5, Seed: 9}
	// Writing to file B between writes to file A must not change what
	// happens to A's lines.
	a := degradedSink(cfg)
	emitN(a, "a.log", 50)
	b := degradedSink(cfg)
	ba := b.Logger("a.log", "org.test.Class")
	bb := b.Logger("b.log", "org.test.Class")
	for i := 0; i < 50; i++ {
		ba.Infof("message number %d with some padding to allow cuts", i)
		bb.Infof("message number %d with some padding to allow cuts", i)
	}
	la, lb := a.Lines("a.log"), b.Lines("a.log")
	if len(la) != len(lb) {
		t.Fatalf("interleaving changed a.log: %d vs %d lines", len(la), len(lb))
	}
}
