// Package log4j emits and parses log lines in the format produced by the
// log4j library that both Hadoop/YARN and Spark use:
//
//	2017-07-02 10:00:00,123 INFO org.apache...RMAppImpl: <message>
//
// Timestamps have 1 ms precision — the paper notes this is therefore also
// the precision of SDchecker. The simulator writes through Sink so that a
// whole cluster's worth of daemon and container logs can be kept in memory
// during tests or spilled to a directory tree for the sdchecker CLI.
package log4j

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// Level is a log severity. The simulator emits INFO like the real daemons
// do for state transitions.
type Level string

// Severity levels in the log4j vocabulary.
const (
	Info  Level = "INFO"
	Warn  Level = "WARN"
	Error Level = "ERROR"
	Debug Level = "DEBUG"
)

// Clock converts virtual sim time to wall-clock timestamps. EpochMS is the
// real epoch millisecond corresponding to sim time 0 (typically the
// cluster start timestamp embedded in YARN IDs).
type Clock struct {
	EpochMS int64
}

// Stamp renders the log4j timestamp for a virtual instant.
func (c Clock) Stamp(t sim.Time) string {
	ms := c.EpochMS + int64(t)
	wall := time.UnixMilli(ms).UTC()
	return fmt.Sprintf("%s,%03d", wall.Format("2006-01-02 15:04:05"), ms%1000)
}

// ParseStamp inverts Stamp, returning epoch milliseconds.
func ParseStamp(s string) (int64, error) {
	// Layout: "2006-01-02 15:04:05,000" — split the millis off manually
	// because Go's reference layout has no comma separator for millis.
	comma := strings.LastIndexByte(s, ',')
	if comma < 0 || len(s)-comma != 4 {
		return 0, fmt.Errorf("log4j: malformed timestamp %q", s)
	}
	base, err := time.ParseInLocation("2006-01-02 15:04:05", s[:comma], time.UTC)
	if err != nil {
		return 0, fmt.Errorf("log4j: malformed timestamp %q: %v", s, err)
	}
	var millis int
	for _, r := range s[comma+1:] {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("log4j: malformed millis in %q", s)
		}
		millis = millis*10 + int(r-'0')
	}
	return base.UnixMilli() + int64(millis), nil
}

// Line is one parsed log line.
type Line struct {
	TimeMS  int64 // epoch milliseconds
	Level   Level
	Class   string
	Message string
}

// Format renders the line in log4j layout.
func (l Line) Format() string {
	wall := time.UnixMilli(l.TimeMS).UTC()
	return fmt.Sprintf("%s,%03d %s %s: %s",
		wall.Format("2006-01-02 15:04:05"), l.TimeMS%1000, l.Level, l.Class, l.Message)
}

// ParseLine parses a log4j-layout line. Lines that do not match (stack
// traces, stdout noise) return an error; SDchecker skips them.
func ParseLine(s string) (Line, error) {
	// <date> <time,SSS> <LEVEL> <class>: <message>
	if len(s) < 24 {
		return Line{}, fmt.Errorf("log4j: line too short: %q", s)
	}
	stamp := s[:23]
	ms, err := ParseStamp(stamp)
	if err != nil {
		return Line{}, err
	}
	rest := strings.TrimLeft(s[23:], " ")
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return Line{}, fmt.Errorf("log4j: missing level in %q", s)
	}
	level := Level(rest[:sp])
	rest = rest[sp+1:]
	colon := strings.Index(rest, ": ")
	if colon < 0 {
		return Line{}, fmt.Errorf("log4j: missing class separator in %q", s)
	}
	return Line{
		TimeMS:  ms,
		Level:   level,
		Class:   rest[:colon],
		Message: rest[colon+2:],
	}, nil
}

// Sink collects log lines grouped by logical file path (e.g.
// "yarn/yarn-resourcemanager.log" or
// "userlogs/application_X_0001/container_X_0001_01_000002/stdout").
type Sink struct {
	clock Clock
	eng   *sim.Engine
	files map[string][]string
	order []string
	deg   *degrader
}

// NewSink creates a sink stamping lines with eng's clock mapped through
// clock.
func NewSink(eng *sim.Engine, clock Clock) *Sink {
	return &Sink{clock: clock, eng: eng, files: make(map[string][]string)}
}

// Clock returns the wall-clock mapping used by the sink.
func (s *Sink) Clock() Clock { return s.clock }

// Logger returns a logger bound to one file and emitting class.
func (s *Sink) Logger(file, class string) *Logger {
	return &Logger{sink: s, file: file, class: class}
}

// Degrade installs a lossy-collection model on the sink: every line
// subsequently appended passes through cfg's drop/truncate/tear/skew
// transformations before being stored. A zero config removes the model.
func (s *Sink) Degrade(cfg DegradeConfig) {
	if !cfg.enabled() {
		s.deg = nil
		return
	}
	s.deg = newDegrader(cfg)
}

// Append writes a raw line to file (used by Logger). With a degradation
// model installed, the line may be dropped, cut, torn across writes, or
// time-shifted on the way in.
func (s *Sink) Append(file, line string) {
	if s.deg != nil {
		for _, raw := range s.deg.transform(file, line) {
			s.append(file, raw)
		}
		return
	}
	s.append(file, line)
}

func (s *Sink) append(file, line string) {
	if _, ok := s.files[file]; !ok {
		s.order = append(s.order, file)
	}
	s.files[file] = append(s.files[file], line)
}

// Files returns the logical file paths in first-write order.
func (s *Sink) Files() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Lines returns the raw lines of one file (nil if absent; not a copy).
func (s *Sink) Lines(file string) []string { return s.files[file] }

// TotalLines returns the number of lines across all files.
func (s *Sink) TotalLines() int {
	var n int
	for _, ls := range s.files {
		n += len(ls)
	}
	return n
}

// Reader returns an io.Reader over one file's content.
func (s *Sink) Reader(file string) io.Reader {
	return strings.NewReader(strings.Join(s.files[file], "\n") + "\n")
}

// WriteDir materializes all files under dir, creating subdirectories as
// needed. This is what cmd/simcluster uses to hand a log tree to the
// sdchecker CLI.
func (s *Sink) WriteDir(dir string) error {
	files := append([]string(nil), s.order...)
	sort.Strings(files)
	for _, f := range files {
		path := filepath.Join(dir, filepath.FromSlash(f))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("log4j: %w", err)
		}
		w, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("log4j: %w", err)
		}
		bw := bufio.NewWriter(w)
		for _, line := range s.files[f] {
			bw.WriteString(line)
			bw.WriteByte('\n')
		}
		if err := bw.Flush(); err != nil {
			w.Close()
			return fmt.Errorf("log4j: flushing %s: %w", path, err)
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("log4j: closing %s: %w", path, err)
		}
	}
	return nil
}

// Logger emits lines for a fixed (file, class) pair, stamped with the
// engine's current virtual time.
type Logger struct {
	sink  *Sink
	file  string
	class string
}

// Infof logs at INFO, the level YARN state machines log transitions at.
func (l *Logger) Infof(format string, args ...any) {
	l.logf(Info, format, args...)
}

// Warnf logs at WARN.
func (l *Logger) Warnf(format string, args ...any) {
	l.logf(Warn, format, args...)
}

// Errorf logs at ERROR.
func (l *Logger) Errorf(format string, args ...any) {
	l.logf(Error, format, args...)
}

func (l *Logger) logf(level Level, format string, args ...any) {
	stamp := l.sink.clock.Stamp(l.sink.eng.Now())
	msg := fmt.Sprintf(format, args...)
	l.sink.Append(l.file, fmt.Sprintf("%s %s %s: %s", stamp, level, l.class, msg))
}

// Class returns the emitting class name.
func (l *Logger) Class() string { return l.class }

// File returns the destination file path.
func (l *Logger) File() string { return l.file }
