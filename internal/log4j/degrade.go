package log4j

import (
	"hash/fnv"

	"repro/internal/rng"
	"repro/internal/sim"
)

// DegradeConfig models lossy, real-world log collection: the paper mines
// logs scp'd off a live 26-node cluster, where rotated files lose lines,
// crashed daemons leave torn partial writes, and per-node clocks drift.
// A degraded sink reproduces those defects deterministically so the miner
// can be tested against them.
//
// All probabilities are per line. The zero value disables everything.
type DegradeConfig struct {
	// DropProb silently discards the line (log rotation, lost packets in
	// a forwarding pipeline).
	DropProb float64
	// TruncateProb cuts the line at a uniformly random byte (a writer
	// killed mid-line, or a collector copying a file as it is appended).
	TruncateProb float64
	// TearProb splits the line: the first half is written now and the
	// second half is glued (without a newline) onto the front of the next
	// line written to the same file — a torn write interleaving two
	// records.
	TearProb float64
	// SkewMaxMs, when > 0, applies a constant per-file clock offset drawn
	// uniformly from [-SkewMaxMs, +SkewMaxMs] to every timestamp —
	// modeling unsynchronized node clocks.
	SkewMaxMs int64
	// GarbageProb inserts a non-log4j noise line (a stack-trace fragment)
	// before the line, like the stdout noise real daemon logs carry.
	GarbageProb float64
	// Seed drives the deterministic per-file degradation streams.
	Seed uint64
}

// enabled reports whether any degradation is configured.
func (c DegradeConfig) enabled() bool {
	return c.DropProb > 0 || c.TruncateProb > 0 || c.TearProb > 0 ||
		c.SkewMaxMs > 0 || c.GarbageProb > 0
}

// garbageLines are the noise fragments GarbageProb injects; they mimic
// the unstamped continuation lines of real Java stack traces.
var garbageLines = []string{
	"\tat org.apache.hadoop.ipc.Client$Connection.handleConnectionFailure(Client.java:891)",
	"java.net.ConnectException: Connection refused",
	"\t... 12 more",
	"Caused by: java.io.IOException: Broken pipe",
	"#### stray stdout from user code ####",
}

// degrader corrupts lines on their way into a Sink. Each file gets its
// own forked RNG stream and skew offset, so degradation is a pure
// function of (config, file, line sequence) — reruns are byte-identical.
type degrader struct {
	cfg  DegradeConfig
	root *rng.Source
	per  map[string]*fileDegrade
}

type fileDegrade struct {
	rng    *rng.Source
	skewMS int64
	tail   string // second half of a torn line, pending the next write
}

func newDegrader(cfg DegradeConfig) *degrader {
	return &degrader{cfg: cfg, root: rng.New(cfg.Seed ^ 0xdead10cc), per: make(map[string]*fileDegrade)}
}

func (d *degrader) file(name string) *fileDegrade {
	fd := d.per[name]
	if fd == nil {
		h := fnv.New64a()
		h.Write([]byte(name))
		fd = &fileDegrade{rng: d.root.Fork(h.Sum64())}
		if d.cfg.SkewMaxMs > 0 {
			fd.skewMS = fd.rng.Int63n(2*d.cfg.SkewMaxMs+1) - d.cfg.SkewMaxMs
		}
		d.per[name] = fd
	}
	return fd
}

// transform maps one intended line to the zero or more raw lines actually
// written to the file.
func (d *degrader) transform(file, line string) []string {
	fd := d.file(file)
	var out []string
	if d.cfg.GarbageProb > 0 && fd.rng.Float64() < d.cfg.GarbageProb {
		out = append(out, garbageLines[fd.rng.Intn(len(garbageLines))])
	}
	if fd.skewMS != 0 {
		line = skewStamp(line, fd.skewMS)
	}
	// A pending torn tail glues onto the front of this write.
	if fd.tail != "" {
		line = fd.tail + line
		fd.tail = ""
	}
	switch {
	case d.cfg.DropProb > 0 && fd.rng.Float64() < d.cfg.DropProb:
		return out // line lost
	case d.cfg.TruncateProb > 0 && fd.rng.Float64() < d.cfg.TruncateProb && len(line) > 1:
		cut := 1 + fd.rng.Intn(len(line)-1)
		out = append(out, line[:cut])
	case d.cfg.TearProb > 0 && fd.rng.Float64() < d.cfg.TearProb && len(line) > 1:
		cut := 1 + fd.rng.Intn(len(line)-1)
		out = append(out, line[:cut])
		fd.tail = line[cut:]
	default:
		out = append(out, line)
	}
	return out
}

// skewStamp shifts the leading log4j timestamp of line by ms. Lines that
// do not start with a parseable stamp pass through unchanged.
func skewStamp(line string, ms int64) string {
	if len(line) < 23 {
		return line
	}
	t, err := ParseStamp(line[:23])
	if err != nil {
		return line
	}
	return Clock{EpochMS: 0}.Stamp(sim.Time(t+ms)) + line[23:]
}
