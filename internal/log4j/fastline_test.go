package log4j

import (
	"fmt"
	"math/rand"
	"testing"
)

// diffLine asserts ParseLineFast agrees with ParseLine on s: same
// accept/reject decision and, on accept, an identical Line.
func diffLine(t *testing.T, s string) {
	t.Helper()
	want, err := ParseLine(s)
	got, ok := ParseLineFast(s)
	if ok != (err == nil) {
		t.Fatalf("ParseLineFast(%q) ok=%v, ParseLine err=%v", s, ok, err)
	}
	if ok && got != want {
		t.Fatalf("ParseLineFast(%q) = %+v, ParseLine = %+v", s, got, want)
	}
}

func TestParseLineFastMatchesParseLine(t *testing.T) {
	cases := []string{
		"2017-06-27 10:15:30,123 INFO org.example.Class: hello",
		"2017-06-27 10:15:30,123  INFO  org.example.Class: hello",
		"2017-06-27 10:15:30,123 INFO noseparator",
		"2017-06-27 10:15:30,123 INFOnospace",
		"2017-06-27 10:15:30,123",
		"2017-06-27 10:15:30,12a INFO C: m",
		"2017-06-27 10:15:3a,123 INFO C: m",
		"2017-06-27 10:15:60,123 INFO C: m", // leap second: time pkg rejects
		"2017-06-27 10:60:30,123 INFO C: m",
		"2017-06-27 24:15:30,123 INFO C: m",
		"2017-06-27 00:00:00,000 INFO C: m",
		"2017-02-29 10:15:30,123 INFO C: m", // not a leap year
		"2016-02-29 10:15:30,123 INFO C: m", // leap year
		"2000-02-29 10:15:30,123 INFO C: m",
		"1900-02-28 10:15:30,123 INFO C: m",
		"0000-01-01 00:00:00,000 INFO C: m",
		"9999-12-31 23:59:59,999 INFO C: m",
		"2017-13-01 10:15:30,123 INFO C: m",
		"2017-00-01 10:15:30,123 INFO C: m",
		"2017-06-00 10:15:30,123 INFO C: m",
		"2017-06-31 10:15:30,123 INFO C: m",
		"2017-06-27T10:15:30,123 INFO C: m",
		"2017-06-27 10:15:30.123 INFO C: m",
		"2017-06-27 10:15:30,,23 INFO C: m",
		"2017,06-27 10:15:30,123 INFO C: m",
		"",
		"short",
		"2017-06-27 10:15:30,123 ",
		"2017-06-27 10:15:30,123 WARN a.b: ",
		"2017-06-27 10:15:30,123 WARN : msg",
	}
	for _, s := range cases {
		diffLine(t, s)
	}
	// Round-trip every formatted stamp across a broad sweep of instants.
	for ms := int64(0); ms < 4_000_000_000_000; ms += 777_777_777 {
		diffLine(t, Line{TimeMS: ms, Level: Info, Class: "a.B", Message: "m"}.Format())
	}
}

func TestParseLineFastRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	alphabet := []byte("0123456789-: ,INFOabc.\n\t\xff")
	for i := 0; i < 200_000; i++ {
		n := rng.Intn(40)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		diffLine(t, string(b))
		// Mutations of a valid line hit the stamp-validation branches far
		// more often than fully random bytes do.
		s := []byte(fmt.Sprintf("%04d-%02d-%02d %02d:%02d:%02d,%03d INFO a.B: m",
			rng.Intn(3000), rng.Intn(15), rng.Intn(35), rng.Intn(30), rng.Intn(70), rng.Intn(70), rng.Intn(1000)))
		s[rng.Intn(len(s))] = alphabet[rng.Intn(len(alphabet))]
		diffLine(t, string(s))
	}
}

func TestParseLineFastAllocs(t *testing.T) {
	valid := "2017-06-27 10:15:30,123 INFO org.example.Class: hello world"
	garbage := "not a log4j line at all, but long enough to pass the length gate"
	for _, s := range []string{valid, garbage} {
		if n := testing.AllocsPerRun(200, func() {
			ParseLineFast(s)
		}); n != 0 {
			t.Errorf("ParseLineFast(%q) allocates %v per call", s, n)
		}
	}
}
