package obs

import (
	"strconv"
	"sync"

	"repro/internal/metrics"
)

// Watchdog is the pipeline stall detector. The serve loop brackets each
// ingestion pass with ScanBegin/ScanEnd and periodically reports
// per-shard progress; an independent checker goroutine calls Check. A
// stall is either a scan that has not made progress for stallAfterMS
// (stuck mid-scan or loop dead) or a shard whose queue is non-empty
// while its processed-batch counter stands still.
//
// On the healthy→stalled edge the watchdog records the stall in the
// flight recorder, snapshots it exactly once per stall episode, and
// delivers the snapshot through the registered hook (the server flips
// /healthz to degraded and keeps the dump). Recovery re-arms the
// snapshot for the next episode.
type Watchdog struct {
	pl           *Pipeline
	stallAfterMS int64

	mu             sync.Mutex
	started        bool  // saw at least one ScanBegin
	scanStartMS    int64 // nonzero while a scan is in flight
	lastProgressMS int64
	shardProcessed []int64
	shardStuckMS   []int64 // 0 = not currently stuck
	shardStuck     int     // index of a stuck shard, -1 otherwise
	stalled        bool
	reason         string
	snapped        bool // snapshot already taken this episode
	lastDump       []byte
	lastSnapSeq    uint64 // flight seq of the last flight_snapshot event
	onSnapshot     func([]byte)

	stalledG  *metrics.Gauge   // obs_watchdog_stalled
	checks    *metrics.Counter // obs_watchdog_checks_total
	snapshots *metrics.Counter // obs_flight_snapshots_total
	stalls    *metrics.Counter // obs_watchdog_stalls_total
}

// NewWatchdog builds a watchdog over pl that declares a stall after
// stallAfterMS without progress. reg may be nil.
func NewWatchdog(pl *Pipeline, reg *metrics.Registry, stallAfterMS int64) *Watchdog {
	return &Watchdog{
		pl:           pl,
		stallAfterMS: stallAfterMS,
		shardStuck:   -1,
		stalledG:     reg.Gauge("obs_watchdog_stalled"),
		checks:       reg.Counter("obs_watchdog_checks_total"),
		snapshots:    reg.Counter("obs_flight_snapshots_total"),
		stalls:       reg.Counter("obs_watchdog_stalls_total"),
	}
}

// OnSnapshot registers the hook receiving the automatic flight dump,
// called at most once per stall episode. The hook runs on the checker
// goroutine under the watchdog's lock and must not call back in.
// Install it before the checker starts.
func (w *Watchdog) OnSnapshot(fn func([]byte)) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.onSnapshot = fn
	w.mu.Unlock()
}

// ScanBegin marks the start of one serve-loop ingestion pass.
func (w *Watchdog) ScanBegin(nowMS int64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.started = true
	w.scanStartMS = nowMS
	w.lastProgressMS = nowMS
	w.mu.Unlock()
}

// ScanEnd marks the end of the pass started by ScanBegin.
func (w *Watchdog) ScanEnd(nowMS int64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.scanStartMS = 0
	w.lastProgressMS = nowMS
	w.mu.Unlock()
}

// ObserveShards folds one per-shard progress sample in: queued[i] is
// shard i's queue depth, processed[i] its cumulative processed-batch
// count. A shard with work queued whose counter stands still across
// samples spanning stallAfterMS is stuck.
func (w *Watchdog) ObserveShards(queued []int, processed []int64, nowMS int64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if len(w.shardProcessed) != len(processed) {
		w.shardProcessed = make([]int64, len(processed))
		copy(w.shardProcessed, processed)
		w.shardStuckMS = make([]int64, len(processed))
	}
	w.shardStuck = -1
	for i := range processed {
		switch {
		case i < len(queued) && queued[i] > 0 && processed[i] == w.shardProcessed[i]:
			if w.shardStuckMS[i] == 0 {
				w.shardStuckMS[i] = nowMS
			} else if nowMS-w.shardStuckMS[i] > w.stallAfterMS && w.shardStuck < 0 {
				w.shardStuck = i
			}
		default:
			w.shardStuckMS[i] = 0
		}
		w.shardProcessed[i] = processed[i]
	}
	w.mu.Unlock()
}

// Check evaluates the stall conditions at nowMS and drives the
// healthy↔stalled transitions. It returns the current verdict.
func (w *Watchdog) Check(nowMS int64) (stalled bool, reason string) {
	if w == nil {
		return false, ""
	}
	w.checks.Inc()
	w.mu.Lock()
	defer w.mu.Unlock()
	reason = ""
	if w.started {
		if w.scanStartMS != 0 && nowMS-w.scanStartMS > w.stallAfterMS {
			reason = "scan in flight for " + strconv.FormatInt(nowMS-w.scanStartMS, 10) + "ms"
		} else if w.scanStartMS == 0 && nowMS-w.lastProgressMS > w.stallAfterMS {
			reason = "no scan for " + strconv.FormatInt(nowMS-w.lastProgressMS, 10) + "ms"
		}
	}
	if reason == "" && w.shardStuck >= 0 {
		reason = "shard " + strconv.Itoa(w.shardStuck) + " queue not draining"
	}

	switch {
	case reason != "" && !w.stalled:
		w.stalled, w.reason = true, reason
		w.stalledG.Set(1)
		w.stalls.Inc()
		w.pl.Flight().Record(Event{AtMS: nowMS, Kind: KindStall, Shard: -1, Detail: reason})
		if !w.snapped {
			w.snapped = true
			w.lastDump = w.pl.FlightDump().JSON()
			w.lastSnapSeq = w.pl.Flight().Record(Event{AtMS: nowMS, Kind: KindSnapshot, Shard: -1, N: int64(len(w.lastDump))})
			w.snapshots.Inc()
			if h := w.onSnapshot; h != nil {
				h(w.lastDump)
			}
		}
	case reason == "" && w.stalled:
		w.stalled, w.reason = false, ""
		w.snapped = false
		w.stalledG.Set(0)
		w.pl.Flight().Record(Event{AtMS: nowMS, Kind: KindRecover, Shard: -1})
	}
	return w.stalled, w.reason
}

// Stalled returns the current verdict and its reason.
func (w *Watchdog) Stalled() (bool, string) {
	if w == nil {
		return false, ""
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stalled, w.reason
}

// Snapshots returns how many automatic flight snapshots were taken.
func (w *Watchdog) Snapshots() int64 {
	if w == nil {
		return 0
	}
	return w.snapshots.Value()
}

// Episodes returns how many distinct stall episodes the watchdog has
// declared (the healthy→stalled edge count).
func (w *Watchdog) Episodes() int64 {
	if w == nil {
		return 0
	}
	return w.stalls.Value()
}

// LastSnapshotSeq returns the flight-recorder sequence number of the
// most recent automatic snapshot event (0 when none was taken yet).
func (w *Watchdog) LastSnapshotSeq() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSnapSeq
}

// LastDump returns the most recent automatic flight snapshot (nil when
// none was taken yet).
func (w *Watchdog) LastDump() []byte {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastDump
}
