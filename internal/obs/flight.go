package obs

import (
	"encoding/json"
	"sync"

	"repro/internal/metrics"
)

// Flight event kinds: the closed vocabulary of the flight recorder.
// Everything an operator needs to reconstruct "what was the pipeline
// doing just before the anomaly" is one of these.
const (
	KindStage        = "stage"            // one stage batch completed
	KindForward      = "forward"          // events forwarded across shards
	KindHook         = "hook_fired"       // completion hook delivered one app
	KindEvict        = "evict"            // one application evicted
	KindWarnBurst    = "warn_burst"       // burst of unmatched/dropped lines
	KindQuiesceBegin = "quiesce_begin"    // Quiesce entered (N = pending units)
	KindQuiesceEnd   = "quiesce_end"      // Quiesce returned
	KindStall        = "watchdog_stall"   // watchdog flipped to stalled
	KindRecover      = "watchdog_recover" // watchdog recovered
	KindSnapshot     = "flight_snapshot"  // automatic dump taken on anomaly
	KindSLOFire      = "slo_fire"         // SLO rule transitioned to firing
	KindSLOResolve   = "slo_resolve"      // SLO rule resolved back to ok
)

// Event is one flight-recorder entry. Shard is the worker index or -1
// when the event is not shard-scoped. Fields are fixed-size except
// Detail, which producers keep short (an app ID, a reason).
type Event struct {
	Seq    uint64 `json:"seq"`
	AtMS   int64  `json:"at_ms"`
	Kind   string `json:"kind"`
	Stage  string `json:"stage,omitempty"`
	Shard  int    `json:"shard"`
	N      int64  `json:"n,omitempty"`
	DurUS  int64  `json:"dur_us,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// DefaultFlightSize is the default ring capacity. At one stage event
// per batch and one scan per second this holds well over an hour of
// serve-loop history in a few hundred kilobytes.
const DefaultFlightSize = 4096

// Flight is the fixed-size flight recorder: a preallocated ring of
// recent Events. Record is allocation-free beyond the Detail strings
// its callers build; overwriting the oldest entry is the design, not a
// failure mode. All methods are nil-safe.
type Flight struct {
	mu     sync.Mutex
	buf    []Event
	next   uint64 // total events ever recorded
	events *metrics.Counter
}

func newFlight(reg *metrics.Registry, size int) *Flight {
	return &Flight{buf: make([]Event, 0, size), events: reg.Counter("obs_flight_events_total")}
}

// resize replaces the ring (only sensible before any Record).
func (f *Flight) resize(size int) {
	f.mu.Lock()
	f.buf = make([]Event, 0, size)
	f.next = 0
	f.mu.Unlock()
}

// Record appends one event and returns its assigned sequence number
// (0 on a nil recorder). The ring overwrites the oldest entry when
// full.
func (f *Flight) Record(e Event) uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	e.Seq = f.next
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else if cap(f.buf) > 0 {
		f.buf[f.next%uint64(cap(f.buf))] = e
	}
	f.next++
	f.mu.Unlock()
	f.events.Inc()
	return e.Seq
}

// Dump is a point-in-time snapshot of the ring: the events still held,
// oldest first, plus how many were ever recorded (Recorded - len(Events)
// have been overwritten).
type Dump struct {
	Cap      int     `json:"cap"`
	Recorded uint64  `json:"recorded"`
	Events   []Event `json:"events"`
}

// Dump snapshots the recorder. The result is deterministic for a
// deterministic event sequence: events come out in sequence order.
func (f *Flight) Dump() Dump {
	if f == nil {
		return Dump{}
	}
	f.mu.Lock()
	d := Dump{Cap: cap(f.buf), Recorded: f.next, Events: make([]Event, 0, len(f.buf))}
	if n := uint64(len(f.buf)); f.next > n && cap(f.buf) > 0 {
		start := f.next % uint64(cap(f.buf))
		d.Events = append(d.Events, f.buf[start:]...)
		d.Events = append(d.Events, f.buf[:start]...)
	} else {
		d.Events = append(d.Events, f.buf...)
	}
	f.mu.Unlock()
	return d
}

// Recorded returns how many events were ever recorded.
func (f *Flight) Recorded() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// JSON renders the dump as stable, indented JSON (the /debug/flight
// body): identical event sequences yield identical bytes.
func (d Dump) JSON() []byte {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		// Dump contains only plain fields; this cannot happen.
		return []byte("{}")
	}
	return append(b, '\n')
}
