package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// fakeClock is a deterministic millisecond clock for tests.
type fakeClock struct{ now int64 }

func (c *fakeClock) fn() func() int64 { return func() int64 { return c.now } }

func newTestPipeline(opts ...Option) (*Pipeline, *metrics.Registry, *fakeClock) {
	clk := &fakeClock{now: 1_000}
	reg := metrics.NewRegistry()
	opts = append([]Option{WithClock(clk.fn())}, opts...)
	return New(reg, opts...), reg, clk
}

func TestNilPipelineIsInert(t *testing.T) {
	var p *Pipeline
	tk := p.Begin()
	if tk != (Tick{}) {
		t.Fatalf("nil Begin = %+v, want zero", tk)
	}
	p.StageBatch(StageParse, 0, tk, 10)
	p.StageSpan(StageRead, -1, tk, tk, 1)
	p.FilesPending(3)
	p.RecordForward(0, 1, 2)
	p.RecordHook("app")
	p.RecordEvict("app")
	p.RecordWarnBurst(9)
	p.RecordQuiesce(true, 1)
	if p.DrainSelf() != nil || p.Spans() != nil || p.StageStats() != nil || p.Flight() != nil {
		t.Fatal("nil pipeline leaked state")
	}
	if d := p.FlightDump(); len(d.Events) != 0 {
		t.Fatal("nil pipeline dumped events")
	}

	var w *Watchdog
	w.ScanBegin(0)
	w.ScanEnd(0)
	w.ObserveShards(nil, nil, 0)
	w.OnSnapshot(func([]byte) {})
	if st, _ := w.Check(0); st {
		t.Fatal("nil watchdog stalled")
	}
	if w.Snapshots() != 0 || w.LastDump() != nil {
		t.Fatal("nil watchdog leaked state")
	}

	var rc *RuntimeCollector
	rc.Collect()
}

func TestStageSpansFlowEverywhere(t *testing.T) {
	p, reg, clk := newTestPipeline()
	t0 := p.Begin()
	clk.now += 5
	p.StageBatch(StageParse, 1, t0, 100)
	t1 := p.Begin()
	clk.now += 3
	p.StageBatch(StageScan, -1, t1, 1)

	// Metrics: histogram + counters carry the batch.
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`obs_stage_items_total{stage="parse"} 100`,
		`obs_stage_batches_total{stage="parse"} 1`,
		`obs_stage_duration_ms_count{stage="parse"} 1`,
		`obs_stage_duration_ms_sum{stage="parse"} 5`,
		`obs_stage_batches_total{stage="scan"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// All six stages are pre-registered even when never observed.
	for _, st := range Stages {
		if !strings.Contains(text, `obs_stage_batches_total{stage="`+st+`"}`) {
			t.Errorf("stage %q not pre-registered", st)
		}
	}

	// Span ring → Perfetto spans, shard-scoped stages on per-shard tracks.
	spans := p.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Process != PipelineTrack || spans[0].Thread != "parse/shard-01" || spans[0].Args["items"] != "100" {
		t.Fatalf("parse span %+v", spans[0])
	}
	if spans[1].Thread != "scan" || spans[1].Name != "scan" {
		t.Fatalf("scan span %+v", spans[1])
	}

	// Flight recorder saw both batches with microsecond durations.
	d := p.FlightDump()
	if len(d.Events) != 2 || d.Events[0].Kind != KindStage || d.Events[0].DurUS != 5000 {
		t.Fatalf("flight %+v", d.Events)
	}

	// Self-observations drain once.
	self := p.DrainSelf()
	if len(self) != 2 || self[0].Stage != StageParse || self[0].DurUS != 5000 {
		t.Fatalf("self obs %+v", self)
	}
	if p.DrainSelf() != nil {
		t.Fatal("second drain not empty")
	}

	// StageStats summarizes in pipeline order.
	stats := p.StageStats()
	if len(stats) != len(Stages) {
		t.Fatalf("stats = %d rows", len(stats))
	}
	for _, s := range stats {
		if s.Stage == StageParse {
			if s.Batches != 1 || s.Items != 100 || s.TotalMS != 5 || s.P99MS <= 0 {
				t.Fatalf("parse stat %+v", s)
			}
		}
	}
}

func TestSpanRingWraps(t *testing.T) {
	p, _, clk := newTestPipeline(WithSpanCap(4))
	for i := 0; i < 6; i++ {
		t0 := p.Begin()
		clk.now++
		p.StageBatch(StageRead, -1, t0, i)
	}
	spans := p.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
	// Oldest survivor is batch #2 (items=2), newest #5.
	if spans[0].Args["items"] != "2" || spans[3].Args["items"] != "5" {
		t.Fatalf("ring order wrong: %v ... %v", spans[0].Args, spans[3].Args)
	}
}

func TestFlightRingOverwritesOldest(t *testing.T) {
	p, _, _ := newTestPipeline(WithFlightSize(3))
	for i := 0; i < 5; i++ {
		p.RecordHook("app-" + string(rune('a'+i)))
	}
	d := p.FlightDump()
	if d.Cap != 3 || d.Recorded != 5 || len(d.Events) != 3 {
		t.Fatalf("dump header %+v", d)
	}
	if d.Events[0].Seq != 2 || d.Events[2].Seq != 4 {
		t.Fatalf("dump not oldest-first: %+v", d.Events)
	}
	if d.Events[2].Detail != "app-e" {
		t.Fatalf("newest event %+v", d.Events[2])
	}
}

func TestFlightDumpDeterministic(t *testing.T) {
	record := func() []byte {
		p, _, clk := newTestPipeline()
		t0 := p.Begin()
		clk.now += 7
		p.StageBatch(StageParse, 0, t0, 42)
		p.RecordForward(0, 3, 5)
		p.RecordHook("application_1499000000000_0001")
		p.RecordQuiesce(true, 2)
		p.RecordQuiesce(false, 0)
		return p.FlightDump().JSON()
	}
	a, b := record(), record()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical event sequences produced different dumps:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(string(a), `"kind": "forward"`) || !strings.Contains(string(a), `"detail": "to shard 3"`) {
		t.Fatalf("dump missing forward detail:\n%s", a)
	}
}

func TestSelfBufferBounded(t *testing.T) {
	p, reg, clk := newTestPipeline()
	p.selfCap = 4
	for i := 0; i < 10; i++ {
		t0 := p.Begin()
		clk.now++
		p.StageBatch(StageRead, -1, t0, 1)
	}
	if got := len(p.DrainSelf()); got != 4 {
		t.Fatalf("kept %d self observations, want 4", got)
	}
	if v := reg.Counter("obs_self_observations_dropped_total").Value(); v != 6 {
		t.Fatalf("dropped counter = %d, want 6", v)
	}
}

func TestWatchdogScanStallSnapshotOnceAndRecover(t *testing.T) {
	p, reg, _ := newTestPipeline()
	w := NewWatchdog(p, reg, 100)
	var snaps [][]byte
	w.OnSnapshot(func(d []byte) { snaps = append(snaps, d) })

	// Never started: no verdict no matter how much time passes.
	if st, _ := w.Check(10_000); st {
		t.Fatal("stalled before first scan")
	}

	w.ScanBegin(1_000)
	if st, _ := w.Check(1_050); st {
		t.Fatal("stalled while scan still within budget")
	}
	st, reason := w.Check(1_200)
	if !st || !strings.Contains(reason, "scan in flight") {
		t.Fatalf("want in-flight stall, got %v %q", st, reason)
	}
	if len(snaps) != 1 || w.Snapshots() != 1 {
		t.Fatalf("snapshots = %d/%d, want exactly one", len(snaps), w.Snapshots())
	}
	if !bytes.Equal(w.LastDump(), snaps[0]) {
		t.Fatal("LastDump disagrees with hook delivery")
	}
	// Still stalled: no second snapshot within the episode.
	w.Check(1_300)
	if len(snaps) != 1 {
		t.Fatal("snapshot fired twice in one episode")
	}

	// Scan completes: recovery, gauge drops, snapshot re-arms.
	w.ScanEnd(1_350)
	if st, _ := w.Check(1_360); st {
		t.Fatal("did not recover after ScanEnd")
	}
	if v := reg.Gauge("obs_watchdog_stalled").Value(); v != 0 {
		t.Fatalf("stalled gauge = %d after recovery", v)
	}

	// A dead loop (no scan at all) is the second stall flavor — and a
	// fresh episode takes a fresh snapshot.
	st, reason = w.Check(2_000)
	if !st || !strings.Contains(reason, "no scan for") {
		t.Fatalf("want dead-loop stall, got %v %q", st, reason)
	}
	if len(snaps) != 2 || w.Snapshots() != 2 {
		t.Fatalf("snapshot did not re-arm: %d/%d", len(snaps), w.Snapshots())
	}

	// The flight recorder holds the episode markers.
	kinds := map[string]int{}
	for _, e := range p.FlightDump().Events {
		kinds[e.Kind]++
	}
	if kinds[KindStall] != 2 || kinds[KindRecover] != 1 || kinds[KindSnapshot] != 2 {
		t.Fatalf("flight episode markers %v", kinds)
	}
}

func TestWatchdogShardStuck(t *testing.T) {
	p, reg, _ := newTestPipeline()
	w := NewWatchdog(p, reg, 100)
	w.ScanBegin(1_000)
	w.ScanEnd(1_001)

	// Shard 1 has queued work and a frozen processed counter. The scan
	// loop itself keeps running (fresh ScanEnd), so the shard condition
	// is the one that trips.
	w.ObserveShards([]int{0, 3}, []int64{5, 7}, 1_010)
	w.ObserveShards([]int{0, 3}, []int64{5, 7}, 1_150)
	w.ScanBegin(1_149)
	w.ScanEnd(1_150)
	st, reason := w.Check(1_150)
	if !st || !strings.Contains(reason, "shard 1 queue not draining") {
		t.Fatalf("want shard stall, got %v %q", st, reason)
	}

	// Progress on the shard clears the verdict.
	w.ObserveShards([]int{0, 0}, []int64{5, 8}, 1_160)
	if st, _ := w.Check(1_170); st {
		t.Fatal("shard stall did not clear on progress")
	}
}

func TestRuntimeCollector(t *testing.T) {
	reg := metrics.NewRegistry()
	rc := NewRuntimeCollector(reg)
	rc.Collect()
	if v := reg.Gauge("go_goroutines").Value(); v <= 0 {
		t.Fatalf("go_goroutines = %d", v)
	}
	if v := reg.Gauge("go_heap_alloc_bytes").Value(); v <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %d", v)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"# TYPE go_gc_cycles_total counter",
		"# TYPE go_gc_pause_ms histogram",
		"go_gc_pause_ms_bucket",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("runtime exposition missing %q", want)
		}
	}
}
