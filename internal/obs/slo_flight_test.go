package obs

import "testing"

// TestRecordSLOTransition: alert edges land in the flight recorder under
// the closed slo_fire/slo_resolve vocabulary, carrying the rule name and
// the fire-time exemplar count.
func TestRecordSLOTransition(t *testing.T) {
	p, _, clk := newTestPipeline()
	clk.now = 5_000
	p.RecordSLOTransition("tight-total", true, 3)
	p.RecordSLOTransition("tight-total", false, 0)

	d := p.FlightDump()
	if len(d.Events) != 2 {
		t.Fatalf("%d events, want 2", len(d.Events))
	}
	fire, resolve := d.Events[0], d.Events[1]
	if fire.Kind != KindSLOFire || fire.Detail != "tight-total" || fire.N != 3 || fire.AtMS != 5_000 || fire.Shard != -1 {
		t.Errorf("fire event %+v", fire)
	}
	if resolve.Kind != KindSLOResolve || resolve.Detail != "tight-total" || resolve.N != 0 {
		t.Errorf("resolve event %+v", resolve)
	}

	// Nil pipeline: inert like every other producer.
	var nilP *Pipeline
	nilP.RecordSLOTransition("x", true, 1)
}

// TestFlightRecordReturnsSeq: Record hands back the assigned sequence
// number so producers (the watchdog snapshot site) can cross-reference
// their own entries.
func TestFlightRecordReturnsSeq(t *testing.T) {
	p, _, _ := newTestPipeline()
	f := p.Flight()
	if got := f.Record(Event{Kind: KindStage, Shard: -1}); got != 0 {
		t.Fatalf("first seq = %d, want 0", got)
	}
	if got := f.Record(Event{Kind: KindStage, Shard: -1}); got != 1 {
		t.Fatalf("second seq = %d, want 1", got)
	}
	var nilF *Flight
	if got := nilF.Record(Event{}); got != 0 {
		t.Fatalf("nil Record = %d, want 0", got)
	}
}

// TestWatchdogEpisodeAccounting: Episodes counts healthy→stalled edges
// and LastSnapshotSeq points at the most recent flight_snapshot event.
func TestWatchdogEpisodeAccounting(t *testing.T) {
	p, reg, _ := newTestPipeline()
	w := NewWatchdog(p, reg, 100)
	if w.Episodes() != 0 || w.LastSnapshotSeq() != 0 {
		t.Fatalf("fresh watchdog: episodes=%d seq=%d", w.Episodes(), w.LastSnapshotSeq())
	}

	w.ScanBegin(1_000)
	w.Check(1_200) // stall 1
	if w.Episodes() != 1 {
		t.Fatalf("episodes = %d after first stall", w.Episodes())
	}
	seq1 := w.LastSnapshotSeq()
	w.ScanEnd(1_300)
	w.Check(1_310) // recover
	w.ScanBegin(2_000)
	w.Check(2_200) // stall 2
	if w.Episodes() != 2 {
		t.Fatalf("episodes = %d after second stall", w.Episodes())
	}
	seq2 := w.LastSnapshotSeq()
	if seq2 <= seq1 {
		t.Fatalf("snapshot seq did not advance: %d -> %d", seq1, seq2)
	}
	// The pointed-at event really is the snapshot record.
	for _, e := range p.FlightDump().Events {
		if e.Seq == seq2 && e.Kind != KindSnapshot {
			t.Fatalf("seq %d is %q, want %q", seq2, e.Kind, KindSnapshot)
		}
	}

	var nilW *Watchdog
	if nilW.Episodes() != 0 || nilW.LastSnapshotSeq() != 0 {
		t.Fatal("nil watchdog leaked episode state")
	}
}
