// Package obs is the mining pipeline's self-observability layer: the
// paper's tool decomposes *other* systems' scheduling pipelines from
// their logs, and this package turns the same lens on the tool itself.
//
// A Pipeline carries three coordinated views of the six pipeline stages
// (read, parse, cross-shard forward, decompose, aggregate, serve-scan):
//
//   - stage spans: per-stage latency histograms and throughput counters
//     in an internal/metrics registry, plus a bounded ring of recent
//     spans renderable as a Perfetto track next to mined app timelines;
//   - a flight recorder: a fixed-size ring of structured pipeline
//     events (see flight.go) dumped deterministically on demand and
//     automatically when the watchdog trips;
//   - self-observations: a bounded buffer of (stage, duration) samples
//     the serve loop drains into its own internal/slo engine, so the
//     checker's SLO machinery evaluates the checker itself.
//
// Instrumentation stays out of the per-line hot path by contract: every
// recording method is called once per batch/chunk/scan, never per line,
// and every method is safe on a nil *Pipeline so call sites in
// internal/core remain unconditional (the repo's nil-safe metrics
// idiom). The clock is injectable, which makes flight dumps of a serial
// run byte-reproducible.
package obs

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// The six pipeline stages, in pipeline order. These are the component
// vocabulary for self-SLO rules (slo.ParseRulesFor), the stage label on
// every obs_ metric, and the Perfetto track names.
const (
	StageRead      = "read"      // file walk + appended-byte drain
	StageParse     = "parse"     // regex extraction over a line batch
	StageForward   = "forward"   // absorbing cross-shard event batches
	StageDecompose = "decompose" // per-app delay decomposition
	StageAggregate = "aggregate" // completion hook: sketches + SLO fold
	StageScan      = "scan"      // one whole serve-loop ingestion pass
)

// Stages lists every stage in pipeline order.
var Stages = []string{StageRead, StageParse, StageForward, StageDecompose, StageAggregate, StageScan}

// stageBuckets covers 10µs .. ~84s with constant relative resolution:
// per-batch parse times live in the sub-millisecond range, full serve
// scans of a large tree in seconds.
var stageBuckets = metrics.ExpBuckets(0.01, 2, 24)

// Tick is one clock reading: wall milliseconds for event placement and
// nanoseconds for durations (sub-millisecond batches would vanish in a
// millisecond-only clock).
type Tick struct {
	MS int64
	NS int64
}

// StageObs is one self-observation: a stage latency sample the serve
// loop feeds through its own SLO engine.
type StageObs struct {
	Stage string
	AtMS  int64
	DurUS int64
}

// StageStat is one stage's cumulative view, the bench/report row.
type StageStat struct {
	Stage   string  `json:"stage"`
	Batches int64   `json:"batches"`
	Items   int64   `json:"items"`
	TotalMS float64 `json:"total_ms"`
	P50MS   float64 `json:"p50_ms"`
	P99MS   float64 `json:"p99_ms"`
}

// stageSet is one stage's metric instruments.
type stageSet struct {
	hist    *metrics.Histogram // obs_stage_duration_ms{stage=...}
	items   *metrics.Counter   // obs_stage_items_total{stage=...}
	batches *metrics.Counter   // obs_stage_batches_total{stage=...}
}

// spanRec is one completed stage span in the bounded span ring.
type spanRec struct {
	stage          string
	shard          int
	startMS, endMS int64
	items          int
}

// Pipeline is the per-deployment observability hub. Create one with New
// and hand it to the stream (ObservePipeline), the miner
// (MineDirObserved), and the serve loop. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Pipeline struct {
	base  time.Time
	clock func() int64 // nil = wall clock; else test clock in ms

	stages map[string]*stageSet
	flight *Flight

	filesPending *metrics.Gauge

	spanMu   sync.Mutex
	spans    []spanRec
	spanNext uint64 // total spans ever recorded

	selfMu      sync.Mutex
	selfBuf     []StageObs
	selfDropped *metrics.Counter

	// selfCap bounds selfBuf between drains.
	selfCap int
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithClock replaces the wall clock with a millisecond test clock. Every
// Tick derives both fields from it, so durations — and therefore flight
// dumps — become deterministic.
func WithClock(fn func() int64) Option {
	return func(p *Pipeline) { p.clock = fn }
}

// WithFlightSize overrides the flight recorder ring capacity
// (DefaultFlightSize).
func WithFlightSize(n int) Option {
	return func(p *Pipeline) {
		if n > 0 {
			p.flight.resize(n)
		}
	}
}

// WithSpanCap overrides the span ring capacity (DefaultSpanCap).
func WithSpanCap(n int) Option {
	return func(p *Pipeline) {
		if n > 0 {
			p.spans = make([]spanRec, 0, n)
		}
	}
}

// DefaultSpanCap bounds the recent-span ring behind the Perfetto export.
const DefaultSpanCap = 4096

// defaultSelfCap bounds the self-observation buffer between drains; a
// stuck serve loop must not leak memory through its own instruments.
const defaultSelfCap = 8192

// New builds a Pipeline registering its metric families in reg (which
// may be nil: the instruments are then inert, the rings still work).
// Every stage's series are pre-registered so /metrics always exposes
// all six, observed or not.
func New(reg *metrics.Registry, opts ...Option) *Pipeline {
	p := &Pipeline{
		base:         time.Now(),
		stages:       make(map[string]*stageSet, len(Stages)),
		flight:       newFlight(reg, DefaultFlightSize),
		spans:        make([]spanRec, 0, DefaultSpanCap),
		selfCap:      defaultSelfCap,
		filesPending: reg.Gauge("obs_mine_files_pending"),
		selfDropped:  reg.Counter("obs_self_observations_dropped_total"),
	}
	for _, st := range Stages {
		p.stages[st] = &stageSet{
			hist:    reg.Histogram("obs_stage_duration_ms", stageBuckets, "stage", st),
			items:   reg.Counter("obs_stage_items_total", "stage", st),
			batches: reg.Counter("obs_stage_batches_total", "stage", st),
		}
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Begin reads the clock. On a nil pipeline it returns the zero Tick, so
// instrumented code paths never pay a clock read when unobserved.
func (p *Pipeline) Begin() Tick {
	if p == nil {
		return Tick{}
	}
	if p.clock != nil {
		ms := p.clock()
		return Tick{MS: ms, NS: ms * int64(time.Millisecond)}
	}
	return Tick{MS: time.Now().UnixMilli(), NS: time.Since(p.base).Nanoseconds()}
}

// StageBatch records one completed batch of a stage, ending now: the
// histograms, the span ring, the flight recorder, and the self-SLO
// buffer all see it. shard is the worker index, or -1 when the stage is
// not shard-scoped.
func (p *Pipeline) StageBatch(stage string, shard int, start Tick, items int) {
	if p == nil {
		return
	}
	p.StageSpan(stage, shard, start, p.Begin(), items)
}

// StageSpan is StageBatch with an explicit end Tick, for adjacent stages
// that share one clock read (the end of parse is the start of absorb).
func (p *Pipeline) StageSpan(stage string, shard int, start, end Tick, items int) {
	if p == nil {
		return
	}
	st := p.stages[stage]
	if st == nil {
		return // unknown stage: a programming error, but never crash the pipeline
	}
	durNS := end.NS - start.NS
	if durNS < 0 {
		durNS = 0
	}
	st.hist.Observe(float64(durNS) / float64(time.Millisecond))
	st.items.Add(int64(items))
	st.batches.Inc()

	p.spanMu.Lock()
	rec := spanRec{stage: stage, shard: shard, startMS: start.MS, endMS: end.MS, items: items}
	if len(p.spans) < cap(p.spans) {
		p.spans = append(p.spans, rec)
	} else if cap(p.spans) > 0 {
		p.spans[p.spanNext%uint64(cap(p.spans))] = rec
	}
	p.spanNext++
	p.spanMu.Unlock()

	p.flight.Record(Event{AtMS: end.MS, Kind: KindStage, Stage: stage, Shard: shard, N: int64(items), DurUS: durNS / int64(time.Microsecond)})

	p.selfMu.Lock()
	if len(p.selfBuf) < p.selfCap {
		p.selfBuf = append(p.selfBuf, StageObs{Stage: stage, AtMS: end.MS, DurUS: durNS / int64(time.Microsecond)})
	} else {
		p.selfDropped.Inc()
	}
	p.selfMu.Unlock()
}

// DrainSelf returns and clears the buffered self-observations, oldest
// first. The serve loop calls it once per scan and feeds the samples
// through its self-SLO engine.
func (p *Pipeline) DrainSelf() []StageObs {
	if p == nil {
		return nil
	}
	p.selfMu.Lock()
	out := p.selfBuf
	p.selfBuf = nil
	p.selfMu.Unlock()
	return out
}

// FilesPending publishes how many mine inputs are still unclaimed (the
// offline miner's queue-depth gauge).
func (p *Pipeline) FilesPending(n int) {
	if p == nil {
		return
	}
	p.filesPending.Set(int64(n))
}

// RecordForward notes a cross-shard event forward in the flight
// recorder (the stage histogram sees the absorb side via StageForward
// batches; this records the routing decision itself).
func (p *Pipeline) RecordForward(from, to int, events int) {
	if p == nil {
		return
	}
	p.flight.Record(Event{AtMS: p.Begin().MS, Kind: KindForward, Stage: StageForward, Shard: from, N: int64(events), Detail: "to shard " + strconv.Itoa(to)})
}

// RecordHook notes one completion-hook fire.
func (p *Pipeline) RecordHook(app string) {
	if p == nil {
		return
	}
	p.flight.Record(Event{AtMS: p.Begin().MS, Kind: KindHook, Shard: -1, N: 1, Detail: app})
}

// RecordEvict notes one application eviction.
func (p *Pipeline) RecordEvict(app string) {
	if p == nil {
		return
	}
	p.flight.Record(Event{AtMS: p.Begin().MS, Kind: KindEvict, Shard: -1, N: 1, Detail: app})
}

// RecordWarnBurst notes a burst of dropped/unmatched lines between two
// scans (n is the burst size).
func (p *Pipeline) RecordWarnBurst(n int64) {
	if p == nil {
		return
	}
	p.flight.Record(Event{AtMS: p.Begin().MS, Kind: KindWarnBurst, Shard: -1, N: n})
}

// RecordSLOTransition notes one SLO alert edge: rule is the rule name,
// firing selects slo_fire vs slo_resolve, and apps is the number of
// exemplar applications captured at fire time. The serve loop installs
// this as the engine's transition hook so stall snapshots show alert
// edges in context.
func (p *Pipeline) RecordSLOTransition(rule string, firing bool, apps int) {
	if p == nil {
		return
	}
	kind := KindSLOResolve
	if firing {
		kind = KindSLOFire
	}
	p.flight.Record(Event{AtMS: p.Begin().MS, Kind: kind, Shard: -1, N: int64(apps), Detail: rule})
}

// RecordQuiesce notes a Quiesce boundary; begin events carry the
// pending work count at entry.
func (p *Pipeline) RecordQuiesce(begin bool, pending int) {
	if p == nil {
		return
	}
	kind := KindQuiesceEnd
	if begin {
		kind = KindQuiesceBegin
	}
	p.flight.Record(Event{AtMS: p.Begin().MS, Kind: kind, Shard: -1, N: int64(pending)})
}

// Flight exposes the flight recorder (nil on a nil pipeline).
func (p *Pipeline) Flight() *Flight {
	if p == nil {
		return nil
	}
	return p.flight
}

// FlightDump snapshots the flight recorder; see Flight.Dump.
func (p *Pipeline) FlightDump() Dump {
	if p == nil {
		return Dump{}
	}
	return p.flight.Dump()
}

// Spans renders the recent-span ring as trace spans on a single
// "pipeline" process: one track per stage, shard-scoped stages split
// into per-shard tracks so imbalance is visible next to the mined app
// timelines in the same Perfetto UI. Spans come out oldest first.
func (p *Pipeline) Spans() []sim.TraceSpan {
	if p == nil {
		return nil
	}
	p.spanMu.Lock()
	recs := make([]spanRec, 0, len(p.spans))
	if n := uint64(len(p.spans)); p.spanNext > n && cap(p.spans) > 0 {
		start := p.spanNext % uint64(cap(p.spans))
		recs = append(recs, p.spans[start:]...)
		recs = append(recs, p.spans[:start]...)
	} else {
		recs = append(recs, p.spans...)
	}
	p.spanMu.Unlock()

	out := make([]sim.TraceSpan, 0, len(recs))
	for _, r := range recs {
		thread := r.stage
		if r.shard >= 0 {
			thread = r.stage + "/shard-" + two(r.shard)
		}
		out = append(out, sim.TraceSpan{
			Process: PipelineTrack,
			Thread:  thread,
			Name:    r.stage,
			Start:   sim.Time(r.startMS),
			End:     sim.Time(r.endMS),
			Args:    map[string]string{"items": strconv.Itoa(r.items)},
		})
	}
	return out
}

// PipelineTrack is the Perfetto process name grouping all pipeline
// stage tracks.
const PipelineTrack = "pipeline"

// two zero-pads a shard index to two digits so tracks sort naturally.
func two(n int) string {
	if n < 10 {
		return "0" + strconv.Itoa(n)
	}
	return strconv.Itoa(n)
}

// StageStats summarizes every stage in pipeline order: batch/item
// throughput plus interpolated latency quantiles, the bench_pipeline
// rows.
func (p *Pipeline) StageStats() []StageStat {
	if p == nil {
		return nil
	}
	out := make([]StageStat, 0, len(Stages))
	for _, name := range Stages {
		st := p.stages[name]
		out = append(out, StageStat{
			Stage:   name,
			Batches: st.batches.Value(),
			Items:   st.items.Value(),
			TotalMS: st.hist.Sum(),
			P50MS:   st.hist.Quantile(0.50),
			P99MS:   st.hist.Quantile(0.99),
		})
	}
	return out
}
