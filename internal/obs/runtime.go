package obs

import (
	"runtime"
	"sync"

	"repro/internal/metrics"
)

// RuntimeCollector exports the Go runtime's own vitals on the shared
// registry: goroutine count, heap gauges, and a GC pause histogram.
// Collect is called from the serve loop (once per watchdog tick), so
// /metrics always carries a recent reading without a dedicated
// goroutine.
type RuntimeCollector struct {
	mu        sync.Mutex
	lastNumGC uint32

	goroutines  *metrics.Gauge     // go_goroutines
	heapAlloc   *metrics.Gauge     // go_heap_alloc_bytes
	heapSys     *metrics.Gauge     // go_heap_sys_bytes
	heapObjects *metrics.Gauge     // go_heap_objects
	gcCycles    *metrics.Counter   // go_gc_cycles_total
	gcPause     *metrics.Histogram // go_gc_pause_ms
}

// gcPauseBuckets covers 1µs .. ~0.5s stop-the-world pauses.
var gcPauseBuckets = metrics.ExpBuckets(0.001, 2, 20)

// NewRuntimeCollector registers the runtime metric families in reg
// (which may be nil).
func NewRuntimeCollector(reg *metrics.Registry) *RuntimeCollector {
	return &RuntimeCollector{
		goroutines:  reg.Gauge("go_goroutines"),
		heapAlloc:   reg.Gauge("go_heap_alloc_bytes"),
		heapSys:     reg.Gauge("go_heap_sys_bytes"),
		heapObjects: reg.Gauge("go_heap_objects"),
		gcCycles:    reg.Counter("go_gc_cycles_total"),
		gcPause:     reg.Histogram("go_gc_pause_ms", gcPauseBuckets),
	}
}

// Collect takes one reading: gauges are overwritten, and every GC pause
// since the previous call is folded into the pause histogram (the
// runtime keeps the last 256 pauses; a collector polled every second
// never misses one).
func (c *RuntimeCollector) Collect() {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.goroutines.Set(int64(runtime.NumGoroutine()))
	c.heapAlloc.Set(int64(ms.HeapAlloc))
	c.heapSys.Set(int64(ms.HeapSys))
	c.heapObjects.Set(int64(ms.HeapObjects))

	c.mu.Lock()
	last := c.lastNumGC
	cur := ms.NumGC
	if cur > last {
		fresh := cur - last
		if fresh > uint32(len(ms.PauseNs)) {
			fresh = uint32(len(ms.PauseNs))
		}
		c.gcCycles.Add(int64(cur - last))
		for i := uint32(0); i < fresh; i++ {
			pause := ms.PauseNs[(cur-i+255)%256]
			c.gcPause.Observe(float64(pause) / 1e6)
		}
		c.lastNumGC = cur
	}
	c.mu.Unlock()
}
