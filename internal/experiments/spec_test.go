package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/yarn"
)

func TestLoadSpecDefaults(t *testing.T) {
	sp, err := LoadSpec(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sp.ToTraceRun()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Queries != 200 || tr.DatasetMB != 2048 {
		t.Fatalf("defaults: queries=%d dataset=%v", tr.Queries, tr.DatasetMB)
	}
}

func TestLoadSpecRejectsUnknownFields(t *testing.T) {
	if _, err := LoadSpec(strings.NewReader(`{"quieres": 10}`)); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestLoadSpecRejectsBadEnums(t *testing.T) {
	if _, err := LoadSpec(strings.NewReader(`{"scheduler": "mesos"}`)); err == nil {
		t.Fatal("bad scheduler accepted")
	}
	if _, err := LoadSpec(strings.NewReader(`{"ordering": "lifo"}`)); err == nil {
		t.Fatal("bad ordering accepted")
	}
}

func TestSpecMapsDeploymentKnobs(t *testing.T) {
	sp, err := LoadSpec(strings.NewReader(`{
		"queries": 3, "executors": 2, "scheduler": "de", "ordering": "fair",
		"jvm_reuse": true, "am_heartbeat_ms": 500, "workers": 6,
		"dedicated_local_disk_mbps": 1500, "opp_power_of_choices": 2,
		"docker": true, "extra_file_mb": 256, "seed": 5
	}`))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sp.ToTraceRun()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Opts.Yarn.Scheduler != yarn.SchedOpportunistic {
		t.Error("scheduler not mapped")
	}
	if tr.Opts.Yarn.Ordering != yarn.OrderFair {
		t.Error("ordering not mapped")
	}
	if !tr.Opts.Yarn.JVMReuse || tr.Opts.Yarn.AMHeartbeatMs != 500 {
		t.Error("jvm/heartbeat not mapped")
	}
	if tr.Opts.Cluster.Workers != 6 {
		t.Error("workers not mapped")
	}
	if tr.Opts.Yarn.OppPowerOfChoices != 2 {
		t.Error("sampling not mapped")
	}
}

func TestSpecEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	sp, err := LoadSpec(strings.NewReader(`{"queries": 4, "executors": 2, "seed": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sp.ToTraceRun()
	if err != nil {
		t.Fatal(err)
	}
	_, rep := tr.Run()
	if len(rep.Apps) != 4 {
		t.Fatalf("apps=%d", len(rep.Apps))
	}
	for _, a := range rep.Apps {
		if a.Decomp.Total < 0 {
			t.Fatalf("app %s incomplete", a.ID)
		}
	}
}

func TestSpecArrivalCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "trace.csv")
	if err := os.WriteFile(csv, []byte("1000\n2000\n9000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := LoadSpec(strings.NewReader(`{"arrival_csv": "` + strings.ReplaceAll(csv, `\`, `\\`) + `"}`))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sp.ToTraceRun()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Arrivals) != 3 || tr.Queries != 3 {
		t.Fatalf("arrivals=%v queries=%d", tr.Arrivals, tr.Queries)
	}
	if tr.Arrivals[2]-tr.Arrivals[0] != 8000 {
		t.Fatalf("spacing not preserved: %v", tr.Arrivals)
	}
}

func TestSpecFileMissing(t *testing.T) {
	if _, err := LoadSpecFile("/nonexistent/spec.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
