package experiments

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/log4j"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/testkit"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// oracleScenario runs a short TPC-H burst under the given options and
// returns the scenario (with its sink and, when trace is set, the
// ground-truth recorder attached before any submission).
func oracleScenario(t *testing.T, opts Options, queries int, trace bool) (*Scenario, *sim.Recorder) {
	t.Helper()
	s := NewScenario(opts)
	var rec *sim.Recorder
	if trace {
		rec = s.Trace()
	}
	tables := workload.CreateTPCHTables(s.FS, 2048)
	for i := 0; i < queries; i++ {
		cfg := spark.DefaultConfig(workload.TPCHQuery(i+1, 2048, tables))
		s.Eng.At(sim.Time(int64(i)*3000+1000), func() { spark.Submit(s.RM, s.FS, cfg) })
	}
	s.Run(sim.Time(1800 * sim.Second))
	return s, rec
}

// TestDiffOracleMatrix drives the differential harness over a
// seed x fault-model x worker-count matrix: pristine runs (with
// ground-truth span containment), node-crash runs, and degraded-log
// runs. For every cell, parallel mining and parallel streaming must be
// byte-identical to their serial counterparts, and the merged breakdown
// sketches must match exactly.
func TestDiffOracleMatrix(t *testing.T) {
	oracle := testkit.DiffOracle{Workers: []int{1, 2, 3, 4, 8}}
	for _, seed := range []uint64{11, 23} {
		seed := seed

		t.Run(fmt.Sprintf("pristine/seed=%d", seed), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Seed = seed
			s, rec := oracleScenario(t, opts, 3, true)
			rep := oracle.Check(t, testkit.OracleInput{
				Name:    fmt.Sprintf("pristine-%d", seed),
				Sink:    s.Sink,
				Truth:   rec,
				EpochMS: s.Opts.ClusterTS,
				RequireSpans: []string{
					sim.SpanAM, sim.SpanAllocation, sim.SpanAcquisition,
					sim.SpanLocalization, sim.SpanLaunching, sim.SpanDriver, sim.SpanExecutor,
				},
			})
			if len(rep.Apps) != 3 {
				t.Fatalf("mined %d apps, want 3", len(rep.Apps))
			}
		})

		t.Run(fmt.Sprintf("faults/seed=%d", seed), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Seed = seed
			opts.Faults = yarn.RandomFaults(seed+1, opts.Cluster.Workers, 120_000, 90_000, 20_000)
			s, _ := oracleScenario(t, opts, 3, false)
			oracle.Check(t, testkit.OracleInput{
				Name: fmt.Sprintf("faults-%d", seed),
				Sink: s.Sink,
			})
		})

		t.Run(fmt.Sprintf("degraded/seed=%d", seed), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Seed = seed
			opts.LogDegrade = log4j.DegradeConfig{
				DropProb:     0.05,
				TruncateProb: 0.05,
				TearProb:     0.05,
				GarbageProb:  0.05,
				SkewMaxMs:    2000,
				Seed:         seed ^ 0xbeef,
			}
			s, _ := oracleScenario(t, opts, 3, false)
			oracle.Check(t, testkit.OracleInput{
				Name: fmt.Sprintf("degraded-%d", seed),
				Sink: s.Sink,
			})
		})
	}
}

// TestBreakdownWorkerCountInvariant is the sketch-merge property test:
// for any worker count, the parallel miner's Report.Breakdown rollups —
// quantiles included — must equal the serial rollups exactly, because
// per-shard digests merge losslessly rather than being re-approximated.
func TestBreakdownWorkerCountInvariant(t *testing.T) {
	for _, seed := range []uint64{5, 17, 29} {
		opts := DefaultOptions()
		opts.Seed = seed
		s, _ := oracleScenario(t, opts, 4, false)
		ref := s.Check().Breakdown()
		refRows, refComps := ref.Rows(), ref.ComponentRows()
		for _, w := range []int{2, 3, 5} {
			rep, err := core.MineSink(s.Sink, w)
			if err != nil {
				t.Fatalf("seed=%d workers=%d: %v", seed, w, err)
			}
			bd := rep.Breakdown()
			rows, comps := bd.Rows(), bd.ComponentRows()
			if len(rows) != len(refRows) {
				t.Fatalf("seed=%d workers=%d: %d rows, serial %d", seed, w, len(rows), len(refRows))
			}
			for i := range refRows {
				if rows[i] != refRows[i] {
					t.Errorf("seed=%d workers=%d: row %d = %+v, serial %+v", seed, w, i, rows[i], refRows[i])
				}
			}
			for i := range refComps {
				if comps[i] != refComps[i] {
					t.Errorf("seed=%d workers=%d: component row %d = %+v, serial %+v", seed, w, i, comps[i], refComps[i])
				}
			}
		}
	}
}
