package experiments

import (
	"testing"
	"testing/quick"

	"repro/internal/spark"
	"repro/internal/yarn"
)

// TestPropertyEndToEndInvariants runs small randomized scenarios through
// the whole pipeline (simulate → log → mine → decompose) and checks the
// decomposition invariants hold no matter the configuration:
//
//   - every finished app has a complete, non-negative decomposition
//   - in = driver + executor, out = total − in >= 0
//   - Cl >= Cf; job runtime >= total
//   - per-container components are non-negative
func TestPropertyEndToEndInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized scenario runs")
	}
	f := func(seed uint16, nq, ex, sched, fail uint8) bool {
		queries := int(nq%4) + 2
		executors := int(ex%6) + 1
		tr := DefaultTraceRun(queries)
		tr.Seed = uint64(seed) + 1
		tr.MeanGapMs = 1500
		opportunistic := sched%2 == 1
		if opportunistic {
			tr.Opts.Yarn.Scheduler = yarn.SchedOpportunistic
		}
		if fail%4 == 0 {
			tr.Opts.Yarn.LaunchFailureProb = 0.15
		}
		tr.MutateSpark = func(i int, cfg *spark.Config) {
			cfg.Executors = executors
			cfg.Opportunistic = opportunistic
		}
		_, rep := tr.Run()
		if len(rep.Apps) != queries {
			return false
		}
		for _, a := range rep.Apps {
			d := a.Decomp
			if d == nil || d.Total < 0 || d.AM < 0 || d.Driver < 0 || d.Executor < 0 {
				return false
			}
			if d.In != d.Driver+d.Executor || d.Out < 0 {
				return false
			}
			if d.Cl < d.Cf {
				return false
			}
			if d.JobRuntime < d.Total {
				return false
			}
			for _, cd := range d.Acquisitions {
				if cd.MS < 0 {
					return false
				}
			}
			for _, cd := range d.Localizations {
				if cd.MS < 0 {
					return false
				}
			}
			for _, cd := range d.Launchings {
				if cd.MS < 0 {
					return false
				}
			}
		}
		// The logs themselves must be temporally consistent.
		return len(rep.ValidateAll()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
