package experiments

import "testing"

func TestExtensionSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("burst runs")
	}
	rows := ExtensionSampling(120)
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	// Power-of-two is the sweet spot; very high k herds onto the same
	// momentarily-idle nodes (Sparrow's known staleness pathology), so we
	// assert the k=2 row.
	random, best := rows[0], rows[1]
	if best.Queueing.P95 >= random.Queueing.P95 {
		t.Errorf("power-of-%d queueing p95 %.0fms not below random's %.0fms",
			best.Choices, best.Queueing.P95, random.Queueing.P95)
	}
	// Sampling must not give up the distributed scheduler's fast grants.
	if best.Alloc.P95 > random.Alloc.P95*3+100 {
		t.Errorf("sampling alloc p95 %.0fms lost the latency advantage (random %.0fms)",
			best.Alloc.P95, random.Alloc.P95)
	}
	_ = FormatExtensionSampling(rows)
}

func TestExtensionCacheService(t *testing.T) {
	if testing.Short() {
		t.Skip("interference runs")
	}
	res := ExtensionCacheService(50)
	local := res.Comparison.Row("localization")
	if local == nil || local.SpeedupP50 < 1.5 {
		t.Errorf("caching service localization speedup %+v, want >=1.5x", local)
	}
	if res.HitRate < 0.5 {
		t.Errorf("cache hit rate %.2f suspiciously low for a steady-state cluster", res.HitRate)
	}
}

func TestExtensionPreemption(t *testing.T) {
	if testing.Short() {
		t.Skip("flooded runs")
	}
	res := ExtensionPreemption(25)
	total := res.Comparison.Row("total")
	if total == nil {
		t.Fatal("no total row")
	}
	// Preemption must help (or at worst not hurt, beyond noise) the
	// guaranteed queries under the opportunistic flood. The effect is
	// modest in this scenario because YARN's memory-only allocation never
	// blocks the guaranteed containers — preemption only relieves the CPU
	// oversubscription.
	if total.SpeedupP95 < 0.95 {
		t.Errorf("preemption made guaranteed queries clearly slower: %+v", total)
	}
	job := res.Comparison.Row("job")
	if job != nil && job.SpeedupP50 < 0.95 {
		t.Errorf("preemption slowed guaranteed job runtimes: %+v", job)
	}
	t.Logf("preemption: total p95 speedup %.2fx, job p50 speedup %.2fx", total.SpeedupP95, job.SpeedupP50)
}
