package experiments

import "testing"

func TestMultiTenantIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("two scenario runs")
	}
	res := MultiTenant(40)
	// Isolation must protect the queries' allocation delay against the
	// batch flood.
	if res.ProdAllocIsolated.P95 >= res.ProdAllocShared.P95 {
		t.Errorf("isolated alloc p95 %.0fms not better than shared %.0fms",
			res.ProdAllocIsolated.P95, res.ProdAllocShared.P95)
	}
	// And it costs the batch tenant something (ceiling < whole cluster).
	if res.BatchIsolatedSec <= res.BatchSharedSec {
		t.Errorf("batch finished faster under a ceiling (%.0fs vs %.0fs)?",
			res.BatchIsolatedSec, res.BatchSharedSec)
	}
	_ = res.Format()
}
