package experiments

import "testing"

func TestSizeLabel(t *testing.T) {
	cases := map[float64]string{
		20:         "20MB",
		1024:       "1GB",
		2048:       "2GB",
		200 * 1024: "200GB",
	}
	for mb, want := range cases {
		if got := sizeLabel(mb); got != want {
			t.Errorf("sizeLabel(%v)=%q, want %q", mb, got, want)
		}
	}
}

func TestEstimateBodySec(t *testing.T) {
	small := estimateBodySec(20)
	big := estimateBodySec(200 * 1024)
	if small >= big {
		t.Fatalf("body estimate not monotone: %v vs %v", small, big)
	}
	if small < 5 {
		t.Fatalf("tiny input body %vs unreasonably small", small)
	}
}

func TestMsToSec(t *testing.T) {
	if msToSec(1500) != 1.5 {
		t.Fatal("msToSec broken")
	}
}

func TestNonzero(t *testing.T) {
	if nonzero(0) != 1 || nonzero(5) != 5 {
		t.Fatal("nonzero broken")
	}
}

func TestDefaultOptionsShape(t *testing.T) {
	opts := DefaultOptions()
	if opts.Cluster.Workers != 25 {
		t.Fatalf("workers=%d, want the paper's 25", opts.Cluster.Workers)
	}
	if opts.ClusterTS != DefaultClusterTS {
		t.Fatal("cluster timestamp default")
	}
	s := NewScenario(opts)
	if len(s.RM.NodeManagers()) != 25 {
		t.Fatalf("NMs=%d", len(s.RM.NodeManagers()))
	}
	// Framework packages pre-created and pre-warmed.
	if s.FS.Lookup("/spark/spark-archive.zip") == nil {
		t.Fatal("spark package not registered in HDFS")
	}
}

func TestTraceRunDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("two runs")
	}
	run := func() string {
		tr := DefaultTraceRun(8)
		tr.Seed = 99
		_, rep := tr.Run()
		return rep.Format()
	}
	if run() != run() {
		t.Fatal("identical TraceRun configs diverged")
	}
}

func TestReplicateMergesSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed runs")
	}
	tr := DefaultTraceRun(5)
	rep := Replicate(tr, 1, 2, 3)
	if len(rep.Apps) != 15 {
		t.Fatalf("merged apps=%d, want 15", len(rep.Apps))
	}
	if rep.Total.Len() != 15 {
		t.Fatalf("total sample n=%d", rep.Total.Len())
	}
	// Seeds must actually differ.
	if rep.Total.Min() == rep.Total.Max() {
		t.Fatal("all seeds produced identical delays")
	}
}
