package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// FailureSweepRow is one failure-rate point: the same query stream run
// against a cluster whose nodes crash with the given per-node MTBF.
type FailureSweepRow struct {
	MTBFSec   float64 // per-node mean time between failures; 0 = fault-free
	Crashes   int     // node crashes actually injected
	Apps      int     // applications mined from the logs
	Partial   int     // decompositions flagged incomplete (anomalies/missing)
	LostConts int     // containers the logs show KILLED on a lost node
	Finished  int     // applications whose job body completed in the horizon

	Total stats.Summary // end-to-end delay, where observable
	Alloc stats.Summary // allocation component, where observable
}

// FailureSweep characterizes scheduling delay under node failures — the
// degraded-cluster regime the paper's fault-free testbed never enters.
// Each row reruns an identical TPC-H stream while nodes crash and restart
// on a deterministic schedule; the logs (including LOST-container lines
// and whatever a dead node managed to flush) are then mined by SDchecker
// like any other run. Delay components stretch as AMs are retried and
// executors re-requested, and the partial-decomposition count grows — the
// checker flags those apps instead of folding bogus numbers into the
// aggregates.
func FailureSweep(queries int) []FailureSweepRow {
	if queries <= 0 {
		queries = 60
	}
	gapMs := int64(2600)
	horizon := int64(queries)*gapMs + 120_000
	rows := make([]FailureSweepRow, 0, 4)
	for _, mtbfSec := range []float64{0, 600, 180, 60} {
		opts := DefaultOptions()
		opts.Seed = 171
		if mtbfSec > 0 {
			opts.Faults = yarn.RandomFaults(opts.Seed, opts.Cluster.Workers,
				horizon, mtbfSec*1000, 25_000)
		}
		s := NewScenario(opts)
		tables := workload.CreateTPCHTables(s.FS, 2048)
		apps := make([]*spark.App, 0, queries)
		for i := 0; i < queries; i++ {
			cfg := spark.DefaultConfig(workload.TPCHQuery(i%22+1, 2048, tables))
			at := sim.Time(2*sim.Second) + sim.Time(int64(i)*gapMs)
			s.Eng.At(at, func() { apps = append(apps, spark.Submit(s.RM, s.FS, cfg)) })
		}
		s.Run(sim.Time(3600 * sim.Second))
		rep := s.Check()
		row := FailureSweepRow{
			MTBFSec: mtbfSec,
			Crashes: len(opts.Faults.Crashes),
			Apps:    len(rep.Apps),
			Partial: rep.PartialApps,
			Total:   rep.Total.Summarize(fmt.Sprintf("total@mtbf=%v", mtbfSec)),
			Alloc:   rep.Alloc.Summarize(fmt.Sprintf("alloc@mtbf=%v", mtbfSec)),
		}
		for _, a := range rep.Apps {
			for _, c := range a.Containers {
				if c.Lost > 0 {
					row.LostConts++
				}
			}
		}
		for _, a := range apps {
			if a.Finished() {
				row.Finished++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatFailureSweep renders the sweep.
func FormatFailureSweep(rows []FailureSweepRow) string {
	var b strings.Builder
	b.WriteString("Failure sweep — scheduling delay vs node failure rate (TPC-H stream, crash/restart faults):\n")
	fmt.Fprintf(&b, "  %-12s %8s %6s %8s %6s %6s %13s %13s %14s\n",
		"node MTBF", "crashes", "apps", "finished", "part.", "lost", "total p50(s)", "total p95(s)", "alloc p95(ms)")
	for _, r := range rows {
		label := "none"
		if r.MTBFSec > 0 {
			label = fmt.Sprintf("%.0fs", r.MTBFSec)
		}
		fmt.Fprintf(&b, "  %-12s %8d %6d %8d %6d %6d %13.1f %13.1f %14.0f\n",
			label, r.Crashes, r.Apps, r.Finished, r.Partial, r.LostConts,
			msToSec(r.Total.P50), msToSec(r.Total.P95), r.Alloc.P95)
	}
	b.WriteString("  (partial decompositions are flagged, not silently aggregated; lost = containers\n   the RM logged as KILLED with exit status -100 after node expiry)\n")
	return b.String()
}
