package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/spark"
	"repro/internal/stats"
)

// Fig6Executors is the executor-count sweep (§IV-B, Fig 6).
var Fig6Executors = []int{2, 4, 8, 16}

// Fig6Row is one executor count's result.
type Fig6Row struct {
	Executors int
	Report    *core.Report

	TotalP95Sec float64
	TotalCDF    []stats.CDFPoint
	ClMinusCf   stats.Summary // seconds would lose precision; kept in ms
}

// Fig6 sweeps the number of executors per query. More executors mean more
// containers to allocate, localize and launch, and a stricter 80%
// registration gate — the trade-off between parallelism and scheduling
// delay the paper highlights.
func Fig6(queriesPerPoint int) []Fig6Row {
	if queriesPerPoint <= 0 {
		queriesPerPoint = 200
	}
	rows := make([]Fig6Row, 0, len(Fig6Executors))
	for _, n := range Fig6Executors {
		tr := DefaultTraceRun(queriesPerPoint)
		tr.Seed = 11 + uint64(n)
		execs := n
		tr.MutateSpark = func(q int, cfg *spark.Config) {
			cfg.Executors = execs
		}
		_, rep := tr.Run()
		rows = append(rows, Fig6Row{
			Executors:   n,
			Report:      rep,
			TotalP95Sec: msToSec(rep.Total.P95()),
			TotalCDF:    rep.Total.CDF(50),
			ClMinusCf:   rep.ClMinusCf.Summarize(fmt.Sprintf("Cl-Cf@%d", n)),
		})
	}
	return rows
}

// FormatFig6 renders the sweep.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Fig 6 — scheduling delay vs number of executors:\n")
	fmt.Fprintf(&b, "  %-10s %13s %16s %16s %16s\n",
		"executors", "total p95(s)", "Cl-Cf p50(ms)", "Cl-Cf p95(ms)", "Cl-Cf sd(ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10d %13.1f %16.0f %16.0f %16.0f\n",
			r.Executors, r.TotalP95Sec, r.ClMinusCf.P50, r.ClMinusCf.P95, r.ClMinusCf.StdDev)
	}
	return b.String()
}
