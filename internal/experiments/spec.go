package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/docker"
	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// Spec is a declarative scenario description, loadable from JSON, that
// covers the whole experiment space: workload shape, deployment knobs,
// interference, and an optional real submission trace. cmd/simcluster
// accepts one via -config.
type Spec struct {
	// Workload.
	Queries    int     `json:"queries"`
	DatasetMB  float64 `json:"dataset_mb"`
	Executors  int     `json:"executors"`
	MeanGapMs  float64 `json:"mean_gap_ms"`
	Seed       uint64  `json:"seed"`
	ArrivalCSV string  `json:"arrival_csv"` // optional path: replay real submission times

	// Deployment.
	Workers                int     `json:"workers"`
	Scheduler              string  `json:"scheduler"` // "ce" (default) or "de"
	Ordering               string  `json:"ordering"`  // "fifo" (default) or "fair"
	Docker                 bool    `json:"docker"`
	JVMReuse               bool    `json:"jvm_reuse"`
	AMHeartbeatMs          int64   `json:"am_heartbeat_ms"`
	DedicatedLocalDiskMBps float64 `json:"dedicated_local_disk_mbps"`
	OppPowerOfChoices      int     `json:"opp_power_of_choices"`
	ExtraFileMB            float64 `json:"extra_file_mb"` // spark-submit --files size per query

	// Interference.
	DfsIOMaps    int     `json:"dfsio_maps"`
	DfsIOWriteGB float64 `json:"dfsio_write_gb"`
	KmeansApps   int     `json:"kmeans_apps"`

	// Fault injection: explicit node crashes, or a seed-derived random
	// schedule when FaultMTBFSec > 0 (exponential up/down times).
	Faults       []FaultSpec `json:"faults"`
	FaultMTBFSec float64     `json:"fault_mtbf_sec"` // per-node mean time between failures
	FaultMTTRSec float64     `json:"fault_mttr_sec"` // mean outage length (default 25 s)

	DeadlineSec int64 `json:"deadline_sec"`
}

// FaultSpec is one scheduled node crash. DownForMs <= 0 means the node
// never comes back.
type FaultSpec struct {
	Node      int   `json:"node"`
	AtMs      int64 `json:"at_ms"`
	DownForMs int64 `json:"down_for_ms"`
}

// LoadSpec decodes a JSON spec, rejecting unknown fields so typos in
// config files fail loudly.
func LoadSpec(r io.Reader) (Spec, error) {
	var sp Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	return sp, sp.Validate()
}

// LoadSpecFile reads a spec from a file path.
func LoadSpecFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	return LoadSpec(f)
}

// Validate checks field values.
func (sp Spec) Validate() error {
	switch sp.Scheduler {
	case "", "ce", "de":
	default:
		return fmt.Errorf("spec: scheduler must be \"ce\" or \"de\", got %q", sp.Scheduler)
	}
	switch sp.Ordering {
	case "", "fifo", "fair":
	default:
		return fmt.Errorf("spec: ordering must be \"fifo\" or \"fair\", got %q", sp.Ordering)
	}
	if sp.Queries < 0 || sp.DatasetMB < 0 || sp.Executors < 0 {
		return fmt.Errorf("spec: negative workload sizes")
	}
	for _, f := range sp.Faults {
		if f.Node < 0 || f.AtMs < 0 {
			return fmt.Errorf("spec: fault {node:%d at_ms:%d} has negative fields", f.Node, f.AtMs)
		}
	}
	if sp.FaultMTBFSec < 0 || sp.FaultMTTRSec < 0 {
		return fmt.Errorf("spec: negative fault rates")
	}
	return nil
}

// ToTraceRun materializes the spec into a runnable TraceRun.
func (sp Spec) ToTraceRun() (TraceRun, error) {
	if err := sp.Validate(); err != nil {
		return TraceRun{}, err
	}
	queries := sp.Queries
	if queries == 0 {
		queries = 200
	}
	tr := DefaultTraceRun(queries)
	if sp.DatasetMB > 0 {
		tr.DatasetMB = sp.DatasetMB
	}
	if sp.MeanGapMs > 0 {
		tr.MeanGapMs = sp.MeanGapMs
	}
	if sp.Seed != 0 {
		tr.Seed = sp.Seed
	}
	if sp.Workers > 0 {
		tr.Opts.Cluster.Workers = sp.Workers
	}
	if sp.Scheduler == "de" {
		tr.Opts.Yarn.Scheduler = yarn.SchedOpportunistic
	}
	if sp.Ordering == "fair" {
		tr.Opts.Yarn.Ordering = yarn.OrderFair
	}
	if sp.AMHeartbeatMs > 0 {
		tr.Opts.Yarn.AMHeartbeatMs = sp.AMHeartbeatMs
	}
	if sp.DedicatedLocalDiskMBps > 0 {
		tr.Opts.Yarn.DedicatedLocalDiskMBps = sp.DedicatedLocalDiskMBps
	}
	if sp.OppPowerOfChoices > 1 {
		tr.Opts.Yarn.OppPowerOfChoices = sp.OppPowerOfChoices
	}
	tr.Opts.Yarn.JVMReuse = sp.JVMReuse
	tr.DeadlineSec = sp.DeadlineSec

	for _, f := range sp.Faults {
		tr.Opts.Faults.Crashes = append(tr.Opts.Faults.Crashes,
			yarn.NodeCrash{Node: f.Node, AtMs: f.AtMs, DownForMs: f.DownForMs})
	}
	if sp.FaultMTBFSec > 0 {
		mttr := sp.FaultMTTRSec
		if mttr == 0 {
			mttr = 25
		}
		horizon := int64(float64(queries)*tr.MeanGapMs) + 120_000
		tr.Opts.Faults = yarn.RandomFaults(tr.Seed, tr.Opts.Cluster.Workers,
			horizon, sp.FaultMTBFSec*1000, mttr*1000)
	}

	if sp.ArrivalCSV != "" {
		f, err := os.Open(sp.ArrivalCSV)
		if err != nil {
			return TraceRun{}, err
		}
		arr, err := trace.FromCSV(f, sim.Time(2*sim.Second))
		f.Close()
		if err != nil {
			return TraceRun{}, err
		}
		tr.Arrivals = arr
		tr.Queries = len(arr)
	}

	opportunistic := sp.Scheduler == "de"
	tr.MutateSpark = func(i int, cfg *spark.Config) {
		if sp.Executors > 0 {
			cfg.Executors = sp.Executors
		}
		cfg.Opportunistic = opportunistic
		if sp.Docker {
			cfg.Runtime = docker.RuntimeDocker
		}
		if sp.ExtraFileMB > 0 {
			cfg.ExtraFiles = []yarn.LocalResource{{
				Path:   fmt.Sprintf("/user/.sparkStaging/app-%04d/extra", i),
				SizeMB: sp.ExtraFileMB,
				Public: false,
			}}
		}
	}

	if sp.DfsIOMaps > 0 || sp.KmeansApps > 0 {
		maps, writeGB, kmeans := sp.DfsIOMaps, sp.DfsIOWriteGB, sp.KmeansApps
		if writeGB == 0 {
			writeGB = 20
		}
		tr.Background = func(s *Scenario) {
			if maps > 0 {
				cfg := workload.DfsIO(maps, writeGB)
				s.PrewarmCaches("/mr/job-" + cfg.Name + ".jar")
				mapreduce.Submit(s.RM, s.FS, cfg)
			}
			for k := 0; k < kmeans; k++ {
				spark.Submit(s.RM, s.FS, workload.KmeansConfig(400))
			}
		}
		if kmeans > 0 && tr.DeadlineSec == 0 {
			tr.DeadlineSec = int64(float64(queries)*tr.MeanGapMs/1000) + 900
		}
	}
	return tr, nil
}
