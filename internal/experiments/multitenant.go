package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// MultiTenantResult measures what the paper's multi-tenant motivation
// implies but does not evaluate: how Capacity Scheduler queue ceilings
// protect a latency-sensitive tenant's scheduling delay from a batch
// tenant. Low-latency TPC-H queries run in a "prod" queue while a large
// MapReduce job floods an "adhoc" queue; with one shared queue the batch
// job's thousands of requests sit in front of the queries' asks.
type MultiTenantResult struct {
	Shared, Isolated *core.Report
	Comparison       *core.Comparison
	// BatchSlowdown is the batch job's completion-time cost of isolation
	// (the other side of the trade).
	BatchSharedSec, BatchIsolatedSec float64
	// ProdAlloc summarizes the queries' allocation delay per setup.
	ProdAllocShared, ProdAllocIsolated stats.Summary
}

// MultiTenant runs both deployments.
func MultiTenant(queries int) *MultiTenantResult {
	if queries <= 0 {
		queries = 60
	}
	run := func(isolated bool) (*core.Report, float64, stats.Summary) {
		opts := DefaultOptions()
		opts.Seed = 211
		if isolated {
			opts.Yarn.Queues = []yarn.QueueConfig{
				{Name: "prod", Capacity: 0.6, MaxCapacity: 1.0},
				{Name: "adhoc", Capacity: 0.4, MaxCapacity: 0.5},
			}
		}
		s := NewScenario(opts)
		tables := workload.CreateTPCHTables(s.FS, 2048)
		s.PrewarmCaches("/mr/job-batch.jar")

		batchQueue := ""
		prodQueue := ""
		if isolated {
			batchQueue, prodQueue = "adhoc", "prod"
		}
		var batchDone sim.Time
		cfg := workload.MRWordcount("batch", 4000)
		cfg.Name = "batch"
		cfg.MapCPUSec = 1.2
		batch := mapreduce.SubmitToQueue(s.RM, s.FS, cfg, batchQueue)
		batch.OnFinished = func(at sim.Time) { batchDone = at }

		var batchID = batch.ID.String()
		arrivals := trace.Arrivals(trace.Config{N: queries, MeanGapMs: 2600, BurstProb: 0.25, BurstGapMs: 325, Seed: 212}, sim.Time(5*sim.Second))
		for i, at := range arrivals {
			qcfg := spark.DefaultConfig(workload.TPCHQuery(i%22+1, 2048, tables))
			qcfg.Queue = prodQueue
			s.Eng.At(at, func() { spark.Submit(s.RM, s.FS, qcfg) })
		}
		s.Run(sim.Time(4 * 3600 * sim.Second))
		rep := s.Check().Filter(func(a *core.AppTrace) bool { return a.ID.String() != batchID })
		return rep, float64(batchDone) / 1000, rep.Alloc.Summarize("prod-alloc")
	}
	sharedRep, sharedBatch, sharedAlloc := run(false)
	isoRep, isoBatch, isoAlloc := run(true)
	return &MultiTenantResult{
		Shared:            sharedRep,
		Isolated:          isoRep,
		Comparison:        core.Compare("shared-queue", sharedRep, "isolated-queues", isoRep),
		BatchSharedSec:    sharedBatch,
		BatchIsolatedSec:  isoBatch,
		ProdAllocShared:   sharedAlloc,
		ProdAllocIsolated: isoAlloc,
	}
}

// Format renders the study.
func (r *MultiTenantResult) Format() string {
	var b strings.Builder
	b.WriteString("Multi-tenant isolation — queue ceilings protecting low-latency queries from a batch tenant:\n")
	fmt.Fprintf(&b, "  %-18s %14s %14s %14s\n", "deployment", "alloc p50(ms)", "alloc p95(ms)", "total p95(s)")
	fmt.Fprintf(&b, "  %-18s %14.0f %14.0f %14.1f\n", "shared queue",
		r.ProdAllocShared.P50, r.ProdAllocShared.P95, r.Shared.Total.P95()/1000)
	fmt.Fprintf(&b, "  %-18s %14.0f %14.0f %14.1f\n", "isolated queues",
		r.ProdAllocIsolated.P50, r.ProdAllocIsolated.P95, r.Isolated.Total.P95()/1000)
	fmt.Fprintf(&b, "  batch job completion: shared %.0fs vs isolated %.0fs (the price of the ceiling)\n",
		r.BatchSharedSec, r.BatchIsolatedSec)
	return b.String()
}
