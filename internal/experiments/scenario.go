// Package experiments assembles whole-testbed scenarios and regenerates
// every table and figure of the paper's evaluation (§IV). Each FigN /
// TableN function builds a cluster, submits the workload, runs the
// simulation to completion, feeds the produced logs to SDchecker, and
// returns the structured rows or series the paper plots.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/ids"
	"repro/internal/log4j"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/yarn"
)

// DefaultClusterTS is the cluster start timestamp embedded in all IDs and
// the wall-clock epoch of sim time 0 (July 2017, around when the paper's
// experiments ran).
const DefaultClusterTS = 1499000000000

// Options configure a scenario.
type Options struct {
	Cluster   cluster.Config
	Yarn      yarn.Config
	ClusterTS int64
	Seed      uint64

	// Faults schedules deterministic node crashes/restarts into the run
	// (empty = the paper's fault-free testbed).
	Faults yarn.FaultSchedule
	// LogDegrade corrupts the log sink the way dying daemons and full
	// disks do — dropped, truncated, torn, and skewed lines — to exercise
	// SDchecker against degraded logs. Zero value = pristine logs.
	LogDegrade log4j.DegradeConfig
}

// DefaultOptions mirrors the paper's testbed and deployment.
func DefaultOptions() Options {
	return Options{
		Cluster:   cluster.DefaultConfig(),
		Yarn:      yarn.DefaultConfig(),
		ClusterTS: DefaultClusterTS,
		Seed:      42,
	}
}

// Scenario is a fully wired simulated testbed.
type Scenario struct {
	Eng  *sim.Engine
	Cl   *cluster.Cluster
	FS   *hdfs.FS
	RM   *yarn.RM
	Sink *log4j.Sink
	Opts Options

	// Metrics is the scenario's registry; the engine and the RM (and all
	// NodeManagers, through it) are instrumented at construction.
	Metrics *metrics.Registry
}

// NewScenario builds the testbed: engine, cluster, HDFS, RM, one NM per
// worker, and the shared log sink. Framework packages are pre-created in
// HDFS and pre-warmed in every NM's localization cache (steady-state
// cluster, like the paper's).
func NewScenario(opts Options) *Scenario {
	eng := sim.NewEngine()
	// Mix the scenario seed into the cluster's so that per-node latency
	// streams differ across scenario seeds too.
	opts.Cluster.Seed ^= opts.Seed * 0x9e3779b97f4a7c15
	cl := cluster.New(eng, opts.Cluster)
	sink := log4j.NewSink(eng, log4j.Clock{EpochMS: opts.ClusterTS})
	deg := opts.LogDegrade
	if deg.Seed == 0 {
		deg.Seed = opts.Seed ^ 0xde9
	}
	sink.Degrade(deg)
	fs := hdfs.New(eng, cl, opts.Seed^0xfd5)
	factory := ids.NewFactory(opts.ClusterTS)
	rm := yarn.NewRM(eng, opts.Yarn, cl, sink, factory, opts.Seed^0x12)

	fs.Create(spark.BasePackagePath, spark.BasePackageMB, nil)
	fs.Create("/mr/hadoop-mapreduce.tar.gz", 280, nil)

	for _, n := range cl.Nodes {
		nm := yarn.NewNodeManager(rm, n, fs, sink)
		nm.PrewarmCache(spark.BasePackagePath, "/mr/hadoop-mapreduce.tar.gz")
	}
	opts.Faults.Install(eng, rm)
	reg := metrics.NewRegistry()
	eng.Instrument(reg)
	rm.Instrument(reg)
	return &Scenario{Eng: eng, Cl: cl, FS: fs, RM: rm, Sink: sink, Opts: opts, Metrics: reg}
}

// PrewarmCaches marks extra paths localized on every node.
func (s *Scenario) PrewarmCaches(paths ...string) {
	for _, nm := range s.RM.NodeManagers() {
		nm.PrewarmCache(paths...)
	}
}

// Trace attaches (on first call) and returns the ground-truth span
// recorder. Attach it before submitting work; spans for phases that
// completed earlier are not recorded retroactively.
func (s *Scenario) Trace() *sim.Recorder {
	if s.RM.Tracer == nil {
		s.RM.Tracer = sim.NewRecorder()
	}
	return s.RM.Tracer
}

// Run drives the simulation until the event queue drains or the deadline
// passes, whichever comes first. It returns the final virtual time.
func (s *Scenario) Run(deadline sim.Time) sim.Time {
	return s.Eng.RunUntil(deadline)
}

// Check runs SDchecker over everything the scenario logged, parsing log
// files on GOMAXPROCS workers (byte-identical to a serial analysis).
func (s *Scenario) Check() *core.Report {
	rep, err := core.MineSink(s.Sink, 0)
	if err != nil {
		// The sink is in-memory; a parse error here is a harness bug.
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return rep
}

// msToSec converts a millisecond stat to seconds for display.
func msToSec(ms float64) float64 { return ms / 1000.0 }
