package experiments

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TraceRun configures a TPC-H-over-trace experiment, the common harness
// behind Figs 4, 5, 6, 12, and 13.
type TraceRun struct {
	Opts      Options
	Queries   int
	DatasetMB float64
	MeanGapMs float64
	Seed      uint64
	// MutateSpark edits each query's spark.Config before submission
	// (executor count, docker, extra files, opportunistic mode, ...).
	// i is the submission index within the trace.
	MutateSpark func(i int, cfg *spark.Config)
	// Background starts interference workloads before the trace begins.
	Background func(s *Scenario)
	// Arrivals, when non-nil, replaces the synthetic submission process
	// with explicit instants (e.g. a replayed real trace).
	Arrivals []sim.Time
	// DeadlineSec bounds the simulation (0 = generous default).
	DeadlineSec int64
}

// DefaultTraceRun is the paper's default setting: TPC-H on a 2 GB
// dataset, four executors per query.
func DefaultTraceRun(queries int) TraceRun {
	return TraceRun{
		Opts:      DefaultOptions(),
		Queries:   queries,
		DatasetMB: 2048,
		MeanGapMs: 2600,
		Seed:      7,
	}
}

// Run executes the trace and returns the scenario plus SDchecker's report.
func (tr TraceRun) Run() (*Scenario, *core.Report) {
	s := NewScenario(tr.Opts)
	tables := workload.CreateTPCHTables(s.FS, tr.DatasetMB)

	if tr.Background != nil {
		tr.Background(s)
	}

	arrivals := tr.Arrivals
	if arrivals == nil {
		arrivals = trace.Arrivals(trace.Config{
			N:          tr.Queries,
			MeanGapMs:  tr.MeanGapMs,
			BurstProb:  0.25,
			BurstGapMs: tr.MeanGapMs / 8,
			Seed:       tr.Seed,
		}, sim.Time(2*sim.Second))
	}

	for i, at := range arrivals {
		q := i%22 + 1
		cfg := spark.DefaultConfig(workload.TPCHQuery(q, tr.DatasetMB, tables))
		if tr.MutateSpark != nil {
			tr.MutateSpark(i, &cfg)
		}
		s.Eng.At(at, func() { spark.Submit(s.RM, s.FS, cfg) })
	}

	deadline := tr.DeadlineSec
	if deadline == 0 {
		// Generous: the whole trace plus ten minutes of drain.
		deadline = int64(arrivals[len(arrivals)-1])/1000 + 600
	}
	s.Run(sim.Time(deadline * sim.Second))
	return s, s.Check()
}

// Replicate runs the same trace configuration under several seeds and
// merges the SDchecker reports — repeated-measures aggregation for
// tighter percentiles (core.Merge keeps every application distinct).
func Replicate(tr TraceRun, seeds ...uint64) *core.Report {
	reports := make([]*core.Report, 0, len(seeds))
	for _, seed := range seeds {
		run := tr
		run.Seed = seed
		_, rep := run.Run()
		reports = append(reports, rep)
	}
	return core.Merge(reports...)
}
