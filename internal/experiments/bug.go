package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/spark"
	"repro/internal/yarn"
)

// BugResult reproduces §V-A: SDchecker's discovery of the Spark
// over-allocation bug (SPARK-21562) when using opportunistic containers.
type BugResult struct {
	Report        *core.Report
	Findings      []core.BugFinding
	UnusedPerApp  float64
	TotalAcquired int
}

// BugHunt runs a distributed-scheduler trace where Spark's allocator
// over-requests containers; SDchecker flags the ones that never produced
// NM or executor log states.
func BugHunt(queries int) *BugResult {
	if queries <= 0 {
		queries = 100
	}
	tr := DefaultTraceRun(queries)
	tr.Seed = 81
	tr.Opts.Yarn.Scheduler = yarn.SchedOpportunistic
	tr.MutateSpark = func(q int, cfg *spark.Config) {
		cfg.Opportunistic = true
		cfg.OverRequestFactor = 1.5 // the buggy demand estimation
	}
	_, rep := tr.Run()

	acquired := 0
	for _, e := range rep.Events {
		if e.Kind == core.ContAcquired {
			acquired++
		}
	}
	return &BugResult{
		Report:        rep,
		Findings:      rep.Bugs,
		UnusedPerApp:  float64(len(rep.Bugs)) / float64(maxInt(1, len(rep.Apps))),
		TotalAcquired: acquired,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Format renders the finding.
func (r *BugResult) Format() string {
	var b strings.Builder
	b.WriteString("§V-A — over-allocation bug detection (SPARK-21562):\n")
	fmt.Fprintf(&b, "  apps=%d acquired containers=%d allocated-but-never-used=%d (%.1f per app)\n",
		len(r.Report.Apps), r.TotalAcquired, len(r.Findings), r.UnusedPerApp)
	for i, f := range r.Findings {
		if i >= 3 {
			fmt.Fprintf(&b, "  ... and %d more\n", len(r.Findings)-3)
			break
		}
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}
