package experiments

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// crashScenario runs n TPC-H queries against a cluster with the given
// fault schedule and returns the scenario plus the submitted apps.
func crashScenario(t *testing.T, seed uint64, n int, faults yarn.FaultSchedule) (*Scenario, []*spark.App) {
	t.Helper()
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Faults = faults
	s := NewScenario(opts)
	tables := workload.CreateTPCHTables(s.FS, 2048)
	apps := make([]*spark.App, 0, n)
	for i := 0; i < n; i++ {
		cfg := spark.DefaultConfig(workload.TPCHQuery(i%22+1, 2048, tables))
		at := sim.Time(int64(i)*2500 + 2000)
		s.Eng.At(at, func() { apps = append(apps, spark.Submit(s.RM, s.FS, cfg)) })
	}
	s.Run(sim.Time(3600 * sim.Second))
	return s, apps
}

// TestNodeCrashProducesLostContainersAndPartialDecomposition is the
// tentpole acceptance path: crash a swath of nodes mid-run, confirm the RM
// expires them and logs LOST-container lines, and confirm SDchecker mines
// the result into partial decompositions that are flagged — not an error,
// and not a silently wrong total.
func TestNodeCrashProducesLostContainersAndPartialDecomposition(t *testing.T) {
	// Kill twelve of the 25 nodes at 15 s (queries are mid-flight) for 40 s
	// each: long enough for the 10 s expiry timer to fire first.
	var fs yarn.FaultSchedule
	for n := 0; n < 12; n++ {
		fs.Crashes = append(fs.Crashes, yarn.NodeCrash{Node: n, AtMs: 15_000, DownForMs: 40_000})
	}
	s, apps := crashScenario(t, 211, 8, fs)

	for i, app := range apps {
		if !app.Finished() {
			t.Errorf("app %d did not recover from the node crashes", i)
		}
	}

	rmLog := strings.Join(s.Sink.Lines(yarn.RMLogFile), "\n")
	for _, want := range []string{
		"Timed out after 10 secs",
		"as it is now LOST",
		"Node Transitioned from RUNNING to LOST",
		"exit status -100",
		"Node Transitioned from NEW to RUNNING", // the restarted NMs re-register
	} {
		if !strings.Contains(rmLog, want) {
			t.Errorf("RM log missing %q after node crashes", want)
		}
	}

	rep := s.Check()
	if len(rep.Apps) == 0 {
		t.Fatal("no applications mined from degraded logs")
	}
	lost, partial := 0, 0
	for _, a := range rep.Apps {
		for _, c := range a.Containers {
			if c.Lost > 0 {
				lost++
			}
		}
		d := a.Decomp
		if d == nil {
			t.Fatalf("app %s has no decomposition at all", a.ID)
		}
		if !d.Complete {
			partial++
			if len(d.Anomalies) == 0 {
				t.Errorf("app %s flagged incomplete without anomaly reasons", a.ID)
			}
		}
	}
	if lost == 0 {
		t.Fatal("crashing 12 nodes mid-run lost no containers — expiry path dead?")
	}
	if partial == 0 {
		t.Fatal("lost containers produced no partial decompositions")
	}
	if rep.PartialApps != partial {
		t.Fatalf("Report.PartialApps=%d, counted %d", rep.PartialApps, partial)
	}
	// The report must surface the degradation, not bury it.
	if !strings.Contains(rep.Format(), "partial") {
		t.Error("Format() does not mention partial decompositions")
	}
	// No capacity leak once everything drains.
	if u := s.RM.QueueUsage(yarn.DefaultQueueName); u != 0 {
		t.Fatalf("queue usage %.4f after drain, want 0 (capacity leak across crashes)", u)
	}
}

// TestNodeCrashWithoutRestart covers nodes that never come back: the RM
// must still expire them and the apps must finish on the survivors.
func TestNodeCrashWithoutRestart(t *testing.T) {
	fs := yarn.FaultSchedule{Crashes: []yarn.NodeCrash{
		{Node: 2, AtMs: 12_000, DownForMs: 0},
		{Node: 7, AtMs: 14_000, DownForMs: 0},
	}}
	s, apps := crashScenario(t, 212, 5, fs)
	for i, app := range apps {
		if !app.Finished() {
			t.Errorf("app %d wedged behind permanently dead nodes", i)
		}
	}
	rmLog := strings.Join(s.Sink.Lines(yarn.RMLogFile), "\n")
	if !strings.Contains(rmLog, "as it is now LOST") {
		t.Error("permanently dead nodes were never expired")
	}
	if u := s.RM.QueueUsage(yarn.DefaultQueueName); u != 0 {
		t.Fatalf("queue usage %.4f after drain (capacity leak)", u)
	}
}

// TestFastRestartBeforeExpiry covers the resync path: the node restarts
// inside the expiry window, so the RM learns about the killed containers
// from the NM's re-registration report, not the liveliness monitor.
func TestFastRestartBeforeExpiry(t *testing.T) {
	var fs yarn.FaultSchedule
	for n := 0; n < 8; n++ {
		fs.Crashes = append(fs.Crashes, yarn.NodeCrash{Node: n, AtMs: 16_000, DownForMs: 5_000})
	}
	s, apps := crashScenario(t, 213, 6, fs)
	for i, app := range apps {
		if !app.Finished() {
			t.Errorf("app %d did not recover from fast-restart crashes", i)
		}
	}
	if u := s.RM.QueueUsage(yarn.DefaultQueueName); u != 0 {
		t.Fatalf("queue usage %.4f after drain (capacity leak)", u)
	}
}

// TestFaultScheduleDeterministic pins down both the schedule draw and the
// whole faulted simulation: same seed, same report, byte for byte.
func TestFaultScheduleDeterministic(t *testing.T) {
	a := yarn.RandomFaults(5, 25, 300_000, 120_000, 25_000)
	b := yarn.RandomFaults(5, 25, 300_000, 120_000, 25_000)
	if len(a.Crashes) == 0 {
		t.Fatal("expected some crashes from a 120s MTBF over 300s on 25 nodes")
	}
	if len(a.Crashes) != len(b.Crashes) {
		t.Fatalf("same seed drew different schedules: %d vs %d", len(a.Crashes), len(b.Crashes))
	}
	for i := range a.Crashes {
		if a.Crashes[i] != b.Crashes[i] {
			t.Fatalf("crash %d differs: %+v vs %+v", i, a.Crashes[i], b.Crashes[i])
		}
	}
	if testing.Short() {
		t.Skip("two full faulted runs")
	}
	run := func() string {
		s, _ := crashScenario(t, 214, 4, yarn.RandomFaults(9, 25, 60_000, 180_000, 20_000))
		return s.Check().Format()
	}
	if run() != run() {
		t.Fatal("identical faulted runs diverged")
	}
}

// TestPropertyFaultInvariants fuzzes (seed × fault-rate) configurations
// through the full pipeline and asserts the decomposition contract under
// failures: components are -1 or non-negative, observable components
// reconcile (in = driver+executor, out = total-in >= 0), and the
// completeness flag agrees with ground truth — an app the simulator says
// finished with no lost containers must mine as complete, and an app mined
// complete must really have finished.
func TestPropertyFaultInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized faulted scenario runs")
	}
	f := func(seed uint16, rate, down uint8) bool {
		n := 4
		horizon := int64(n)*2500 + 60_000
		mtbf := float64(60_000 + int64(rate)*1000)
		meanDown := float64(8_000 + int64(down%40)*1000)
		faults := yarn.RandomFaults(uint64(seed)+1, 25, horizon, mtbf, meanDown)
		s, apps := crashScenario(t, uint64(seed)+300, n, faults)
		rep := s.Check()
		if len(rep.Apps) != n {
			return false
		}
		finished := make(map[string]bool, n)
		for _, app := range apps {
			finished[app.ID.String()] = app.Finished()
		}
		for _, a := range rep.Apps {
			d := a.Decomp
			if d == nil {
				return false
			}
			// Every component is either Missing or a real duration.
			for _, v := range []int64{d.Total, d.AM, d.In, d.Out, d.Driver, d.Executor, d.Alloc, d.Cf, d.Cl} {
				if v < -1 {
					return false
				}
			}
			// Observable components must reconcile.
			if d.Driver >= 0 && d.Executor >= 0 && d.In >= 0 && d.In != d.Driver+d.Executor {
				return false
			}
			// Out is clamped at 0 when In overruns Total, so the sum can
			// only meet or exceed Total — never undershoot it.
			if d.Total >= 0 && d.In >= 0 && (d.Out < 0 || d.In+d.Out < d.Total) {
				return false
			}
			hasLost := false
			for _, c := range a.Containers {
				if c.Lost > 0 {
					hasLost = true
				}
			}
			// Parity with ground truth: mined-complete implies truly
			// finished; truly finished and untouched by faults implies
			// mined-complete.
			if d.Complete && !finished[a.ID.String()] {
				return false
			}
			if finished[a.ID.String()] && !hasLost && !d.Complete {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
