package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Fig5Sizes are the paper's input-size sweep points (§IV-B: "ranging from
// 20MB to 200GB").
var Fig5Sizes = []float64{20, 2 * 1024, 20 * 1024, 200 * 1024}

// Fig5Row is one input size's result. TotalP95Sec is read from the
// mergeable cluster sketch (so the sweep table, the live /aggregate
// endpoint and this figure all report the same number, within the
// sketch's relative-error bound); the In/Out/normalized series stay
// sample-exact because in/out are not sketch components.
type Fig5Row struct {
	DatasetMB float64
	Report    *core.Report
	Breakdown *core.ClusterBreakdown

	TotalCDF     []stats.CDFPoint
	TotalP95Sec  float64
	NormTotalP50 float64
	NormTotalP95 float64
	InP95Sec     float64
	OutP95Sec    float64
}

// Fig5 sweeps the TPC-H dataset size under the same submission cadence
// for every size, as the paper's trace replay does. Bigger inputs make
// jobs run longer, so more of them overlap — the "intensive cluster-wide
// IO interference" the paper blames for the deteriorated 200 GB delays
// emerges from that overlap. queriesPerSize <= 0 uses the short trace
// size (200).
func Fig5(queriesPerSize int) []Fig5Row {
	if queriesPerSize <= 0 {
		queriesPerSize = 200
	}
	// Sweep points are independent simulations; run them concurrently,
	// each writing its own row so the table order stays fixed.
	rows := make([]Fig5Row, len(Fig5Sizes))
	concurrently(len(Fig5Sizes), func(i int) {
		size := Fig5Sizes[i]
		tr := DefaultTraceRun(queriesPerSize)
		tr.DatasetMB = size
		tr.Seed = 7 + uint64(size)
		// Leave room for the long-running bodies to drain.
		bodySec := estimateBodySec(size)
		tr.DeadlineSec = int64(float64(queriesPerSize)*tr.MeanGapMs/1000 + 4*bodySec + 600)
		_, rep := tr.Run()
		bd := rep.Breakdown()
		rows[i] = Fig5Row{
			DatasetMB:    size,
			Report:       rep,
			Breakdown:    bd,
			TotalCDF:     rep.Total.CDF(50),
			TotalP95Sec:  msToSec(bd.Component("total").Quantile(0.95)),
			NormTotalP50: rep.TotalOverJob.Median(),
			NormTotalP95: rep.TotalOverJob.P95(),
			InP95Sec:     msToSec(rep.In.P95()),
			OutP95Sec:    msToSec(rep.Out.P95()),
		}
	})
	return rows
}

// estimateBodySec approximates a query's post-scheduling runtime for
// pacing purposes only (scan waves dominate).
func estimateBodySec(datasetMB float64) float64 {
	tasks := datasetMB * 0.8 / 128
	waves := tasks / 32 // 4 executors x 8 cores
	if waves < 1 {
		waves = 1
	}
	return waves*11 + 8
}

// FormatFig5 renders the sweep as the paper's two panels.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Fig 5 — total scheduling delay vs input size:\n")
	fmt.Fprintf(&b, "  %-10s %12s %12s %12s %10s %10s\n",
		"input", "total p95(s)", "norm p50", "norm p95", "in p95(s)", "out p95(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %12.1f %12.2f %12.2f %10.1f %10.1f\n",
			sizeLabel(r.DatasetMB), r.TotalP95Sec, r.NormTotalP50, r.NormTotalP95, r.InP95Sec, r.OutP95Sec)
	}
	if len(rows) >= 2 {
		first, last := rows[0], rows[len(rows)-1]
		fmt.Fprintf(&b, "  largest/smallest: total %.1fx, in %.1fx, out %.1fx (paper: 4x, 5.7x, 1.5x)\n",
			last.TotalP95Sec/first.TotalP95Sec, last.InP95Sec/first.InP95Sec, last.OutP95Sec/first.OutP95Sec)
	}
	return b.String()
}

func sizeLabel(mb float64) string {
	if mb >= 1024 {
		return fmt.Sprintf("%.0fGB", mb/1024)
	}
	return fmt.Sprintf("%.0fMB", mb)
}
