package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/yarn"
)

// Fig7Result reproduces Fig 7: the scheduler comparison.
type Fig7Result struct {
	// (a) Aggregated container allocation delay (START_ALLO -> END_ALLO).
	CentralAlloc     stats.Summary
	DistributedAlloc stats.Summary
	CentralAllocCDF  []stats.CDFPoint
	DistAllocCDF     []stats.CDFPoint
	allocPlot        string

	// (b) Task queueing delay on an overloaded cluster.
	CentralQueueing stats.Summary
	DistQueueing    stats.Summary

	// (c) Container acquisition delay vs cluster load (MapReduce).
	// (allocPlot already captured above)
	AcquisitionByLoad map[int]stats.Summary
}

// Fig7 runs all three panels. queries <= 0 uses the short trace (200).
func Fig7(queries int) *Fig7Result {
	if queries <= 0 {
		queries = 200
	}
	res := &Fig7Result{AcquisitionByLoad: make(map[int]stats.Summary)}

	// (a) Allocation delay under the short trace, centralized vs
	// distributed.
	runAlloc := func(opportunistic bool) *core.Report {
		tr := DefaultTraceRun(queries)
		tr.Seed = 21
		if opportunistic {
			tr.Opts.Yarn.Scheduler = yarn.SchedOpportunistic
			tr.MutateSpark = func(q int, cfg *spark.Config) { cfg.Opportunistic = true }
		}
		_, rep := tr.Run()
		return rep
	}
	ce := runAlloc(false)
	de := runAlloc(true)
	res.CentralAlloc = ce.Alloc.Summarize("ce-alloc")
	res.DistributedAlloc = de.Alloc.Summarize("de-alloc")
	res.CentralAllocCDF = ce.Alloc.CDF(50)
	res.DistAllocCDF = de.Alloc.CDF(50)
	res.allocPlot = stats.ASCIICDF("Fig 7(a) — allocation delay CDFs", 64, 12,
		stats.PlotSeries{Name: "centralized", Sample: ce.Alloc},
		stats.PlotSeries{Name: "distributed", Sample: de.Alloc})

	// (b) Queueing delay on a highly loaded cluster: a burst of queries
	// whose aggregate demand exceeds capacity. The distributed scheduler
	// places randomly and queues at hot NodeManagers; the centralized one
	// holds requests at the RM instead, so NM-side queueing stays small.
	runBurst := func(opportunistic bool) *core.Report {
		opts := DefaultOptions()
		if opportunistic {
			opts.Yarn.Scheduler = yarn.SchedOpportunistic
		}
		s := NewScenario(opts)
		tables := workload.CreateTPCHTables(s.FS, 2048)
		n := queries
		for i := 0; i < n; i++ {
			q := i%22 + 1
			cfg := spark.DefaultConfig(workload.TPCHQuery(q, 2048, tables))
			cfg.Opportunistic = opportunistic
			at := sim.Time(2*sim.Second) + sim.Time(i)*200 // ~5 submissions/s
			s.Eng.At(at, func() { spark.Submit(s.RM, s.FS, cfg) })
		}
		s.Run(sim.Time(3600 * sim.Second))
		return s.Check()
	}
	ceq := runBurst(false)
	deq := runBurst(true)
	res.CentralQueueing = ceq.Queueing.Summarize("ce-queueing")
	res.DistQueueing = deq.Queueing.Summarize("de-queueing")

	// (c) Acquisition delay vs cluster load, MapReduce wordcount. The MR
	// AM pulls on a fixed 1 s heartbeat, which caps the delay.
	for _, load := range []int{10, 40, 70, 100} {
		opts := DefaultOptions()
		opts.Seed = 42 + uint64(load)
		s := NewScenario(opts)
		s.PrewarmCaches("/mr/job-acq.jar")
		window := workload.ClusterLoadMaps(s.Cl, float64(load)/100)
		cfg := workload.MRWordcount("acq", window*4)
		cfg.Name = "acq"
		cfg.MaxConcurrentMaps = window
		mapreduce.Submit(s.RM, s.FS, cfg)
		s.Run(sim.Time(3600 * sim.Second))
		rep := s.Check()
		res.AcquisitionByLoad[load] = rep.Acquisition.Summarize(fmt.Sprintf("acq@%d%%", load))
	}
	return res
}

// Format renders the three panels.
func (r *Fig7Result) Format() string {
	var b strings.Builder
	b.WriteString(r.allocPlot)
	b.WriteString("Fig 7(a) — container allocation delay (ms):\n")
	fmt.Fprintf(&b, "  %-14s p50=%7.0f p95=%7.0f\n", "centralized", r.CentralAlloc.P50, r.CentralAlloc.P95)
	fmt.Fprintf(&b, "  %-14s p50=%7.0f p95=%7.0f\n", "distributed", r.DistributedAlloc.P50, r.DistributedAlloc.P95)
	if r.DistributedAlloc.P50 > 0 {
		fmt.Fprintf(&b, "  median speedup: %.0fx (paper: ~80x)\n", r.CentralAlloc.P50/r.DistributedAlloc.P50)
	}
	b.WriteString("Fig 7(b) — queueing delay on an overloaded cluster (ms):\n")
	fmt.Fprintf(&b, "  %-14s p50=%7.0f p95=%7.0f max=%7.0f\n", "centralized", r.CentralQueueing.P50, r.CentralQueueing.P95, r.CentralQueueing.Max)
	fmt.Fprintf(&b, "  %-14s p50=%7.0f p95=%7.0f max=%7.0f\n", "distributed", r.DistQueueing.P50, r.DistQueueing.P95, r.DistQueueing.Max)
	b.WriteString("Fig 7(c) — acquisition delay vs cluster load (ms):\n")
	for _, load := range []int{10, 40, 70, 100} {
		sm := r.AcquisitionByLoad[load]
		fmt.Fprintf(&b, "  load %3d%%: p50=%5.0f p95=%5.0f max=%5.0f (cap: 1000 ms AM heartbeat)\n",
			load, sm.P50, sm.P95, sm.Max)
	}
	return b.String()
}
