package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spark"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig11Result reproduces Fig 11: the in-application delay study.
type Fig11Result struct {
	// (a) Driver and executor delay, Spark wordcount vs Spark-SQL.
	WordcountDriver   stats.Summary
	SQLDriver         stats.Summary
	WordcountExecutor stats.Summary
	SQLExecutor       stats.Summary

	// (b) Executor delay vs number of opened files: "opt" (parallel
	// init), then x1..x4 multiples of the 8 TPC-H tables.
	ExecutorByVariant map[string]stats.Summary
}

// Fig11 runs both panels. queriesPerPoint <= 0 defaults to 150.
func Fig11(queriesPerPoint int) *Fig11Result {
	if queriesPerPoint <= 0 {
		queriesPerPoint = 150
	}
	res := &Fig11Result{ExecutorByVariant: make(map[string]stats.Summary)}

	// (a) Spark wordcount trace vs Spark-SQL (TPC-H) trace.
	runProfileTrace := func(build func(i int) spark.AppProfile, seed uint64) *core.Report {
		s := NewScenario(DefaultOptions())
		arrivals := trace.Arrivals(trace.Config{N: queriesPerPoint, MeanGapMs: 2600, BurstProb: 0.25, BurstGapMs: 325, Seed: seed}, sim.Time(2*sim.Second))
		for i, at := range arrivals {
			cfg := spark.DefaultConfig(build(i))
			s.Eng.At(at, func() { spark.Submit(s.RM, s.FS, cfg) })
		}
		s.Run(sim.Time(4 * 3600 * sim.Second))
		return s.Check()
	}

	var wcProfile spark.AppProfile
	{
		s := NewScenario(DefaultOptions())
		wcProfile = workload.SparkWordcount(s.FS, 2048)
	}
	wc := runProfileTrace(func(i int) spark.AppProfile { return wcProfile }, 51)

	var sqlTables []spark.TableRef
	{
		s := NewScenario(DefaultOptions())
		sqlTables = workload.CreateTPCHTables(s.FS, 2048)
	}
	sql := runProfileTrace(func(i int) spark.AppProfile {
		return workload.TPCHQuery(i%22+1, 2048, sqlTables)
	}, 52)

	res.WordcountDriver = wc.Driver.Summarize("wc-driver")
	res.SQLDriver = sql.Driver.Summarize("sql-driver")
	res.WordcountExecutor = wc.Executor.Summarize("wc-executor")
	res.SQLExecutor = sql.Executor.Summarize("sql-executor")

	// (b) Opened-files sweep plus the parallel-init optimization.
	for _, variant := range []string{"opt", "x1", "x2", "x3", "x4"} {
		variant := variant
		mult := 1
		parallel := false
		switch variant {
		case "opt":
			parallel = true
		case "x2":
			mult = 2
		case "x3":
			mult = 3
		case "x4":
			mult = 4
		}
		rep := runProfileTrace(func(i int) spark.AppProfile {
			return workload.TPCHOpenFiles(i%22+1, 2048, sqlTables, mult)
		}, 53+uint64(mult))
		if parallel {
			// Re-run with ParallelInit via a dedicated trace.
			s := NewScenario(DefaultOptions())
			tbl := workload.CreateTPCHTables(s.FS, 2048)
			arrivals := trace.Arrivals(trace.Config{N: queriesPerPoint, MeanGapMs: 2600, BurstProb: 0.25, BurstGapMs: 325, Seed: 57}, sim.Time(2*sim.Second))
			for i, at := range arrivals {
				cfg := spark.DefaultConfig(workload.TPCHQuery(i%22+1, 2048, tbl))
				cfg.ParallelInit = true
				s.Eng.At(at, func() { spark.Submit(s.RM, s.FS, cfg) })
			}
			s.Run(sim.Time(4 * 3600 * sim.Second))
			rep = s.Check()
		}
		res.ExecutorByVariant[variant] = rep.Executor.Summarize("exec-" + variant)
	}
	return res
}

// Format renders both panels.
func (r *Fig11Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig 11(a) — in-application delay, wordcount vs Spark-SQL (s):\n")
	fmt.Fprintf(&b, "  %-14s driver p50=%.1f p95=%.1f | executor p50=%.1f p95=%.1f\n",
		"wordcount", msToSec(r.WordcountDriver.P50), msToSec(r.WordcountDriver.P95),
		msToSec(r.WordcountExecutor.P50), msToSec(r.WordcountExecutor.P95))
	fmt.Fprintf(&b, "  %-14s driver p50=%.1f p95=%.1f | executor p50=%.1f p95=%.1f\n",
		"spark-sql", msToSec(r.SQLDriver.P50), msToSec(r.SQLDriver.P95),
		msToSec(r.SQLExecutor.P50), msToSec(r.SQLExecutor.P95))
	b.WriteString("  (paper: driver ~3s for both; executor p95 6.0s wordcount, 9.5s SQL)\n")
	b.WriteString("Fig 11(b) — executor delay vs opened files (s):\n")
	for _, v := range []string{"opt", "x1", "x2", "x3", "x4"} {
		sm, ok := r.ExecutorByVariant[v]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-4s p50=%.1f p95=%.1f\n", v, msToSec(sm.P50), msToSec(sm.P95))
	}
	b.WriteString("  (paper: delay grows with opened files; opt cuts ~2s from the tail)\n")
	return b.String()
}
