package experiments

import (
	"testing"
)

// These tests assert the qualitative claims of each paper figure at
// reduced scale — who wins, what grows, where the caps sit. Absolute
// paper-scale numbers are recorded by cmd/benchall / EXPERIMENTS.md.

func TestFig4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("trace run")
	}
	res := Fig4(200)
	rep := res.Report

	if got := rep.InOverTotal.Median(); got < 0.6 {
		t.Errorf("in/total median %.2f, paper says Spark causes >70%%", got)
	}
	if got := rep.OutOverTotal.Median(); got > 0.4 {
		t.Errorf("out/total median %.2f, paper says YARN causes <30%%", got)
	}
	if got := rep.TotalOverJob.Median(); got < 0.25 || got > 0.7 {
		t.Errorf("total/job median %.2f, paper: ~40%% (60%% worst)", got)
	}
	if got := rep.TotalOverJob.P95(); got > 0.85 {
		t.Errorf("total/job p95 %.2f too extreme", got)
	}
	if got := rep.AMOverTotal.Median(); got < 0.15 || got > 0.55 {
		t.Errorf("am/total median %.2f, paper: ~35%%", got)
	}
	// Fig 4c: the in-application delay varies more than the out one.
	if rep.In.StdDev() <= rep.Out.StdDev()*0.8 {
		t.Errorf("stddev in=%.0f out=%.0f — paper: in varies most", rep.In.StdDev(), rep.Out.StdDev())
	}
	// Component medians near the paper's defaults.
	if m := rep.Localization.Median(); m < 250 || m > 1000 {
		t.Errorf("localization median %.0fms, paper ~500ms", m)
	}
	if m := rep.Launching.Median(); m < 450 || m > 1000 {
		t.Errorf("launching median %.0fms, paper ~700ms", m)
	}
	if m := rep.Driver.Median(); m < 2000 || m > 4500 {
		t.Errorf("driver delay median %.0fms, paper ~3s", m)
	}
	// Every app must decompose fully.
	for _, a := range rep.Apps {
		if a.Decomp == nil || a.Decomp.Total < 0 {
			t.Fatalf("app %s failed to decompose", a.ID)
		}
	}
	if out := res.Format(); len(out) == 0 {
		t.Error("empty format output")
	}
}

func TestFig6MoreExecutorsMoreDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("trace run")
	}
	rows := Fig6(80)
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.TotalP95Sec <= first.TotalP95Sec {
		t.Errorf("16 executors (%.1fs) not slower than 2 (%.1fs)", last.TotalP95Sec, first.TotalP95Sec)
	}
	if last.ClMinusCf.P95 <= first.ClMinusCf.P95 {
		t.Errorf("Cl-Cf p95 did not grow with executors: %v vs %v", last.ClMinusCf.P95, first.ClMinusCf.P95)
	}
	_ = FormatFig6(rows)
}

func TestFig7SchedulerTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trace run")
	}
	res := Fig7(80)
	// (a) distributed allocates at least 10x faster at the median.
	if res.DistributedAlloc.P50*10 > res.CentralAlloc.P50 {
		t.Errorf("distributed alloc p50 %.0fms vs centralized %.0fms — want >=10x gap (paper: 80x)",
			res.DistributedAlloc.P50, res.CentralAlloc.P50)
	}
	// (b) distributed queueing is tens of seconds; centralized is tiny.
	if res.DistQueueing.P95 < 5000 {
		t.Errorf("distributed queueing p95 %.0fms, paper sees up to ~53s", res.DistQueueing.P95)
	}
	if res.CentralQueueing.P95 > 500 {
		t.Errorf("centralized queueing p95 %.0fms, paper ~100ms", res.CentralQueueing.P95)
	}
	// (c) acquisition delay capped by the 1s MR heartbeat at every load.
	for load, sm := range res.AcquisitionByLoad {
		if sm.Max > 1100 {
			t.Errorf("acquisition max %.0fms at %d%% load breaks the 1s heartbeat cap", sm.Max, load)
		}
		if sm.P95 < 500 {
			t.Errorf("acquisition p95 %.0fms at %d%% load suspiciously small", sm.P95, load)
		}
	}
	_ = res.Format()
}

func TestTableIIThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("load sweep")
	}
	rows := TableII()
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Throughput <= rows[i-1].Throughput {
			t.Errorf("throughput not scaling: %+v", rows)
		}
	}
	// The paper's point: the allocator is NOT the bottleneck — full-load
	// throughput stays far above per-app demand.
	if rows[3].Throughput < 300 {
		t.Errorf("full-load throughput %.0f/s too low", rows[3].Throughput)
	}
	_ = FormatTableII(rows)
}

func TestFig8LocalizationGrowsWithFileSize(t *testing.T) {
	if testing.Short() {
		t.Skip("trace sweep")
	}
	rows := Fig8(60)
	for i := 1; i < len(rows); i++ {
		if rows[i].Localization.P50 <= rows[i-1].Localization.P50 {
			t.Errorf("localization p50 not monotone at row %d: %v <= %v",
				i, rows[i].Localization.P50, rows[i-1].Localization.P50)
		}
	}
	// Default package localizes in ~0.5s.
	if d := rows[0].Localization.P50; d < 250 || d > 900 {
		t.Errorf("default localization p50 %.0fms, paper ~500ms", d)
	}
	// 8 GB extra files: tens of seconds.
	last := rows[len(rows)-1]
	if last.Localization.P50 < 8000 {
		t.Errorf("8GB localization p50 %.0fms, paper ~23s", last.Localization.P50)
	}
	// Driver containers stay sub-second even at 8 GB (they skip --files).
	if last.DriverLocalizationP50 >= 1000 {
		t.Errorf("driver localization p50 %.0fms at 8GB, paper observes <1s points", last.DriverLocalizationP50)
	}
	_ = FormatFig8(rows)
}

func TestFig9LaunchingDelays(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed trace")
	}
	res := Fig9(60)
	spe, ok1 := res.ByInstance[instSpe()]
	mrm, ok2 := res.ByInstance[instMrm()]
	if !ok1 || !ok2 {
		t.Fatalf("instance types missing: %v", res.ByInstance)
	}
	if spe.P50 < 450 || spe.P50 > 1000 {
		t.Errorf("spe launch p50 %.0fms, paper ~700ms", spe.P50)
	}
	if mrm.P50 <= spe.P50 {
		t.Errorf("MR master launch (%.0f) should exceed Spark's (%.0f)", mrm.P50, spe.P50)
	}
	over := res.DockerLaunch.P50 - res.DefaultLaunch.P50
	if over < 200 || over > 700 {
		t.Errorf("docker overhead %.0fms median, paper ~350ms", over)
	}
	tail := res.DockerLaunch.P95 - res.DefaultLaunch.P95
	if tail < over {
		t.Errorf("docker tail overhead %.0f < median %.0f — paper observes a long tail", tail, over)
	}
	_ = res.Format()
}

func TestFig11InApplication(t *testing.T) {
	if testing.Short() {
		t.Skip("trace sweep")
	}
	res := Fig11(60)
	// Driver delays nearly identical between the two apps (~3s).
	if diff := res.SQLDriver.P50 - res.WordcountDriver.P50; diff > 600 || diff < -600 {
		t.Errorf("driver delays differ by %.0fms, paper: almost identical", diff)
	}
	// SQL executor delay clearly exceeds wordcount's (8 tables vs 1).
	if res.SQLExecutor.P95 <= res.WordcountExecutor.P95+1000 {
		t.Errorf("sql exec p95 %.0f vs wordcount %.0f — want a clear gap", res.SQLExecutor.P95, res.WordcountExecutor.P95)
	}
	// Executor delay grows with opened files; opt beats x1.
	x1, x4 := res.ExecutorByVariant["x1"], res.ExecutorByVariant["x4"]
	opt := res.ExecutorByVariant["opt"]
	if x4.P50 <= x1.P50 {
		t.Errorf("x4 (%.0f) not slower than x1 (%.0f)", x4.P50, x1.P50)
	}
	saving := x1.P95 - opt.P95
	if saving < 1000 {
		t.Errorf("opt saves only %.0fms at the tail, paper ~2s", saving)
	}
	_ = res.Format()
}

func TestFig12IOInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("interference sweep")
	}
	rows := Fig12(60)
	base, heavy := rows[0], rows[len(rows)-1]
	if slow := heavy.Localization.P50 / nonzero(base.Localization.P50); slow < 3 {
		t.Errorf("localization median slowdown %.1fx, paper 9.4x", slow)
	}
	if heavy.TotalP95Sec <= base.TotalP95Sec {
		t.Errorf("total did not degrade under dfsIO")
	}
	if heavy.AM.P95 <= base.AM.P95 {
		t.Errorf("AM delay did not degrade (paper: up to 8x via driver localization)")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Localization.P50 < rows[i-1].Localization.P50 {
			t.Errorf("localization not monotone in interference level")
		}
	}
	_ = FormatFig12(rows)
}

func TestFig13CPUInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("interference sweep")
	}
	rows := Fig13(60)
	base, heavy := rows[0], rows[len(rows)-1]
	if slow := heavy.Driver.P95 / nonzero(base.Driver.P95); slow < 1.3 {
		t.Errorf("driver slowdown %.1fx, paper 2.9x", slow)
	}
	// The paper's headline: in-application is vulnerable to CPU
	// interference, out-application is not.
	outSlow := heavy.OutP95Sec / nonzero(base.OutP95Sec)
	inSlow := heavy.InP95Sec / nonzero(base.InP95Sec)
	if outSlow > 1.4 {
		t.Errorf("out-application slowed %.1fx under CPU interference; should be insensitive", outSlow)
	}
	if inSlow <= outSlow {
		t.Errorf("in (%.1fx) not more vulnerable than out (%.1fx)", inSlow, outSlow)
	}
	if slow := heavy.Localization.P50 / nonzero(base.Localization.P50); slow > 1.6 {
		t.Errorf("localization slowed %.1fx under CPU interference, paper: only ~1.4x", slow)
	}
	_ = FormatFig13(rows)
}

func TestBugHuntFindsOverAllocation(t *testing.T) {
	if testing.Short() {
		t.Skip("trace run")
	}
	res := BugHunt(40)
	if len(res.Findings) == 0 {
		t.Fatal("SDchecker found no over-allocated containers")
	}
	// OverRequestFactor 1.5 on 4 executors -> 2 unused per app.
	if res.UnusedPerApp < 1.5 || res.UnusedPerApp > 2.5 {
		t.Errorf("unused per app %.1f, want ~2", res.UnusedPerApp)
	}
	for _, f := range res.Findings {
		if f.Container.IsAM() {
			t.Errorf("AM container flagged as unused: %v", f)
		}
	}
	_ = res.Format()
}

func TestTableIIIShares(t *testing.T) {
	if testing.Short() {
		t.Skip("trace run")
	}
	rows := TableIII(Fig4(150))
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Source] = r.Contribution
		if r.Contribution < 0 {
			t.Errorf("negative contribution: %+v", r)
		}
	}
	if byName["6.executor-delay"] <= byName["5.driver-delay"] {
		t.Errorf("executor delay (%.2f) should dominate driver (%.2f) — paper: 41%% vs ~29%%",
			byName["6.executor-delay"], byName["5.driver-delay"])
	}
	if byName["2.acqui-delays"] > 0.1 {
		t.Errorf("acquisition contribution %.2f too large, paper <1%%", byName["2.acqui-delays"])
	}
	_ = FormatTableIII(rows)
}
